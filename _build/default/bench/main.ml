(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (§6), plus micro-benchmarks of the substrates.

     dune exec bench/main.exe            # everything (moderate sweep)
     dune exec bench/main.exe -- fig3a   # one artifact
     dune exec bench/main.exe -- --full  # the paper's full client sweep *)

module H = Splitbft_harness
module Experiments = H.Experiments
module Scenarios = H.Scenarios

let clients_sweep ~full =
  if full then [ 1; 5; 10; 20; 40; 80; 120; 150 ] else [ 1; 10; 40; 100; 150 ]

(* ----- paper artifacts ----- *)

let run_table1 () =
  let outcomes = List.map (Scenarios.run ~seed:42L) Scenarios.all in
  Scenarios.print_table1 outcomes;
  let mismatches = List.filter (fun o -> not (Scenarios.matches_expectation o)) outcomes in
  if mismatches <> [] then
    Printf.printf "!! %d scenario(s) deviate from the paper's fault model\n"
      (List.length mismatches)

let run_table2 () = Experiments.print_table2 (Experiments.table2 ())

let run_fig3 ~batched ~full () =
  let clients_list =
    (* Batched points simulate far more operations per second; keep the
       default sweep affordable. *)
    if batched && not full then [ 1; 10; 40; 150 ] else clients_sweep ~full
  in
  List.iter
    (fun (app, app_name) ->
      let series = Experiments.fig3 ~clients_list ~batched ~app () in
      Experiments.print_fig3
        ~title:
          (Printf.sprintf "Figure 3%s — %s, %s" (if batched then "b" else "a") app_name
             (if batched then "batched (200, 10ms)" else "unbatched"))
        series)
    [ (H.Cluster.App_kvs, "key-value store"); (H.Cluster.App_ledger, "blockchain") ]

let run_fig4 () =
  Experiments.print_fig4 ~batched:false (Experiments.fig4 ~batched:false ());
  Experiments.print_fig4 ~batched:true (Experiments.fig4 ~batched:true ())

let run_simmode () = Experiments.print_simmode (Experiments.simmode ())
let run_ablation () = Experiments.print_batch_ablation (Experiments.batch_ablation ())
let run_ceilings () = Experiments.print_ceilings (Experiments.ceilings ())

(* ----- bechamel micro-benchmarks of the substrates ----- *)

let micro_tests () =
  let open Bechamel in
  let payload = String.init 256 (fun i -> Char.chr (i land 0xff)) in
  let key = String.make 32 'k' in
  let nonce = String.make 12 'n' in
  let request =
    { Splitbft_types.Message.client = 7; timestamp = 42L; payload = String.make 10 'x';
      auth = String.make 32 'a' }
  in
  let encoded_request = Splitbft_types.Message.encode_request request in
  let sim_events () =
    let engine = Splitbft_sim.Engine.create ~seed:7L () in
    for i = 1 to 100 do
      ignore
        (Splitbft_sim.Engine.schedule engine ~delay:(float_of_int i) ~label:"e" (fun () -> ()))
    done;
    Splitbft_sim.Engine.run engine
  in
  Test.make_grouped ~name:"substrates" ~fmt:"%s %s"
    [ Test.make ~name:"sha256-256B"
        (Staged.stage (fun () -> ignore (Splitbft_crypto.Sha256.digest payload)));
      Test.make ~name:"hmac-256B"
        (Staged.stage (fun () -> ignore (Splitbft_crypto.Hmac.mac ~key payload)));
      Test.make ~name:"chacha20-256B"
        (Staged.stage (fun () ->
             ignore (Splitbft_crypto.Chacha20.encrypt ~key ~nonce payload)));
      Test.make ~name:"aead-seal-open-256B"
        (Staged.stage (fun () ->
             let ct = Splitbft_crypto.Aead.encrypt ~key ~nonce ~aad:"a" payload in
             match Splitbft_crypto.Aead.decrypt ~key ~nonce ~aad:"a" ct with
             | Ok _ -> ()
             | Error e -> failwith e));
      Test.make ~name:"codec-request-roundtrip"
        (Staged.stage (fun () ->
             match Splitbft_types.Message.decode_request encoded_request with
             | Ok _ -> ()
             | Error e -> failwith e));
      Test.make ~name:"sim-100-events" (Staged.stage sim_events) ]

let run_micro () =
  let open Bechamel in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] (micro_tests ()) in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> x
        | Some [] | None -> nan
      in
      rows := [ name; Printf.sprintf "%.0f ns" ns ] :: !rows)
    results;
  H.Table.print ~title:"Micro-benchmarks (bechamel, monotonic clock)"
    ~header:[ "operation"; "time/op" ]
    ~rows:(List.sort compare !rows)

(* ----- command line ----- *)

let artifacts =
  [ ("table1", fun ~full:_ () -> run_table1 ());
    ("table2", fun ~full:_ () -> run_table2 ());
    ("fig3a", fun ~full () -> run_fig3 ~batched:false ~full ());
    ("fig3b", fun ~full () -> run_fig3 ~batched:true ~full ());
    ("fig4", fun ~full:_ () -> run_fig4 ());
    ("simmode", fun ~full:_ () -> run_simmode ());
    ("ablation", fun ~full:_ () -> run_ablation ());
    ("ceilings", fun ~full:_ () -> run_ceilings ());
    ("micro", fun ~full:_ () -> run_micro ()) ]

let run_all ~full () =
  List.iter
    (fun (name, f) ->
      Printf.printf "\n######## %s ########\n%!" name;
      f ~full ())
    artifacts

let () =
  let open Cmdliner in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Use the paper's full client sweep for Figure 3.")
  in
  let what =
    Arg.(
      value
      & pos_all (enum (("all", "all") :: List.map (fun (n, _) -> (n, n)) artifacts)) []
      & info [] ~docv:"ARTIFACT" ~doc:"Artifacts to regenerate (default: all).")
  in
  let main full what =
    match what with
    | [] | [ "all" ] -> run_all ~full ()
    | names ->
      List.iter
        (fun n ->
          Printf.printf "\n######## %s ########\n%!" n;
          (List.assoc n artifacts) ~full ())
        names
  in
  let cmd =
    Cmd.v
      (Cmd.info "splitbft-bench" ~doc:"Regenerate the SplitBFT paper's tables and figures")
      Term.(const main $ full $ what)
  in
  exit (Cmd.eval cmd)
