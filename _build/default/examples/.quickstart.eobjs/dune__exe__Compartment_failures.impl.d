examples/compartment_failures.ml: List Printf Splitbft_harness
