examples/compartment_failures.mli:
