examples/confidential_kvs.ml: Printf Splitbft_harness
