examples/confidential_kvs.mli:
