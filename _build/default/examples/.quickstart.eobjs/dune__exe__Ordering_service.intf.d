examples/ordering_service.mli:
