examples/quickstart.ml: List Printf Splitbft_app Splitbft_client Splitbft_core Splitbft_sim Splitbft_util
