examples/quickstart.mli:
