(* A tour of SplitBFT's fault model (Table 1): what the system survives
   that PBFT and hybrid protocols do not, and where its own limits are.

     dune exec examples/compartment_failures.exe *)

module H = Splitbft_harness

let show id =
  match H.Scenarios.find id with
  | None -> Printf.printf "missing scenario %s\n" id
  | Some s ->
    Printf.printf "\n--- %s\n    %s\n%!" s.H.Scenarios.id s.H.Scenarios.description;
    let o = H.Scenarios.run s in
    let v = o.H.Scenarios.verdict in
    Printf.printf "    liveness=%b  integrity=%b  confidentiality=%b  (%d ops)%s\n"
      v.H.Safety.live v.H.Safety.safe v.H.Safety.confidential
      o.H.Scenarios.workload.H.Workload.completed_total
      (if v.H.Safety.detail = "" then "" else "\n    " ^ v.H.Safety.detail)

let () =
  print_endline "SplitBFT compartment-failure tour (each scenario is a fresh cluster)";
  List.iter show
    [ (* What every BFT tolerates. *)
      "splitbft/crash-f";
      (* The headline: one byzantine enclave of EVERY type at once —
         an equivocating Preparation, a promiscuous Confirmation and a
         corrupt Execution on three different machines — and the service
         stays correct and confidential. *)
      "splitbft/enclave-f-each-type";
      (* An attacker in the environment of every machine delays at will:
         performance degrades, safety and confidentiality hold. *)
      "splitbft/host-attacker-all";
      (* ... or starves a compartment everywhere: liveness dies, safety
         still holds (SplitBFT separates the two). *)
      "splitbft/env-starve-all";
      (* The limits: beyond f faults of one compartment type. *)
      "splitbft/exec-f+1-corrupt";
      "splitbft/exec-leak";
      (* For contrast: the comparison systems break earlier. *)
      "pbft/byz-f+1";
      "minbft/faulty-tee" ]
