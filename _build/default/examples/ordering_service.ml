(* SplitBFT as the ordering service of a permissioned blockchain — the
   paper's second use case.  Clients submit transactions; the Execution
   enclaves order them into hash-chained blocks of five and write each
   block SEALED to untrusted storage via an ocall, so the blockchain
   content stays confidential from the hosting cloud.

     dune exec examples/ordering_service.exe *)

module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Replica = Splitbft_core.Replica
module Config = Splitbft_core.Config
module Client = Splitbft_client.Client
module Ledger = Splitbft_app.Ledger

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec loop i = i + n <= m && (String.equal (String.sub hay i n) needle || loop (i + 1)) in
  loop 0

let () =
  let engine = Engine.create ~seed:7L () in
  let net = Network.create engine Network.default_config in
  let n = 4 in
  let replicas =
    List.init n (fun id ->
        Replica.create engine net (Config.default ~n ~id) ~app:(fun () -> Ledger.create ()))
  in
  (* Two banks submit transfer transactions concurrently. *)
  let submit_all bank_id count =
    let client =
      Client.create engine net
        (Client.default_config (Client.Splitbft { ready_quorum = n }) ~n ~id:bank_id)
    in
    Client.start client ~on_ready:(fun () ->
        for i = 1 to count do
          Client.submit client
            ~op:(Printf.sprintf "TRANSFER bank%d #%d amount=%d" bank_id i (i * 10))
            ~on_result:(fun ~latency_us:_ ~result:_ -> ())
        done)
  in
  submit_all 0 9;
  submit_all 1 8;
  Engine.run ~until:3_000_000.0 engine;

  List.iter
    (fun r ->
      let stored = Replica.persisted r in
      Printf.printf "replica %d wrote %d sealed blocks to untrusted storage\n" (Replica.id r)
        (List.length stored);
      if Replica.id r = 0 then begin
        List.iteri
          (fun i (tag, data) ->
            if i < 3 then
              Printf.printf "  %-8s %4d bytes, plaintext visible: %b\n" tag
                (String.length data)
                (contains data "TRANSFER"))
          stored
      end)
    replicas;
  print_newline ();
  (* All Execution enclaves hold the same chain tip. *)
  List.iter
    (fun r ->
      Printf.printf "replica %d: ordered=%d ledger-digest=%s\n" (Replica.id r)
        (Replica.executed_count r)
        (Splitbft_util.Hex.short ~len:16 (Replica.app_digest r)))
    replicas
