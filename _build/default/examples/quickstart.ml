(* Quickstart: a four-replica SplitBFT cluster replicating a key-value
   store, driven by one client over the attestation handshake.

     dune exec examples/quickstart.exe *)

module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Replica = Splitbft_core.Replica
module Config = Splitbft_core.Config
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs

let () =
  (* 1. A deterministic simulated world: event engine + datacenter network. *)
  let engine = Engine.create ~seed:2026L () in
  let net = Network.create engine Network.default_config in

  (* 2. Four replicas (n = 3f + 1, f = 1).  Each replica hosts three
     enclaves — Preparation, Confirmation, Execution — plus an untrusted
     broker; the Execution enclaves run the replicated KVS. *)
  let n = 4 in
  let replicas =
    List.init n (fun id ->
        Replica.create engine net (Config.default ~n ~id) ~app:(fun () -> Kvs.create ()))
  in

  (* 3. A client.  Before sending anything it attests the Preparation and
     Execution enclaves of every replica and provisions its session keys,
     so its operations travel encrypted end to end. *)
  let client = Client.create engine net (Client.default_config (Client.Splitbft { ready_quorum = n }) ~n ~id:0) in

  Client.start client ~on_ready:(fun () ->
      print_endline "client attested all enclaves; sessions established";
      let put key value k =
        Client.submit client
          ~op:(Kvs.encode_op (Kvs.Put (key, value)))
          ~on_result:(fun ~latency_us ~result ->
            Printf.printf "PUT %-8s -> %-8s (%s, %.0f us)\n" key value result latency_us;
            k ())
      in
      let get key k =
        Client.submit client
          ~op:(Kvs.encode_op (Kvs.Get key))
          ~on_result:(fun ~latency_us ~result ->
            Printf.printf "GET %-8s -> %-8s (%.0f us)\n" key result latency_us;
            k ())
      in
      put "alice" "100" (fun () ->
          put "bob" "250" (fun () ->
              get "alice" (fun () ->
                  put "alice" "75" (fun () -> get "alice" (fun () -> ()))))));

  (* 4. Run the simulation. *)
  Engine.run ~until:2_000_000.0 engine;

  (* 5. Every replica executed the same operations in the same order. *)
  print_newline ();
  List.iter
    (fun r ->
      Printf.printf "replica %d: executed=%d state-digest=%s\n" (Replica.id r)
        (Replica.executed_count r)
        (Splitbft_util.Hex.short ~len:16 (Replica.app_digest r)))
    replicas
