lib/app/counter_app.ml: State_machine
