lib/app/counter_app.mli: State_machine
