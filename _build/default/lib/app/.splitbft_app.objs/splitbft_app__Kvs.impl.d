lib/app/kvs.ml: Hashtbl List Printf Splitbft_codec State_machine
