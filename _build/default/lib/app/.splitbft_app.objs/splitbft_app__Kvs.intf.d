lib/app/kvs.mli: State_machine
