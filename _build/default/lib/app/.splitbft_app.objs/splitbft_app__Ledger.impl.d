lib/app/ledger.ml: List Printf Splitbft_codec Splitbft_crypto State_machine String
