lib/app/ledger.mli: State_machine
