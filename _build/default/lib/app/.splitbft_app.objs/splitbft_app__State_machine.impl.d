lib/app/state_machine.ml: Splitbft_crypto
