(** Minimal replicated counter used by the quickstart example and smoke
    tests: operation ["+"] increments and returns the new value (decimal
    text); ["?"] reads. *)

val create : unit -> State_machine.t
val increment_op : string
val read_op : string
