(** Replicated key-value store — the paper's first evaluation application.

    Operations are encoded with {!encode_op}; the throughput experiments
    issue PUT operations with 10-byte values as in §6. *)

type op =
  | Put of string * string
  | Get of string
  | Delete of string

val encode_op : op -> string
val decode_op : string -> (op, string) result

val create : unit -> State_machine.t

val ok : string
(** Result bytes of a successful PUT/DELETE. *)

val not_found : string
(** Result bytes of a GET on an absent key. *)
