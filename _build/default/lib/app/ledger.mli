(** Replicated blockchain ledger — the paper's second evaluation
    application.

    Every applied transaction is appended to the current block; a block
    closes after [block_size] transactions (5 in the paper) and is hash-
    chained to its predecessor.  Closed blocks are surfaced as [Persist]
    side effects: the Execution enclave writes each one with a sealed ocall
    into untrusted storage, which is where the blockchain application pays
    its extra cost in Figure 3. *)

type block = {
  height : int;
  prev_hash : string;
  transactions : string list;
}

val block_hash : block -> string
val encode_block : block -> string
val decode_block : string -> (block, string) result

val create : ?block_size:int -> unit -> State_machine.t
(** [block_size] defaults to 5, as in the paper. *)

val verify_chain : block list -> (unit, string) result
(** Checks heights are consecutive from 0 and hash links match; used by the
    safety checker on persisted blocks. *)
