type side_effect = Persist of { tag : string; data : string }

type t = {
  app_name : string;
  apply : string -> string;
  snapshot : unit -> string;
  restore : string -> (unit, string) result;
  drain_effects : unit -> side_effect list;
}

let digest t = Splitbft_crypto.Sha256.digest (t.snapshot ())
let noop_result = "\x00noop"
