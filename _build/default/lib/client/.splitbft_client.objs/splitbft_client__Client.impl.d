lib/client/client.ml: Hashtbl Int64 List Printf Splitbft_crypto Splitbft_sim Splitbft_tee Splitbft_types Splitbft_util String
