lib/client/client.mli: Splitbft_sim Splitbft_types Splitbft_util
