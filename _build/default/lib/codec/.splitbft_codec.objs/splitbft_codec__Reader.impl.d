lib/codec/reader.ml: Char Int64 List Printf Result String
