lib/codec/reader.mli:
