lib/codec/writer.ml: Buffer Char Int64 List String
