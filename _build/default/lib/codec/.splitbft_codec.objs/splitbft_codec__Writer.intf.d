lib/codec/writer.mli:
