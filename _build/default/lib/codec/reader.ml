exception Error of string

type t = { src : string; mutable pos : int }

let of_string src = { src; pos = 0 }
let remaining t = String.length t.src - t.pos
let at_end t = remaining t = 0
let fail msg = raise (Error msg)

let need t n =
  if remaining t < n then
    fail (Printf.sprintf "truncated input: need %d bytes at offset %d" n t.pos)

let u8 t =
  need t 1;
  let v = Char.code t.src.[t.pos] in
  t.pos <- t.pos + 1;
  v

let u16 t =
  let lo = u8 t in
  let hi = u8 t in
  lo lor (hi lsl 8)

let u32 t =
  let lo = u16 t in
  let hi = u16 t in
  lo lor (hi lsl 16)

let u64 t =
  let v = ref 0L in
  for i = 0 to 7 do
    let b = Int64.of_int (u8 t) in
    v := Int64.logor !v (Int64.shift_left b (8 * i))
  done;
  !v

let varint t =
  let rec loop shift acc =
    if shift > 56 then fail "varint too long"
    else
      let b = u8 t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let bool t =
  match u8 t with
  | 0 -> false
  | 1 -> true
  | v -> fail (Printf.sprintf "invalid boolean byte 0x%02x" v)

let float t = Int64.float_of_bits (u64 t)

let raw t n =
  if n < 0 then fail "negative length";
  need t n;
  let s = String.sub t.src t.pos n in
  t.pos <- t.pos + n;
  s

let bytes t =
  let n = varint t in
  raw t n

let option t dec =
  match u8 t with
  | 0 -> None
  | 1 -> Some (dec t)
  | v -> fail (Printf.sprintf "invalid option tag 0x%02x" v)

let list ?(max_len = 1_000_000) t dec =
  let n = varint t in
  if n > max_len then fail (Printf.sprintf "list length %d exceeds limit" n);
  let rec loop i acc = if i = 0 then List.rev acc else loop (i - 1) (dec t :: acc) in
  loop n []

let expect_end t =
  if not (at_end t) then fail (Printf.sprintf "%d trailing bytes" (remaining t))

let parse ?(exact = true) dec s =
  let t = of_string s in
  match dec t with
  | v ->
    if exact && not (at_end t) then Result.Error "trailing bytes after message"
    else Ok v
  | exception Error msg -> Result.Error msg
