(** Binary decoder matching {!Writer}.

    Decoding functions raise {!Error} on truncated or malformed input;
    {!parse} converts that into a [result] at message boundaries, which is
    how untrusted bytes enter a compartment. *)

exception Error of string

type t

val of_string : string -> t
val remaining : t -> int
val at_end : t -> bool
val u8 : t -> int
val u16 : t -> int
val u32 : t -> int
val u64 : t -> int64
val varint : t -> int
val bool : t -> bool
val float : t -> float

val bytes : t -> string
(** Length-prefixed byte string written by {!Writer.bytes}. *)

val raw : t -> int -> string
(** [raw t n] reads exactly [n] bytes. *)

val option : t -> (t -> 'a) -> 'a option

val list : ?max_len:int -> t -> (t -> 'a) -> 'a list
(** [max_len] (default [1_000_000]) bounds the announced element count so a
    malformed length prefix cannot force a huge allocation. *)

val expect_end : t -> unit
(** @raise Error if input bytes remain. *)

val parse : ?exact:bool -> (t -> 'a) -> string -> ('a, string) result
(** Runs a decoder over a whole string.  With [exact] (default [true]) the
    decoder must consume every byte. *)
