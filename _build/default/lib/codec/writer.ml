type t = Buffer.t

let create ?(initial_size = 64) () = Buffer.create initial_size
let contents t = Buffer.contents t
let length t = Buffer.length t
let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

let u16 t v =
  u8 t v;
  u8 t (v lsr 8)

let u32 t v =
  u16 t v;
  u16 t (v lsr 16)

let u64 t v =
  for i = 0 to 7 do
    u8 t (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done

let rec varint t v =
  if v < 0 then invalid_arg "Writer.varint: negative"
  else if v < 0x80 then u8 t v
  else begin
    u8 t (0x80 lor (v land 0x7f));
    varint t (v lsr 7)
  end

let bool t b = u8 t (if b then 1 else 0)
let float t f = u64 t (Int64.bits_of_float f)

let raw t s = Buffer.add_string t s

let bytes t s =
  varint t (String.length s);
  raw t s

let option t enc = function
  | None -> u8 t 0
  | Some v ->
    u8 t 1;
    enc t v

let list t enc xs =
  varint t (List.length xs);
  List.iter (enc t) xs

let to_string enc v =
  let t = create () in
  enc t v;
  contents t
