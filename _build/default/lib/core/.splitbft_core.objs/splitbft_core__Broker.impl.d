lib/core/broker.ml: Config Hashtbl Lazy List Printf Splitbft_sim Splitbft_tee Splitbft_types String Wire
