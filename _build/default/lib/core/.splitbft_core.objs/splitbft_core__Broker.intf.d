lib/core/broker.mli: Config Splitbft_sim Splitbft_tee Splitbft_types
