lib/core/common.ml: Hashtbl List Option Splitbft_crypto Splitbft_tee Splitbft_types
