lib/core/common.mli: Splitbft_tee Splitbft_types
