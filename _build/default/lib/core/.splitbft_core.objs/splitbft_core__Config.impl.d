lib/core/config.ml: Array Splitbft_crypto Splitbft_tee Splitbft_types
