lib/core/config.mli: Splitbft_tee Splitbft_types
