lib/core/confirmation.ml: Common Config Hashtbl List Option Splitbft_tee Splitbft_types Wire
