lib/core/confirmation.mli: Config Splitbft_tee
