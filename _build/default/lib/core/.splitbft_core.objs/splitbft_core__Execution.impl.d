lib/core/execution.ml: Common Config Hashtbl List Option Splitbft_app Splitbft_crypto Splitbft_tee Splitbft_types String Wire
