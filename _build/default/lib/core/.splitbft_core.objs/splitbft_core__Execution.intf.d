lib/core/execution.mli: Config Splitbft_app Splitbft_tee Splitbft_types
