lib/core/preparation.ml: Common Config Hashtbl Int64 List Option Splitbft_crypto Splitbft_tee Splitbft_types Wire
