lib/core/preparation.mli: Config Splitbft_tee
