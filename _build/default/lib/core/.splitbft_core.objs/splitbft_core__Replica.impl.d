lib/core/replica.ml: Broker Config Confirmation Execution Preparation Printf Splitbft_tee Splitbft_types
