lib/core/replica.mli: Broker Config Confirmation Execution Preparation Splitbft_app Splitbft_sim Splitbft_tee Splitbft_types Splitbft_util
