lib/core/wire.ml: Printf Splitbft_codec Splitbft_types
