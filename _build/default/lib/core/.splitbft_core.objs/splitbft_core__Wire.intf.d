lib/core/wire.mli: Splitbft_types
