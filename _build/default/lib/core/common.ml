module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Validation = Splitbft_types.Validation
module Enclave = Splitbft_tee.Enclave
module Signature = Splitbft_crypto.Signature

type ckpt = {
  quorum : int;
  mutable stable : Ids.seqno;
  mutable proof : Message.checkpoint list;
  received : (Ids.seqno, Message.checkpoint list) Hashtbl.t;
}

let create_ckpt ~quorum = { quorum; stable = 0; proof = []; received = Hashtbl.create 8 }
let last_stable c = c.stable
let stable_proof c = c.proof

let charge_verify env count =
  Enclave.charge env
    ((Enclave.cost_model env).verify_us *. float_of_int count)

let charge_sign env count =
  Enclave.charge env ((Enclave.cost_model env).sign_us *. float_of_int count)

let sign_with env msg =
  charge_sign env 1;
  Signature.sign (Enclave.env_keypair env).Signature.secret msg

let try_advance c seq ~on_stable =
  match Hashtbl.find_opt c.received seq with
  | None -> ()
  | Some cks ->
    if seq > c.stable && Validation.checkpoint_quorum_complete ~quorum:c.quorum cks
    then begin
      c.stable <- seq;
      c.proof <- cks;
      Hashtbl.iter
        (fun s _ -> if s < seq then Hashtbl.remove c.received s)
        (Hashtbl.copy c.received);
      on_stable seq
    end

let store c (ck : Message.checkpoint) =
  let existing = Option.value ~default:[] (Hashtbl.find_opt c.received ck.seq) in
  if not (List.exists (fun (e : Message.checkpoint) -> e.sender = ck.sender) existing)
  then Hashtbl.replace c.received ck.seq (ck :: existing)

let record_own_checkpoint c ck =
  store c ck;
  (* Own checkpoints never complete a quorum alone; advancing happens when
     peer checkpoints arrive through [on_checkpoint]. *)
  ()

let on_checkpoint env ~exec_lookup c (ck : Message.checkpoint) ~on_stable =
  charge_verify env 1;
  if ck.seq > c.stable && Validation.verify_checkpoint exec_lookup ck then begin
    store c ck;
    try_advance c ck.seq ~on_stable
  end

let viewchange_sig_count (vc : Message.viewchange) =
  1
  + List.length vc.vc_checkpoint_proof
  + List.fold_left
      (fun acc (p : Message.prepared_proof) -> acc + 1 + List.length p.proof_prepares)
      0 vc.vc_prepared

let newview_sig_count (nv : Message.newview) =
  1
  + List.fold_left (fun acc vc -> acc + viewchange_sig_count vc) 0 nv.nv_viewchanges
  + List.length nv.nv_preprepares

let newview_shallow_ok env ~f ~n ~prep_lookup ~conf_lookup (nv : Message.newview) =
  (* Confirmation/Execution verify the NewView and ViewChange signatures
     and the quorum, but not the embedded prepares (§4). *)
  charge_verify env (1 + List.length nv.nv_viewchanges);
  let quorum = (2 * f) + 1 in
  let senders = List.map (fun (vc : Message.viewchange) -> vc.vc_sender) nv.nv_viewchanges in
  nv.nv_sender = Ids.primary_of_view ~n nv.nv_view
  && Validation.verify_newview prep_lookup nv
  && List.length nv.nv_viewchanges >= quorum
  && Validation.distinct_senders senders
  && List.for_all
       (fun (vc : Message.viewchange) ->
         vc.vc_new_view = nv.nv_view && Validation.verify_viewchange conf_lookup vc)
       nv.nv_viewchanges

let apply_newview_checkpoint c (nv : Message.newview) =
  List.iter
    (fun (vc : Message.viewchange) -> List.iter (store c) vc.vc_checkpoint_proof)
    nv.nv_viewchanges;
  (* Try every sequence number the embedded proofs could stabilize. *)
  let seqs =
    List.sort_uniq compare
      (List.concat_map
         (fun (vc : Message.viewchange) ->
           List.map (fun (ck : Message.checkpoint) -> ck.seq) vc.vc_checkpoint_proof)
         nv.nv_viewchanges)
  in
  List.iter (fun seq -> try_advance c seq ~on_stable:(fun _ -> ())) seqs;
  c.stable
