(** Logic duplicated in every compartment: the checkpoint handler (9), the
    checkpoint/view part of NewView handling (7'), and metered signing/
    verification helpers.

    The paper deliberately duplicates these handlers across compartments so
    each runs independently (P2); here they share one implementation, but
    each compartment owns its own {!ckpt} instance and view variable, so at
    run time the state is fully replicated per enclave, as in the paper. *)

module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Enclave = Splitbft_tee.Enclave

(** {2 Per-compartment checkpoint state} *)

type ckpt

val create_ckpt : quorum:int -> ckpt
val last_stable : ckpt -> Ids.seqno
val stable_proof : ckpt -> Message.checkpoint list

val record_own_checkpoint : ckpt -> Message.checkpoint -> unit
(** The Execution compartment records the checkpoints it originates. *)

val on_checkpoint :
  Enclave.env ->
  exec_lookup:Splitbft_types.Validation.key_lookup ->
  ckpt ->
  Message.checkpoint ->
  on_stable:(Ids.seqno -> unit) ->
  unit
(** Handler (9): charge and verify the Execution-enclave signature, log the
    message, and on a quorum advance the stable sequence number, retaining
    the proving quorum and invoking [on_stable] so the compartment can
    garbage-collect its logs.  Checkpoints below the current stable mark
    are discarded even if they arrive later. *)

(** {2 NewView handling shared by Confirmation and Execution (7')} *)

val newview_shallow_ok :
  Enclave.env ->
  f:int ->
  n:int ->
  prep_lookup:Splitbft_types.Validation.key_lookup ->
  conf_lookup:Splitbft_types.Validation.key_lookup ->
  Message.newview ->
  bool
(** Charges and checks what Confirmation/Execution validate: the NewView
    signature (a Preparation enclave, the new primary), each embedded
    ViewChange signature (Confirmation enclaves), a [2f+1] quorum of
    distinct ViewChange senders — but {e not} the embedded Prepares, per
    §4. *)

val apply_newview_checkpoint : ckpt -> Message.newview -> Ids.seqno
(** Adopts the highest checkpoint certificate proven inside the NewView's
    ViewChanges; returns the (possibly unchanged) stable sequence
    number. *)

(** {2 Metered crypto helpers} *)

val charge_verify : Enclave.env -> int -> unit
(** Charge for [count] signature verifications. *)

val charge_sign : Enclave.env -> int -> unit
val viewchange_sig_count : Message.viewchange -> int
val newview_sig_count : Message.newview -> int

val sign_with : Enclave.env -> string -> string
(** Sign with the enclave's own key (charges one signature). *)
