lib/crypto/aead.ml: Chacha20 Hmac Kdf String
