lib/crypto/aead.mli:
