lib/crypto/box.ml: Aead Hashtbl Kdf Sha256 Splitbft_util String
