lib/crypto/box.mli: Splitbft_util
