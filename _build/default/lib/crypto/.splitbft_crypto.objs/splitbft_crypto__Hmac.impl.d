lib/crypto/hmac.ml: Bytes Char List Sha256 String
