lib/crypto/hmac.mli:
