lib/crypto/kdf.mli:
