lib/crypto/sha256.ml: Array Bytes Char Int64 List Splitbft_util String
