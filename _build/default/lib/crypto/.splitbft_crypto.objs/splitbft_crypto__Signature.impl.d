lib/crypto/signature.ml: Format Hashtbl Hmac Sha256 Splitbft_util String
