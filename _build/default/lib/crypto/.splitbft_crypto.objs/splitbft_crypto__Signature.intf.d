lib/crypto/signature.mli: Format Splitbft_util
