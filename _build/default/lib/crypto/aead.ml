let tag_size = 16
let nonce_size = Chacha20.nonce_size

(* Independent subkeys for the cipher and the MAC, derived from the AEAD
   key so callers manage a single 32-byte secret. *)
let subkeys key =
  let okm = Kdf.derive ~ikm:key ~info:"splitbft-aead-v1" ~length:64 () in
  (String.sub okm 0 32, String.sub okm 32 32)

let tag ~mac_key ~nonce ~aad ciphertext =
  let full = Hmac.mac_parts ~key:mac_key [ aad; nonce; ciphertext ] in
  String.sub full 0 tag_size

let encrypt ~key ~nonce ~aad plaintext =
  let enc_key, mac_key = subkeys key in
  let ciphertext = Chacha20.encrypt ~key:enc_key ~nonce plaintext in
  ciphertext ^ tag ~mac_key ~nonce ~aad ciphertext

let decrypt ~key ~nonce ~aad payload =
  let n = String.length payload in
  if n < tag_size then Error "AEAD payload shorter than tag"
  else begin
    let ciphertext = String.sub payload 0 (n - tag_size) in
    let received = String.sub payload (n - tag_size) tag_size in
    let enc_key, mac_key = subkeys key in
    let expected = tag ~mac_key ~nonce ~aad ciphertext in
    if Hmac.equal_constant_time expected received then
      Ok (Chacha20.encrypt ~key:enc_key ~nonce ciphertext)
    else Error "AEAD tag verification failed"
  end
