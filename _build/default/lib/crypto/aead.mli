(** Authenticated encryption with associated data: ChaCha20 encryption with
    an encrypt-then-MAC HMAC-SHA256 tag.

    The paper encrypts client requests/replies so only the Execution enclave
    sees plaintexts, and seals enclave state for recovery; both go through
    this module.  (The Rust artifact used ring's AEAD; the substitution is a
    standard EtM composition over our from-scratch primitives.) *)

val tag_size : int
(** 16 bytes (truncated HMAC-SHA256). *)

val nonce_size : int
(** 12. *)

val encrypt : key:string -> nonce:string -> aad:string -> string -> string
(** [encrypt ~key ~nonce ~aad plaintext] is [ciphertext ^ tag].  The tag
    covers [aad], the nonce, and the ciphertext. *)

val decrypt :
  key:string -> nonce:string -> aad:string -> string -> (string, string) result
(** Authenticates then decrypts; [Error _] on a bad tag or truncated
    input. *)
