type public = string
type secret = { key : string }
type keypair = { public : public; secret : secret }

let public_size = 32

(* Idealized-PKI registry, as in Signature: public -> shared-key material.
   [encrypt] consults it (standing in for the DH exchange); [decrypt]
   requires the abstract secret, which adversary code cannot obtain. *)
let registry : (string, string) Hashtbl.t = Hashtbl.create 64

let shared_key_of key = Kdf.derive ~ikm:key ~info:"splitbft-box-shared" ~length:32 ()
let public_of key = Sha256.digest_parts [ "splitbft-box-public"; key ]

let register key =
  let public = public_of key in
  Hashtbl.replace registry public (shared_key_of key);
  { public; secret = { key } }

let generate rng = register (Splitbft_util.Rng.bytes rng 32)
let derive ~seed = register (Sha256.digest_parts [ "splitbft-box-secret"; seed ])

let encrypt ~public ~rng plaintext =
  match Hashtbl.find_opt registry public with
  | None -> Error "unknown box public key"
  | Some shared ->
    let nonce = Splitbft_util.Rng.bytes rng Aead.nonce_size in
    Ok (nonce ^ Aead.encrypt ~key:shared ~nonce ~aad:public plaintext)

let decrypt secret blob =
  let public = public_of secret.key in
  let shared = shared_key_of secret.key in
  if String.length blob < Aead.nonce_size then Error "box ciphertext too short"
  else begin
    let nonce = String.sub blob 0 Aead.nonce_size in
    let payload = String.sub blob Aead.nonce_size (String.length blob - Aead.nonce_size) in
    Aead.decrypt ~key:shared ~nonce ~aad:public payload
  end
