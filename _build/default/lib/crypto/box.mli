(** Public-key encryption for session-key provisioning.

    Clients provision their request-encryption session key to the Execution
    enclave after attestation (§4 step 1).  The Rust artifact would use an
    ECDH exchange; as with {!Signature} we provide the idealized
    functionality instead: anyone can encrypt to a public key, and only the
    holder of the (abstract, unreadable) secret can decrypt.  Ciphertexts
    are real AEAD blobs under a key derived from the recipient identity, so
    on-the-wire confidentiality checks (canary scanning) are meaningful. *)

type public = string
type secret
type keypair = { public : public; secret : secret }

val generate : Splitbft_util.Rng.t -> keypair
val derive : seed:string -> keypair

val encrypt : public:public -> rng:Splitbft_util.Rng.t -> string -> (string, string) result
(** [Error _] if the public key is unknown (not a real recipient). *)

val decrypt : secret -> string -> (string, string) result
val public_size : int
