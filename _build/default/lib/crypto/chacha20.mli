(** ChaCha20 stream cipher (RFC 8439), implemented from scratch and
    validated against the RFC test vectors.

    Provides the confidentiality layer for client requests/replies and for
    enclave sealing (see {!Aead}). *)

val key_size : int
(** 32. *)

val nonce_size : int
(** 12. *)

val block : key:string -> counter:int -> nonce:string -> string
(** [block ~key ~counter ~nonce] is the 64-byte keystream block. *)

val encrypt : key:string -> nonce:string -> ?counter:int -> string -> string
(** XORs the keystream into the payload.  Encryption and decryption are the
    same operation.  [counter] defaults to 1 as in RFC 8439 AEAD usage.
    @raise Invalid_argument on wrong key or nonce size. *)
