let block_size = Sha256.block_size

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  Bytes.unsafe_to_string padded

let xor_with s c =
  String.map (fun ch -> Char.chr (Char.code ch lxor c)) s

let mac_parts ~key parts =
  let k0 = normalize_key key in
  let inner = Sha256.init () in
  Sha256.update inner (xor_with k0 0x36);
  List.iter (Sha256.update inner) parts;
  let inner_digest = Sha256.finalize inner in
  Sha256.digest_parts [ xor_with k0 0x5c; inner_digest ]

let mac ~key msg = mac_parts ~key [ msg ]

let equal_constant_time a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

let verify ~key ~msg ~tag = equal_constant_time (mac ~key msg) tag
