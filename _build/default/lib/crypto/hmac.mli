(** HMAC-SHA256 (RFC 2104), validated against the RFC 4231 test vectors.

    The paper authenticates client requests and replies with HMAC-SHA2; we
    use the same construction for that role, for AEAD tags, and as the PRF
    of the idealized signature scheme. *)

val mac : key:string -> string -> string
(** 32-byte tag. *)

val mac_parts : key:string -> string list -> string
(** Tag over the concatenation of the parts. *)

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-time comparison of the expected tag against [tag]. *)

val equal_constant_time : string -> string -> bool
(** Timing-safe string equality (also exported for tag comparisons made by
    other modules). *)
