let extract ~salt ~ikm = Hmac.mac ~key:salt ikm

let expand ~prk ~info ~length =
  if length > 255 * Sha256.digest_size then invalid_arg "Kdf.expand: length too large";
  let buf = Buffer.create length in
  let rec loop prev i =
    if Buffer.length buf >= length then ()
    else begin
      let block = Hmac.mac_parts ~key:prk [ prev; info; String.make 1 (Char.chr i) ] in
      Buffer.add_string buf block;
      loop block (i + 1)
    end
  in
  loop "" 1;
  String.sub (Buffer.contents buf) 0 length

let derive ?salt ~ikm ~info ~length () =
  let salt = match salt with Some s -> s | None -> String.make Sha256.digest_size '\x00' in
  expand ~prk:(extract ~salt ~ikm) ~info ~length
