(** HKDF-SHA256 key derivation (RFC 5869).

    Used to derive enclave sealing keys from (platform secret, measurement),
    per-direction session keys from a client master secret, and MAC keys
    inside {!Aead}. *)

val extract : salt:string -> ikm:string -> string
(** 32-byte pseudo-random key. *)

val expand : prk:string -> info:string -> length:int -> string
(** Output keying material of [length] bytes ([length <= 255 * 32]). *)

val derive : ?salt:string -> ikm:string -> info:string -> length:int -> unit -> string
(** [extract] followed by [expand]; [salt] defaults to all zeros. *)
