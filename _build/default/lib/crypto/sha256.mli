(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for message digests, checkpoint state digests, measurements of
    enclave code identity, and as the compression function of {!Hmac} and
    {!Kdf}.  Validated against the FIPS/NIST test vectors in the test
    suite. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit

val finalize : ctx -> string
(** 32-byte digest.  The context must not be used afterwards. *)

val digest : string -> string
(** One-shot hash. *)

val digest_parts : string list -> string
(** Hash of the concatenation of the parts, without building it. *)

val hex : string -> string
(** [hex s] is the lowercase hex digest of [s]. *)

val digest_size : int
(** 32. *)

val block_size : int
(** 64. *)
