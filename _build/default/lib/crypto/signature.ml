type public = string
type secret = { key : string }
type keypair = { public : public; secret : secret }

let signature_size = 32
let public_size = 32

(* The idealized-PKI registry: public key -> signing key.  Verification is
   the only reader; adversary code has no access to this table. *)
let registry : (string, string) Hashtbl.t = Hashtbl.create 64

let public_of_secret key = Sha256.digest_parts [ "splitbft-public-key"; key ]

let register key =
  let public = public_of_secret key in
  Hashtbl.replace registry public key;
  { public; secret = { key } }

let generate rng = register (Splitbft_util.Rng.bytes rng 32)
let derive ~seed = register (Sha256.digest_parts [ "splitbft-secret-key"; seed ])
let sign secret msg = Hmac.mac ~key:secret.key msg

let verify ~public ~msg ~signature =
  if String.length signature <> signature_size then false
  else
    match Hashtbl.find_opt registry public with
    | None -> false
    | Some key -> Hmac.equal_constant_time (Hmac.mac ~key msg) signature

let registered public = Hashtbl.mem registry public
let pp_public ppf p = Format.pp_print_string ppf (Splitbft_util.Hex.short ~len:12 p)
