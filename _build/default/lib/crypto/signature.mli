(** Digital signatures with transferable authentication.

    The Rust artifact signs replica and enclave messages with Ed25519
    (ring).  Re-implementing curve arithmetic is out of scope for this
    reproduction (see DESIGN.md §1); instead we provide an {e idealized
    signature functionality}: signing is a PRF (HMAC-SHA256) under the
    signer's secret key, and verification resolves the public key through a
    process-global registry populated at key-generation time.  The scheme
    has exactly the interface BFT correctness relies on — only the holder of
    the secret key can produce a tag that verifies under the matching public
    key, and anyone can verify — which is the standard idealization used in
    protocol models.  A byzantine node in the simulation can sign with keys
    it owns but cannot forge signatures of correct nodes.

    Signing and verification latencies are {e metered} by the TEE cost
    model, not by this module. *)

type public = string
(** 32-byte public key. *)

type secret
(** Abstract secret key; cannot be read back out, only used to sign. *)

type keypair = { public : public; secret : secret }

val generate : Splitbft_util.Rng.t -> keypair
(** Fresh keypair from simulation randomness; registers the public key. *)

val derive : seed:string -> keypair
(** Deterministic keypair from a seed string (same seed, same keys);
    registers the public key.  Used to give stable identities to replicas,
    enclaves and clients. *)

val sign : secret -> string -> string
(** 32-byte signature over the message. *)

val verify : public:public -> msg:string -> signature:string -> bool
(** [false] for unknown public keys, wrong-length signatures, or tags that
    do not verify. *)

val signature_size : int
val public_size : int
val registered : public -> bool
val pp_public : Format.formatter -> public -> unit
