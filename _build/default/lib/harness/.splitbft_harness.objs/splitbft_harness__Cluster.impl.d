lib/harness/cluster.ml: Int64 List Option Splitbft_app Splitbft_client Splitbft_core Splitbft_minbft Splitbft_pbft Splitbft_sim Splitbft_tee Splitbft_types
