lib/harness/experiments.ml: Array Cluster Filename Float List Printf Splitbft_core Splitbft_tee Splitbft_types Splitbft_util Sys Table Workload
