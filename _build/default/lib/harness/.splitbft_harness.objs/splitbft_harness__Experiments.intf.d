lib/harness/experiments.mli: Cluster
