lib/harness/safety.ml: Cluster Hashtbl List Printf Splitbft_sim String Workload
