lib/harness/safety.mli: Cluster Workload
