lib/harness/scenarios.ml: Cluster List Printf Safety Splitbft_core Splitbft_minbft Splitbft_pbft Splitbft_sim Splitbft_types String Table Workload
