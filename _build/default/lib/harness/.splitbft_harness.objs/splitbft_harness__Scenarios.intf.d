lib/harness/scenarios.mli: Cluster Safety Workload
