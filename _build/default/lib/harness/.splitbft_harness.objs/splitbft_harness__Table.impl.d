lib/harness/table.ml: Float List Printf String
