lib/harness/table.mli:
