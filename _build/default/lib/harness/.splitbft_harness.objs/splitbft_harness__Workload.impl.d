lib/harness/workload.ml: Cluster List Printf Splitbft_app Splitbft_client Splitbft_sim Splitbft_util String
