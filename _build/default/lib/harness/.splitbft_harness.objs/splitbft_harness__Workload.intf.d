lib/harness/workload.mli: Cluster
