type scanner = { mutable leaks : int }

let contains_canary payload =
  let needle = Workload.canary in
  let n = String.length needle and m = String.length payload in
  let rec loop i =
    if i + n > m then false
    else if String.equal (String.sub payload i n) needle then true
    else loop (i + 1)
  in
  loop 0

let install_scanner cluster =
  let s = { leaks = 0 } in
  Splitbft_sim.Network.set_tap (Cluster.network cluster)
    (Some (fun ~src:_ ~dst:_ payload -> if contains_canary payload then s.leaks <- s.leaks + 1));
  s

let network_leaks s = s.leaks

let storage_leaks cluster ~honest_hosts =
  ignore honest_hosts;
  List.fold_left
    (fun acc node ->
      List.fold_left
        (fun acc (_, data) -> if contains_canary data then acc + 1 else acc)
        acc
        (Cluster.persisted_of node))
    0 (Cluster.nodes cluster)

type agreement =
  | Agreement
  | Conflict of { seq : int64; a : int; b : int }

let check_agreement cluster ~honest =
  let logs =
    List.map
      (fun i ->
        let table = Hashtbl.create 256 in
        List.iter
          (fun (seq, d) -> Hashtbl.replace table seq d)
          (Cluster.executed_log_of (Cluster.node cluster i));
        (i, table))
      honest
  in
  let rec pairs = function
    | [] -> Agreement
    | (a, ta) :: rest ->
      let conflict_with (b, tb) =
        Hashtbl.fold
          (fun seq da acc ->
            match acc with
            | Some _ -> acc
            | None -> (
              match Hashtbl.find_opt tb seq with
              | Some db when not (String.equal da db) -> Some (seq, b)
              | Some _ | None -> None))
          ta None
      in
      let rec check_rest = function
        | [] -> pairs rest
        | other :: more -> (
          match conflict_with other with
          | Some (seq, b) -> Conflict { seq; a; b }
          | None -> check_rest more)
      in
      check_rest rest
  in
  pairs logs

type verdict = {
  live : bool;
  safe : bool;
  confidential : bool;
  detail : string;
}

let verdict cluster ~honest ~scanner ~workload ~min_completed =
  let agreement = check_agreement cluster ~honest in
  let storage = storage_leaks cluster ~honest_hosts:honest in
  let live = workload.Workload.completed_total >= min_completed in
  let safe = agreement = Agreement && workload.Workload.wrong_results = 0 in
  let confidential = network_leaks scanner = 0 && storage = 0 in
  let detail =
    let parts = ref [] in
    (match agreement with
    | Agreement -> ()
    | Conflict { seq; a; b } ->
      parts := Printf.sprintf "divergence at seq %Ld (replicas %d vs %d)" seq a b :: !parts);
    if workload.Workload.wrong_results > 0 then
      parts := Printf.sprintf "%d wrong client results" workload.Workload.wrong_results :: !parts;
    if network_leaks scanner > 0 then
      parts := Printf.sprintf "%d leaking wire payloads" (network_leaks scanner) :: !parts;
    if storage > 0 then parts := Printf.sprintf "%d leaking storage blobs" storage :: !parts;
    if not live then
      parts :=
        Printf.sprintf "only %d ops completed (needed %d)" workload.Workload.completed_total
          min_completed
        :: !parts;
    String.concat "; " (List.rev !parts)
  in
  { live; safe; confidential; detail }
