(** Safety, liveness and confidentiality verdicts over a finished run.

    Safety here is the paper's notion: honest replicas never execute
    conflicting batches at the same sequence number (agreement), clients
    never accept a wrong result (integrity of replies, checked by the
    workload), and persisted ledgers are prefix-consistent.
    Confidentiality: operation plaintexts (identified by the workload
    canary) never appear in untrusted-world bytes — network payloads or
    untrusted storage. *)

type scanner

val install_scanner : Cluster.t -> scanner
(** Taps the network; call before the run starts. *)

val network_leaks : scanner -> int
(** Payloads observed on the wire containing the canary. *)

val storage_leaks : Cluster.t -> honest_hosts:int list -> int
(** Untrusted-storage blobs containing the canary.  Only hosts whose
    environment is honest are scanned for *surprising* leaks; a byzantine
    host exfiltrating what its own enclaves legitimately gave it is counted
    too, since enclave outputs should be sealed/encrypted regardless. *)

type agreement =
  | Agreement
  | Conflict of { seq : int64; a : int; b : int }
      (** replicas [a] and [b] executed different batches at [seq] *)

val check_agreement : Cluster.t -> honest:int list -> agreement

type verdict = {
  live : bool;
  safe : bool;
  confidential : bool;
  detail : string;
}

val verdict :
  Cluster.t ->
  honest:int list ->
  scanner:scanner ->
  workload:Workload.result ->
  min_completed:int ->
  verdict
