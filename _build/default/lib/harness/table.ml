let render ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let width i =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row i with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let pad cell w = cell ^ String.make (max 0 (w - String.length cell)) ' ' in
  let line row =
    String.concat "  " (List.mapi (fun i cell -> pad cell (List.nth widths i)) row)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line header :: rule :: List.map line rows)

let print ~title ~header ~rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ~header ~rows)

let print_series ~title ~x_label ~columns ~rows =
  let header = x_label :: columns in
  let fmt v =
    if Float.is_nan v then "-"
    else if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.2f" v
  in
  let rows = List.map (fun (x, ys) -> fmt x :: List.map fmt ys) rows in
  print ~title ~header ~rows

let us v =
  if Float.is_nan v then "-"
  else if v >= 10_000.0 then Printf.sprintf "%.1fms" (v /. 1000.0)
  else Printf.sprintf "%.0fus" v

let ops v =
  if Float.is_nan v then "-"
  else if v >= 10_000.0 then Printf.sprintf "%.1fk" (v /. 1000.0)
  else Printf.sprintf "%.0f" v

let pct v = Printf.sprintf "%.0f%%" (100.0 *. v)
let yes_no b = if b then "yes" else "no"
