(** Fixed-width table and series rendering for the experiment output. *)

val render : header:string list -> rows:string list list -> string
(** Aligned columns with a rule under the header. *)

val print : title:string -> header:string list -> rows:string list list -> unit

val print_series :
  title:string -> x_label:string -> columns:string list ->
  rows:(float * float list) list -> unit
(** A figure rendered as a numeric series: one [x] column and one column
    per curve. *)

val us : float -> string
(** Microseconds with sensible precision. *)

val ops : float -> string
(** Operations per second (k-suffixed above 10k). *)

val pct : float -> string
val yes_no : bool -> string
