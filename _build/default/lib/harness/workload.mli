(** Closed-loop workload driver implementing the paper's measurement
    methodology (§6): clients constantly issue synchronous requests
    ([window] = 1; or 40 outstanding in the batched experiments), latency
    is the time to collect the reply quorum, and throughput/latency are
    computed over a measurement window after warm-up.

    Operations embed a canary marker ({!canary}); the confidentiality
    checker scans untrusted-world bytes for it. *)

type spec = {
  clients : int;
  window : int;
  warmup_us : float;
  duration_us : float;
  payload_size : int;  (** operation value size; the paper uses 10 bytes *)
  ready_quorum : int option;  (** SplitBFT session acks required *)
}

val default_spec : spec
(** 10 clients, window 1, 0.5 s warm-up, 2 s measurement, 10-byte values. *)

type result = {
  throughput_ops : float;  (** operations per second of simulated time *)
  mean_latency_us : float;
  p50_latency_us : float;
  p99_latency_us : float;
  completed : int;  (** inside the measurement window *)
  completed_total : int;
  wrong_results : int;  (** replies that did not match the expected result *)
  clients_ready : int;
}

val canary : string
(** Marker embedded in every generated operation payload. *)

val run : ?at_warmup:(unit -> unit) -> Cluster.t -> spec -> result
(** Deploys clients on the cluster, runs the simulation for
    [warmup + duration], and reports measurement-window statistics.
    [at_warmup] fires at the start of the measurement window (used to
    reset enclave ecall statistics for Figure 4). *)
