lib/minbft/mmsg.ml: Char Printf Splitbft_codec Splitbft_types String Usig
