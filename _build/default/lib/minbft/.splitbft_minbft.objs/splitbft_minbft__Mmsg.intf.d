lib/minbft/mmsg.mli: Splitbft_types Usig
