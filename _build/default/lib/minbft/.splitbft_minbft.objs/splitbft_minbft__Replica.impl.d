lib/minbft/replica.ml: Array Hashtbl Int64 Lazy List Mmsg Option Printf Splitbft_app Splitbft_crypto Splitbft_sim Splitbft_tee Splitbft_types String Usig
