lib/minbft/usig.ml: Int64 Printf Splitbft_codec Splitbft_crypto
