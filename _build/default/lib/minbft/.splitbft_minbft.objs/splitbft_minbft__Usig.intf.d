lib/minbft/usig.mli:
