(** MinBFT wire messages.

    Every replica-to-replica message carries a USIG identifier; receivers
    process each sender's stream strictly in counter order, which is what
    rules out equivocation with only [2f + 1] replicas.  Client requests
    and replies reuse the shared {!Splitbft_types.Message} forms.  Tags are
    disjoint from the shared message tags so both can be told apart on the
    wire. *)

module Message = Splitbft_types.Message

type prepare = {
  p_view : int;
  p_batch : Message.request list;
  p_ui : Usig.ui;  (** the primary's counter defines the order *)
}

type commit = {
  c_view : int;
  c_primary_counter : int64;
  c_digest : string;
  c_sender : int;
  c_ui : Usig.ui;
}

type checkpoint = {
  k_counter : int64;  (** primary counter of the last executed prepare *)
  k_state_digest : string;
  k_sender : int;
  k_ui : Usig.ui;
}

type viewchange = { v_new_view : int; v_sender : int; v_ui : Usig.ui }
type newview = { n_view : int; n_sender : int; n_ui : Usig.ui }

type t =
  | Prepare of prepare
  | Commit of commit
  | Checkpoint of checkpoint
  | Viewchange of viewchange
  | Newview of newview

val sender : t -> int
val ui : t -> Usig.ui

val signed_part : t -> string
(** Bytes covered by the message's USIG certificate. *)

val encode : t -> string
val decode : string -> (t, string) result

val is_minbft_payload : string -> bool
(** Distinguishes MinBFT payloads from shared-format ones by tag. *)
