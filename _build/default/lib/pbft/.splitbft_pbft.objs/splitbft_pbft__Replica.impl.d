lib/pbft/replica.ml: Array Hashtbl Lazy List Option Printf Splitbft_app Splitbft_crypto Splitbft_sim Splitbft_tee Splitbft_types String
