lib/pbft/replica.mli: Splitbft_app Splitbft_sim Splitbft_tee Splitbft_types
