lib/sim/engine.ml: List Printf Splitbft_util
