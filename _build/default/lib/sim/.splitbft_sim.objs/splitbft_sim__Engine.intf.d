lib/sim/engine.mli: Splitbft_util
