lib/sim/network.ml: Engine Hashtbl List Printf Splitbft_util String
