lib/sim/resource.ml: Array Engine Float Printf
