exception Stop

type event = {
  time : float;
  seq : int;
  label : string;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  queue : event Splitbft_util.Heap.t;
  root_rng : Splitbft_util.Rng.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable live : int;
}

let compare_events a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 1L) () =
  { queue = Splitbft_util.Heap.create ~cmp:compare_events;
    root_rng = Splitbft_util.Rng.create seed;
    clock = 0.0;
    next_seq = 0;
    fired = 0;
    live = 0 }

let now t = t.clock
let rng t = t.root_rng

let schedule t ~delay ~label action =
  if delay < 0.0 then invalid_arg (Printf.sprintf "Engine.schedule %s: negative delay" label);
  let ev = { time = t.clock +. delay; seq = t.next_seq; label; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Splitbft_util.Heap.push t.queue ev;
  ev

let cancel ev =
  if not ev.cancelled then begin
    ev.cancelled <- true
    (* The event stays in the heap and is skipped when popped; live count is
       adjusted lazily at pop time. *)
  end

let pending t =
  List.fold_left
    (fun acc ev -> if ev.cancelled then acc else acc + 1)
    0
    (Splitbft_util.Heap.to_list t.queue)

let fire t ev =
  t.clock <- ev.time;
  t.fired <- t.fired + 1;
  ev.action ()

let step t =
  let rec next () =
    match Splitbft_util.Heap.pop t.queue with
    | None -> false
    | Some ev when ev.cancelled -> next ()
    | Some ev ->
      fire t ev;
      true
  in
  next ()

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue do
    if !budget <= 0 then continue := false
    else
      match Splitbft_util.Heap.peek t.queue with
      | None -> continue := false
      | Some ev when ev.cancelled ->
        ignore (Splitbft_util.Heap.pop t.queue)
      | Some ev ->
        (match until with
        | Some horizon when ev.time > horizon ->
          t.clock <- horizon;
          continue := false
        | _ ->
          ignore (Splitbft_util.Heap.pop t.queue);
          decr budget;
          (try fire t ev with Stop -> continue := false))
  done;
  match until with
  | Some horizon when t.clock < horizon && Splitbft_util.Heap.is_empty t.queue ->
    t.clock <- horizon
  | _ -> ()

let events_processed t = t.fired
