type entry = { time : float; label : string; detail : string }

type t = {
  capacity : int;
  mutable entries : entry list; (* newest first *)
  mutable length : int;
  mutable hash : int64;
}

let create ?(capacity = 100_000) () =
  { capacity; entries = []; length = 0; hash = 0xcbf29ce484222325L }

let fnv_prime = 0x100000001b3L

let fold_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let record t ~time ~label detail =
  let e = { time; label; detail } in
  t.hash <- fold_string (fold_string (fold_string t.hash (string_of_float time)) label) detail;
  t.entries <- e :: t.entries;
  t.length <- t.length + 1;
  if t.length > t.capacity then begin
    (* Drop the oldest half; amortizes the list reversal. *)
    let keep = t.capacity / 2 in
    t.entries <- List.filteri (fun i _ -> i < keep) t.entries;
    t.length <- keep
  end

let entries t = List.rev t.entries
let length t = t.length
let fingerprint t = Printf.sprintf "%016Lx" t.hash

let pp_entry ppf e = Format.fprintf ppf "[%12.1f] %-24s %s" e.time e.label e.detail
