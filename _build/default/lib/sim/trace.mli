(** Bounded in-memory trace of simulation events.

    Used by the determinism tests (same seed ⇒ identical trace) and for
    debugging protocol runs. *)

type entry = { time : float; label : string; detail : string }
type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 100_000) bounds memory; older entries are dropped. *)

val record : t -> time:float -> label:string -> string -> unit
val entries : t -> entry list
(** Oldest first. *)

val length : t -> int
val fingerprint : t -> string
(** Order-sensitive SHA-free fingerprint (a 64-bit FNV-style fold rendered
    in hex) of the whole trace, cheap to compare across runs. *)

val pp_entry : Format.formatter -> entry -> unit
