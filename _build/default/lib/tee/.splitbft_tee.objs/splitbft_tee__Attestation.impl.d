lib/tee/attestation.ml: Measurement Platform Splitbft_codec Splitbft_crypto
