lib/tee/attestation.mli: Measurement Platform Splitbft_crypto
