lib/tee/cost_model.ml:
