lib/tee/cost_model.mli:
