lib/tee/enclave.ml: Attestation Cost_model List Measurement Platform Printf Sealing Splitbft_crypto Splitbft_sim Splitbft_util String
