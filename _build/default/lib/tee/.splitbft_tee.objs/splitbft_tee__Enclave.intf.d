lib/tee/enclave.mli: Cost_model Measurement Platform Splitbft_crypto Splitbft_sim Splitbft_util
