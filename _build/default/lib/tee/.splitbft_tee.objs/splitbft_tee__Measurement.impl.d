lib/tee/measurement.ml: Format Splitbft_crypto Splitbft_util String
