lib/tee/measurement.mli: Format
