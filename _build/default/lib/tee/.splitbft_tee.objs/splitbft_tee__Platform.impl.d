lib/tee/platform.ml: Hashtbl Int64 Measurement Option Printf Splitbft_crypto Splitbft_sim Splitbft_util
