lib/tee/platform.mli: Measurement Splitbft_crypto Splitbft_sim Splitbft_util
