lib/tee/sealing.ml: Splitbft_crypto Splitbft_util String
