lib/tee/sealing.mli: Splitbft_util
