module Signature = Splitbft_crypto.Signature
module Writer = Splitbft_codec.Writer
module Reader = Splitbft_codec.Reader

type quote = {
  platform_public : Signature.public;
  measurement : Measurement.t;
  report_data : string;
  signature : string;
}

let signed_payload ~platform_public ~measurement ~report_data =
  Writer.to_string
    (fun w () ->
      Writer.raw w "splitbft-quote-v1";
      Writer.bytes w platform_public;
      Writer.bytes w (Measurement.to_raw measurement);
      Writer.bytes w report_data)
    ()

let create platform ~measurement ~report_data =
  let key = Platform.attestation_key platform in
  let payload =
    signed_payload ~platform_public:key.Signature.public ~measurement ~report_data
  in
  { platform_public = key.Signature.public;
    measurement;
    report_data;
    signature = Signature.sign key.Signature.secret payload }

let verify ?expected_measurement quote =
  Platform.is_genuine_public quote.platform_public
  && Signature.verify ~public:quote.platform_public
       ~msg:
         (signed_payload ~platform_public:quote.platform_public
            ~measurement:quote.measurement ~report_data:quote.report_data)
       ~signature:quote.signature
  &&
  match expected_measurement with
  | None -> true
  | Some m -> Measurement.equal m quote.measurement

let encode quote =
  Writer.to_string
    (fun w q ->
      Writer.bytes w q.platform_public;
      Writer.bytes w (Measurement.to_raw q.measurement);
      Writer.bytes w q.report_data;
      Writer.bytes w q.signature)
    quote

let decode s =
  Reader.parse
    (fun r ->
      let platform_public = Reader.bytes r in
      let measurement_raw = Reader.bytes r in
      let report_data = Reader.bytes r in
      let signature = Reader.bytes r in
      (platform_public, measurement_raw, report_data, signature))
    s
  |> function
  | Error e -> Error e
  | Ok (platform_public, measurement_raw, report_data, signature) -> (
    match Measurement.of_raw measurement_raw with
    | Error e -> Error e
    | Ok measurement -> Ok { platform_public; measurement; report_data; signature })
