(** Remote attestation (SGX quote equivalent).

    A quote binds a measurement and caller-chosen report data (here: the
    enclave's protocol public key) to a genuine platform, signed by the
    platform's hardware attestation key.  Clients verify quotes of the
    Execution and Preparation enclaves before provisioning session keys,
    as in §4 step 1 of the paper. *)

type quote = {
  platform_public : Splitbft_crypto.Signature.public;
  measurement : Measurement.t;
  report_data : string;
  signature : string;
}

val create : Platform.t -> measurement:Measurement.t -> report_data:string -> quote

val verify : ?expected_measurement:Measurement.t -> quote -> bool
(** Checks that the platform is genuine hardware, the signature is valid,
    and (when given) the measurement matches. *)

val encode : quote -> string
val decode : string -> (quote, string) result
