type t = string

let of_source ~name ~version ~code =
  Splitbft_crypto.Sha256.digest_parts [ "splitbft-measurement"; name; version; code ]

let to_raw t = t

let of_raw s =
  if String.length s = Splitbft_crypto.Sha256.digest_size then Ok s
  else Error "measurement must be 32 bytes"

let equal = String.equal
let pp ppf t = Format.pp_print_string ppf (Splitbft_util.Hex.short ~len:12 t)
