(** Enclave code identity (SGX MRENCLAVE equivalent).

    A measurement is the digest of the compartment's name, version, and a
    description of its code; attestation binds quotes to it, and sealing
    keys derive from it so a different (possibly malicious) enclave on the
    same platform cannot unseal another compartment's state. *)

type t = private string
(** 32-byte digest. *)

val of_source : name:string -> version:string -> code:string -> t
val to_raw : t -> string
val of_raw : string -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
