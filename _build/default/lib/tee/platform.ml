type t = {
  id : int;
  engine : Splitbft_sim.Engine.t;
  secret : string;
  attestation_key : Splitbft_crypto.Signature.keypair;
  counters : (string, int64) Hashtbl.t;
  rng : Splitbft_util.Rng.t;
}

(* Genuine-hardware registry shared with Attestation (the role of Intel's
   provisioning service): attestation publics of real platforms. *)
let genuine : (string, unit) Hashtbl.t = Hashtbl.create 16

let is_genuine_public public = Hashtbl.mem genuine public

let create engine ~id =
  let seed = Printf.sprintf "platform-%d" id in
  let secret = Splitbft_crypto.Sha256.digest_parts [ "splitbft-platform-secret"; seed ] in
  let attestation_key = Splitbft_crypto.Signature.derive ~seed:("attest-" ^ seed) in
  Hashtbl.replace genuine attestation_key.public ();
  { id;
    engine;
    secret;
    attestation_key;
    counters = Hashtbl.create 8;
    rng = Splitbft_util.Rng.split (Splitbft_sim.Engine.rng engine) }

let id t = t.id
let engine t = t.engine
let attestation_key t = t.attestation_key

let sealing_key t measurement =
  Splitbft_crypto.Kdf.derive ~ikm:t.secret
    ~info:("splitbft-seal:" ^ Measurement.to_raw measurement)
    ~length:32 ()

let counter_increment t name =
  let v = Int64.add (Option.value ~default:0L (Hashtbl.find_opt t.counters name)) 1L in
  Hashtbl.replace t.counters name v;
  v

let counter_read t name = Option.value ~default:0L (Hashtbl.find_opt t.counters name)
let counter_tamper_reset t name = Hashtbl.remove t.counters name
let rng t = t.rng
