(** A physical host with TEE support (an SGX-capable machine).

    Each platform owns a hardware secret (root of sealing keys), an
    attestation keypair (stands in for the Intel provisioning chain), and a
    monotonic-counter service.  Platforms register themselves in
    {!Attestation}'s genuine-hardware registry at creation. *)

type t

val create : Splitbft_sim.Engine.t -> id:int -> t
val id : t -> int
val engine : t -> Splitbft_sim.Engine.t

val attestation_key : t -> Splitbft_crypto.Signature.keypair
(** Hardware attestation keypair. *)

val sealing_key : t -> Measurement.t -> string
(** 32-byte sealing key bound to (platform secret, measurement): only an
    enclave with the same measurement on the same platform derives it. *)

val counter_increment : t -> string -> int64
(** Increments and returns the named monotonic counter (starts at 0, first
    increment returns 1). *)

val counter_read : t -> string -> int64

val counter_tamper_reset : t -> string -> unit
(** Simulates a rollback attack on the counter service (for the
    rollback-detection tests); real hardware forbids this. *)

val rng : t -> Splitbft_util.Rng.t

val is_genuine_public : Splitbft_crypto.Signature.public -> bool
(** Whether the given attestation public key belongs to a real platform
    (the role of Intel's provisioning/attestation service). *)
