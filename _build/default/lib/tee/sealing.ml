module Aead = Splitbft_crypto.Aead

let seal ~key ~rng ?(aad = "") data =
  let nonce = Splitbft_util.Rng.bytes rng Aead.nonce_size in
  nonce ^ Aead.encrypt ~key ~nonce ~aad data

let unseal ~key ?(aad = "") blob =
  if String.length blob < Aead.nonce_size then Error "sealed blob too short"
  else begin
    let nonce = String.sub blob 0 Aead.nonce_size in
    let payload = String.sub blob Aead.nonce_size (String.length blob - Aead.nonce_size) in
    Aead.decrypt ~key ~nonce ~aad payload
  end
