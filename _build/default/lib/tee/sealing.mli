(** Enclave state sealing (SGX [sgx_seal_data] equivalent).

    Data is AEAD-encrypted under a key derived from (platform secret,
    measurement) — see {!Platform.sealing_key} — so only the same enclave
    code on the same platform can recover it.  Used by the Execution
    compartment for persistent blockchain blocks and for recovery after an
    enclave restart. *)

val seal : key:string -> rng:Splitbft_util.Rng.t -> ?aad:string -> string -> string
(** [seal ~key ~rng data] is a self-contained sealed blob (fresh random
    nonce included). *)

val unseal : key:string -> ?aad:string -> string -> (string, string) result
