lib/types/addr.ml:
