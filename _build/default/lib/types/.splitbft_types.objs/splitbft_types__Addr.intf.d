lib/types/addr.mli: Ids
