lib/types/client_dedup.ml: Hashtbl Int64 Message
