lib/types/client_dedup.mli: Message
