lib/types/enclave_identity.ml: Ids Printf Splitbft_tee
