lib/types/enclave_identity.mli: Ids Splitbft_tee
