lib/types/ids.ml: Format Printf
