lib/types/keys.ml: Ids List Printf Splitbft_codec Splitbft_crypto
