lib/types/keys.mli: Ids
