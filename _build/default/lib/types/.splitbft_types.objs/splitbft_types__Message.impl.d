lib/types/message.ml: Char Format Ids List Printf Splitbft_codec Splitbft_crypto Splitbft_util String
