lib/types/message.mli: Format Ids
