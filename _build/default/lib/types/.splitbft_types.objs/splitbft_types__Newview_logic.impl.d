lib/types/newview_logic.ml: Hashtbl List Message String
