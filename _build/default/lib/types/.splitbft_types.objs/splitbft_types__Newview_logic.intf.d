lib/types/newview_logic.mli: Ids Message
