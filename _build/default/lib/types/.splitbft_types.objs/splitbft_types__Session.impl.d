lib/types/session.ml: Message Printf Splitbft_codec Splitbft_crypto Splitbft_util
