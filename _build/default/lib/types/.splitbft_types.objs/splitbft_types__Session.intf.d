lib/types/session.mli: Ids Message Splitbft_util
