lib/types/validation.ml: Hashtbl Ids List Message Option Splitbft_crypto String
