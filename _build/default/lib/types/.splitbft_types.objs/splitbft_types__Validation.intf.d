lib/types/validation.mli: Ids Message Splitbft_crypto
