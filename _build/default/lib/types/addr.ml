let client_base = 1_000
let replica i = i
let client c = client_base + c
let is_client addr = addr >= client_base
let client_of_addr addr = addr - client_base
let replica_of_addr addr = addr
