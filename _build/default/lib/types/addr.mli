(** Network address scheme shared by all protocols: replicas occupy the low
    address range, clients start at {!client_base}. *)

val replica : Ids.replica_id -> int
val client : Ids.client_id -> int
val client_base : int
val is_client : int -> bool
val client_of_addr : int -> Ids.client_id
val replica_of_addr : int -> Ids.replica_id
