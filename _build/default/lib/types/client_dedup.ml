type t = {
  mutable floor : int64;  (* all ts <= floor executed *)
  above : (int64, Message.reply option) Hashtbl.t;  (* executed ts > floor *)
  mutable latest_reply : Message.reply option;  (* for retransmits at/below floor *)
}

let create () = { floor = 0L; above = Hashtbl.create 8; latest_reply = None }

let executed t ts = Int64.compare ts t.floor <= 0 || Hashtbl.mem t.above ts

let rec advance t =
  let next = Int64.add t.floor 1L in
  match Hashtbl.find_opt t.above next with
  | Some reply ->
    Hashtbl.remove t.above next;
    t.floor <- next;
    (match reply with
    | Some r -> t.latest_reply <- Some r
    | None -> ());
    advance t
  | None -> ()

let record t ts reply =
  if executed t ts then invalid_arg "Client_dedup.record: duplicate timestamp";
  Hashtbl.replace t.above ts reply;
  advance t

let cached_reply t ts =
  match Hashtbl.find_opt t.above ts with
  | Some reply -> reply
  | None -> (
    if Int64.compare ts t.floor > 0 then None
    else
      match t.latest_reply with
      | Some r when Int64.equal r.Message.timestamp ts -> Some r
      | Some _ | None -> None)

let floor_ts t = t.floor
let pending_above_floor t = Hashtbl.length t.above
