(** Per-client execute-once bookkeeping with reply caching.

    Classic PBFT deduplicates with the client's last executed timestamp,
    which assumes one outstanding request per client.  The paper's batched
    experiments give every client 40 outstanding requests, whose network
    arrival order is arbitrary — a bare timestamp watermark would wrongly
    drop any request overtaken by a later one.  This tracks a contiguous
    floor plus the sparse set of executed timestamps above it (bounded by
    the client's window), exactly once per timestamp, with cached replies
    for retransmissions. *)

type t

val create : unit -> t

val executed : t -> int64 -> bool
(** Has this timestamp already been executed? *)

val record : t -> int64 -> Message.reply option -> unit
(** Marks the timestamp executed and caches the reply; advances the
    contiguous floor and prunes cache entries below it.
    @raise Invalid_argument if the timestamp was already recorded. *)

val cached_reply : t -> int64 -> Message.reply option
(** The cached reply for an executed timestamp, if still retained (replies
    at or below the floor keep only the latest). *)

val floor_ts : t -> int64
(** All timestamps <= this value are executed. *)

val pending_above_floor : t -> int
