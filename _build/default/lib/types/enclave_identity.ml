let version = "1.0.0"

let make name =
  Splitbft_tee.Measurement.of_source ~name ~version
    ~code:(Printf.sprintf "splitbft %s compartment" name)

let preparation = make "preparation"
let confirmation = make "confirmation"
let execution = make "execution"

let of_compartment = function
  | Ids.Preparation -> preparation
  | Ids.Confirmation -> confirmation
  | Ids.Execution -> execution
