(** Canonical measurements of the three SplitBFT compartments.

    Clients verify attestation quotes against these before provisioning
    session keys; the TEE substrate derives sealing keys from them.  They
    are deployment constants: every replica runs the same compartment code,
    so all enclaves of one type share a measurement. *)

val preparation : Splitbft_tee.Measurement.t
val confirmation : Splitbft_tee.Measurement.t
val execution : Splitbft_tee.Measurement.t
val of_compartment : Ids.compartment -> Splitbft_tee.Measurement.t
