type replica_id = int
type client_id = int
type view = int
type seqno = int
type compartment = Preparation | Confirmation | Execution

let all_compartments = [ Preparation; Confirmation; Execution ]

let compartment_name = function
  | Preparation -> "preparation"
  | Confirmation -> "confirmation"
  | Execution -> "execution"

let compartment_of_name = function
  | "preparation" -> Ok Preparation
  | "confirmation" -> Ok Confirmation
  | "execution" -> Ok Execution
  | other -> Error (Printf.sprintf "unknown compartment %S" other)

let pp_compartment ppf c = Format.pp_print_string ppf (compartment_name c)

let f_of_n n =
  if n < 1 then invalid_arg "Ids.f_of_n: n must be positive";
  (n - 1) / 3

let quorum ~n = (2 * f_of_n n) + 1

let primary_of_view ~n view =
  if view < 0 then invalid_arg "Ids.primary_of_view: negative view";
  view mod n

let f_of_n_hybrid n =
  if n < 1 then invalid_arg "Ids.f_of_n_hybrid: n must be positive";
  (n - 1) / 2

let crash_quorum ~n = f_of_n_hybrid n + 1
