(** Identifiers and quorum arithmetic shared by every protocol in this
    repository. *)

type replica_id = int
type client_id = int
type view = int
type seqno = int

type compartment = Preparation | Confirmation | Execution
(** The three compartment types of SplitBFT's PBFT decomposition. *)

val all_compartments : compartment list
val compartment_name : compartment -> string
val compartment_of_name : string -> (compartment, string) result
val pp_compartment : Format.formatter -> compartment -> unit

val f_of_n : int -> int
(** Largest [f] with [n >= 3f + 1]. *)

val quorum : n:int -> int
(** [2f + 1] for [f = f_of_n n]: the size of prepare-certificate (counting
    the PrePrepare), commit and checkpoint quorums. *)

val primary_of_view : n:int -> view -> replica_id
(** Round-robin primary assignment, [view mod n]. *)

val crash_quorum : n:int -> int
(** Majority quorum [f + 1] used by MinBFT-style hybrid protocols with
    [n = 2f + 1]. *)

val f_of_n_hybrid : int -> int
(** Largest [f] with [n >= 2f + 1]. *)
