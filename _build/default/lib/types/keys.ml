module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader
module Hmac = Splitbft_crypto.Hmac
module Kdf = Splitbft_crypto.Kdf

let replica_signing_seed ~protocol id = Printf.sprintf "%s-replica-%d" protocol id

let enclave_signing_seed replica compartment =
  Printf.sprintf "splitbft-enclave-%d-%s" replica (Ids.compartment_name compartment)

let enclave_box_seed replica compartment =
  Printf.sprintf "splitbft-enclave-box-%d-%s" replica (Ids.compartment_name compartment)

let client_replica_key ~protocol ~client ~replica =
  Kdf.derive
    ~ikm:(Printf.sprintf "%s-client-%d" protocol client)
    ~info:(Printf.sprintf "replica-%d" replica)
    ~length:32 ()

let make_authenticator ~protocol ~client ~n msg =
  W.to_string
    (fun w () ->
      W.list w
        (fun w replica ->
          let key = client_replica_key ~protocol ~client ~replica in
          W.bytes w (Hmac.mac ~key msg))
        (List.init n (fun i -> i)))
    ()

let check_authenticator ~protocol ~client ~replica ~msg ~auth =
  match R.parse (fun r -> R.list r R.bytes) auth with
  | Error _ -> false
  | Ok macs -> (
    match List.nth_opt macs replica with
    | None -> false
    | Some mac ->
      let key = client_replica_key ~protocol ~client ~replica in
      Hmac.equal_constant_time (Hmac.mac ~key msg) mac)
