(** Deployment key provisioning.

    Deterministic derivation of long-term keys from identities, standing in
    for the paper's assumption that "public keys are known to all
    participants" and that clients share HMAC keys with the service.
    Session keys (SplitBFT request encryption) are {e not} derived here;
    they are provisioned at run time through the attestation handshake. *)

(** {2 Replica / enclave signing identities} *)

val replica_signing_seed : protocol:string -> Ids.replica_id -> string
val enclave_signing_seed : Ids.replica_id -> Ids.compartment -> string
val enclave_box_seed : Ids.replica_id -> Ids.compartment -> string

(** {2 Client-replica MAC keys (PBFT / MinBFT baselines)} *)

val client_replica_key : protocol:string -> client:Ids.client_id -> replica:Ids.replica_id -> string

val make_authenticator :
  protocol:string -> client:Ids.client_id -> n:int -> string -> string
(** MAC vector over the given bytes, one entry per replica — the classic
    PBFT authenticator. *)

val check_authenticator :
  protocol:string ->
  client:Ids.client_id ->
  replica:Ids.replica_id ->
  msg:string ->
  auth:string ->
  bool
(** Verifies this replica's entry of the authenticator vector. *)
