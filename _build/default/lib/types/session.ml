module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader
module Aead = Splitbft_crypto.Aead
module Hmac = Splitbft_crypto.Hmac
module Kdf = Splitbft_crypto.Kdf

type keys = { auth : string; enc : string }

let generate rng =
  { auth = Splitbft_util.Rng.bytes rng 32; enc = Splitbft_util.Rng.bytes rng 32 }

let encode_for_execution k =
  W.to_string
    (fun w () ->
      W.bytes w k.auth;
      W.bytes w k.enc)
    ()

let encode_for_preparation k =
  W.to_string
    (fun w () ->
      W.bytes w k.auth;
      W.bytes w "")
    ()

let decode_provision s =
  R.parse
    (fun r ->
      let auth = R.bytes r in
      let enc = R.bytes r in
      { auth; enc })
    s

(* Deterministic nonces: unique per (direction, client, timestamp[, replica])
   because client timestamps are strictly increasing. *)
let nonce ~info =
  Kdf.derive ~ikm:info ~info:"splitbft-session-nonce" ~length:Aead.nonce_size ()

let op_nonce ~client ~timestamp =
  nonce ~info:(Printf.sprintf "op:%d:%Ld" client timestamp)

let result_nonce ~client ~timestamp ~replica =
  nonce ~info:(Printf.sprintf "res:%d:%Ld:%d" client timestamp replica)

let op_aad ~client ~timestamp = Printf.sprintf "op-aad:%d:%Ld" client timestamp

let encrypt_op k ~client ~timestamp op =
  Aead.encrypt ~key:k.enc ~nonce:(op_nonce ~client ~timestamp)
    ~aad:(op_aad ~client ~timestamp) op

let decrypt_op k ~client ~timestamp payload =
  Aead.decrypt ~key:k.enc ~nonce:(op_nonce ~client ~timestamp)
    ~aad:(op_aad ~client ~timestamp) payload

let authenticate_request k (r : Message.request) =
  { r with Message.auth = Hmac.mac ~key:k.auth (Message.request_auth_bytes r) }

let request_auth_ok k (r : Message.request) =
  Hmac.verify ~key:k.auth ~msg:(Message.request_auth_bytes r) ~tag:r.auth

let result_aad ~client ~timestamp ~replica =
  Printf.sprintf "res-aad:%d:%Ld:%d" client timestamp replica

let encrypt_result k ~client ~timestamp ~replica result =
  Aead.encrypt ~key:k.enc
    ~nonce:(result_nonce ~client ~timestamp ~replica)
    ~aad:(result_aad ~client ~timestamp ~replica)
    result

let decrypt_result k ~client ~timestamp ~replica payload =
  Aead.decrypt ~key:k.enc
    ~nonce:(result_nonce ~client ~timestamp ~replica)
    ~aad:(result_aad ~client ~timestamp ~replica)
    payload

let authenticate_reply k (rp : Message.reply) =
  { rp with Message.r_auth = Hmac.mac ~key:k.auth (Message.reply_auth_bytes rp) }

let reply_auth_ok k (rp : Message.reply) =
  Hmac.verify ~key:k.auth ~msg:(Message.reply_auth_bytes rp) ~tag:rp.r_auth
