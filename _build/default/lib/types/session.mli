(** Client session keys and request/reply confidentiality (SplitBFT).

    A client owns two session secrets: [auth] (HMAC key, shared with the
    Preparation and Execution enclaves, authenticating requests and
    replies) and [enc] (AEAD key, shared only with Execution enclaves,
    keeping operation payloads and results confidential from the untrusted
    environment and from the other compartments — opportunity O3 of the
    paper).  This module is the single implementation used by both the
    client library and the Execution compartment, so nonce derivations
    cannot drift. *)

type keys = { auth : string; enc : string }

val generate : Splitbft_util.Rng.t -> keys

(** {2 Provisioning payloads (inside the attestation box)} *)

val encode_for_execution : keys -> string
(** Both keys — what the client provisions to Execution enclaves. *)

val encode_for_preparation : keys -> string
(** Only the auth key. *)

val decode_provision : string -> (keys, string) result
(** [enc] is empty in a preparation-only provision. *)

(** {2 Request path} *)

val encrypt_op : keys -> client:Ids.client_id -> timestamp:int64 -> string -> string
val decrypt_op : keys -> client:Ids.client_id -> timestamp:int64 -> string -> (string, string) result

val authenticate_request : keys -> Message.request -> Message.request
(** Fills the [auth] field. *)

val request_auth_ok : keys -> Message.request -> bool

(** {2 Reply path} *)

val encrypt_result :
  keys -> client:Ids.client_id -> timestamp:int64 -> replica:Ids.replica_id -> string -> string

val decrypt_result :
  keys -> client:Ids.client_id -> timestamp:int64 -> replica:Ids.replica_id -> string ->
  (string, string) result

val authenticate_reply : keys -> Message.reply -> Message.reply
val reply_auth_ok : keys -> Message.reply -> bool
