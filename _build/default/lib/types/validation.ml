module Signature = Splitbft_crypto.Signature

type key_lookup = Ids.replica_id -> Signature.public option

let distinct_senders senders =
  let sorted = List.sort_uniq compare senders in
  List.length sorted = List.length senders

let verify_with lookup sender msg signature =
  match lookup sender with
  | None -> false
  | Some public -> Signature.verify ~public ~msg ~signature

let verify_preprepare lookup (pp : Message.preprepare) =
  verify_with lookup pp.sender (Message.preprepare_signing_bytes pp) pp.pp_sig

let verify_preprepare_digest lookup (pd : Message.preprepare_digest) =
  verify_with lookup pd.pd_sender (Message.preprepare_digest_signing_bytes pd) pd.pd_sig

let verify_prepare lookup (p : Message.prepare) =
  verify_with lookup p.sender (Message.prepare_signing_bytes p) p.p_sig

let verify_commit lookup (c : Message.commit) =
  verify_with lookup c.sender (Message.commit_signing_bytes c) c.c_sig

let verify_checkpoint lookup (ck : Message.checkpoint) =
  verify_with lookup ck.sender (Message.checkpoint_signing_bytes ck) ck.ck_sig

let verify_viewchange lookup (vc : Message.viewchange) =
  verify_with lookup vc.vc_sender (Message.viewchange_signing_bytes vc) vc.vc_sig

let verify_newview lookup (nv : Message.newview) =
  verify_with lookup nv.nv_sender (Message.newview_signing_bytes nv) nv.nv_sig

let prepare_cert_complete ~f (pd : Message.preprepare_digest) prepares =
  let matching =
    List.filter
      (fun (p : Message.prepare) ->
        p.view = pd.pd_view && p.seq = pd.pd_seq
        && String.equal p.digest pd.pd_digest
        && p.sender <> pd.pd_sender)
      prepares
  in
  let senders = List.map (fun (p : Message.prepare) -> p.sender) matching in
  distinct_senders senders && List.length matching >= 2 * f

let verify_prepared_proof ~f lookup (proof : Message.prepared_proof) =
  verify_preprepare_digest lookup proof.proof_preprepare
  && List.for_all (verify_prepare lookup) proof.proof_prepares
  && prepare_cert_complete ~f proof.proof_preprepare proof.proof_prepares

let commit_quorum_complete ~quorum ~view ~seq ~digest commits =
  let matching =
    List.filter
      (fun (c : Message.commit) ->
        c.view = view && c.seq = seq && String.equal c.digest digest)
      commits
  in
  let senders = List.map (fun (c : Message.commit) -> c.sender) matching in
  distinct_senders senders && List.length matching >= quorum

let checkpoint_groups checkpoints =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (ck : Message.checkpoint) ->
      let key = (ck.seq, ck.state_digest) in
      let existing = Option.value ~default:[] (Hashtbl.find_opt table key) in
      if not (List.exists (fun (c : Message.checkpoint) -> c.sender = ck.sender) existing)
      then Hashtbl.replace table key (ck :: existing))
    checkpoints;
  table

let checkpoint_quorum_complete ~quorum checkpoints =
  let table = checkpoint_groups checkpoints in
  Hashtbl.fold (fun _ group acc -> acc || List.length group >= quorum) table false

let checkpoint_quorum_seq ~quorum checkpoints =
  let table = checkpoint_groups checkpoints in
  Hashtbl.fold
    (fun (seq, _) group acc ->
      if List.length group >= quorum then
        match acc with
        | Some best when best >= seq -> acc
        | _ -> Some seq
      else acc)
    table None

let verify_viewchange_deep ~f ~vc_lookup ~ckpt_lookup ~proof_lookup
    (vc : Message.viewchange) =
  verify_viewchange vc_lookup vc
  && List.for_all (verify_checkpoint ckpt_lookup) vc.vc_checkpoint_proof
  && List.for_all (verify_prepared_proof ~f proof_lookup) vc.vc_prepared
  && (vc.vc_last_stable = 0
     ||
     match checkpoint_quorum_seq ~quorum:((2 * f) + 1) vc.vc_checkpoint_proof with
     | Some seq -> seq >= vc.vc_last_stable
     | None -> false)
