lib/util/heap.mli:
