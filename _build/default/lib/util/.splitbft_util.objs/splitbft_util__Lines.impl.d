lib/util/lines.ml: List String
