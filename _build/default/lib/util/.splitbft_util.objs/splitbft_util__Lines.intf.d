lib/util/lines.mli:
