lib/util/rng.mli:
