(** Imperative binary min-heap.

    Used as the event queue of the discrete-event simulator; the comparison
    is supplied at creation time. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in unspecified order. *)
