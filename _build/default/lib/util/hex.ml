let hex_digits = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) hex_digits.[c lsr 4];
    Bytes.set b ((2 * i) + 1) hex_digits.[c land 0xf]
  done;
  Bytes.unsafe_to_string b

let nibble c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode h =
  let n = String.length h in
  if n mod 2 <> 0 then Error "hex string has odd length"
  else
    let b = Bytes.create (n / 2) in
    let rec loop i =
      if i >= n / 2 then Ok (Bytes.unsafe_to_string b)
      else
        match nibble h.[2 * i], nibble h.[(2 * i) + 1] with
        | Some hi, Some lo ->
          Bytes.set b i (Char.chr ((hi lsl 4) lor lo));
          loop (i + 1)
        | _ -> Error (Printf.sprintf "invalid hex character at offset %d" (2 * i))
    in
    loop 0

let decode_exn h =
  match decode h with
  | Ok s -> s
  | Error msg -> invalid_arg ("Hex.decode_exn: " ^ msg)

let pp ppf s = Format.pp_print_string ppf (encode s)

let short ?(len = 8) s =
  let h = encode s in
  if String.length h <= len then h else String.sub h 0 len
