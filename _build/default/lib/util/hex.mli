(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hexadecimal rendering of [s]. *)

val decode : string -> (string, string) result
(** [decode h] parses a hexadecimal string (case-insensitive) back into
    bytes.  Returns [Error _] on odd length or non-hex characters. *)

val decode_exn : string -> string
(** Like {!decode} but raises [Invalid_argument] on malformed input. *)

val pp : Format.formatter -> string -> unit
(** Prints the argument as lowercase hex. *)

val short : ?len:int -> string -> string
(** [short s] is a truncated hex prefix of [s] (default 8 hex chars),
    suitable for log lines. *)
