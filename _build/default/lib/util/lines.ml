type counts = { code : int; comments : int; blank : int }

let zero = { code = 0; comments = 0; blank = 0 }

let add a b =
  { code = a.code + b.code;
    comments = a.comments + b.comments;
    blank = a.blank + b.blank }

(* Classify one line given the block-comment nesting depth at its start;
   returns the classification and the depth at its end.  Strings are not
   modelled ("(*" inside a string literal is miscounted), which matches the
   precision of line-counting tools like tokei closely enough for a TCB
   size table. *)
let classify line depth0 =
  let n = String.length line in
  let depth = ref depth0 in
  let has_code = ref false in
  let has_comment = ref false in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && line.[!i] = '(' && line.[!i + 1] = '*' then begin
      incr depth;
      has_comment := true;
      i := !i + 2
    end
    else if !i + 1 < n && line.[!i] = '*' && line.[!i + 1] = ')' && !depth > 0 then begin
      decr depth;
      i := !i + 2
    end
    else begin
      if !depth > 0 then has_comment := true
      else if line.[!i] <> ' ' && line.[!i] <> '\t' && line.[!i] <> '\r' then
        has_code := true;
      incr i
    end
  done;
  let kind =
    if !has_code then `Code
    else if !has_comment then `Comment
    else `Blank
  in
  (kind, !depth)

let count_string src =
  let lines = String.split_on_char '\n' src in
  (* A trailing newline yields a final empty fragment that is not a line. *)
  let lines =
    match List.rev lines with
    | "" :: rest -> List.rev rest
    | _ -> lines
  in
  let depth = ref 0 in
  List.fold_left
    (fun acc line ->
      let kind, d = classify line !depth in
      depth := d;
      match kind with
      | `Code -> add acc { zero with code = 1 }
      | `Comment -> add acc { zero with comments = 1 }
      | `Blank -> add acc { zero with blank = 1 })
    zero lines

let count_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  count_string src

let count_files paths =
  List.fold_left
    (fun acc p -> match count_file p with c -> add acc c | exception Sys_error _ -> acc)
    zero paths

let total c = c.code + c.comments + c.blank
