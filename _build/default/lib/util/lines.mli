(** Physical lines-of-code counting in the style of [tokei], used to
    regenerate the TCB-size table (Table 2 of the paper) from this
    repository's own sources. *)

type counts = { code : int; comments : int; blank : int }

val count_string : string -> counts
(** Counts OCaml source held in a string.  Block comments [(* ... *)] are
    tracked across lines (including nesting); a line that contains both code
    and a comment counts as code. *)

val count_file : string -> counts
(** Counts an OCaml source file on disk. *)

val count_files : string list -> counts
(** Sum over several files; files that cannot be read count as zero. *)

val total : counts -> int
(** [code + comments + blank]. *)
