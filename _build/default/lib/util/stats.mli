(** Online collection of scalar samples (latencies, sizes) with summary
    statistics used by the experiment harness. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]]; nearest-rank on the sorted
    samples.  Returns [nan] when empty. *)

val median : t -> float
val stddev : t -> float

val merge : t -> t -> t
(** New collector holding the samples of both arguments. *)

val pp_summary : Format.formatter -> t -> unit
