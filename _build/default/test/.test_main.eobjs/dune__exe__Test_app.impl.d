test/test_app.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Result Splitbft_app Splitbft_util String
