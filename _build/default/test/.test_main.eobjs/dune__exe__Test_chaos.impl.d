test/test_chaos.ml: Hashtbl Int64 List Printf QCheck QCheck_alcotest Splitbft_app Splitbft_client Splitbft_core Splitbft_pbft Splitbft_sim Splitbft_types String
