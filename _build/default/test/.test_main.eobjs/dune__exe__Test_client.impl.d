test/test_client.ml: Alcotest Float Hashtbl Option Queue Splitbft_app Splitbft_client Splitbft_crypto Splitbft_sim Splitbft_types String
