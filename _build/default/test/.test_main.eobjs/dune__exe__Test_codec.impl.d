test/test_codec.ml: Alcotest Float Int64 List QCheck QCheck_alcotest Result Splitbft_codec String
