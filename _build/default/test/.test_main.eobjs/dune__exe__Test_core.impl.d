test/test_core.ml: Alcotest Hashtbl List Printf Result Splitbft_app Splitbft_client Splitbft_core Splitbft_sim Splitbft_tee Splitbft_types String
