test/test_crypto.ml: Alcotest Bytes Char List QCheck QCheck_alcotest Result Splitbft_crypto Splitbft_util String
