test/test_harness.ml: Alcotest List Option Splitbft_harness String
