test/test_main.ml: Alcotest Test_app Test_chaos Test_client Test_codec Test_core Test_crypto Test_harness Test_minbft Test_pbft Test_sim Test_tee Test_types Test_util
