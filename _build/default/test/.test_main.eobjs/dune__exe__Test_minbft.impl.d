test/test_minbft.ml: Alcotest Int64 List Printf Splitbft_app Splitbft_client Splitbft_minbft Splitbft_sim String
