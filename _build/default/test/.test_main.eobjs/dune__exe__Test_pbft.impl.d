test/test_pbft.ml: Alcotest Hashtbl Int64 List Printf Splitbft_app Splitbft_client Splitbft_pbft Splitbft_sim Splitbft_types String
