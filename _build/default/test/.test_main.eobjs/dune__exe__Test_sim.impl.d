test/test_sim.ml: Alcotest List Printf QCheck QCheck_alcotest Splitbft_sim Splitbft_util String
