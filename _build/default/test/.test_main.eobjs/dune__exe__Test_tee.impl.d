test/test_tee.ml: Alcotest Int64 List Result Splitbft_crypto Splitbft_sim Splitbft_tee Splitbft_util String
