test/test_types.ml: Alcotest Array Gen Hashtbl Int64 List Option Printf QCheck QCheck_alcotest Result Splitbft_crypto Splitbft_types Splitbft_util String
