module State_machine = Splitbft_app.State_machine
module Kvs = Splitbft_app.Kvs
module Ledger = Splitbft_app.Ledger
module Counter_app = Splitbft_app.Counter_app

let check = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ----- kvs ----- *)

let test_kvs_put_get_delete () =
  let app = Kvs.create () in
  check "put" Kvs.ok (app.State_machine.apply (Kvs.encode_op (Kvs.Put ("k", "v"))));
  check "get" "v" (app.State_machine.apply (Kvs.encode_op (Kvs.Get "k")));
  check "overwrite" Kvs.ok (app.State_machine.apply (Kvs.encode_op (Kvs.Put ("k", "v2"))));
  check "get new" "v2" (app.State_machine.apply (Kvs.encode_op (Kvs.Get "k")));
  check "delete" Kvs.ok (app.State_machine.apply (Kvs.encode_op (Kvs.Delete "k")));
  check "absent" Kvs.not_found (app.State_machine.apply (Kvs.encode_op (Kvs.Get "k")))

let test_kvs_malformed_op_noops () =
  let app = Kvs.create () in
  check "garbage" State_machine.noop_result (app.State_machine.apply "\xff\xfe");
  check "empty" State_machine.noop_result (app.State_machine.apply "")

let test_kvs_snapshot_restore () =
  let a = Kvs.create () in
  ignore (a.State_machine.apply (Kvs.encode_op (Kvs.Put ("x", "1"))));
  ignore (a.State_machine.apply (Kvs.encode_op (Kvs.Put ("y", "2"))));
  let snap = a.State_machine.snapshot () in
  let b = Kvs.create () in
  (match b.State_machine.restore snap with Ok () -> () | Error e -> Alcotest.fail e);
  check "restored" "1" (b.State_machine.apply (Kvs.encode_op (Kvs.Get "x")));
  check "digest equal" (Splitbft_util.Hex.encode (State_machine.digest a))
    (Splitbft_util.Hex.encode (State_machine.digest b))

let test_kvs_snapshot_canonical () =
  (* Insertion order must not affect the snapshot (checkpoint digests must
     agree across replicas). *)
  let a = Kvs.create () and b = Kvs.create () in
  ignore (a.State_machine.apply (Kvs.encode_op (Kvs.Put ("x", "1"))));
  ignore (a.State_machine.apply (Kvs.encode_op (Kvs.Put ("y", "2"))));
  ignore (b.State_machine.apply (Kvs.encode_op (Kvs.Put ("y", "2"))));
  ignore (b.State_machine.apply (Kvs.encode_op (Kvs.Put ("x", "1"))));
  check "canonical" (Splitbft_util.Hex.encode (State_machine.digest a))
    (Splitbft_util.Hex.encode (State_machine.digest b))

let prop_kvs_op_roundtrip =
  QCheck.Test.make ~name:"kvs op codec roundtrip" ~count:200
    QCheck.(pair string string)
    (fun (k, v) ->
      match Kvs.decode_op (Kvs.encode_op (Kvs.Put (k, v))) with
      | Ok (Kvs.Put (k', v')) -> k = k' && v = v'
      | _ -> false)

let prop_kvs_deterministic =
  QCheck.Test.make ~name:"kvs replicas converge on same op sequence" ~count:50
    QCheck.(list (pair (string_of_size Gen.(1 -- 8)) (string_of_size Gen.(0 -- 8))))
    (fun ops ->
      let run () =
        let app = Kvs.create () in
        List.iter (fun (k, v) -> ignore (app.State_machine.apply (Kvs.encode_op (Kvs.Put (k, v))))) ops;
        State_machine.digest app
      in
      String.equal (run ()) (run ()))

(* ----- ledger ----- *)

let test_ledger_blocks_close () =
  let app = Ledger.create ~block_size:3 () in
  for i = 1 to 7 do
    ignore (app.State_machine.apply (Printf.sprintf "tx%d" i))
  done;
  let effects = app.State_machine.drain_effects () in
  checki "two blocks closed" 2 (List.length effects);
  checki "drain clears" 0 (List.length (app.State_machine.drain_effects ()))

let test_ledger_chain_verifies () =
  let app = Ledger.create ~block_size:2 () in
  for i = 1 to 6 do
    ignore (app.State_machine.apply (Printf.sprintf "tx%d" i))
  done;
  let blocks =
    List.map
      (fun (State_machine.Persist { data; _ }) ->
        match Ledger.decode_block data with Ok b -> b | Error e -> Alcotest.fail e)
      (app.State_machine.drain_effects ())
  in
  checki "three blocks" 3 (List.length blocks);
  (match Ledger.verify_chain blocks with Ok () -> () | Error e -> Alcotest.fail e);
  checkb "broken chain detected" true
    (Result.is_error (Ledger.verify_chain (List.rev blocks)));
  (* Tampering with a transaction breaks the link of the NEXT block. *)
  match blocks with
  | b1 :: rest ->
    let tampered = { b1 with Ledger.transactions = [ "evil" ] } in
    checkb "tampered tx detected" true (Result.is_error (Ledger.verify_chain (tampered :: rest)))
  | [] -> Alcotest.fail "no blocks"

let test_ledger_snapshot_restore () =
  let a = Ledger.create ~block_size:5 () in
  for i = 1 to 7 do
    ignore (a.State_machine.apply (Printf.sprintf "tx%d" i))
  done;
  ignore (a.State_machine.drain_effects ());
  let snap = a.State_machine.snapshot () in
  let b = Ledger.create ~block_size:5 () in
  (match b.State_machine.restore snap with Ok () -> () | Error e -> Alcotest.fail e);
  (* Both continue identically. *)
  ignore (a.State_machine.apply "tx8");
  ignore (b.State_machine.apply "tx8");
  check "digests agree after restore" (Splitbft_util.Hex.encode (State_machine.digest a))
    (Splitbft_util.Hex.encode (State_machine.digest b))

let test_ledger_block_codec () =
  let b = { Ledger.height = 3; prev_hash = String.make 32 'h'; transactions = [ "a"; "b" ] } in
  match Ledger.decode_block (Ledger.encode_block b) with
  | Ok b' -> checkb "roundtrip" true (b = b')
  | Error e -> Alcotest.fail e

let test_ledger_invalid_block_size () =
  checkb "zero rejected" true
    (try
       ignore (Ledger.create ~block_size:0 ());
       false
     with Invalid_argument _ -> true)

(* ----- counter ----- *)

let test_counter () =
  let app = Counter_app.create () in
  check "inc" "1" (app.State_machine.apply Counter_app.increment_op);
  check "inc" "2" (app.State_machine.apply Counter_app.increment_op);
  check "read" "2" (app.State_machine.apply Counter_app.read_op);
  check "garbage noop" State_machine.noop_result (app.State_machine.apply "junk");
  check "unchanged" "2" (app.State_machine.apply Counter_app.read_op)

let test_counter_restore () =
  let a = Counter_app.create () in
  ignore (a.State_machine.apply Counter_app.increment_op);
  let b = Counter_app.create () in
  (match b.State_machine.restore (a.State_machine.snapshot ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "restored" "1" (b.State_machine.apply Counter_app.read_op);
  checkb "bad snapshot" true (Result.is_error (b.State_machine.restore "nonsense"))

let suites =
  [ ( "app",
      [ Alcotest.test_case "kvs ops" `Quick test_kvs_put_get_delete;
        Alcotest.test_case "kvs malformed" `Quick test_kvs_malformed_op_noops;
        Alcotest.test_case "kvs snapshot" `Quick test_kvs_snapshot_restore;
        Alcotest.test_case "kvs canonical" `Quick test_kvs_snapshot_canonical;
        QCheck_alcotest.to_alcotest prop_kvs_op_roundtrip;
        QCheck_alcotest.to_alcotest prop_kvs_deterministic;
        Alcotest.test_case "ledger blocks" `Quick test_ledger_blocks_close;
        Alcotest.test_case "ledger chain" `Quick test_ledger_chain_verifies;
        Alcotest.test_case "ledger snapshot" `Quick test_ledger_snapshot_restore;
        Alcotest.test_case "ledger codec" `Quick test_ledger_block_codec;
        Alcotest.test_case "ledger block size" `Quick test_ledger_invalid_block_size;
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "counter restore" `Quick test_counter_restore ] ) ]
