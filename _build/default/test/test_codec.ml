module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader

let checkb = Alcotest.(check bool)

let roundtrip enc dec v =
  let bytes = W.to_string enc v in
  match R.parse dec bytes with
  | Ok v' -> v' = v
  | Error _ -> false

let test_integers () =
  List.iter
    (fun v -> checkb "u8" true (roundtrip W.u8 R.u8 v))
    [ 0; 1; 127; 255 ];
  List.iter
    (fun v -> checkb "u16" true (roundtrip W.u16 R.u16 v))
    [ 0; 256; 65535 ];
  List.iter
    (fun v -> checkb "u32" true (roundtrip W.u32 R.u32 v))
    [ 0; 1 lsl 16; 0xffffffff ];
  List.iter
    (fun v -> checkb "u64" true (roundtrip W.u64 R.u64 v))
    [ 0L; 1L; Int64.max_int; Int64.min_int; -1L ]

let test_varint () =
  List.iter
    (fun v -> checkb "varint" true (roundtrip W.varint R.varint v))
    [ 0; 1; 127; 128; 300; 1 lsl 20; 1 lsl 40 ]

let test_varint_negative_rejected () =
  Alcotest.check_raises "negative varint" (Invalid_argument "Writer.varint: negative")
    (fun () -> ignore (W.to_string W.varint (-1)))

let test_bool_and_float () =
  checkb "true" true (roundtrip W.bool R.bool true);
  checkb "false" true (roundtrip W.bool R.bool false);
  List.iter
    (fun v -> checkb "float" true (roundtrip W.float R.float v))
    [ 0.0; -1.5; 3.14159; infinity; Float.max_float ]

let test_bytes_prefix () =
  checkb "bytes" true (roundtrip W.bytes R.bytes "hello");
  checkb "empty bytes" true (roundtrip W.bytes R.bytes "");
  checkb "binary" true (roundtrip W.bytes R.bytes "\x00\x01\xff")

let test_option_list () =
  let enc w v = W.option w W.bytes v in
  let dec r = R.option r R.bytes in
  checkb "some" true (roundtrip enc dec (Some "x"));
  checkb "none" true (roundtrip enc dec None);
  let enc w v = W.list w W.varint v in
  let dec r = R.list r R.varint in
  checkb "list" true (roundtrip enc dec [ 1; 2; 3; 400 ]);
  checkb "empty list" true (roundtrip enc dec [])

let test_truncation_detected () =
  let bytes = W.to_string W.bytes "payload" in
  let truncated = String.sub bytes 0 (String.length bytes - 2) in
  checkb "truncated errors" true (Result.is_error (R.parse R.bytes truncated))

let test_trailing_bytes_detected () =
  let bytes = W.to_string W.u8 7 ^ "junk" in
  checkb "trailing rejected" true (Result.is_error (R.parse R.u8 bytes));
  checkb "trailing allowed when not exact" true
    (Result.is_ok (R.parse ~exact:false R.u8 bytes))

let test_malformed_option_tag () =
  checkb "bad option tag" true
    (Result.is_error (R.parse (fun r -> R.option r R.bytes) "\x07"))

let test_list_length_bound () =
  (* A huge announced length must not allocate. *)
  let w = W.create () in
  W.varint w 5_000_000;
  checkb "oversized list rejected" true
    (Result.is_error (R.parse (fun r -> R.list r R.u8) (W.contents w)))

let test_raw_reads () =
  let r = R.of_string "abcdef" in
  Alcotest.(check string) "raw" "abc" (R.raw r 3);
  Alcotest.(check int) "remaining" 3 (R.remaining r);
  Alcotest.(check string) "raw rest" "def" (R.raw r 3);
  checkb "at end" true (R.at_end r)

let qcheck_roundtrip name gen enc dec =
  QCheck.Test.make ~name ~count:300 gen (fun v -> roundtrip enc dec v)

let prop_varint = qcheck_roundtrip "varint roundtrip" QCheck.(0 -- max_int) W.varint R.varint
let prop_u64 = qcheck_roundtrip "u64 roundtrip" QCheck.int64 W.u64 R.u64
let prop_bytes = qcheck_roundtrip "bytes roundtrip" QCheck.string W.bytes R.bytes

let prop_pairs =
  qcheck_roundtrip "pair list roundtrip"
    QCheck.(list (pair small_nat string))
    (fun w v ->
      W.list w
        (fun w (a, b) ->
          W.varint w a;
          W.bytes w b)
        v)
    (fun r ->
      R.list r (fun r ->
          let a = R.varint r in
          let b = R.bytes r in
          (a, b)))

let prop_decode_never_crashes =
  QCheck.Test.make ~name:"decoder total on junk" ~count:500 QCheck.string (fun junk ->
      match R.parse (fun r -> R.list r R.bytes) junk with
      | Ok _ | Error _ -> true)

let suites =
  [ ( "codec",
      [ Alcotest.test_case "integers" `Quick test_integers;
        Alcotest.test_case "varint" `Quick test_varint;
        Alcotest.test_case "varint negative" `Quick test_varint_negative_rejected;
        Alcotest.test_case "bool/float" `Quick test_bool_and_float;
        Alcotest.test_case "bytes" `Quick test_bytes_prefix;
        Alcotest.test_case "option/list" `Quick test_option_list;
        Alcotest.test_case "truncation" `Quick test_truncation_detected;
        Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes_detected;
        Alcotest.test_case "bad option tag" `Quick test_malformed_option_tag;
        Alcotest.test_case "list bound" `Quick test_list_length_bound;
        Alcotest.test_case "raw reads" `Quick test_raw_reads;
        QCheck_alcotest.to_alcotest prop_varint;
        QCheck_alcotest.to_alcotest prop_u64;
        QCheck_alcotest.to_alcotest prop_bytes;
        QCheck_alcotest.to_alcotest prop_pairs;
        QCheck_alcotest.to_alcotest prop_decode_never_crashes ] ) ]
