module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Replica = Splitbft_core.Replica
module Config = Splitbft_core.Config
module Broker = Splitbft_core.Broker
module Preparation = Splitbft_core.Preparation
module Confirmation = Splitbft_core.Confirmation
module Execution = Splitbft_core.Execution
module Wire = Splitbft_core.Wire
module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Enclave = Splitbft_tee.Enclave
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ----- wire codec ----- *)

let test_wire_roundtrips () =
  let req = { Message.client = 1; timestamp = 2L; payload = "p"; auth = "a" } in
  let inputs =
    [ Wire.In_net (Message.Request req); Wire.In_batch [ req; req ]; Wire.In_suspect 3 ]
  in
  List.iter
    (fun i ->
      match Wire.decode_input (Wire.encode_input i) with
      | Ok i' -> checkb "input roundtrip" true (i = i')
      | Error e -> Alcotest.fail e)
    inputs;
  let outputs =
    [ Wire.Out_send (42, Message.Request req);
      Wire.Out_broadcast (Message.Request req);
      Wire.Out_persist { tag = "t"; data = "d" };
      Wire.Out_entered_view 7 ]
  in
  List.iter
    (fun o ->
      match Wire.decode_output (Wire.encode_output o) with
      | Ok o' -> checkb "output roundtrip" true (o = o')
      | Error e -> Alcotest.fail e)
    outputs;
  checkb "junk input rejected" true (Result.is_error (Wire.decode_input "\x09junk"));
  checkb "junk output rejected" true (Result.is_error (Wire.decode_output "\x09junk"))

(* ----- cluster helpers ----- *)

type cluster = {
  engine : Engine.t;
  net : Network.t;
  replicas : Replica.t list;
}

let make ?(n = 4) ?(threading = Config.Per_enclave) ?(checkpoint_interval = 64)
    ?(byz = fun _ -> (Preparation.Prep_honest, Confirmation.Conf_honest, Execution.Exec_honest))
    () =
  let engine = Engine.create ~seed:8L () in
  let net = Network.create engine Network.default_config in
  let replicas =
    List.init n (fun i ->
        let prep_byz, conf_byz, exec_byz = byz i in
        Replica.create ~prep_byz ~conf_byz ~exec_byz engine net
          { (Config.default ~n ~id:i) with
            Config.threading;
            checkpoint_interval;
            suspect_timeout_us = 200_000.0;
            viewchange_timeout_us = 400_000.0 }
          ~app:(fun () -> Kvs.create ()))
  in
  { engine; net; replicas }

let drive ?(until = 6_000_000.0) ?(ready_quorum = 4) ?(window = 1) c ~ops =
  let cl =
    Client.create c.engine c.net
      { (Client.default_config
           (Client.Splitbft { ready_quorum })
           ~n:(List.length c.replicas) ~id:0)
        with
        Client.window;
        retry_timeout_us = 300_000.0 }
  in
  let completed = ref 0 and wrong = ref 0 in
  Client.start cl ~on_ready:(fun () ->
      for i = 1 to ops do
        Client.submit cl
          ~op:(Kvs.encode_op (Kvs.Put (Printf.sprintf "k%d" i, "v")))
          ~on_result:(fun ~latency_us:_ ~result ->
            incr completed;
            if not (String.equal result Kvs.ok) then incr wrong)
      done);
  Engine.run ~until c.engine;
  (cl, !completed, !wrong)

let agreement replicas =
  let tables =
    List.map
      (fun r ->
        let t = Hashtbl.create 64 in
        List.iter (fun (seq, d) -> Hashtbl.replace t seq d) (Replica.executed_log r);
        t)
      replicas
  in
  List.for_all
    (fun ta ->
      List.for_all
        (fun tb ->
          Hashtbl.fold
            (fun seq da acc ->
              acc
              &&
              match Hashtbl.find_opt tb seq with
              | Some db -> String.equal da db
              | None -> true)
            ta true)
        tables)
    tables

let subset c ids = List.filteri (fun i _ -> List.mem i ids) c.replicas

(* ----- tests ----- *)

let test_handshake_establishes_sessions () =
  let c = make () in
  let cl, completed, _ = drive c ~ops:1 in
  checkb "client ready" true (Client.is_ready cl);
  checki "op served" 1 completed;
  List.iter
    (fun r ->
      checki "execution holds the session" 1 ((Replica.exec_probe r).Execution.sessions ());
      checki "preparation holds the auth key" 1 ((Replica.prep_probe r).Preparation.sessions ()))
    c.replicas

let test_normal_operation () =
  let c = make () in
  let _, completed, wrong = drive c ~ops:30 in
  checki "all complete" 30 completed;
  checki "no wrong" 0 wrong;
  checkb "agreement" true (agreement c.replicas);
  List.iter (fun r -> checki "executed" 30 (Replica.executed_count r)) c.replicas

let test_confidentiality_on_the_wire () =
  let c = make () in
  let secret = "S3CRET-operation-payload" in
  let leaks = ref 0 in
  let contains hay needle =
    let n = String.length needle and m = String.length hay in
    let rec loop i =
      i + n <= m && (String.equal (String.sub hay i n) needle || loop (i + 1))
    in
    loop 0
  in
  Network.set_tap c.net
    (Some (fun ~src:_ ~dst:_ payload -> if contains payload secret then incr leaks));
  let cl =
    Client.create c.engine c.net
      (Client.default_config (Client.Splitbft { ready_quorum = 4 }) ~n:4 ~id:0)
  in
  let got = ref "" in
  Client.start cl ~on_ready:(fun () ->
      Client.submit cl
        ~op:(Kvs.encode_op (Kvs.Put ("k", secret)))
        ~on_result:(fun ~latency_us:_ ~result -> got := result));
  Engine.run ~until:3_000_000.0 c.engine;
  Alcotest.(check string) "op executed" Kvs.ok !got;
  checki "plaintext never on the wire" 0 !leaks

let test_checkpoint_gc () =
  let c = make ~checkpoint_interval:8 () in
  let _, completed, _ = drive c ~ops:40 in
  checki "complete" 40 completed;
  List.iter
    (fun r ->
      checkb "exec stable advanced" true ((Replica.exec_probe r).Execution.last_stable () >= 8);
      checkb "prep stable advanced" true
        ((Replica.prep_probe r).Preparation.last_stable () >= 8);
      checkb "conf stable advanced" true
        ((Replica.conf_probe r).Confirmation.last_stable () >= 8))
    c.replicas

let test_host_crash_view_change () =
  let c = make () in
  ignore
    (Engine.schedule c.engine ~delay:10_000.0 ~label:"crash" (fun () ->
         Replica.crash_host (List.nth c.replicas 0)));
  let _, completed, wrong = drive ~until:10_000_000.0 ~ready_quorum:4 c ~ops:40 in
  checki "all complete despite primary host crash" 40 completed;
  checki "no wrong" 0 wrong;
  List.iter
    (fun r -> checkb "new view" true (Replica.view r >= 1))
    (subset c [ 1; 2; 3 ]);
  checkb "agreement" true (agreement (subset c [ 1; 2; 3 ]))

let test_env_starve_conf_loses_liveness_not_safety () =
  let c = make () in
  List.iter
    (fun r -> Replica.set_env_fault r (Broker.Env_starve Ids.Confirmation))
    c.replicas;
  let _, completed, _ = drive ~until:2_000_000.0 c ~ops:10 in
  checki "no progress" 0 completed;
  checkb "but no divergence" true (agreement c.replicas)

let test_env_delay_degrades_only () =
  let c = make () in
  List.iter (fun r -> Replica.set_env_fault r (Broker.Env_delay 2_000.0)) c.replicas;
  let _, completed, wrong = drive ~until:8_000_000.0 c ~ops:15 in
  checki "still completes" 15 completed;
  checki "no wrong" 0 wrong

let test_env_mute_is_a_crash () =
  let c = make () in
  Replica.set_env_fault (List.nth c.replicas 3) Broker.Env_mute;
  let _, completed, _ = drive ~ready_quorum:3 c ~ops:20 in
  checki "tolerated like a crash" 20 completed;
  (* The muted replica's enclaves still execute (inputs flow), but none of
     their outputs escape the compromised environment. *)
  checki "no sealed blocks escaped" 0
    (List.length (Replica.persisted (List.nth c.replicas 3)))

let test_exec_enclave_crash_tolerated () =
  let c = make () in
  ignore
    (Engine.schedule c.engine ~delay:100_000.0 ~label:"crash-enclave" (fun () ->
         Replica.crash_enclave (List.nth c.replicas 2) Ids.Execution));
  let _, completed, wrong = drive ~ready_quorum:4 c ~ops:30 in
  checki "f=1 enclave crash tolerated" 30 completed;
  checki "no wrong" 0 wrong;
  checkb "crashed enclave flagged" true
    (Enclave.is_crashed (Replica.enclave (List.nth c.replicas 2) Ids.Execution))

let test_single_thread_mode_functional () =
  let c = make ~threading:Config.Single_thread () in
  let _, completed, wrong = drive c ~ops:20 in
  checki "single ecall thread still correct" 20 completed;
  checki "no wrong" 0 wrong;
  checkb "agreement" true (agreement c.replicas)

let test_corrupt_exec_within_f_masked () =
  let byz i =
    if i = 2 then (Preparation.Prep_honest, Confirmation.Conf_honest, Execution.Exec_corrupt)
    else (Preparation.Prep_honest, Confirmation.Conf_honest, Execution.Exec_honest)
  in
  let c = make ~byz () in
  let _, completed, wrong = drive c ~ops:20 in
  checki "completes" 20 completed;
  checki "corrupt exec masked by reply quorum" 0 wrong

let test_corrupt_exec_beyond_f_breaks_integrity () =
  let byz i =
    if i <= 1 then (Preparation.Prep_honest, Confirmation.Conf_honest, Execution.Exec_corrupt)
    else (Preparation.Prep_honest, Confirmation.Conf_honest, Execution.Exec_honest)
  in
  let c = make ~byz () in
  (* Several clients so reply races sample both quorums. *)
  let completed = ref 0 and wrong = ref 0 in
  List.iter
    (fun id ->
      let cl =
        Client.create c.engine c.net
          (Client.default_config (Client.Splitbft { ready_quorum = 4 }) ~n:4 ~id)
      in
      Client.start cl ~on_ready:(fun () ->
          for i = 1 to 30 do
            Client.submit cl
              ~op:(Kvs.encode_op (Kvs.Put (Printf.sprintf "c%d-k%d" id i, "v")))
              ~on_result:(fun ~latency_us:_ ~result ->
                incr completed;
                if not (String.equal result Kvs.ok) then incr wrong)
          done))
    [ 0; 1; 2 ];
  Engine.run ~until:8_000_000.0 c.engine;
  checkb "requests complete" true (!completed > 0);
  checkb "f+1 corrupt executions reach clients" true (!wrong > 0)

let test_leaky_exec_exposes_plaintext () =
  let byz i =
    if i = 0 then (Preparation.Prep_honest, Confirmation.Conf_honest, Execution.Exec_leak)
    else (Preparation.Prep_honest, Confirmation.Conf_honest, Execution.Exec_honest)
  in
  let c = make ~byz () in
  let _, completed, _ = drive c ~ops:10 in
  checki "completes" 10 completed;
  let leaked = Replica.persisted (List.nth c.replicas 0) in
  checkb "plaintext exfiltrated to untrusted storage" true
    (List.exists (fun (tag, _) -> String.equal tag "exfil") leaked)

let test_equivocating_prep_recovers_via_view_change () =
  let byz i =
    if i = 0 then (Preparation.Prep_equivocate, Confirmation.Conf_honest, Execution.Exec_honest)
    else (Preparation.Prep_honest, Confirmation.Conf_honest, Execution.Exec_honest)
  in
  let c = make ~byz () in
  let _, completed, wrong = drive ~until:12_000_000.0 c ~ops:20 in
  checki "liveness recovered" 20 completed;
  checki "no wrong" 0 wrong;
  checkb "agreement among honest executions" true (agreement c.replicas);
  List.iter
    (fun r -> checkb "left the equivocator's view" true (Replica.view r >= 1))
    (subset c [ 1; 2; 3 ])

let test_ledger_blocks_sealed_in_storage () =
  let engine = Engine.create ~seed:9L () in
  let net = Network.create engine Network.default_config in
  let replicas =
    List.init 4 (fun i ->
        Replica.create engine net (Config.default ~n:4 ~id:i)
          ~app:(fun () -> Splitbft_app.Ledger.create ()))
  in
  let cl =
    Client.create engine net
      (Client.default_config (Client.Splitbft { ready_quorum = 4 }) ~n:4 ~id:0)
  in
  let completed = ref 0 in
  Client.start cl ~on_ready:(fun () ->
      for i = 1 to 12 do
        Client.submit cl
          ~op:(Printf.sprintf "transaction-%d-SENSITIVE" i)
          ~on_result:(fun ~latency_us:_ ~result:_ -> incr completed)
      done);
  Engine.run ~until:6_000_000.0 engine;
  checki "transactions applied" 12 !completed;
  let stored = Replica.persisted (List.hd replicas) in
  checkb "blocks persisted" true (List.length stored >= 2);
  (* The persisted blobs are sealed: no transaction plaintext. *)
  let contains hay needle =
    let n = String.length needle and m = String.length hay in
    let rec loop i =
      i + n <= m && (String.equal (String.sub hay i n) needle || loop (i + 1))
    in
    loop 0
  in
  checkb "sealed blobs hide transactions" false
    (List.exists (fun (_, data) -> contains data "SENSITIVE") stored)

let suites =
  [ ( "splitbft",
      [ Alcotest.test_case "wire codec" `Quick test_wire_roundtrips;
        Alcotest.test_case "attestation handshake" `Quick test_handshake_establishes_sessions;
        Alcotest.test_case "normal operation" `Quick test_normal_operation;
        Alcotest.test_case "wire confidentiality" `Quick test_confidentiality_on_the_wire;
        Alcotest.test_case "checkpoint GC" `Quick test_checkpoint_gc;
        Alcotest.test_case "host crash / view change" `Quick test_host_crash_view_change;
        Alcotest.test_case "starved confirmation" `Quick test_env_starve_conf_loses_liveness_not_safety;
        Alcotest.test_case "delaying environments" `Quick test_env_delay_degrades_only;
        Alcotest.test_case "mute environment" `Quick test_env_mute_is_a_crash;
        Alcotest.test_case "exec enclave crash" `Quick test_exec_enclave_crash_tolerated;
        Alcotest.test_case "single ecall thread" `Quick test_single_thread_mode_functional;
        Alcotest.test_case "corrupt exec within f" `Quick test_corrupt_exec_within_f_masked;
        Alcotest.test_case "corrupt exec beyond f" `Quick test_corrupt_exec_beyond_f_breaks_integrity;
        Alcotest.test_case "leaky exec" `Quick test_leaky_exec_exposes_plaintext;
        Alcotest.test_case "equivocating preparation" `Quick test_equivocating_prep_recovers_via_view_change;
        Alcotest.test_case "sealed ledger blocks" `Quick test_ledger_blocks_sealed_in_storage ] ) ]
