module Hex = Splitbft_util.Hex
module Sha256 = Splitbft_crypto.Sha256
module Hmac = Splitbft_crypto.Hmac
module Chacha20 = Splitbft_crypto.Chacha20
module Aead = Splitbft_crypto.Aead
module Kdf = Splitbft_crypto.Kdf
module Signature = Splitbft_crypto.Signature
module Box = Splitbft_crypto.Box
module Rng = Splitbft_util.Rng

let check = Alcotest.(check string)
let checkb = Alcotest.(check bool)

(* ----- SHA-256 (FIPS 180-4 / NIST CAVS vectors) ----- *)

let test_sha256_vectors () =
  check "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "");
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc");
  check "448 bits" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check "896 bits" "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Sha256.hex
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha256_million_a () =
  check "1M 'a'" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'))

let test_sha256_incremental_equals_oneshot () =
  let data = String.init 1000 (fun i -> Char.chr (i land 0xff)) in
  (* Feed in awkward chunk sizes crossing block boundaries. *)
  let ctx = Sha256.init () in
  let pos = ref 0 in
  List.iter
    (fun chunk ->
      let take = min chunk (String.length data - !pos) in
      Sha256.update ctx (String.sub data !pos take);
      pos := !pos + take)
    [ 1; 62; 64; 65; 127; 128; 300; 1000 ];
  Sha256.update ctx (String.sub data !pos (String.length data - !pos));
  check "incremental" (Hex.encode (Sha256.digest data)) (Hex.encode (Sha256.finalize ctx))

let test_sha256_digest_parts () =
  check "parts" (Hex.encode (Sha256.digest "foobarbaz"))
    (Hex.encode (Sha256.digest_parts [ "foo"; "bar"; "baz" ]))

(* ----- HMAC-SHA256 (RFC 4231) ----- *)

let test_hmac_rfc4231_case1 () =
  let key = String.make 20 '\x0b' in
  check "case 1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hex.encode (Hmac.mac ~key "Hi There"))

let test_hmac_rfc4231_case2 () =
  check "case 2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hex.encode (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"))

let test_hmac_rfc4231_case3 () =
  let key = String.make 20 '\xaa' in
  let msg = String.make 50 '\xdd' in
  check "case 3" "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hex.encode (Hmac.mac ~key msg))

let test_hmac_rfc4231_long_key () =
  let key = String.make 131 '\xaa' in
  check "case 6 (key > block)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hex.encode
       (Hmac.mac ~key "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_verify () =
  let key = "secret" in
  let tag = Hmac.mac ~key "msg" in
  checkb "verifies" true (Hmac.verify ~key ~msg:"msg" ~tag);
  checkb "wrong msg" false (Hmac.verify ~key ~msg:"other" ~tag);
  checkb "wrong key" false (Hmac.verify ~key:"other" ~msg:"msg" ~tag)

let test_constant_time_eq () =
  checkb "equal" true (Hmac.equal_constant_time "abc" "abc");
  checkb "differs" false (Hmac.equal_constant_time "abc" "abd");
  checkb "length differs" false (Hmac.equal_constant_time "abc" "abcd")

(* ----- ChaCha20 (RFC 8439 §2.3.2 / §2.4.2) ----- *)

let rfc_key = Hex.decode_exn "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
let rfc_nonce = Hex.decode_exn "000000000000004a00000000"

let test_chacha20_block_vector () =
  let nonce = Hex.decode_exn "000000090000004a00000000" in
  let block = Chacha20.block ~key:rfc_key ~counter:1 ~nonce in
  check "rfc8439 2.3.2 block"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
     d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (Hex.encode block)

let test_chacha20_encrypt_vector () =
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you o\
     nly one tip for the future, sunscreen would be it."
  in
  let ct = Chacha20.encrypt ~key:rfc_key ~nonce:rfc_nonce ~counter:1 plaintext in
  check "rfc8439 2.4.2 ciphertext"
    "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
     f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
     07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
     5af90bbf74a35be6b40b8eedf2785e42874d"
    (Hex.encode ct)

let test_chacha20_involutive () =
  let pt = "the quick brown fox" in
  let key = String.make 32 'k' and nonce = String.make 12 'n' in
  check "decrypt inverts" pt
    (Chacha20.encrypt ~key ~nonce (Chacha20.encrypt ~key ~nonce pt))

let test_chacha20_bad_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Chacha20: key must be 32 bytes")
    (fun () -> ignore (Chacha20.encrypt ~key:"short" ~nonce:(String.make 12 'n') "x"));
  Alcotest.check_raises "short nonce" (Invalid_argument "Chacha20: nonce must be 12 bytes")
    (fun () -> ignore (Chacha20.encrypt ~key:(String.make 32 'k') ~nonce:"n" "x"))

(* ----- HKDF (RFC 5869 test case 1) ----- *)

let test_hkdf_rfc5869_case1 () =
  let ikm = String.make 22 '\x0b' in
  let salt = Hex.decode_exn "000102030405060708090a0b0c" in
  let info = Hex.decode_exn "f0f1f2f3f4f5f6f7f8f9" in
  let prk = Kdf.extract ~salt ~ikm in
  check "prk" "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    (Hex.encode prk);
  check "okm" "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (Hex.encode (Kdf.expand ~prk ~info ~length:42))

let test_hkdf_lengths () =
  let okm = Kdf.derive ~ikm:"input" ~info:"ctx" ~length:100 () in
  Alcotest.(check int) "length" 100 (String.length okm);
  checkb "deterministic" true
    (String.equal okm (Kdf.derive ~ikm:"input" ~info:"ctx" ~length:100 ()));
  checkb "info separates" false
    (String.equal okm (Kdf.derive ~ikm:"input" ~info:"other" ~length:100 ()))

(* ----- AEAD ----- *)

let aead_key = String.make 32 'K'
let aead_nonce = String.make 12 'N'

let test_aead_roundtrip () =
  let ct = Aead.encrypt ~key:aead_key ~nonce:aead_nonce ~aad:"hdr" "secret" in
  (match Aead.decrypt ~key:aead_key ~nonce:aead_nonce ~aad:"hdr" ct with
  | Ok pt -> check "roundtrip" "secret" pt
  | Error e -> Alcotest.fail e);
  checkb "ciphertext hides plaintext" false
    (String.length ct >= 6
    && String.equal (String.sub ct 0 6) "secret")

let test_aead_tamper_detected () =
  let ct = Aead.encrypt ~key:aead_key ~nonce:aead_nonce ~aad:"hdr" "secret" in
  let flip = Bytes.of_string ct in
  Bytes.set flip 0 (Char.chr (Char.code (Bytes.get flip 0) lxor 1));
  checkb "tampered ct" true
    (Result.is_error
       (Aead.decrypt ~key:aead_key ~nonce:aead_nonce ~aad:"hdr"
          (Bytes.to_string flip)));
  checkb "wrong aad" true
    (Result.is_error (Aead.decrypt ~key:aead_key ~nonce:aead_nonce ~aad:"other" ct));
  checkb "wrong key" true
    (Result.is_error
       (Aead.decrypt ~key:(String.make 32 'X') ~nonce:aead_nonce ~aad:"hdr" ct));
  checkb "too short" true
    (Result.is_error (Aead.decrypt ~key:aead_key ~nonce:aead_nonce ~aad:"hdr" "tiny"))

let prop_aead_roundtrip =
  QCheck.Test.make ~name:"aead roundtrip" ~count:100
    QCheck.(pair string string)
    (fun (pt, aad) ->
      match
        Aead.decrypt ~key:aead_key ~nonce:aead_nonce ~aad
          (Aead.encrypt ~key:aead_key ~nonce:aead_nonce ~aad pt)
      with
      | Ok pt' -> String.equal pt pt'
      | Error _ -> false)

(* ----- signatures ----- *)

let test_signature_basic () =
  let kp = Signature.derive ~seed:"tester" in
  let s = Signature.sign kp.Signature.secret "message" in
  checkb "verifies" true (Signature.verify ~public:kp.Signature.public ~msg:"message" ~signature:s);
  checkb "wrong msg" false (Signature.verify ~public:kp.Signature.public ~msg:"other" ~signature:s);
  let other = Signature.derive ~seed:"other" in
  checkb "wrong key" false (Signature.verify ~public:other.Signature.public ~msg:"message" ~signature:s)

let test_signature_unknown_public () =
  checkb "unknown public" false
    (Signature.verify ~public:(String.make 32 'z') ~msg:"m" ~signature:(String.make 32 's'))

let test_signature_deterministic_derive () =
  let a = Signature.derive ~seed:"same" and b = Signature.derive ~seed:"same" in
  check "same public" (Hex.encode a.Signature.public) (Hex.encode b.Signature.public)

let test_signature_wrong_length () =
  let kp = Signature.derive ~seed:"len" in
  checkb "short sig" false
    (Signature.verify ~public:kp.Signature.public ~msg:"m" ~signature:"short")

(* ----- box ----- *)

let test_box_roundtrip () =
  let rng = Rng.create 4L in
  let kp = Box.derive ~seed:"recipient" in
  match Box.encrypt ~public:kp.Box.public ~rng "payload" with
  | Error e -> Alcotest.fail e
  | Ok ct -> (
    checkb "ct differs" false (String.equal ct "payload");
    match Box.decrypt kp.Box.secret ct with
    | Ok pt -> check "roundtrip" "payload" pt
    | Error e -> Alcotest.fail e)

let test_box_wrong_recipient () =
  let rng = Rng.create 4L in
  let a = Box.derive ~seed:"alice" and b = Box.derive ~seed:"bob" in
  match Box.encrypt ~public:a.Box.public ~rng "for alice" with
  | Error e -> Alcotest.fail e
  | Ok ct -> checkb "bob cannot open" true (Result.is_error (Box.decrypt b.Box.secret ct))

let test_box_unknown_public () =
  let rng = Rng.create 4L in
  checkb "unknown recipient" true
    (Result.is_error (Box.encrypt ~public:(String.make 32 'q') ~rng "x"))

let suites =
  [ ( "crypto",
      [ Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
        Alcotest.test_case "sha256 1M-a" `Slow test_sha256_million_a;
        Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental_equals_oneshot;
        Alcotest.test_case "sha256 parts" `Quick test_sha256_digest_parts;
        Alcotest.test_case "hmac rfc4231 #1" `Quick test_hmac_rfc4231_case1;
        Alcotest.test_case "hmac rfc4231 #2" `Quick test_hmac_rfc4231_case2;
        Alcotest.test_case "hmac rfc4231 #3" `Quick test_hmac_rfc4231_case3;
        Alcotest.test_case "hmac rfc4231 #6" `Quick test_hmac_rfc4231_long_key;
        Alcotest.test_case "hmac verify" `Quick test_hmac_verify;
        Alcotest.test_case "constant-time eq" `Quick test_constant_time_eq;
        Alcotest.test_case "chacha20 block vector" `Quick test_chacha20_block_vector;
        Alcotest.test_case "chacha20 encrypt vector" `Quick test_chacha20_encrypt_vector;
        Alcotest.test_case "chacha20 involutive" `Quick test_chacha20_involutive;
        Alcotest.test_case "chacha20 sizes" `Quick test_chacha20_bad_sizes;
        Alcotest.test_case "hkdf rfc5869 #1" `Quick test_hkdf_rfc5869_case1;
        Alcotest.test_case "hkdf lengths" `Quick test_hkdf_lengths;
        Alcotest.test_case "aead roundtrip" `Quick test_aead_roundtrip;
        Alcotest.test_case "aead tamper" `Quick test_aead_tamper_detected;
        QCheck_alcotest.to_alcotest prop_aead_roundtrip;
        Alcotest.test_case "signature basic" `Quick test_signature_basic;
        Alcotest.test_case "signature unknown" `Quick test_signature_unknown_public;
        Alcotest.test_case "signature derive" `Quick test_signature_deterministic_derive;
        Alcotest.test_case "signature length" `Quick test_signature_wrong_length;
        Alcotest.test_case "box roundtrip" `Quick test_box_roundtrip;
        Alcotest.test_case "box wrong recipient" `Quick test_box_wrong_recipient;
        Alcotest.test_case "box unknown" `Quick test_box_unknown_public ] ) ]
