module H = Splitbft_harness
module Cluster = H.Cluster
module Workload = H.Workload
module Safety = H.Safety
module Scenarios = H.Scenarios
module Experiments = H.Experiments
module Table = H.Table

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_cluster_protocol_dispatch () =
  List.iter
    (fun protocol ->
      let c = Cluster.create { (Cluster.default_params protocol) with Cluster.seed = 3L } in
      checki "replica count"
        (match protocol with Cluster.Minbft -> 3 | _ -> 4)
        (List.length (Cluster.nodes c));
      checki "f" 1 (Cluster.f c))
    [ Cluster.Pbft; Cluster.Minbft; Cluster.Splitbft ]

let test_workload_fault_free () =
  let c = Cluster.create { (Cluster.default_params Cluster.Pbft) with Cluster.seed = 3L } in
  let scanner = Safety.install_scanner c in
  let r =
    Workload.run c
      { Workload.default_spec with
        Workload.clients = 2;
        warmup_us = 0.0;
        duration_us = 400_000.0 }
  in
  checkb "throughput positive" true (r.Workload.throughput_ops > 0.0);
  checki "no wrong results" 0 r.Workload.wrong_results;
  checki "clients ready" 2 r.Workload.clients_ready;
  let v =
    Safety.verdict c ~honest:[ 0; 1; 2; 3 ] ~scanner ~workload:r ~min_completed:10
  in
  checkb "live" true v.Safety.live;
  checkb "safe" true v.Safety.safe;
  (* PBFT sends plaintext: the canary scanner must fire. *)
  checkb "plaintext visible" false v.Safety.confidential

let test_splitbft_workload_confidential () =
  let c =
    Cluster.create { (Cluster.default_params Cluster.Splitbft) with Cluster.seed = 3L }
  in
  let scanner = Safety.install_scanner c in
  let r =
    Workload.run c
      { Workload.default_spec with
        Workload.clients = 2;
        warmup_us = 0.0;
        duration_us = 400_000.0 }
  in
  let v = Safety.verdict c ~honest:[ 0; 1; 2; 3 ] ~scanner ~workload:r ~min_completed:10 in
  checkb "live" true v.Safety.live;
  checkb "safe" true v.Safety.safe;
  checkb "confidential" true v.Safety.confidential

let test_agreement_detects_divergence () =
  (* The pbft/byz-f+1 scenario must produce a Conflict via the checker. *)
  let s = Option.get (Scenarios.find "pbft/byz-f+1") in
  let o = Scenarios.run ~seed:42L s in
  checkb "scenario flags violation" false o.Scenarios.verdict.Safety.safe;
  checkb "expectation matched" true (Scenarios.matches_expectation o)

let test_scenario_fault_free_splitbft () =
  let s = Option.get (Scenarios.find "splitbft/fault-free") in
  let o = Scenarios.run ~seed:42L s in
  checkb "matches" true (Scenarios.matches_expectation o);
  checkb "live" true o.Scenarios.verdict.Safety.live;
  checkb "confidential" true o.Scenarios.verdict.Safety.confidential

let test_scenario_faulty_tee () =
  let s = Option.get (Scenarios.find "minbft/faulty-tee") in
  let o = Scenarios.run ~seed:42L s in
  checkb "matches" true (Scenarios.matches_expectation o);
  checkb "unsafe" false o.Scenarios.verdict.Safety.safe

let test_scenario_ids_unique () =
  let ids = List.map (fun s -> s.Scenarios.id) Scenarios.all in
  checki "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_table2_counts () =
  let rows = Experiments.table2 () in
  checki "five components" 5 (List.length rows);
  List.iter
    (fun r ->
      checkb (r.Experiments.component ^ " nonempty") true (r.Experiments.total_loc > 0);
      checki
        (r.Experiments.component ^ " total = shared + logic")
        r.Experiments.total_loc
        (r.Experiments.shared_loc + r.Experiments.logic_loc))
    rows;
  (* The trusted counter must be tiny relative to the compartments, as in
     the paper. *)
  let find name = List.find (fun r -> r.Experiments.component = name) rows in
  checkb "counter << compartments" true
    ((find "Trusted Counter").Experiments.total_loc
    < (find "Preparation Enc.").Experiments.total_loc / 5)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ] in
  checkb "has rule" true (String.length s > 0 && String.contains s '-');
  Alcotest.(check string) "formats" "a    bb\n---  --\n1    2 \n333  4 " s

let test_formatting_helpers () =
  Alcotest.(check string) "us small" "500us" (Table.us 500.0);
  Alcotest.(check string) "us large" "12.0ms" (Table.us 12_000.0);
  Alcotest.(check string) "ops small" "500" (Table.ops 500.0);
  Alcotest.(check string) "ops large" "25.0k" (Table.ops 25_000.0);
  Alcotest.(check string) "pct" "64%" (Table.pct 0.64)

let suites =
  [ ( "harness",
      [ Alcotest.test_case "cluster dispatch" `Quick test_cluster_protocol_dispatch;
        Alcotest.test_case "pbft workload + verdict" `Quick test_workload_fault_free;
        Alcotest.test_case "splitbft confidential" `Quick test_splitbft_workload_confidential;
        Alcotest.test_case "divergence detected" `Slow test_agreement_detects_divergence;
        Alcotest.test_case "scenario splitbft ok" `Slow test_scenario_fault_free_splitbft;
        Alcotest.test_case "scenario faulty tee" `Slow test_scenario_faulty_tee;
        Alcotest.test_case "scenario ids unique" `Quick test_scenario_ids_unique;
        Alcotest.test_case "table2 counts" `Quick test_table2_counts;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "format helpers" `Quick test_formatting_helpers ] ) ]
