module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Replica = Splitbft_minbft.Replica
module Usig = Splitbft_minbft.Usig
module Mmsg = Splitbft_minbft.Mmsg
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ----- usig ----- *)

let test_usig_certificates () =
  let u = Usig.create ~id:0 in
  let ui1 = Usig.create_ui u "msg-a" in
  let ui2 = Usig.create_ui u "msg-b" in
  Alcotest.(check int64) "sequential" 1L ui1.Usig.counter;
  Alcotest.(check int64) "sequential 2" 2L ui2.Usig.counter;
  checkb "verifies" true (Usig.verify_ui ~id:0 ~msg:"msg-a" ui1);
  checkb "wrong message" false (Usig.verify_ui ~id:0 ~msg:"msg-b" ui1);
  checkb "wrong identity" false (Usig.verify_ui ~id:1 ~msg:"msg-a" ui1)

let test_usig_tamper_enables_duplicates () =
  let u = Usig.create ~id:7 in
  let ui_a = Usig.create_ui u "a" in
  Usig.tamper_set u (Int64.sub ui_a.Usig.counter 1L);
  let ui_b = Usig.create_ui u "b" in
  Alcotest.(check int64) "same counter twice" ui_a.Usig.counter ui_b.Usig.counter;
  checkb "both certify" true
    (Usig.verify_ui ~id:7 ~msg:"a" ui_a && Usig.verify_ui ~id:7 ~msg:"b" ui_b)

let test_usig_window () =
  let w = Usig.Window.create () in
  checkb "next" true (Usig.Window.admit w 1L = `Next);
  checkb "future held" true (Usig.Window.admit w 3L = `Future);
  checkb "gap fills" true (Usig.Window.admit w 2L = `Next);
  checkb "now next" true (Usig.Window.admit w 3L = `Next);
  checkb "replay rejected" true (Usig.Window.admit w 2L = `Seen)

let test_usig_codec () =
  let u = Usig.create ~id:3 in
  let ui = Usig.create_ui u "x" in
  match Usig.decode_ui (Usig.encode_ui ui) with
  | Ok ui' -> checkb "roundtrip" true (ui = ui')
  | Error e -> Alcotest.fail e

let test_mmsg_codec () =
  let u = Usig.create ~id:1 in
  let ui = Usig.create_ui u "c" in
  let msgs =
    [ Mmsg.Commit
        { Mmsg.c_view = 2; c_primary_counter = 9L; c_digest = String.make 32 'd';
          c_sender = 1; c_ui = ui };
      Mmsg.Viewchange { Mmsg.v_new_view = 3; v_sender = 1; v_ui = ui };
      Mmsg.Checkpoint
        { Mmsg.k_counter = 5L; k_state_digest = String.make 32 's'; k_sender = 1; k_ui = ui } ]
  in
  List.iter
    (fun m ->
      match Mmsg.decode (Mmsg.encode m) with
      | Ok m' -> checkb "roundtrip" true (m = m')
      | Error e -> Alcotest.fail e)
    msgs;
  checkb "minbft payload flagged" true (Mmsg.is_minbft_payload (Mmsg.encode (List.hd msgs)));
  checkb "shared payload not flagged" false (Mmsg.is_minbft_payload "\x01junk")

(* ----- integration ----- *)

type cluster = {
  engine : Engine.t;
  net : Network.t;
  replicas : Replica.t list;
}

let make ?(n = 3) () =
  let engine = Engine.create ~seed:6L () in
  let net = Network.create engine Network.default_config in
  let replicas =
    List.init n (fun i ->
        Replica.create engine net
          { (Replica.default_config ~n ~id:i) with Replica.suspect_timeout_us = 200_000.0 }
          ~app:(Kvs.create ()))
  in
  { engine; net; replicas }

let drive ?(until = 5_000_000.0) c ~ops =
  let cl =
    Client.create c.engine c.net
      (Client.default_config Client.Minbft ~n:(List.length c.replicas) ~id:0)
  in
  let completed = ref 0 and wrong = ref 0 in
  Client.start cl ~on_ready:(fun () ->
      for i = 1 to ops do
        Client.submit cl
          ~op:(Kvs.encode_op (Kvs.Put (Printf.sprintf "k%d" i, "v")))
          ~on_result:(fun ~latency_us:_ ~result ->
            incr completed;
            if not (String.equal result Kvs.ok) then incr wrong)
      done);
  Engine.run ~until c.engine;
  (!completed, !wrong)

let agreement replicas =
  let logs = List.map Replica.executed_log replicas in
  match logs with
  | [] -> true
  | first :: rest ->
    List.for_all
      (fun log ->
        let shorter, longer =
          if List.length log < List.length first then (log, first) else (first, log)
        in
        List.for_all2
          (fun a b -> a = b)
          shorter
          (List.filteri (fun i _ -> i < List.length shorter) longer))
      rest

let test_normal_operation () =
  let c = make () in
  let completed, wrong = drive c ~ops:30 in
  checki "all complete" 30 completed;
  checki "no wrong" 0 wrong;
  checkb "agreement" true (agreement c.replicas);
  List.iter (fun r -> checki "executed everywhere" 30 (Replica.executed_count r)) c.replicas

let test_backup_crash () =
  let c = make () in
  ignore
    (Engine.schedule c.engine ~delay:30_000.0 ~label:"crash" (fun () ->
         Replica.crash (List.nth c.replicas 2)));
  let completed, wrong = drive c ~ops:30 in
  checki "f=1 crash tolerated with n=3" 30 completed;
  checki "no wrong" 0 wrong

let test_byz_execution_masked () =
  let c = make () in
  Replica.set_byzantine (List.nth c.replicas 1) Replica.Corrupt_execution;
  let completed, wrong = drive c ~ops:20 in
  checki "completes" 20 completed;
  checki "wrong replies rejected by quorum" 0 wrong

let test_faulty_tee_breaks_safety () =
  let c = make () in
  Replica.set_byzantine (List.nth c.replicas 0) Replica.Faulty_tee_equivocate;
  let _completed, _ = drive ~until:1_500_000.0 c ~ops:10 in
  let honest = [ List.nth c.replicas 1; List.nth c.replicas 2 ] in
  checkb "single compromised USIG diverges the honest backups" false (agreement honest)

let suites =
  [ ( "minbft",
      [ Alcotest.test_case "usig certificates" `Quick test_usig_certificates;
        Alcotest.test_case "usig tamper" `Quick test_usig_tamper_enables_duplicates;
        Alcotest.test_case "usig window" `Quick test_usig_window;
        Alcotest.test_case "usig codec" `Quick test_usig_codec;
        Alcotest.test_case "mmsg codec" `Quick test_mmsg_codec;
        Alcotest.test_case "normal operation" `Quick test_normal_operation;
        Alcotest.test_case "backup crash" `Quick test_backup_crash;
        Alcotest.test_case "byz execution masked" `Quick test_byz_execution_masked;
        Alcotest.test_case "faulty TEE breaks safety" `Quick test_faulty_tee_breaks_safety ] ) ]
