module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Replica = Splitbft_pbft.Replica
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

type cluster = {
  engine : Engine.t;
  net : Network.t;
  replicas : Replica.t list;
}

let make ?(n = 4) ?(batch_size = 1) ?(checkpoint_interval = 64) ?(net_cfg = Network.default_config)
    ?(suspect_timeout_us = 200_000.0) () =
  let engine = Engine.create ~seed:5L () in
  let net = Network.create engine net_cfg in
  let replicas =
    List.init n (fun i ->
        Replica.create engine net
          { (Replica.default_config ~n ~id:i) with
            Replica.batch_size;
            checkpoint_interval;
            suspect_timeout_us;
            viewchange_timeout_us = 400_000.0 }
          ~app:(Kvs.create ()))
  in
  { engine; net; replicas }

let client ?(window = 1) ?(id = 0) c =
  Client.create c.engine c.net
    { (Client.default_config Client.Pbft ~n:(List.length c.replicas) ~id) with
      Client.window;
      retry_timeout_us = 300_000.0 }

(* Issues [ops] PUTs through one client, returns (completed, wrong). *)
let drive ?(window = 1) ?(until = 5_000_000.0) c ~ops =
  let cl = client ~window c in
  let completed = ref 0 and wrong = ref 0 in
  Client.start cl ~on_ready:(fun () ->
      for i = 1 to ops do
        Client.submit cl
          ~op:(Kvs.encode_op (Kvs.Put (Printf.sprintf "k%d" i, "v")))
          ~on_result:(fun ~latency_us:_ ~result ->
            incr completed;
            if not (String.equal result Kvs.ok) then incr wrong)
      done);
  Engine.run ~until c.engine;
  (!completed, !wrong)

let agreement replicas =
  let logs = List.map Replica.executed_log replicas in
  let tables =
    List.map
      (fun log ->
        let t = Hashtbl.create 64 in
        List.iter (fun (seq, d) -> Hashtbl.replace t seq d) log;
        t)
      logs
  in
  List.for_all
    (fun ta ->
      List.for_all
        (fun tb ->
          Hashtbl.fold
            (fun seq da acc ->
              acc
              &&
              match Hashtbl.find_opt tb seq with
              | Some db -> String.equal da db
              | None -> true)
            ta true)
        tables)
    tables

let honest_subset c ids = List.filteri (fun i _ -> List.mem i ids) c.replicas

(* ----- tests ----- *)

let test_normal_operation () =
  let c = make () in
  let completed, wrong = drive c ~ops:30 in
  checki "all complete" 30 completed;
  checki "no wrong results" 0 wrong;
  checkb "agreement" true (agreement c.replicas);
  List.iter
    (fun r -> checki "all executed" 30 (Replica.executed_count r))
    c.replicas

let test_batching_reduces_consensus_instances () =
  let c = make ~batch_size:10 () in
  let completed, _ = drive ~window:30 c ~ops:30 in
  checki "all complete" 30 completed;
  let r = List.hd c.replicas in
  checkb "few sequence numbers used" true (Replica.last_executed r <= 6);
  checkb "agreement" true (agreement c.replicas)

let test_checkpoint_garbage_collection () =
  let c = make ~checkpoint_interval:8 () in
  let completed, _ = drive c ~ops:40 in
  checki "all complete" 40 completed;
  List.iter
    (fun r ->
      checkb "low watermark advanced" true (Replica.low_watermark r >= 8);
      checkb "watermark at a checkpoint multiple" true (Replica.low_watermark r mod 8 = 0))
    c.replicas

let test_backup_crash_tolerated () =
  let c = make () in
  ignore
    (Engine.schedule c.engine ~delay:50_000.0 ~label:"crash" (fun () ->
         Replica.crash (List.nth c.replicas 3)));
  let completed, wrong = drive c ~ops:40 in
  checki "all complete" 40 completed;
  checki "no wrong" 0 wrong;
  checkb "agreement among survivors" true (agreement (honest_subset c [ 0; 1; 2 ]))

let test_primary_crash_view_change () =
  let c = make () in
  ignore
    (Engine.schedule c.engine ~delay:5_000.0 ~label:"crash" (fun () ->
         Replica.crash (List.nth c.replicas 0)));
  let completed, _ = drive ~until:8_000_000.0 c ~ops:40 in
  checki "all complete despite primary crash" 40 completed;
  List.iter
    (fun r -> checkb "moved to a new view" true (Replica.view r >= 1))
    (honest_subset c [ 1; 2; 3 ]);
  checkb "agreement" true (agreement (honest_subset c [ 1; 2; 3 ]))

let test_byzantine_execution_masked () =
  let c = make () in
  Replica.set_byzantine (List.nth c.replicas 1) Replica.Corrupt_execution;
  let completed, wrong = drive c ~ops:30 in
  checki "all complete" 30 completed;
  checki "corrupt replies never accepted" 0 wrong

let test_mute_commits_tolerated () =
  let c = make () in
  Replica.set_byzantine (List.nth c.replicas 2) Replica.Mute_commits;
  let completed, wrong = drive c ~ops:30 in
  checki "progress with one mute replica" 30 completed;
  checki "no wrong" 0 wrong

let test_equivocation_beyond_f_diverges () =
  let c = make () in
  Replica.set_byzantine (List.nth c.replicas 0)
    (Replica.Equivocate { accomplices = [ 1 ] });
  Replica.set_byzantine (List.nth c.replicas 1) Replica.Collude;
  let _completed, _ = drive ~until:3_000_000.0 c ~ops:20 in
  checkb "honest replicas diverge with f+1 byzantine" false
    (agreement (honest_subset c [ 2; 3 ]))

let test_lossy_network_retransmission () =
  let net_cfg = { Network.default_config with Network.drop_probability = 0.05 } in
  let c = make ~net_cfg () in
  let completed, wrong = drive ~until:20_000_000.0 c ~ops:20 in
  checki "retransmission recovers all" 20 completed;
  checki "no wrong" 0 wrong;
  checkb "agreement" true (agreement c.replicas)

let test_duplicate_requests_execute_once () =
  let c = make () in
  let completed, _ = drive c ~ops:10 in
  checki "completed" 10 completed;
  let before = Replica.executed_count (List.hd c.replicas) in
  (* Replay the latest request verbatim from the client's address: the
     replicas must answer from the reply cache without re-executing. *)
  let replayed =
    let r =
      { Splitbft_types.Message.client = 0; timestamp = 10L;
        payload = Kvs.encode_op (Kvs.Put ("k10", "v")); auth = "" }
    in
    { r with
      Splitbft_types.Message.auth =
        Splitbft_types.Keys.make_authenticator ~protocol:"pbft" ~client:0 ~n:4
          (Splitbft_types.Message.request_auth_bytes r) }
  in
  let replies = ref 0 in
  Network.register c.net (Splitbft_types.Addr.client 0) (fun ~src:_ payload ->
      match Splitbft_types.Message.decode payload with
      | Ok (Splitbft_types.Message.Reply rp)
        when Int64.equal rp.Splitbft_types.Message.timestamp 10L ->
        incr replies
      | _ -> ());
  for j = 0 to 3 do
    Network.send c.net
      ~src:(Splitbft_types.Addr.client 0)
      ~dst:(Splitbft_types.Addr.replica j)
      (Splitbft_types.Message.encode (Splitbft_types.Message.Request replayed))
  done;
  Engine.run ~until:8_000_000.0 c.engine;
  checkb "cached replies resent" true (!replies >= 2);
  checki "nothing re-executed" before (Replica.executed_count (List.hd c.replicas))

let test_pipelined_client_windows () =
  let c = make ~batch_size:20 () in
  let completed, wrong = drive ~window:25 c ~ops:100 in
  checki "pipelined completes" 100 completed;
  checki "no wrong" 0 wrong;
  checkb "agreement" true (agreement c.replicas)

let suites =
  [ ( "pbft",
      [ Alcotest.test_case "normal operation" `Quick test_normal_operation;
        Alcotest.test_case "batching" `Quick test_batching_reduces_consensus_instances;
        Alcotest.test_case "checkpoint GC" `Quick test_checkpoint_garbage_collection;
        Alcotest.test_case "backup crash" `Quick test_backup_crash_tolerated;
        Alcotest.test_case "primary crash / view change" `Quick test_primary_crash_view_change;
        Alcotest.test_case "byz execution masked" `Quick test_byzantine_execution_masked;
        Alcotest.test_case "mute commits tolerated" `Quick test_mute_commits_tolerated;
        Alcotest.test_case "f+1 equivocation diverges" `Quick test_equivocation_beyond_f_diverges;
        Alcotest.test_case "lossy network" `Slow test_lossy_network_retransmission;
        Alcotest.test_case "duplicates execute once" `Quick test_duplicate_requests_execute_once;
        Alcotest.test_case "pipelined windows" `Quick test_pipelined_client_windows ] ) ]
