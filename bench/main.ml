(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (§6), plus micro-benchmarks of the substrates.

     dune exec bench/main.exe                      # everything (moderate sweep)
     dune exec bench/main.exe -- fig3a             # one artifact
     dune exec bench/main.exe -- --full            # the paper's full client sweep
     dune exec bench/main.exe -- table2 --json out.json
                                  # also write machine-readable results plus a
                                  # metrics snapshot of an instrumented run *)

module H = Splitbft_harness
module Experiments = H.Experiments
module Scenarios = H.Scenarios
module Json = Splitbft_obs.Json
module Registry = Splitbft_obs.Registry

let clients_sweep ~full =
  if full then [ 1; 5; 10; 20; 40; 80; 120; 150 ] else [ 1; 10; 40; 100; 150 ]

(* ----- paper artifacts -----

   Each runner prints its human-readable table and returns the same data
   as JSON for the machine-readable [--json] trajectory. *)

let run_table1 () =
  let outcomes = List.map (Scenarios.run ~seed:42L) Scenarios.all in
  Scenarios.print_table1 outcomes;
  let mismatches = List.filter (fun o -> not (Scenarios.matches_expectation o)) outcomes in
  if mismatches <> [] then
    Printf.printf "!! %d scenario(s) deviate from the paper's fault model\n"
      (List.length mismatches);
  Scenarios.json_of_outcomes outcomes

let run_table2 () =
  let rows = Experiments.table2 () in
  Experiments.print_table2 rows;
  Experiments.json_of_table2 rows

let run_fig3 ~batched ~full () =
  let clients_list =
    (* Batched points simulate far more operations per second; keep the
       default sweep affordable. *)
    if batched && not full then [ 1; 10; 40; 150 ] else clients_sweep ~full
  in
  Json.Obj
    (List.map
       (fun (app, app_key, app_name) ->
         let series = Experiments.fig3 ~clients_list ~batched ~app () in
         Experiments.print_fig3
           ~title:
             (Printf.sprintf "Figure 3%s — %s, %s" (if batched then "b" else "a") app_name
                (if batched then "batched (200, 10ms)" else "unbatched"))
           series;
         (app_key, Experiments.json_of_fig3 series))
       [ (H.Cluster.App_kvs, "kvs", "key-value store");
         (H.Cluster.App_ledger, "ledger", "blockchain") ])

let run_fig4 () =
  let unbatched = Experiments.fig4 ~batched:false () in
  let batched = Experiments.fig4 ~batched:true () in
  Experiments.print_fig4 ~batched:false unbatched;
  Experiments.print_fig4 ~batched:true batched;
  Json.Obj
    [ ("unbatched", Experiments.json_of_fig4 unbatched);
      ("batched", Experiments.json_of_fig4 batched) ]

let run_simmode () =
  let r = Experiments.simmode () in
  Experiments.print_simmode r;
  Experiments.json_of_simmode r

let run_ablation () =
  let points = Experiments.batch_ablation () in
  Experiments.print_batch_ablation points;
  Experiments.json_of_batch_ablation points

let run_hotpath () =
  let points = Experiments.hotpath () in
  Experiments.print_hotpath points;
  Experiments.json_of_hotpath points

let run_lanes () =
  let points = Experiments.lanes () in
  Experiments.print_lanes points;
  Experiments.json_of_lanes points

let run_ceilings () =
  let r = Experiments.ceilings () in
  Experiments.print_ceilings r;
  Experiments.json_of_ceilings r

let run_openloop () =
  let r = Experiments.openloop () in
  Experiments.print_openloop r;
  Experiments.json_of_openloop r

let run_storage () =
  let r = Experiments.storage () in
  Experiments.print_storage r;
  Experiments.json_of_storage r

(* ----- bechamel micro-benchmarks of the substrates ----- *)

let micro_tests () =
  let open Bechamel in
  let payload = String.init 256 (fun i -> Char.chr (i land 0xff)) in
  let key = String.make 32 'k' in
  let nonce = String.make 12 'n' in
  let request =
    { Splitbft_types.Message.client = 7; timestamp = 42L; payload = String.make 10 'x';
      auth = String.make 32 'a' }
  in
  let encoded_request = Splitbft_types.Message.encode_request request in
  let sim_events () =
    let engine = Splitbft_sim.Engine.create ~seed:7L () in
    for i = 1 to 100 do
      ignore
        (Splitbft_sim.Engine.schedule engine ~delay:(float_of_int i) ~label:"e" (fun () -> ()))
    done;
    Splitbft_sim.Engine.run engine
  in
  Test.make_grouped ~name:"substrates" ~fmt:"%s %s"
    [ Test.make ~name:"sha256-256B"
        (Staged.stage (fun () -> ignore (Splitbft_crypto.Sha256.digest payload)));
      Test.make ~name:"hmac-256B"
        (Staged.stage (fun () -> ignore (Splitbft_crypto.Hmac.mac ~key payload)));
      Test.make ~name:"chacha20-256B"
        (Staged.stage (fun () ->
             ignore (Splitbft_crypto.Chacha20.encrypt ~key ~nonce payload)));
      Test.make ~name:"aead-seal-open-256B"
        (Staged.stage (fun () ->
             let ct = Splitbft_crypto.Aead.encrypt ~key ~nonce ~aad:"a" payload in
             match Splitbft_crypto.Aead.decrypt ~key ~nonce ~aad:"a" ct with
             | Ok _ -> ()
             | Error e -> failwith e));
      Test.make ~name:"codec-request-roundtrip"
        (Staged.stage (fun () ->
             match Splitbft_types.Message.decode_request encoded_request with
             | Ok _ -> ()
             | Error e -> failwith e));
      Test.make ~name:"sim-100-events" (Staged.stage sim_events) ]

let run_micro () =
  let open Bechamel in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] (micro_tests ()) in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> x
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
  H.Table.print ~title:"Micro-benchmarks (bechamel, monotonic clock)"
    ~header:[ "operation"; "time/op" ]
    ~rows:(List.map (fun (name, ns) -> [ name; Printf.sprintf "%.0f ns" ns ]) rows);
  Json.Obj
    (List.map
       (fun (name, ns) ->
         (name, if Float.is_finite ns then Json.Float ns else Json.Null))
       rows)

(* ----- instrumented probe run (metrics snapshot) -----

   A fixed, small SplitBFT deployment driven long enough to exercise every
   hot path, whose registry snapshot gives each BENCH json the paper's
   cost accounting regardless of which artifact was requested: per-replica
   enclave transition counts and copied bytes, per-link network traffic,
   broker batching, and interpolated latency percentiles. *)

let probe_metrics ?tracer () =
  let params =
    { (H.Cluster.default_params Splitbft_proto.Proto_splitbft.protocol) with
      H.Cluster.app = H.Cluster.App_kvs;
      seed = 97L }
  in
  let cluster = H.Cluster.create ?tracer params in
  let spec =
    { H.Workload.default_spec with
      H.Workload.clients = 10;
      window = 1;
      warmup_us = 100_000.0;
      duration_us = 400_000.0 }
  in
  ignore (H.Workload.run cluster spec);
  Registry.to_json (H.Cluster.obs cluster)

(* ----- command line ----- *)

let artifacts =
  [ ("table1", fun ~full:_ () -> run_table1 ());
    ("table2", fun ~full:_ () -> run_table2 ());
    ("fig3a", fun ~full () -> run_fig3 ~batched:false ~full ());
    ("fig3b", fun ~full () -> run_fig3 ~batched:true ~full ());
    ("fig4", fun ~full:_ () -> run_fig4 ());
    ("simmode", fun ~full:_ () -> run_simmode ());
    ("ablation", fun ~full:_ () -> run_ablation ());
    ("hotpath", fun ~full:_ () -> run_hotpath ());
    ("lanes", fun ~full:_ () -> run_lanes ());
    ("ceilings", fun ~full:_ () -> run_ceilings ());
    ("openloop", fun ~full:_ () -> run_openloop ());
    ("storage", fun ~full:_ () -> run_storage ());
    ("micro", fun ~full:_ () -> run_micro ()) ]

let run_artifacts ~full names =
  List.map
    (fun (name, f) ->
      Printf.printf "\n######## %s ########\n%!" name;
      (name, f ~full ()))
    (List.filter (fun (name, _) -> List.mem name names) artifacts)

let write_json ~path ~metrics results =
  let doc =
    Json.Obj
      [ ("schema", Json.Str "splitbft.bench/v1");
        ("artifacts", Json.Obj results);
        ("metrics", metrics) ]
  in
  match open_out path with
  | exception Sys_error msg ->
    Printf.eprintf "cannot write %s: %s\n%!" path msg;
    exit 1
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Json.to_channel oc doc;
        output_char oc '\n');
    Printf.printf "\nwrote %s\n%!" path

let () =
  (* The simulator is deterministic, so dev-profile numbers are internally
     consistent — but wall-clock-free cost accounting still shifts with
     inlining, and CI gates on release numbers.  Make mixing them loud. *)
  if not (String.equal Build_profile.profile "release") then
    Printf.eprintf
      "WARNING: built with dune profile %S — benchmark numbers are only comparable \
       (and CI-gated against BENCH_BASELINE.json) when built with --profile release.\n%!"
      Build_profile.profile

let () =
  let open Cmdliner in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Use the paper's full client sweep for Figure 3.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Also write the selected artifacts as JSON to $(docv), together with the \
             metrics snapshot of an instrumented probe run (see README, Metrics).")
  in
  let trace_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"PATH"
          ~doc:
            "Run the probe deployment with causal tracing enabled and write the Chrome \
             Trace Event JSON to $(docv) (load in about://tracing or Perfetto); also \
             prints the per-phase cost attribution table.  With $(b,--json), the traced \
             probe run supplies that snapshot's metrics.")
  in
  let what =
    Arg.(
      value
      & pos_all (enum (("all", "all") :: List.map (fun (n, _) -> (n, n)) artifacts)) []
      & info [] ~docv:"ARTIFACT" ~doc:"Artifacts to regenerate (default: all).")
  in
  let main full json_path trace_path what =
    let names =
      match what with
      | [] | [ "all" ] -> List.map fst artifacts
      | names -> names
    in
    let results = run_artifacts ~full names in
    let traced_metrics =
      match trace_path with
      | None -> None
      | Some path ->
        let tracer = Splitbft_obs.Tracer.create () in
        let metrics = probe_metrics ~tracer () in
        Splitbft_obs.Tracer.write_file tracer ~path;
        Printf.printf "\n######## trace ########\n%!";
        H.Trace_report.print (H.Trace_report.analyze tracer);
        Printf.printf "wrote %s\n%!" path;
        Some metrics
    in
    match json_path with
    | None -> ()
    | Some path ->
      let metrics =
        match traced_metrics with Some m -> m | None -> probe_metrics ()
      in
      write_json ~path ~metrics results
  in
  let cmd =
    Cmd.v
      (Cmd.info "splitbft-bench" ~doc:"Regenerate the SplitBFT paper's tables and figures")
      Term.(const main $ full $ json_path $ trace_path $ what)
  in
  exit (Cmd.eval cmd)
