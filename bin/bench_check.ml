(* CI perf-regression gate.

   Thin CLI over [Splitbft_harness.Bench_gate]: parses the checked-in
   BENCH_BASELINE.json and a fresh `bench hotpath lanes openloop storage
   --json` run, prints the comparison report, and exits non-zero on any
   regression — including a baselined point or metric the current run no
   longer produces, which is a hard failure, never a silent pass.
   Improvements always pass (the baseline is a floor, not a pin);
   refreshing the floor after a deliberate win means committing the new
   JSON as the baseline.

     bench_check --baseline BENCH_BASELINE.json --current out.json [--tolerance 0.10]
                 [--only ARTIFACT]...

   [--only] restricts the sweep to the named artifacts, for jobs that
   deliberately measure a subset (CI's storage job gates only storage);
   it is an explicit narrowing, not a silent skip. *)

module Json = Splitbft_obs.Json
module Gate = Splitbft_harness.Bench_gate

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("bench_check: " ^ s); exit 2) fmt

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> die "cannot read %s: %s" path msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let parse_doc path =
  match Json.parse (read_file path) with
  | Ok doc -> doc
  | Error e -> die "%s: %s" path e

let fnum v = if Float.is_finite v then Printf.sprintf "%14.2f" v else Printf.sprintf "%14s" "-"

let pct base v =
  if Float.is_finite base && Float.is_finite v then
    Printf.sprintf "%+7.1f%%" ((v -. base) /. base *. 100.0)
  else Printf.sprintf "%8s" "-"

let print_row (r : Gate.row) =
  let status =
    match r.Gate.r_verdict with
    | Gate.Pass -> "ok"
    | Gate.Regression qual -> "REGRESSION" ^ qual
    | Gate.Missing_point -> "MISSING POINT"
    | Gate.Missing_metric what -> Printf.sprintf "MISSING METRIC (%s)" what
  in
  Printf.printf "%-26s %-12s %s %s %s  %s\n" r.Gate.r_point r.Gate.r_metric
    (fnum r.Gate.r_baseline) (fnum r.Gate.r_current) (pct r.Gate.r_baseline r.Gate.r_current)
    status

let () =
  let baseline = ref "BENCH_BASELINE.json" in
  let current = ref "" in
  let tolerance = ref 0.10 in
  let only = ref [] in
  let add_only a =
    if not (List.mem_assoc a Gate.gated_artifacts) then
      die "--only %s: not a gated artifact (%s)" a
        (String.concat ", " (List.map fst Gate.gated_artifacts));
    only := !only @ [ a ]
  in
  let spec =
    [ ("--baseline", Arg.Set_string baseline, "PATH checked-in baseline JSON");
      ("--current", Arg.Set_string current, "PATH freshly measured bench JSON");
      ("--tolerance", Arg.Set_float tolerance, "FRAC allowed relative regression (default 0.10)");
      ("--only", Arg.String add_only, "ARTIFACT gate only this artifact (repeatable)") ]
  in
  Arg.parse spec (fun a -> die "unexpected argument %s" a) "bench_check [options]";
  if !current = "" then die "--current is required";
  if !tolerance < 0.0 then die "--tolerance must be non-negative";
  let base_doc = parse_doc !baseline in
  let cur_doc = parse_doc !current in
  match
    Gate.check ~tolerance:!tolerance
      ?only:(match !only with [] -> None | names -> Some names)
      ~baseline_name:!baseline ~current_name:!current ~baseline:base_doc ~current:cur_doc ()
  with
  | Error msg -> die "%s" msg
  | Ok report ->
    Printf.printf "%-26s %-12s %14s %14s %8s  %s\n" "point" "metric" "baseline" "current"
      "Δ%" "status";
    List.iter print_row report.Gate.rows;
    if report.Gate.checked = 0 then
      die "%s: none of the gated artifact arrays present" !baseline;
    if report.Gate.failures > 0 then begin
      Printf.printf "\n%d check(s) regressed beyond ±%.0f%% of %s\n" report.Gate.failures
        (100.0 *. !tolerance) !baseline;
      exit 1
    end
    else
      Printf.printf "\nall %d check(s) within ±%.0f%% of %s\n" report.Gate.checked
        (100.0 *. !tolerance) !baseline
