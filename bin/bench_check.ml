(* CI perf-regression gate.

   Compares a fresh `bench hotpath lanes openloop --json` run against the
   checked-in BENCH_BASELINE.json: every gated point in the baseline must
   still exist, and every metric the baseline records for it must stay
   within the tolerance — throughput_ops is a floor, ecall_us_per_request
   and p99_latency_us are ceilings.  A metric absent from a baseline point
   is not gated (artifacts report different fields); an artifact may gate
   only a subset of its labels (openloop pins the aggregate "knee-zipf",
   "knee-uniform" and "p99-at-half-load" rows, not every sweep point).
   Improvements always
   pass (the baseline is a floor, not a pin); refreshing the floor after a
   deliberate win means committing the new JSON as the baseline.

     bench_check --baseline BENCH_BASELINE.json --current out.json [--tolerance 0.10] *)

module Json = Splitbft_obs.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("bench_check: " ^ s); exit 2) fmt

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> die "cannot read %s: %s" path msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let parse_doc path =
  match Json.parse (read_file path) with
  | Ok doc -> doc
  | Error e -> die "%s: %s" path e

let number = function
  | Some (Json.Int n) -> float_of_int n
  | Some (Json.Float f) -> f
  | Some _ | None -> nan

let str = function Some (Json.Str s) -> Some s | Some _ | None -> None

(* Artifact arrays the gate covers, in report order, with an optional
   label filter (None = gate every labeled point).  A name missing from
   the baseline is skipped (old baselines predating an artifact stay
   valid); once baselined, the current run must produce it. *)
let gated_artifacts =
  [ ("hotpath", None);
    ("lanes", None);
    ("openloop", Some [ "knee-zipf"; "knee-uniform"; "p99-at-half-load" ]) ]

let artifact_points path name doc =
  match Option.bind (Json.member "artifacts" doc) (Json.member name) with
  | Some (Json.List points) -> Some points
  | Some _ -> die "%s: artifacts.%s is not an array" path name
  | None -> None

type point = {
  label : string;
  tput : float;
  ecall_us : float;
  p99_us : float;
  tol : float option;  (* baseline per-point override of --tolerance *)
}

let point_of_json path name j =
  match str (Json.member "label" j) with
  | None -> die "%s: %s point without a label" path name
  | Some label ->
    { label;
      tput = number (Json.member "throughput_ops" j);
      ecall_us = number (Json.member "ecall_us_per_request" j);
      p99_us = number (Json.member "p99_latency_us" j);
      tol =
        (let t = number (Json.member "tolerance" j) in
         if Float.is_finite t then Some t else None) }

(* (metric name, accessor, direction): [`Floor] gates drops below the
   baseline, [`Ceiling] gates rises above it. *)
let metrics =
  [ ("throughput", (fun p -> p.tput), `Floor);
    ("ecall cost", (fun p -> p.ecall_us), `Ceiling);
    ("p99 latency", (fun p -> p.p99_us), `Ceiling) ]

let pct base v = (v -. base) /. base *. 100.0

let () =
  let baseline = ref "BENCH_BASELINE.json" in
  let current = ref "" in
  let tolerance = ref 0.10 in
  let spec =
    [ ("--baseline", Arg.Set_string baseline, "PATH checked-in baseline JSON");
      ("--current", Arg.Set_string current, "PATH freshly measured bench JSON");
      ("--tolerance", Arg.Set_float tolerance, "FRAC allowed relative regression (default 0.10)") ]
  in
  Arg.parse spec (fun a -> die "unexpected argument %s" a) "bench_check [options]";
  if !current = "" then die "--current is required";
  if !tolerance < 0.0 then die "--tolerance must be non-negative";
  let base_doc = parse_doc !baseline in
  let cur_doc = parse_doc !current in
  let failures = ref 0 in
  let checked = ref 0 in
  Printf.printf "%-26s %-12s %14s %14s %8s  %s\n" "point" "metric" "baseline" "current"
    "Δ%" "status";
  List.iter
    (fun (name, labels) ->
      match artifact_points !baseline name base_doc with
      | None -> ()
      | Some base_raw ->
        let keep p =
          match labels with None -> true | Some ls -> List.mem p.label ls
        in
        let base_points =
          List.filter keep (List.map (point_of_json !baseline name) base_raw)
        in
        let cur_points =
          match artifact_points !current name cur_doc with
          | Some raw -> List.map (point_of_json !current name) raw
          | None -> die "%s: no artifacts.%s array (baseline gates on it)" !current name
        in
        List.iter
          (fun b ->
            match List.find_opt (fun c -> c.label = b.label) cur_points with
            | None ->
              incr checked;
              incr failures;
              Printf.printf "%-26s %-12s %14s %14s %8s  MISSING POINT\n"
                (name ^ "/" ^ b.label) "-" "-" "-" "-"
            | Some c ->
              List.iter
                (fun (metric, get, dir) ->
                  let bv = get b in
                  if Float.is_finite bv then begin
                    incr checked;
                    let cv = get c in
                    if not (Float.is_finite cv) then begin
                      incr failures;
                      Printf.printf "%-26s %-12s %14.2f %14s %8s  MISSING METRIC\n"
                        (name ^ "/" ^ b.label) metric bv "-" "-"
                    end
                    else begin
                      let tol = Option.value b.tol ~default:!tolerance in
                      let bad =
                        match dir with
                        | `Floor -> cv < bv *. (1.0 -. tol)
                        | `Ceiling -> cv > bv *. (1.0 +. tol)
                      in
                      if bad then incr failures;
                      Printf.printf "%-26s %-12s %14.2f %14.2f %+7.1f%%  %s\n"
                        (name ^ "/" ^ b.label) metric bv cv (pct bv cv)
                        (if bad then "REGRESSION" else "ok")
                    end
                  end)
                metrics)
          base_points)
    gated_artifacts;
  (* Detector overhead gate: the detectors-on twin of the saturated
     batched point must hold within 3% of the plain point's throughput —
     measured on the CURRENT run, so a slow observer can't hide behind a
     refreshed baseline. *)
  (match artifact_points !current "hotpath" cur_doc with
  | None -> ()
  | Some raw ->
    let points = List.map (point_of_json !current "hotpath") raw in
    let find l = List.find_opt (fun p -> p.label = l) points in
    (match (find "batch200", find "batch200-detect") with
    | Some plain, Some det when Float.is_finite plain.tput && Float.is_finite det.tput ->
      incr checked;
      let bad = det.tput < plain.tput *. 0.97 in
      if bad then incr failures;
      Printf.printf "%-26s %-12s %14.2f %14.2f %+7.1f%%  %s\n" "hotpath/detect-overhead"
        "throughput" plain.tput det.tput (pct plain.tput det.tput)
        (if bad then "REGRESSION (>3% detector cost)" else "ok")
    | _ -> ()));
  if !checked = 0 then die "%s: none of the gated artifact arrays present" !baseline;
  if !failures > 0 then begin
    Printf.printf "\n%d check(s) regressed beyond ±%.0f%% of %s\n" !failures
      (100.0 *. !tolerance) !baseline;
    exit 1
  end
  else
    Printf.printf "\nall %d check(s) within ±%.0f%% of %s\n" !checked
      (100.0 *. !tolerance) !baseline
