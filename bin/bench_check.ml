(* CI perf-regression gate.

   Compares a fresh `bench hotpath lanes --json` run against the
   checked-in BENCH_BASELINE.json: every gated point in the baseline
   (artifacts.hotpath and artifacts.lanes) must still exist, its
   throughput must not drop more than the tolerance below the baseline,
   and its per-request ecall cost must not rise more than the tolerance
   above it.  Improvements always pass (the baseline is a floor, not a
   pin); refreshing the floor after a deliberate win means committing the
   new JSON as the baseline.

     bench_check --baseline BENCH_BASELINE.json --current out.json [--tolerance 0.10] *)

module Json = Splitbft_obs.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("bench_check: " ^ s); exit 2) fmt

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> die "cannot read %s: %s" path msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

let parse_doc path =
  match Json.parse (read_file path) with
  | Ok doc -> doc
  | Error e -> die "%s: %s" path e

let number = function
  | Some (Json.Int n) -> float_of_int n
  | Some (Json.Float f) -> f
  | Some _ | None -> nan

let str = function Some (Json.Str s) -> Some s | Some _ | None -> None

(* Artifact arrays the gate covers, in report order.  A name missing from
   the baseline is skipped (old baselines predating an artifact stay
   valid); once baselined, the current run must produce it. *)
let gated_artifacts = [ "hotpath"; "lanes" ]

let artifact_points path name doc =
  match Option.bind (Json.member "artifacts" doc) (Json.member name) with
  | Some (Json.List points) -> Some points
  | Some _ -> die "%s: artifacts.%s is not an array" path name
  | None -> None

type point = { label : string; tput : float; ecall_us : float }

let point_of_json path name j =
  match str (Json.member "label" j) with
  | None -> die "%s: %s point without a label" path name
  | Some label ->
    let tput = number (Json.member "throughput_ops" j) in
    let ecall_us = number (Json.member "ecall_us_per_request" j) in
    if Float.is_nan tput || Float.is_nan ecall_us then
      die "%s: point %s lacks throughput_ops/ecall_us_per_request" path label;
    { label; tput; ecall_us }

let pct base v = (v -. base) /. base *. 100.0

let () =
  let baseline = ref "BENCH_BASELINE.json" in
  let current = ref "" in
  let tolerance = ref 0.10 in
  let spec =
    [ ("--baseline", Arg.Set_string baseline, "PATH checked-in baseline JSON");
      ("--current", Arg.Set_string current, "PATH freshly measured bench JSON");
      ("--tolerance", Arg.Set_float tolerance, "FRAC allowed relative regression (default 0.10)") ]
  in
  Arg.parse spec (fun a -> die "unexpected argument %s" a) "bench_check [options]";
  if !current = "" then die "--current is required";
  if !tolerance < 0.0 then die "--tolerance must be non-negative";
  let base_doc = parse_doc !baseline in
  let cur_doc = parse_doc !current in
  let failures = ref 0 in
  let checked = ref 0 in
  Printf.printf "%-24s %14s %14s %8s %14s %14s %8s  %s\n" "point" "base ops/s"
    "cur ops/s" "Δ%" "base ecall µs" "cur ecall µs" "Δ%" "status";
  List.iter
    (fun name ->
      match artifact_points !baseline name base_doc with
      | None -> ()
      | Some base_raw ->
        let base_points = List.map (point_of_json !baseline name) base_raw in
        let cur_points =
          match artifact_points !current name cur_doc with
          | Some raw -> List.map (point_of_json !current name) raw
          | None -> die "%s: no artifacts.%s array (baseline gates on it)" !current name
        in
        checked := !checked + List.length base_points;
        List.iter
          (fun b ->
            match List.find_opt (fun c -> c.label = b.label) cur_points with
            | None ->
              incr failures;
              Printf.printf "%-24s %14.0f %14s %8s %14.2f %14s %8s  MISSING\n"
                (name ^ "/" ^ b.label) b.tput "-" "-" b.ecall_us "-" "-"
            | Some c ->
              let tput_bad = c.tput < b.tput *. (1.0 -. !tolerance) in
              let ecall_bad = c.ecall_us > b.ecall_us *. (1.0 +. !tolerance) in
              if tput_bad || ecall_bad then incr failures;
              Printf.printf "%-24s %14.0f %14.0f %+7.1f%% %14.2f %14.2f %+7.1f%%  %s\n"
                (name ^ "/" ^ b.label) b.tput c.tput (pct b.tput c.tput) b.ecall_us
                c.ecall_us
                (pct b.ecall_us c.ecall_us)
                (if tput_bad && ecall_bad then "REGRESSION (throughput, ecall cost)"
                 else if tput_bad then "REGRESSION (throughput)"
                 else if ecall_bad then "REGRESSION (ecall cost)"
                 else "ok"))
          base_points)
    gated_artifacts;
  if !checked = 0 then die "%s: none of the gated artifact arrays present" !baseline;
  if !failures > 0 then begin
    Printf.printf "\n%d point(s) regressed beyond ±%.0f%% of %s\n" !failures
      (100.0 *. !tolerance) !baseline;
    exit 1
  end
  else
    Printf.printf "\nall %d point(s) within ±%.0f%% of %s\n" !checked
      (100.0 *. !tolerance) !baseline
