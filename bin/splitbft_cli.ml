(* Command-line driver for the SplitBFT reproduction.

     splitbft run --protocol splitbft --app kvs --clients 40 --batch 200
     splitbft scenario splitbft/enclave-f-each-type
     splitbft scenarios
     splitbft tcb *)

module H = Splitbft_harness
module Proto = Splitbft_proto
open Cmdliner

(* Protocols come from the catalog: a protocol registered there is
   immediately drivable from every subcommand, with no CLI change. *)
let protocol_conv =
  let parse s =
    match Proto.Catalog.find s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown protocol %S (available: %s)" s
             (String.concat ", " Proto.Catalog.names)))
  in
  let print ppf p = Format.pp_print_string ppf (Proto.Protocol_intf.name p) in
  Arg.conv (parse, print)

let default_protocol = Proto.Proto_splitbft.protocol

let app_conv =
  Arg.enum
    [ ("kvs", H.Cluster.App_kvs);
      ("ledger", H.Cluster.App_ledger);
      ("counter", H.Cluster.App_counter) ]

(* ----- run ----- *)

let run_cmd =
  let protocol =
    Arg.(value & opt protocol_conv default_protocol & info [ "protocol"; "p" ] ~doc:"Protocol.")
  in
  let app_arg = Arg.(value & opt app_conv H.Cluster.App_kvs & info [ "app"; "a" ] ~doc:"Application.") in
  let clients = Arg.(value & opt int 10 & info [ "clients"; "c" ] ~doc:"Closed-loop clients.") in
  let batch = Arg.(value & opt int 1 & info [ "batch"; "b" ] ~doc:"Batch size (1 = unbatched).") in
  let window = Arg.(value & opt int 1 & info [ "window"; "w" ] ~doc:"Outstanding requests per client.") in
  let duration = Arg.(value & opt float 1.0 & info [ "duration"; "d" ] ~doc:"Measured seconds (simulated).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let run protocol app clients batch window duration seed =
    let params =
      { (H.Cluster.default_params protocol) with
        H.Cluster.app;
        batch_size = batch;
        seed = Int64.of_int seed }
    in
    let cluster = H.Cluster.create params in
    let scanner = H.Safety.install_scanner cluster in
    let spec =
      { H.Workload.default_spec with
        H.Workload.clients;
        window;
        warmup_us = duration *. 1e6 /. 4.0;
        duration_us = duration *. 1e6 }
    in
    let r = H.Workload.run cluster spec in
    let honest = List.init params.H.Cluster.n (fun i -> i) in
    let v = H.Safety.verdict cluster ~honest ~scanner ~workload:r ~min_completed:1 in
    H.Table.print ~title:"workload result"
      ~header:[ "metric"; "value" ]
      ~rows:
        [ [ "throughput"; H.Table.ops r.H.Workload.throughput_ops ^ " ops/s" ];
          [ "mean latency"; H.Table.us r.H.Workload.mean_latency_us ];
          [ "p99 latency"; H.Table.us r.H.Workload.p99_latency_us ];
          [ "completed (window)"; string_of_int r.H.Workload.completed ];
          [ "wrong results"; string_of_int r.H.Workload.wrong_results ];
          [ "safe"; H.Table.yes_no v.H.Safety.safe ];
          [ "confidential"; H.Table.yes_no v.H.Safety.confidential ] ]
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload against a simulated cluster and report the paper's metrics.")
    Term.(const run $ protocol $ app_arg $ clients $ batch $ window $ duration $ seed)

(* ----- openloop ----- *)

let openloop_cmd =
  let protocol =
    Arg.(value & opt protocol_conv default_protocol & info [ "protocol"; "p" ] ~doc:"Protocol.")
  in
  let app_arg = Arg.(value & opt app_conv H.Cluster.App_kvs & info [ "app"; "a" ] ~doc:"Application.") in
  let rate = Arg.(value & opt float 2_000.0 & info [ "rate"; "r" ] ~doc:"Mean offered load, ops/s.") in
  let bursty =
    Arg.(value & flag
         & info [ "bursty" ]
             ~doc:"Square-wave (compressed diurnal) arrivals instead of Poisson: 4x the mean \
                   rate for 20% of each 50ms period, mean-preserving low rate otherwise.")
  in
  let connections =
    Arg.(value & opt int 16 & info [ "connections" ] ~doc:"Attested client sessions the identities multiplex over.")
  in
  let window = Arg.(value & opt int 16 & info [ "window"; "w" ] ~doc:"Outstanding requests per connection.") in
  let identities =
    Arg.(value & opt int 100_000 & info [ "identities" ] ~doc:"Simulated end-user identity space.")
  in
  let cache = Arg.(value & opt int 4096 & info [ "identity-cache" ] ~doc:"LRU bound on live per-identity state.") in
  let zipf = Arg.(value & opt float 0.99 & info [ "zipf" ] ~doc:"Key-popularity skew exponent (0 = uniform).") in
  let read_ratio = Arg.(value & opt float 0.5 & info [ "read-ratio" ] ~doc:"Fraction of GETs in the KVS mix.") in
  let batch = Arg.(value & opt int 200 & info [ "batch"; "b" ] ~doc:"Batch size (1 = unbatched).") in
  let duration = Arg.(value & opt float 1.0 & info [ "duration"; "d" ] ~doc:"Measured seconds (simulated).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let run protocol app rate bursty connections window identities cache zipf read_ratio batch
      duration seed =
    let params =
      { (H.Cluster.default_params protocol) with
        H.Cluster.app;
        batch_size = batch;
        batch_timeout_us = 10_000.0;
        seed = Int64.of_int seed }
    in
    let cluster = H.Cluster.create params in
    let arrival =
      if bursty then
        H.Workload.Open_loop.Bursty { peak_factor = 4.0; period_us = 50_000.0; duty = 0.2 }
      else H.Workload.Open_loop.Poisson
    in
    let spec =
      { H.Workload.Open_loop.default_spec with
        H.Workload.Open_loop.arrival;
        rate_ops = rate;
        warmup_us = duration *. 1e6 /. 4.0;
        duration_us = duration *. 1e6;
        connections;
        window;
        identities;
        identity_cache = cache;
        zipf_s = zipf;
        read_ratio }
    in
    let r = H.Workload.Open_loop.run cluster spec in
    let open H.Workload.Open_loop in
    H.Table.print ~title:"open-loop result"
      ~header:[ "metric"; "value" ]
      ~rows:
        [ [ "offered"; H.Table.ops r.offered_ops ^ " ops/s" ];
          [ "achieved"; H.Table.ops r.achieved_ops ^ " ops/s" ];
          [ "p50 latency"; H.Table.us r.ol_p50_latency_us ];
          [ "p95 latency"; H.Table.us r.ol_p95_latency_us ];
          [ "p99 latency"; H.Table.us r.ol_p99_latency_us ];
          [ "arrivals"; string_of_int r.arrivals ];
          [ "completed (window)"; string_of_int r.ol_completed ];
          [ "wrong results"; string_of_int r.ol_wrong_results ];
          [ "backlog peak"; string_of_int r.backlog_peak ];
          [ "live identities (peak)"; string_of_int r.live_identities_peak ];
          [ "distinct identities"; string_of_int r.distinct_identities ];
          [ "identity table words (peak)"; string_of_int r.identity_words_peak ] ]
  in
  Cmd.v
    (Cmd.info "openloop"
       ~doc:
         "Drive an open-loop workload: arrivals follow a Poisson or bursty process \
          independent of completions, latency is measured from arrival (client-side \
          queueing included), and simulated identities multiplex over a bounded \
          connection pool with LRU-bounded generator memory.")
    Term.(const run $ protocol $ app_arg $ rate $ bursty $ connections $ window $ identities
          $ cache $ zipf $ read_ratio $ batch $ duration $ seed)

(* ----- storage ----- *)

let storage_cmd =
  let followers = Arg.(value & opt int 2 & info [ "followers"; "f" ] ~doc:"Read-only follower replicas (0 = route reads through consensus).") in
  let segment = Arg.(value & opt int 64 & info [ "segment-entries" ] ~doc:"Ledger entries per sealed segment (enables the rollback-protected log).") in
  let lag_bound = Arg.(value & opt int 64 & info [ "lag-bound" ] ~doc:"Maximum vouched-tip lag at which followers still serve reads.") in
  let drivers = Arg.(value & opt int 8 & info [ "drivers"; "c" ] ~doc:"Closed-loop read/write drivers.") in
  let read_ratio = Arg.(value & opt float 0.95 & info [ "read-ratio" ] ~doc:"Fraction of reads in the mix.") in
  let zipf = Arg.(value & opt float 0.99 & info [ "zipf" ] ~doc:"Key-popularity skew exponent (0 = uniform).") in
  let keyspace = Arg.(value & opt int 256 & info [ "keyspace" ] ~doc:"Distinct keys.") in
  let duration = Arg.(value & opt float 1.0 & info [ "duration"; "d" ] ~doc:"Measured seconds (simulated).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let run followers segment lag_bound drivers read_ratio zipf keyspace duration seed =
    if segment <= 0 && followers > 0 then begin
      prerr_endline
        "storage: followers subscribe to the sealed ledger feed — pass --segment-entries > 0";
      exit 2
    end;
    let proto = Proto.Proto_splitbft.make ~segment_entries:segment () in
    let params =
      { (H.Cluster.default_params proto) with
        H.Cluster.followers;
        follower_lag_bound = lag_bound;
        seed = Int64.of_int seed }
    in
    let cluster = H.Cluster.create params in
    let scanner = H.Safety.install_scanner cluster in
    let spec =
      { H.Workload.Reads.default_spec with
        H.Workload.Reads.clients = drivers;
        read_ratio;
        zipf_s = zipf;
        keyspace;
        warmup_us = duration *. 1e6 /. 4.0;
        duration_us = duration *. 1e6 }
    in
    let r = H.Workload.Reads.run cluster spec in
    let honest = List.init params.H.Cluster.n (fun i -> i) in
    let followers_v = H.Safety.check_followers cluster ~honest in
    let leaks = H.Safety.network_leaks scanner in
    let open H.Workload.Reads in
    H.Table.print ~title:"storage / follower-read result"
      ~header:[ "metric"; "value" ]
      ~rows:
        ([ [ "read throughput"; H.Table.ops r.read_ops ^ " ops/s" ];
           [ "write throughput"; H.Table.ops r.write_ops ^ " ops/s" ];
           [ "read mean latency"; H.Table.us r.rd_mean_latency_us ];
           [ "read p99 latency"; H.Table.us r.rd_p99_latency_us ];
           [ "stale reads"; string_of_int r.stale_reads ];
           [ "refused reads"; string_of_int r.refused_reads ];
           [ "wrong reads"; string_of_int r.wrong_reads ];
           [ "followers consistent";
             H.Table.yes_no (followers_v = H.Safety.Followers_ok) ];
           [ "network canary leaks"; string_of_int leaks ] ]
        @ List.map
            (fun fo ->
              let module F = Splitbft_storage.Follower in
              [ Printf.sprintf "follower %d" (F.fid fo);
                Printf.sprintf "applied %d, lag %d, served %d (stale/refused %d)"
                  (F.entries_applied fo) (F.lag fo) (F.reads_served fo)
                  (F.stale_refused fo) ])
            (H.Cluster.followers cluster))
  in
  Cmd.v
    (Cmd.info "storage"
       ~doc:
         "Drive the rollback-protected ledger and its read-only follower replicas: a \
          Zipfian read/write mix where writes take the quorum path and reads are served \
          off the critical path by followers vouched by f+1 matching sealed feeds.")
    Term.(const run $ followers $ segment $ lag_bound $ drivers $ read_ratio $ zipf
          $ keyspace $ duration $ seed)

(* ----- scenarios ----- *)

let scenario_cmd =
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let detect =
    Arg.(value & flag
         & info [ "detect" ]
             ~doc:"Attach the anomaly detector and a flight recorder; print the alerts the \
                   run raised.")
  in
  let flight_dir =
    Arg.(value & opt (some string) None
         & info [ "flight-dir" ] ~docv:"DIR"
             ~doc:"With $(b,--detect): dump the flight recording to $(docv) when the run is \
                   anomalous (alerts, failed check, or missed expectation).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let run id detect flight_dir seed =
    match H.Scenarios.find id with
    | None ->
      Printf.eprintf "unknown scenario %S (see `splitbft_cli scenarios`)\n" id;
      exit 1
    | Some s ->
      Printf.printf "%s\n  %s\n%!" s.H.Scenarios.id s.H.Scenarios.description;
      let o = H.Scenarios.run ~seed:(Int64.of_int seed) ~detect s in
      let v = o.H.Scenarios.verdict in
      Printf.printf "  live=%b safe=%b confidential=%b ops=%d  %s\n"
        v.H.Safety.live v.H.Safety.safe v.H.Safety.confidential
        o.H.Scenarios.workload.H.Workload.completed_total
        (if H.Scenarios.matches_expectation o then "(matches the paper's fault model)"
         else "(UNEXPECTED)");
      if v.H.Safety.detail <> "" then Printf.printf "  detail: %s\n" v.H.Safety.detail;
      (match o.H.Scenarios.check_failure with
      | None -> ()
      | Some reason -> Printf.printf "  check: %s\n" reason);
      if detect then begin
        (match o.H.Scenarios.alerts with
        | [] -> Printf.printf "  alerts: none\n"
        | alerts ->
          Printf.printf "  alerts (%d):\n" (List.length alerts);
          List.iter (fun a -> Printf.printf "    %s\n" (H.Detector.describe a)) alerts);
        match flight_dir with
        | Some dir when H.Scenarios.anomalous o -> (
          match H.Scenarios.dump_flight ~dir o with
          | Some path -> Printf.printf "  flight recording written to %s\n" path
          | None -> ())
        | _ -> ()
      end
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run one fault-model scenario.")
    Term.(const run $ id $ detect $ flight_dir $ seed)

let scenarios_cmd =
  let run () =
    List.iter
      (fun s ->
        let e = s.H.Scenarios.expected in
        Printf.printf "%-32s live=%-5b safe=%-5b conf=%-5b  %s\n" s.H.Scenarios.id
          e.H.Scenarios.exp_live e.H.Scenarios.exp_safe e.H.Scenarios.exp_confidential
          s.H.Scenarios.description)
      H.Scenarios.all
  in
  Cmd.v
    (Cmd.info "scenarios" ~doc:"List the Table 1 fault-model scenarios and their expected outcomes.")
    Term.(const run $ const ())

let tcb_cmd =
  let run () = H.Experiments.print_table2 (H.Experiments.table2 ()) in
  Cmd.v (Cmd.info "tcb" ~doc:"Print the TCB-size table (Table 2).") Term.(const run $ const ())

(* ----- metrics ----- *)

let metrics_cmd =
  let protocol =
    Arg.(value & opt protocol_conv default_protocol & info [ "protocol"; "p" ] ~doc:"Protocol.")
  in
  let app_arg = Arg.(value & opt app_conv H.Cluster.App_kvs & info [ "app"; "a" ] ~doc:"Application.") in
  let clients = Arg.(value & opt int 10 & info [ "clients"; "c" ] ~doc:"Closed-loop clients.") in
  let batch = Arg.(value & opt int 1 & info [ "batch"; "b" ] ~doc:"Batch size (1 = unbatched).") in
  let duration = Arg.(value & opt float 0.5 & info [ "duration"; "d" ] ~doc:"Measured seconds (simulated).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"PATH" ~doc:"Write the snapshot to $(docv) instead of stdout.")
  in
  let prom =
    Arg.(value & flag
         & info [ "prom" ]
             ~doc:"Emit Prometheus text exposition format (0.0.4) instead of JSON — pipe into \
                   a textfile collector or scrape endpoint.")
  in
  let run protocol app clients batch duration seed out prom =
    let params =
      { (H.Cluster.default_params protocol) with
        H.Cluster.app;
        batch_size = batch;
        seed = Int64.of_int seed }
    in
    let cluster = H.Cluster.create params in
    let spec =
      { H.Workload.default_spec with
        H.Workload.clients;
        warmup_us = duration *. 1e6 /. 4.0;
        duration_us = duration *. 1e6 }
    in
    ignore (H.Workload.run cluster spec);
    let reg = H.Cluster.obs cluster in
    let render () =
      if prom then Splitbft_obs.Prom.of_registry reg
      else Splitbft_obs.Registry.to_json_string reg
    in
    match out with
    | None ->
      let s = render () in
      print_string s;
      if s = "" || s.[String.length s - 1] <> '\n' then print_newline ()
    | Some path ->
      let oc = open_out_bin path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render ()));
      Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a workload and dump the full metrics registry snapshot as JSON (enclave \
          transitions, copied bytes, network traffic, broker batching, latency percentiles) \
          or Prometheus exposition text ($(b,--prom)).")
    Term.(const run $ protocol $ app_arg $ clients $ batch $ duration $ seed $ out $ prom)

(* ----- top ----- *)

let top_cmd =
  let protocol =
    Arg.(value & opt protocol_conv default_protocol & info [ "protocol"; "p" ] ~doc:"Protocol.")
  in
  let app_arg = Arg.(value & opt app_conv H.Cluster.App_kvs & info [ "app"; "a" ] ~doc:"Application.") in
  let clients = Arg.(value & opt int 10 & info [ "clients"; "c" ] ~doc:"Closed-loop clients.") in
  let batch = Arg.(value & opt int 1 & info [ "batch"; "b" ] ~doc:"Batch size (1 = unbatched).") in
  let duration = Arg.(value & opt float 2.0 & info [ "duration"; "d" ] ~doc:"Simulated seconds to run.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let interval =
    Arg.(value & opt float 250.0
         & info [ "interval"; "i" ] ~docv:"MS" ~doc:"Refresh period, simulated milliseconds.")
  in
  let delay =
    Arg.(value & opt float 0.05
         & info [ "delay" ] ~docv:"SECONDS"
             ~doc:"Wall-clock pause per frame so the refresh is watchable (0 = as fast as \
                   the simulation runs).")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Render a single frame at the end of the run instead of refreshing — plain \
                   output without ANSI control sequences, for CI and scripts.")
  in
  let run protocol app clients batch duration seed interval delay once =
    let params =
      { (H.Cluster.default_params protocol) with
        H.Cluster.app;
        batch_size = batch;
        seed = Int64.of_int seed }
    in
    let flight = Splitbft_obs.Flight.create ~capacity:4096 () in
    let cluster = H.Cluster.create ~flight params in
    let detector = H.Detector.attach cluster in
    let engine = H.Cluster.engine cluster in
    let interval_us = Float.max 1_000.0 (interval *. 1_000.0) in
    if not once then begin
      (* A self-rescheduling frame event: the simulation advances between
         frames, the terminal repaints in wall time. *)
      let rec frame () =
        print_string "\x1b[2J\x1b[H";
        print_string (H.Dashboard.render ~detector cluster);
        flush stdout;
        if delay > 0.0 then begin
          (* Busy-wait on processor time: no unix dependency for the CLI. *)
          let t0 = Sys.time () in
          while Sys.time () -. t0 < delay do () done
        end;
        ignore
          (Splitbft_sim.Engine.schedule engine ~delay:interval_us ~label:"top:frame" frame)
      in
      ignore (Splitbft_sim.Engine.schedule engine ~delay:interval_us ~label:"top:frame" frame)
    end;
    let spec =
      { H.Workload.default_spec with
        H.Workload.clients;
        warmup_us = 0.0;
        duration_us = duration *. 1e6 }
    in
    let r = H.Workload.run cluster spec in
    if not once then print_string "\x1b[2J\x1b[H";
    print_string (H.Dashboard.render ~detector cluster);
    Printf.printf "\nworkload: %s ops/s, mean latency %s, %d completed\n"
      (H.Table.ops r.H.Workload.throughput_ops)
      (H.Table.us r.H.Workload.mean_latency_us)
      r.H.Workload.completed_total
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live refreshing health dashboard over a running cluster: per-replica view / \
          executed prefix / utilization / ecall and retransmission rates, lane occupancy, \
          knee proximity, and the anomaly detector's active alerts.")
    Term.(const run $ protocol $ app_arg $ clients $ batch $ duration $ seed $ interval
          $ delay $ once)

(* ----- trace ----- *)

let trace_cmd =
  let protocol =
    Arg.(value & opt protocol_conv default_protocol & info [ "protocol"; "p" ] ~doc:"Protocol.")
  in
  let app_arg = Arg.(value & opt app_conv H.Cluster.App_kvs & info [ "app"; "a" ] ~doc:"Application.") in
  let clients = Arg.(value & opt int 3 & info [ "clients"; "c" ] ~doc:"Closed-loop clients.") in
  let duration = Arg.(value & opt float 0.5 & info [ "duration"; "d" ] ~doc:"Measured seconds (simulated).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let scenario =
    Arg.(value & opt (some string) None
         & info [ "scenario"; "s" ] ~docv:"ID"
             ~doc:"Trace a Table 1 scenario instead of a plain workload (overrides --protocol/--app).")
  in
  let sample =
    Arg.(value & opt int 1
         & info [ "sample-every" ] ~docv:"N"
             ~doc:"Head-sample one client trace in $(docv) (1 = trace everything; slow, \
                   view-change and recovery traces are always kept).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"PATH"
             ~doc:"Write the Chrome Trace Event JSON to $(docv) (load in about://tracing or Perfetto).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"PATH" ~doc:"Also write the metrics registry snapshot to $(docv).")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Exit non-zero unless every causal tree is structurally sound, the exported \
                   JSON validates, and (at --sample-every 1) span-attributed enclave cost \
                   reconciles with the registry counters.")
  in
  let run protocol app clients duration seed scenario sample out metrics_out check =
    let tracer = Splitbft_obs.Tracer.create ~sample_every:sample () in
    let registry =
      match scenario with
      | Some id -> (
        match H.Scenarios.find id with
        | None ->
          Printf.eprintf "unknown scenario %S (see `splitbft_cli scenarios`)\n" id;
          exit 1
        | Some s ->
          let o = H.Scenarios.run ~seed:(Int64.of_int seed) ~tracer s in
          Printf.printf "%s: ops=%d\n" s.H.Scenarios.id
            o.H.Scenarios.workload.H.Workload.completed_total;
          H.Cluster.obs o.H.Scenarios.cluster)
      | None ->
        let params =
          { (H.Cluster.default_params protocol) with
            H.Cluster.app;
            seed = Int64.of_int seed }
        in
        let cluster = H.Cluster.create ~tracer params in
        let spec =
          { H.Workload.default_spec with
            H.Workload.clients;
            warmup_us = 0.0;
            duration_us = duration *. 1e6 }
        in
        let r = H.Workload.run cluster spec in
        Printf.printf "workload: %s ops/s, mean latency %s\n"
          (H.Table.ops r.H.Workload.throughput_ops)
          (H.Table.us r.H.Workload.mean_latency_us);
        H.Cluster.obs cluster
    in
    let report = H.Trace_report.analyze tracer in
    H.Trace_report.print report;
    (match out with
    | None -> ()
    | Some path ->
      Splitbft_obs.Tracer.write_file tracer ~path;
      Printf.printf "wrote %s (%d spans)\n" path report.H.Trace_report.spans);
    (match metrics_out with
    | None -> ()
    | Some path ->
      Splitbft_obs.Registry.write_file registry ~path;
      Printf.printf "wrote %s\n" path);
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    (* reconciliation is only exact when nothing was sampled away *)
    if sample = 1 then begin
      match H.Trace_report.reconcile report registry with
      | Ok () ->
        Printf.printf "reconciliation: span cost attribution matches registry counters\n"
      | Error e -> fail "reconciliation: %s" e
    end;
    (* validate what a consumer would read: the serialized document,
       re-parsed — not the in-memory tree *)
    let serialized =
      match out with
      | Some path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      | None -> Splitbft_obs.Json.to_string (Splitbft_obs.Tracer.to_json tracer)
    in
    (match Splitbft_obs.Json.parse serialized with
    | Error e -> fail "trace JSON does not parse: %s" e
    | Ok doc -> (
      match H.Trace_report.validate doc with
      | Ok () -> Printf.printf "trace JSON: valid (%d spans, %d traces)\n"
                   report.H.Trace_report.spans report.H.Trace_report.traces
      | Error e -> fail "trace JSON: %s" e));
    if report.H.Trace_report.broken_traces > 0 then
      fail "%d broken causal trees (%s)" report.H.Trace_report.broken_traces
        (Option.value ~default:"?" report.H.Trace_report.first_defect);
    if report.H.Trace_report.dropped > 0 then
      fail "%d spans dropped (capacity)" report.H.Trace_report.dropped;
    match !failures with
    | [] -> ()
    | fs ->
      List.iter (Printf.eprintf "FAIL: %s\n") (List.rev fs);
      if check then exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a traced workload or scenario: every sampled client request becomes a causal \
          trace (client → broker → compartments → reply) with per-phase cost attribution, \
          exported as Chrome Trace Event JSON and summarized as the Figure 4 decomposition.")
    Term.(const run $ protocol $ app_arg $ clients $ duration $ seed $ scenario $ sample $ out
          $ metrics_out $ check)

(* ----- mc ----- *)

module Mc = Splitbft_mc

let print_mc_stats (s : Mc.Driver.stats) elapsed =
  H.Table.print ~title:"exploration"
    ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "visited states"; string_of_int s.Mc.Driver.visited ];
        [ "transitions"; string_of_int s.Mc.Driver.transitions ];
        [ "pruned (visited hash)"; string_of_int s.Mc.Driver.hash_pruned ];
        [ "pruned (sleep sets)"; string_of_int s.Mc.Driver.sleep_pruned ];
        [ "deepest schedule"; string_of_int s.Mc.Driver.deepest ];
        [ "world rebuilds"; string_of_int s.Mc.Driver.replays ];
        [ "wall clock"; Printf.sprintf "%.1f s" elapsed ] ]

(* Named small-scope configurations: the CI matrix and the acceptance
   criteria run these by name, so the budgets they imply are documented
   here rather than scattered over workflow files. *)
let mc_presets :
    (string * (Mc.World.config * Mc.Driver.budget * [ `Expect_violation | `Expect_none | `Require_exhausted ]))
    list =
  let zero = { Mc.World.suspect = 0; retry = 0; batch = 0; recovery = 0 } in
  let adv l = List.map (fun s -> Result.get_ok (Mc.Adversary.of_string s)) l in
  let base = Mc.World.default_config in
  let quick = { Mc.Driver.max_states = 6_000; max_depth = 120; max_wall_s = 90.0 } in
  [ (* Exhaust the honest no-fault space at per-host FIFO granularity
       with a closed-loop client: timers suppressed (an idle timer
       firing is protocol stutter on the quiescent path), requests
       submitted one at a time, every host-pacing of the FIFO network's
       2-request send order explored to termination (DESIGN.md §9). *)
    ( "exhaust",
      ( { base with Mc.World.budgets = zero; per_host_fifo = true; client_window = 1 },
        { Mc.Driver.max_states = 60_000; max_depth = 150; max_wall_s = 300.0 },
        `Require_exhausted ) );
    (* Single byzantine compartment each: bounded search must find no
       violation (the paper's containment claim, §5). *)
    ("contained-prep", ({ base with Mc.World.adversaries = adv [ "equivocate@0" ]; budgets = zero }, quick, `Expect_none));
    ( "contained-prep-digest",
      ({ base with Mc.World.adversaries = adv [ "corrupt-digest@0" ]; budgets = zero }, quick, `Expect_none) );
    ( "contained-conf",
      ({ base with Mc.World.adversaries = adv [ "promiscuous-commit@1" ]; budgets = zero }, quick, `Expect_none) );
    ( "contained-exec",
      ({ base with Mc.World.adversaries = adv [ "corrupt-result@2" ]; budgets = zero }, quick, `Expect_none) );
    ( "contained-broker",
      ({ base with Mc.World.adversaries = adv [ "reorder-outputs@1" ]; budgets = zero }, quick, `Expect_none) );
    ( "contained-broker-dup",
      ({ base with Mc.World.adversaries = adv [ "duplicate-outputs@1" ]; budgets = zero }, quick, `Expect_none) );
    ( "contained-broker-drop",
      ( { base with
          Mc.World.adversaries = adv [ "drop-outputs:3@1" ];
          budgets = { zero with Mc.World.retry = 1; batch = 1 } },
        quick,
        `Expect_none ) );
    (* Two compromised Executions exceed f: the checker must produce a
       replayable counterexample (wrong result accepted by the client). *)
    ( "overpowered",
      ( { base with Mc.World.adversaries = adv [ "corrupt-result@0"; "corrupt-result@1" ]; budgets = zero },
        quick,
        `Expect_violation ) );
    (* Mutation self-test: the re-introduced PR-3 view-change bug must be
       caught; the unmutated control on the identical schedule space must
       stay clean. *)
    ( "mutation",
      ( { base with
          Mc.World.lossy_viewchange = true;
          mutate_viewchange = true;
          budgets = Mc.World.viewchange_budgets },
        { Mc.Driver.max_states = 30_000; max_depth = 200; max_wall_s = 240.0 },
        `Expect_violation ) );
    ( "mutation-control",
      ( { base with Mc.World.lossy_viewchange = true; budgets = Mc.World.viewchange_budgets },
        { Mc.Driver.max_states = 30_000; max_depth = 200; max_wall_s = 240.0 },
        `Expect_none ) ) ]

let mc_cmd =
  let preset =
    Arg.(value & opt (some (enum (List.map (fun (n, v) -> (n, (n, v))) mc_presets))) None
         & info [ "preset" ]
             ~doc:(Printf.sprintf "Named configuration: %s."
                     (String.concat ", " (List.map fst mc_presets))))
  in
  let adversaries =
    Arg.(value & opt_all string []
         & info [ "adversary" ]
             ~doc:"Byzantine compartment as POLICY@REPLICA (repeatable); policies: equivocate, \
                   corrupt-digest, promiscuous-commit, stale-proof, corrupt-result, \
                   leak-plaintext, lie-checkpoint, drop-outputs:K, duplicate-outputs, \
                   reorder-outputs.")
  in
  let requests = Arg.(value & opt int 2 & info [ "requests" ] ~doc:"Client requests.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let crash =
    Arg.(value & opt (some string) None
         & info [ "crash" ] ~doc:"Crash host HOST or HOST+restart as an explored choice.")
  in
  let timers =
    Arg.(value & opt (enum [ ("none", `None); ("default", `Default); ("viewchange", `Viewchange) ]) `None
         & info [ "timers" ]
             ~doc:"Timer fire budgets: none (deliveries only), default, or viewchange (roomy).")
  in
  let max_states = Arg.(value & opt int 20_000 & info [ "max-states" ] ~doc:"Visited-state budget.") in
  let max_depth = Arg.(value & opt int 150 & info [ "max-depth" ] ~doc:"Schedule depth budget.") in
  let max_wall = Arg.(value & opt float 120.0 & info [ "max-wall" ] ~doc:"Wall-clock budget, seconds.") in
  let expect_violation =
    Arg.(value & flag
         & info [ "expect-violation" ]
             ~doc:"Exit 0 only if a violation is found (over-powered adversary runs).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~doc:"Write the (minimized) counterexample schedule here.")
  in
  let run preset adversaries requests seed crash timers max_states max_depth max_wall
      expect_violation out =
    let cfg, budget, expectation =
      match preset with
      | Some (_name, (cfg, budget, expectation)) -> (cfg, budget, expectation)
      | None ->
        let advs =
          List.map
            (fun s ->
              match Mc.Adversary.of_string s with
              | Ok a -> a
              | Error e ->
                prerr_endline e;
                exit 2)
            adversaries
        in
        let crash =
          match crash with
          | None -> None
          | Some s -> (
            match Mc.Schedule.crash_of_string s with
            | Ok c -> c
            | Error e ->
              prerr_endline e;
              exit 2)
        in
        let budgets =
          match timers with
          | `None -> { Mc.World.suspect = 0; retry = 0; batch = 0; recovery = 0 }
          | `Default -> Mc.World.default_budgets
          | `Viewchange -> Mc.World.viewchange_budgets
        in
        ( { Mc.World.default_config with
            Mc.World.requests;
            seed = Int64.of_int seed;
            adversaries = advs;
            crash;
            budgets;
            client_window = requests },
          { Mc.Driver.max_states; max_depth; max_wall_s = max_wall },
          if expect_violation then `Expect_violation else `Expect_none )
    in
    let expectation = if expect_violation then `Expect_violation else expectation in
    Printf.printf "mc: n=4, %d request(s), checkpoint interval %d, %s\n%!" cfg.Mc.World.requests
      cfg.Mc.World.checkpoint_interval
      (Mc.Adversary.describe cfg.Mc.World.adversaries
      ^ (if cfg.Mc.World.lossy_viewchange then ", lossy-viewchange network" else "")
      ^ (if cfg.Mc.World.mutate_viewchange then ", MUTATED view entry" else "")
      ^
      match cfg.Mc.World.crash with
      | None -> ""
      | Some (h, r) -> Printf.sprintf ", crash host %d%s" h (if r then "+restart" else ""));
    let t0 = Sys.time () in
    let r = Mc.Driver.run ~budget cfg in
    let elapsed = Sys.time () -. t0 in
    print_mc_stats r.Mc.Driver.stats elapsed;
    match r.Mc.Driver.outcome with
    | Mc.Driver.Violation { schedule; detail } ->
      Printf.printf "violation: %s\n" detail;
      Printf.printf "schedule (%d choices): %s\n" (List.length schedule)
        (String.concat " " (List.map string_of_int schedule));
      let minimized = Mc.Driver.minimize cfg schedule in
      if List.length minimized < List.length schedule then
        Printf.printf "minimized to %d choices: %s\n" (List.length minimized)
          (String.concat " " (List.map string_of_int minimized));
      let artifact = Mc.Schedule.Mc { cfg; schedule = minimized; detail } in
      (match out with
      | Some path ->
        Mc.Schedule.save ~path artifact;
        Printf.printf "counterexample written to %s (replay with: splitbft_cli replay %s)\n" path
          path
      | None -> ());
      (* A counterexample that does not replay is a fingerprinting bug —
         fail loudly rather than hand over a non-deterministic artifact. *)
      (match Mc.Driver.replay cfg minimized with
      | `Violation (_, detail') ->
        Printf.printf "replay: reproduces (%s)\n" detail';
        if expectation = `Expect_violation then exit 0
        else begin
          Printf.printf "FAIL: violation found but none expected\n";
          exit 1
        end
      | `Clean | `Diverged _ ->
        Printf.printf "FAIL: counterexample does not replay deterministically\n";
        exit 1)
    | Mc.Driver.Exhausted ->
      Printf.printf "state space exhausted: every schedule explored, no violation\n";
      if expectation = `Expect_violation then begin
        Printf.printf "FAIL: expected a violation\n";
        exit 1
      end
    | Mc.Driver.Budget reason ->
      Printf.printf "bounded: search truncated by %s, no violation found\n" reason;
      (match expectation with
      | `Require_exhausted ->
        Printf.printf "FAIL: this configuration must exhaust (hit %s)\n" reason;
        exit 1
      | `Expect_violation ->
        Printf.printf "FAIL: expected a violation\n";
        exit 1
      | `Expect_none -> ())
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Bounded exhaustive model checking of the compartment boundary: explore every \
          schedule of a small-scope deployment (n=4) under a byzantine compartment \
          vocabulary, checking agreement, reply integrity, ledger prefix-consistency and the \
          confidentiality canary at every state.")
    Term.(const run $ preset $ adversaries $ requests $ seed $ crash $ timers $ max_states
          $ max_depth $ max_wall $ expect_violation $ out)

(* ----- replay ----- *)

let replay_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEDULE" ~doc:"Artifact file.") in
  let run file =
    match Mc.Schedule.load file with
    | Error e ->
      Printf.eprintf "cannot load %s: %s\n" file e;
      exit 2
    | Ok (Mc.Schedule.Mc { cfg; schedule; detail }) -> (
      Printf.printf "mc schedule: %d choices, %s\n" (List.length schedule)
        (Mc.Adversary.describe cfg.Mc.World.adversaries);
      if not (String.equal detail "") then Printf.printf "recorded violation: %s\n" detail;
      match Mc.Driver.replay cfg schedule with
      | `Violation (sched, detail') ->
        Printf.printf "reproduced after %d choices: %s\n" (List.length sched) detail'
      | `Clean ->
        Printf.printf "schedule replayed clean — violation did NOT reproduce\n";
        exit 1
      | `Diverged done_ ->
        Printf.printf "schedule diverged after %d choices (artifact/config mismatch)\n"
          (List.length done_);
        exit 1)
    | Ok (Mc.Schedule.Chaos { protocol; plan; detail }) -> (
      Printf.printf "chaos plan (%s): %s\n" protocol (Mc.Chaos.describe_plan plan);
      if not (String.equal detail "") then Printf.printf "recorded violation: %s\n" detail;
      match Mc.Chaos.run ~protocol plan with
      | Error e ->
        Printf.eprintf "%s\n" e;
        exit 2
      | Ok (Some detail') -> Printf.printf "reproduced: %s\n" detail'
      | Ok None ->
        Printf.printf "plan replayed clean — violation did NOT reproduce\n";
        exit 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Deterministically replay a failure artifact (model-checker counterexample or chaos \
          plan) produced by `mc`, the chaos tests, or CI.")
    Term.(const run $ file)

let () =
  let doc = "SplitBFT: compartmentalized BFT with trusted execution (MIDDLEWARE'22 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "splitbft_cli" ~doc)
          [ run_cmd; openloop_cmd; storage_cmd; scenario_cmd; scenarios_cmd; tcb_cmd;
            metrics_cmd; top_cmd; trace_cmd; mc_cmd; replay_cmd ]))
