(* Confidentiality demonstration: the same workload against PBFT and
   SplitBFT, with a wiretap scanning every network payload and every
   untrusted-storage blob for the operations' secret content.

     dune exec examples/confidential_kvs.exe *)

module H = Splitbft_harness

let run protocol name =
  let cluster =
    H.Cluster.create { (H.Cluster.default_params protocol) with H.Cluster.seed = 99L }
  in
  let scanner = H.Safety.install_scanner cluster in
  let result =
    H.Workload.run cluster
      { H.Workload.default_spec with
        H.Workload.clients = 3;
        warmup_us = 0.0;
        duration_us = 500_000.0 }
  in
  Printf.printf
    "%-10s  %5d ops  wire payloads leaking the secret: %6d   storage blobs leaking: %d\n%!"
    name result.H.Workload.completed_total
    (H.Safety.network_leaks scanner)
    (H.Safety.storage_leaks cluster ~honest_hosts:[ 0; 1; 2; 3 ])

let () =
  Printf.printf
    "Every operation value embeds the marker %S; the tap sees every byte\n\
     an attacker in the cloud provider's position would see.\n\n"
    H.Workload.canary;
  run Splitbft_proto.Proto_pbft.protocol "PBFT";
  run Splitbft_proto.Proto_splitbft.protocol "SplitBFT";
  print_newline ();
  print_endline
    "PBFT exposes every operation to the infrastructure; SplitBFT's clients\n\
     encrypt to the attested Execution enclaves, so the same workload leaks\n\
     nothing (Table 1's confidentiality column)."
