let increment_op = "+"
let read_op = "?"

let create () =
  let value = ref 0 in
  let apply op =
    match op with
    | "+" ->
      incr value;
      string_of_int !value
    | "?" -> string_of_int !value
    | _ -> State_machine.noop_result
  in
  let classify op =
    match op with
    | "+" -> { State_machine.reads = []; writes = [ "counter" ] }
    | "?" -> { State_machine.reads = [ "counter" ]; writes = [] }
    | _ -> State_machine.rw_none
  in
  { State_machine.app_name = "counter";
    apply;
    classify;
    snapshot = (fun () -> string_of_int !value);
    restore =
      (fun blob ->
        match int_of_string_opt blob with
        | Some v ->
          value := v;
          Ok ()
        | None -> Error "invalid counter snapshot");
    drain_effects = (fun () -> []) }
