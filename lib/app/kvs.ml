module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader

type op =
  | Put of string * string
  | Get of string
  | Delete of string

let encode_op op =
  W.to_string
    (fun w op ->
      match op with
      | Put (k, v) ->
        W.u8 w 1;
        W.bytes w k;
        W.bytes w v
      | Get k ->
        W.u8 w 2;
        W.bytes w k
      | Delete k ->
        W.u8 w 3;
        W.bytes w k)
    op

let decode_op s =
  R.parse
    (fun r ->
      match R.u8 r with
      | 1 ->
        let k = R.bytes r in
        let v = R.bytes r in
        Put (k, v)
      | 2 -> Get (R.bytes r)
      | 3 -> Delete (R.bytes r)
      | t -> raise (R.Error (Printf.sprintf "unknown kvs op tag %d" t)))
    s

let ok = "OK"
let not_found = "\x00absent"

let create () =
  let table : (string, string) Hashtbl.t = Hashtbl.create 256 in
  let apply op_bytes =
    match decode_op op_bytes with
    | Error _ -> State_machine.noop_result
    | Ok (Put (k, v)) ->
      Hashtbl.replace table k v;
      ok
    | Ok (Get k) -> (
      match Hashtbl.find_opt table k with
      | Some v -> v
      | None -> not_found)
    | Ok (Delete k) ->
      Hashtbl.remove table k;
      ok
  in
  let snapshot () =
    (* Sorted entries make the snapshot (and thus checkpoints) canonical. *)
    let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
    let entries =
      List.sort (fun (ka, _) (kb, _) -> String.compare ka kb) entries
    in
    W.to_string
      (fun w () ->
        W.list w
          (fun w (k, v) ->
            W.bytes w k;
            W.bytes w v)
          entries)
      ()
  in
  let restore blob =
    match
      R.parse
        (fun r ->
          R.list r (fun r ->
              let k = R.bytes r in
              let v = R.bytes r in
              (k, v)))
        blob
    with
    | Error e -> Error e
    | Ok entries ->
      Hashtbl.reset table;
      List.iter (fun (k, v) -> Hashtbl.replace table k v) entries;
      Ok ()
  in
  let classify op_bytes =
    match decode_op op_bytes with
    | Error _ -> State_machine.rw_none
    | Ok (Put (k, _)) | Ok (Delete k) -> { State_machine.reads = []; writes = [ k ] }
    | Ok (Get k) -> { State_machine.reads = [ k ]; writes = [] }
  in
  { State_machine.app_name = "kvs";
    apply;
    classify;
    snapshot;
    restore;
    drain_effects = (fun () -> []) }
