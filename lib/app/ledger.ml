module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader
module Sha256 = Splitbft_crypto.Sha256

type block = {
  height : int;
  prev_hash : string;
  transactions : string list;
}

let write_block w b =
  W.varint w b.height;
  W.bytes w b.prev_hash;
  W.list w W.bytes b.transactions

let read_block r =
  let height = R.varint r in
  let prev_hash = R.bytes r in
  let transactions = R.list r R.bytes in
  { height; prev_hash; transactions }

let encode_block b = W.to_string write_block b
let decode_block s = R.parse read_block s
let block_hash b = Sha256.digest_parts [ "block"; encode_block b ]
let genesis_hash = Sha256.digest "splitbft-genesis"

type state = {
  mutable tip_hash : string;
  mutable next_height : int;
  mutable pending : string list; (* newest first *)
  mutable pending_count : int;
  mutable closed : block list; (* newest first, drained by the host *)
}

let close_block st =
  let b =
    { height = st.next_height;
      prev_hash = st.tip_hash;
      transactions = List.rev st.pending }
  in
  st.tip_hash <- block_hash b;
  st.next_height <- st.next_height + 1;
  st.pending <- [];
  st.pending_count <- 0;
  st.closed <- b :: st.closed

let create ?(block_size = 5) () =
  if block_size <= 0 then invalid_arg "Ledger.create: block_size must be positive";
  let st =
    { tip_hash = genesis_hash; next_height = 0; pending = []; pending_count = 0; closed = [] }
  in
  let apply op_bytes =
    st.pending <- op_bytes :: st.pending;
    st.pending_count <- st.pending_count + 1;
    if st.pending_count >= block_size then close_block st;
    (* The result acknowledges inclusion position. *)
    W.to_string
      (fun w () ->
        W.varint w st.next_height;
        W.varint w st.pending_count)
      ()
  in
  let snapshot () =
    W.to_string
      (fun w () ->
        W.bytes w st.tip_hash;
        W.varint w st.next_height;
        W.list w W.bytes (List.rev st.pending))
      ()
  in
  let restore blob =
    match
      R.parse
        (fun r ->
          let tip = R.bytes r in
          let height = R.varint r in
          let pending = R.list r R.bytes in
          (tip, height, pending))
        blob
    with
    | Error e -> Error e
    | Ok (tip, height, pending) ->
      st.tip_hash <- tip;
      st.next_height <- height;
      st.pending <- List.rev pending;
      st.pending_count <- List.length pending;
      st.closed <- [];
      Ok ()
  in
  let drain_effects () =
    let blocks = List.rev st.closed in
    st.closed <- [];
    List.map
      (fun b ->
        State_machine.Persist
          { tag = Printf.sprintf "block-%d" b.height; data = encode_block b })
      blocks
  in
  (* Every transaction appends to the single chain tip. *)
  let classify _ = { State_machine.reads = []; writes = [ "chain" ] } in
  { State_machine.app_name = "ledger"; apply; classify; snapshot; restore; drain_effects }

let verify_chain blocks =
  let rec loop prev_hash height = function
    | [] -> Ok ()
    | b :: rest ->
      if b.height <> height then
        Error (Printf.sprintf "expected height %d, found %d" height b.height)
      else if not (String.equal b.prev_hash prev_hash) then
        Error (Printf.sprintf "hash chain broken at height %d" b.height)
      else loop (block_hash b) (height + 1) rest
  in
  loop genesis_hash 0 blocks
