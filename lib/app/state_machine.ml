type side_effect = Persist of { tag : string; data : string }

type rw = {
  reads : string list;
  writes : string list;
}

let rw_none = { reads = []; writes = [] }

type t = {
  app_name : string;
  apply : string -> string;
  classify : string -> rw;
  snapshot : unit -> string;
  restore : string -> (unit, string) result;
  drain_effects : unit -> side_effect list;
}

let digest t = Splitbft_crypto.Sha256.digest (t.snapshot ())
let noop_result = "\x00noop"
