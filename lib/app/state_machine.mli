(** Deterministic replicated application interface.

    Instances run inside the Execution compartment (SplitBFT) or the
    replica process (baselines).  [apply] must be a pure function of the
    current state and the operation bytes; all replicas executing the same
    operation sequence reach the same state and produce the same results —
    the property the safety checker asserts.

    [drain_effects] returns side effects the host must perform outside the
    state machine (the ledger's persistent block writes, which the
    Execution enclave turns into sealed ocalls as in §6). *)

type side_effect = Persist of { tag : string; data : string }

type rw = {
  reads : string list;
  writes : string list;
}
(** Conflict footprint of one operation: the logical keys it reads and
    writes.  The Execution worker pool uses these sets to decide which
    batches may overlap in time — two operations conflict iff one writes a
    key the other touches.  [classify] must be conservative: when the
    footprint is unknown, return a write to a sentinel key (forcing serial
    order) rather than an empty set. *)

val rw_none : rw
(** The empty footprint — for operations that execute as no-ops
    (malformed bytes, duplicate suppression). *)

type t = {
  app_name : string;
  apply : string -> string;  (** operation bytes -> result bytes *)
  classify : string -> rw;  (** operation bytes -> conflict footprint *)
  snapshot : unit -> string;
  restore : string -> (unit, string) result;
  drain_effects : unit -> side_effect list;
}

val digest : t -> string
(** SHA-256 of the current snapshot; used in Checkpoint messages. *)

val noop_result : string
(** Result bytes returned for corrupted operations executed as no-ops. *)
