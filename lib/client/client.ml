module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Timer = Splitbft_sim.Timer
module Ids = Splitbft_types.Ids
module Addr = Splitbft_types.Addr
module Keys = Splitbft_types.Keys
module Message = Splitbft_types.Message
module Session = Splitbft_types.Session
module Enclave_identity = Splitbft_types.Enclave_identity
module Attestation = Splitbft_tee.Attestation
module Measurement = Splitbft_tee.Measurement
module Signature = Splitbft_crypto.Signature
module Box = Splitbft_crypto.Box
module Hmac = Splitbft_crypto.Hmac
module Stats = Splitbft_util.Stats
module Tracer = Splitbft_obs.Tracer
module Trace_ctx = Splitbft_obs.Trace_ctx

type protocol =
  | Pbft
  | Minbft
  | Splitbft of { ready_quorum : int }

type config = {
  id : Ids.client_id;
  n : int;
  reply_quorum : int;
  window : int;
  retry_timeout_us : float;
  retry_backoff : float;
  retry_cap_us : float;
  retry_jitter : float;
  protocol : protocol;
}

let default_config protocol ~n ~id =
  let f =
    match protocol with
    | Minbft -> Ids.f_of_n_hybrid n
    | Pbft | Splitbft _ -> Ids.f_of_n n
  in
  { id;
    n;
    reply_quorum = f + 1;
    window = 1;
    retry_timeout_us = 400_000.0;
    retry_backoff = 2.0;
    retry_cap_us = 1_600_000.0;
    retry_jitter = 0.1;
    protocol }

type pending = {
  op : string;
  mutable request : Message.request;
  mutable sent_at : float;
  mutable votes : (Ids.replica_id * string) list;  (* validated results *)
  mutable retry : Timer.t;
  mutable cur_delay_us : float;  (* grows by [retry_backoff] up to the cap *)
  mutable ctx : Trace_ctx.t option;  (* root trace context, if sampled *)
  mutable root : int;  (* open root span id, or -1 *)
  mutable retransmits : int;
  on_result : latency_us:float -> result:string -> unit;
}

type phase = Handshaking | Ready

type t = {
  cfg : config;
  engine : Engine.t;
  net : Network.t;
  rng : Splitbft_util.Rng.t;
  mutable phase : phase;
  mutable on_ready : unit -> unit;
  mutable next_ts : int64;
  inflight : (int64, pending) Hashtbl.t;
  mutable queue : (string * (latency_us:float -> result:string -> unit)) list;
      (* waiting for a window slot, newest first *)
  mutable completed : int;
  lat : Stats.t;
  mutable stopped : bool;
  (* Divergence evidence (flight recorder only): winning results of recent
     completions, so a corrupt replica's vote is flagged even when it
     arrives after the honest f+1 quorum already answered the request.
     Bounded FIFO; empty unless a flight recorder is attached. *)
  recent : (int64, string) Hashtbl.t;
  recent_order : int64 Queue.t;
  (* SplitBFT session state *)
  session : Session.keys;
  mutable exec_acks : Ids.replica_id list;
  mutable provisioned : (Ids.replica_id * string) list;  (* (replica, box public) already sent *)
}

let create engine net cfg =
  (* Keyed on (engine seed, client id) rather than split off the engine's
     root generator: the client's session keys, retry jitter and encryption
     nonces are then a pure function of the scenario seed and its own id,
     independent of how many replicas, clients or other rng consumers were
     created before it — so workload traces reproduce across harness
     rewirings and client-count changes. *)
  let rng =
    Splitbft_util.Rng.of_key (Engine.seed engine) ~domain:"client"
      ~stream:(Int64.of_int cfg.id)
  in
  let t =
    { cfg;
      engine;
      net;
      rng;
      phase = (match cfg.protocol with Splitbft _ -> Handshaking | Pbft | Minbft -> Ready);
      on_ready = (fun () -> ());
      next_ts = 0L;
      inflight = Hashtbl.create 64;
      queue = [];
      completed = 0;
      lat = Stats.create ();
      stopped = false;
      recent = Hashtbl.create 64;
      recent_order = Queue.create ();
      session = Session.generate rng;
      exec_acks = [];
      provisioned = [] }
  in
  t

let protocol_string = function
  | Pbft -> "pbft"
  | Minbft -> "minbft"
  | Splitbft _ -> "splitbft"

(* ----- request construction / reply validation ----- *)

let make_request t ~ts ~op : Message.request =
  match t.cfg.protocol with
  | Splitbft _ ->
    let payload = Session.encrypt_op t.session ~client:t.cfg.id ~timestamp:ts op in
    Session.authenticate_request t.session
      { Message.client = t.cfg.id; timestamp = ts; payload; auth = "" }
  | (Pbft | Minbft) as p ->
    let r = { Message.client = t.cfg.id; timestamp = ts; payload = op; auth = "" } in
    { r with
      auth =
        Keys.make_authenticator ~protocol:(protocol_string p) ~client:t.cfg.id ~n:t.cfg.n
          (Message.request_auth_bytes r) }

let validate_reply t (rp : Message.reply) : string option =
  if rp.client <> t.cfg.id then None
  else
    match t.cfg.protocol with
    | Splitbft _ ->
      if Session.reply_auth_ok t.session rp then
        match
          Session.decrypt_result t.session ~client:t.cfg.id ~timestamp:rp.timestamp
            ~replica:rp.sender rp.result
        with
        | Ok result -> Some result
        | Error _ -> None
      else None
    | (Pbft | Minbft) as p ->
      let key =
        Keys.client_replica_key ~protocol:(protocol_string p) ~client:t.cfg.id
          ~replica:rp.sender
      in
      if Hmac.verify ~key ~msg:(Message.reply_auth_bytes rp) ~tag:rp.r_auth then
        Some rp.result
      else None

(* ----- sending ----- *)

let broadcast t ?ctx msg =
  let payload = Message.encode_traced ?ctx msg in
  for j = 0 to t.cfg.n - 1 do
    Network.send t.net ~src:(Addr.client t.cfg.id) ~dst:(Addr.replica j) payload
  done

(* Root span for a request's whole trace.  [forced] marks roots created
   retroactively for slow requests (promoted at their first retransmit,
   back-dated to the original send); retransmissions reuse the pending's
   context, so they join the original trace rather than forking one. *)
let open_root t ~ts ~at ~forced =
  match Engine.tracer t.engine with
  | None -> (None, -1)
  | Some tr ->
    let trace = Tracer.client_trace ~client:t.cfg.id ~ts in
    let id =
      Tracer.open_span tr ~trace ~name:"request" ~cat:"client"
        ~pid:(Addr.client t.cfg.id) ~tid:"client" ~at ()
    in
    (Some { Trace_ctx.trace; span = id; forced }, id)

(* Seeded jitter: each armed delay is perturbed by up to ±retry_jitter so
   clients retrying into the same outage desynchronize — deterministically,
   since the rng derives from the engine seed. *)
let jittered t delay =
  if t.cfg.retry_jitter <= 0.0 then delay
  else
    delay
    *. (1.0 +. (t.cfg.retry_jitter *. ((2.0 *. Splitbft_util.Rng.float t.rng 1.0) -. 1.0)))

let dispatch t ~op ~on_result =
  t.next_ts <- Int64.add t.next_ts 1L;
  let ts = t.next_ts in
  let request = make_request t ~ts ~op in
  let dummy =
    Timer.create t.engine
      ~cls:(Engine.Choice { host = Addr.client t.cfg.id; lane = -1 })
      ~label:(Printf.sprintf "client%d-retry" t.cfg.id)
      ~delay:t.cfg.retry_timeout_us
      ~callback:(fun () -> ())
  in
  let p =
    { op;
      request;
      sent_at = Engine.now t.engine;
      votes = [];
      retry = dummy;
      cur_delay_us = t.cfg.retry_timeout_us;
      ctx = None;
      root = -1;
      retransmits = 0;
      on_result }
  in
  (match Engine.tracer t.engine with
  | Some tr when Tracer.sampled_ts tr ts ->
    let ctx, root = open_root t ~ts ~at:p.sent_at ~forced:false in
    p.ctx <- ctx;
    p.root <- root
  | _ -> ());
  Hashtbl.replace t.inflight ts p;
  let resend () =
    if (not t.stopped) && Hashtbl.mem t.inflight ts then begin
      p.retransmits <- p.retransmits + 1;
      (* A retransmission marks the request slow: promote it to an
         always-sampled trace (back-dated to the first send) if head
         sampling had skipped it. *)
      (match (p.ctx, Engine.tracer t.engine) with
      | None, Some tr ->
        let ctx, root = open_root t ~ts ~at:(Engine.now t.engine) ~forced:true in
        Tracer.set_start tr root ~at:p.sent_at;
        p.ctx <- ctx;
        p.root <- root
      | _ -> ());
      broadcast t ?ctx:p.ctx (Message.Request p.request);
      (* Exponential backoff, capped: a cluster mid-recovery is not helped
         by a fixed-period request storm. *)
      p.cur_delay_us <- min t.cfg.retry_cap_us (p.cur_delay_us *. t.cfg.retry_backoff);
      Timer.set_delay p.retry (jittered t p.cur_delay_us);
      Timer.restart p.retry
    end
  in
  p.retry <-
    Timer.create t.engine
      ~cls:(Engine.Choice { host = Addr.client t.cfg.id; lane = -1 })
      ~label:(Printf.sprintf "client%d-retry" t.cfg.id)
      ~delay:(jittered t p.cur_delay_us) ~callback:resend;
  broadcast t ?ctx:p.ctx (Message.Request p.request);
  Timer.restart p.retry

let rec pump t =
  if
    t.phase = Ready && (not t.stopped)
    && Hashtbl.length t.inflight < t.cfg.window
  then begin
    match List.rev t.queue with
    | [] -> ()
    | (op, on_result) :: rest ->
      t.queue <- List.rev rest;
      dispatch t ~op ~on_result;
      pump t
  end

let submit t ~op ~on_result =
  t.queue <- (op, on_result) :: t.queue;
  pump t

(* ----- reply handling ----- *)

(* The client is the natural witness for corrupt-result faults: it holds
   the session keys, so it is the only party that can compare the f+1
   decrypted votes.  When a flight recorder is attached, any validated
   vote that disagrees with the quorum's winning result is recorded as
   evidence against the replica that signed it — at completion time for
   votes already in, and via [recent] for votes that straggle in after
   the quorum answered.  Without a recorder this whole path is inert. *)
let divergence_evidence t ~replica ~ts =
  Engine.flight_record t.engine ~host:(Addr.replica replica) ~kind:"evidence"
    ~detail:(Printf.sprintf "vote-divergence replica=%d client=%d ts=%Ld" replica t.cfg.id ts)

let remember_result t ~ts ~result =
  Hashtbl.replace t.recent ts result;
  Queue.push ts t.recent_order;
  if Queue.length t.recent_order > 512 then Hashtbl.remove t.recent (Queue.pop t.recent_order)

let on_reply t (rp : Message.reply) =
  match Hashtbl.find_opt t.inflight rp.timestamp with
  | None ->
    if Option.is_some (Engine.flight t.engine) then (
      match Hashtbl.find_opt t.recent rp.timestamp with
      | None -> ()
      | Some winner -> (
        match validate_reply t rp with
        | Some r when not (String.equal r winner) ->
          divergence_evidence t ~replica:rp.sender ~ts:rp.timestamp
        | _ -> ()))
  | Some p -> (
    match validate_reply t rp with
    | None -> ()
    | Some result ->
      if not (List.mem_assoc rp.sender p.votes) then begin
        p.votes <- (rp.sender, result) :: p.votes;
        let matching =
          List.length (List.filter (fun (_, r) -> String.equal r result) p.votes)
        in
        if matching >= t.cfg.reply_quorum then begin
          Hashtbl.remove t.inflight rp.timestamp;
          Timer.stop p.retry;
          if Option.is_some (Engine.flight t.engine) then begin
            List.iter
              (fun (sender, r) ->
                if not (String.equal r result) then
                  divergence_evidence t ~replica:sender ~ts:rp.timestamp)
              p.votes;
            remember_result t ~ts:rp.timestamp ~result
          end;
          t.completed <- t.completed + 1;
          let latency = Engine.now t.engine -. p.sent_at in
          Stats.add t.lat latency;
          (match Engine.tracer t.engine with
          | Some tr when p.root >= 0 ->
            Tracer.add_arg tr p.root "latency_us" latency;
            Tracer.add_arg tr p.root "retransmits" (float_of_int p.retransmits);
            Tracer.finish tr p.root ~at:(Engine.now t.engine)
          | _ -> ());
          p.on_result ~latency_us:latency ~result;
          pump t
        end
      end)

(* ----- SplitBFT handshake ----- *)

let expected_measurements = [ Enclave_identity.preparation; Enclave_identity.execution ]

let on_session_quote t (sq : Message.session_quote) =
  match Attestation.decode sq.sq_quote with
  | Error _ -> ()
  | Ok quote ->
    let meas_ok =
      List.exists (fun m -> Measurement.equal m quote.Attestation.measurement)
        expected_measurements
    in
    let quote_ok = Attestation.verify quote in
    (* The quote binds the enclave's signing key; the signing key endorses
       the box key. *)
    let sig_ok =
      Signature.verify ~public:quote.Attestation.report_data
        ~msg:(Message.session_quote_signing_bytes sq)
        ~signature:sq.sq_sig
    in
    if meas_ok && quote_ok && sig_ok then begin
      (* Key the dedup on the enclave's instance nonce too: a restarted
         enclave re-attests with a fresh nonce and must be re-provisioned
         (its box key is unchanged, but sessions established after its last
         seal are gone). *)
      let already =
        List.mem (sq.sq_replica, sq.sq_box_public ^ ":" ^ sq.sq_nonce) t.provisioned
      in
      if not already then begin
        t.provisioned <-
          (sq.sq_replica, sq.sq_box_public ^ ":" ^ sq.sq_nonce) :: t.provisioned;
        let provision =
          if Measurement.equal quote.Attestation.measurement Enclave_identity.execution
          then Session.encode_for_execution t.session
          else Session.encode_for_preparation t.session
        in
        match Box.encrypt ~public:sq.sq_box_public ~rng:t.rng provision with
        | Error _ -> ()
        | Ok sk_box ->
          let msg =
            Message.Session_key
              { Message.sk_client = t.cfg.id; sk_replica = sq.sq_replica; sk_box }
          in
          Network.send t.net ~src:(Addr.client t.cfg.id)
            ~dst:(Addr.replica sq.sq_replica)
            (Message.encode msg)
      end
    end

let on_session_ack t (sa : Message.session_ack) =
  match t.cfg.protocol with
  | Pbft | Minbft -> ()
  | Splitbft { ready_quorum } ->
    let auth_ok =
      Hmac.verify ~key:t.session.Session.auth
        ~msg:(Message.session_ack_auth_bytes sa)
        ~tag:sa.sa_auth
    in
    if auth_ok && not (List.mem sa.sa_replica t.exec_acks) then begin
      t.exec_acks <- sa.sa_replica :: t.exec_acks;
      if t.phase = Handshaking && List.length t.exec_acks >= ready_quorum then begin
        t.phase <- Ready;
        t.on_ready ();
        pump t
      end
    end

(* ----- wiring ----- *)

let on_payload t ~src:_ payload =
  if not t.stopped then begin
    match Message.decode payload with
    | Error _ -> ()
    | Ok (Message.Reply rp) -> on_reply t rp
    | Ok (Message.Session_quote sq) -> on_session_quote t sq
    | Ok (Message.Session_ack sa) -> on_session_ack t sa
    | Ok _ -> ()
  end

let start t ~on_ready =
  t.on_ready <- on_ready;
  Network.register t.net (Addr.client t.cfg.id) (fun ~src payload ->
      on_payload t ~src payload);
  match t.cfg.protocol with
  | Pbft | Minbft ->
    t.phase <- Ready;
    on_ready ();
    pump t
  | Splitbft _ ->
    broadcast t (Message.Session_init { Message.si_client = t.cfg.id })

let stop t =
  t.stopped <- true;
  Hashtbl.iter (fun _ p -> Timer.stop p.retry) t.inflight

let id t = t.cfg.id
let is_ready t = t.phase = Ready
let completed t = t.completed
let outstanding t = Hashtbl.length t.inflight
let latencies t = t.lat
