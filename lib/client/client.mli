(** BFT service client.

    Issues operations against a replica group, collects a quorum of
    [f + 1] matching, individually authenticated replies, handles
    retransmission, and records end-to-end latencies — the measurement
    methodology of §6 (clients issue synchronous requests and measure the
    time to collect the replies; pipelined clients use [window] > 1, e.g.
    40 outstanding requests in the batched experiments).

    Three wire dialects are supported: [Pbft] and [Minbft] authenticate
    with pre-provisioned HMAC authenticators and send plaintext operations;
    [Splitbft] first runs the attestation handshake (verify Preparation and
    Execution enclave quotes → provision session keys), then sends
    AEAD-encrypted operations and decrypts results, so payloads never
    appear in plaintext outside enclaves. *)

module Ids = Splitbft_types.Ids

type protocol =
  | Pbft
  | Minbft
  | Splitbft of { ready_quorum : int }
      (** number of Execution-enclave session acks required before the
          client considers itself connected ([n] in fault-free runs,
          [2f + 1] when hosts may be down) *)

type config = {
  id : Ids.client_id;
  n : int;
  reply_quorum : int;  (** matching replies required; [f + 1] *)
  window : int;  (** outstanding requests; 1 = synchronous *)
  retry_timeout_us : float;  (** initial retry delay *)
  retry_backoff : float;
      (** multiplier applied to the delay after every resend ([2.0]);
          [1.0] recovers the old fixed-period behaviour *)
  retry_cap_us : float;  (** backoff ceiling *)
  retry_jitter : float;
      (** each armed delay is perturbed by up to ±this fraction, from a
          deterministic per-client rng, so retry storms desynchronize *)
  protocol : protocol;
}

val default_config : protocol -> n:int -> id:Ids.client_id -> config

type t

val create : Splitbft_sim.Engine.t -> Splitbft_sim.Network.t -> config -> t
val start : t -> on_ready:(unit -> unit) -> unit

val submit :
  t -> op:string -> on_result:(latency_us:float -> result:string -> unit) -> unit
(** Queues an operation; it is sent when the client is ready and a window
    slot is free.  [on_result] fires once, when the reply quorum is
    reached. *)

val stop : t -> unit
(** Stops retransmission timers; in-flight requests never complete. *)

val id : t -> Ids.client_id
val is_ready : t -> bool
val completed : t -> int
val outstanding : t -> int
val latencies : t -> Splitbft_util.Stats.t
