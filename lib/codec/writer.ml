type t = { mutable buf : Bytes.t; mutable len : int }

let create ?(initial_size = 64) () = { buf = Bytes.create (max 8 initial_size); len = 0 }
let contents t = Bytes.sub_string t.buf 0 t.len
let length t = t.len
let reset t = t.len <- 0

let ensure t extra =
  let needed = t.len + extra in
  if needed > Bytes.length t.buf then begin
    let cap = ref (Bytes.length t.buf) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let fresh = Bytes.create !cap in
    Bytes.blit t.buf 0 fresh 0 t.len;
    t.buf <- fresh
  end

let u8 t v =
  ensure t 1;
  Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (v land 0xff));
  t.len <- t.len + 1

let u16 t v =
  u8 t v;
  u8 t (v lsr 8)

let u32 t v =
  u16 t v;
  u16 t (v lsr 16)

let u64 t v =
  for i = 0 to 7 do
    u8 t (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done

let rec varint t v =
  if v < 0 then invalid_arg "Writer.varint: negative"
  else if v < 0x80 then u8 t v
  else begin
    u8 t (0x80 lor (v land 0x7f));
    varint t (v lsr 7)
  end

let bool t b = u8 t (if b then 1 else 0)
let float t f = u64 t (Int64.bits_of_float f)

let raw t s =
  let n = String.length s in
  ensure t n;
  Bytes.blit_string s 0 t.buf t.len n;
  t.len <- t.len + n

let bytes t s =
  varint t (String.length s);
  raw t s

let option t enc = function
  | None -> u8 t 0
  | Some v ->
    u8 t 1;
    enc t v

let varint_width v =
  let rec go v acc = if v < 0x80 then acc else go (v lsr 7) (acc + 1) in
  go v 1

let write_varint_at t pos v =
  let rec go pos v =
    if v < 0x80 then Bytes.set t.buf pos (Char.chr v)
    else begin
      Bytes.set t.buf pos (Char.chr (0x80 lor (v land 0x7f)));
      go (pos + 1) (v lsr 7)
    end
  in
  go pos v

(* One byte is reserved for the varint before the payload is written; when
   the value needs a wider varint (payload >= 128 bytes, list >= 128
   elements) the payload is shifted right in place.  Either way the output
   bytes are identical to [varint] followed by the payload, without
   round-tripping the payload through a second buffer. *)
let patch_reserved_varint t start value =
  let width = varint_width value in
  if width > 1 then begin
    ensure t (width - 1);
    Bytes.blit t.buf (start + 1) t.buf (start + width) (t.len - start - 1);
    t.len <- t.len + width - 1
  end;
  write_varint_at t start value

let nested t enc v =
  ensure t 1;
  let start = t.len in
  t.len <- start + 1;
  enc t v;
  patch_reserved_varint t start (t.len - start - 1)

let list t enc xs =
  ensure t 1;
  let start = t.len in
  t.len <- start + 1;
  let count = ref 0 in
  List.iter
    (fun x ->
      incr count;
      enc t x)
    xs;
  patch_reserved_varint t start !count

let to_string enc v =
  let t = create () in
  enc t v;
  contents t
