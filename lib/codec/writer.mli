(** Append-only binary encoder.

    All multi-byte integers are little-endian.  Variable-length payloads are
    length-prefixed with a LEB128 varint.  This is the wire format used
    between replicas, between enclaves and their broker, and for sealed
    state — the role serde played in the paper's Rust implementation. *)

type t

val create : ?initial_size:int -> unit -> t
val contents : t -> string
val length : t -> int

(** [reset t] empties the writer while keeping its grown buffer, so one
    writer can serve as a reusable encode arena: steady-state encodes stop
    paying the grow-and-blit doubling of a fresh buffer per message. *)
val reset : t -> unit
val u8 : t -> int -> unit
val u16 : t -> int -> unit
val u32 : t -> int -> unit

val u64 : t -> int64 -> unit

val varint : t -> int -> unit
(** Unsigned LEB128; [v] must be non-negative. *)

val bool : t -> bool -> unit
val float : t -> float -> unit

val bytes : t -> string -> unit
(** Length-prefixed byte string. *)

val raw : t -> string -> unit
(** Appends bytes with no length prefix. *)

val option : t -> (t -> 'a -> unit) -> 'a option -> unit

val list : t -> (t -> 'a -> unit) -> 'a list -> unit
(** Varint element count followed by the elements.  The input is traversed
    once: elements are counted while they are emitted and the count is
    patched in front of them afterwards. *)

val nested : t -> (t -> 'a -> unit) -> 'a -> unit
(** [nested t enc v] writes [enc v] as a length-prefixed payload directly
    into [t], producing exactly the bytes of [bytes t (to_string enc v)]
    without serializing into a fresh buffer and copying.  Readers consume
    it with {!Reader.bytes}. *)

val to_string : (t -> 'a -> unit) -> 'a -> string
(** [to_string enc v] encodes [v] with [enc] into a fresh buffer. *)
