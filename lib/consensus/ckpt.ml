module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Validation = Splitbft_types.Validation

type t = {
  quorum : int;
  mutable stable : Ids.seqno;
  mutable proof : Message.checkpoint list;
  received : (Ids.seqno, Message.checkpoint list) Hashtbl.t;
}

let create ~quorum = { quorum; stable = 0; proof = []; received = Hashtbl.create 8 }
let last_stable t = t.stable
let proof t = t.proof

let store t (ck : Message.checkpoint) =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.received ck.seq) in
  if not (List.exists (fun (e : Message.checkpoint) -> e.sender = ck.sender) existing)
  then Hashtbl.replace t.received ck.seq (ck :: existing)

let try_advance t seq ~on_stable =
  match Hashtbl.find_opt t.received seq with
  | None -> ()
  | Some cks ->
    if seq > t.stable && Validation.checkpoint_quorum_complete ~quorum:t.quorum cks
    then begin
      t.stable <- seq;
      t.proof <- cks;
      Hashtbl.iter
        (fun s _ -> if s < seq then Hashtbl.remove t.received s)
        (Hashtbl.copy t.received);
      on_stable seq
    end

let observe t (ck : Message.checkpoint) ~on_stable =
  if ck.seq > t.stable then begin
    store t ck;
    try_advance t ck.seq ~on_stable
  end

let force_stable t seq =
  if seq > t.stable then begin
    t.stable <- seq;
    Hashtbl.iter
      (fun s _ -> if s < seq then Hashtbl.remove t.received s)
      (Hashtbl.copy t.received)
  end

let absorb_newview t (nv : Message.newview) =
  List.iter
    (fun (vc : Message.viewchange) -> List.iter (store t) vc.vc_checkpoint_proof)
    nv.nv_viewchanges;
  (* Try every sequence number the embedded proofs could stabilize. *)
  let seqs =
    List.sort_uniq compare
      (List.concat_map
         (fun (vc : Message.viewchange) ->
           List.map (fun (ck : Message.checkpoint) -> ck.seq) vc.vc_checkpoint_proof)
         nv.nv_viewchanges)
  in
  List.iter (fun seq -> try_advance t seq ~on_stable:(fun _ -> ())) seqs;
  t.stable
