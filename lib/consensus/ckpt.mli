(** Checkpoint certificate tracking: the stable low-water proof and the
    per-sequence tallies still being collected (PBFT §4.3).

    Pure protocol state — signature verification and enclave metering stay
    with the caller, so the monolithic PBFT replica and each SplitBFT
    compartment can wrap this with their own cost accounting. *)

module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message

type t

val create : quorum:int -> t
val last_stable : t -> Ids.seqno

val proof : t -> Message.checkpoint list
(** The quorum that proved {!last_stable}; [[]] before the first stable
    checkpoint. *)

val store : t -> Message.checkpoint -> unit
(** Records a checkpoint vote, deduplicating by sender.  Does not try to
    advance — use for own checkpoints, which never complete a quorum
    alone. *)

val observe : t -> Message.checkpoint -> on_stable:(Ids.seqno -> unit) -> unit
(** Records an (already verified) peer checkpoint and, if it completes a
    quorum above the current stable point, advances, retains the proving
    quorum, prunes stale tallies and invokes [on_stable].  Checkpoints at
    or below the stable mark are discarded. *)

val try_advance : t -> Ids.seqno -> on_stable:(Ids.seqno -> unit) -> unit

val force_stable : t -> Ids.seqno -> unit
(** Raises the stable mark without a proving quorum (view entry adopting a
    NewView's stable point); keeps the previous proof. *)

val absorb_newview : t -> Message.newview -> Ids.seqno
(** Adopts the highest checkpoint certificate proven inside the NewView's
    ViewChanges; returns the (possibly unchanged) stable sequence
    number. *)
