module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Client_dedup = Splitbft_types.Client_dedup

type t = {
  entries : (Ids.client_id, Client_dedup.t) Hashtbl.t;
  assigned : (Ids.client_id, (int64, unit) Hashtbl.t) Hashtbl.t;
}

let create () = { entries = Hashtbl.create 64; assigned = Hashtbl.create 64 }

let entry t client =
  match Hashtbl.find_opt t.entries client with
  | Some d -> d
  | None ->
    let d = Client_dedup.create () in
    Hashtbl.replace t.entries client d;
    d

let find t client = Hashtbl.find_opt t.entries client

let executed t client ts =
  match Hashtbl.find_opt t.entries client with
  | Some d -> Client_dedup.executed d ts
  | None -> false

let record t client ts reply = Client_dedup.record (entry t client) ts reply

let cached_reply t client ts =
  match Hashtbl.find_opt t.entries client with
  | Some d -> Client_dedup.cached_reply d ts
  | None -> None

let note_assigned t client ts =
  let set =
    match Hashtbl.find_opt t.assigned client with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace t.assigned client s;
      s
  in
  Hashtbl.replace set ts ()

let already_assigned t client ts =
  executed t client ts
  ||
  match Hashtbl.find_opt t.assigned client with
  | Some s -> Hashtbl.mem s ts
  | None -> false

let reset_assignments t = Hashtbl.reset t.assigned
let clients t = Hashtbl.length t.entries
