(** Per-client session state: execute-once bookkeeping with reply caching
    (wrapping {!Splitbft_types.Client_dedup}) plus the ordering-side
    "already assigned a sequence number" set a primary consults before
    re-proposing a timestamp.

    The two sides deliberately differ in durability: executed state is
    permanent, while assignments are discarded on view entry — a request
    assigned in a dead view may have been lost with it, and re-ordering is
    safe because execution deduplicates by exact timestamp. *)

module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Client_dedup = Splitbft_types.Client_dedup

type t

val create : unit -> t

(** {2 Execution side} *)

val entry : t -> Ids.client_id -> Client_dedup.t
(** Find-or-create the client's dedup record. *)

val find : t -> Ids.client_id -> Client_dedup.t option
val executed : t -> Ids.client_id -> int64 -> bool

val record : t -> Ids.client_id -> int64 -> Message.reply option -> unit
(** @raise Invalid_argument if the timestamp was already recorded. *)

val cached_reply : t -> Ids.client_id -> int64 -> Message.reply option

(** {2 Ordering side} *)

val note_assigned : t -> Ids.client_id -> int64 -> unit
(** Marks a timestamp as assigned to a sequence number. *)

val already_assigned : t -> Ids.client_id -> int64 -> bool
(** Assigned in the current view {e or} already executed. *)

val reset_assignments : t -> unit
(** View entry: allow retransmissions of possibly-lost requests to be
    ordered again. *)

val clients : t -> int
(** Number of clients with executed state (probe/metric). *)
