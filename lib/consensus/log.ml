module Ids = Splitbft_types.Ids

type 'a t = {
  slots : (Ids.seqno, 'a) Hashtbl.t;
  mutable low : Ids.seqno;
  window : int;
}

let create ?(size = 128) ~window () = { slots = Hashtbl.create size; low = 0; window }
let low_mark t = t.low
let window t = t.window
let in_window t seq = seq > t.low && seq <= t.low + t.window
let ahead_of_window t seq = seq > t.low + t.window && seq <= t.low + (2 * t.window)
let advance_low_mark t seq = t.low <- max t.low seq
let find t seq = Hashtbl.find_opt t.slots seq
let mem t seq = Hashtbl.mem t.slots seq
let set t seq v = Hashtbl.replace t.slots seq v
let remove t seq = Hashtbl.remove t.slots seq

let find_or_add t seq ~default =
  match Hashtbl.find_opt t.slots seq with
  | Some v -> v
  | None ->
    let v = default () in
    Hashtbl.replace t.slots seq v;
    v

let prune t ~upto =
  Hashtbl.iter
    (fun seq _ -> if seq <= upto then Hashtbl.remove t.slots seq)
    (Hashtbl.copy t.slots)

let by_seqno (a, _) (b, _) = Int.compare a b

let reset t = Hashtbl.reset t.slots
let iter f t = Hashtbl.iter f t.slots
let fold f t init = Hashtbl.fold f t.slots init
let cardinal t = Hashtbl.length t.slots
