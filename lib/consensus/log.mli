(** A sequenced message log with a low watermark and a bounded acceptance
    window — the [h < n <= h + L] rule of PBFT §4.2, shared by the
    monolithic replica and every SplitBFT compartment.

    The log stores one slot of caller-chosen type per sequence number.  The
    low watermark only moves forward: checkpoint stabilization advances it
    through {!advance_low_mark} + {!prune}, a view change may additionally
    raise it to the NewView's stable point. *)

module Ids = Splitbft_types.Ids

type 'a t

val create : ?size:int -> window:int -> unit -> 'a t
val low_mark : 'a t -> Ids.seqno
val window : 'a t -> int

val in_window : 'a t -> Ids.seqno -> bool
(** [low < seq <= low + window]. *)

val ahead_of_window : 'a t -> Ids.seqno -> bool
(** [seq] lies in the window-sized band just above the high edge — the
    sender's checkpoint stabilised before this replica's did.  Receivers
    park such messages until their own window slides rather than dropping
    them (the window-edge races the core compartments guard against). *)

val advance_low_mark : 'a t -> Ids.seqno -> unit
(** Raises the low watermark (never lowers it). *)

val find : 'a t -> Ids.seqno -> 'a option
val mem : 'a t -> Ids.seqno -> bool
val set : 'a t -> Ids.seqno -> 'a -> unit
val remove : 'a t -> Ids.seqno -> unit
val find_or_add : 'a t -> Ids.seqno -> default:(unit -> 'a) -> 'a

val prune : 'a t -> upto:Ids.seqno -> unit
(** Drops every slot at or below [upto] (checkpoint GC). *)

val by_seqno : Ids.seqno * 'a -> Ids.seqno * 'b -> int
(** Orders [(seqno, _)] pairs by sequence number alone ([Int.compare] on
    the first component) — the principled comparator for sorting log or
    snapshot entries, as opposed to polymorphic [compare] which also
    inspects the payload representation. *)

val reset : 'a t -> unit
(** Drops all slots, keeping the watermark (view entry). *)

val iter : (Ids.seqno -> 'a -> unit) -> 'a t -> unit
val fold : (Ids.seqno -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
val cardinal : 'a t -> int
