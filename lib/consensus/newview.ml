module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message

let compute ~view ~sender (vcs : Message.viewchange list) =
  let min_s =
    List.fold_left (fun acc (vc : Message.viewchange) -> max acc vc.vc_last_stable) 0 vcs
  in
  let best : (int, Message.preprepare_digest) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (vc : Message.viewchange) ->
      List.iter
        (fun (p : Message.prepared_proof) ->
          let pd = p.proof_preprepare in
          if pd.pd_seq > min_s then
            match Hashtbl.find_opt best pd.pd_seq with
            | Some existing when existing.pd_view >= pd.pd_view -> ()
            | Some _ | None -> Hashtbl.replace best pd.pd_seq pd)
        vc.vc_prepared)
    vcs;
  let max_s = Hashtbl.fold (fun seq _ acc -> max acc seq) best min_s in
  let pps = ref [] in
  for seq = max_s downto min_s + 1 do
    let digest =
      match Hashtbl.find_opt best seq with
      | Some pd -> pd.pd_digest
      | None -> Message.empty_batch_digest
    in
    pps :=
      { Message.pd_view = view; pd_seq = seq; pd_digest = digest; pd_sender = sender;
        pd_sig = "" }
      :: !pps
  done;
  (min_s, max_s, !pps)

let matches ~expected ~actual =
  List.length expected = List.length actual
  && List.for_all2
       (fun (a : Message.preprepare_digest) (b : Message.preprepare_digest) ->
         a.pd_seq = b.pd_seq && String.equal a.pd_digest b.pd_digest)
       expected actual
