(** Deterministic NewView construction from a set of ViewChanges.

    The new primary runs this to build the PrePrepares of its NewView, and
    every validator re-runs it to check the NewView it received — "this
    logic is complex and it is repeated when validating the NewView in the
    Preparation Compartment" (§4).  Having a single implementation shared
    by the PBFT baseline and SplitBFT's Preparation compartment keeps the
    two protocols comparable. *)

module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message

val compute :
  view:Ids.view ->
  sender:Ids.replica_id ->
  Message.viewchange list ->
  Ids.seqno * Ids.seqno * Message.preprepare_digest list
(** [compute ~view ~sender vcs] is [(min_s, max_s, preprepares)]:
    [min_s] is the highest stable checkpoint among the ViewChanges,
    [max_s] the highest prepared sequence number, and [preprepares] one
    digest-form PrePrepare per sequence number in [(min_s, max_s]] — the
    batch digest of the highest-view prepared proof for that number, or
    the no-op digest for gaps.  Signatures are left empty; the primary
    signs, validators compare (seq, digest) pairs. *)

val matches :
  expected:Message.preprepare_digest list ->
  actual:Message.preprepare_digest list ->
  bool
(** Positional comparison on (seq, digest). *)
