module Message = Splitbft_types.Message
module Validation = Splitbft_types.Validation

let count_sigs proofs =
  List.fold_left
    (fun acc (p : Message.prepared_proof) -> acc + 1 + List.length p.proof_prepares)
    0 proofs

let viewchange_sig_count (vc : Message.viewchange) =
  1 + List.length vc.vc_checkpoint_proof + count_sigs vc.vc_prepared

let newview_sig_count (nv : Message.newview) =
  1
  + List.fold_left (fun acc vc -> acc + viewchange_sig_count vc) 0 nv.nv_viewchanges
  + List.length nv.nv_preprepares

let assemble ~f slots =
  List.filter_map
    (fun ((pd : Message.preprepare_digest), prepares) ->
      if Validation.prepare_cert_complete ~f pd prepares then
        Some { Message.proof_preprepare = pd; proof_prepares = prepares }
      else None)
    slots
