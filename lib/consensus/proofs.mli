(** Prepared-certificate assembly and signature counting for ViewChange /
    NewView messages — the arithmetic every replica needs both to build its
    own ViewChange and to price verifying someone else's. *)

module Message = Splitbft_types.Message

val assemble :
  f:int ->
  (Message.preprepare_digest * Message.prepare list) list ->
  Message.prepared_proof list
(** Keeps the slots whose prepare certificate is complete ([2f] matching
    Prepares behind the accepted proposal) and packages each as the
    prepared proof carried in a ViewChange. *)

val count_sigs : Message.prepared_proof list -> int
(** Signatures embedded in a list of prepared proofs: one PrePrepare digest
    plus the Prepares behind it, per proof. *)

val viewchange_sig_count : Message.viewchange -> int
(** Signatures to verify one ViewChange deeply: its own, its checkpoint
    proof and its prepared proofs. *)

val newview_sig_count : Message.newview -> int
(** Signatures to verify one NewView deeply: its own, each embedded
    ViewChange (deeply) and the re-issued PrePrepare digests. *)
