type 'a t = {
  senders : (int, unit) Hashtbl.t;
  mutable items : 'a list;  (* newest first *)
  mutable size : int;
}

let create ?(size = 8) () = { senders = Hashtbl.create size; items = []; size = 0 }
let mem t ~sender = Hashtbl.mem t.senders sender

let add t ~sender vote =
  if Hashtbl.mem t.senders sender then false
  else begin
    Hashtbl.replace t.senders sender ();
    t.items <- vote :: t.items;
    t.size <- t.size + 1;
    true
  end

let count t = t.size
let votes t = t.items
let senders t = Hashtbl.fold (fun s () acc -> s :: acc) t.senders []

let reset t =
  Hashtbl.reset t.senders;
  t.items <- [];
  t.size <- 0
