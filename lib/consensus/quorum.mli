(** A per-sender-deduplicated vote set: the building block of every quorum
    certificate (Prepare, Commit, Checkpoint, ViewChange tallies).

    The paper's principle P5 — compartments act only on certificates, never
    on individual messages — requires each certificate to count every
    sender at most once.  Before this module existed, every consumer
    carried its own [List.exists ... sender] scan; this is the single
    shared implementation. *)

type 'a t

val create : ?size:int -> unit -> 'a t

val add : 'a t -> sender:int -> 'a -> bool
(** Records a vote; returns [false] (and keeps the first vote) if this
    sender already voted. *)

val mem : 'a t -> sender:int -> bool
val count : 'a t -> int

val votes : 'a t -> 'a list
(** Newest first — the order the ad-hoc lists this module replaced used. *)

val senders : 'a t -> int list
val reset : 'a t -> unit
