module Ids = Splitbft_types.Ids

type 'a t = (Ids.client_id, 'a) Hashtbl.t

let create ?(size = 64) () : _ t = Hashtbl.create size
let set t client v = Hashtbl.replace t client v
let find t client = Hashtbl.find_opt t client
let mem t client = Hashtbl.mem t client
let count t = Hashtbl.length t
let fold f t acc = Hashtbl.fold f t acc
let reset t = Hashtbl.reset t
