(** Per-client session material (attested request-authentication keys in
    Preparation, full crypto sessions in Execution).  A thin keyed store so
    every compartment exposes the same probe surface. *)

module Ids = Splitbft_types.Ids

type 'a t

val create : ?size:int -> unit -> 'a t
val set : 'a t -> Ids.client_id -> 'a -> unit
val find : 'a t -> Ids.client_id -> 'a option
val mem : 'a t -> Ids.client_id -> bool
val count : 'a t -> int

val fold : (Ids.client_id -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** Enumeration for checkpoint sealing: recovery must restore sessions or
    every post-restart request would decrypt to a no-op. *)

val reset : 'a t -> unit
