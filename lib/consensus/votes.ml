type ('k, 'a) t = ('k, 'a Quorum.t) Hashtbl.t

let create ?(size = 16) () : _ t = Hashtbl.create size

let quorum t key =
  match Hashtbl.find_opt t key with
  | Some q -> q
  | None ->
    let q = Quorum.create () in
    Hashtbl.replace t key q;
    q

let add t ~key ~sender vote = Quorum.add (quorum t key) ~sender vote
let find t key = Hashtbl.find_opt t key

let get t key =
  match Hashtbl.find_opt t key with
  | Some q -> Quorum.votes q
  | None -> []

let count t key =
  match Hashtbl.find_opt t key with
  | Some q -> Quorum.count q
  | None -> 0

let mem t ~key ~sender =
  match Hashtbl.find_opt t key with
  | Some q -> Quorum.mem q ~sender
  | None -> false

let remove t key = Hashtbl.remove t key

let prune t ~keep =
  Hashtbl.iter (fun key _ -> if not (keep key) then Hashtbl.remove t key) (Hashtbl.copy t)

let reset t = Hashtbl.reset t
let fold f t init = Hashtbl.fold f t init
