(** Keyed vote tallies: one {!Quorum.t} per sequence number (or view, or
    USIG counter), created on demand.

    Replaces the [(seq, message list) Hashtbl.t] + manual sender-dedup
    pattern previously copied across the PBFT baseline, all three SplitBFT
    compartments and MinBFT. *)

type ('k, 'a) t

val create : ?size:int -> unit -> ('k, 'a) t

val add : ('k, 'a) t -> key:'k -> sender:int -> 'a -> bool
(** [false] if this sender already voted for this key. *)

val find : ('k, 'a) t -> 'k -> 'a Quorum.t option

val get : ('k, 'a) t -> 'k -> 'a list
(** The recorded votes, newest first; [[]] if none. *)

val count : ('k, 'a) t -> 'k -> int
val mem : ('k, 'a) t -> key:'k -> sender:int -> bool

val remove : ('k, 'a) t -> 'k -> unit
(** Drops one key's tally entirely. *)

val prune : ('k, 'a) t -> keep:('k -> bool) -> unit
(** Drops every key for which [keep] is [false] (checkpoint GC). *)

val reset : ('k, 'a) t -> unit
val fold : ('k -> 'a Quorum.t -> 'b -> 'b) -> ('k, 'a) t -> 'b -> 'b
