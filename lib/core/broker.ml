module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Resource = Splitbft_sim.Resource
module Timer = Splitbft_sim.Timer
module Enclave = Splitbft_tee.Enclave
module Ids = Splitbft_types.Ids
module Addr = Splitbft_types.Addr
module Message = Splitbft_types.Message
module Registry = Splitbft_obs.Registry
module Tracer = Splitbft_obs.Tracer
module Trace_ctx = Splitbft_obs.Trace_ctx
module W = Splitbft_codec.Writer
module Lru = Splitbft_util.Lru
module Feed = Splitbft_storage.Feed
module Ledger = Splitbft_storage.Ledger
module Ledger_entry = Splitbft_storage.Entry

type fault =
  | Env_honest
  | Env_mute
  | Env_starve of Ids.compartment
  | Env_delay of float
  | Env_drop_nth of int
  | Env_duplicate
  | Env_reorder

type t = {
  cfg : Config.t;
  engine : Engine.t;
  net : Network.t;
  enclave_of : Ids.compartment -> Enclave.t;
  loop : Resource.t;  (* the event-loop thread *)
  threads : Resource.t list;  (* every distinct ecall thread, for crash quiesce *)
  thread_of : Ids.compartment -> int -> Resource.t;
      (* ecall thread per (compartment, lane): protocol messages of lane
         [l] — seqno [s] with [(s-1) mod lanes = l] — ride lane [l]'s
         thread, so consensus rounds for different seqnos pipeline instead
         of queueing behind one another *)
  lanes : int;
  mutable next_batch_lane : int;  (* round-robin stripe for In_batch ecalls *)
  c_lane_ecalls : Registry.counter array;  (* per-lane; empty when lanes = 1 *)
  mutable view : Ids.view;  (* belief, liveness-only *)
  pending : Message.request Queue.t;  (* batch queue, FIFO *)
  queued : (Ids.client_id * int64, unit) Hashtbl.t;  (* membership of [pending] *)
  batch_timer : Timer.t;
  awaiting : (Ids.client_id * int64, unit) Hashtbl.t;
  suspect_timer : Timer.t;
  mutable suspect_delay_us : float;
      (* current suspicion delay.  The first suspicion of a view fires
         after [cfg.suspect_timeout_us]; consecutive suspicions without a
         reply escalate to [cfg.viewchange_timeout_us] and double from
         there (capped), PBFT's weak-synchrony timeout growth.  A
         constant re-suspicion period livelocks under message loss: every
         NewView keeps arriving just after the backups have already
         suspected their way into the next view.  Progress (any reply)
         resets the delay. *)
  recovery_timer : Timer.t;
  mutable storage : (string * string) list;  (* newest first *)
  mutable feed : Feed.t option;
      (* committed-log fan-out to follower replicas; [Some] iff the
         rollback-protected ledger is enabled.  Lives on the untrusted
         host: followers read already-committed, f+1-vouched entries, so
         serving them needs no enclave transition. *)
  mutable fault : fault;
  mutable env_output_seq : int;
      (* count of enclave outputs this environment has handled, the
         deterministic clock [Env_drop_nth] drops against *)
  mutable crashed : bool;
  mutable epoch : int;
      (* incarnation counter: bumped on crash so callbacks scheduled by a
         previous incarnation (in-flight ecall completions, delayed work,
         queued loop submissions) are recognizably stale and dropped *)
  mutable alerts : string list;  (* newest first; e.g. rollback detections *)
  mutable recovering : bool;
  mutable recovery_started_at : float;
  mutable recovered_count : int;
  req_ctx : (Ids.client_id * int64, Trace_ctx.t) Hashtbl.t;
      (* trace context of each queued/awaited request, so the context can
         ride the In_batch ecall even though batching decouples it from
         the arrival that carried it *)
  scratch : W.t;
      (* reusable encode arena for ecall payloads and outgoing messages *)
  replied : string Lru.t;
      (* plain reply encodings by client request, so a retransmission of an
         answered request is served from here — what any untrusted relay
         could do, since replies are end-to-end authenticated *)
  inflight : (Ids.client_id * int64, float) Hashtbl.t;
      (* batched but not yet replied, keyed to the batching time: a
         retransmission of one of these would re-order the request, so it
         is dropped — but only while the entry is younger than
         [inflight_ttl_us].  An entry stuck longer than that (its batch
         was lost without a view change, e.g. to a starved enclave) stops
         suppressing, so the client's retry can be re-driven.  The set is
         also wiped on view entry so a new primary can re-batch. *)
  mutable recovery_ctx : Trace_ctx.t option;
  mutable recovery_span : int;  (* open span covering recovery, or -1 *)
  ecall_counter_of : Ids.compartment -> Registry.counter;
  c_batches : Registry.counter;
  h_batch_occupancy : Registry.histogram;
  c_suspect_firings : Registry.counter;
  c_restarts : Registry.counter;
  c_alerts : Registry.counter;
  g_recovery_us : Registry.gauge;
  c_state_bytes_out : Registry.counter;
  c_state_bytes_in : Registry.counter;
  c_retx_suppressed : Registry.counter;
  c_retx_replayed : Registry.counter;
}

let retx_key client ts = Printf.sprintf "%d:%Ld" client ts

let primary t = Ids.primary_of_view ~n:t.cfg.n t.view
let is_primary t = primary t = t.cfg.id

(* Static routing: which compartments log each incoming message type.  The
   Confirmation compartment receives PrePrepares in digest form. *)
let route (msg : Message.t) : (Ids.compartment * Message.t) list =
  match msg with
  | Message.Preprepare pp ->
    [ (Ids.Preparation, msg);
      (Ids.Confirmation, Message.Preprepare_digest (Message.summarize pp));
      (Ids.Execution, msg) ]
  | Message.Preprepare_digest _ -> [ (Ids.Confirmation, msg) ]
  | Message.Prepare _ -> [ (Ids.Preparation, msg); (Ids.Confirmation, msg) ]
  | Message.Commit _ -> [ (Ids.Execution, msg) ]
  | Message.Checkpoint _ ->
    [ (Ids.Preparation, msg); (Ids.Confirmation, msg); (Ids.Execution, msg) ]
  | Message.Viewchange _ ->
    (* Confirmation gets ViewChanges too: it originates them, and the join
       rule (f+1 for a higher view) must fire even when this replica's own
       suspicion timer never does. *)
    [ (Ids.Preparation, msg); (Ids.Confirmation, msg) ]
  | Message.Newview nv ->
    (* After the NewView itself, hand Confirmation the re-issued proposals
       in digest form — the same duplication a correct environment performs
       for fresh PrePrepares.  Confirmation verifies their signatures, so
       this is liveness-only assistance. *)
    [ (Ids.Preparation, msg); (Ids.Confirmation, msg); (Ids.Execution, msg) ]
    @ List.map
        (fun pd -> (Ids.Confirmation, Message.Preprepare_digest pd))
        nv.Message.nv_preprepares
  | Message.Session_init _ -> [ (Ids.Preparation, msg); (Ids.Execution, msg) ]
  | Message.Session_key _ -> [ (Ids.Preparation, msg); (Ids.Execution, msg) ]
  | Message.Batch_fetch _ | Message.Batch_data _ -> [ (Ids.Execution, msg) ]
  | Message.State_request _ | Message.State_reply _ -> [ (Ids.Execution, msg) ]
  | Message.Request _ | Message.Reply _ | Message.Session_quote _
  | Message.Session_ack _ | Message.Ledger_subscribe _ | Message.Ledger_feed _
  | Message.Read_request _ | Message.Read_reply _ ->
    (* follower-feed traffic terminates at the untrusted host, never
       inside a compartment *)
    []

(* Flight-recorder shorthand: a no-op unless a recorder is attached. *)
let flight t ~kind ~detail = Engine.flight_record t.engine ~host:(Addr.replica t.cfg.id) ~kind ~detail

let loop_cost t payload_len =
  t.cfg.cost.broker_dispatch_us
  +. (t.cfg.cost.serialize_per_byte_us *. float_of_int payload_len)

let tracer t = Engine.tracer t.engine

(* Span covering one host event-loop dispatch (queue wait + the metered
   (de)serialization/dispatch cost), parented on the trace the payload
   belongs to.  Returns the span id to finish when the work completes. *)
let loop_span t ctx ~name ~begun ~cost =
  match (tracer t, ctx) with
  | Some tr, Some { Trace_ctx.trace; span; _ } ->
    let id =
      Tracer.open_span tr ~parent:span ~trace ~name ~cat:"broker" ~pid:t.cfg.id
        ~tid:"host" ~at:begun ()
    in
    Tracer.add_arg tr id "serialize_us" cost;
    id
  | _ -> -1

let finish_span t id =
  match tracer t with
  | Some tr when id >= 0 -> Tracer.finish tr id ~at:(Engine.now t.engine)
  | _ -> ()

(* Synthetic always-sampled root for broker-initiated causality (primary
   suspicion, recovery): a zero-length root span whose id anchors the
   children. *)
let forced_root t ~name ~cat =
  match tracer t with
  | None -> None
  | Some tr ->
    let trace = Tracer.fresh_forced_trace tr in
    let at = Engine.now t.engine in
    let id =
      Tracer.open_span tr ~trace ~name ~cat ~pid:t.cfg.id ~tid:"host" ~at ()
    in
    Some (id, { Trace_ctx.trace; span = id; forced = true })

(* Host-side ledger garbage collection, driven by the enclave's signed
   [cut] marker: entries and segment headers at or below the cut are
   covered by the sealed compaction base and can be dropped.  Only the
   newest base (and newest cut marker) survive — [storage] is newest
   first, so "first encountered" is "newest". *)
let gc_ledger t cut =
  let seen_base = ref false in
  let seen_cut = ref false in
  t.storage <-
    List.filter
      (fun (tag, data) ->
        if String.equal tag Ledger.entry_tag then
          match Ledger_entry.seq_of_record data with
          | Some seq -> seq > cut
          | None -> false
        else if String.equal tag Ledger.base_tag then
          if !seen_base then false
          else begin
            seen_base := true;
            true
          end
        else if String.equal tag Ledger.cut_tag then
          if !seen_cut then false
          else begin
            seen_cut := true;
            true
          end
        else
          match Ledger.seal_tag_seq tag with
          | Some last -> last > cut
          | None -> true)
      t.storage

(* ----- ecalls ----- *)

(* Outgoing message encode through the same arena as ecall payloads;
   byte-identical to [Message.encode_traced]. *)
let encode_msg t ?ctx msg =
  W.reset t.scratch;
  Message.encode_into t.scratch msg;
  (match ctx with Some c -> W.raw t.scratch (Trace_ctx.to_trailer c) | None -> ());
  W.contents t.scratch

(* Which lane thread carries an ecall: sequence-numbered protocol
   messages ride their seqno's lane; batches stripe round-robin (the
   assigned seqno is only known inside the enclave); everything else
   rides lane 0.  The lane choice only picks a thread — handler state
   transitions happen at issue time, so it cannot affect results. *)
let lane_of_input t (input : Wire.input) =
  if t.lanes = 1 then 0
  else
    match input with
    | Wire.In_net (Message.Preprepare pp) -> (pp.Message.seq - 1) mod t.lanes
    | Wire.In_net (Message.Preprepare_digest pd) -> (pd.Message.pd_seq - 1) mod t.lanes
    | Wire.In_net (Message.Prepare p) -> (p.Message.seq - 1) mod t.lanes
    | Wire.In_net (Message.Commit c) -> (c.Message.seq - 1) mod t.lanes
    | Wire.In_batch _ ->
      let l = t.next_batch_lane in
      t.next_batch_lane <- (l + 1) mod t.lanes;
      l
    | _ -> 0

(* [body] is the batch handed over in an [In_batch] ecall: the resulting
   Preprepare broadcast may arrive in summary (digest-signed) form with
   its body elided, and the re-attachment must use exactly the batch that
   produced it — riding the ecall's own completion closure makes that
   pairing immune to flush/completion interleaving. *)
let rec ecall t ?ctx ?body compartment (input : Wire.input) =
  let starved = match t.fault with Env_starve c -> c = compartment | _ -> false in
  if (not t.crashed) && not starved then begin
    let epoch = t.epoch in
    let lane = lane_of_input t input in
    let issue () =
      if t.epoch = epoch && not t.crashed then begin
        Registry.incr (t.ecall_counter_of compartment);
        if t.lanes > 1 then Registry.incr t.c_lane_ecalls.(lane);
        flight t ~kind:"ecall" ~detail:(Ids.compartment_name compartment);
        let enclave = t.enclave_of compartment in
        (* The payload is built in the broker's arena and handed over as
           the enclave's copy-in buffer — no per-ecall buffer growth. *)
        W.reset t.scratch;
        Wire.encode_input_into ?ctx t.scratch input;
        Enclave.ecall enclave
          ~thread:(t.thread_of compartment lane)
          ?ctx
          ~payload:(W.contents t.scratch)
          ~on_done:(fun outputs -> on_outputs t epoch compartment ?body outputs)
          ()
      end
    in
    match t.fault with
    | Env_delay d ->
      ignore (Engine.schedule t.engine ~delay:d ~label:"broker:delayed-ecall" issue)
    | Env_honest | Env_mute | Env_starve _ | Env_drop_nth _ | Env_duplicate | Env_reorder ->
      issue ()
  end

(* The output-boundary faults: a byzantine environment cannot forge what
   an enclave says (outputs are signed inside), but it owns the channel
   that carries them — so it can discard, replay or reorder the output
   burst of any ecall completion before dispatching it. *)
and env_mangle_outputs t outputs =
  match t.fault with
  | Env_reorder -> List.rev outputs
  | Env_duplicate -> List.concat_map (fun o -> [ o; o ]) outputs
  | Env_drop_nth k when k > 0 ->
    List.filter
      (fun _ ->
        t.env_output_seq <- t.env_output_seq + 1;
        t.env_output_seq mod k <> 0)
      outputs
  | _ -> outputs

(* ----- enclave outputs ----- *)

and on_outputs t epoch origin ?body outputs =
  (* [epoch] pins the incarnation that issued the ecall: a completion that
     crosses a crash (or a crash + restart) must not leak into the next
     incarnation as a ghost callback. *)
  if t.epoch = epoch && (not t.crashed) && t.fault <> Env_mute then begin
    let outputs = env_mangle_outputs t outputs in
    let vectored =
      (* The pipelined host egress writes a whole completion burst (e.g.
         a batch's replies) in one event-loop dispatch, like writev: one
         dispatch fee, serialization still per byte.  The serial
         configuration keeps one dispatch per message so lanes = 1 /
         workers = 1 meters exactly as before. *)
      (t.lanes > 1 || t.cfg.exec_workers > 1)
      && match outputs with _ :: _ :: _ -> true | _ -> false
    in
    if not vectored then
      List.iter
        (fun payload ->
          let begun = Engine.now t.engine in
          let cost = loop_cost t (String.length payload) in
          Resource.submit t.loop ~cost (fun () ->
              if t.epoch = epoch && not t.crashed then
                match Wire.decode_output_traced payload with
                | Error _ -> ()
                | Ok (output, ctx) ->
                  let sp = loop_span t ctx ~name:"host:tx" ~begun ~cost in
                  apply_output t origin ?ctx ?body output;
                  finish_span t sp))
        outputs
    else begin
      let begun = Engine.now t.engine in
      let bytes =
        List.fold_left (fun acc p -> acc + String.length p) 0 outputs
      in
      let cost = loop_cost t bytes in
      let per = cost /. float_of_int (List.length outputs) in
      Resource.submit t.loop ~cost (fun () ->
          if t.epoch = epoch && not t.crashed then
            List.iter
              (fun payload ->
                match Wire.decode_output_traced payload with
                | Error _ -> ()
                | Ok (output, ctx) ->
                  let sp = loop_span t ctx ~name:"host:tx" ~begun ~cost:per in
                  apply_output t origin ?ctx ?body output;
                  finish_span t sp)
              outputs)
    end
  end

and apply_output t origin ?ctx ?body (output : Wire.output) =
  match output with
  | Wire.Out_send (dst, msg) ->
    (match msg with
    | Message.Reply rp -> request_replied t rp
    | _ -> ());
    let payload = encode_msg t ?ctx msg in
    (match msg with
    | Message.State_reply _ | Message.State_request _ ->
      Registry.add t.c_state_bytes_out (String.length payload)
    | _ -> ());
    Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst payload
  | Wire.Out_broadcast msg ->
    let msg =
      (* Re-attach the batch body the primary's Preparation elided: the
         broker copied this exact batch *in* with the very ecall whose
         outputs are being applied, so the body never needed to be copied
         back out of the enclave.  The signature covers the digest form,
         so the reconstructed full Preprepare verifies at every receiver;
         a broker that attached the wrong body could only make the
         proposal fail verification, never change what is ordered. *)
      match (msg, body) with
      | Message.Preprepare_digest pd, Some batch ->
        Message.Preprepare
          { Message.view = pd.pd_view;
            seq = pd.pd_seq;
            batch;
            sender = pd.pd_sender;
            pp_sig = pd.pd_sig }
      | _ -> msg
    in
    let payload = encode_msg t ?ctx msg in
    (match msg with
    | Message.State_reply _ | Message.State_request _ ->
      Registry.add t.c_state_bytes_out ((t.cfg.n - 1) * String.length payload)
    | _ -> ());
    for j = 0 to t.cfg.n - 1 do
      if j <> t.cfg.id then
        Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst:(Addr.replica j) payload
    done;
    (* Local duplication to the sibling compartments (a correct environment
       forwards to all compartments at the same time, §4). *)
    List.iter
      (fun (compartment, m) ->
        if compartment <> origin then ecall t ?ctx compartment (Wire.In_net m))
      (route msg)
  | Wire.Out_persist { tag; data } ->
    t.storage <- (tag, data) :: t.storage;
    (match t.feed with
    | None -> ()
    | Some fd ->
      if String.equal tag Ledger.entry_tag then Feed.publish fd data
      else if String.equal tag Ledger.cut_tag then (
        match int_of_string_opt data with
        | None -> ()
        | Some cut ->
          Feed.set_base fd cut;
          gc_ledger t cut))
  | Wire.Out_entered_view v ->
    if v > t.view then begin
      t.view <- v;
      flight t ~kind:"view" ~detail:(string_of_int v);
      (* Batches in flight under the deposed primary may never commit;
         drop the suppression state so retransmissions reach the new
         primary's queue. *)
      Hashtbl.reset t.inflight;
      (* Give the new primary a full timeout before suspecting it too. *)
      if Hashtbl.length t.awaiting > 0 then Timer.restart t.suspect_timer;
      flush_batch t
    end
  | Wire.Out_alert msg ->
    t.alerts <- msg :: t.alerts;
    Registry.incr t.c_alerts;
    flight t ~kind:"recovery-alert" ~detail:msg
  | Wire.Out_recovered ->
    if t.recovering then begin
      t.recovering <- false;
      t.recovered_count <- t.recovered_count + 1;
      Registry.set t.g_recovery_us (Engine.now t.engine -. t.recovery_started_at);
      flight t ~kind:"recovered" ~detail:"";
      finish_span t t.recovery_span;
      t.recovery_span <- -1;
      t.recovery_ctx <- None
    end

(* ----- client requests, batching, suspicion ----- *)

and request_replied t (rp : Message.reply) =
  Hashtbl.remove t.awaiting (rp.client, rp.timestamp);
  Hashtbl.remove t.req_ctx (rp.client, rp.timestamp);
  Hashtbl.remove t.inflight (rp.client, rp.timestamp);
  if Config.hotpath t.cfg then
    (* Plain encoding, not the traced one: a replay must not carry the
       original request's (long-finished) trace context. *)
    Lru.add t.replied
      (retx_key rp.client rp.timestamp)
      (Message.encode (Message.Reply rp));
  (* Progress: re-arm the timer for the remaining requests so a loaded but
     progressing system never suspects its primary — and wind any
     suspicion backoff down to the base timeout. *)
  t.suspect_delay_us <- t.cfg.suspect_timeout_us;
  Timer.set_delay t.suspect_timer t.cfg.suspect_timeout_us;
  if Hashtbl.length t.awaiting = 0 then Timer.stop t.suspect_timer
  else Timer.restart t.suspect_timer

and flush_batch t =
  if is_primary t && not (Queue.is_empty t.pending) then begin
    (* O(batch): dequeue the head of the FIFO and retire its membership
       keys; nothing ever re-walks the whole queue. *)
    let take = min t.cfg.batch_size (Queue.length t.pending) in
    let rec grab i acc =
      if i = 0 then List.rev acc
      else begin
        let r = Queue.pop t.pending in
        Hashtbl.remove t.queued (r.Message.client, r.Message.timestamp);
        grab (i - 1) (r :: acc)
      end
    in
    let batch = grab take [] in
    if Config.hotpath t.cfg then begin
      let now = Engine.now t.engine in
      List.iter
        (fun (r : Message.request) ->
          Hashtbl.replace t.inflight (r.client, r.timestamp) now)
        batch
    end;
    Registry.incr t.c_batches;
    Registry.observe t.h_batch_occupancy (float_of_int take);
    (* The batch rides under the first sampled request's trace; the other
       members' contexts stay in [req_ctx] for their replies. *)
    let ctx =
      List.find_map
        (fun (r : Message.request) ->
          Hashtbl.find_opt t.req_ctx (r.client, r.timestamp))
        batch
    in
    ecall t ?ctx ~body:batch Ids.Preparation (Wire.In_batch batch);
    if Queue.length t.pending >= t.cfg.batch_size then flush_batch t
    else if not (Queue.is_empty t.pending) then Timer.start t.batch_timer
    else Timer.stop t.batch_timer
  end

let on_request t ?ctx (r : Message.request) =
  let key = (r.client, r.timestamp) in
  let replayed =
    (* Early reject before any enclave transition is charged: an
       already-answered request is served from the reply cache. *)
    Config.hotpath t.cfg
    &&
    match Lru.find t.replied (retx_key r.client r.timestamp) with
    | Some payload ->
      Registry.incr t.c_retx_replayed;
      Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst:(Addr.client r.client) payload;
      true
    | None -> false
  in
  if not replayed then begin
    (match ctx with
    | Some c -> Hashtbl.replace t.req_ctx key c
    | None -> ());
    Hashtbl.replace t.awaiting key ();
    Timer.start t.suspect_timer;
    if is_primary t then begin
      let suppressed =
        Config.hotpath t.cfg
        &&
        match Hashtbl.find_opt t.inflight key with
        | None -> false
        | Some since when Engine.now t.engine -. since < t.cfg.inflight_ttl_us ->
          true
        | Some _ ->
          (* The batch this entry guarded has been in flight longer than
             the retransmit TTL without producing a reply — it is
             presumed lost.  Evict so the retry below is re-driven
             (previously such entries suppressed retransmits forever when
             no view change wiped the table). *)
          Hashtbl.remove t.inflight key;
          false
      in
      if suppressed then
        (* Batched and awaiting a reply: re-queueing would only re-order
           it.  The suspicion timer above still guards liveness. *)
        Registry.incr t.c_retx_suppressed
      else if not (Hashtbl.mem t.queued key) then begin
        Hashtbl.replace t.queued key ();
        Queue.push r t.pending;
        if Queue.length t.pending >= t.cfg.batch_size then flush_batch t
        else Timer.start t.batch_timer
      end
    end
  end

let on_payload t ~src:_ payload =
  if not t.crashed then begin
    let epoch = t.epoch in
    let begun = Engine.now t.engine in
    let cost = loop_cost t (String.length payload) in
    Resource.submit t.loop ~cost (fun () ->
        if t.epoch = epoch && not t.crashed then
          match Message.decode_traced payload with
          | Error _ -> ()
          | Ok (Message.Request r, ctx) ->
            let sp = loop_span t ctx ~name:"host:rx" ~begun ~cost in
            on_request t ?ctx r;
            finish_span t sp
          | Ok (Message.Ledger_subscribe ls, ctx) ->
            (* Served entirely host-side: the feed replays already-committed
               sealed records, which the follower authenticates by f+1
               cross-replica digest agreement — not by trusting this host. *)
            let sp = loop_span t ctx ~name:"host:rx" ~begun ~cost in
            (match t.feed with
            | Some fd ->
              Feed.subscribe fd ~follower:ls.Message.lsu_follower ~from:ls.Message.lsu_from
            | None -> ());
            finish_span t sp
          | Ok (msg, ctx) ->
            let sp = loop_span t ctx ~name:"host:rx" ~begun ~cost in
            (match msg with
            | Message.State_reply _ | Message.State_request _ ->
              Registry.add t.c_state_bytes_in (String.length payload)
            | _ -> ());
            List.iter
              (fun (compartment, m) -> ecall t ?ctx compartment (Wire.In_net m))
              (route msg);
            finish_span t sp)
  end

let create engine net (cfg : Config.t) ~enclave_of =
  let obs = Engine.obs engine in
  let replica_label = ("replica", string_of_int cfg.id) in
  let ecall_counters =
    List.map
      (fun c ->
        ( c,
          Registry.counter obs
            ~labels:[ replica_label; ("compartment", Ids.compartment_name c) ]
            "broker.ecalls" ))
      Ids.all_compartments
  in
  if cfg.lanes < 1 then invalid_arg "Broker.create: lanes must be >= 1";
  let lanes = cfg.lanes in
  let loop = Resource.create engine ~name:(Printf.sprintf "broker%d-loop" cfg.id) in
  let thread_of, threads =
    match cfg.threading with
    | Config.Single_thread ->
      let shared =
        Resource.create engine ~name:(Printf.sprintf "broker%d-ecall" cfg.id)
      in
      ((fun (_ : Ids.compartment) (_ : int) -> shared), [ shared ])
    | Config.Per_enclave ->
      (* One thread per (compartment, lane); at lanes = 1 the resource
         names match the historical single-pipeline layout exactly. *)
      let table =
        List.map
          (fun c ->
            ( c,
              Array.init lanes (fun l ->
                  let name =
                    if lanes = 1 then
                      Printf.sprintf "broker%d-ecall-%s" cfg.id (Ids.compartment_name c)
                    else
                      Printf.sprintf "broker%d-ecall-%s-l%d" cfg.id
                        (Ids.compartment_name c) l
                  in
                  Resource.create engine ~name) ))
          Ids.all_compartments
      in
      ( (fun c l -> (List.assoc c table).(l)),
        List.concat_map (fun (_, arr) -> Array.to_list arr) table )
  in
  let c_lane_ecalls =
    if lanes = 1 then [||]
    else
      Array.init lanes (fun l ->
          Registry.counter obs
            ~labels:[ replica_label; ("lane", string_of_int l) ]
            "broker.lane_ecalls")
  in
  let rec t =
    lazy
      { cfg;
        engine;
        net;
        enclave_of;
        loop;
        threads;
        thread_of;
        lanes;
        next_batch_lane = 0;
        c_lane_ecalls;
        view = 0;
        pending = Queue.create ();
        queued = Hashtbl.create 64;
        batch_timer =
          Timer.create engine
            ~cls:(Engine.Choice { host = Addr.replica cfg.id; lane = -1 })
            ~label:(Printf.sprintf "broker%d-batch" cfg.id)
            ~delay:cfg.batch_timeout_us
            ~callback:(fun () -> flush_batch (Lazy.force t));
        awaiting = Hashtbl.create 64;
        suspect_delay_us = cfg.suspect_timeout_us;
        suspect_timer =
          Timer.create engine
            ~cls:(Engine.Choice { host = Addr.replica cfg.id; lane = -1 })
            ~label:(Printf.sprintf "broker%d-suspect" cfg.id)
            ~delay:cfg.suspect_timeout_us
            ~callback:
              (fun () ->
              let t = Lazy.force t in
              if Hashtbl.length t.awaiting > 0 then begin
                Registry.incr t.c_suspect_firings;
                flight t ~kind:"suspect" ~detail:(string_of_int t.view);
                (* View changes are always-sampled: give the suspicion a
                   forced root so the whole protocol cascade it triggers
                   is traceable even under 1-in-N sampling. *)
                let ctx =
                  match forced_root t ~name:"suspect" ~cat:"broker.suspect" with
                  | Some (id, ctx) ->
                    finish_span t id;
                    Some ctx
                  | None -> None
                in
                ecall t ?ctx Ids.Confirmation (Wire.In_suspect t.view);
                (* Keep escalating while requests stay unanswered, backing
                   off so a view change eventually outlasts its own round
                   trip (see [suspect_delay_us]). *)
                t.suspect_delay_us <-
                  Float.min
                    (Float.max t.cfg.viewchange_timeout_us (t.suspect_delay_us *. 2.0))
                    (t.cfg.viewchange_timeout_us *. 32.0);
                Timer.set_delay t.suspect_timer t.suspect_delay_us;
                Timer.restart t.suspect_timer
              end);
        recovery_timer =
          Timer.create engine
            ~cls:(Engine.Choice { host = Addr.replica cfg.id; lane = -1 })
            ~label:(Printf.sprintf "broker%d-recovery" cfg.id)
            ~delay:cfg.recovery_retry_us
            ~callback:
              (fun () ->
              let t = Lazy.force t in
              (* A state-request round can be lost with the messages that
                 were in flight at crash time; re-prompt Execution (which
                 just re-broadcasts its request — the other compartments
                 must not re-unseal) until recovery completes. *)
              if t.recovering && not t.crashed then begin
                ecall t ?ctx:t.recovery_ctx Ids.Execution (Wire.In_recover None);
                Timer.restart t.recovery_timer
              end);
        storage = [];
        feed = None;
        fault = Env_honest;
        env_output_seq = 0;
        crashed = false;
        epoch = 0;
        alerts = [];
        recovering = false;
        recovery_started_at = 0.0;
        recovered_count = 0;
        req_ctx = Hashtbl.create 64;
        scratch = W.create ~initial_size:1024 ();
        replied = Lru.create ~capacity:(if Config.hotpath cfg then 4096 else 0);
        inflight = Hashtbl.create 64;
        recovery_ctx = None;
        recovery_span = -1;
        ecall_counter_of = (fun c -> List.assoc c ecall_counters);
        c_batches = Registry.counter obs ~labels:[ replica_label ] "broker.batches";
        h_batch_occupancy =
          Registry.histogram obs ~labels:[ replica_label ]
            ~buckets:[ 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 400.0 ]
            "broker.batch_occupancy";
        c_suspect_firings =
          Registry.counter obs ~labels:[ replica_label ] "broker.suspect_firings";
        c_restarts = Registry.counter obs ~labels:[ replica_label ] "broker.restarts";
        c_alerts = Registry.counter obs ~labels:[ replica_label ] "broker.recovery_alerts";
        g_recovery_us =
          Registry.gauge obs ~labels:[ replica_label ] "broker.recovery_duration_us";
        c_state_bytes_out =
          Registry.counter obs ~labels:[ replica_label ] "broker.state_transfer_bytes_out";
        c_state_bytes_in =
          Registry.counter obs ~labels:[ replica_label ] "broker.state_transfer_bytes_in";
        c_retx_suppressed =
          Registry.counter obs ~labels:[ replica_label ] "broker.retx_suppressed";
        c_retx_replayed =
          Registry.counter obs ~labels:[ replica_label ] "broker.retx_replayed" }
  in
  let t = Lazy.force t in
  if Config.storage cfg then
    t.feed <- Some (Feed.create ~net ~src:(Addr.replica cfg.id) ~replica:cfg.id);
  Network.register net (Addr.replica cfg.id) (fun ~src payload -> on_payload t ~src payload);
  t

let set_fault t fault = t.fault <- fault

let crash t =
  t.crashed <- true;
  flight t ~kind:"crash" ~detail:"";
  (* Quiesce: bump the incarnation so in-flight completions die on arrival,
     stop the timers and drop queued host-side work.  Storage survives —
     it is the (untrusted) disk recovery will read from. *)
  t.epoch <- t.epoch + 1;
  (* Stale-gauge reset: the dead incarnation's queue depths must not
     survive into dashboard samples taken while the host is down. *)
  Resource.quiesce t.loop;
  List.iter Resource.quiesce t.threads;
  Timer.stop t.batch_timer;
  Timer.stop t.suspect_timer;
  t.suspect_delay_us <- t.cfg.suspect_timeout_us;
  Timer.set_delay t.suspect_timer t.cfg.suspect_timeout_us;
  Timer.stop t.recovery_timer;
  Queue.clear t.pending;
  Hashtbl.reset t.queued;
  Hashtbl.reset t.awaiting;
  Hashtbl.reset t.req_ctx;
  Hashtbl.reset t.inflight;
  (* The reply cache does not survive the crash either: replies minted by
     a pre-restart enclave incarnation may be under retired session keys,
     and replaying those forever would mute this replica for the client. *)
  Lru.clear t.replied;
  t.recovering <- false;
  t.recovery_span <- -1;
  t.recovery_ctx <- None;
  Network.unregister t.net (Addr.replica t.cfg.id)

let restart t =
  if t.crashed then begin
    t.crashed <- false;
    t.view <- 0;  (* belief only; re-learned from Out_entered_view *)
    t.recovering <- true;
    t.recovery_started_at <- Engine.now t.engine;
    Registry.incr t.c_restarts;
    (* The recovery-duration gauge still holds the previous incarnation's
       measurement; zero it so the dashboard shows "in progress", not a
       stale completed recovery. *)
    Registry.set t.g_recovery_us 0.0;
    flight t ~kind:"restart" ~detail:"";
    (* Recovery is always-sampled; the root span stays open until
       Out_recovered so its duration is the measured recovery time. *)
    (match forced_root t ~name:"recovery" ~cat:"broker.recovery" with
    | Some (id, ctx) ->
      t.recovery_span <- id;
      t.recovery_ctx <- Some ctx
    | None -> ());
    Network.register t.net (Addr.replica t.cfg.id) (fun ~src payload ->
        on_payload t ~src payload);
    (* Recovery handshake: hand each compartment the newest sealed
       checkpoint blob on disk ([storage] is newest-first), or [None] if
       there is none.  The compartment decides whether to trust it. *)
    List.iter
      (fun compartment ->
        let tag = "ckpt:" ^ Ids.compartment_name compartment in
        ecall t ?ctx:t.recovery_ctx compartment
          (Wire.In_recover (List.assoc_opt tag t.storage)))
      Ids.all_compartments;
    (* Second phase of the Execution handshake: replay the surviving
       ledger records (oldest first) so Execution can verify the chain,
       truncate a torn tail, and refuse a rolled-back history.  The feed
       is rebuilt from the same records; followers re-subscribe on their
       own timer, so subscription state need not survive the crash. *)
    (match t.feed with
    | Some fd ->
      let records =
        List.filter (fun (tag, _) -> Ledger.is_ledger_tag tag) (List.rev t.storage)
      in
      Feed.reset fd ~records;
      ecall t ?ctx:t.recovery_ctx Ids.Execution (Wire.In_ledger records)
    | None -> ());
    Timer.restart t.recovery_timer
  end

let is_crashed t = t.crashed
let view_belief t = t.view
let persisted t = List.rev t.storage
let alerts t = List.rev t.alerts
let recovered t = t.recovered_count > 0 && not t.recovering

let ecalls_to t compartment =
  int_of_float (Registry.counter_value (t.ecall_counter_of compartment))

let ecalls_issued t =
  List.fold_left (fun acc c -> acc + ecalls_to t c) 0 Ids.all_compartments
