(** Untrusted environment of a SplitBFT replica (the "shim layer" of §5).

    The broker owns everything liveness-only (P1): networking, request
    batching, the batch and suspicion timers, message routing between the
    network and the three enclaves (including duplicating PrePrepares,
    Prepares, Checkpoints and NewViews to the compartments that log them),
    the output log, and persistent storage for sealed ledger blocks.  Each
    enclave has a dedicated ecall thread ([Per_enclave]) or all ecalls
    share one thread ([Single_thread] — the §6 ablation).

    The broker is untrusted: a compromised broker can drop, delay or
    misroute, harming liveness only.  {!set_fault} injects exactly those
    behaviours for the fault-model experiments. *)

module Ids = Splitbft_types.Ids

type fault =
  | Env_honest
  | Env_mute  (** drops every enclave output: replica looks crashed *)
  | Env_starve of Ids.compartment  (** never delivers inputs to one compartment *)
  | Env_delay of float  (** delays every ecall by the given µs *)
  | Env_drop_nth of int
      (** drops every [k]-th enclave output it should dispatch (a broker
          that selectively loses ecall results) *)
  | Env_duplicate  (** dispatches every enclave output twice *)
  | Env_reorder  (** reverses each ecall completion's output burst *)

type t

val create :
  Splitbft_sim.Engine.t ->
  Splitbft_sim.Network.t ->
  Config.t ->
  enclave_of:(Ids.compartment -> Splitbft_tee.Enclave.t) ->
  t
(** Registers the replica's network handler.  Enclaves are created by the
    replica assembly and handed in. *)

val set_fault : t -> fault -> unit
val crash : t -> unit
(** Host crash: unregister from the network, stop timers, and quiesce —
    queued batches and pending ecall work are dropped and any in-flight
    completions are invalidated, so a later {!restart} observes no ghost
    callbacks from the previous incarnation.  The enclaves become
    unreachable (their state survives, as on real hardware), and sealed
    storage survives too. *)

val restart : t -> unit
(** Recover from a host crash: re-register on the network and hand each
    compartment its newest sealed checkpoint blob (or [None]) via
    [In_recover].  The compartments validate the blob against their
    rollback counters; Execution then drives state transfer and reports
    [Out_recovered] once caught up.  No-op if not crashed. *)

val alerts : t -> string list
(** Safety alerts raised by compartments (e.g. rollback detection during
    recovery), oldest first. *)

val recovered : t -> bool
(** True once a restart completed recovery (state transfer caught up) and
    no recovery is currently in progress. *)

val is_crashed : t -> bool
val view_belief : t -> Ids.view
(** The environment's (liveness-only) belief of the current view. *)

val persisted : t -> (string * string) list
(** Sealed blobs written by the Execution enclave, oldest first. *)

val ecalls_issued : t -> int
(** Total ecalls this broker issued, all compartments — read from the
    per-compartment [broker.ecalls] registry counters. *)

val ecalls_to : t -> Splitbft_types.Ids.compartment -> int
(** Ecalls issued to one compartment. *)
