module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Validation = Splitbft_types.Validation
module Enclave = Splitbft_tee.Enclave
module Signature = Splitbft_crypto.Signature
module Ckpt = Splitbft_consensus.Ckpt

let charge_verify env count =
  Enclave.charge_crypto env
    ((Enclave.cost_model env).verify_us *. float_of_int count)

let charge_sign env count =
  Enclave.charge_crypto env ((Enclave.cost_model env).sign_us *. float_of_int count)

let sign_with env msg =
  charge_sign env 1;
  Signature.sign (Enclave.env_keypair env).Signature.secret msg

let on_checkpoint env ~exec_lookup ckpt (ck : Message.checkpoint) ~on_stable =
  charge_verify env 1;
  if ck.seq > Ckpt.last_stable ckpt && Validation.verify_checkpoint exec_lookup ck then
    Ckpt.observe ckpt ck ~on_stable

let newview_shallow_ok env ~f ~n ~prep_lookup ~conf_lookup (nv : Message.newview) =
  (* Confirmation/Execution verify the NewView and ViewChange signatures
     and the quorum, but not the embedded prepares (§4). *)
  charge_verify env (1 + List.length nv.nv_viewchanges);
  let quorum = (2 * f) + 1 in
  let senders = List.map (fun (vc : Message.viewchange) -> vc.vc_sender) nv.nv_viewchanges in
  nv.nv_sender = Ids.primary_of_view ~n nv.nv_view
  && Validation.verify_newview prep_lookup nv
  && List.length nv.nv_viewchanges >= quorum
  && Validation.distinct_senders senders
  && List.for_all
       (fun (vc : Message.viewchange) ->
         vc.vc_new_view = nv.nv_view && Validation.verify_viewchange conf_lookup vc)
       nv.nv_viewchanges
