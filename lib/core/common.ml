module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Validation = Splitbft_types.Validation
module Enclave = Splitbft_tee.Enclave
module Verify_cache = Splitbft_tee.Verify_cache
module Signature = Splitbft_crypto.Signature
module Sha256 = Splitbft_crypto.Sha256
module Ckpt = Splitbft_consensus.Ckpt

let charge_verify env count =
  Enclave.charge_crypto env
    ((Enclave.cost_model env).verify_us *. float_of_int count)

let charge_sign env count =
  Enclave.charge_crypto env ((Enclave.cost_model env).sign_us *. float_of_int count)

let sign_with env msg =
  charge_sign env 1;
  Signature.sign (Enclave.env_keypair env).Signature.secret msg

(* ----- verified-digest cache wrappers -----

   One primitive: look the (kind, bytes, signature) fact up in the
   enclave's cache; on a miss charge one verification, run it, and record
   a success.  With the cache disabled this degrades to charge-then-verify
   — the pre-cache accounting — so the same call sites serve both arms of
   the hotpath ablation. *)

let verify_cached env lookup ~kind ~sender ~bytes ~signature =
  let key = Verify_cache.key ~kind ~signature ~bytes in
  match Enclave.cache_find env key with
  | Some _ -> true
  | None ->
    charge_verify env 1;
    let ok = Validation.verify_with lookup sender bytes signature in
    if ok then Enclave.cache_add env key "";
    ok

(* PrePrepares and their digest forms share signature and signing bytes
   (Message.summarize), so they memoize the same fact. *)
let verify_preprepare_c env lookup (pp : Message.preprepare) ~digest =
  verify_cached env lookup ~kind:"pp" ~sender:pp.sender
    ~bytes:
      (Message.signing_bytes_of_proposal ~view:pp.view ~seq:pp.seq ~digest
         ~sender:pp.sender)
    ~signature:pp.pp_sig

let verify_preprepare_digest_c env lookup (pd : Message.preprepare_digest) =
  verify_cached env lookup ~kind:"pp" ~sender:pd.pd_sender
    ~bytes:(Message.preprepare_digest_signing_bytes pd)
    ~signature:pd.pd_sig

let verify_prepare_c env lookup (p : Message.prepare) =
  verify_cached env lookup ~kind:"p" ~sender:p.sender
    ~bytes:(Message.prepare_signing_bytes p) ~signature:p.p_sig

let verify_commit_c env lookup (c : Message.commit) =
  verify_cached env lookup ~kind:"c" ~sender:c.sender
    ~bytes:(Message.commit_signing_bytes c) ~signature:c.c_sig

let verify_checkpoint_c env lookup (ck : Message.checkpoint) =
  verify_cached env lookup ~kind:"ck" ~sender:ck.sender
    ~bytes:(Message.checkpoint_signing_bytes ck) ~signature:ck.ck_sig

let verify_viewchange_c env lookup (vc : Message.viewchange) =
  verify_cached env lookup ~kind:"vc" ~sender:vc.vc_sender
    ~bytes:(Message.viewchange_signing_bytes vc) ~signature:vc.vc_sig

let verify_newview_c env lookup (nv : Message.newview) =
  verify_cached env lookup ~kind:"nv" ~sender:nv.nv_sender
    ~bytes:(Message.newview_signing_bytes nv) ~signature:nv.nv_sig

let verify_prepared_proof_c env ~f lookup (proof : Message.prepared_proof) =
  verify_preprepare_digest_c env lookup proof.proof_preprepare
  && List.for_all (verify_prepare_c env lookup) proof.proof_prepares
  && Validation.prepare_cert_complete ~f proof.proof_preprepare proof.proof_prepares

(* The whole deep fact is additionally memoized under the ViewChange's own
   signature: when the quorum of ViewChanges a NewView carries was already
   deep-verified on individual arrival, the NewView re-check costs one
   lookup per ViewChange. *)
let verify_viewchange_deep_c env ~f ~vc_lookup ~ckpt_lookup ~proof_lookup
    (vc : Message.viewchange) =
  let bytes = Message.viewchange_signing_bytes vc in
  let key = Verify_cache.key ~kind:"vc-deep" ~signature:vc.vc_sig ~bytes in
  match Enclave.cache_find env key with
  | Some _ -> true
  | None ->
    let ok =
      verify_viewchange_c env vc_lookup vc
      && List.for_all (verify_checkpoint_c env ckpt_lookup) vc.vc_checkpoint_proof
      && List.for_all (verify_prepared_proof_c env ~f proof_lookup) vc.vc_prepared
      && (vc.vc_last_stable = 0
         ||
         match
           Validation.checkpoint_quorum_seq ~quorum:((2 * f) + 1)
             vc.vc_checkpoint_proof
         with
         | Some seq -> seq >= vc.vc_last_stable
         | None -> false)
    in
    if ok then Enclave.cache_add env key "";
    ok

let digest_of_batch_c env batch =
  if not (Enclave.cache_enabled env) then Message.digest_of_batch batch
  else begin
    let pre = Message.batch_preimage batch in
    let key = Verify_cache.key ~kind:"digest" ~signature:"" ~bytes:pre in
    match Enclave.cache_find env key with
    | Some d -> d
    | None ->
      let d = Sha256.digest pre in
      Enclave.cache_add env key d;
      d
  end

let on_checkpoint env ~hotpath ~exec_lookup ckpt (ck : Message.checkpoint) ~on_stable =
  if hotpath then begin
    if ck.seq > Ckpt.last_stable ckpt && verify_checkpoint_c env exec_lookup ck then
      Ckpt.observe ckpt ck ~on_stable
  end
  else begin
    charge_verify env 1;
    if ck.seq > Ckpt.last_stable ckpt && Validation.verify_checkpoint exec_lookup ck
    then Ckpt.observe ckpt ck ~on_stable
  end

let newview_shallow_ok env ~hotpath ~f ~n ~prep_lookup ~conf_lookup
    (nv : Message.newview) =
  (* Confirmation/Execution verify the NewView and ViewChange signatures
     and the quorum, but not the embedded prepares (§4). *)
  let quorum = (2 * f) + 1 in
  let senders =
    List.map (fun (vc : Message.viewchange) -> vc.vc_sender) nv.nv_viewchanges
  in
  if hotpath then
    nv.nv_sender = Ids.primary_of_view ~n nv.nv_view
    && List.length nv.nv_viewchanges >= quorum
    && Validation.distinct_senders senders
    && verify_newview_c env prep_lookup nv
    && List.for_all
         (fun (vc : Message.viewchange) ->
           vc.vc_new_view = nv.nv_view && verify_viewchange_c env conf_lookup vc)
         nv.nv_viewchanges
  else begin
    charge_verify env (1 + List.length nv.nv_viewchanges);
    nv.nv_sender = Ids.primary_of_view ~n nv.nv_view
    && Validation.verify_newview prep_lookup nv
    && List.length nv.nv_viewchanges >= quorum
    && Validation.distinct_senders senders
    && List.for_all
         (fun (vc : Message.viewchange) ->
           vc.vc_new_view = nv.nv_view && Validation.verify_viewchange conf_lookup vc)
         nv.nv_viewchanges
  end
