(** Metered wrappers over the shared consensus core for logic every
    compartment runs: the checkpoint handler (9), the checkpoint/view part
    of NewView handling (7'), and signing/verification cost helpers.

    The paper deliberately duplicates these handlers across compartments so
    each runs independently (P2); here they share one implementation, but
    each compartment owns its own {!Splitbft_consensus.Ckpt.t} instance and
    view variable, so at run time the state is fully replicated per
    enclave, as in the paper. *)

module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Enclave = Splitbft_tee.Enclave

val on_checkpoint :
  Enclave.env ->
  exec_lookup:Splitbft_types.Validation.key_lookup ->
  Splitbft_consensus.Ckpt.t ->
  Message.checkpoint ->
  on_stable:(Ids.seqno -> unit) ->
  unit
(** Handler (9): charge and verify the Execution-enclave signature, log the
    message, and on a quorum advance the stable sequence number, retaining
    the proving quorum and invoking [on_stable] so the compartment can
    garbage-collect its logs.  Checkpoints below the current stable mark
    are discarded even if they arrive later. *)

val newview_shallow_ok :
  Enclave.env ->
  f:int ->
  n:int ->
  prep_lookup:Splitbft_types.Validation.key_lookup ->
  conf_lookup:Splitbft_types.Validation.key_lookup ->
  Message.newview ->
  bool
(** Charges and checks what Confirmation/Execution validate: the NewView
    signature (a Preparation enclave, the new primary), each embedded
    ViewChange signature (Confirmation enclaves), a [2f+1] quorum of
    distinct ViewChange senders — but {e not} the embedded Prepares, per
    §4. *)

(** {2 Metered crypto helpers} *)

val charge_verify : Enclave.env -> int -> unit
(** Charge for [count] signature verifications. *)

val charge_sign : Enclave.env -> int -> unit

val sign_with : Enclave.env -> string -> string
(** Sign with the enclave's own key (charges one signature). *)
