(** Metered wrappers over the shared consensus core for logic every
    compartment runs: the checkpoint handler (9), the checkpoint/view part
    of NewView handling (7'), signing/verification cost helpers, and the
    cache-aware verification layer over the enclaves' verified-digest
    caches.

    The paper deliberately duplicates these handlers across compartments so
    each runs independently (P2); here they share one implementation, but
    each compartment owns its own {!Splitbft_consensus.Ckpt.t} instance and
    view variable, so at run time the state is fully replicated per
    enclave, as in the paper. *)

module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Enclave = Splitbft_tee.Enclave

val on_checkpoint :
  Enclave.env ->
  hotpath:bool ->
  exec_lookup:Splitbft_types.Validation.key_lookup ->
  Splitbft_consensus.Ckpt.t ->
  Message.checkpoint ->
  on_stable:(Ids.seqno -> unit) ->
  unit
(** Handler (9): charge and verify the Execution-enclave signature, log the
    message, and on a quorum advance the stable sequence number, retaining
    the proving quorum and invoking [on_stable] so the compartment can
    garbage-collect its logs.  Checkpoints below the current stable mark
    are discarded even if they arrive later.

    [hotpath] selects the cache-aware path (stale checkpoints are dropped
    before any crypto is charged, fresh ones verify through the cache);
    [false] reproduces the pre-cache accounting exactly. *)

val newview_shallow_ok :
  Enclave.env ->
  hotpath:bool ->
  f:int ->
  n:int ->
  prep_lookup:Splitbft_types.Validation.key_lookup ->
  conf_lookup:Splitbft_types.Validation.key_lookup ->
  Message.newview ->
  bool
(** Charges and checks what Confirmation/Execution validate: the NewView
    signature (a Preparation enclave, the new primary), each embedded
    ViewChange signature (Confirmation enclaves), a [2f+1] quorum of
    distinct ViewChange senders — but {e not} the embedded Prepares, per
    §4.  [hotpath] as in {!on_checkpoint}. *)

(** {2 Metered crypto helpers} *)

val charge_verify : Enclave.env -> int -> unit
(** Charge for [count] signature verifications. *)

val charge_sign : Enclave.env -> int -> unit

val sign_with : Enclave.env -> string -> string
(** Sign with the enclave's own key (charges one signature). *)

(** {2 Cache-aware verification}

    Each helper resolves one signature fact through the enclave's
    verified-digest cache: a hit charges a cache reference, a miss charges
    one verification and memoizes success.  With the cache disabled they
    degrade to exactly one charged verification per call, so the same call
    sites serve both arms of the [bench hotpath] ablation.  Only
    {e successful} verifications are recorded — the untrusted world cannot
    plant a fact (see DESIGN.md, "Verified-digest cache"). *)

val verify_preprepare_c :
  Enclave.env ->
  Splitbft_types.Validation.key_lookup ->
  Message.preprepare ->
  digest:string ->
  bool
(** [digest] must be [digest_of_batch pp.batch] (typically from
    {!digest_of_batch_c}), so the batch is hashed once per handler instead
    of again inside signature verification. *)

val verify_preprepare_digest_c :
  Enclave.env -> Splitbft_types.Validation.key_lookup -> Message.preprepare_digest -> bool

val verify_prepare_c :
  Enclave.env -> Splitbft_types.Validation.key_lookup -> Message.prepare -> bool

val verify_commit_c :
  Enclave.env -> Splitbft_types.Validation.key_lookup -> Message.commit -> bool

val verify_checkpoint_c :
  Enclave.env -> Splitbft_types.Validation.key_lookup -> Message.checkpoint -> bool

val verify_viewchange_c :
  Enclave.env -> Splitbft_types.Validation.key_lookup -> Message.viewchange -> bool

val verify_newview_c :
  Enclave.env -> Splitbft_types.Validation.key_lookup -> Message.newview -> bool

val verify_prepared_proof_c :
  Enclave.env ->
  f:int ->
  Splitbft_types.Validation.key_lookup ->
  Message.prepared_proof ->
  bool

val verify_viewchange_deep_c :
  Enclave.env ->
  f:int ->
  vc_lookup:Splitbft_types.Validation.key_lookup ->
  ckpt_lookup:Splitbft_types.Validation.key_lookup ->
  proof_lookup:Splitbft_types.Validation.key_lookup ->
  Message.viewchange ->
  bool
(** {!Splitbft_types.Validation.verify_viewchange_deep} through the cache,
    charging per verification actually performed; the complete deep fact is
    additionally memoized under the ViewChange's signature so a NewView
    carrying already-seen ViewChanges re-checks each in one lookup. *)

val digest_of_batch_c : Enclave.env -> Message.request list -> string
(** [Message.digest_of_batch] memoized in the enclave's cache (hits charge
    a cache reference); hashes directly when the cache is disabled. *)
