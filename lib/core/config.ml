module Ids = Splitbft_types.Ids
module Keys = Splitbft_types.Keys
module Validation = Splitbft_types.Validation
module Signature = Splitbft_crypto.Signature

type threading = Per_enclave | Single_thread

type t = {
  n : int;
  id : Ids.replica_id;
  cost : Splitbft_tee.Cost_model.t;
  threading : threading;
  batch_size : int;
  batch_timeout_us : float;
  checkpoint_interval : int;
  watermark_window : int;
  suspect_timeout_us : float;
  viewchange_timeout_us : float;
  recovery_retry_us : float;
  verify_cache_capacity : int;
  lanes : int;
  exec_workers : int;
  inflight_ttl_us : float;
  segment_entries : int;
}

let default ~n ~id =
  { n;
    id;
    cost = Splitbft_tee.Cost_model.default;
    threading = Per_enclave;
    batch_size = 1;
    batch_timeout_us = 10_000.0;
    checkpoint_interval = 64;
    watermark_window = 1024;
    suspect_timeout_us = 500_000.0;
    viewchange_timeout_us = 1_000_000.0;
    recovery_retry_us = 150_000.0;
    verify_cache_capacity = 1024;
    lanes = 1;
    exec_workers = 1;
    inflight_ttl_us = 500_000.0;
    segment_entries = 0 }

let hotpath t = t.verify_cache_capacity > 0
let storage t = t.segment_entries > 0
let f t = Ids.f_of_n t.n
let quorum t = Ids.quorum ~n:t.n
let primary_of_view t view = Ids.primary_of_view ~n:t.n view

let enclave_public compartment i =
  let kp = Signature.derive ~seed:(Keys.enclave_signing_seed i compartment) in
  kp.Signature.public

let table compartment ~n =
  let publics = Array.init n (enclave_public compartment) in
  fun i -> if i >= 0 && i < n then Some publics.(i) else None

let prep_public ~n = table Ids.Preparation ~n
let conf_public ~n = table Ids.Confirmation ~n
let exec_public ~n = table Ids.Execution ~n
let lookup_for ~n compartment = table compartment ~n
