(** SplitBFT replica configuration and the static key tables of the
    deployment. *)

module Ids = Splitbft_types.Ids
module Validation = Splitbft_types.Validation

type threading =
  | Per_enclave
      (** one broker thread per enclave — the paper's multithreaded setup *)
  | Single_thread
      (** all ecalls through one thread — the ablation of §6 showing the
          ≈1190 rps ceiling *)

type t = {
  n : int;
  id : Ids.replica_id;
  cost : Splitbft_tee.Cost_model.t;
  threading : threading;
  batch_size : int;  (** 1 = unbatched *)
  batch_timeout_us : float;
  checkpoint_interval : int;
  watermark_window : int;
  suspect_timeout_us : float;
  viewchange_timeout_us : float;
  recovery_retry_us : float;
      (** while recovering after a restart, the broker re-prompts the
          Execution compartment at this period so a state-request round
          lost to in-flight message drop does not stall catch-up *)
  verify_cache_capacity : int;
      (** bound (entries) of each enclave's verified-digest cache; [0]
          disables the whole hot-path optimization layer — lazy
          verification ordering, digest memoization and the broker's
          retransmit early-reject — reproducing the pre-cache cost
          accounting exactly (the [bench hotpath] ablation's off arm) *)
  lanes : int;
      (** number of consensus lanes — concurrent protocol instances over a
          partition of the sequence space ([seq] belongs to lane
          [(seq - 1) mod lanes]).  Each lane gets its own broker ecall
          threads under {!Per_enclave} threading, so
          preprepare/prepare/commit rounds for different seqnos pipeline
          instead of queueing behind one another.  [1] reproduces the
          serial single-pipeline behavior bit-for-bit *)
  exec_workers : int;
      (** size of the Execution compartment's in-enclave worker pool.
          Batches with disjoint read/write footprints (per
          {!Splitbft_app.State_machine.t.classify}) execute on parallel
          workers; conflicting batches are serialized in sequence order so
          results stay identical to serial execution.  [1] reproduces the
          serial cost accounting bit-for-bit *)
  inflight_ttl_us : float;
      (** age bound on the broker's inflight retransmit-suppression
          entries.  A request stuck in flight longer than this (e.g.
          dropped during a primary crash) stops suppressing client
          retransmits, so the retry can be re-driven; keyed to the client
          retry period (default 500 ms ≥ the client's 400 ms timer) *)
  segment_entries : int;
      (** rotation interval (entries per segment) of the Execution
          compartment's append-only rollback-protected ledger
          ({!Splitbft_storage.Ledger}); [0] disables the storage layer
          entirely — no ledger appends, no follower feed, reproducing the
          pre-storage behavior bit-for-bit *)
}

val default : n:int -> id:Ids.replica_id -> t

val hotpath : t -> bool
(** [verify_cache_capacity > 0] — the hot-path layer is enabled. *)

val storage : t -> bool
(** [segment_entries > 0] — the append-only ledger and follower feed are
    enabled. *)

val f : t -> int
val quorum : t -> int
val primary_of_view : t -> Ids.view -> Ids.replica_id

(** {2 Enclave key tables}

    Signing publics of the enclaves of each compartment type, indexed by
    replica id.  Derived deterministically from the deployment identities
    (the paper assumes public keys are known to all participants). *)

val prep_public : n:int -> Validation.key_lookup
val conf_public : n:int -> Validation.key_lookup
val exec_public : n:int -> Validation.key_lookup
val lookup_for : n:int -> Ids.compartment -> Validation.key_lookup
