module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Validation = Splitbft_types.Validation
module Enclave = Splitbft_tee.Enclave
module Log = Splitbft_consensus.Log
module Votes = Splitbft_consensus.Votes
module Ckpt = Splitbft_consensus.Ckpt
module Proofs = Splitbft_consensus.Proofs
module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader

type byz = Conf_honest | Conf_promiscuous | Conf_stale_proof

(* Mutation hook for the model checker's self-test: re-introduces the
   pre-PR-3 view-change bug where prepared certificates were dropped on
   [Log.reset] at view entry.  Never set outside tests — the checker must
   find the resulting agreement violation within budget, proving it can
   see this class of bug at all. *)
let mutate_drop_prepared_on_view_entry = ref false

type probe = {
  view : unit -> int;
  last_stable : unit -> int;
  commits_sent : unit -> int;
}

type slot = {
  pd : Message.preprepare_digest;  (* accepted proposal (in_conf) *)
  mutable committed : bool;
}

type state = {
  cfg : Config.t;
  prep_lookup : Validation.key_lookup;
  conf_lookup : Validation.key_lookup;
  exec_lookup : Validation.key_lookup;
  mutable view : Ids.view;
  proposals : slot Log.t;
  prepares : (Ids.seqno, Message.prepare) Votes.t;
  prepared : Message.prepared_proof Log.t;  (* for ViewChange; survives suspicion *)
  viewchanges_seen : (Ids.view, Message.viewchange) Votes.t;
      (* peers' ViewChanges, for the join rule: f+1 of them for a higher
         view prove a correct replica suspects, so this one joins without
         waiting for its own timer.  Without it a replica that already
         answered the stalled request (e.g. from the broker's replay
         cache) never suspects, and the remaining live replicas can be
         one short of the 2f+1 ViewChange quorum forever. *)
  (* messages addressed just above the window's high edge, parked until
     our own checkpoint stabilises (see Preparation.ahead) *)
  mutable ahead : Message.t list;
  ckpt : Ckpt.t;
  mutable commit_count : int;
  mutable halted : bool;
}

let create_state (cfg : Config.t) =
  { cfg;
    prep_lookup = Config.prep_public ~n:cfg.n;
    conf_lookup = Config.conf_public ~n:cfg.n;
    exec_lookup = Config.exec_public ~n:cfg.n;
    view = 0;
    proposals = Log.create ~window:cfg.watermark_window ();
    prepares = Votes.create ~size:128 ();
    prepared = Log.create ~window:cfg.watermark_window ();
    viewchanges_seen = Votes.create ~size:4 ();
    ahead = [];
    ckpt = Ckpt.create ~quorum:(Config.quorum cfg);
    commit_count = 0;
    halted = false }

let in_window st seq = Log.in_window st.proposals seq

(* Handler (3): a complete prepare certificate yields a Commit. *)
let try_commit env st seq =
  match Log.find st.proposals seq with
  | None -> ()
  | Some s ->
    let prepares = Votes.get st.prepares seq in
    if
      (not s.committed)
      && Validation.prepare_cert_complete ~f:(Config.f st.cfg) s.pd prepares
    then begin
      s.committed <- true;
      st.commit_count <- st.commit_count + 1;
      Log.set st.prepared seq { Message.proof_preprepare = s.pd; proof_prepares = prepares };
      let c =
        { Message.view = st.view; seq; digest = s.pd.pd_digest; sender = st.cfg.id; c_sig = "" }
      in
      let c = { c with c_sig = Common.sign_with env (Message.commit_signing_bytes c) } in
      Enclave.emit env (Wire.encode_output (Wire.Out_broadcast (Message.Commit c)))
    end

let promiscuous_commit env st (pd : Message.preprepare_digest) =
  let c =
    { Message.view = pd.pd_view;
      seq = pd.pd_seq;
      digest = pd.pd_digest;
      sender = st.cfg.id;
      c_sig = "" }
  in
  let c = { c with c_sig = Common.sign_with env (Message.commit_signing_bytes c) } in
  Enclave.emit env (Wire.encode_output (Wire.Out_broadcast (Message.Commit c)))

let proposal_plausible st (pd : Message.preprepare_digest) =
  pd.pd_view = st.view
  && pd.pd_sender = Config.primary_of_view st.cfg st.view
  && in_window st pd.pd_seq
  && not (Log.mem st.proposals pd.pd_seq)

let park_ahead st msg =
  if List.length st.ahead < Log.window st.proposals then
    st.ahead <- st.ahead @ [ msg ]

let on_proposal env st ~byz (pd : Message.preprepare_digest) =
  if pd.pd_view = st.view && Log.ahead_of_window st.proposals pd.pd_seq then
    park_ahead st (Message.Preprepare_digest pd)
  else begin
  (match byz with
  | Conf_promiscuous -> promiscuous_commit env st pd
  | Conf_honest | Conf_stale_proof -> ());
  if Config.hotpath st.cfg then begin
    if proposal_plausible st pd && Common.verify_preprepare_digest_c env st.prep_lookup pd
    then begin
      Log.set st.proposals pd.pd_seq { pd; committed = false };
      try_commit env st pd.pd_seq
    end
  end
  else begin
    Common.charge_verify env 1;
    if proposal_plausible st pd && Validation.verify_preprepare_digest st.prep_lookup pd
    then begin
      Log.set st.proposals pd.pd_seq { pd; committed = false };
      try_commit env st pd.pd_seq
    end
  end
  end

let on_prepare env st (p : Message.prepare) =
  if p.view = st.view && Log.ahead_of_window st.proposals p.seq then
    park_ahead st (Message.Prepare p)
  else if Config.hotpath st.cfg then begin
    (* Already-committed slots and duplicate senders cannot change the
       outcome; drop them before the signature is even checked. *)
    let committed =
      match Log.find st.proposals p.seq with Some s -> s.committed | None -> false
    in
    if
      p.view = st.view
      && in_window st p.seq
      && (not committed)
      && (not (Votes.mem st.prepares ~key:p.seq ~sender:p.sender))
      && Common.verify_prepare_c env st.prep_lookup p
    then begin
      if Votes.add st.prepares ~key:p.seq ~sender:p.sender p then try_commit env st p.seq
    end
  end
  else begin
    Common.charge_verify env 1;
    if p.view = st.view && in_window st p.seq && Validation.verify_prepare st.prep_lookup p
    then begin
      if Votes.add st.prepares ~key:p.seq ~sender:p.sender p then try_commit env st p.seq
    end
  end

(* Re-inject messages that were ahead of the window before it slid. *)
let drain_ahead env st ~byz =
  let pending = st.ahead in
  st.ahead <- [];
  List.iter
    (function
      | Message.Preprepare_digest pd -> on_proposal env st ~byz pd
      | Message.Prepare p -> on_prepare env st p
      | _ -> ())
    pending

let gc st stable =
  Log.advance_low_mark st.proposals stable;
  Log.prune st.proposals ~upto:stable;
  Votes.prune st.prepares ~keep:(fun seq -> seq > stable);
  Log.advance_low_mark st.prepared stable;
  Log.prune st.prepared ~upto:stable

(* ----- rollback-protected sealed checkpoints (view + stable mark) ----- *)

let encode_recovery_image ~counter st =
  W.to_string
    (fun w () ->
      W.u64 w counter;
      W.varint w st.view;
      W.varint w (Ckpt.last_stable st.ckpt))
    ()

let decode_recovery_image s =
  R.parse
    (fun r ->
      let counter = R.u64 r in
      let view = R.varint r in
      let last_stable = R.varint r in
      (counter, view, last_stable))
    s

let seal_checkpoint_state env st =
  let counter = Enclave.counter_increment env "ckpt" in
  let sealed = Enclave.seal env (encode_recovery_image ~counter st) in
  Enclave.ocall env
    (Wire.encode_output (Wire.Out_persist { tag = "ckpt:confirmation"; data = sealed }))

let on_recover env st blob_opt =
  let refuse reason =
    st.halted <- true;
    Enclave.emit env (Wire.encode_output (Wire.Out_alert reason))
  in
  (* One-slot tolerance: the counter bumps inside the seal but the blob is
     persisted asynchronously by the untrusted host, so a crash can
     legitimately lose the newest seal (see Execution.on_recover). *)
  let counter = Enclave.counter_read env "ckpt" in
  match blob_opt with
  | None ->
    if Int64.compare counter 1L > 0 then
      refuse
        (Printf.sprintf
           "confirmation: rollback detected — counter at %Ld but no sealed checkpoint offered"
           counter)
  | Some sealed -> (
    match Enclave.unseal env sealed with
    | Error e -> refuse ("confirmation: sealed checkpoint rejected: " ^ e)
    | Ok blob -> (
      match decode_recovery_image blob with
      | Error e -> refuse ("confirmation: sealed checkpoint malformed: " ^ e)
      | Ok (sealed_counter, view, last_stable) ->
        if
          Int64.compare sealed_counter counter <> 0
          && Int64.compare sealed_counter (Int64.pred counter) <> 0
        then
          refuse
            (Printf.sprintf
               "confirmation: rollback detected — sealed checkpoint bound to counter %Ld, \
                platform counter is %Ld"
               sealed_counter counter)
        else begin
          st.view <- view;
          Ckpt.force_stable st.ckpt last_stable;
          Log.advance_low_mark st.proposals last_stable;
          Log.advance_low_mark st.prepared last_stable
        end))

(* Broadcast our own ViewChange targeting [new_view] and stop working in
   the old view.  A [Conf_stale_proof] adversary replays its initial
   (stale) state instead of the current one: genesis checkpoint, no
   prepared certificates — trying to talk the next primary into
   re-proposing from scratch.  One such liar is harmless: the NewView
   quorum (2f+1) still contains 2f honest ViewChanges that carry the real
   certificates, and the new-view computation takes their maximum. *)
let send_viewchange env st ~byz new_view =
  let stale = match byz with Conf_stale_proof -> true | _ -> false in
  let vc =
    { Message.vc_new_view = new_view;
      vc_last_stable = (if stale then 0 else Ckpt.last_stable st.ckpt);
      vc_checkpoint_proof = (if stale then [] else Ckpt.proof st.ckpt);
      vc_prepared =
        (if stale then [] else Log.fold (fun _ proof acc -> proof :: acc) st.prepared []);
      vc_sender = st.cfg.id;
      vc_sig = "" }
  in
  let vc = { vc with vc_sig = Common.sign_with env (Message.viewchange_signing_bytes vc) } in
  (* Advancing the view stops Prepare processing and Commits in the old
     view from this point on.  Prepared certificates are kept: a
     cascading view change must still be able to carry them. *)
  st.view <- new_view;
  Log.reset st.proposals;
  Votes.reset st.prepares;
  if !mutate_drop_prepared_on_view_entry then Log.reset st.prepared;
  st.ahead <- [];
  Votes.prune st.viewchanges_seen ~keep:(fun v -> v > new_view);
  Enclave.emit env (Wire.encode_output (Wire.Out_broadcast (Message.Viewchange vc)));
  Enclave.emit env (Wire.encode_output (Wire.Out_entered_view new_view))

(* Handler (5): primary suspicion from the environment's request timer. *)
let on_suspect env st ~byz suspected_view =
  if suspected_view >= st.view then send_viewchange env st ~byz (st.view + 1)

(* Join rule (PBFT §4.5.2): f+1 ViewChanges for a view above ours prove at
   least one correct replica's timer expired; join the smallest such view
   without waiting for our own. *)
let on_viewchange env st ~byz (vc : Message.viewchange) =
  let deep_ok =
    if Config.hotpath st.cfg then
      vc.vc_new_view > st.view
      && Common.verify_viewchange_deep_c env ~f:(Config.f st.cfg)
           ~vc_lookup:st.conf_lookup ~ckpt_lookup:st.exec_lookup
           ~proof_lookup:st.prep_lookup vc
    else begin
      Common.charge_verify env (Proofs.viewchange_sig_count vc);
      vc.vc_new_view > st.view
      && Validation.verify_viewchange_deep ~f:(Config.f st.cfg) ~vc_lookup:st.conf_lookup
           ~ckpt_lookup:st.exec_lookup ~proof_lookup:st.prep_lookup vc
    end
  in
  if deep_ok && vc.vc_sender <> st.cfg.id then begin
    if Votes.add st.viewchanges_seen ~key:vc.vc_new_view ~sender:vc.vc_sender vc then begin
      let joiners = List.length (Votes.get st.viewchanges_seen vc.vc_new_view) in
      if joiners >= Config.f st.cfg + 1 then send_viewchange env st ~byz vc.vc_new_view
    end
  end

(* Handler (7'): checkpoint-and-view part of a NewView — the embedded
   Prepares are not validated here (§4). *)
let on_newview env st (nv : Message.newview) =
  if
    nv.nv_view >= st.view
    && Common.newview_shallow_ok env ~hotpath:(Config.hotpath st.cfg)
         ~f:(Config.f st.cfg) ~n:st.cfg.n ~prep_lookup:st.prep_lookup
         ~conf_lookup:st.conf_lookup nv
  then begin
    ignore (Ckpt.absorb_newview st.ckpt nv);
    st.view <- nv.nv_view;
    Log.reset st.proposals;
    Votes.reset st.prepares;
    st.ahead <- [];
    Votes.prune st.viewchanges_seen ~keep:(fun v -> v > nv.nv_view);
    (* [st.prepared] is deliberately kept (as in on_suspect): dropping the
       certificates for unstable seqs here would let a still-later NewView
       re-propose different content at seqs already committed under them.
       Stability-driven [gc] below prunes whatever the checkpoint covers;
       per-seq entries are overwritten when a higher view re-prepares. *)
    if !mutate_drop_prepared_on_view_entry then Log.reset st.prepared;
    gc st (Ckpt.last_stable st.ckpt);
    Enclave.emit env (Wire.encode_output (Wire.Out_entered_view st.view))
  end

let handle env st ~byz (input : Wire.input) =
  if st.halted then ()
  else
    match input with
    | Wire.In_suspect v -> on_suspect env st ~byz v
    | Wire.In_batch _ | Wire.In_ledger _ -> ()
    | Wire.In_recover blob -> on_recover env st blob
    | Wire.In_net msg -> (
      match msg with
      | Message.Preprepare pp ->
        (* A correct broker sends the digest form; accept the full form too
           (it carries strictly more). *)
        on_proposal env st ~byz (Message.summarize pp)
      | Message.Preprepare_digest pd -> on_proposal env st ~byz pd
      | Message.Prepare p -> on_prepare env st p
      | Message.Viewchange vc -> on_viewchange env st ~byz vc
      | Message.Newview nv -> on_newview env st nv
      | Message.Checkpoint ck ->
        Common.on_checkpoint env ~hotpath:(Config.hotpath st.cfg)
          ~exec_lookup:st.exec_lookup st.ckpt ck
          ~on_stable:(fun stable ->
            gc st stable;
            drain_ahead env st ~byz;
            seal_checkpoint_state env st)
      | Message.Request _ | Message.Commit _ | Message.Reply _
      | Message.Session_init _ | Message.Session_quote _ | Message.Session_key _
      | Message.Session_ack _ | Message.Batch_fetch _ | Message.Batch_data _
      | Message.State_request _ | Message.State_reply _
      | Message.Ledger_subscribe _ | Message.Ledger_feed _
      | Message.Read_request _ | Message.Read_reply _ ->
        ())

let make ?(byz = Conf_honest) (cfg : Config.t) =
  let current = ref (create_state cfg) in
  let program env =
    let st = create_state cfg in
    current := st;
    fun payload ->
      match Wire.decode_input payload with
      | Error _ -> ()
      | Ok input -> handle env st ~byz input
  in
  let probe =
    { view = (fun () -> !current.view);
      last_stable = (fun () -> Ckpt.last_stable !current.ckpt);
      commits_sent = (fun () -> !current.commit_count) }
  in
  (program, probe)
