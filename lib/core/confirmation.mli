(** Confirmation compartment: event handlers 3 and 5 (and the duplicated
    9, 7') of Figure 2.

    Collects prepare certificates — one digest-form PrePrepare plus 2f
    matching Prepares from distinct Preparation enclaves — and answers each
    with a signed Commit (P5: it acts only on the quorum, never on a single
    message).  On primary suspicion signalled by the environment it emits
    the ViewChange, built from its stored prepare certificates and
    checkpoint proof, and advances its view so it stops committing in the
    old view.  It only ever handles batch digests, never request bodies. *)

module Enclave = Splitbft_tee.Enclave

type byz =
  | Conf_honest
  | Conf_promiscuous
      (** signs a Commit for {e every} proposal it sees, without waiting
          for a prepare certificate — the double-voting accomplice *)
  | Conf_stale_proof
      (** its ViewChanges replay the initial (stale) state — genesis
          checkpoint, no prepared certificates — trying to get committed
          sequence numbers re-proposed with different content *)

val mutate_drop_prepared_on_view_entry : bool ref
(** Test-only mutation: re-introduces the pre-PR-3 bug where prepared
    certificates were dropped ([Log.reset]) at view entry.  The model
    checker's self-test flips this on and must find the resulting
    agreement violation; leave it [false] everywhere else. *)

type probe = {
  view : unit -> int;
  last_stable : unit -> int;
  commits_sent : unit -> int;
}

val make : ?byz:byz -> Config.t -> Enclave.program * probe
