module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Validation = Splitbft_types.Validation
module Session = Splitbft_types.Session
module Keys = Splitbft_types.Keys
module Addr = Splitbft_types.Addr
module Enclave_identity = Splitbft_types.Enclave_identity
module Enclave = Splitbft_tee.Enclave
module Measurement = Splitbft_tee.Measurement
module Box = Splitbft_crypto.Box
module Hmac = Splitbft_crypto.Hmac
module Kdf = Splitbft_crypto.Kdf
module Aead = Splitbft_crypto.Aead
module Sha256 = Splitbft_crypto.Sha256
module Rng = Splitbft_util.Rng
module State_machine = Splitbft_app.State_machine
module Log = Splitbft_consensus.Log
module Votes = Splitbft_consensus.Votes
module Ckpt = Splitbft_consensus.Ckpt
module Client_table = Splitbft_consensus.Client_table
module Sessions = Splitbft_consensus.Sessions
module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader
module Ledger = Splitbft_storage.Ledger
module Ledger_entry = Splitbft_storage.Entry

type byz = Exec_honest | Exec_leak | Exec_corrupt | Exec_lie_checkpoint

type probe = {
  view : unit -> int;
  last_executed : unit -> Ids.seqno;
  executed_total : unit -> int;
  executed_log : unit -> (Ids.seqno * string) list;
  app_digest : unit -> string;
  last_stable : unit -> Ids.seqno;
  sessions : unit -> int;
}

type state = {
  cfg : Config.t;
  prep_lookup : Validation.key_lookup;
  conf_lookup : Validation.key_lookup;
  exec_lookup : Validation.key_lookup;
  box : Box.keypair;
  app : State_machine.t;
  mutable view : Ids.view;
  batches : (string, Message.request list) Hashtbl.t;  (* by digest *)
  commits : (Ids.seqno, Message.commit) Votes.t;  (* current view *)
  (* commits addressed just above the window's high edge, parked until
     our own checkpoint stabilises (see Preparation.ahead) *)
  mutable ahead : Message.commit list;
  decided : string Log.t;  (* seq -> committed digest *)
  mutable last_executed : Ids.seqno;
  executed_log : (Ids.seqno, string) Hashtbl.t;
  clients : Client_table.t;
  sessions : Session.keys Sessions.t;
  ckpt : Ckpt.t;
  fetching : (string, unit) Hashtbl.t;  (* batch digests requested from peers *)
  mutable executed_total : int;
  snapshots : (Ids.seqno, string) Hashtbl.t;  (* app snapshots at checkpoint seqs *)
  sync_votes : (Ids.seqno, string * Message.request list) Votes.t;
  mutable sync_replies : (Ids.replica_id * Ids.seqno * Ids.view) list;
  quote_offered : (Ids.client_id, unit) Hashtbl.t;
  mutable instance_nonce : string;
  mutable recovering : bool;
  mutable recovered_once : bool;
      (* latches when recovery completes so a stale retry prompt from the
         broker cannot re-enter the unseal path of a synced incarnation *)
  mutable halted : bool;
  (* append-only rollback-protected ledger (None = storage disabled) *)
  mutable ledger : Ledger.t option;
}

let create_state (cfg : Config.t) ~app =
  { cfg;
    prep_lookup = Config.prep_public ~n:cfg.n;
    conf_lookup = Config.conf_public ~n:cfg.n;
    exec_lookup = Config.exec_public ~n:cfg.n;
    box = Box.derive ~seed:(Keys.enclave_box_seed cfg.id Ids.Execution);
    app = app ();
    view = 0;
    batches = Hashtbl.create 256;
    commits = Votes.create ~size:128 ();
    ahead = [];
    decided = Log.create ~window:cfg.watermark_window ();
    last_executed = 0;
    executed_log = Hashtbl.create 1024;
    clients = Client_table.create ();
    sessions = Sessions.create ();
    ckpt = Ckpt.create ~quorum:(Config.quorum cfg);
    fetching = Hashtbl.create 8;
    executed_total = 0;
    snapshots = Hashtbl.create 4;
    sync_votes = Votes.create ~size:32 ();
    sync_replies = [];
    quote_offered = Hashtbl.create 8;
    instance_nonce = "";
    recovering = false;
    recovered_once = false;
    halted = false;
    ledger =
      (if cfg.segment_entries > 0 then Some (Ledger.create ~segment_entries:cfg.segment_entries)
       else None) }

let in_window st seq = Log.in_window st.decided seq

(* ----- rollback-protected sealed checkpoints (§4–5) -----

   Every checkpoint, the compartment seals its recoverable state and binds
   the blob to a fresh value of a named monotonic counter.  A recovering
   incarnation accepts only the blob matching the current counter value: a
   host replaying an older blob (or wiping the counter) is detected and
   recovery aborts loudly instead of silently rejoining with stale state. *)

type recovery_image = {
  ri_counter : int64;
  ri_view : Ids.view;
  ri_last_executed : Ids.seqno;
  ri_snapshot : string;
  ri_executed : (Ids.seqno * string) list;
  ri_sessions : (Ids.client_id * Session.keys) list;
}

let encode_recovery_image ri =
  W.to_string
    (fun w () ->
      W.u64 w ri.ri_counter;
      W.varint w ri.ri_view;
      W.varint w ri.ri_last_executed;
      W.bytes w ri.ri_snapshot;
      W.list w
        (fun w (seq, d) ->
          W.varint w seq;
          W.bytes w d)
        ri.ri_executed;
      W.list w
        (fun w (c, (k : Session.keys)) ->
          W.varint w c;
          W.bytes w k.Session.auth;
          W.bytes w k.Session.enc)
        ri.ri_sessions)
    ()

let decode_recovery_image s =
  R.parse
    (fun r ->
      let ri_counter = R.u64 r in
      let ri_view = R.varint r in
      let ri_last_executed = R.varint r in
      let ri_snapshot = R.bytes r in
      let ri_executed =
        R.list r (fun r ->
            let seq = R.varint r in
            let d = R.bytes r in
            (seq, d))
      in
      let ri_sessions =
        R.list r (fun r ->
            let c = R.varint r in
            let auth = R.bytes r in
            let enc = R.bytes r in
            (c, { Session.auth; enc }))
      in
      { ri_counter; ri_view; ri_last_executed; ri_snapshot; ri_executed; ri_sessions })
    s

let seal_checkpoint_state env st seq snapshot =
  let counter = Enclave.counter_increment env "ckpt" in
  let image =
    { ri_counter = counter;
      ri_view = st.view;
      ri_last_executed = seq;
      ri_snapshot = snapshot;
      ri_executed =
        (* Explicit seqno order: polymorphic [compare] would also inspect
           the digest bytes, making the encoding order an accident of the
           pair representation rather than the log order. *)
        Hashtbl.fold (fun s d acc -> (s, d) :: acc) st.executed_log []
        |> List.sort Log.by_seqno;
      ri_sessions = Sessions.fold (fun c k acc -> (c, k) :: acc) st.sessions [] }
  in
  let sealed = Enclave.seal env (encode_recovery_image image) in
  Enclave.ocall env (Wire.encode_output (Wire.Out_persist { tag = "ckpt:execution"; data = sealed }))

(* Handler (8): originate a Checkpoint every interval.  An
   [Exec_lie_checkpoint] adversary signs checkpoints over a fabricated
   state digest — trying to stabilize a state no honest replica has.  One
   liar is contained: stability needs a quorum (2f+1) of {e matching}
   digests, which f lying enclaves can never assemble against 2f+1 honest
   ones; the lie costs only its own vote. *)
let send_checkpoint_if_due env st ~byz seq =
  if seq mod st.cfg.checkpoint_interval = 0 then
    (* The snapshot, certificate store and counter bump all run inline
       (state transitions stay in sequence order); with [exec_workers > 1]
       the snapshot/seal *cost* and the resulting broadcast ride a pool
       worker like any other background checkpointing thread would —
       otherwise every checkpoint serializes on the lane thread whose
       residue class happens to contain the checkpoint seqnos (with
       [checkpoint_interval] divisible by [lanes] that is always the same
       lane). *)
    Enclave.pool_run env (fun () ->
        let snapshot = st.app.State_machine.snapshot () in
        (* Kept so a later [State_request] can be served with the snapshot
           matching this (eventually stable) certified state digest. *)
        Hashtbl.replace st.snapshots seq snapshot;
        let state_digest =
          match byz with
          | Exec_lie_checkpoint -> Message.digest_of_batch []
          | Exec_honest | Exec_leak | Exec_corrupt -> State_machine.digest st.app
        in
        let ck = { Message.seq; state_digest; sender = st.cfg.id; ck_sig = "" } in
        let ck =
          { ck with ck_sig = Common.sign_with env (Message.checkpoint_signing_bytes ck) }
        in
        (* Own checkpoints never complete a quorum alone; advancing happens
           when peer checkpoints arrive through [Common.on_checkpoint]. *)
        Ckpt.store st.ckpt ck;
        Enclave.emit env (Wire.encode_output (Wire.Out_broadcast (Message.Checkpoint ck)));
        seal_checkpoint_state env st seq snapshot;
        ([], []))

let gc st stable =
  Votes.prune st.commits ~keep:(fun seq -> seq > stable);
  Log.advance_low_mark st.decided stable;
  Log.prune st.decided ~upto:stable;
  let stale =
    Hashtbl.fold (fun s _ acc -> if s < stable then s :: acc else acc) st.snapshots []
  in
  List.iter (Hashtbl.remove st.snapshots) stale

let send_session_quote env st client =
  Hashtbl.replace st.quote_offered client ();
  let sq =
    { Message.sq_replica = st.cfg.id;
      sq_quote = Enclave.quote env;
      sq_box_public = st.box.Box.public;
      sq_nonce = st.instance_nonce;
      sq_sig = "" }
  in
  let sq = { sq with sq_sig = Common.sign_with env (Message.session_quote_signing_bytes sq) } in
  Enclave.emit env
    (Wire.encode_output (Wire.Out_send (Addr.client client, Message.Session_quote sq)))

(* Re-attestation path: a request we hold no session for means the client
   believes it is provisioned (e.g. it attested a previous incarnation
   whose sessions died with the crash) — push it a fresh quote, at most
   once per client per incarnation, so it can re-provision. *)
let offer_session env st client =
  if not (Hashtbl.mem st.quote_offered client) then send_session_quote env st client

(* Executes one request and returns its conflict footprint (the keys the
   decrypted operation reads/writes, per the application's [classify]) —
   empty for duplicates and operations that execute as no-ops — plus the
   plaintext operation when one was actually applied (what the ledger
   records: replaying exactly these reproduces the state transition). *)
let execute_request env st ~byz (req : Message.request) =
  let c = Enclave.cost_model env in
  Enclave.charge_crypto env (c.decrypt_request_us +. c.reply_auth_us);
  Enclave.charge_exec env c.exec_op_us;
  if Client_table.executed st.clients req.client req.timestamp then begin
    (* Duplicate (re-ordered after a view change, or a retransmission that
       raced execution): do not re-execute; retransmit the cached reply. *)
    (match Client_table.cached_reply st.clients req.client req.timestamp with
    | Some reply ->
      Enclave.emit env
        (Wire.encode_output (Wire.Out_send (Addr.client req.client, Message.Reply reply)))
    | None -> ());
    (State_machine.rw_none, None)
  end
  else begin
    let session = Sessions.find st.sessions req.client in
    let plaintext_op =
      match session with
      | None -> None
      | Some keys ->
        if Session.request_auth_ok keys req then
          match
            Session.decrypt_op keys ~client:req.client ~timestamp:req.timestamp req.payload
          with
          | Ok op -> Some op
          | Error _ -> None
        else None
    in
    (match byz, plaintext_op with
    | Exec_leak, Some op ->
      (* Exfiltrate the decrypted operation into untrusted storage. *)
      Enclave.emit env
        (Wire.encode_output (Wire.Out_persist { tag = "exfil"; data = op }))
    | (Exec_honest | Exec_corrupt | Exec_leak | Exec_lie_checkpoint), _ -> ());
    (* Corrupted operations are ordered but executed as a no-op (§4). *)
    let result, rw, applied =
      match byz, plaintext_op with
      | Exec_corrupt, Some _ -> ("CORRUPT", State_machine.rw_none, None)
      | _, Some op ->
        (st.app.State_machine.apply op, st.app.State_machine.classify op, Some op)
      | _, None -> (State_machine.noop_result, State_machine.rw_none, None)
    in
    st.executed_total <- st.executed_total + 1;
    (match session with
    | None ->
      Client_table.record st.clients req.client req.timestamp None;
      offer_session env st req.client
    | Some keys ->
      let encrypted =
        Session.encrypt_result keys ~client:req.client ~timestamp:req.timestamp
          ~replica:st.cfg.id result
      in
      let reply =
        { Message.view = st.view;
          timestamp = req.timestamp;
          client = req.client;
          sender = st.cfg.id;
          result = encrypted;
          r_auth = "" }
      in
      let reply = Session.authenticate_reply keys reply in
      Client_table.record st.clients req.client req.timestamp (Some reply);
      Enclave.emit env
        (Wire.encode_output (Wire.Out_send (Addr.client req.client, Message.Reply reply))));
    (rw, applied)
  end

(* ----- append-only rollback-protected ledger (Proteus-style) -----

   One entry per executed batch: (seq, committed digest, the plaintext
   operations actually applied), with the op payload AEAD-sealed under
   the ledger feed key so the untrusted host relaying it to followers
   learns nothing.  Segment rotation binds a sealed header to the
   "ledger" monotonic counter — the same rollback protection the "ckpt"
   counter gives sealed checkpoints. *)

let ledger_persist env recs =
  List.iter
    (fun (tag, data) ->
      Enclave.ocall env (Wire.encode_output (Wire.Out_persist { tag; data })))
    recs

let ledger_append env st ~seq ~digest ops =
  match st.ledger with
  | None -> ()
  | Some l ->
    let c = Enclave.cost_model env in
    Enclave.charge_io env c.ledger_block_us;
    let blob = Ledger_entry.encode_ops (List.rev ops) in
    Enclave.charge_crypto env (c.seal_per_byte_us *. float_of_int (String.length blob));
    let sealed_ops = Ledger_entry.seal_ops ~seq blob in
    ledger_persist env
      (Ledger.append l
         ~seal:(Enclave.seal env)
         ~counter:(fun () -> Enclave.counter_increment env "ledger")
         ~seq ~digest ~ops:sealed_ops)

(* Compaction: once a 2f+1 quorum certified a checkpoint, every sealed
   segment it fully covers is replaced by a sealed base record carrying
   the certified state digest — replay(base, remaining entries) is the
   exact pre-compaction state. *)
let compact_ledger env st stable =
  match st.ledger with
  | None -> ()
  | Some l ->
    let state_digest =
      match Ckpt.proof st.ckpt with
      | ck :: _ when ck.Message.seq = stable -> ck.Message.state_digest
      | _ -> ""
    in
    if String.length state_digest > 0 then
      ledger_persist env
        (Ledger.compact l ~stable ~state_digest
           ~seal:(Enclave.seal env)
           ~counter:(fun () -> Enclave.counter_increment env "ledger"))

let persist_effects env st =
  let c = Enclave.cost_model env in
  List.iter
    (fun (State_machine.Persist { tag; data }) ->
      (* One ocall per block, written sealed (sgx_tprotected_fs in the
         paper): block formation/write cost plus sealing (charged inside
         [Enclave.seal]) plus the ocall transition. *)
      Enclave.charge_io env c.ledger_block_us;
      let sealed = Enclave.seal env data in
      Enclave.ocall env (Wire.encode_output (Wire.Out_persist { tag; data = sealed })))
    (st.app.State_machine.drain_effects ())

let rec try_execute env st ~byz =
  let seq = st.last_executed + 1 in
  match Log.find st.decided seq with
  | None -> ()
  | Some digest ->
    let batch =
      if String.equal digest Message.empty_batch_digest then Some []
      else Hashtbl.find_opt st.batches digest
    in
    (match batch with
    | None ->
      (* Committed a digest without the bodies (re-proposed across a view
         change): fetch them, content-addressed, from peer Executions. *)
      if not (Hashtbl.mem st.fetching digest) then begin
        Hashtbl.replace st.fetching digest ();
        Enclave.emit env
          (Wire.encode_output
             (Wire.Out_broadcast
                (Message.Batch_fetch { bf_digest = digest; bf_requester = st.cfg.id })))
      end
    | Some batch ->
      st.last_executed <- seq;
      Hashtbl.replace st.executed_log seq digest;
      (* The batch executes as one pool task: state transitions happen
         here, in sequence order (so executed_log and reply contents are
         identical to serial execution by construction); with
         [exec_workers > 1] the batch's metered cost and its replies move
         to a worker thread that waits for any conflicting earlier batch
         per the accumulated read/write footprint. *)
      Enclave.pool_run env (fun () ->
          let rs, ws, ops =
            List.fold_left
              (fun (rs, ws, ops) req ->
                let rw, applied = execute_request env st ~byz req in
                ( List.rev_append rw.State_machine.reads rs,
                  List.rev_append rw.State_machine.writes ws,
                  match applied with Some op -> op :: ops | None -> ops ))
              ([], [], []) batch
          in
          (* The ledger append rides the same pool task: chain state
             advances inline in sequence order (deterministic), its cost
             and records follow the batch onto the worker. *)
          ledger_append env st ~seq ~digest ops;
          (rs, ws));
      persist_effects env st;
      send_checkpoint_if_due env st ~byz seq;
      try_execute env st ~byz)

(* ----- state transfer -----

   A recovering Execution broadcasts a [State_request]; peers answer with
   their checkpoint certificate, the snapshot matching its state digest and
   the decided log suffix.  The snapshot travels AEAD-protected under a key
   derived from the Execution measurement, modelling the attested
   enclave-to-enclave channel of the paper: the untrusted hosts relaying it
   learn nothing about application state. *)

let transfer_aad = "splitbft-state-transfer"

let transfer_key =
  lazy
    (Kdf.derive ~ikm:"splitbft-exec-state-transfer"
       ~info:(Measurement.to_raw Enclave_identity.execution) ~length:32 ())

let transfer_nonce ~replier ~stable =
  String.sub (Sha256.digest (Printf.sprintf "st-nonce:%d:%d" replier stable)) 0 Aead.nonce_size

let on_state_request env st (sr : Message.state_request) =
  Enclave.charge_exec env 2.0;
  if sr.sr_requester <> st.cfg.id then begin
    let stable = Ckpt.last_stable st.ckpt in
    let snapshot =
      if stable > 0 && sr.sr_from <= stable then
        match Hashtbl.find_opt st.snapshots stable with
        | Some snap ->
          let c = Enclave.cost_model env in
          Enclave.charge_crypto env
            (c.seal_per_byte_us *. float_of_int (String.length snap));
          Aead.encrypt ~key:(Lazy.force transfer_key)
            ~nonce:(transfer_nonce ~replier:st.cfg.id ~stable)
            ~aad:transfer_aad snap
        | None -> ""
      else ""
    in
    let entries =
      Log.fold
        (fun seq digest acc ->
          if seq >= sr.sr_from && seq <= st.last_executed then
            match
              if String.equal digest Message.empty_batch_digest then Some []
              else Hashtbl.find_opt st.batches digest
            with
            | Some batch ->
              { Message.se_seq = seq; se_digest = digest; se_batch = batch } :: acc
            | None -> acc
          else acc)
        st.decided []
      |> List.sort (fun a b -> Int.compare a.Message.se_seq b.Message.se_seq)
    in
    let reply =
      { Message.st_replier = st.cfg.id;
        st_requester = sr.sr_requester;
        st_stable = stable;
        st_proof = Ckpt.proof st.ckpt;
        st_snapshot = snapshot;
        st_view = st.view;
        st_entries = entries }
    in
    Enclave.emit env
      (Wire.encode_output
         (Wire.Out_send (Addr.replica sr.sr_requester, Message.State_reply reply)))
  end

(* Caught up once we reach the height vouched by f+1 repliers (at least one
   honest, so the target is a height the cluster genuinely reached). *)
let finish_recovery_if_caught_up env st =
  if st.recovering then begin
    let f1 = Config.f st.cfg + 1 in
    if List.length st.sync_replies >= f1 then begin
      let heights =
        List.map (fun (_, h, _) -> h) st.sync_replies |> List.sort (fun a b -> Int.compare b a)
      in
      if st.last_executed >= List.nth heights (f1 - 1) then begin
        st.recovering <- false;
        st.recovered_once <- true;
        st.sync_replies <- [];
        Votes.reset st.sync_votes;
        Enclave.emit env (Wire.encode_output Wire.Out_recovered)
      end
    end
  end

let on_state_reply env st ~byz (sr : Message.state_reply) =
  Enclave.charge_exec env (1.0 +. float_of_int (List.length sr.st_entries));
  if st.recovering && sr.st_requester = st.cfg.id && sr.st_replier <> st.cfg.id
  then begin
    let quorum = Config.quorum st.cfg in
    (* Certified snapshot: install only if it moves us forward and its
       digest matches the checkpoint-quorum certificate. *)
    (if String.length sr.st_snapshot > 0 && sr.st_stable > st.last_executed then begin
       let proof_ok =
         if Config.hotpath st.cfg then
           (* f+1 repliers ship the same quorum certificate; the cache makes
              every copy after the first cost a lookup per checkpoint. *)
           Validation.checkpoint_quorum_seq ~quorum sr.st_proof = Some sr.st_stable
           && List.for_all (Common.verify_checkpoint_c env st.exec_lookup) sr.st_proof
         else begin
           Common.charge_verify env (List.length sr.st_proof);
           Validation.checkpoint_quorum_seq ~quorum sr.st_proof = Some sr.st_stable
           && List.for_all (Validation.verify_checkpoint st.exec_lookup) sr.st_proof
         end
       in
       if proof_ok then
         match
           Aead.decrypt ~key:(Lazy.force transfer_key)
             ~nonce:(transfer_nonce ~replier:sr.st_replier ~stable:sr.st_stable)
             ~aad:transfer_aad sr.st_snapshot
         with
         | Error _ -> ()
         | Ok snap ->
           let certified_digest =
             match sr.st_proof with
             | ck :: _ -> ck.Message.state_digest
             | [] -> ""
           in
           if String.equal (Sha256.digest snap) certified_digest then begin
             match st.app.State_machine.restore snap with
             | Error _ -> ()
             | Ok () ->
               ignore (st.app.State_machine.drain_effects ());
               st.last_executed <- sr.st_stable;
               Hashtbl.replace st.snapshots sr.st_stable snap;
               Ckpt.force_stable st.ckpt sr.st_stable;
               Log.advance_low_mark st.decided sr.st_stable
           end
     end);
    (* Log suffix: entries are content-addressed but unsigned, so install a
       slot only once f+1 distinct repliers vouch for the same digest. *)
    List.iter
      (fun (e : Message.state_entry) ->
        if
          e.se_seq > st.last_executed
          && (not (Log.mem st.decided e.se_seq))
          && String.equal (Message.digest_of_batch e.se_batch) e.se_digest
          && Votes.add st.sync_votes ~key:e.se_seq ~sender:sr.st_replier
               (e.se_digest, e.se_batch)
        then begin
          let matching =
            List.filter
              (fun (d, _) -> String.equal d e.se_digest)
              (Votes.get st.sync_votes e.se_seq)
          in
          if List.length matching >= Config.f st.cfg + 1 then begin
            Hashtbl.replace st.batches e.se_digest e.se_batch;
            Log.set st.decided e.se_seq e.se_digest
          end
        end)
      sr.st_entries;
    let vouched =
      List.fold_left
        (fun acc (e : Message.state_entry) -> max acc e.se_seq)
        sr.st_stable sr.st_entries
    in
    (* One live slot per replier: a retry round's reply supersedes the
       replier's earlier (possibly shorter) one. *)
    st.sync_replies <-
      (sr.st_replier, vouched, sr.st_view)
      :: List.filter (fun (r, _, _) -> r <> sr.st_replier) st.sync_replies;
    (* Adopt the view vouched by f+1 repliers so commits flowing in the
       cluster's current view are not discarded. *)
    let f1 = Config.f st.cfg + 1 in
    if List.length st.sync_replies >= f1 then begin
      let views =
        List.map (fun (_, _, v) -> v) st.sync_replies |> List.sort (fun a b -> Int.compare b a)
      in
      let v = List.nth views (f1 - 1) in
      if v > st.view then begin
        st.view <- v;
        Votes.reset st.commits;
        Enclave.emit env (Wire.encode_output (Wire.Out_entered_view st.view))
      end
    end;
    try_execute env st ~byz;
    finish_recovery_if_caught_up env st
  end

(* ----- restart handshake ----- *)

let on_recover env st blob_opt =
  if st.recovering then
    (* Retry round from the broker: commits in flight during the crash are
       lost, so one request can leave a gap.  Re-ask from where we are —
       re-unsealing now would roll freshly transferred state backward. *)
    Enclave.emit env
      (Wire.encode_output
         (Wire.Out_broadcast
            (Message.State_request { sr_requester = st.cfg.id; sr_from = st.last_executed + 1 })))
  else if st.recovered_once then ()
    (* stale retry prompt delivered after recovery completed *)
  else begin
  let refuse reason =
    st.halted <- true;
    Enclave.emit env (Wire.encode_output (Wire.Out_alert reason))
  in
  (* The enclave bumps the counter *inside* the seal, but the blob reaches
     disk through the untrusted host asynchronously — a crash can land
     between the two, legitimately losing the newest seal.  So acceptance
     tolerates exactly one slot: a blob bound to [counter] or
     [counter - 1].  A replayed blob is always ≥ 2 behind (or fails the
     absent-blob check below), so the tolerance never masks an attack; it
     costs at most one checkpoint interval of staleness, which state
     transfer repairs anyway. *)
  let counter = Enclave.counter_read env "ckpt" in
  (match blob_opt with
  | None ->
    (* A counter past 1 proves an earlier seal reached disk (the one-slot
       window only covers the newest); an absent blob means the host
       destroyed (or withheld) it — a rollback to the empty state. *)
    if Int64.compare counter 1L > 0 then
      refuse
        (Printf.sprintf
           "execution: rollback detected — counter at %Ld but no sealed checkpoint offered"
           counter)
  | Some sealed -> (
    match Enclave.unseal env sealed with
    | Error e -> refuse ("execution: sealed checkpoint rejected: " ^ e)
    | Ok blob -> (
      match decode_recovery_image blob with
      | Error e -> refuse ("execution: sealed checkpoint malformed: " ^ e)
      | Ok ri ->
        if
          Int64.compare ri.ri_counter counter <> 0
          && Int64.compare ri.ri_counter (Int64.pred counter) <> 0
        then
          refuse
            (Printf.sprintf
               "execution: rollback detected — sealed checkpoint bound to counter %Ld, \
                platform counter is %Ld"
               ri.ri_counter counter)
        else begin
          match st.app.State_machine.restore ri.ri_snapshot with
          | Error e -> refuse ("execution: sealed snapshot rejected by application: " ^ e)
          | Ok () ->
            ignore (st.app.State_machine.drain_effects ());
            st.view <- ri.ri_view;
            st.last_executed <- ri.ri_last_executed;
            List.iter (fun (s, d) -> Hashtbl.replace st.executed_log s d) ri.ri_executed;
            List.iter (fun (c, k) -> Sessions.set st.sessions c k) ri.ri_sessions;
            Hashtbl.replace st.snapshots ri.ri_last_executed ri.ri_snapshot;
            Ckpt.force_stable st.ckpt ri.ri_last_executed;
            Log.advance_low_mark st.decided ri.ri_last_executed
        end)));
  if not st.halted then begin
    st.recovering <- true;
    Enclave.emit env
      (Wire.encode_output
         (Wire.Out_broadcast
            (Message.State_request { sr_requester = st.cfg.id; sr_from = st.last_executed + 1 })))
  end
  end

(* Second phase of the restart handshake: the broker replays the
   persisted ledger records.  Chain verification, torn-tail truncation
   and the counter binding all live in [Ledger.recover]; a failure there
   is tampering (not a crash) and takes the same halt+alert path as a
   rolled-back checkpoint. *)
let on_ledger_recover env st records =
  match st.ledger with
  | None -> ()
  | Some _ ->
    let c = Enclave.cost_model env in
    Enclave.charge_io env (c.ledger_block_us *. float_of_int (List.length records));
    let counter = Enclave.counter_read env "ledger" in
    (match
       Ledger.recover ~segment_entries:st.cfg.segment_entries ~counter
         ~unseal:(Enclave.unseal env) records
     with
    | Error reason ->
      st.halted <- true;
      Enclave.emit env (Wire.encode_output (Wire.Out_alert ("execution: " ^ reason)))
    | Ok r -> st.ledger <- Some r.Ledger.ledger)

(* Full-request PrePrepares are duplicated into this compartment's log so
   Commits (which carry only digests) can be executed. *)
let on_preprepare env st ~byz (pp : Message.preprepare) =
  if Config.hotpath st.cfg then begin
    (* Content-addressed admission: the batch store is keyed by the batch's
       own digest and a slot only executes once a commit quorum decided
       that digest, so the primary's signature adds nothing here — exactly
       the argument that lets Batch_data bodies arrive unsigned.  The
       signature is still verified where it gates protocol steps
       (Preparation/Confirmation). *)
    let digest = Common.digest_of_batch_c env pp.batch in
    if not (Hashtbl.mem st.batches digest) then Hashtbl.replace st.batches digest pp.batch;
    try_execute env st ~byz
  end
  else begin
    Common.charge_verify env 1;
    if Validation.verify_preprepare st.prep_lookup pp then begin
      let digest = Message.digest_of_batch pp.batch in
      if not (Hashtbl.mem st.batches digest) then Hashtbl.replace st.batches digest pp.batch;
      try_execute env st ~byz
    end
  end

(* Handler (4): a commit certificate decides a sequence number. *)
let on_commit env st ~byz (c : Message.commit) =
  if c.view = st.view && Log.ahead_of_window st.decided c.seq then begin
    if List.length st.ahead < Log.window st.decided then st.ahead <- st.ahead @ [ c ]
  end
  else
  let accept env st ~byz (c : Message.commit) =
    if Votes.add st.commits ~key:c.seq ~sender:c.sender c then begin
      let commits = Votes.get st.commits c.seq in
      if
        Validation.commit_quorum_complete ~quorum:(Config.quorum st.cfg) ~view:st.view
          ~seq:c.seq ~digest:c.digest commits
      then begin
        Log.set st.decided c.seq c.digest;
        try_execute env st ~byz;
        finish_recovery_if_caught_up env st
      end
    end
  in
  if Config.hotpath st.cfg then begin
    (* A decided slot or a duplicate sender cannot advance the quorum;
       reject both before any signature work is charged. *)
    if
      c.view = st.view && in_window st c.seq
      && (not (Log.mem st.decided c.seq))
      && (not (Votes.mem st.commits ~key:c.seq ~sender:c.sender))
      && Common.verify_commit_c env st.conf_lookup c
    then accept env st ~byz c
  end
  else begin
    Common.charge_verify env 1;
    if
      c.view = st.view && in_window st c.seq
      && (not (Log.mem st.decided c.seq))
      && Validation.verify_commit st.conf_lookup c
    then accept env st ~byz c
  end

(* Handler (7'): checkpoint-and-view part of a NewView. *)
let on_newview env st (nv : Message.newview) =
  if
    nv.nv_view >= st.view
    && Common.newview_shallow_ok env ~hotpath:(Config.hotpath st.cfg)
         ~f:(Config.f st.cfg) ~n:st.cfg.n ~prep_lookup:st.prep_lookup
         ~conf_lookup:st.conf_lookup nv
  then begin
    ignore (Ckpt.absorb_newview st.ckpt nv);
    st.view <- nv.nv_view;
    Votes.reset st.commits;
    st.ahead <- [];
    let stable = Ckpt.last_stable st.ckpt in
    gc st stable;
    compact_ledger env st stable;
    Enclave.emit env (Wire.encode_output (Wire.Out_entered_view st.view))
  end

(* Session establishment (§4 step 1): quote, then receive the session keys
   through the attestation box, then acknowledge under the auth key. *)
let on_session_init env st (si : Message.session_init) = send_session_quote env st si.si_client

let on_session_key env st (sk : Message.session_key) =
  Enclave.charge_crypto env (Enclave.cost_model env).decrypt_request_us;
  if sk.sk_replica = st.cfg.id then begin
    match Box.decrypt st.box.Box.secret sk.sk_box with
    | Error _ -> ()
    | Ok provision -> (
      match Session.decode_provision provision with
      | Error _ -> ()
      | Ok keys when String.length keys.Session.enc > 0 ->
        Sessions.set st.sessions sk.sk_client keys;
        let sa = { Message.sa_replica = st.cfg.id; sa_client = sk.sk_client; sa_auth = "" } in
        let sa =
          { sa with
            sa_auth =
              Hmac.mac ~key:keys.Session.auth (Message.session_ack_auth_bytes sa) }
        in
        Enclave.emit env
          (Wire.encode_output
             (Wire.Out_send (Addr.client sk.sk_client, Message.Session_ack sa)))
      | Ok _ -> () (* a preparation-only provision is not for us *))
  end

let on_batch_fetch env st (bf : Message.batch_fetch) =
  Enclave.charge_exec env 1.0;
  match Hashtbl.find_opt st.batches bf.bf_digest with
  | Some batch when bf.bf_requester <> st.cfg.id ->
    Enclave.emit env
      (Wire.encode_output
         (Wire.Out_send
            (Addr.replica bf.bf_requester, Message.Batch_data { bd_batch = batch })))
  | Some _ | None -> ()

let on_batch_data env st ~byz (bd : Message.batch_data) =
  Enclave.charge_exec env 1.0;
  let digest = Message.digest_of_batch bd.bd_batch in
  if Hashtbl.mem st.fetching digest then begin
    Hashtbl.remove st.fetching digest;
    Hashtbl.replace st.batches digest bd.bd_batch;
    try_execute env st ~byz
  end

let handle env st ~byz (input : Wire.input) =
  if st.halted then ()
  else
    match input with
    | Wire.In_batch _ | Wire.In_suspect _ -> ()
    | Wire.In_recover blob -> on_recover env st blob
    | Wire.In_ledger records -> on_ledger_recover env st records
    | Wire.In_net msg -> (
      match msg with
      | Message.Preprepare pp -> on_preprepare env st ~byz pp
      | Message.Commit c -> on_commit env st ~byz c
      | Message.Batch_fetch bf -> on_batch_fetch env st bf
      | Message.Batch_data bd -> on_batch_data env st ~byz bd
      | Message.Newview nv -> on_newview env st nv
      | Message.Checkpoint ck ->
        Common.on_checkpoint env ~hotpath:(Config.hotpath st.cfg)
          ~exec_lookup:st.exec_lookup st.ckpt ck
          ~on_stable:(fun stable ->
            gc st stable;
            compact_ledger env st stable;
            (* The window just slid: re-drive commits that were ahead of
               it (any still ahead simply re-park). *)
            let pending = st.ahead in
            st.ahead <- [];
            List.iter (fun c -> on_commit env st ~byz c) pending;
            (* A quorum certified state a full interval past what we have
               executed (e.g. we sat out a partition): the commits we missed
               will not be retransmitted, so catch up through the same
               state-transfer path a restarted replica uses. *)
            if
              (not st.recovering)
              && stable >= st.last_executed + st.cfg.checkpoint_interval
            then begin
              st.recovering <- true;
              st.sync_replies <- [];
              Enclave.emit env
                (Wire.encode_output
                   (Wire.Out_broadcast
                      (Message.State_request
                         { sr_requester = st.cfg.id; sr_from = st.last_executed + 1 })))
            end)
      | Message.Session_init si -> on_session_init env st si
      | Message.Session_key sk -> on_session_key env st sk
      | Message.State_request sr -> on_state_request env st sr
      | Message.State_reply sr -> on_state_reply env st ~byz sr
      | Message.Request _ | Message.Preprepare_digest _ | Message.Prepare _
      | Message.Reply _ | Message.Viewchange _ | Message.Session_quote _
      | Message.Session_ack _ | Message.Ledger_subscribe _
      | Message.Ledger_feed _ | Message.Read_request _ | Message.Read_reply _ ->
        ())

let make ?(byz = Exec_honest) (cfg : Config.t) ~app =
  let current = ref (create_state cfg ~app) in
  let program env =
    let st = create_state cfg ~app in
    (* Fresh per incarnation: lets clients tell a recovered enclave (which
       needs re-provisioning) apart from a quote retransmission. *)
    st.instance_nonce <- Rng.bytes (Enclave.env_rng env) 16;
    current := st;
    fun payload ->
      match Wire.decode_input payload with
      | Error _ -> ()
      | Ok input -> handle env st ~byz input
  in
  let probe =
    { view = (fun () -> !current.view);
      last_executed = (fun () -> !current.last_executed);
      executed_total = (fun () -> !current.executed_total);
      executed_log =
        (fun () ->
          Hashtbl.fold (fun seq d acc -> (seq, d) :: acc) !current.executed_log []
          |> List.sort Log.by_seqno);
      app_digest = (fun () -> State_machine.digest !current.app);
      last_stable = (fun () -> Ckpt.last_stable !current.ckpt);
      sessions = (fun () -> Sessions.count !current.sessions) }
  in
  (program, probe)
