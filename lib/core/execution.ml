module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Validation = Splitbft_types.Validation
module Session = Splitbft_types.Session
module Keys = Splitbft_types.Keys
module Addr = Splitbft_types.Addr
module Enclave = Splitbft_tee.Enclave
module Box = Splitbft_crypto.Box
module Hmac = Splitbft_crypto.Hmac
module State_machine = Splitbft_app.State_machine
module Log = Splitbft_consensus.Log
module Votes = Splitbft_consensus.Votes
module Ckpt = Splitbft_consensus.Ckpt
module Client_table = Splitbft_consensus.Client_table
module Sessions = Splitbft_consensus.Sessions

type byz = Exec_honest | Exec_leak | Exec_corrupt

type probe = {
  view : unit -> int;
  last_executed : unit -> Ids.seqno;
  executed_total : unit -> int;
  executed_log : unit -> (Ids.seqno * string) list;
  app_digest : unit -> string;
  last_stable : unit -> Ids.seqno;
  sessions : unit -> int;
}

type state = {
  cfg : Config.t;
  prep_lookup : Validation.key_lookup;
  conf_lookup : Validation.key_lookup;
  exec_lookup : Validation.key_lookup;
  box : Box.keypair;
  app : State_machine.t;
  mutable view : Ids.view;
  batches : (string, Message.request list) Hashtbl.t;  (* by digest *)
  commits : (Ids.seqno, Message.commit) Votes.t;  (* current view *)
  decided : string Log.t;  (* seq -> committed digest *)
  mutable last_executed : Ids.seqno;
  executed_log : (Ids.seqno, string) Hashtbl.t;
  clients : Client_table.t;
  sessions : Session.keys Sessions.t;
  ckpt : Ckpt.t;
  fetching : (string, unit) Hashtbl.t;  (* batch digests requested from peers *)
  mutable executed_total : int;
}

let create_state (cfg : Config.t) ~app =
  { cfg;
    prep_lookup = Config.prep_public ~n:cfg.n;
    conf_lookup = Config.conf_public ~n:cfg.n;
    exec_lookup = Config.exec_public ~n:cfg.n;
    box = Box.derive ~seed:(Keys.enclave_box_seed cfg.id Ids.Execution);
    app = app ();
    view = 0;
    batches = Hashtbl.create 256;
    commits = Votes.create ~size:128 ();
    decided = Log.create ~window:cfg.watermark_window ();
    last_executed = 0;
    executed_log = Hashtbl.create 1024;
    clients = Client_table.create ();
    sessions = Sessions.create ();
    ckpt = Ckpt.create ~quorum:(Config.quorum cfg);
    fetching = Hashtbl.create 8;
    executed_total = 0 }

let in_window st seq = Log.in_window st.decided seq

(* Handler (8): originate a Checkpoint every interval. *)
let send_checkpoint_if_due env st seq =
  if seq mod st.cfg.checkpoint_interval = 0 then begin
    let ck =
      { Message.seq;
        state_digest = State_machine.digest st.app;
        sender = st.cfg.id;
        ck_sig = "" }
    in
    let ck = { ck with ck_sig = Common.sign_with env (Message.checkpoint_signing_bytes ck) } in
    (* Own checkpoints never complete a quorum alone; advancing happens
       when peer checkpoints arrive through [Common.on_checkpoint]. *)
    Ckpt.store st.ckpt ck;
    Enclave.emit env (Wire.encode_output (Wire.Out_broadcast (Message.Checkpoint ck)))
  end

let gc st stable =
  Votes.prune st.commits ~keep:(fun seq -> seq > stable);
  Log.advance_low_mark st.decided stable;
  Log.prune st.decided ~upto:stable

let execute_request env st ~byz (req : Message.request) =
  let c = Enclave.cost_model env in
  Enclave.charge env (c.decrypt_request_us +. c.exec_op_us +. c.reply_auth_us);
  if Client_table.executed st.clients req.client req.timestamp then
    (* Duplicate (re-ordered after a view change, or a retransmission that
       raced execution): do not re-execute; retransmit the cached reply. *)
    (match Client_table.cached_reply st.clients req.client req.timestamp with
    | Some reply ->
      Enclave.emit env
        (Wire.encode_output (Wire.Out_send (Addr.client req.client, Message.Reply reply)))
    | None -> ())
  else begin
    let session = Sessions.find st.sessions req.client in
    let plaintext_op =
      match session with
      | None -> None
      | Some keys ->
        if Session.request_auth_ok keys req then
          match
            Session.decrypt_op keys ~client:req.client ~timestamp:req.timestamp req.payload
          with
          | Ok op -> Some op
          | Error _ -> None
        else None
    in
    (match byz, plaintext_op with
    | Exec_leak, Some op ->
      (* Exfiltrate the decrypted operation into untrusted storage. *)
      Enclave.emit env
        (Wire.encode_output (Wire.Out_persist { tag = "exfil"; data = op }))
    | (Exec_honest | Exec_corrupt | Exec_leak), _ -> ());
    (* Corrupted operations are ordered but executed as a no-op (§4). *)
    let result =
      match byz, plaintext_op with
      | Exec_corrupt, Some _ -> "CORRUPT"
      | _, Some op -> st.app.State_machine.apply op
      | _, None -> State_machine.noop_result
    in
    st.executed_total <- st.executed_total + 1;
    match session with
    | None -> Client_table.record st.clients req.client req.timestamp None
    | Some keys ->
      let encrypted =
        Session.encrypt_result keys ~client:req.client ~timestamp:req.timestamp
          ~replica:st.cfg.id result
      in
      let reply =
        { Message.view = st.view;
          timestamp = req.timestamp;
          client = req.client;
          sender = st.cfg.id;
          result = encrypted;
          r_auth = "" }
      in
      let reply = Session.authenticate_reply keys reply in
      Client_table.record st.clients req.client req.timestamp (Some reply);
      Enclave.emit env
        (Wire.encode_output (Wire.Out_send (Addr.client req.client, Message.Reply reply)))
  end

let persist_effects env st =
  let c = Enclave.cost_model env in
  List.iter
    (fun (State_machine.Persist { tag; data }) ->
      (* One ocall per block, written sealed (sgx_tprotected_fs in the
         paper): block formation/write cost plus sealing (charged inside
         [Enclave.seal]) plus the ocall transition. *)
      Enclave.charge env c.ledger_block_us;
      let sealed = Enclave.seal env data in
      Enclave.ocall env (Wire.encode_output (Wire.Out_persist { tag; data = sealed })))
    (st.app.State_machine.drain_effects ())

let rec try_execute env st ~byz =
  let seq = st.last_executed + 1 in
  match Log.find st.decided seq with
  | None -> ()
  | Some digest ->
    let batch =
      if String.equal digest Message.empty_batch_digest then Some []
      else Hashtbl.find_opt st.batches digest
    in
    (match batch with
    | None ->
      (* Committed a digest without the bodies (re-proposed across a view
         change): fetch them, content-addressed, from peer Executions. *)
      if not (Hashtbl.mem st.fetching digest) then begin
        Hashtbl.replace st.fetching digest ();
        Enclave.emit env
          (Wire.encode_output
             (Wire.Out_broadcast
                (Message.Batch_fetch { bf_digest = digest; bf_requester = st.cfg.id })))
      end
    | Some batch ->
      st.last_executed <- seq;
      Hashtbl.replace st.executed_log seq digest;
      List.iter (execute_request env st ~byz) batch;
      persist_effects env st;
      send_checkpoint_if_due env st seq;
      try_execute env st ~byz)

(* Full-request PrePrepares are duplicated into this compartment's log so
   Commits (which carry only digests) can be executed. *)
let on_preprepare env st ~byz (pp : Message.preprepare) =
  Common.charge_verify env 1;
  if Validation.verify_preprepare st.prep_lookup pp then begin
    let digest = Message.digest_of_batch pp.batch in
    if not (Hashtbl.mem st.batches digest) then Hashtbl.replace st.batches digest pp.batch;
    try_execute env st ~byz
  end

(* Handler (4): a commit certificate decides a sequence number. *)
let on_commit env st ~byz (c : Message.commit) =
  Common.charge_verify env 1;
  if
    c.view = st.view && in_window st c.seq
    && (not (Log.mem st.decided c.seq))
    && Validation.verify_commit st.conf_lookup c
  then begin
    if Votes.add st.commits ~key:c.seq ~sender:c.sender c then begin
      let commits = Votes.get st.commits c.seq in
      if
        Validation.commit_quorum_complete ~quorum:(Config.quorum st.cfg) ~view:st.view
          ~seq:c.seq ~digest:c.digest commits
      then begin
        Log.set st.decided c.seq c.digest;
        try_execute env st ~byz
      end
    end
  end

(* Handler (7'): checkpoint-and-view part of a NewView. *)
let on_newview env st (nv : Message.newview) =
  if
    nv.nv_view >= st.view
    && Common.newview_shallow_ok env ~f:(Config.f st.cfg) ~n:st.cfg.n
         ~prep_lookup:st.prep_lookup ~conf_lookup:st.conf_lookup nv
  then begin
    ignore (Ckpt.absorb_newview st.ckpt nv);
    st.view <- nv.nv_view;
    Votes.reset st.commits;
    gc st (Ckpt.last_stable st.ckpt);
    Enclave.emit env (Wire.encode_output (Wire.Out_entered_view st.view))
  end

(* Session establishment (§4 step 1): quote, then receive the session keys
   through the attestation box, then acknowledge under the auth key. *)
let on_session_init env st (si : Message.session_init) =
  let sq =
    { Message.sq_replica = st.cfg.id;
      sq_quote = Enclave.quote env;
      sq_box_public = st.box.Box.public;
      sq_sig = "" }
  in
  let sq = { sq with sq_sig = Common.sign_with env (Message.session_quote_signing_bytes sq) } in
  Enclave.emit env
    (Wire.encode_output (Wire.Out_send (Addr.client si.si_client, Message.Session_quote sq)))

let on_session_key env st (sk : Message.session_key) =
  Enclave.charge env (Enclave.cost_model env).decrypt_request_us;
  if sk.sk_replica = st.cfg.id then begin
    match Box.decrypt st.box.Box.secret sk.sk_box with
    | Error _ -> ()
    | Ok provision -> (
      match Session.decode_provision provision with
      | Error _ -> ()
      | Ok keys when String.length keys.Session.enc > 0 ->
        Sessions.set st.sessions sk.sk_client keys;
        let sa = { Message.sa_replica = st.cfg.id; sa_client = sk.sk_client; sa_auth = "" } in
        let sa =
          { sa with
            sa_auth =
              Hmac.mac ~key:keys.Session.auth (Message.session_ack_auth_bytes sa) }
        in
        Enclave.emit env
          (Wire.encode_output
             (Wire.Out_send (Addr.client sk.sk_client, Message.Session_ack sa)))
      | Ok _ -> () (* a preparation-only provision is not for us *))
  end

let on_batch_fetch env st (bf : Message.batch_fetch) =
  Enclave.charge env 1.0;
  match Hashtbl.find_opt st.batches bf.bf_digest with
  | Some batch when bf.bf_requester <> st.cfg.id ->
    Enclave.emit env
      (Wire.encode_output
         (Wire.Out_send
            (Addr.replica bf.bf_requester, Message.Batch_data { bd_batch = batch })))
  | Some _ | None -> ()

let on_batch_data env st ~byz (bd : Message.batch_data) =
  Enclave.charge env 1.0;
  let digest = Message.digest_of_batch bd.bd_batch in
  if Hashtbl.mem st.fetching digest then begin
    Hashtbl.remove st.fetching digest;
    Hashtbl.replace st.batches digest bd.bd_batch;
    try_execute env st ~byz
  end

let handle env st ~byz (input : Wire.input) =
  match input with
  | Wire.In_batch _ | Wire.In_suspect _ -> ()
  | Wire.In_net msg -> (
    match msg with
    | Message.Preprepare pp -> on_preprepare env st ~byz pp
    | Message.Commit c -> on_commit env st ~byz c
    | Message.Batch_fetch bf -> on_batch_fetch env st bf
    | Message.Batch_data bd -> on_batch_data env st ~byz bd
    | Message.Newview nv -> on_newview env st nv
    | Message.Checkpoint ck ->
      Common.on_checkpoint env ~exec_lookup:st.exec_lookup st.ckpt ck
        ~on_stable:(fun stable -> gc st stable)
    | Message.Session_init si -> on_session_init env st si
    | Message.Session_key sk -> on_session_key env st sk
    | Message.Request _ | Message.Preprepare_digest _ | Message.Prepare _
    | Message.Reply _ | Message.Viewchange _ | Message.Session_quote _
    | Message.Session_ack _ ->
      ())

let make ?(byz = Exec_honest) (cfg : Config.t) ~app =
  let current = ref (create_state cfg ~app) in
  let program env =
    let st = create_state cfg ~app in
    current := st;
    fun payload ->
      match Wire.decode_input payload with
      | Error _ -> ()
      | Ok input -> handle env st ~byz input
  in
  let probe =
    { view = (fun () -> !current.view);
      last_executed = (fun () -> !current.last_executed);
      executed_total = (fun () -> !current.executed_total);
      executed_log =
        (fun () ->
          Hashtbl.fold (fun seq d acc -> (seq, d) :: acc) !current.executed_log []
          |> List.sort compare);
      app_digest = (fun () -> State_machine.digest !current.app);
      last_stable = (fun () -> Ckpt.last_stable !current.ckpt);
      sessions = (fun () -> Sessions.count !current.sessions) }
  in
  (program, probe)
