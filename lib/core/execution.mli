(** Execution compartment: event handlers 4 and 8 (and the duplicated
    9, 7') of Figure 2.

    Holds the application state and the client session keys.  It collects
    commit certificates (2f+1 matching Commits from distinct Confirmation
    enclaves), matches them with the full-request PrePrepares duplicated
    into its input log, then decrypts, deduplicates and executes client
    operations in sequence order, sending back encrypted, authenticated
    replies.  Corrupted operations (bad authenticator or undecryptable
    payload) execute as no-ops.  It originates Checkpoints every
    [checkpoint_interval] batches, and — for the ledger application —
    writes each closed block to untrusted storage through a sealed ocall,
    the per-block cost visible in Figure 3. *)

module Enclave = Splitbft_tee.Enclave
module Ids = Splitbft_types.Ids

type byz =
  | Exec_honest
  | Exec_leak
      (** behaves correctly but exfiltrates decrypted operation plaintexts
          to untrusted storage — the confidentiality failure of a faulty
          Execution enclave (the [0_exec] entry of Table 1) *)
  | Exec_corrupt  (** executes correctly-authenticated wrong results *)
  | Exec_lie_checkpoint
      (** signs checkpoints over a fabricated state digest, trying to
          stabilize a state no honest replica has — contained because
          stability needs a quorum of matching digests *)

type probe = {
  view : unit -> int;
  last_executed : unit -> Ids.seqno;
  executed_total : unit -> int;
  executed_log : unit -> (Ids.seqno * string) list;  (** (seq, batch digest) *)
  app_digest : unit -> string;
  last_stable : unit -> Ids.seqno;
  sessions : unit -> int;
}

val make :
  ?byz:byz ->
  Config.t ->
  app:(unit -> Splitbft_app.State_machine.t) ->
  Enclave.program * probe
(** [app] is a factory so an enclave restart gets a fresh instance (state
    recovery goes through checkpoints/sealing, not process memory). *)
