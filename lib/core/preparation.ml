module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Validation = Splitbft_types.Validation
module Session = Splitbft_types.Session
module Keys = Splitbft_types.Keys
module Addr = Splitbft_types.Addr
module Enclave = Splitbft_tee.Enclave
module Signature = Splitbft_crypto.Signature
module Box = Splitbft_crypto.Box
module Hmac = Splitbft_crypto.Hmac
module Log = Splitbft_consensus.Log
module Votes = Splitbft_consensus.Votes
module Ckpt = Splitbft_consensus.Ckpt
module Client_table = Splitbft_consensus.Client_table
module Sessions = Splitbft_consensus.Sessions
module Proofs = Splitbft_consensus.Proofs
module Newview_logic = Splitbft_consensus.Newview
module Rng = Splitbft_util.Rng
module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader

type byz = Prep_honest | Prep_equivocate | Prep_corrupt_digest

type probe = {
  view : unit -> int;
  next_seq : unit -> int;
  last_stable : unit -> int;
  sessions : unit -> int;
  parked : unit -> int;
  lane_cursors : unit -> int list;
}

type state = {
  cfg : Config.t;
  prep_lookup : Validation.key_lookup;
  conf_lookup : Validation.key_lookup;
  exec_lookup : Validation.key_lookup;
  box : Box.keypair;
  mutable view : Ids.view;
  mutable next_seq : Ids.seqno;
  (* Per-lane issuance cursors.  Sequence number [s] belongs to lane
     [(s - 1) mod lanes]; [lane_next.(l)] is the smallest unissued seqno
     of lane [l].  Issuance always takes the globally smallest cursor, so
     issued seqnos stay contiguous and [next_seq] remains the minimum over
     all lanes — which is also what the recovery image stores; the
     per-lane cursors re-derive from it via [realign_lanes]. *)
  lane_next : Ids.seqno array;
  (* Batches that arrived while the acceptance window was full, waiting
     for checkpoint stabilization to slide it forward (oldest first). *)
  mutable parked : Message.request list list;
  (* Preprepares/Prepares addressed just above the window's high edge:
     their sender's checkpoint stabilised before ours did.  Parked until
     our own window slides — dropping them would strand the seqno until a
     view change (the receiver-side half of the window-edge stall). *)
  mutable ahead : Message.t list;
  (* in_prep: own and accepted proposals plus the duplicated prepare log *)
  preprepares : Message.preprepare Log.t;
  prepares : (Ids.seqno, Message.prepare) Votes.t;
  assigned : Client_table.t;  (* client timestamps already given a seqno *)
  sessions : string Sessions.t;  (* client auth keys *)
  viewchanges : (Ids.view, Message.viewchange) Votes.t;
  ckpt : Ckpt.t;
  mutable instance_nonce : string;
  mutable halted : bool;
}

let create_state (cfg : Config.t) =
  if cfg.lanes < 1 then invalid_arg "Preparation: lanes must be >= 1";
  { cfg;
    prep_lookup = Config.prep_public ~n:cfg.n;
    conf_lookup = Config.conf_public ~n:cfg.n;
    exec_lookup = Config.exec_public ~n:cfg.n;
    box = Box.derive ~seed:(Keys.enclave_box_seed cfg.id Ids.Preparation);
    view = 0;
    next_seq = 1;
    lane_next = Array.init cfg.lanes (fun l -> l + 1);
    parked = [];
    ahead = [];
    preprepares = Log.create ~window:cfg.watermark_window ();
    prepares = Votes.create ~size:128 ();
    assigned = Client_table.create ();
    sessions = Sessions.create ();
    viewchanges = Votes.create ~size:4 ();
    ckpt = Ckpt.create ~quorum:(Config.quorum cfg);
    instance_nonce = "";
    halted = false }

let is_primary st = Config.primary_of_view st.cfg st.view = st.cfg.id
let in_window st seq = Log.in_window st.preprepares seq

(* Reset every lane cursor to the smallest lane-congruent seqno above
   [base] — the per-lane equivalent of [next_seq <- base + 1].  Used
   wherever the single-lane path resets [next_seq]: checkpoint GC, view
   entry, and recovery from a sealed checkpoint. *)
let realign_lanes st base =
  let k = Array.length st.lane_next in
  for l = 0 to k - 1 do
    st.lane_next.(l) <- base + 1 + ((((l - base) mod k) + k) mod k)
  done

(* Take the globally smallest unissued seqno and advance its lane. *)
let take_next_seq st =
  let k = Array.length st.lane_next in
  let seq = st.next_seq in
  let lane = (seq - 1) mod k in
  assert (st.lane_next.(lane) = seq);
  st.lane_next.(lane) <- seq + k;
  st.next_seq <- seq + 1;
  seq

let charge_client_auth env st count =
  Enclave.charge_crypto env
    ((Enclave.cost_model env).client_auth_us *. float_of_int count);
  ignore st

let request_ok st (r : Message.request) =
  match Sessions.find st.sessions r.client with
  | None -> false
  | Some auth_key ->
    Hmac.verify ~key:auth_key ~msg:(Message.request_auth_bytes r) ~tag:r.auth

let sign_pp env pp =
  { pp with Message.pp_sig = Common.sign_with env (Message.preprepare_signing_bytes pp) }

(* A byzantine primary enclave equivocates: two conflicting proposals for
   one sequence number, each unicast to half the replicas (including this
   replica itself, so its own sibling compartments see one version too). *)
let equivocate env st seq batch =
  let pp_a = sign_pp env { Message.view = st.view; seq; batch; sender = st.cfg.id; pp_sig = "" } in
  (* The conflicting proposal is the (valid) empty batch, so honest
     receivers cannot reject it on client-authentication grounds. *)
  let pp_b = sign_pp env { Message.view = st.view; seq; batch = []; sender = st.cfg.id; pp_sig = "" } in
  Log.set st.preprepares seq pp_a;
  for j = 0 to st.cfg.n - 1 do
    let pp = if j mod 2 = 1 then pp_a else pp_b in
    Enclave.emit env
      (Wire.encode_output (Wire.Out_send (Addr.replica j, Message.Preprepare pp)))
  done

(* A byzantine primary enclave with a lying digest: it signs a proposal
   whose digest matches no batch any client ever authorized, and unicasts
   it in digest form so no environment can attach a plausible body.
   Honest Confirmations may log the digest, but no honest Preparation
   ever sees a matching PrePrepare — the prepare certificate cannot
   complete, and no Execution can ever fetch a batch for it.  The slot
   stalls: a liveness attack whose harmlessness to safety the model
   checker establishes. *)
let corrupt_digest env st seq =
  let phantom =
    [ { Message.client = 0; timestamp = 0L; payload = "corrupt-digest"; auth = "" } ]
  in
  let pd =
    { Message.pd_view = st.view;
      pd_seq = seq;
      pd_digest = Message.digest_of_batch phantom;
      pd_sender = st.cfg.id;
      pd_sig = "" }
  in
  let pd =
    { pd with
      Message.pd_sig = Common.sign_with env (Message.preprepare_digest_signing_bytes pd) }
  in
  for j = 0 to st.cfg.n - 1 do
    Enclave.emit env
      (Wire.encode_output (Wire.Out_send (Addr.replica j, Message.Preprepare_digest pd)))
  done

(* Handler (1): batch from the environment — primary only.  A batch that
   arrives while the acceptance window is full is parked, not dropped:
   checkpoint stabilization slides the window forward and
   [drain_parked] re-drives it (previously such batches were silently
   lost and only a client retransmit could revive them — the
   watermark-edge leader stall). *)
let on_batch env st ~byz ?(elide = true) reqs =
  if is_primary st then begin
    if not (in_window st st.next_seq) then begin
      if List.length st.parked < Log.window st.preprepares then
        st.parked <- st.parked @ [ reqs ]
    end
    else begin
      charge_client_auth env st (List.length reqs);
      let fresh (r : Message.request) =
        request_ok st r && not (Client_table.already_assigned st.assigned r.client r.timestamp)
      in
      let batch = List.filter fresh reqs in
      if batch <> [] then begin
        List.iter
          (fun (r : Message.request) ->
            Client_table.note_assigned st.assigned r.client r.timestamp)
          batch;
        let seq = take_next_seq st in
        match byz with
        | Prep_equivocate -> equivocate env st seq batch
        | Prep_corrupt_digest -> corrupt_digest env st seq
        | Prep_honest ->
          let pp =
            sign_pp env { Message.view = st.view; seq; batch; sender = st.cfg.id; pp_sig = "" }
          in
          Log.set st.preprepares seq pp;
          let wire =
            (* Body elision: the signature covers the digest form (see
               [Message.signing_bytes_of_proposal]), so when freshness
               filtering dropped nothing the broker — which copied this
               exact batch in one ecall ago — re-attaches the body outside
               the boundary instead of paying to copy it back out.
               Receivers verify the signed digest against the re-attached
               body, so a confused or malicious broker can only make the
               proposal fail verification, never change what is ordered. *)
            if elide && Config.hotpath st.cfg && List.length batch = List.length reqs
            then Message.Preprepare_digest (Message.summarize pp)
            else Message.Preprepare pp
          in
          Enclave.emit env (Wire.encode_output (Wire.Out_broadcast wire))
      end
    end
  end

(* Re-drive parked batches once the window has room again. *)
let drain_parked env st ~byz =
  let rec go () =
    match st.parked with
    | reqs :: rest when is_primary st && in_window st st.next_seq ->
      st.parked <- rest;
      (* Drained outside the In_batch ecall that carried the body, so the
         broker can no longer re-attach it: send the full form. *)
      on_batch env st ~byz ~elide:false reqs;
      go ()
    | _ -> ()
  in
  go ()

(* Handler (2): PrePrepare from the primary — backups answer with a
   Prepare.  Authentication of the batched client requests is charged; an
   individual corrupted operation is still ordered and later no-oped by
   Execution (§4), so it does not invalidate the proposal. *)
let accept_preprepare env st (pp : Message.preprepare) ~digest =
  Log.set st.preprepares pp.seq pp;
  let p = { Message.view = st.view; seq = pp.seq; digest; sender = st.cfg.id; p_sig = "" } in
  let p = { p with p_sig = Common.sign_with env (Message.prepare_signing_bytes p) } in
  ignore (Votes.add st.prepares ~key:pp.seq ~sender:st.cfg.id p);
  Enclave.emit env (Wire.encode_output (Wire.Out_broadcast (Message.Prepare p)))

let preprepare_plausible st (pp : Message.preprepare) =
  pp.view = st.view
  && pp.sender = Config.primary_of_view st.cfg st.view
  && pp.sender <> st.cfg.id
  && in_window st pp.seq
  && not (Log.mem st.preprepares pp.seq)

let park_ahead st msg =
  if List.length st.ahead < Log.window st.preprepares then
    st.ahead <- st.ahead @ [ msg ]

let on_preprepare env st (pp : Message.preprepare) =
  if pp.view = st.view && Log.ahead_of_window st.preprepares pp.seq then
    park_ahead st (Message.Preprepare pp)
  else if Config.hotpath st.cfg then begin
    (* Cheap structural checks before any crypto is charged; the batch is
       hashed once and the digest reused for signature check and Prepare. *)
    if preprepare_plausible st pp then begin
      charge_client_auth env st (List.length pp.batch);
      let digest = Common.digest_of_batch_c env pp.batch in
      if Common.verify_preprepare_c env st.prep_lookup pp ~digest then
        accept_preprepare env st pp ~digest
    end
  end
  else begin
    Common.charge_verify env 1;
    charge_client_auth env st (List.length pp.batch);
    if preprepare_plausible st pp && Validation.verify_preprepare st.prep_lookup pp
    then accept_preprepare env st pp ~digest:(Message.digest_of_batch pp.batch)
  end

(* Prepares are duplicated into this compartment's input log (P3). *)
let on_prepare env st (p : Message.prepare) =
  if p.view = st.view && Log.ahead_of_window st.preprepares p.seq then
    park_ahead st (Message.Prepare p)
  else if Config.hotpath st.cfg then begin
    if
      p.view = st.view
      && in_window st p.seq
      && (not (Votes.mem st.prepares ~key:p.seq ~sender:p.sender))
      && Common.verify_prepare_c env st.prep_lookup p
    then ignore (Votes.add st.prepares ~key:p.seq ~sender:p.sender p)
  end
  else begin
    Common.charge_verify env 1;
    if p.view = st.view && in_window st p.seq && Validation.verify_prepare st.prep_lookup p
    then ignore (Votes.add st.prepares ~key:p.seq ~sender:p.sender p)
  end

(* Re-inject messages that were ahead of the window before it slid; any
   still ahead simply re-park. *)
let drain_ahead env st =
  let pending = st.ahead in
  st.ahead <- [];
  List.iter
    (function
      | Message.Preprepare pp -> on_preprepare env st pp
      | Message.Prepare p -> on_prepare env st p
      | _ -> ())
    pending

let gc st stable =
  Log.advance_low_mark st.preprepares stable;
  Log.prune st.preprepares ~upto:stable;
  Votes.prune st.prepares ~keep:(fun seq -> seq > stable);
  if st.next_seq <= stable then begin
    st.next_seq <- stable + 1;
    realign_lanes st stable
  end

(* ----- rollback-protected sealed checkpoints -----

   Sealed at every checkpoint stabilization, bound to this compartment's
   own monotonic counter (the counter namespace is per-measurement, so the
   three compartments of one replica do not collide). *)

let encode_recovery_image ~counter st =
  W.to_string
    (fun w () ->
      W.u64 w counter;
      W.varint w st.view;
      W.varint w st.next_seq;
      W.varint w (Ckpt.last_stable st.ckpt);
      W.list w
        (fun w (c, auth) ->
          W.varint w c;
          W.bytes w auth)
        (Sessions.fold (fun c k acc -> (c, k) :: acc) st.sessions []))
    ()

let decode_recovery_image s =
  R.parse
    (fun r ->
      let counter = R.u64 r in
      let view = R.varint r in
      let next_seq = R.varint r in
      let last_stable = R.varint r in
      let sessions =
        R.list r (fun r ->
            let c = R.varint r in
            let auth = R.bytes r in
            (c, auth))
      in
      (counter, view, next_seq, last_stable, sessions))
    s

let seal_checkpoint_state env st =
  let counter = Enclave.counter_increment env "ckpt" in
  let sealed = Enclave.seal env (encode_recovery_image ~counter st) in
  Enclave.ocall env
    (Wire.encode_output (Wire.Out_persist { tag = "ckpt:preparation"; data = sealed }))

let on_recover env st blob_opt =
  let refuse reason =
    st.halted <- true;
    Enclave.emit env (Wire.encode_output (Wire.Out_alert reason))
  in
  (* One-slot tolerance: the counter bumps inside the seal but the blob is
     persisted asynchronously by the untrusted host, so a crash can
     legitimately lose the newest seal (see Execution.on_recover). *)
  let counter = Enclave.counter_read env "ckpt" in
  match blob_opt with
  | None ->
    if Int64.compare counter 1L > 0 then
      refuse
        (Printf.sprintf
           "preparation: rollback detected — counter at %Ld but no sealed checkpoint offered"
           counter)
  | Some sealed -> (
    match Enclave.unseal env sealed with
    | Error e -> refuse ("preparation: sealed checkpoint rejected: " ^ e)
    | Ok blob -> (
      match decode_recovery_image blob with
      | Error e -> refuse ("preparation: sealed checkpoint malformed: " ^ e)
      | Ok (sealed_counter, view, next_seq, last_stable, sessions) ->
        if
          Int64.compare sealed_counter counter <> 0
          && Int64.compare sealed_counter (Int64.pred counter) <> 0
        then
          refuse
            (Printf.sprintf
               "preparation: rollback detected — sealed checkpoint bound to counter %Ld, \
                platform counter is %Ld"
               sealed_counter counter)
        else begin
          st.view <- view;
          st.next_seq <- next_seq;
          (* The image stores only the minimum cursor; each lane's cursor
             re-derives as the smallest lane-congruent seqno at or above
             it, exactly as the single-lane path resumes from next_seq. *)
          realign_lanes st (next_seq - 1);
          List.iter (fun (c, auth) -> Sessions.set st.sessions c auth) sessions;
          Ckpt.force_stable st.ckpt last_stable;
          Log.advance_low_mark st.preprepares last_stable
        end))

let enter_view env st ~view ~max_s =
  st.view <- view;
  st.next_seq <- max max_s (Ckpt.last_stable st.ckpt) + 1;
  realign_lanes st (st.next_seq - 1);
  (* Parked batches belong to the dead view's primary; the clients'
     retransmissions re-drive them through the new one. *)
  st.parked <- [];
  st.ahead <- [];
  Log.reset st.preprepares;
  Votes.reset st.prepares;
  (* Requests assigned in the dead view may have been lost with it; allow
     client retransmissions to be ordered again (Execution deduplicates by
     timestamp, so re-ordering cannot double-execute). *)
  Client_table.reset_assignments st.assigned;
  Enclave.emit env (Wire.encode_output (Wire.Out_entered_view view))

(* Handler (6): quorum of ViewChanges — the new primary emits a NewView. *)
let maybe_send_newview env st target =
  if Config.primary_of_view st.cfg target = st.cfg.id && target >= st.view then begin
    let vcs = Votes.get st.viewchanges target in
    if List.length vcs >= Config.quorum st.cfg then begin
      let min_s, max_s, pds =
        Newview_logic.compute ~view:target ~sender:st.cfg.id vcs
      in
      Common.charge_sign env (List.length pds);
      let signed_pds =
        List.map
          (fun (pd : Message.preprepare_digest) ->
            { pd with
              Message.pd_sig =
                Signature.sign (Enclave.env_keypair env).Signature.secret
                  (Message.preprepare_digest_signing_bytes pd) })
          pds
      in
      let nv =
        { Message.nv_view = target;
          nv_viewchanges = vcs;
          nv_preprepares = signed_pds;
          nv_sender = st.cfg.id;
          nv_sig = "" }
      in
      let nv = { nv with nv_sig = Common.sign_with env (Message.newview_signing_bytes nv) } in
      ignore min_s;
      Enclave.emit env (Wire.encode_output (Wire.Out_broadcast (Message.Newview nv)));
      enter_view env st ~view:target ~max_s
    end
  end

let on_viewchange env st (vc : Message.viewchange) =
  let deep_ok =
    if Config.hotpath st.cfg then
      vc.vc_new_view >= st.view
      && Common.verify_viewchange_deep_c env ~f:(Config.f st.cfg)
           ~vc_lookup:st.conf_lookup ~ckpt_lookup:st.exec_lookup
           ~proof_lookup:st.prep_lookup vc
    else begin
      Common.charge_verify env (Proofs.viewchange_sig_count vc);
      vc.vc_new_view >= st.view
      && Validation.verify_viewchange_deep ~f:(Config.f st.cfg) ~vc_lookup:st.conf_lookup
           ~ckpt_lookup:st.exec_lookup ~proof_lookup:st.prep_lookup vc
    end
  in
  if deep_ok then begin
    if Votes.add st.viewchanges ~key:vc.vc_new_view ~sender:vc.vc_sender vc then
      maybe_send_newview env st vc.vc_new_view
  end

(* Handler (7): full NewView validation — including recomputing the
   re-issued PrePrepares, the logic the paper notes is repeated here.  On
   the hot path the deep re-check of each embedded ViewChange resolves
   through the verified-digest cache: a quorum already deep-verified on
   individual arrival costs one cache lookup per ViewChange. *)
let on_newview env st (nv : Message.newview) =
  let f = Config.f st.cfg in
  let valid =
    if Config.hotpath st.cfg then
      nv.nv_view >= st.view
      && nv.nv_sender = Config.primary_of_view st.cfg nv.nv_view
      && nv.nv_sender <> st.cfg.id
      && List.length nv.nv_viewchanges >= Config.quorum st.cfg
      && Common.verify_newview_c env st.prep_lookup nv
      && List.for_all
           (Common.verify_viewchange_deep_c env ~f ~vc_lookup:st.conf_lookup
              ~ckpt_lookup:st.exec_lookup ~proof_lookup:st.prep_lookup)
           nv.nv_viewchanges
    else begin
      Common.charge_verify env (Proofs.newview_sig_count nv);
      nv.nv_view >= st.view
      && nv.nv_sender = Config.primary_of_view st.cfg nv.nv_view
      && nv.nv_sender <> st.cfg.id
      && Validation.verify_newview st.prep_lookup nv
      && List.length nv.nv_viewchanges >= Config.quorum st.cfg
      && List.for_all
           (Validation.verify_viewchange_deep ~f ~vc_lookup:st.conf_lookup
              ~ckpt_lookup:st.exec_lookup ~proof_lookup:st.prep_lookup)
           nv.nv_viewchanges
    end
  in
  if valid then begin
    let _min_s, max_s, expected =
      Newview_logic.compute ~view:nv.nv_view ~sender:nv.nv_sender nv.nv_viewchanges
    in
    if Newview_logic.matches ~expected ~actual:nv.nv_preprepares then begin
      ignore (Ckpt.absorb_newview st.ckpt nv);
      enter_view env st ~view:nv.nv_view ~max_s;
      gc st (Ckpt.last_stable st.ckpt);
      (* Re-issue Prepares for the NewView's proposals (backup role). *)
      Common.charge_sign env (List.length nv.nv_preprepares);
      List.iter
        (fun (pd : Message.preprepare_digest) ->
          let p =
            { Message.view = st.view;
              seq = pd.pd_seq;
              digest = pd.pd_digest;
              sender = st.cfg.id;
              p_sig = "" }
          in
          let p =
            { p with
              p_sig =
                Signature.sign (Enclave.env_keypair env).Signature.secret
                  (Message.prepare_signing_bytes p) }
          in
          ignore (Votes.add st.prepares ~key:p.seq ~sender:st.cfg.id p);
          Enclave.emit env (Wire.encode_output (Wire.Out_broadcast (Message.Prepare p))))
        nv.nv_preprepares
    end
  end

(* Session establishment: the client attests this enclave and provisions
   its request-authentication key. *)
let on_session_init env st (si : Message.session_init) =
  let keypair = Enclave.env_keypair env in
  let sq =
    { Message.sq_replica = st.cfg.id;
      sq_quote = Enclave.quote env;
      sq_box_public = st.box.Box.public;
      sq_nonce = st.instance_nonce;
      sq_sig = "" }
  in
  let sq = { sq with sq_sig = Common.sign_with env (Message.session_quote_signing_bytes sq) } in
  ignore keypair;
  Enclave.emit env
    (Wire.encode_output (Wire.Out_send (Addr.client si.si_client, Message.Session_quote sq)))

let on_session_key env st (sk : Message.session_key) =
  Enclave.charge_crypto env (Enclave.cost_model env).decrypt_request_us;
  if sk.sk_replica = st.cfg.id then begin
    match Box.decrypt st.box.Box.secret sk.sk_box with
    | Error _ -> ()
    | Ok provision -> (
      match Session.decode_provision provision with
      | Error _ -> ()
      | Ok keys -> Sessions.set st.sessions sk.sk_client keys.Session.auth)
  end

let handle env st ~byz (input : Wire.input) =
  if st.halted then ()
  else
    match input with
    | Wire.In_batch reqs -> on_batch env st ~byz reqs
    | Wire.In_suspect _ -> ()  (* suspicion is the Confirmation compartment's trigger *)
    | Wire.In_ledger _ -> ()  (* the ledger belongs to Execution *)
    | Wire.In_recover blob -> on_recover env st blob
    | Wire.In_net msg -> (
      match msg with
      | Message.Preprepare pp -> on_preprepare env st pp
      | Message.Prepare p -> on_prepare env st p
      | Message.Viewchange vc -> on_viewchange env st vc
      | Message.Newview nv -> on_newview env st nv
      | Message.Checkpoint ck ->
        Common.on_checkpoint env ~hotpath:(Config.hotpath st.cfg)
          ~exec_lookup:st.exec_lookup st.ckpt ck
          ~on_stable:(fun stable ->
            gc st stable;
            (* The window just slid forward: re-drive any batch that was
               parked against its edge before sealing the new state. *)
            drain_parked env st ~byz;
            drain_ahead env st;
            seal_checkpoint_state env st)
      | Message.Session_init si -> on_session_init env st si
      | Message.Session_key sk -> on_session_key env st sk
      | Message.Request _ | Message.Preprepare_digest _ | Message.Commit _
      | Message.Reply _ | Message.Session_quote _ | Message.Session_ack _
      | Message.Batch_fetch _ | Message.Batch_data _ | Message.State_request _
      | Message.State_reply _ | Message.Ledger_subscribe _
      | Message.Ledger_feed _ | Message.Read_request _ | Message.Read_reply _ ->
        ())

let make ?(byz = Prep_honest) (cfg : Config.t) =
  let current = ref (create_state cfg) in
  let program env =
    let st = create_state cfg in
    st.instance_nonce <- Rng.bytes (Enclave.env_rng env) 16;
    current := st;
    fun payload ->
      match Wire.decode_input payload with
      | Error _ -> ()  (* garbage from a malicious environment *)
      | Ok input -> handle env st ~byz input
  in
  let probe =
    { view = (fun () -> !current.view);
      next_seq = (fun () -> !current.next_seq);
      last_stable = (fun () -> Ckpt.last_stable !current.ckpt);
      sessions = (fun () -> Sessions.count !current.sessions);
      parked = (fun () -> List.length !current.parked);
      lane_cursors = (fun () -> Array.to_list !current.lane_next) }
  in
  (program, probe)
