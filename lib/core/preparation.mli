(** Preparation compartment: event handlers 1, 2, 6, 7 (and the duplicated
    9, 7') of Figure 2.

    On the primary it authenticates client requests, assigns sequence
    numbers and emits signed PrePrepares; on backups it validates the
    primary's PrePrepares and emits Prepares.  It also creates NewViews
    (as the new primary) from quorums of ViewChanges, and fully validates
    incoming NewViews — including recomputing the re-issued PrePrepares.
    Client session auth keys are provisioned to it through the attestation
    handshake so it can authenticate encrypted requests without seeing
    their plaintext. *)

module Enclave = Splitbft_tee.Enclave

type byz =
  | Prep_honest
  | Prep_equivocate
      (** as primary, assign the same sequence number to two conflicting
          batches and show each to a different subset of replicas — the
          equivocation a byzantine Preparation enclave can attempt *)
  | Prep_corrupt_digest
      (** as primary, sign proposals whose batch digest matches no batch
          any client authorized — the slot can never prepare or execute,
          a pure liveness attack *)

type probe = {
  view : unit -> int;
  next_seq : unit -> int;
  last_stable : unit -> int;
  sessions : unit -> int;
  parked : unit -> int;  (** batches waiting for window space *)
  lane_cursors : unit -> int list;  (** per-lane next unissued seqno *)
}

val make : ?byz:byz -> Config.t -> Enclave.program * probe
(** The probe is a test/measurement tap (reads the state of the most
    recently instantiated program); it has no in-protocol role. *)
