module Ids = Splitbft_types.Ids
module Keys = Splitbft_types.Keys
module Enclave_identity = Splitbft_types.Enclave_identity
module Enclave = Splitbft_tee.Enclave
module Platform = Splitbft_tee.Platform

type t = {
  cfg : Config.t;
  platform : Platform.t;
  prep : Enclave.t;
  conf : Enclave.t;
  exec : Enclave.t;
  prep_probe : Preparation.probe;
  conf_probe : Confirmation.probe;
  exec_probe : Execution.probe;
  prep_program : Enclave.program;
  conf_program : Enclave.program;
  exec_program : Enclave.program;
  broker : Broker.t;
}

let create ?(prep_byz = Preparation.Prep_honest) ?(conf_byz = Confirmation.Conf_honest)
    ?(exec_byz = Execution.Exec_honest) engine net (cfg : Config.t) ~app =
  if cfg.n < 4 then invalid_arg "Splitbft.Replica.create: need n >= 4";
  let platform = Platform.create engine ~id:cfg.id in
  let prep_program, prep_probe = Preparation.make ~byz:prep_byz cfg in
  let conf_program, conf_probe = Confirmation.make ~byz:conf_byz cfg in
  let exec_program, exec_probe = Execution.make ~byz:exec_byz cfg ~app in
  let make_enclave compartment program =
    (* Only Execution hosts a worker pool: it is where application work
       parallelizes; protocol compartments stay single-threaded. *)
    let workers =
      match compartment with Ids.Execution -> cfg.exec_workers | _ -> 1
    in
    Enclave.create platform ~verify_cache_capacity:cfg.verify_cache_capacity
      ~workers
      ~name:
        (Printf.sprintf "replica%d-%s" cfg.id (Ids.compartment_name compartment))
      ~measurement:(Enclave_identity.of_compartment compartment)
      ~cost_model:cfg.cost
      ~key_seed:(Keys.enclave_signing_seed cfg.id compartment)
      ~program
  in
  let prep = make_enclave Ids.Preparation prep_program in
  let conf = make_enclave Ids.Confirmation conf_program in
  let exec = make_enclave Ids.Execution exec_program in
  let enclave_of = function
    | Ids.Preparation -> prep
    | Ids.Confirmation -> conf
    | Ids.Execution -> exec
  in
  let broker = Broker.create engine net cfg ~enclave_of in
  { cfg;
    platform;
    prep;
    conf;
    exec;
    prep_probe;
    conf_probe;
    exec_probe;
    prep_program;
    conf_program;
    exec_program;
    broker }

let id t = t.cfg.id
let config t = t.cfg

let enclave t = function
  | Ids.Preparation -> t.prep
  | Ids.Confirmation -> t.conf
  | Ids.Execution -> t.exec

let broker t = t.broker
let view t = t.exec_probe.Execution.view ()
let last_executed t = t.exec_probe.Execution.last_executed ()
let executed_count t = t.exec_probe.Execution.executed_total ()
let executed_log t = t.exec_probe.Execution.executed_log ()
let app_digest t = t.exec_probe.Execution.app_digest ()
let persisted t = Broker.persisted t.broker
let prep_probe t = t.prep_probe
let conf_probe t = t.conf_probe
let exec_probe t = t.exec_probe
let crash_host t =
  Broker.crash t.broker;
  (* The host's enclaves stop receiving ecalls with it; reset their pool
     backlog gauges so no dashboard sample shows the dead incarnation. *)
  List.iter (fun c -> Enclave.quiesce (enclave t c)) Ids.all_compartments
let host_crashed t = Broker.is_crashed t.broker
let set_env_fault t fault = Broker.set_fault t.broker fault
let crash_enclave t compartment = Enclave.crash (enclave t compartment)

let program_of t = function
  | Ids.Preparation -> t.prep_program
  | Ids.Confirmation -> t.conf_program
  | Ids.Execution -> t.exec_program

let restart_enclave t compartment =
  Enclave.restart (enclave t compartment) ~program:(program_of t compartment)

let restart_host t =
  (* Fresh enclave incarnations first (handlers cleared, programs re-armed),
     then the broker's recovery handshake feeds them their sealed state. *)
  List.iter (restart_enclave t) Ids.all_compartments;
  Broker.restart t.broker

let tamper_counter t compartment name =
  Enclave.tamper_counter (enclave t compartment) name

let recovery_alerts t = Broker.alerts t.broker
let recovered t = Broker.recovered t.broker

let subvert_enclave t compartment program = Enclave.subvert (enclave t compartment) program

let ecall_stats t compartment =
  let e = enclave t compartment in
  (Enclave.ecall_count e, Enclave.ecall_total_us e, Enclave.ecall_durations e)

let reset_ecall_stats t =
  Enclave.reset_stats t.prep;
  Enclave.reset_stats t.conf;
  Enclave.reset_stats t.exec
