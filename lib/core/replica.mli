(** A SplitBFT replica: one platform hosting the Preparation, Confirmation
    and Execution enclaves plus the untrusted broker.

    This is the unit the harness deploys.  Fault injection covers the whole
    paper model: host (environment) crashes and misbehaviour, enclave
    crashes, and byzantine enclaves (adversarial programs that keep the
    enclave's own keys — they can equivocate but cannot forge other
    enclaves' signatures). *)

module Ids = Splitbft_types.Ids
module Enclave = Splitbft_tee.Enclave

type t

val create :
  ?prep_byz:Preparation.byz ->
  ?conf_byz:Confirmation.byz ->
  ?exec_byz:Execution.byz ->
  Splitbft_sim.Engine.t ->
  Splitbft_sim.Network.t ->
  Config.t ->
  app:(unit -> Splitbft_app.State_machine.t) ->
  t
(** The [*_byz] arguments deploy adversarial compartment programs from the
    start (a compromised-at-deployment enclave, keeping its own keys). *)

val id : t -> Ids.replica_id
val config : t -> Config.t
val enclave : t -> Ids.compartment -> Enclave.t
val broker : t -> Broker.t

(** {2 Introspection (probes; test/measurement only)} *)

val view : t -> Ids.view
(** The Execution compartment's view. *)

val last_executed : t -> Ids.seqno
val executed_count : t -> int
val executed_log : t -> (Ids.seqno * string) list
val app_digest : t -> string
val persisted : t -> (string * string) list
val prep_probe : t -> Preparation.probe
val conf_probe : t -> Confirmation.probe
val exec_probe : t -> Execution.probe

(** {2 Fault injection} *)

val crash_host : t -> unit
val host_crashed : t -> bool
val set_env_fault : t -> Broker.fault -> unit
val crash_enclave : t -> Ids.compartment -> unit

val restart_enclave : t -> Ids.compartment -> unit
(** Reboot the compartment with a fresh program instance (the enclave
    recovery path of §4's discussion). *)

val restart_host : t -> unit
(** Full crash-recovery: reboot all three enclaves with fresh program
    instances, then run the broker's recovery handshake — each compartment
    unseals its newest checkpoint, verifies it against its rollback
    counter, and Execution state-transfers from its peers before the
    replica rejoins quorums.  No-op unless {!crash_host} happened. *)

val tamper_counter : t -> Ids.compartment -> string -> unit
(** Rollback attack: reset one of the compartment's named monotonic
    counters behind its back (e.g. ["ckpt"]).  A subsequent recovery must
    refuse the stale state. *)

val recovery_alerts : t -> string list
(** Safety alerts the compartments raised (rollback refusals etc.),
    oldest first. *)

val recovered : t -> bool
(** True once a host restart finished recovery and caught up. *)

val subvert_enclave : t -> Ids.compartment -> Enclave.program -> unit

(** {2 Per-enclave ecall accounting (Figure 4)} *)

val ecall_stats : t -> Ids.compartment -> int * float * Splitbft_util.Stats.t
(** (count, total µs, per-ecall durations). *)

val reset_ecall_stats : t -> unit
