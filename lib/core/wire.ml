module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader
module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message
module Trace_ctx = Splitbft_obs.Trace_ctx

type input =
  | In_net of Message.t
  | In_batch of Message.request list
  | In_suspect of Ids.view
  | In_recover of string option
  | In_ledger of (string * string) list

type output =
  | Out_send of int * Message.t
  | Out_broadcast of Message.t
  | Out_persist of { tag : string; data : string }
  | Out_entered_view of Ids.view
  | Out_alert of string
  | Out_recovered

let input_into w input =
  match input with
  | In_net msg ->
    W.u8 w 1;
    W.nested w Message.encode_into msg
  | In_batch reqs ->
    W.u8 w 2;
    W.list w (fun w r -> W.nested w Message.encode_request_into r) reqs
  | In_suspect view ->
    W.u8 w 3;
    W.varint w view
  | In_recover blob ->
    W.u8 w 4;
    (match blob with
    | None -> W.u8 w 0
    | Some b ->
      W.u8 w 1;
      W.bytes w b)
  | In_ledger records ->
    W.u8 w 5;
    W.list w
      (fun w (tag, data) ->
        W.bytes w tag;
        W.bytes w data)
      records

let encode_input_plain input = W.to_string input_into input

let encode_input_into ?ctx w input =
  input_into w input;
  match ctx with Some c -> W.raw w (Trace_ctx.to_trailer c) | None -> ()

let decode_nested_message r =
  match Message.decode (R.bytes r) with
  | Ok msg -> msg
  | Error e -> raise (R.Error ("nested message: " ^ e))

let decode_nested_request r =
  match Message.decode_request (R.bytes r) with
  | Ok req -> req
  | Error e -> raise (R.Error ("nested request: " ^ e))

let decode_input_exact s =
  R.parse
    (fun r ->
      match R.u8 r with
      | 1 -> In_net (decode_nested_message r)
      | 2 -> In_batch (R.list r decode_nested_request)
      | 3 -> In_suspect (R.varint r)
      | 4 ->
        (match R.u8 r with
        | 0 -> In_recover None
        | 1 -> In_recover (Some (R.bytes r))
        | p -> raise (R.Error (Printf.sprintf "bad recover presence byte %d" p)))
      | 5 ->
        In_ledger
          (R.list r (fun r ->
               let tag = R.bytes r in
               let data = R.bytes r in
               (tag, data)))
      | t -> raise (R.Error (Printf.sprintf "unknown input tag %d" t)))
    s

(* Trace contexts ride envelopes as the same backward-compatible trailer
   Message uses, with exact-parse fallback against magic-tail collisions
   in legacy payloads (cf. Message.decode_traced). *)

let encode_input ?ctx input = Trace_ctx.append ctx (encode_input_plain input)

let decode_input_traced s =
  match Trace_ctx.strip s with
  | body, (Some _ as ctx) -> (
    match decode_input_exact body with
    | Ok input -> Ok (input, ctx)
    | Error _ -> (
      match decode_input_exact s with
      | Ok input -> Ok (input, None)
      | Error e -> Error e))
  | _, None -> (
    match decode_input_exact s with Ok i -> Ok (i, None) | Error e -> Error e)

let decode_input s = Result.map fst (decode_input_traced s)

let encode_output_plain output =
  W.to_string
    (fun w output ->
      match output with
      | Out_send (dst, msg) ->
        W.u8 w 1;
        W.varint w dst;
        W.nested w Message.encode_into msg
      | Out_broadcast msg ->
        W.u8 w 2;
        W.nested w Message.encode_into msg
      | Out_persist { tag; data } ->
        W.u8 w 3;
        W.bytes w tag;
        W.bytes w data
      | Out_entered_view view ->
        W.u8 w 4;
        W.varint w view
      | Out_alert msg ->
        W.u8 w 5;
        W.bytes w msg
      | Out_recovered -> W.u8 w 6)
    output

let decode_output_exact s =
  R.parse
    (fun r ->
      match R.u8 r with
      | 1 ->
        let dst = R.varint r in
        Out_send (dst, decode_nested_message r)
      | 2 -> Out_broadcast (decode_nested_message r)
      | 3 ->
        let tag = R.bytes r in
        let data = R.bytes r in
        Out_persist { tag; data }
      | 4 -> Out_entered_view (R.varint r)
      | 5 -> Out_alert (R.bytes r)
      | 6 -> Out_recovered
      | t -> raise (R.Error (Printf.sprintf "unknown output tag %d" t)))
    s

let encode_output ?ctx output = Trace_ctx.append ctx (encode_output_plain output)

let decode_output_traced s =
  match Trace_ctx.strip s with
  | body, (Some _ as ctx) -> (
    match decode_output_exact body with
    | Ok output -> Ok (output, ctx)
    | Error _ -> (
      match decode_output_exact s with
      | Ok output -> Ok (output, None)
      | Error e -> Error e))
  | _, None -> (
    match decode_output_exact s with Ok o -> Ok (o, None) | Error e -> Error e)

let decode_output s = Result.map fst (decode_output_traced s)
