(** Byte-level envelopes crossing the enclave boundary.

    Ecall payloads and ocall outputs are opaque byte strings to the TEE
    substrate; this module defines their structure.  Inputs are what the
    untrusted broker may feed a compartment (network messages, request
    batches, primary suspicion); outputs are the effects a compartment asks
    the environment to perform.  Everything a compartment emits is either
    already signed/encrypted or liveness-only, so a malicious environment
    gains nothing from seeing or altering it. *)

module Ids = Splitbft_types.Ids
module Message = Splitbft_types.Message

type input =
  | In_net of Message.t  (** protocol message from the network or a local compartment *)
  | In_batch of Message.request list  (** environment hands a batch to the primary's Preparation *)
  | In_suspect of Ids.view  (** environment suspects the primary of the given view *)
  | In_recover of string option
      (** restart handshake: the broker hands back the newest sealed
          checkpoint blob it holds for this compartment ([None] if storage
          has none).  The compartment unseals it, checks the bound
          monotonic counter, and either resumes or refuses (rollback). *)
  | In_ledger of (string * string) list
      (** second phase of the Execution restart handshake: the persisted
          ledger records (oldest first).  The compartment replays them
          through {!Splitbft_storage.Ledger.recover}, verifying the hash
          chain and counter binding — refusing loudly on rollback. *)

type output =
  | Out_send of int * Message.t  (** unicast to a network address *)
  | Out_broadcast of Message.t
      (** send to all other replicas and route to the local sibling
          compartments *)
  | Out_persist of { tag : string; data : string }
      (** sealed blob written to untrusted storage (ledger blocks) *)
  | Out_entered_view of Ids.view  (** liveness hint: timers/primary tracking *)
  | Out_alert of string
      (** loud safety alarm — e.g. a rollback attack detected during
          recovery.  The compartment halts after emitting it. *)
  | Out_recovered  (** recovery complete: caught up and rejoining quorums *)

(** Envelopes optionally carry a trace context as a backward-compatible
    trailer ({!Splitbft_obs.Trace_ctx}): [encode_*] without [ctx] is
    byte-identical to the pre-tracing encoding, and the plain [decode_*]
    tolerate (and drop) a trailer, so compartments built before tracing
    — and sealed payloads — keep decoding. *)

val encode_input : ?ctx:Splitbft_obs.Trace_ctx.t -> input -> string
val decode_input : string -> (input, string) result

val encode_input_into :
  ?ctx:Splitbft_obs.Trace_ctx.t -> Splitbft_codec.Writer.t -> input -> unit
(** [encode_input] straight into an existing writer (trailer included) —
    with {!Splitbft_codec.Writer.reset} this lets the broker build every
    ecall payload in one reusable arena instead of growing a fresh buffer
    per call.  Bytes are identical to {!encode_input}. *)

val decode_input_traced :
  string -> (input * Splitbft_obs.Trace_ctx.t option, string) result

val encode_output : ?ctx:Splitbft_obs.Trace_ctx.t -> output -> string
val decode_output : string -> (output, string) result

val decode_output_traced :
  string -> (output * Splitbft_obs.Trace_ctx.t option, string) result
