(* Pure comparison logic of the CI perf-regression gate.

   [bin/bench_check.ml] is a thin CLI over [check]: it parses the two
   JSON documents, prints the report rows, and exits non-zero on
   failures.  Keeping the comparison here makes the gate's semantics
   unit-testable — in particular the rule that a point or metric the
   baseline records but the current run no longer produces is a hard
   failure, never a silent pass (a refactor that drops an artifact row
   must not read as "no regression"). *)

module Json = Splitbft_obs.Json

type point = {
  label : string;
  tput : float;
  ecall_us : float;
  p99_us : float;
  tol : float option;  (* baseline per-point override of the tolerance *)
}

(* Artifact arrays the gate covers, in report order, with an optional
   label filter (None = gate every labeled point).  A name missing from
   the baseline is skipped (old baselines predating an artifact stay
   valid); once baselined, the current run must produce it. *)
let gated_artifacts =
  [ ("hotpath", None);
    ("lanes", None);
    ("openloop", Some [ "knee-zipf"; "knee-uniform"; "p99-at-half-load" ]);
    ("storage", None) ]

(* (metric name, accessor, direction): [`Floor] gates drops below the
   baseline, [`Ceiling] gates rises above it. *)
let metrics =
  [ ("throughput", (fun p -> p.tput), `Floor);
    ("ecall cost", (fun p -> p.ecall_us), `Ceiling);
    ("p99 latency", (fun p -> p.p99_us), `Ceiling) ]

type verdict =
  | Pass
  | Regression of string  (* qualifier appended to "REGRESSION" *)
  | Missing_point
  | Missing_metric of string

type row = {
  r_point : string;  (* "artifact/label" *)
  r_metric : string;
  r_baseline : float;  (* [nan] when not applicable *)
  r_current : float;
  r_verdict : verdict;
}

type report = { rows : row list; checked : int; failures : int }

let failed = function Pass -> false | Regression _ | Missing_point | Missing_metric _ -> true

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let number = function
  | Some (Json.Int n) -> float_of_int n
  | Some (Json.Float f) -> f
  | Some _ | None -> nan

let str = function Some (Json.Str s) -> Some s | Some _ | None -> None

let artifact_points ~doc_name name doc =
  match Option.bind (Json.member "artifacts" doc) (Json.member name) with
  | Some (Json.List points) -> Some points
  | Some _ -> malformed "%s: artifacts.%s is not an array" doc_name name
  | None -> None

let point_of_json ~doc_name name j =
  match str (Json.member "label" j) with
  | None -> malformed "%s: %s point without a label" doc_name name
  | Some label ->
    { label;
      tput = number (Json.member "throughput_ops" j);
      ecall_us = number (Json.member "ecall_us_per_request" j);
      p99_us = number (Json.member "p99_latency_us" j);
      tol =
        (let t = number (Json.member "tolerance" j) in
         if Float.is_finite t then Some t else None) }

(* The baseline-vs-current sweep over [gated] artifacts. *)
let baseline_rows ~gated ~tolerance ~baseline_name ~current_name ~baseline ~current =
  List.concat_map
    (fun (name, labels) ->
      match artifact_points ~doc_name:baseline_name name baseline with
      | None -> []
      | Some base_raw ->
        let keep p =
          match labels with None -> true | Some ls -> List.mem p.label ls
        in
        let base_points =
          List.filter keep (List.map (point_of_json ~doc_name:baseline_name name) base_raw)
        in
        let cur_points =
          match artifact_points ~doc_name:current_name name current with
          | Some raw -> List.map (point_of_json ~doc_name:current_name name) raw
          | None ->
            malformed "%s: no artifacts.%s array (baseline gates on it)" current_name name
        in
        List.concat_map
          (fun b ->
            match List.find_opt (fun c -> c.label = b.label) cur_points with
            | None ->
              [ { r_point = name ^ "/" ^ b.label;
                  r_metric = "-";
                  r_baseline = nan;
                  r_current = nan;
                  r_verdict = Missing_point } ]
            | Some c ->
              List.filter_map
                (fun (metric, get, dir) ->
                  let bv = get b in
                  if not (Float.is_finite bv) then None
                  else
                    let cv = get c in
                    let verdict =
                      if not (Float.is_finite cv) then Missing_metric metric
                      else
                        let tol = Option.value b.tol ~default:tolerance in
                        let bad =
                          match dir with
                          | `Floor -> cv < bv *. (1.0 -. tol)
                          | `Ceiling -> cv > bv *. (1.0 +. tol)
                        in
                        if bad then Regression "" else Pass
                    in
                    Some
                      { r_point = name ^ "/" ^ b.label;
                        r_metric = metric;
                        r_baseline = bv;
                        r_current = cv;
                        r_verdict = verdict })
                metrics)
          base_points)
    gated

(* Detector overhead gate: the detectors-on twin of the saturated batched
   point must hold within 3% of the plain point's throughput — measured
   on the CURRENT run, so a slow observer can't hide behind a refreshed
   baseline.  The twin's absence is itself a failure: a change that
   silently drops the detectors-on point (or leaves its throughput
   unmeasured) must not read as "no detector cost". *)
let detect_overhead_rows ~current_name ~current =
  match artifact_points ~doc_name:current_name "hotpath" current with
  | None -> []
  | Some raw ->
    let points = List.map (point_of_json ~doc_name:current_name "hotpath") raw in
    let find l = List.find_opt (fun p -> p.label = l) points in
    (match (find "batch200", find "batch200-detect") with
    | Some plain, Some det when Float.is_finite plain.tput && Float.is_finite det.tput ->
      [ { r_point = "hotpath/detect-overhead";
          r_metric = "throughput";
          r_baseline = plain.tput;
          r_current = det.tput;
          r_verdict =
            (if det.tput < plain.tput *. 0.97 then Regression " (>3% detector cost)"
             else Pass) } ]
    | Some plain, _ when Float.is_finite plain.tput ->
      (* batch200 measured, its detectors-on twin missing or non-finite. *)
      [ { r_point = "hotpath/detect-overhead";
          r_metric = "throughput";
          r_baseline = plain.tput;
          r_current = nan;
          r_verdict = Missing_metric "batch200-detect throughput" } ]
    | _ -> [] (* no saturated plain point in this run's sweep *))

(* Read-scaling gate: when the current run carries the storage artifact,
   the 4-follower read throughput must be at least [storage_scale_floor]
   times the 0-follower consensus-only baseline — again measured on the
   CURRENT run, so follower reads collapsing back onto the quorum path
   can't hide behind a stale baseline. *)
let storage_scale_floor = 2.0

let storage_scale_rows ~current_name ~current =
  match artifact_points ~doc_name:current_name "storage" current with
  | None -> []
  | Some raw ->
    let points = List.map (point_of_json ~doc_name:current_name "storage") raw in
    (match List.find_opt (fun p -> p.label = "read-scale-f4-vs-f0") points with
    | Some p when Float.is_finite p.tput ->
      [ { r_point = "storage/read-scale";
          r_metric = "f4 vs f0";
          r_baseline = storage_scale_floor;
          r_current = p.tput;
          r_verdict =
            (if p.tput < storage_scale_floor then
               Regression " (followers scale reads < 2x)"
             else Pass) } ]
    | _ ->
      [ { r_point = "storage/read-scale";
          r_metric = "f4 vs f0";
          r_baseline = storage_scale_floor;
          r_current = nan;
          r_verdict = Missing_metric "read-scale-f4-vs-f0 ratio" } ])

let check ?(tolerance = 0.10) ?only ~baseline_name ~current_name ~baseline ~current () =
  (* [only] restricts the sweep to the named artifacts — an EXPLICIT
     narrowing for jobs that measure a subset (the storage job gates
     only its own artifact); without it, an artifact the baseline
     records but the current run omits is a hard failure. *)
  let keep name = match only with None -> true | Some names -> List.mem name names in
  let gated = List.filter (fun (name, _) -> keep name) gated_artifacts in
  match
    baseline_rows ~gated ~tolerance ~baseline_name ~current_name ~baseline ~current
    @ (if keep "hotpath" then detect_overhead_rows ~current_name ~current else [])
    @ (if keep "storage" then storage_scale_rows ~current_name ~current else [])
  with
  | exception Malformed msg -> Error msg
  | rows ->
    Ok
      { rows;
        checked = List.length rows;
        failures = List.length (List.filter (fun r -> failed r.r_verdict) rows) }
