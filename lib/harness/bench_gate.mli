(** Pure comparison logic of the CI perf-regression gate.

    Compares a fresh [bench ... --json] document against the checked-in
    [BENCH_BASELINE.json]: every gated point in the baseline must still
    exist in the current run, and every metric the baseline records for
    it must stay within the tolerance — throughput is a floor, ecall cost
    and p99 latency are ceilings.  A metric absent from a baseline point
    is not gated (artifacts report different fields), but a point or
    metric the baseline records that the current run fails to produce is
    a hard failure, never a silent pass.

    Two gates run against the current document alone, so refreshed
    baselines can't mask them: the detector-overhead twin
    ([batch200-detect] within 3% of [batch200]) and the follower
    read-scaling floor ([read-scale-f4-vs-f0] at least
    {!storage_scale_floor}). *)

type point = {
  label : string;
  tput : float;  (** [throughput_ops]; [nan] when absent *)
  ecall_us : float;  (** [ecall_us_per_request] *)
  p99_us : float;  (** [p99_latency_us] *)
  tol : float option;  (** baseline per-point override of the tolerance *)
}

val gated_artifacts : (string * string list option) list
(** Artifact arrays the baseline sweep covers, with an optional label
    filter ([None] = gate every labeled point the baseline records). *)

val metrics : (string * (point -> float) * [ `Floor | `Ceiling ]) list

type verdict =
  | Pass
  | Regression of string  (** qualifier appended to "REGRESSION" *)
  | Missing_point  (** baseline point absent from the current run *)
  | Missing_metric of string
      (** a value the gate needs is absent/non-numeric in the current run *)

type row = {
  r_point : string;  (** ["artifact/label"] *)
  r_metric : string;
  r_baseline : float;  (** [nan] when not applicable *)
  r_current : float;
  r_verdict : verdict;
}

type report = { rows : row list; checked : int; failures : int }

val failed : verdict -> bool

val storage_scale_floor : float
(** Minimum 4-follower over 0-follower read-throughput ratio (2.0). *)

val point_of_json : doc_name:string -> string -> Splitbft_obs.Json.t -> point
(** Raises {!Malformed} (reported as [Error] by {!check}) on a point
    without a ["label"]. *)

exception Malformed of string

val check :
  ?tolerance:float ->
  ?only:string list ->
  baseline_name:string ->
  current_name:string ->
  baseline:Splitbft_obs.Json.t ->
  current:Splitbft_obs.Json.t ->
  unit ->
  (report, string) result
(** [tolerance] defaults to 0.10 (±10%); the names label the two
    documents in error messages.  [only] explicitly restricts the sweep
    to the named artifacts, for jobs that deliberately measure a subset
    (CI's storage job gates only ["storage"]); without it every gated
    artifact the baseline records must appear in the current run.
    [Error] means a document is malformed or gates on an artifact the
    current run no longer emits. *)
