module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Ids = Splitbft_types.Ids
module Client = Splitbft_client.Client
module Cost_model = Splitbft_tee.Cost_model
module P = Splitbft_pbft.Replica
module M = Splitbft_minbft.Replica
module S = Splitbft_core.Replica
module Sconfig = Splitbft_core.Config
module State_machine = Splitbft_app.State_machine

type protocol = Pbft | Minbft | Splitbft
type app_kind = App_kvs | App_ledger | App_counter

type params = {
  protocol : protocol;
  n : int;
  app : app_kind;
  batch_size : int;
  batch_timeout_us : float;
  checkpoint_interval : int;
  suspect_timeout_us : float;
  cost : Cost_model.t;
  threading : Sconfig.threading;
  verify_cache : bool;
  lanes : int;  (* SplitBFT consensus lanes; 1 = serial pipeline *)
  exec_workers : int;  (* SplitBFT Execution worker pool; 1 = serial *)
  net : Network.config;
  seed : int64;
}

let default_params ?n protocol =
  let n =
    match n with
    | Some n -> n
    | None -> ( match protocol with Minbft -> 3 | Pbft | Splitbft -> 4)
  in
  { protocol;
    n;
    app = App_kvs;
    batch_size = 1;
    batch_timeout_us = 10_000.0;
    checkpoint_interval = 64;
    suspect_timeout_us = 500_000.0;
    cost = Cost_model.default;
    threading = Sconfig.Per_enclave;
    verify_cache = true;
    lanes = 1;
    exec_workers = 1;
    net = Network.default_config;
    seed = 1L }

type node =
  | Node_pbft of P.t
  | Node_minbft of M.t
  | Node_splitbft of S.t

type splitbft_byz = {
  prep : Splitbft_core.Preparation.byz;
  conf : Splitbft_core.Confirmation.byz;
  exec : Splitbft_core.Execution.byz;
}

let honest_enclaves =
  { prep = Splitbft_core.Preparation.Prep_honest;
    conf = Splitbft_core.Confirmation.Conf_honest;
    exec = Splitbft_core.Execution.Exec_honest }

type t = {
  params : params;
  engine : Engine.t;
  net : Network.t;
  nodes : node list;
}

let make_app kind () : State_machine.t =
  match kind with
  | App_kvs -> Splitbft_app.Kvs.create ()
  | App_ledger -> Splitbft_app.Ledger.create ()
  | App_counter -> Splitbft_app.Counter_app.create ()

let create ?(splitbft_byz = fun (_ : int) -> honest_enclaves) ?tracer params =
  let engine = Engine.create ~seed:params.seed ?tracer () in
  let net = Network.create engine params.net in
  let nodes =
    List.init params.n (fun i ->
        match params.protocol with
        | Pbft ->
          let cfg =
            { (P.default_config ~n:params.n ~id:i) with
              P.cost = params.cost;
              batch_size = params.batch_size;
              batch_timeout_us = params.batch_timeout_us;
              checkpoint_interval = params.checkpoint_interval;
              suspect_timeout_us = params.suspect_timeout_us }
          in
          Node_pbft (P.create engine net cfg ~app:(make_app params.app ()))
        | Minbft ->
          let cfg =
            { (M.default_config ~n:params.n ~id:i) with
              M.cost = params.cost;
              batch_size = params.batch_size;
              batch_timeout_us = params.batch_timeout_us;
              checkpoint_interval = params.checkpoint_interval;
              suspect_timeout_us = params.suspect_timeout_us }
          in
          Node_minbft (M.create engine net cfg ~app:(make_app params.app ()))
        | Splitbft ->
          let cfg =
            { (Sconfig.default ~n:params.n ~id:i) with
              Sconfig.cost = params.cost;
              threading = params.threading;
              batch_size = params.batch_size;
              batch_timeout_us = params.batch_timeout_us;
              checkpoint_interval = params.checkpoint_interval;
              suspect_timeout_us = params.suspect_timeout_us;
              verify_cache_capacity = (if params.verify_cache then 1024 else 0);
              lanes = params.lanes;
              exec_workers = params.exec_workers }
          in
          let byz = splitbft_byz i in
          Node_splitbft
            (S.create ~prep_byz:byz.prep ~conf_byz:byz.conf ~exec_byz:byz.exec engine net
               cfg ~app:(make_app params.app)))
  in
  { params; engine; net; nodes }

let params t = t.params
let engine t = t.engine
let network t = t.net
let obs t = Engine.obs t.engine
let nodes t = t.nodes
let node t i = List.nth t.nodes i

let f t =
  match t.params.protocol with
  | Minbft -> Ids.f_of_n_hybrid t.params.n
  | Pbft | Splitbft -> Ids.f_of_n t.params.n

let make_clients t ~count ~window ?ready_quorum () =
  let protocol =
    match t.params.protocol with
    | Pbft -> Client.Pbft
    | Minbft -> Client.Minbft
    | Splitbft ->
      Client.Splitbft
        { ready_quorum = Option.value ~default:t.params.n ready_quorum }
  in
  List.init count (fun id ->
      let cfg = { (Client.default_config protocol ~n:t.params.n ~id) with Client.window } in
      Client.create t.engine t.net cfg)

let run t ~until_us = Engine.run ~until:until_us t.engine

let executed_log_of = function
  | Node_pbft r ->
    List.map (fun (seq, d) -> (Int64.of_int seq, d)) (P.executed_log r)
  | Node_minbft r -> M.executed_log r
  | Node_splitbft r ->
    List.map (fun (seq, d) -> (Int64.of_int seq, d)) (S.executed_log r)

let last_executed_of = function
  | Node_pbft r -> Int64.of_int (P.last_executed r)
  | Node_minbft r -> M.last_executed_counter r
  | Node_splitbft r -> Int64.of_int (S.last_executed r)

let executed_count_of = function
  | Node_pbft r -> P.executed_count r
  | Node_minbft r -> M.executed_count r
  | Node_splitbft r -> S.executed_count r

let app_digest_of = function
  | Node_pbft r -> P.app_digest r
  | Node_minbft r -> M.app_digest r
  | Node_splitbft r -> S.app_digest r

let view_of = function
  | Node_pbft r -> P.view r
  | Node_minbft r -> M.view r
  | Node_splitbft r -> S.view r

let crash_host t i =
  match node t i with
  | Node_pbft r -> P.crash r
  | Node_minbft r -> M.crash r
  | Node_splitbft r -> S.crash_host r

let restart_host t i =
  match node t i with
  | Node_pbft r -> P.restart r
  | Node_minbft r -> M.restart r
  | Node_splitbft r -> S.restart_host r

let tamper_checkpoint_counter t i =
  match node t i with
  | Node_pbft r -> P.tamper_counter r "ckpt"
  | Node_minbft r -> M.tamper_counter r "ckpt"
  | Node_splitbft r ->
    (* The Execution compartment holds the replicated state; rolling its
       counter back is the canonical attack. *)
    S.tamper_counter r Ids.Execution "ckpt"

let recovered_of = function
  | Node_pbft r -> P.recovered r
  | Node_minbft r -> M.recovered r
  | Node_splitbft r -> S.recovered r

let recovery_alerts_of = function
  | Node_pbft r -> P.recovery_alerts r
  | Node_minbft r -> M.recovery_alerts r
  | Node_splitbft r -> S.recovery_alerts r

let persisted_of = function
  | Node_pbft r -> P.persisted r
  | Node_minbft r -> M.persisted r
  | Node_splitbft r -> S.persisted r
