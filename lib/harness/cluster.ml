module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Ids = Splitbft_types.Ids
module Client = Splitbft_client.Client
module Cost_model = Splitbft_tee.Cost_model
module Proto = Splitbft_proto.Protocol_intf
module State_machine = Splitbft_app.State_machine
module Follower = Splitbft_storage.Follower

type app_kind = App_kvs | App_ledger | App_counter

type params = {
  protocol : Proto.t;
  n : int;
  app : app_kind;
  batch_size : int;
  batch_timeout_us : float;
  checkpoint_interval : int;
  suspect_timeout_us : float;
  cost : Cost_model.t;
  net : Network.config;
  seed : int64;
  followers : int;
  follower_lag_bound : int;
}

let default_params ?n protocol =
  let n = match n with Some n -> n | None -> Proto.default_n protocol in
  { protocol;
    n;
    app = App_kvs;
    batch_size = 1;
    batch_timeout_us = 10_000.0;
    checkpoint_interval = 64;
    suspect_timeout_us = 500_000.0;
    cost = Cost_model.default;
    net = Network.default_config;
    seed = 1L;
    followers = 0;
    follower_lag_bound = 64 }

type node = Proto.packed

type t = {
  params : params;
  engine : Engine.t;
  net : Network.t;
  nodes : node list;
  followers : Follower.t list;
}

let make_app kind () : State_machine.t =
  match kind with
  | App_kvs -> Splitbft_app.Kvs.create ()
  | App_ledger -> Splitbft_app.Ledger.create ()
  | App_counter -> Splitbft_app.Counter_app.create ()

let shared_of_params params : Proto.shared =
  { Proto.n = params.n;
    batch_size = params.batch_size;
    batch_timeout_us = params.batch_timeout_us;
    checkpoint_interval = params.checkpoint_interval;
    suspect_timeout_us = params.suspect_timeout_us;
    cost = params.cost }

let create ?tracer ?flight params =
  let engine = Engine.create ~seed:params.seed ?tracer ?flight () in
  let net = Network.create engine params.net in
  let ctx = Proto.context engine net in
  let shared = shared_of_params params in
  let nodes =
    List.init params.n (fun i ->
        Proto.spawn params.protocol ctx shared ~id:i ~app:(make_app params.app))
  in
  let followers =
    if params.followers = 0 then []
    else
      match Proto.followers params.protocol with
      | Proto.No_followers ->
        invalid_arg
          "Cluster.create: this protocol instance publishes no committed-log \
           feed (for SplitBFT, enable the ledger with ~segment_entries)"
      | Proto.Follower_feed { sealed } ->
        let f = Proto.f_of_n params.protocol params.n in
        List.init params.followers (fun fid ->
            Follower.create ~lag_bound:params.follower_lag_bound engine net ~fid
              ~f ~n:params.n ~sealed
              ~app:(make_app params.app ()))
  in
  { params; engine; net; nodes; followers }

let params t = t.params
let engine t = t.engine
let network t = t.net
let obs t = Engine.obs t.engine
let flight t = Engine.flight t.engine
let nodes t = t.nodes
let node t i = List.nth t.nodes i
let protocol_name t = Proto.name t.params.protocol
let f t = Proto.f_of_n t.params.protocol t.params.n

let make_clients t ~count ~window ?ready_quorum () =
  let protocol =
    Proto.client_protocol t.params.protocol ~n:t.params.n ~ready_quorum
  in
  List.init count (fun id ->
      let cfg = { (Client.default_config protocol ~n:t.params.n ~id) with Client.window } in
      Client.create t.engine t.net cfg)

let run t ~until_us = Engine.run ~until:until_us t.engine

let executed_log_of = Proto.executed_log
let last_executed_of = Proto.last_executed
let executed_count_of = Proto.executed_count
let app_digest_of = Proto.app_digest
let view_of = Proto.view
(* Flight events here (not only in protocol internals) so observers get a
   protocol-agnostic crash/restart record for every catalogued protocol. *)
let crash_host t i =
  Engine.flight_record t.engine ~host:(Splitbft_types.Addr.replica i) ~kind:"host-crash"
    ~detail:"";
  Proto.crash_host (node t i)

let restart_host t i =
  Engine.flight_record t.engine ~host:(Splitbft_types.Addr.replica i)
    ~kind:"host-restart" ~detail:"";
  Proto.restart_host (node t i)
let tamper_checkpoint_counter t i = Proto.tamper_checkpoint_counter (node t i)
let tamper_ledger_counter t i = Proto.tamper_ledger_counter (node t i)
let followers t = t.followers
let follower t fid = List.nth t.followers fid
let recovered_of = Proto.recovered
let recovery_alerts_of = Proto.recovery_alerts
let persisted_of = Proto.persisted
