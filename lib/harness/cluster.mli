(** Unified deployment of a BFT cluster inside one simulation, with matched
    clients — the substrate every experiment builds on.

    The cluster is polymorphic over {!Splitbft_proto.Protocol_intf.t}: any
    protocol instance (built-in or third-party) deploys, observes and
    recovers through the same interface, with zero protocol dispatch here.
    Protocol-specific knobs (byzantine placement, lanes, worker pools,
    threading) are closed over by the instance itself — see the [make]
    constructors in [Splitbft_proto]. *)

module Ids = Splitbft_types.Ids
module Client = Splitbft_client.Client
module Proto = Splitbft_proto.Protocol_intf

type app_kind = App_kvs | App_ledger | App_counter

type params = {
  protocol : Proto.t;
  n : int;
  app : app_kind;
  batch_size : int;
  batch_timeout_us : float;
  checkpoint_interval : int;
  suspect_timeout_us : float;
  cost : Splitbft_tee.Cost_model.t;
  net : Splitbft_sim.Network.config;
  seed : int64;
  followers : int;
      (** Read-only follower replicas subscribing to the committed-log
          feed (0 = none).  Requires a protocol instance with
          [Follower_feed] support — for SplitBFT, build it with
          [Proto_splitbft.make ~segment_entries]. *)
  follower_lag_bound : int;
      (** Maximum vouched-tip lag at which followers still serve reads. *)
}

val default_params : ?n:int -> Proto.t -> params
(** [n] defaults to the protocol's [default_n] (4 = 3f+1 for
    PBFT/SplitBFT, 3 = 2f+1 for MinBFT); [followers] to 0. *)

type node = Proto.packed

type t

val create : ?tracer:Splitbft_obs.Tracer.t -> ?flight:Splitbft_obs.Flight.t -> params -> t
(** Deploys [n] replicas through the protocol's [spawn].  Byzantine
    behaviour is part of the protocol instance (compromised-at-deployment);
    build one with e.g. [Proto_splitbft.make ~byz] or
    [Proto_pbft.make ~byzantine].  [tracer], when given, is installed on
    the engine: clients open root spans per sampled request and every hop
    (broker dispatch, enclave transition, baseline handler) records
    parent-linked spans with cost attribution.  [flight], when given, is
    likewise installed on the engine: brokers, clients and the detector
    append structured events (ecalls, view entries, suspicion, crashes,
    evidence, alerts) to it, dumpable via [Flight.save] on failure. *)

val params : t -> params
val engine : t -> Splitbft_sim.Engine.t
val network : t -> Splitbft_sim.Network.t

val flight : t -> Splitbft_obs.Flight.t option
(** The flight recorder passed to {!create}, if any. *)

(** The deployment's metrics registry (owned by the engine): enclave
    transition/copy counters, per-link network traffic, broker batching,
    resource utilization, and — after a workload run — the latency
    summary.  Snapshot with [Registry.to_json]. *)
val obs : t -> Splitbft_obs.Registry.t

val nodes : t -> node list
val node : t -> Ids.replica_id -> node
val protocol_name : t -> string
val f : t -> int

val make_clients : t -> count:int -> window:int -> ?ready_quorum:int -> unit -> Client.t list
(** Creates (but does not start) protocol-matched clients with ids
    [0 .. count-1]. *)

val run : t -> until_us:float -> unit

(** {2 Uniform introspection} *)

val executed_log_of : node -> (int64 * string) list
(** (sequence, batch digest), oldest first, normalized across protocols. *)

val last_executed_of : node -> int64
val executed_count_of : node -> int
val app_digest_of : node -> string
val view_of : node -> int
val crash_host : t -> Ids.replica_id -> unit
(** Crash the whole host: the node quiesces (timers stopped, queued work
    dropped) and leaves the network.  Sealed storage and the platform's
    monotonic counters survive. *)

val restart_host : t -> Ids.replica_id -> unit
(** Bring a crashed host back: enclaves are re-created, unseal their last
    checkpoint, verify its monotonic-counter binding (refusing rolled-back
    state — see {!recovery_alerts_of}), and catch up via state transfer
    before rejoining quorums. *)

val tamper_checkpoint_counter : t -> Ids.replica_id -> unit
(** Fault injection: reset the node's checkpoint monotonic counter (for
    SplitBFT, the Execution compartment's) — the rollback attack a
    subsequent {!restart_host} must detect and refuse. *)

val tamper_ledger_counter : t -> Ids.replica_id -> unit
(** Fault injection: reset the monotonic counter binding ledger segment
    seals; a no-op for protocols without a rollback-protected ledger. *)

(** {2 Followers} *)

val followers : t -> Splitbft_storage.Follower.t list
(** The read-only follower replicas, in follower-id order ([] when
    [params.followers = 0]). *)

val follower : t -> int -> Splitbft_storage.Follower.t

val recovered_of : node -> bool
(** The node completed at least one crash-recovery and none is pending. *)

val recovery_alerts_of : node -> string list
(** Rollback/unseal refusals raised during recovery, oldest first. *)

val persisted_of : node -> (string * string) list
