(** Unified deployment of a BFT cluster (PBFT / MinBFT / SplitBFT) inside
    one simulation, with matched clients — the substrate every experiment
    builds on. *)

module Ids = Splitbft_types.Ids
module Client = Splitbft_client.Client

type protocol = Pbft | Minbft | Splitbft
type app_kind = App_kvs | App_ledger | App_counter

type params = {
  protocol : protocol;
  n : int;
  app : app_kind;
  batch_size : int;
  batch_timeout_us : float;
  checkpoint_interval : int;
  suspect_timeout_us : float;
  cost : Splitbft_tee.Cost_model.t;
  threading : Splitbft_core.Config.threading;  (** SplitBFT only *)
  verify_cache : bool;
      (** SplitBFT only: enable the enclaves' verified-digest caches and
          the rest of the hot-path layer (lazy verification, broker
          retransmit early-reject); [false] reproduces the pre-cache cost
          accounting for the [bench hotpath] ablation *)
  lanes : int;
      (** SplitBFT only: concurrent consensus lanes (per-lane broker ecall
          threads); 1 reproduces the serial pipeline *)
  exec_workers : int;
      (** SplitBFT only: Execution compartment worker-pool size; 1
          reproduces serial execution cost accounting *)
  net : Splitbft_sim.Network.config;
  seed : int64;
}

val default_params : ?n:int -> protocol -> params
(** [n] defaults to 4 (3f+1) for PBFT/SplitBFT and 3 (2f+1) for MinBFT. *)

type node =
  | Node_pbft of Splitbft_pbft.Replica.t
  | Node_minbft of Splitbft_minbft.Replica.t
  | Node_splitbft of Splitbft_core.Replica.t

type splitbft_byz = {
  prep : Splitbft_core.Preparation.byz;
  conf : Splitbft_core.Confirmation.byz;
  exec : Splitbft_core.Execution.byz;
}

val honest_enclaves : splitbft_byz

type t

val create :
  ?splitbft_byz:(Ids.replica_id -> splitbft_byz) ->
  ?tracer:Splitbft_obs.Tracer.t ->
  params ->
  t
(** Deploys [n] replicas.  SplitBFT byzantine enclaves must be installed at
    creation (compromised-at-deployment); PBFT/MinBFT byzantine modes are
    set afterwards via {!node}.  [tracer], when given, is installed on the
    engine: clients open root spans per sampled request and every hop
    (broker dispatch, enclave transition, baseline handler) records
    parent-linked spans with cost attribution. *)

val params : t -> params
val engine : t -> Splitbft_sim.Engine.t
val network : t -> Splitbft_sim.Network.t

(** The deployment's metrics registry (owned by the engine): enclave
    transition/copy counters, per-link network traffic, broker batching,
    resource utilization, and — after a workload run — the latency
    summary.  Snapshot with [Registry.to_json]. *)
val obs : t -> Splitbft_obs.Registry.t
val nodes : t -> node list
val node : t -> Ids.replica_id -> node
val f : t -> int

val make_clients : t -> count:int -> window:int -> ?ready_quorum:int -> unit -> Client.t list
(** Creates (but does not start) protocol-matched clients with ids
    [0 .. count-1]. *)

val run : t -> until_us:float -> unit

(** {2 Uniform introspection} *)

val executed_log_of : node -> (int64 * string) list
(** (sequence, batch digest), oldest first, normalized across protocols. *)

val last_executed_of : node -> int64
val executed_count_of : node -> int
val app_digest_of : node -> string
val view_of : node -> int
val crash_host : t -> Ids.replica_id -> unit
(** Crash the whole host: the node quiesces (timers stopped, queued work
    dropped) and leaves the network.  Sealed storage and the platform's
    monotonic counters survive. *)

val restart_host : t -> Ids.replica_id -> unit
(** Bring a crashed host back: enclaves are re-created, unseal their last
    checkpoint, verify its monotonic-counter binding (refusing rolled-back
    state — see {!recovery_alerts_of}), and catch up via state transfer
    before rejoining quorums. *)

val tamper_checkpoint_counter : t -> Ids.replica_id -> unit
(** Fault injection: reset the node's checkpoint monotonic counter (for
    SplitBFT, the Execution compartment's) — the rollback attack a
    subsequent {!restart_host} must detect and refuse. *)

val recovered_of : node -> bool
(** The node completed at least one crash-recovery and none is pending. *)

val recovery_alerts_of : node -> string list
(** Rollback/unseal refusals raised during recovery, oldest first. *)

val persisted_of : node -> (string * string) list
