module Engine = Splitbft_sim.Engine
module Health = Splitbft_obs.Health
module Ids = Splitbft_types.Ids

(* The serial resource that saturates first is protocol-specific: the
   untrusted broker loop for SplitBFT, the single core for the
   baselines.  Utilization of the busiest one is the knee proximity. *)
let main_resource_name protocol i =
  match protocol with
  | "splitbft" -> Printf.sprintf "broker%d-loop" i
  | "pbft" -> Printf.sprintf "pbft%d-core" i
  | "minbft" -> Printf.sprintf "minbft%d-core" i
  | _ -> Printf.sprintf "%s%d-core" protocol i

let utilization health ~resource =
  match Health.rate health ~labels:[ ("resource", resource) ] "resource.busy_us" with
  | Some r -> Some (r /. 1_000_000.0)  (* busy µs per wall second -> fraction *)
  | None -> None

let fmt_opt f = function None -> "-" | Some v -> f v
let fmt_pct v = Printf.sprintf "%.0f%%" (100.0 *. Float.min 1.0 (Float.max 0.0 v))
let fmt_rate v = if v >= 10_000.0 then Printf.sprintf "%.1fk/s" (v /. 1_000.0) else Printf.sprintf "%.0f/s" v

let replica_labels i = [ ("replica", string_of_int i) ]

let ecall_rate health i =
  let any = ref false in
  let total =
    List.fold_left
      (fun acc c ->
        match
          Health.rate health
            ~labels:(replica_labels i @ [ ("compartment", Ids.compartment_name c) ])
            "broker.ecalls"
        with
        | Some r ->
          any := true;
          acc +. r
        | None -> acc)
      0.0 Ids.all_compartments
  in
  if !any then Some total else None

let retx_rate health i =
  let get name = Health.rate health ~labels:(replica_labels i) name in
  match (get "broker.retx_suppressed", get "broker.retx_replayed") with
  | None, None -> None
  | a, b -> Some (Option.value a ~default:0.0 +. Option.value b ~default:0.0)

let lane_row health ~lanes i =
  let deltas =
    List.init lanes (fun l ->
        Health.delta health
          ~labels:(replica_labels i @ [ ("lane", string_of_int l) ])
          "broker.lane_ecalls"
        |> Option.value ~default:0.0)
  in
  let total = List.fold_left ( +. ) 0.0 deltas in
  if total <= 0.0 then None
  else
    Some
      (String.concat "/"
         (List.map (fun d -> Printf.sprintf "%.0f%%" (100.0 *. d /. total)) deltas))

let render ?detector ?health ?(max_alerts = 8) cluster =
  let params = Cluster.params cluster in
  let health =
    match (health, detector) with
    | Some h, _ -> Some h
    | None, Some d -> Some (Detector.health d)
    | None, None -> None
  in
  let windowed =
    match health with Some h -> Health.samples h >= 2 | None -> false
  in
  let rate_of f = if windowed then f (Option.get health) else None in
  let protocol = Cluster.protocol_name cluster in
  let buf = Buffer.create 1024 in
  let now = Engine.now (Cluster.engine cluster) in
  Buffer.add_string buf
    (Printf.sprintf "%s  n=%d  t=%.1fms%s\n" protocol params.Cluster.n (now /. 1_000.0)
       (match health with
       | Some h when windowed ->
         Printf.sprintf "  window=%.0fms"
           (Option.value (Health.span_us h) ~default:0.0 /. 1_000.0)
       | _ -> "  (warming up)"));
  (* Per-replica health table. *)
  let rows =
    List.mapi
      (fun i node ->
        let util = rate_of (fun h -> utilization h ~resource:(main_resource_name protocol i)) in
        [ string_of_int i;
          string_of_int (Cluster.view_of node);
          string_of_int (Cluster.executed_count_of node);
          fmt_opt fmt_pct util;
          fmt_opt fmt_rate (rate_of (fun h -> ecall_rate h i));
          fmt_opt fmt_rate (rate_of (fun h -> retx_rate h i));
          fmt_opt
            (fun v -> Printf.sprintf "%.0f" v)
            (rate_of (fun h -> Health.latest h ~labels:(replica_labels i) "broker.suspect_firings")) ])
      (Cluster.nodes cluster)
  in
  Buffer.add_string buf
    (Table.render
       ~header:[ "replica"; "view"; "executed"; "busy"; "ecalls"; "retx"; "suspect" ]
       ~rows);
  (* Lane occupancy (multi-lane SplitBFT deployments only). *)
  (match rate_of (fun h ->
       let rows =
         List.filter_map
           (fun i ->
             (* Probe increasing lane ids until the metric disappears. *)
             let rec lanes l = if l >= 64 then l
               else
                 match
                   Health.latest h
                     ~labels:(replica_labels i @ [ ("lane", string_of_int l) ])
                     "broker.lane_ecalls"
                 with
                 | Some _ -> lanes (l + 1)
                 | None -> l
             in
             let nl = lanes 0 in
             if nl <= 1 then None
             else
               Option.map
                 (fun s -> [ string_of_int i; s ])
                 (lane_row h ~lanes:nl i))
           (List.init params.Cluster.n Fun.id)
       in
       if rows = [] then None else Some rows)
   with
  | Some rows ->
    Buffer.add_string buf "\nlane occupancy (ecall share per lane)\n";
    Buffer.add_string buf (Table.render ~header:[ "replica"; "lanes" ] ~rows)
  | _ -> ());
  (* Knee proximity: the busiest serial resource across the deployment. *)
  (match rate_of (fun h ->
       List.fold_left
         (fun acc i ->
           let name = main_resource_name protocol i in
           match utilization h ~resource:name with
           | Some u -> (
             match acc with
             | Some (_, best) when best >= u -> acc
             | _ -> Some (name, u))
           | None -> acc)
         None
         (List.init params.Cluster.n Fun.id))
   with
  | Some (name, u) ->
    Buffer.add_string buf
      (Printf.sprintf "\nknee proximity: %s (bottleneck %s)\n" (fmt_pct u) name)
  | _ -> ());
  (* Active alerts. *)
  (match detector with
  | None -> ()
  | Some d ->
    let alerts = Detector.alerts d in
    let count = List.length alerts in
    if count = 0 then Buffer.add_string buf "\nalerts: none\n"
    else begin
      Buffer.add_string buf (Printf.sprintf "\nalerts (%d):\n" count);
      let tail =
        if count <= max_alerts then alerts
        else
          List.filteri (fun i _ -> i >= count - max_alerts) alerts
      in
      List.iter
        (fun a -> Buffer.add_string buf ("  " ^ Detector.describe a ^ "\n"))
        tail
    end);
  Buffer.contents buf
