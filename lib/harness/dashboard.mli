(** Live text dashboard over a running cluster: the renderer behind
    [splitbft_cli top].

    Pure with respect to the simulation: it reads probes, a {!Health}
    sampler and (optionally) a {!Detector}, and returns a string — no
    metrics are registered, no events scheduled, so rendering (or not)
    never perturbs a run.  The CLI wraps it in an ANSI refresh loop;
    tests assert on the returned string directly. *)

val render :
  ?detector:Detector.t ->
  ?health:Splitbft_obs.Health.t ->
  ?max_alerts:int ->
  Cluster.t ->
  string
(** Per-replica health (view, executed prefix, main-loop utilization,
    ecall and retransmission rates, suspicion count), per-lane ecall
    shares when the deployment runs multiple lanes, knee proximity (the
    busiest serial resource's utilization — how close the deployment is
    to its saturation knee), and the detector's active alerts
    ([max_alerts] most recent, default 8).

    Windowed rates come from [health]; when absent, the [detector]'s own
    sampler is used, and with neither (or fewer than two samples) rate
    columns render as ["-"]. *)
