module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Health = Splitbft_obs.Health
module Flight = Splitbft_obs.Flight
module Message = Splitbft_types.Message
module Addr = Splitbft_types.Addr
module Proto = Splitbft_proto.Protocol_intf
module Follower = Splitbft_storage.Follower

type alert = { rule : string; replica : int; at : float; detail : string }

type config = {
  sample_interval_us : float;
  health_window : int;
  stale_margin_us : float;
  retx_threshold : int;
  stall_samples : int;
  lag_window : int option;
  max_alerts : int;
}

let default_config =
  { sample_interval_us = 250_000.0;
    health_window = 16;
    stale_margin_us = 200_000.0;
    retx_threshold = 10;
    stall_samples = 3;
    lag_window = None;
    max_alerts = 256 }

let rules =
  [ "equivocation";
    "digest-mismatch";
    "premature-commit";
    "duplicate-flood";
    "stale-proof";
    "checkpoint-mismatch";
    "confidentiality-leak";
    "vote-divergence";
    "prefix-lag";
    "disagreement";
    "retx-storm";
    "quorum-stall";
    "follower-straggler" ]

type t = {
  cluster : Cluster.t;
  cfg : config;
  engine : Engine.t;
  n : int;
  f : int;
  wire : bool;  (* payloads use the shared Message codec *)
  leak : bool;  (* the protocol claims confidentiality *)
  lossless : bool;  (* network drops disabled: stale-proof is sound *)
  health : Health.t;
  mutable alerts_rev : alert list;
  mutable alert_count : int;
  seen : (string, unit) Hashtbl.t;  (* "rule@replica" dedup *)
  (* --- wire-rule state --- *)
  proposals : (int * int * int, string) Hashtbl.t;
      (* (sender, view, seq) -> first proposal digest *)
  prepares_to : (int * int * int, int list ref) Hashtbl.t;
      (* (view, seq, dst replica) -> prepare senders observed *)
  commits_seen : (int * int * int, unit) Hashtbl.t;
  flood : (string, unit) Hashtbl.t;  (* src>dst:payload already seen once *)
  ckpt_votes : (int, (string * int list ref) list ref) Hashtbl.t;
      (* seq -> per-digest checkpoint senders *)
  mutable certs : (int * string * float) list;
      (* wire-complete checkpoint certificates: (seq, digest, at) *)
  excused : (int, unit) Hashtbl.t;  (* crashed/restarted replicas *)
  (* --- health-rule state --- *)
  mutable last_exec_total : int;
  mutable last_max_view : int;
  mutable suspect_anchor : float;  (* suspicion total at last progress *)
  mutable stall_count : int;
}

let quorum t = (2 * t.f) + 1

let describe a =
  Printf.sprintf "%s@%s t=%.1fms%s" a.rule
    (if a.replica >= 0 then string_of_int a.replica else "*")
    (a.at /. 1_000.0)
    (if a.detail = "" then "" else " " ^ a.detail)

let raise_alert t ~rule ~replica detail =
  let key = rule ^ "@" ^ string_of_int replica in
  if (not (Hashtbl.mem t.seen key)) && t.alert_count < t.cfg.max_alerts then begin
    Hashtbl.add t.seen key ();
    let a = { rule; replica; at = Engine.now t.engine; detail } in
    t.alerts_rev <- a :: t.alerts_rev;
    t.alert_count <- t.alert_count + 1;
    Engine.flight_record t.engine
      ~host:(if replica >= 0 then Addr.replica replica else -1)
      ~kind:"alert"
      ~detail:(if detail = "" then rule else rule ^ " " ^ detail)
  end

let excused t r = Hashtbl.mem t.excused r

(* ---------- wire rules ---------- *)

let note_proposal t ~sender ~view ~seq ~digest =
  match Hashtbl.find_opt t.proposals (sender, view, seq) with
  | None -> Hashtbl.add t.proposals (sender, view, seq) digest
  | Some d when String.equal d digest -> ()
  | Some _ ->
    raise_alert t ~rule:"equivocation" ~replica:sender
      (Printf.sprintf "conflicting proposals at view=%d seq=%d" view seq)

(* Byte-identical protocol sends: an honest pipeline emits each
   PrePrepare/Prepare/Commit at most once per destination; retransmission
   paths (replies, view changes, state transfer) use other tags. *)
let note_flood t ~src ~dst payload =
  if not (Addr.is_client src) then begin
    let key = Printf.sprintf "%d>%d:%s" src dst payload in
    if Hashtbl.mem t.flood key then
      raise_alert t ~rule:"duplicate-flood" ~replica:(Addr.replica_of_addr src)
        "byte-identical protocol message re-sent"
    else Hashtbl.add t.flood key ()
  end

let on_prepare t ~src ~dst (p : Message.prepare) =
  if not (Addr.is_client src || Addr.is_client dst) then begin
    let key = (p.view, p.seq, Addr.replica_of_addr dst) in
    let senders =
      match Hashtbl.find_opt t.prepares_to key with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.add t.prepares_to key l;
        l
    in
    let s = Addr.replica_of_addr src in
    if not (List.mem s !senders) then senders := s :: !senders
  end

(* An honest Commit(v, s) needs a prepare certificate: 2f Prepares from
   replicas other than the proposer, of which at most one is the
   committer's own (supplied host-locally, never on the wire).  Every
   other certificate member was *sent* to the committer before it was
   received, and the tap observes sends in global order — so fewer than
   max 1 (2f-1) distinct wire prepares before the commit is impossible
   for an honest replica, at any f, with zero false positives. *)
let on_commit t ~src (c : Message.commit) =
  if not (Addr.is_client src) then begin
    let r = Addr.replica_of_addr src in
    let key = (c.view, c.seq, r) in
    if not (Hashtbl.mem t.commits_seen key) then begin
      Hashtbl.add t.commits_seen key ();
      let count =
        match Hashtbl.find_opt t.prepares_to key with
        | Some l -> List.length !l
        | None -> 0
      in
      let needed = max 1 ((2 * t.f) - 1) in
      if count < needed then
        raise_alert t ~rule:"premature-commit" ~replica:r
          (Printf.sprintf "commit at view=%d seq=%d after %d/%d wire prepares"
             c.view c.seq count needed)
    end
  end

let certified_floor t ~now =
  List.fold_left
    (fun floor (seq, _, at) ->
      if at +. t.cfg.stale_margin_us <= now && seq > floor then seq else floor)
    0 t.certs

let on_checkpoint t ~src (ck : Message.checkpoint) =
  if not (Addr.is_client src) then begin
    let sender = Addr.replica_of_addr src in
    let votes =
      match Hashtbl.find_opt t.ckpt_votes ck.seq with
      | Some v -> v
      | None ->
        let v = ref [] in
        Hashtbl.add t.ckpt_votes ck.seq v;
        v
    in
    (match List.assoc_opt ck.state_digest !votes with
    | Some senders -> if not (List.mem sender !senders) then senders := sender :: !senders
    | None -> votes := (ck.state_digest, ref [ sender ]) :: !votes);
    let cert_digest =
      match List.find_opt (fun (s, _, _) -> s = ck.seq) t.certs with
      | Some (_, d, _) -> Some d
      | None -> (
        match
          List.find_opt (fun (_, senders) -> List.length !senders >= quorum t) !votes
        with
        | Some (d, _) ->
          t.certs <- (ck.seq, d, Engine.now t.engine) :: t.certs;
          Some d
        | None -> None)
    in
    match cert_digest with
    | None -> ()
    | Some d ->
      List.iter
        (fun (d', senders) ->
          if not (String.equal d d') then
            List.iter
              (fun s ->
                raise_alert t ~rule:"checkpoint-mismatch" ~replica:s
                  (Printf.sprintf
                     "checkpoint at seq=%d conflicts with the certified digest"
                     ck.seq))
              !senders)
        !votes
  end

let on_viewchange t ~src (vc : Message.viewchange) =
  if t.lossless && not (Addr.is_client src) then begin
    let r = Addr.replica_of_addr src in
    if not (excused t r) then begin
      let floor = certified_floor t ~now:(Engine.now t.engine) in
      if floor > 0 && vc.vc_last_stable < floor then
        raise_alert t ~rule:"stale-proof" ~replica:r
          (Printf.sprintf "viewchange carries last_stable=%d below certified %d"
             vc.vc_last_stable floor)
    end
  end

let on_payload t ~src ~dst payload =
  if t.leak && (not (Addr.is_client src)) && Safety.contains_canary payload then
    raise_alert t ~rule:"confidentiality-leak" ~replica:(Addr.replica_of_addr src)
      "operation plaintext on the wire";
  if t.wire then
    match Message.decode payload with
    | Error _ -> ()
    | Ok msg -> (
      match msg with
      | Message.Preprepare pp ->
        note_proposal t ~sender:pp.sender ~view:pp.view ~seq:pp.seq
          ~digest:(Message.digest_of_batch pp.batch);
        note_flood t ~src ~dst payload
      | Message.Preprepare_digest pd ->
        note_proposal t ~sender:pd.pd_sender ~view:pd.pd_view ~seq:pd.pd_seq
          ~digest:pd.pd_digest;
        (* Honest primaries always broadcast the full form — the broker
           re-attaches the body it copied in one ecall ago — so a bare
           digest form can never be matched to an authorized batch. *)
        raise_alert t ~rule:"digest-mismatch" ~replica:pd.pd_sender
          (Printf.sprintf "unresolvable digest-form proposal at view=%d seq=%d"
             pd.pd_view pd.pd_seq);
        note_flood t ~src ~dst payload
      | Message.Prepare p ->
        on_prepare t ~src ~dst p;
        note_flood t ~src ~dst payload
      | Message.Commit c ->
        on_commit t ~src c;
        note_flood t ~src ~dst payload
      | Message.Checkpoint ck -> on_checkpoint t ~src ck
      | Message.Viewchange vc -> on_viewchange t ~src vc
      | Message.Request _ | Message.Reply _ | Message.Newview _
      | Message.Session_init _ | Message.Session_quote _ | Message.Session_key _
      | Message.Session_ack _ | Message.Batch_fetch _ | Message.Batch_data _
      | Message.State_request _ | Message.State_reply _
      | Message.Ledger_subscribe _ | Message.Ledger_feed _
      | Message.Read_request _ | Message.Read_reply _ -> ())

(* ---------- flight evidence ---------- *)

let on_flight t (ev : Flight.event) =
  match ev.kind with
  | "crash" | "restart" | "host-crash" | "host-restart" ->
    if ev.host >= 0 && ev.host < t.n then Hashtbl.replace t.excused ev.host ()
  | "evidence" ->
    let prefix = "vote-divergence" in
    let plen = String.length prefix in
    if
      String.length ev.detail >= plen
      && String.equal (String.sub ev.detail 0 plen) prefix
      && ev.host >= 0 && ev.host < t.n
    then raise_alert t ~rule:"vote-divergence" ~replica:ev.host ev.detail
  | _ -> ()

(* ---------- health rules (periodic sample) ---------- *)

let replica_labels r = [ ("replica", string_of_int r) ]

let retx_delta t r =
  let get name =
    match Health.delta t.health ~labels:(replica_labels r) name with
    | Some v -> v
    | None -> 0.0
  in
  get "broker.retx_suppressed" +. get "broker.retx_replayed"

let suspect_total t =
  let total = ref 0.0 in
  for r = 0 to t.n - 1 do
    match Health.latest t.health ~labels:(replica_labels r) "broker.suspect_firings" with
    | Some v -> total := !total +. v
    | None -> ()
  done;
  !total

let sample t =
  Health.sample t.health ~at:(Engine.now t.engine);
  let nodes = List.mapi (fun i n -> (i, n)) (Cluster.nodes t.cluster) in
  let live = List.filter (fun (i, _) -> not (excused t i)) nodes in
  (* Untrusted-storage leak scan (confidential protocols only). *)
  if t.leak then
    List.iter
      (fun (i, node) ->
        if Safety.blob_leaks (Cluster.persisted_of node) > 0 then
          raise_alert t ~rule:"confidentiality-leak" ~replica:i
            "operation plaintext in untrusted storage")
      nodes;
  (* Executed-prefix lag and agreement across live replicas. *)
  let counts = List.map (fun (i, n) -> (i, Cluster.executed_count_of n)) live in
  let max_count = List.fold_left (fun m (_, c) -> max m c) 0 counts in
  let lag_window =
    match t.cfg.lag_window with
    | Some w -> w
    | None -> 2 * (Cluster.params t.cluster).Cluster.checkpoint_interval
  in
  List.iter
    (fun (i, c) ->
      if max_count - c > lag_window then
        raise_alert t ~rule:"prefix-lag" ~replica:i
          (Printf.sprintf "executed %d of %d (window %d)" c max_count lag_window))
    counts;
  (* Follower straggler: a read-only follower stuck behind the vouched
     cluster tip past the staleness bound.  Read through the same
     Obs.Health plane the followers report their gauges into. *)
  let follower_bound = (Cluster.params t.cluster).Cluster.follower_lag_bound in
  List.iter
    (fun fo ->
      let fid = Follower.fid fo in
      match
        Health.latest t.health
          ~labels:[ ("follower", string_of_int fid) ]
          "follower.lag"
      with
      | Some lag when int_of_float lag > follower_bound ->
        raise_alert t ~rule:"follower-straggler" ~replica:fid
          (Printf.sprintf "lag %d behind the vouched tip (bound %d)"
             (int_of_float lag) follower_bound)
      | _ -> ())
    (Cluster.followers t.cluster);
  (match
     Safety.agreement_of_logs
       (List.map (fun (i, n) -> (i, Cluster.executed_log_of n)) live)
   with
  | Safety.Agreement | Safety.Prefix_lag _ -> ()
  | Safety.Conflict { seq; a; b } ->
    raise_alert t ~rule:"disagreement" ~replica:(-1)
      (Printf.sprintf "replicas %d and %d executed conflicting batches at seq=%Ld" a b
         seq));
  (* Retransmit storm: one replica absorbing retransmissions well beyond
     the transient a crash/view-change causes. *)
  List.iter
    (fun (i, _) ->
      if int_of_float (retx_delta t i) >= t.cfg.retx_threshold then
        raise_alert t ~rule:"retx-storm" ~replica:i
          (Printf.sprintf "%d retransmissions within the health window"
             (int_of_float (retx_delta t i))))
    nodes;
  (* Quorum stall: suspicion firing without view or execution progress. *)
  let exec_total =
    List.fold_left (fun acc (_, n) -> acc + Cluster.executed_count_of n) 0 nodes
  in
  let max_view = List.fold_left (fun m (_, n) -> max m (Cluster.view_of n)) 0 nodes in
  let suspects = suspect_total t in
  if exec_total > t.last_exec_total || max_view > t.last_max_view then begin
    t.stall_count <- 0;
    t.suspect_anchor <- suspects
  end
  else if suspects > t.suspect_anchor then begin
    t.stall_count <- t.stall_count + 1;
    if t.stall_count >= t.cfg.stall_samples then
      raise_alert t ~rule:"quorum-stall" ~replica:(-1)
        (Printf.sprintf
           "suspicion active for %d samples with no view or execution progress"
           t.stall_count)
  end;
  t.last_exec_total <- exec_total;
  t.last_max_view <- max_view;
  (* Keep the duplicate table bounded on very long runs; resetting only
     widens the storm window, it cannot create false positives. *)
  if Hashtbl.length t.flood > 500_000 then Hashtbl.reset t.flood

let rec schedule_sample t =
  ignore
    (Engine.schedule t.engine ~delay:t.cfg.sample_interval_us ~label:"detector:sample"
       (fun () ->
         sample t;
         schedule_sample t))

let attach ?(config = default_config) cluster =
  let engine = Cluster.engine cluster in
  let name = Cluster.protocol_name cluster in
  let params = Cluster.params cluster in
  let t =
    { cluster;
      cfg = config;
      engine;
      n = params.Cluster.n;
      f = Cluster.f cluster;
      wire = String.equal name "splitbft" || String.equal name "pbft";
      leak = Proto.confidential params.Cluster.protocol;
      lossless = params.Cluster.net.Network.drop_probability <= 0.0;
      health = Health.create ~window:config.health_window (Cluster.obs cluster);
      alerts_rev = [];
      alert_count = 0;
      seen = Hashtbl.create 32;
      proposals = Hashtbl.create 1024;
      prepares_to = Hashtbl.create 1024;
      commits_seen = Hashtbl.create 1024;
      flood = Hashtbl.create 4096;
      ckpt_votes = Hashtbl.create 64;
      certs = [];
      excused = Hashtbl.create 8;
      last_exec_total = 0;
      last_max_view = 0;
      suspect_anchor = 0.0;
      stall_count = 0 }
  in
  Network.add_tap (Cluster.network cluster) (fun ~src ~dst payload ->
      on_payload t ~src ~dst payload);
  (match Cluster.flight cluster with
  | Some fl -> Flight.on_event fl (fun ev -> on_flight t ev)
  | None -> ());
  Health.sample t.health ~at:(Engine.now engine);
  schedule_sample t;
  t

let alerts t = List.rev t.alerts_rev
let alert_count t = t.alert_count

let fired t =
  List.sort_uniq String.compare (List.map (fun a -> a.rule) t.alerts_rev)

let fired_at t ~replica =
  List.sort_uniq String.compare
    (List.filter_map
       (fun a -> if a.replica = replica then Some a.rule else None)
       t.alerts_rev)

let health t = t.health
let wire_rules_active t = t.wire
