(** Online byzantine anomaly detection over a running {!Cluster}.

    The detector is a passive, rules-based observer at the harness layer:
    it taps the simulated network ({!Splitbft_sim.Network.add_tap}),
    subscribes to the cluster's flight recorder, and samples registry
    metrics plus uniform node probes on a periodic engine event.  It
    registers no metrics, consumes no randomness, and schedules events
    only when attached — a run without a detector is byte-identical to a
    run before the detector existed.

    {2 Rule catalog}

    Wire rules (protocols using the shared {!Splitbft_types.Message}
    codec — SplitBFT and the PBFT baseline; MinBFT's inter-replica codec
    is distinct, so its payloads are not decoded):

    - [equivocation] — two proposals from the same (sender, view, seq)
      with different batch digests (byzantine Preparation / PBFT primary).
    - [digest-mismatch] — a bare digest-form PrePrepare on the wire.
      Honest primaries always broadcast the full form (the broker
      re-attaches elided bodies outside the enclave boundary), so a
      digest nobody can ever resolve to a batch is adversary-only
      ([corrupt-digest]).
    - [premature-commit] — a replica's first Commit(v, s) send observed
      before at least [max 1 (2f - 1)] distinct other replicas sent it a
      matching Prepare(v, s).  An honest commit requires 2f prepares of
      which at most one (its own) is locally supplied, and a send is
      tap-visible no later than its receipt — so the bound holds for
      every honest commit by causality, and zero false positives follow
      by construction ([promiscuous-commit]).
    - [duplicate-flood] — byte-identical (src, dst, payload) protocol
      sends (PrePrepare/Prepare/Commit only; Reply, ViewChange and
      state-transfer messages legitimately re-send) observed more than
      once ([duplicate-outputs]).
    - [stale-proof] — a ViewChange whose [vc_last_stable] trails the
      highest wire-complete checkpoint certificate (2f+1 matching
      Checkpoint senders) older than [stale_margin_us].  Skipped for
      replicas that crashed or restarted, and on lossy networks
      ([stale-proof]).
    - [checkpoint-mismatch] — a Checkpoint whose state digest conflicts
      with a quorum-certified digest at the same sequence number
      ([lie-checkpoint]).
    - [confidentiality-leak] — the workload canary in a wire payload or
      an untrusted-storage blob of a confidential protocol
      ([leak-plaintext]).

    Evidence rules (flight-recorder events):

    - [vote-divergence] — a client observed a validated reply vote that
      differs from the f+1 winning result ([corrupt-result], PBFT/MinBFT
      corrupt execution).

    Health rules (periodic samples of probes and windowed metrics):

    - [prefix-lag] — a live replica's executed prefix trails the longest
      by more than the lag window (default 2x the checkpoint interval).
    - [disagreement] — two live replicas executed conflicting batches at
      the same sequence number ({!Safety.agreement_of_logs}).
    - [retx-storm] — a single replica absorbed at least
      [retx_threshold] client retransmissions (suppressed + replayed)
      within the health window ([drop-outputs:K]).
    - [quorum-stall] — suspicion keeps firing while neither the maximum
      view nor the executed total advances for [stall_samples]
      consecutive sample intervals (environment starvation).

    [reorder-outputs] is deliberately not detected: a reordering
    environment is indistinguishable from tolerated network asynchrony,
    and the protocol masks it — the coverage matrix asserts containment
    (no alert, verdict unchanged) instead.

    Crash/restart flight events excuse a replica from [stale-proof],
    [prefix-lag] and [disagreement]: a recovering replica legitimately
    trails until state transfer completes. *)

type alert = {
  rule : string;
  replica : int;  (** accused replica id; [-1] for cluster-wide alerts *)
  at : float;  (** virtual time of detection, µs *)
  detail : string;
}

type config = {
  sample_interval_us : float;  (** health-rule sampling period (default 250 ms) *)
  health_window : int;  (** samples retained by the {!Health} sampler (default 16) *)
  stale_margin_us : float;
      (** grace between a wire-complete checkpoint certificate and the
          ViewChanges that must reflect it (default 200 ms) *)
  retx_threshold : int;
      (** retransmissions absorbed by one replica within the health
          window that constitute a storm (default 10) *)
  stall_samples : int;
      (** consecutive stalled samples (suspicion firing, no view/exec
          progress) before [quorum-stall] (default 3) *)
  lag_window : int option;
      (** executed-prefix lag tolerance; [None] (default) uses 2x the
          cluster's checkpoint interval *)
  max_alerts : int;  (** hard cap on retained alerts (default 256) *)
}

val default_config : config

val rules : string list
(** Every rule name the detector can fire, the alert catalog. *)

type t

val attach : ?config:config -> Cluster.t -> t
(** Installs the detector on a cluster: a network tap, a flight-recorder
    subscription (when the cluster has a recorder — without one the
    [vote-divergence] rule and crash excusal are inert), and a
    self-rescheduling sampling event.  Attach before the workload runs;
    alerts accumulate from that point on.  Each distinct (rule, replica)
    pair is reported once. *)

val alerts : t -> alert list
(** Alerts in detection order. *)

val alert_count : t -> int

val fired : t -> string list
(** Distinct rule names fired so far, sorted. *)

val fired_at : t -> replica:int -> string list
(** Distinct rule names fired against [replica], sorted. *)

val health : t -> Splitbft_obs.Health.t
(** The detector's windowed sampler (shared with dashboards). *)

val wire_rules_active : t -> bool
(** Whether wire-level rules run for this cluster's protocol. *)

val describe : alert -> string
(** One-line rendering: [rule@replica t=<ms> detail]. *)
