module Ids = Splitbft_types.Ids
module Cost_model = Splitbft_tee.Cost_model
module S = Splitbft_core.Replica
module Stats = Splitbft_util.Stats
module Lines = Splitbft_util.Lines
module Json = Splitbft_obs.Json
module Proto_pbft = Splitbft_proto.Proto_pbft
module Proto_splitbft = Splitbft_proto.Proto_splitbft

(* ----- shared runners ----- *)

(* [proto] lets a point swap in a SplitBFT instance with non-default knobs
   (lanes, workers, cache, threading) without touching the shared params. *)
let splitbft_params ?(proto = Proto_splitbft.protocol) ~batched ~app ~seed () =
  { (Cluster.default_params proto) with
    Cluster.app;
    batch_size = (if batched then 200 else 1);
    batch_timeout_us = 10_000.0;
    seed }

let pbft_params ~batched ~app ~seed =
  { (Cluster.default_params Proto_pbft.protocol) with
    Cluster.app;
    batch_size = (if batched then 200 else 1);
    batch_timeout_us = 10_000.0;
    seed }

(* Leader-side SplitBFT replica, for the ecall-accounting experiments
   (meaningless — [None] — under any other protocol). *)
let leader_split cluster = Proto_splitbft.replica_of (Cluster.node cluster 0)

let measure ?flight ?(prepare = fun (_ : Cluster.t) -> ())
    ?(at_warmup = fun (_ : Cluster.t) -> ()) params ~clients ~window ~warmup_us
    ~duration_us =
  let cluster = Cluster.create ?flight params in
  prepare cluster;
  let spec =
    { Workload.default_spec with
      Workload.clients;
      window;
      warmup_us;
      duration_us }
  in
  let result = Workload.run ~at_warmup:(fun () -> at_warmup cluster) cluster spec in
  (cluster, result)

(* ----- Figure 3 ----- *)

type fig3_point = { clients : int; throughput : float; latency_us : float }
type fig3_series = { series_label : string; points : fig3_point list }

let fig3 ?clients_list ?duration_us ~batched ~app () =
  let clients_list =
    match clients_list with Some l -> l | None -> [ 1; 10; 40; 100; 150 ]
  in
  let duration_us =
    match duration_us with
    | Some d -> d
    | None -> if batched then 500_000.0 else 1_000_000.0
  in
  let window = if batched then 40 else 1 in
  let series label params_of =
    { series_label = label;
      points =
        List.map
          (fun clients ->
            let _, r =
              measure (params_of ()) ~clients ~window ~warmup_us:(duration_us /. 3.0)
                ~duration_us
            in
            { clients;
              throughput = r.Workload.throughput_ops;
              latency_us = r.Workload.mean_latency_us })
          clients_list }
  in
  [ series "splitbft" (fun () -> splitbft_params ~batched ~app ~seed:21L ());
    series "pbft" (fun () -> pbft_params ~batched ~app ~seed:22L) ]

let print_fig3 ~title series =
  let clients =
    match series with
    | [] -> []
    | s :: _ -> List.map (fun p -> p.clients) s.points
  in
  let rows =
    List.map
      (fun c ->
        ( float_of_int c,
          List.concat_map
            (fun s ->
              match List.find_opt (fun p -> p.clients = c) s.points with
              | Some p -> [ p.throughput; p.latency_us ]
              | None -> [ nan; nan ])
            series ))
      clients
  in
  let columns =
    List.concat_map
      (fun s -> [ s.series_label ^ " ops/s"; s.series_label ^ " lat(us)" ])
      series
  in
  Table.print_series ~title ~x_label:"clients" ~columns ~rows

(* ----- Figure 4 ----- *)

type fig4_row = {
  compartment : string;
  mean_ecall_us : float;
  ecalls : int;
  us_per_request : float;
}

let fig4 ?(clients = 40) ~batched () =
  let executed_at_warmup = ref 0 in
  let at_warmup cluster =
    match leader_split cluster with
    | Some r ->
      S.reset_ecall_stats r;
      executed_at_warmup := S.executed_count r
    | None -> ()
  in
  let window = if batched then 40 else 1 in
  let duration_us = if batched then 500_000.0 else 800_000.0 in
  let cluster, _ =
    measure ~at_warmup
      (splitbft_params ~batched ~app:Cluster.App_kvs ~seed:31L ())
      ~clients ~window ~warmup_us:300_000.0 ~duration_us
  in
  match leader_split cluster with
  | Some r ->
    let executed = max 1 (S.executed_count r - !executed_at_warmup) in
    List.map
      (fun c ->
        let count, total, durations = S.ecall_stats r c in
        { compartment = Ids.compartment_name c;
          mean_ecall_us = Stats.mean durations;
          ecalls = count;
          us_per_request = total /. float_of_int executed })
      Ids.all_compartments
  | None -> []

let print_fig4 ~batched rows =
  let total = List.fold_left (fun acc r -> acc +. r.us_per_request) 0.0 rows in
  Table.print
    ~title:
      (Printf.sprintf
         "Figure 4 — leader ecall time per compartment (%s, 40 clients, KVS)"
         (if batched then "batched" else "unbatched"))
    ~header:[ "compartment"; "ecalls"; "mean ecall"; "us/request" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.compartment;
             string_of_int r.ecalls;
             Table.us r.mean_ecall_us;
             Printf.sprintf "%.1f" r.us_per_request ])
         rows
      @ [ [ "TOTAL"; ""; ""; Printf.sprintf "%.1f" total ] ])

(* ----- Table 2 ----- *)

type tcb_row = {
  component : string;
  shared_loc : int;
  logic_loc : int;
  total_loc : int;
}

let find_root () =
  let probe dir = Sys.file_exists (Filename.concat dir "lib/core/preparation.ml") in
  let rec up dir depth =
    if depth > 6 then None
    else if probe dir then Some dir
    else up (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  up (Sys.getcwd ()) 0

let ml_files_under root dirs =
  List.concat_map
    (fun dir ->
      let full = Filename.concat root dir in
      match Sys.readdir full with
      | entries ->
        Array.to_list entries
        |> List.filter (fun f -> Filename.check_suffix f ".ml")
        |> List.map (fun f -> Filename.concat full f)
      | exception Sys_error _ -> [])
    dirs

let code_loc files = (Lines.count_files files).Lines.code

let table2 ?root () =
  let root =
    match root with
    | Some r -> r
    | None -> ( match find_root () with Some r -> r | None -> ".")
  in
  let file sub = Filename.concat root sub in
  (* Shared types/crypto/codec compiled into every enclave, plus the
     in-enclave common logic. *)
  let shared_files =
    ml_files_under root [ "lib/types"; "lib/crypto"; "lib/codec" ]
    @ [ file "lib/core/common.ml"; file "lib/core/wire.ml"; file "lib/core/config.ml" ]
  in
  let shared = code_loc shared_files in
  let prep = code_loc [ file "lib/core/preparation.ml" ] in
  let conf = code_loc [ file "lib/core/confirmation.ml" ] in
  let app_loc = code_loc (ml_files_under root [ "lib/app" ]) in
  let exec = code_loc [ file "lib/core/execution.ml" ] + app_loc in
  let untrusted =
    code_loc
      ([ file "lib/core/broker.ml"; file "lib/core/replica.ml" ]
      @ ml_files_under root [ "lib/sim" ])
  in
  let counter = code_loc [ file "lib/minbft/usig.ml" ] in
  [ { component = "Preparation Enc.";
      shared_loc = shared;
      logic_loc = prep;
      total_loc = shared + prep };
    { component = "Confirmation Enc.";
      shared_loc = shared;
      logic_loc = conf;
      total_loc = shared + conf };
    { component = "Execution Enc.";
      shared_loc = shared;
      logic_loc = exec;
      total_loc = shared + exec };
    { component = "Untrusted Env."; shared_loc = 0; logic_loc = untrusted; total_loc = untrusted };
    { component = "Trusted Counter"; shared_loc = 0; logic_loc = counter; total_loc = counter } ]

let print_table2 rows =
  Table.print ~title:"Table 2 — TCB sizes (code lines of this implementation)"
    ~header:[ "component"; "shared"; "logic"; "total" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.component;
             (if r.shared_loc = 0 then "-" else string_of_int r.shared_loc);
             string_of_int r.logic_loc;
             string_of_int r.total_loc ])
         rows)

(* ----- §6 overhead decomposition (simulation mode) ----- *)

type simmode_result = {
  hardware_tput : float;
  simulation_tput : float;
  baseline_tput : float;
  transition_share_of_overhead : float;
}

let simmode ?(duration_us = 800_000.0) () =
  let clients = 40 in
  let run params =
    let _, r = measure params ~clients ~window:1 ~warmup_us:300_000.0 ~duration_us in
    r.Workload.throughput_ops
  in
  let hw = run (splitbft_params ~batched:false ~app:Cluster.App_kvs ~seed:41L ()) in
  let sim =
    run
      { (splitbft_params ~batched:false ~app:Cluster.App_kvs ~seed:41L ()) with
        Cluster.cost = Cost_model.simulation_mode Cost_model.default }
  in
  let pbft = run (pbft_params ~batched:false ~app:Cluster.App_kvs ~seed:42L) in
  (* Overhead accounting in per-request service time, as in §6. *)
  let t_hw = 1e6 /. hw and t_sim = 1e6 /. sim and t_pbft = 1e6 /. pbft in
  let share = (t_hw -. t_sim) /. Float.max 1e-9 (t_hw -. t_pbft) in
  { hardware_tput = hw;
    simulation_tput = sim;
    baseline_tput = pbft;
    transition_share_of_overhead = share }

let print_simmode r =
  Table.print ~title:"§6 — overhead decomposition via SGX simulation mode (unbatched KVS)"
    ~header:[ "configuration"; "throughput" ]
    ~rows:
      [ [ "SplitBFT (hardware mode)"; Table.ops r.hardware_tput ];
        [ "SplitBFT (simulation mode)"; Table.ops r.simulation_tput ];
        [ "PBFT baseline"; Table.ops r.baseline_tput ];
        [ "transition share of overhead"; Table.pct r.transition_share_of_overhead ] ]

(* ----- ablation: batch size ----- *)

type ablation_point = {
  ab_batch : int;
  ab_tput : float;
  ab_ecall_us_per_req : float;
}

let batch_ablation ?(batches = [ 1; 10; 50; 100; 200; 400 ]) ?(duration_us = 400_000.0) () =
  List.map
    (fun batch ->
      let executed_at_warmup = ref 0 in
      let at_warmup cluster =
        match leader_split cluster with
        | Some r ->
          S.reset_ecall_stats r;
          executed_at_warmup := S.executed_count r
        | None -> ()
      in
      let params =
        { (Cluster.default_params Proto_splitbft.protocol) with
          Cluster.batch_size = batch;
          batch_timeout_us = 10_000.0;
          seed = 61L }
      in
      let cluster, r =
        measure ~at_warmup params ~clients:40 ~window:40 ~warmup_us:200_000.0 ~duration_us
      in
      let per_req =
        match leader_split cluster with
        | Some replica ->
          let executed = max 1 (S.executed_count replica - !executed_at_warmup) in
          List.fold_left
            (fun acc c ->
              let _, total, _ = S.ecall_stats replica c in
              acc +. (total /. float_of_int executed))
            0.0 Ids.all_compartments
        | None -> nan
      in
      { ab_batch = batch; ab_tput = r.Workload.throughput_ops; ab_ecall_us_per_req = per_req })
    batches

let print_batch_ablation points =
  Table.print
    ~title:"Ablation — batch size vs enclave-transition amortization (SplitBFT KVS, 40x40 clients)"
    ~header:[ "batch"; "throughput"; "leader ecall us/request" ]
    ~rows:
      (List.map
         (fun p ->
           [ string_of_int p.ab_batch;
             Table.ops p.ab_tput;
             Printf.sprintf "%.1f" p.ab_ecall_us_per_req ])
         points)

(* ----- hotpath ablation: verified-digest cache on/off x batch size ----- *)

type hotpath_point = {
  hp_label : string;
  hp_batch : int;
  hp_cache : bool;
  hp_churn : bool;
  hp_tput : float;
  hp_ecall_us_per_req : float;
  hp_cache_hits : float;
  hp_cache_misses : float;
  hp_copy_bytes : float;
  hp_retx_suppressed : float;
}

let hotpath_point ?(detect = false) ~batch ~cache ~churn () =
  let executed_at_warmup = ref 0 in
  let at_warmup cluster =
    (match leader_split cluster with
    | Some r ->
      S.reset_ecall_stats r;
      executed_at_warmup := S.executed_count r
    | None -> ());
    if churn then begin
      (* Crash the view-0 primary right after warmup: the cluster view-
         changes under load and the host later restarts and catches up via
         state transfer — the paths on which verification results are
         legitimately reused (view-change proofs, checkpoint certificates,
         client retransmissions). *)
      Cluster.crash_host cluster 0;
      ignore
        (Splitbft_sim.Engine.schedule (Cluster.engine cluster) ~delay:900_000.0
           ~label:"hotpath:restart" (fun () -> Cluster.restart_host cluster 0))
    end
  in
  let params =
    { (Cluster.default_params (Proto_splitbft.make ~verify_cache:cache ())) with
      Cluster.batch_size = batch;
      batch_timeout_us = 10_000.0;
      seed = 71L }
  in
  let warmup_us = if churn then 300_000.0 else 200_000.0 in
  let duration_us = if churn then 1_600_000.0 else 400_000.0 in
  (* The detect arm carries the full observer stack — flight recorder
     plus attached anomaly detector — so the gated throughput delta
     against the plain point is the whole detectors-on bill. *)
  let flight = if detect then Some (Splitbft_obs.Flight.create ~capacity:4096 ()) else None in
  let prepare cluster = if detect then ignore (Detector.attach cluster) in
  let cluster, r =
    measure ?flight ~prepare ~at_warmup params ~clients:40 ~window:40 ~warmup_us ~duration_us
  in
  let per_req =
    (* Leader-side ecall time per executed request, as in the batch
       ablation.  In churn arms the view-0 leader spends part of the run
       crashed; the number is still deterministic and comparable between
       the cache arms, which is all the regression gate needs. *)
    match leader_split cluster with
    | Some replica ->
      let executed = max 1 (S.executed_count replica - !executed_at_warmup) in
      List.fold_left
        (fun acc c ->
          let _, total, _ = S.ecall_stats replica c in
          acc +. (total /. float_of_int executed))
        0.0 Ids.all_compartments
    | None -> nan
  in
  let obs = Cluster.obs cluster in
  let sum prefix = Splitbft_obs.Registry.sum obs ~prefix in
  { hp_label =
      Printf.sprintf "batch%d%s%s%s" batch
        (if cache then "" else "-nocache")
        (if churn then "-churn" else "")
        (if detect then "-detect" else "");
    hp_batch = batch;
    hp_cache = cache;
    hp_churn = churn;
    hp_tput = r.Workload.throughput_ops;
    hp_ecall_us_per_req = per_req;
    hp_cache_hits = sum "tee.verify_cache_hits";
    hp_cache_misses = sum "tee.verify_cache_misses";
    hp_copy_bytes = sum "tee.copy_bytes";
    hp_retx_suppressed = sum "broker.retx" }

let hotpath ?(batches = [ 1; 50; 200 ]) () =
  List.concat_map
    (fun cache ->
      List.map (fun batch -> hotpath_point ~batch ~cache ~churn:false ()) batches
      @ [ hotpath_point ~batch:200 ~cache ~churn:true () ]
      (* detectors-on twin of the saturated batch200 point: the CI gate
         holds its throughput within 3% of the plain one *)
      @ (if cache then [ hotpath_point ~detect:true ~batch:200 ~cache ~churn:false () ] else []))
    [ true; false ]

let print_hotpath points =
  Table.print
    ~title:
      "Hotpath ablation — verified-digest cache on/off (SplitBFT KVS, 40x40 clients; \
       churn = primary crash + view change + recovery)"
    ~header:
      [ "point"; "throughput"; "ecall us/req"; "cache hits"; "misses"; "copy MB";
        "retx early-rejects" ]
    ~rows:
      (List.map
         (fun p ->
           [ p.hp_label;
             Table.ops p.hp_tput;
             Printf.sprintf "%.1f" p.hp_ecall_us_per_req;
             Printf.sprintf "%.0f" p.hp_cache_hits;
             Printf.sprintf "%.0f" p.hp_cache_misses;
             Printf.sprintf "%.1f" (p.hp_copy_bytes /. 1e6);
             Printf.sprintf "%.0f" p.hp_retx_suppressed ])
         points)

(* ----- lanes ablation: consensus lanes x execution workers x batch ----- *)

type lanes_point = {
  lp_label : string;
  lp_lanes : int;
  lp_workers : int;
  lp_batch : int;
  lp_tput : float;
  lp_ecall_us_per_req : float;  (* leader, summed over compartments *)
  lp_pool_tasks : float;
  lp_pool_conflict_waits : float;
  lp_lane_ecalls : float;
}

let lanes_point ~lanes ~workers ~batch =
  let executed_at_warmup = ref 0 in
  let at_warmup cluster =
    match leader_split cluster with
    | Some r ->
      S.reset_ecall_stats r;
      executed_at_warmup := S.executed_count r
    | None -> ()
  in
  let params =
    { (Cluster.default_params (Proto_splitbft.make ~lanes ~exec_workers:workers ())) with
      Cluster.batch_size = batch;
      batch_timeout_us = 10_000.0;
      seed = 73L }
  in
  (* More offered load than the hotpath arms: the point of lanes/workers is
     to raise the saturation ceiling, so the clients must not be the
     bottleneck (120 x 40 = 4800 outstanding requests). *)
  let cluster, r =
    measure ~at_warmup params ~clients:120 ~window:40 ~warmup_us:200_000.0
      ~duration_us:400_000.0
  in
  let per_req =
    match leader_split cluster with
    | Some replica ->
      let executed = max 1 (S.executed_count replica - !executed_at_warmup) in
      List.fold_left
        (fun acc c ->
          let _, total, _ = S.ecall_stats replica c in
          acc +. (total /. float_of_int executed))
        0.0 Ids.all_compartments
    | None -> nan
  in
  let obs = Cluster.obs cluster in
  let sum prefix = Splitbft_obs.Registry.sum obs ~prefix in
  { lp_label = Printf.sprintf "l%dw%db%d" lanes workers batch;
    lp_lanes = lanes;
    lp_workers = workers;
    lp_batch = batch;
    lp_tput = r.Workload.throughput_ops;
    lp_ecall_us_per_req = per_req;
    lp_pool_tasks = sum "tee.pool_tasks";
    lp_pool_conflict_waits = sum "tee.pool_conflict_waits";
    lp_lane_ecalls = sum "broker.lane_ecalls" }

let lanes_grid =
  [ (1, 1, 200);
    (4, 1, 200);
    (1, 4, 200);
    (2, 2, 200);
    (4, 4, 200);
    (8, 4, 200);
    (4, 4, 50) ]

let lanes ?(grid = lanes_grid) () =
  List.map (fun (lanes, workers, batch) -> lanes_point ~lanes ~workers ~batch) grid

let print_lanes points =
  Table.print
    ~title:
      "Lanes ablation — consensus lanes x execution workers x batch (SplitBFT KVS, \
       120x40 clients)"
    ~header:
      [ "point"; "throughput"; "ecall us/req"; "pool tasks"; "conflict waits";
        "lane ecalls" ]
    ~rows:
      (List.map
         (fun p ->
           [ p.lp_label;
             Table.ops p.lp_tput;
             Printf.sprintf "%.1f" p.lp_ecall_us_per_req;
             Printf.sprintf "%.0f" p.lp_pool_tasks;
             Printf.sprintf "%.0f" p.lp_pool_conflict_waits;
             Printf.sprintf "%.0f" p.lp_lane_ecalls ])
         points)

(* ----- §6 threading ceilings ----- *)

type ceilings_result = {
  single_thread_tput : float;
  multi_thread_tput : float;
  predicted_single : float;
  predicted_multi : float;
  sum_ecall_us : float;
  exec_ecall_us : float;
}

let ceilings ?(duration_us = 800_000.0) () =
  let clients = 40 in
  let executed_at_warmup = ref 0 in
  let at_warmup cluster =
    match leader_split cluster with
    | Some r ->
      S.reset_ecall_stats r;
      executed_at_warmup := S.executed_count r
    | None -> ()
  in
  let multi_cluster, multi =
    measure ~at_warmup
      (splitbft_params ~batched:false ~app:Cluster.App_kvs ~seed:51L ())
      ~clients ~window:1 ~warmup_us:300_000.0 ~duration_us
  in
  let sum_ecall, exec_ecall =
    match leader_split multi_cluster with
    | Some r ->
      let executed = max 1 (S.executed_count r - !executed_at_warmup) in
      let per_req c =
        let _, total, _ = S.ecall_stats r c in
        total /. float_of_int executed
      in
      ( List.fold_left (fun acc c -> acc +. per_req c) 0.0 Ids.all_compartments,
        per_req Ids.Execution )
    | None -> (nan, nan)
  in
  let _, single =
    measure
      (splitbft_params
         ~proto:(Proto_splitbft.make ~threading:Splitbft_core.Config.Single_thread ())
         ~batched:false ~app:Cluster.App_kvs ~seed:51L ())
      ~clients ~window:1 ~warmup_us:300_000.0 ~duration_us
  in
  { single_thread_tput = single.Workload.throughput_ops;
    multi_thread_tput = multi.Workload.throughput_ops;
    predicted_single = 1e6 /. sum_ecall;
    predicted_multi = 1e6 /. exec_ecall;
    sum_ecall_us = sum_ecall;
    exec_ecall_us = exec_ecall }

let print_ceilings r =
  Table.print
    ~title:"§6 — ecall threading ceilings (unbatched KVS, 40 clients)"
    ~header:[ "configuration"; "measured"; "predicted ceiling" ]
    ~rows:
      [ [ "single ecall thread";
          Table.ops r.single_thread_tput;
          Printf.sprintf "%s (1e6 / %.0fus)" (Table.ops r.predicted_single) r.sum_ecall_us ];
        [ "thread per enclave";
          Table.ops r.multi_thread_tput;
          Printf.sprintf "%s (1e6 / %.0fus)" (Table.ops r.predicted_multi) r.exec_ecall_us ] ]

(* ----- machine-readable artifacts (BENCH_*.json) ----- *)

let num x = if Float.is_finite x then Json.Float x else Json.Null

let json_of_fig3 series =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [ ("series", Json.Str s.series_label);
             ("points",
              Json.List
                (List.map
                   (fun p ->
                     Json.Obj
                       [ ("clients", Json.Int p.clients);
                         ("throughput_ops", num p.throughput);
                         ("latency_us", num p.latency_us) ])
                   s.points)) ])
       series)

let json_of_fig4 rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [ ("compartment", Json.Str r.compartment);
             ("ecalls", Json.Int r.ecalls);
             ("mean_ecall_us", num r.mean_ecall_us);
             ("us_per_request", num r.us_per_request) ])
       rows)

let json_of_table2 rows =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [ ("component", Json.Str r.component);
             ("shared_loc", Json.Int r.shared_loc);
             ("logic_loc", Json.Int r.logic_loc);
             ("total_loc", Json.Int r.total_loc) ])
       rows)

let json_of_simmode r =
  Json.Obj
    [ ("hardware_tput", num r.hardware_tput);
      ("simulation_tput", num r.simulation_tput);
      ("baseline_tput", num r.baseline_tput);
      ("transition_share_of_overhead", num r.transition_share_of_overhead) ]

let json_of_batch_ablation points =
  Json.List
    (List.map
       (fun p ->
         Json.Obj
           [ ("batch", Json.Int p.ab_batch);
             ("throughput_ops", num p.ab_tput);
             ("ecall_us_per_request", num p.ab_ecall_us_per_req) ])
       points)

let json_of_hotpath points =
  Json.List
    (List.map
       (fun p ->
         Json.Obj
           [ ("label", Json.Str p.hp_label);
             ("batch", Json.Int p.hp_batch);
             ("cache", Json.Bool p.hp_cache);
             ("churn", Json.Bool p.hp_churn);
             ("throughput_ops", num p.hp_tput);
             ("ecall_us_per_request", num p.hp_ecall_us_per_req);
             ("verify_cache_hits", num p.hp_cache_hits);
             ("verify_cache_misses", num p.hp_cache_misses);
             ("copy_bytes", num p.hp_copy_bytes);
             ("retx_early_rejects", num p.hp_retx_suppressed) ])
       points)

let json_of_lanes points =
  Json.List
    (List.map
       (fun p ->
         Json.Obj
           [ ("label", Json.Str p.lp_label);
             ("lanes", Json.Int p.lp_lanes);
             ("workers", Json.Int p.lp_workers);
             ("batch", Json.Int p.lp_batch);
             ("throughput_ops", num p.lp_tput);
             ("ecall_us_per_request", num p.lp_ecall_us_per_req);
             ("pool_tasks", num p.lp_pool_tasks);
             ("pool_conflict_waits", num p.lp_pool_conflict_waits);
             ("lane_ecalls", num p.lp_lane_ecalls) ])
       points)

let json_of_ceilings r =
  Json.Obj
    [ ("single_thread_tput", num r.single_thread_tput);
      ("multi_thread_tput", num r.multi_thread_tput);
      ("predicted_single", num r.predicted_single);
      ("predicted_multi", num r.predicted_multi);
      ("sum_ecall_us", num r.sum_ecall_us);
      ("exec_ecall_us", num r.exec_ecall_us) ]

(* ----- open-loop latency vs offered load ----- *)

type openloop_point = {
  ol_label : string;
  ol_arrival : string;
  ol_rate : float;
  ol_offered : float;
  ol_achieved : float;
  ol_mean_us : float;
  ol_p50_us : float;
  ol_p95_us : float;
  ol_p99_us : float;
  ol_backlog : int;
  ol_conflict_waits : float;
}

type openloop_result = {
  ol_points : openloop_point list;
  ol_knee_zipf_ops : float;
  ol_knee_uniform_ops : float;
  ol_half_label : string;
  ol_half_p99_us : float;
}

let openloop_spec =
  { Workload.Open_loop.default_spec with
    warmup_us = 150_000.0;
    duration_us = 300_000.0;
    connections = 64;
    window = 64;
    identities = 1_000_000;
    identity_cache = 4096;
    zipf_s = 0.99;
    keyspace = 65_536;
    read_ratio = 0.9 }

let openloop_proto () = Proto_splitbft.make ~lanes:4 ~exec_workers:4 ()

let openloop_point ?(proto = openloop_proto ()) ~spec ~label ~arrival ~rate () =
  let params =
    { (Cluster.default_params proto) with
      Cluster.batch_size = 200;
      batch_timeout_us = 10_000.0;
      seed = 79L }
  in
  let cluster = Cluster.create params in
  let spec = { spec with Workload.Open_loop.arrival; rate_ops = rate } in
  let r = Workload.Open_loop.run cluster spec in
  let arrival_name =
    match arrival with
    | Workload.Open_loop.Poisson -> "poisson"
    | Workload.Open_loop.Bursty _ -> "bursty"
  in
  { ol_label = label;
    ol_arrival = arrival_name;
    ol_rate = rate;
    ol_offered = r.Workload.Open_loop.offered_ops;
    ol_achieved = r.Workload.Open_loop.achieved_ops;
    ol_mean_us = r.Workload.Open_loop.ol_mean_latency_us;
    ol_p50_us = r.Workload.Open_loop.ol_p50_latency_us;
    ol_p95_us = r.Workload.Open_loop.ol_p95_latency_us;
    ol_p99_us = r.Workload.Open_loop.ol_p99_latency_us;
    ol_backlog = r.Workload.Open_loop.backlog_peak;
    ol_conflict_waits = Splitbft_obs.Registry.sum (Cluster.obs cluster) ~prefix:"tee.pool_conflict_waits" }

let openloop_rates = [ 150e3; 300e3; 450e3; 600e3; 700e3 ]

(* The Zipf-0.99 arm saturates well below the closed-loop pipeline
   ceiling: with 10% writes, the hot key appears as a write in most
   200-request batches, and one hot write conflict-serializes the
   Execution worker pool (the plateau sits near the l4w1 lanes point).
   The uniform-key arm removes that workload property so its knee
   measures the pipeline capacity itself, comparable to the closed-loop
   l4w4 ceiling; both knees are gated in CI. *)
let openloop_uniform_rates = [ 300e3; 450e3; 600e3; 700e3 ]

let openloop_bursty =
  Workload.Open_loop.Bursty { peak_factor = 4.0; period_us = 50_000.0; duty = 0.2 }

(* First offered load at which the achieved rate falls below 95% of
   offered, linearly interpolated between the straddling sweep points; the
   max swept load when the system keeps up everywhere. *)
let openloop_knee points =
  let deficit p = p.ol_achieved -. (0.95 *. p.ol_offered) in
  let rec go prev = function
    | [] -> (match prev with Some q -> q.ol_offered | None -> nan)
    | p :: rest ->
      if deficit p < 0.0 then
        (match prev with
        | None -> p.ol_offered
        | Some q ->
          let f1 = deficit q and f2 = deficit p in
          if f1 <= f2 then p.ol_offered
          else q.ol_offered +. ((p.ol_offered -. q.ol_offered) *. (f1 /. (f1 -. f2))))
      else go (Some p) rest
  in
  go None points

let openloop ?(rates = openloop_rates) ?(uniform_rates = openloop_uniform_rates)
    ?(bursty_rates = [ 300e3 ]) ?(spec = openloop_spec) ?proto () =
  let rates = List.sort compare rates in
  let uniform_rates = List.sort compare uniform_rates in
  let label kind rate = Printf.sprintf "%s-%.0fk" kind (rate /. 1e3) in
  let point = openloop_point ?proto ~spec in
  let poisson =
    List.map
      (fun rate ->
        point ~label:(label "poisson" rate) ~arrival:Workload.Open_loop.Poisson ~rate ())
      rates
  in
  let uniform_point =
    openloop_point ?proto ~spec:{ spec with Workload.Open_loop.zipf_s = 0.0 }
  in
  let uniform =
    List.map
      (fun rate ->
        uniform_point ~label:(label "uniform" rate) ~arrival:Workload.Open_loop.Poisson
          ~rate ())
      uniform_rates
  in
  let bursty =
    List.map
      (fun rate -> point ~label:(label "bursty" rate) ~arrival:openloop_bursty ~rate ())
      bursty_rates
  in
  let knee = openloop_knee poisson in
  let knee_uniform = openloop_knee uniform in
  (* p99 at ~50% of the sweep's top load: a fixed grid point, so the CI
     gate compares like against like across runs. *)
  let half_target = 0.5 *. List.fold_left Float.max 0.0 rates in
  let half =
    List.fold_left
      (fun best p ->
        match best with
        | None -> Some p
        | Some b ->
          if Float.abs (p.ol_rate -. half_target) < Float.abs (b.ol_rate -. half_target)
          then Some p
          else Some b)
      None poisson
  in
  let points = poisson @ uniform @ bursty in
  match half with
  | None ->
    { ol_points = points;
      ol_knee_zipf_ops = knee;
      ol_knee_uniform_ops = knee_uniform;
      ol_half_label = "";
      ol_half_p99_us = nan }
  | Some h ->
    { ol_points = points;
      ol_knee_zipf_ops = knee;
      ol_knee_uniform_ops = knee_uniform;
      ol_half_label = h.ol_label;
      ol_half_p99_us = h.ol_p99_us }

let print_openloop r =
  Table.print
    ~title:
      "Open-loop sweep — latency vs offered load (SplitBFT l4w4 b200, 64 conns x \
       window 64, 1M identities; zipf/bursty arms at Zipf 0.99, uniform arm at s=0)"
    ~header:
      [ "point"; "offered"; "achieved"; "p50 us"; "p95 us"; "p99 us"; "backlog";
        "conflict waits" ]
    ~rows:
      (List.map
         (fun p ->
           [ p.ol_label;
             Table.ops p.ol_offered;
             Table.ops p.ol_achieved;
             Printf.sprintf "%.0f" p.ol_p50_us;
             Printf.sprintf "%.0f" p.ol_p95_us;
             Printf.sprintf "%.0f" p.ol_p99_us;
             string_of_int p.ol_backlog;
             Printf.sprintf "%.0f" p.ol_conflict_waits ])
         r.ol_points);
  Printf.printf "  saturation knee, zipf 0.99: %s ops/s (achieved < 95%% of offered)\n"
    (Table.ops r.ol_knee_zipf_ops);
  Printf.printf "  saturation knee, uniform keys: %s ops/s\n"
    (Table.ops r.ol_knee_uniform_ops);
  Printf.printf "  p99 at half load (%s): %.0f us\n%!" r.ol_half_label r.ol_half_p99_us

let json_of_openloop r =
  let point p =
    Json.Obj
      [ ("label", Json.Str p.ol_label);
        ("arrival", Json.Str p.ol_arrival);
        ("rate_ops", num p.ol_rate);
        ("offered_ops", num p.ol_offered);
        ("throughput_ops", num p.ol_achieved);
        ("mean_latency_us", num p.ol_mean_us);
        ("p50_latency_us", num p.ol_p50_us);
        ("p95_latency_us", num p.ol_p95_us);
        ("p99_latency_us", num p.ol_p99_us);
        ("backlog_peak", Json.Int p.ol_backlog);
        ("pool_conflict_waits", num p.ol_conflict_waits) ]
  in
  Json.List
    (List.map point r.ol_points
    @ [ Json.Obj
          [ ("label", Json.Str "knee-zipf"); ("throughput_ops", num r.ol_knee_zipf_ops) ];
        Json.Obj
          [ ("label", Json.Str "knee-uniform");
            ("throughput_ops", num r.ol_knee_uniform_ops) ];
        Json.Obj
          [ ("label", Json.Str "p99-at-half-load");
            ("at", Json.Str r.ol_half_label);
            ("p99_latency_us", num r.ol_half_p99_us) ] ])

(* ----- storage — follower read scaling ----- *)

type storage_point = {
  st_label : string;
  st_followers : int;
  st_read_ops : float;
  st_write_ops : float;
  st_stale : int;
  st_refused : int;
  st_wrong : int;
  st_rd_mean_us : float;
  st_rd_p99_us : float;
}

type storage_result = {
  st_points : storage_point list;
  st_scale_f4 : float;
}

let storage_spec =
  (* 192 drivers offer well past a single follower's ~10k reads/s
     service capacity (100 µs/read) even though each driver spends most
     of its cycle in the 95/5 mix's quorum-path writes, so the sweep
     shows per-follower capacity scaling through f4 (the write path
     saturates near 2.3k writes/s, which in a closed 95/5 loop caps
     reads around 43k/s — still above 4 followers' 40k capacity). *)
  { Workload.Reads.default_spec with
    Workload.Reads.clients = 192;
    warmup_us = 200_000.0;
    duration_us = 600_000.0 }

let storage_proto () = Proto_splitbft.make ~segment_entries:64 ()

let storage_point ?(proto = storage_proto ()) ~spec ~followers () =
  let params =
    { (Cluster.default_params proto) with
      Cluster.checkpoint_interval = 64;
      seed = 83L;
      followers }
  in
  let cluster = Cluster.create params in
  let r = Workload.Reads.run cluster spec in
  { st_label = Printf.sprintf "reads-f%d" followers;
    st_followers = followers;
    st_read_ops = r.Workload.Reads.read_ops;
    st_write_ops = r.Workload.Reads.write_ops;
    st_stale = r.Workload.Reads.stale_reads;
    st_refused = r.Workload.Reads.refused_reads;
    st_wrong = r.Workload.Reads.wrong_reads;
    st_rd_mean_us = r.Workload.Reads.rd_mean_latency_us;
    st_rd_p99_us = r.Workload.Reads.rd_p99_latency_us }

let storage ?(follower_counts = [ 0; 1; 2; 4 ]) ?(spec = storage_spec) ?proto () =
  let points =
    List.map (fun followers -> storage_point ?proto ~spec ~followers ()) follower_counts
  in
  let read_ops_of n =
    match List.find_opt (fun p -> p.st_followers = n) points with
    | Some p -> p.st_read_ops
    | None -> nan
  in
  let scale =
    let f0 = read_ops_of 0 and f4 = read_ops_of 4 in
    if Float.is_finite f0 && f0 > 0.0 then f4 /. f0 else nan
  in
  { st_points = points; st_scale_f4 = scale }

let print_storage r =
  Table.print
    ~title:
      "Storage — follower read scaling (SplitBFT + Proteus ledger, 95/5 Zipf 0.99 \
       mix; reads off the critical path via f+1-vouched followers)"
    ~header:
      [ "point"; "followers"; "reads/s"; "writes/s"; "rd mean us"; "rd p99 us";
        "stale"; "refused"; "wrong" ]
    ~rows:
      (List.map
         (fun p ->
           [ p.st_label;
             string_of_int p.st_followers;
             Table.ops p.st_read_ops;
             Table.ops p.st_write_ops;
             Printf.sprintf "%.0f" p.st_rd_mean_us;
             Printf.sprintf "%.0f" p.st_rd_p99_us;
             string_of_int p.st_stale;
             string_of_int p.st_refused;
             string_of_int p.st_wrong ])
         r.st_points);
  Printf.printf "  read scaling, 4 followers vs consensus-only baseline: %.2fx\n%!"
    r.st_scale_f4

let json_of_storage r =
  let point p =
    Json.Obj
      [ ("label", Json.Str p.st_label);
        ("followers", Json.Int p.st_followers);
        ("throughput_ops", num p.st_read_ops);
        ("write_ops", num p.st_write_ops);
        ("mean_latency_us", num p.st_rd_mean_us);
        ("p99_latency_us", num p.st_rd_p99_us);
        ("stale_reads", Json.Int p.st_stale);
        ("refused_reads", Json.Int p.st_refused);
        ("wrong_reads", Json.Int p.st_wrong) ]
  in
  Json.List
    (List.map point r.st_points
    @ [ Json.Obj
          [ ("label", Json.Str "read-scale-f4-vs-f0");
            ("throughput_ops", num r.st_scale_f4) ] ])
