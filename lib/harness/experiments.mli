(** The paper's evaluation, experiment by experiment.

    Each function deploys fresh clusters, drives the §6 workloads, and
    returns structured results; the [print_*] companions render them in
    the shape of the corresponding paper artifact.  See DESIGN.md §4 for
    the experiment index and EXPERIMENTS.md for measured-vs-paper
    numbers. *)

(** {2 Figure 3 — throughput and latency} *)

type fig3_point = {
  clients : int;
  throughput : float;  (** ops/s *)
  latency_us : float;  (** mean *)
}

type fig3_series = { series_label : string; points : fig3_point list }

val fig3 :
  ?clients_list:int list ->
  ?duration_us:float ->
  batched:bool ->
  app:Cluster.app_kind ->
  unit ->
  fig3_series list
(** SplitBFT and PBFT series over the client sweep.  Unbatched runs use
    synchronous clients; batched runs use batch size 200, 10 ms batch
    timeout and 40 outstanding requests per client, as in §6. *)

val print_fig3 : title:string -> fig3_series list -> unit

(** {2 Figure 4 — ecall latency per compartment} *)

type fig4_row = {
  compartment : string;
  mean_ecall_us : float;
  ecalls : int;
  us_per_request : float;  (** total compartment ecall time per executed request *)
}

val fig4 : ?clients:int -> batched:bool -> unit -> fig4_row list
(** Leader-side measurement with 40 clients on the KVS, per the paper. *)

val print_fig4 : batched:bool -> fig4_row list -> unit

(** {2 Table 2 — TCB sizes} *)

type tcb_row = {
  component : string;
  shared_loc : int;  (** shared types/logic compiled into every enclave *)
  logic_loc : int;  (** compartment-specific logic *)
  total_loc : int;
}

val table2 : ?root:string -> unit -> tcb_row list
(** Counts code lines of this repository's own sources (tokei-style),
    attributing shared protocol types/crypto to every enclave, per the
    paper's methodology.  [root] defaults to the source tree detected from
    the current directory. *)

val print_table2 : tcb_row list -> unit

(** {2 §6 overhead decomposition — SGX simulation mode} *)

type simmode_result = {
  hardware_tput : float;
  simulation_tput : float;
  baseline_tput : float;  (** PBFT *)
  transition_share_of_overhead : float;
      (** fraction of the SplitBFT-vs-PBFT gap explained by transitions *)
}

val simmode : ?duration_us:float -> unit -> simmode_result
val print_simmode : simmode_result -> unit

(** {2 Ablation — batch size vs transition amortization} *)

type ablation_point = {
  ab_batch : int;
  ab_tput : float;
  ab_ecall_us_per_req : float;  (** total leader ecall time per request *)
}

val batch_ablation : ?batches:int list -> ?duration_us:float -> unit -> ablation_point list
(** SplitBFT KVS, 40 clients with 40 outstanding requests each, sweeping
    the batch size: shows the enclave-transition amortization that
    motivates batching in §6. *)

val print_batch_ablation : ablation_point list -> unit

(** {2 Hotpath ablation — verified-digest cache on/off}

    The perf-regression gate's pinned sweep ([bench hotpath]): saturated
    SplitBFT-KVS points across batch sizes with the enclaves' hot-path
    layer (verified-digest cache, lazy verification, broker retransmit
    early-reject) enabled and disabled, plus a churn point (primary crash,
    view change, crash-recovery) that exercises the paths on which
    verification results are legitimately reused. *)

type hotpath_point = {
  hp_label : string;  (** stable key the regression gate matches on *)
  hp_batch : int;
  hp_cache : bool;
  hp_churn : bool;
  hp_tput : float;
  hp_ecall_us_per_req : float;
  hp_cache_hits : float;  (** summed [tee.verify_cache_hits] *)
  hp_cache_misses : float;
  hp_copy_bytes : float;  (** summed [tee.copy_bytes] *)
  hp_retx_suppressed : float;  (** broker early-rejected retransmissions *)
}

val hotpath : ?batches:int list -> unit -> hotpath_point list
val print_hotpath : hotpath_point list -> unit

(** {2 Lanes ablation — pipelined consensus and parallel execution}

    The multi-lane sweep ([bench lanes]): SplitBFT-KVS under heavy offered
    load (80 clients, window 40) across (consensus lanes × Execution
    workers × batch size) points.  The (1, 1, _) point is the serial
    reference; raising lanes pipelines preprepare/prepare/commit across
    in-flight seqnos, raising workers lets non-conflicting batches execute
    in parallel — results stay bit-identical to serial, only cost timing
    changes. *)

type lanes_point = {
  lp_label : string;  (** stable key the regression gate matches on *)
  lp_lanes : int;
  lp_workers : int;
  lp_batch : int;
  lp_tput : float;
  lp_ecall_us_per_req : float;  (** leader, summed over compartments *)
  lp_pool_tasks : float;  (** summed [tee.pool_tasks] *)
  lp_pool_conflict_waits : float;  (** summed [tee.pool_conflict_waits] *)
  lp_lane_ecalls : float;  (** summed [broker.lane_ecalls] *)
}

val lanes : ?grid:(int * int * int) list -> unit -> lanes_point list
(** [grid] elements are (lanes, workers, batch). *)

val print_lanes : lanes_point list -> unit

(** {2 §6 threading ceilings} *)

type ceilings_result = {
  single_thread_tput : float;
  multi_thread_tput : float;
  predicted_single : float;  (** 1e6 / (sum of per-request ecall time) *)
  predicted_multi : float;  (** 1e6 / (Execution per-request ecall time) *)
  sum_ecall_us : float;
  exec_ecall_us : float;
}

val ceilings : ?duration_us:float -> unit -> ceilings_result
val print_ceilings : ceilings_result -> unit

(** {2 Open-loop sweep — latency vs offered load}

    The planet-scale harness ([bench openloop]): SplitBFT (4 lanes, 4
    Execution workers, batch 200) under {!Workload.Open_loop} traffic —
    arrivals scheduled by the process, not by completions, 1M simulated
    identities over 64 attested connections, Zipf-0.99 key skew, read-mostly
    mix.  Reports arrival-to-reply percentiles per offered load, locates the
    saturation knee (first load where achieved < 95% of offered,
    interpolated), and adds a bursty (square-wave diurnal) point.

    Two Poisson arms, two knees: the Zipf-0.99 arm saturates where
    hot-key write conflicts serialize the Execution worker pool, well
    below pipeline capacity; the uniform-key arm's knee measures the
    pipeline itself and is comparable to the closed-loop l4w4 ceiling
    from {!lanes}.  Both are gated in CI. *)

type openloop_point = {
  ol_label : string;  (** stable key the regression gate matches on *)
  ol_arrival : string;  (** "poisson" or "bursty" *)
  ol_rate : float;  (** configured mean offered load, ops/s *)
  ol_offered : float;  (** measured arrivals/s in the window *)
  ol_achieved : float;  (** measured completions/s in the window *)
  ol_mean_us : float;
  ol_p50_us : float;
  ol_p95_us : float;
  ol_p99_us : float;
  ol_backlog : int;  (** peak submitted-but-uncompleted operations *)
  ol_conflict_waits : float;  (** summed [tee.pool_conflict_waits] *)
}

type openloop_result = {
  ol_points : openloop_point list;
  ol_knee_zipf_ops : float;  (** saturation knee of the Zipf-0.99 arm, ops/s *)
  ol_knee_uniform_ops : float;  (** saturation knee of the uniform-key arm, ops/s *)
  ol_half_label : string;  (** poisson point nearest 50% of the top swept load *)
  ol_half_p99_us : float;  (** its p99 — the latency the CI gate pins *)
}

val openloop_spec : Workload.Open_loop.spec
(** The default sweep spec: 150 ms warm-up / 300 ms measurement, 64
    connections x window 64, 1M identities over a 4096-entry LRU,
    Zipf 0.99 over 64k keys, 90% reads. *)

val openloop :
  ?rates:float list ->
  ?uniform_rates:float list ->
  ?bursty_rates:float list ->
  ?spec:Workload.Open_loop.spec ->
  ?proto:Cluster.Proto.t ->
  unit ->
  openloop_result
(** [rates] are the Zipf-arm Poisson offered loads (default 150k..700k
    ops/s); [uniform_rates] the uniform-key arm (default 300k..700k);
    [bursty_rates] add square-wave points (default one at 300k mean). *)

val print_openloop : openloop_result -> unit

(** {2 Machine-readable artifacts}

    JSON encoders for the [BENCH_*.json] trajectory: every artifact above
    can be emitted via [bench/main.exe --json] alongside the registry
    snapshot of an instrumented run. *)

val json_of_fig3 : fig3_series list -> Splitbft_obs.Json.t
val json_of_fig4 : fig4_row list -> Splitbft_obs.Json.t
val json_of_table2 : tcb_row list -> Splitbft_obs.Json.t
val json_of_simmode : simmode_result -> Splitbft_obs.Json.t
val json_of_batch_ablation : ablation_point list -> Splitbft_obs.Json.t
val json_of_hotpath : hotpath_point list -> Splitbft_obs.Json.t
val json_of_lanes : lanes_point list -> Splitbft_obs.Json.t
val json_of_ceilings : ceilings_result -> Splitbft_obs.Json.t

val json_of_openloop : openloop_result -> Splitbft_obs.Json.t
(** Flat labeled rows (one per sweep point, plus aggregate ["knee-zipf"],
    ["knee-uniform"] and ["p99-at-half-load"] rows) — the shape
    [bin/bench_check.ml] gates. *)

(** {2 Storage — follower read scaling}

    The ledger/follower sweep ([bench storage]): SplitBFT with the
    rollback-protected ledger enabled (64-entry segments) feeding 0, 1, 2
    and 4 read-only follower replicas, driven by the {!Workload.Reads}
    95/5 Zipf-0.99 mix.  The 0-follower point routes reads through
    consensus — the baseline the read-scaling ratio (and its CI gate,
    [reads-f4] at ≥ 2x [reads-f0]) is measured against. *)

type storage_point = {
  st_label : string;  (** stable key the regression gate matches on *)
  st_followers : int;
  st_read_ops : float;  (** served reads per second inside the window *)
  st_write_ops : float;
  st_stale : int;  (** reads refused for exceeding the lag bound *)
  st_refused : int;
  st_wrong : int;
  st_rd_mean_us : float;
  st_rd_p99_us : float;
}

type storage_result = {
  st_points : storage_point list;
  st_scale_f4 : float;  (** [reads-f4] read throughput over [reads-f0] *)
}

val storage_spec : Workload.Reads.spec
(** The default sweep spec: 8 drivers, 95/5 mix, Zipf 0.99 over 256 keys,
    200 ms warm-up / 600 ms measurement. *)

val storage :
  ?follower_counts:int list ->
  ?spec:Workload.Reads.spec ->
  ?proto:Cluster.Proto.t ->
  unit ->
  storage_result
(** [follower_counts] defaults to [[0; 1; 2; 4]]; [proto] to SplitBFT with
    64-entry ledger segments. *)

val print_storage : storage_result -> unit
val json_of_storage : storage_result -> Splitbft_obs.Json.t
(** Flat labeled rows (one per follower count, plus the aggregate
    ["read-scale-f4-vs-f0"] ratio row the CI gate pins at >= 2.0). *)
