(** The paper's evaluation, experiment by experiment.

    Each function deploys fresh clusters, drives the §6 workloads, and
    returns structured results; the [print_*] companions render them in
    the shape of the corresponding paper artifact.  See DESIGN.md §4 for
    the experiment index and EXPERIMENTS.md for measured-vs-paper
    numbers. *)

(** {2 Figure 3 — throughput and latency} *)

type fig3_point = {
  clients : int;
  throughput : float;  (** ops/s *)
  latency_us : float;  (** mean *)
}

type fig3_series = { series_label : string; points : fig3_point list }

val fig3 :
  ?clients_list:int list ->
  ?duration_us:float ->
  batched:bool ->
  app:Cluster.app_kind ->
  unit ->
  fig3_series list
(** SplitBFT and PBFT series over the client sweep.  Unbatched runs use
    synchronous clients; batched runs use batch size 200, 10 ms batch
    timeout and 40 outstanding requests per client, as in §6. *)

val print_fig3 : title:string -> fig3_series list -> unit

(** {2 Figure 4 — ecall latency per compartment} *)

type fig4_row = {
  compartment : string;
  mean_ecall_us : float;
  ecalls : int;
  us_per_request : float;  (** total compartment ecall time per executed request *)
}

val fig4 : ?clients:int -> batched:bool -> unit -> fig4_row list
(** Leader-side measurement with 40 clients on the KVS, per the paper. *)

val print_fig4 : batched:bool -> fig4_row list -> unit

(** {2 Table 2 — TCB sizes} *)

type tcb_row = {
  component : string;
  shared_loc : int;  (** shared types/logic compiled into every enclave *)
  logic_loc : int;  (** compartment-specific logic *)
  total_loc : int;
}

val table2 : ?root:string -> unit -> tcb_row list
(** Counts code lines of this repository's own sources (tokei-style),
    attributing shared protocol types/crypto to every enclave, per the
    paper's methodology.  [root] defaults to the source tree detected from
    the current directory. *)

val print_table2 : tcb_row list -> unit

(** {2 §6 overhead decomposition — SGX simulation mode} *)

type simmode_result = {
  hardware_tput : float;
  simulation_tput : float;
  baseline_tput : float;  (** PBFT *)
  transition_share_of_overhead : float;
      (** fraction of the SplitBFT-vs-PBFT gap explained by transitions *)
}

val simmode : ?duration_us:float -> unit -> simmode_result
val print_simmode : simmode_result -> unit

(** {2 Ablation — batch size vs transition amortization} *)

type ablation_point = {
  ab_batch : int;
  ab_tput : float;
  ab_ecall_us_per_req : float;  (** total leader ecall time per request *)
}

val batch_ablation : ?batches:int list -> ?duration_us:float -> unit -> ablation_point list
(** SplitBFT KVS, 40 clients with 40 outstanding requests each, sweeping
    the batch size: shows the enclave-transition amortization that
    motivates batching in §6. *)

val print_batch_ablation : ablation_point list -> unit

(** {2 Hotpath ablation — verified-digest cache on/off}

    The perf-regression gate's pinned sweep ([bench hotpath]): saturated
    SplitBFT-KVS points across batch sizes with the enclaves' hot-path
    layer (verified-digest cache, lazy verification, broker retransmit
    early-reject) enabled and disabled, plus a churn point (primary crash,
    view change, crash-recovery) that exercises the paths on which
    verification results are legitimately reused. *)

type hotpath_point = {
  hp_label : string;  (** stable key the regression gate matches on *)
  hp_batch : int;
  hp_cache : bool;
  hp_churn : bool;
  hp_tput : float;
  hp_ecall_us_per_req : float;
  hp_cache_hits : float;  (** summed [tee.verify_cache_hits] *)
  hp_cache_misses : float;
  hp_copy_bytes : float;  (** summed [tee.copy_bytes] *)
  hp_retx_suppressed : float;  (** broker early-rejected retransmissions *)
}

val hotpath : ?batches:int list -> unit -> hotpath_point list
val print_hotpath : hotpath_point list -> unit

(** {2 Lanes ablation — pipelined consensus and parallel execution}

    The multi-lane sweep ([bench lanes]): SplitBFT-KVS under heavy offered
    load (80 clients, window 40) across (consensus lanes × Execution
    workers × batch size) points.  The (1, 1, _) point is the serial
    reference; raising lanes pipelines preprepare/prepare/commit across
    in-flight seqnos, raising workers lets non-conflicting batches execute
    in parallel — results stay bit-identical to serial, only cost timing
    changes. *)

type lanes_point = {
  lp_label : string;  (** stable key the regression gate matches on *)
  lp_lanes : int;
  lp_workers : int;
  lp_batch : int;
  lp_tput : float;
  lp_ecall_us_per_req : float;  (** leader, summed over compartments *)
  lp_pool_tasks : float;  (** summed [tee.pool_tasks] *)
  lp_pool_conflict_waits : float;  (** summed [tee.pool_conflict_waits] *)
  lp_lane_ecalls : float;  (** summed [broker.lane_ecalls] *)
}

val lanes : ?grid:(int * int * int) list -> unit -> lanes_point list
(** [grid] elements are (lanes, workers, batch). *)

val print_lanes : lanes_point list -> unit

(** {2 §6 threading ceilings} *)

type ceilings_result = {
  single_thread_tput : float;
  multi_thread_tput : float;
  predicted_single : float;  (** 1e6 / (sum of per-request ecall time) *)
  predicted_multi : float;  (** 1e6 / (Execution per-request ecall time) *)
  sum_ecall_us : float;
  exec_ecall_us : float;
}

val ceilings : ?duration_us:float -> unit -> ceilings_result
val print_ceilings : ceilings_result -> unit

(** {2 Machine-readable artifacts}

    JSON encoders for the [BENCH_*.json] trajectory: every artifact above
    can be emitted via [bench/main.exe --json] alongside the registry
    snapshot of an instrumented run. *)

val json_of_fig3 : fig3_series list -> Splitbft_obs.Json.t
val json_of_fig4 : fig4_row list -> Splitbft_obs.Json.t
val json_of_table2 : tcb_row list -> Splitbft_obs.Json.t
val json_of_simmode : simmode_result -> Splitbft_obs.Json.t
val json_of_batch_ablation : ablation_point list -> Splitbft_obs.Json.t
val json_of_hotpath : hotpath_point list -> Splitbft_obs.Json.t
val json_of_lanes : lanes_point list -> Splitbft_obs.Json.t
val json_of_ceilings : ceilings_result -> Splitbft_obs.Json.t
