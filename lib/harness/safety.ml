type scanner = { mutable leaks : int }

let contains_canary payload =
  let needle = Workload.canary in
  let n = String.length needle and m = String.length payload in
  let rec loop i =
    if i + n > m then false
    else if String.equal (String.sub payload i n) needle then true
    else loop (i + 1)
  in
  loop 0

let install_scanner cluster =
  let s = { leaks = 0 } in
  Splitbft_sim.Network.set_tap (Cluster.network cluster)
    (Some (fun ~src:_ ~dst:_ payload -> if contains_canary payload then s.leaks <- s.leaks + 1));
  s

let network_leaks s = s.leaks

let blob_leaks blobs =
  List.fold_left (fun acc (_, data) -> if contains_canary data then acc + 1 else acc) 0 blobs

let storage_leaks cluster ~honest_hosts =
  ignore honest_hosts;
  List.fold_left
    (fun acc node -> acc + blob_leaks (Cluster.persisted_of node))
    0 (Cluster.nodes cluster)

type agreement =
  | Agreement
  | Conflict of { seq : int64; a : int; b : int }
  | Prefix_lag of { a : int; b : int; high_a : int64; high_b : int64; window : int }

(* Pure predicate over executed logs, reusable outside the Cluster harness
   (the model checker evaluates it at every explored state).  Shared
   sequence numbers must carry identical digests; when [window] is given,
   executed-prefix *lengths* may not diverge beyond it either — a replica
   can trail while messages are in flight, but never by more than the
   checkpoint window, past which state transfer must have caught it up. *)
let agreement_of_logs ?window logs =
  let tables =
    List.map
      (fun (i, log) ->
        let table = Hashtbl.create 256 in
        List.iter (fun (seq, d) -> Hashtbl.replace table seq d) log;
        let high = List.fold_left (fun acc (seq, _) -> Int64.max acc seq) 0L log in
        (i, table, high))
      logs
  in
  let conflict_with (a, ta, high_a) (b, tb, high_b) =
    let shared =
      Hashtbl.fold
        (fun seq da acc ->
          match acc with
          | Some _ -> acc
          | None -> (
            match Hashtbl.find_opt tb seq with
            | Some db when not (String.equal da db) -> Some (Conflict { seq; a; b })
            | Some _ | None -> None))
        ta None
    in
    match (shared, window) with
    | Some _, _ -> shared
    | None, Some w when Int64.abs (Int64.sub high_a high_b) > Int64.of_int w ->
      Some (Prefix_lag { a; b; high_a; high_b; window = w })
    | None, _ -> None
  in
  let rec pairs = function
    | [] -> Agreement
    | first :: rest ->
      let rec check_rest = function
        | [] -> pairs rest
        | other :: more -> (
          match conflict_with first other with
          | Some bad -> bad
          | None -> check_rest more)
      in
      check_rest rest
  in
  pairs tables

(* First missing sequence number if [log] is not contiguous.  Honest
   Executions apply batches strictly in order — fresh replicas from seq 1,
   state-transferred ones from just past the installed checkpoint — so an
   internal gap can only mean state corruption (ledger
   prefix-consistency). *)
let prefix_gap log =
  let sorted = List.sort (fun (a, _) (b, _) -> Int64.compare a b) log in
  match sorted with
  | [] -> None
  | (first, _) :: _ ->
    let rec scan expected = function
      | [] -> None
      | (seq, _) :: rest ->
        if Int64.equal seq expected then scan (Int64.add expected 1L) rest else Some expected
    in
    scan first sorted

let describe_agreement = function
  | Agreement -> "agreement"
  | Conflict { seq; a; b } ->
    Printf.sprintf "divergence at seq %Ld (replicas %d vs %d)" seq a b
  | Prefix_lag { a; b; high_a; high_b; window } ->
    Printf.sprintf
      "executed prefixes diverge beyond the checkpoint window: replica %d at %Ld vs replica %d \
       at %Ld (window %d)"
      a high_a b high_b window

let check_agreement ?window cluster ~honest =
  agreement_of_logs ?window
    (List.map (fun i -> (i, Cluster.executed_log_of (Cluster.node cluster i))) honest)

(* ----- follower consistency ----- *)

type follower_verdict =
  | Followers_ok
  | Follower_conflict of { fid : int; seq : int }

(* A follower's applied log must be a sub-log of what the honest replicas
   committed: every (seq, digest) it installed appears with the same
   digest in some honest executed log.  The f+1 vouching rule makes
   anything else require f+1 faulty feeders — so a conflict here is a
   harness/protocol bug, not an expected fault outcome. *)
let follower_consistency_of_logs ~committed followers =
  let table = Hashtbl.create 256 in
  List.iter (List.iter (fun (seq, d) -> Hashtbl.replace table seq d)) committed;
  let check_one acc (fid, log) =
    match acc with
    | Follower_conflict _ -> acc
    | Followers_ok -> (
      match
        List.find_opt
          (fun (seq, d) ->
            match Hashtbl.find_opt table (Int64.of_int seq) with
            | Some d' -> not (String.equal d d')
            | None -> true  (* applied a batch no honest replica committed *))
          log
      with
      | Some (seq, _) -> Follower_conflict { fid; seq }
      | None -> Followers_ok)
  in
  List.fold_left check_one Followers_ok followers

let check_followers cluster ~honest =
  follower_consistency_of_logs
    ~committed:
      (List.map (fun i -> Cluster.executed_log_of (Cluster.node cluster i)) honest)
    (List.map
       (fun fo -> (Splitbft_storage.Follower.fid fo, Splitbft_storage.Follower.applied_log fo))
       (Cluster.followers cluster))

let describe_followers = function
  | Followers_ok -> "followers consistent"
  | Follower_conflict { fid; seq } ->
    Printf.sprintf "follower %d applied a batch at seq %d no honest replica committed" fid seq

type verdict = {
  live : bool;
  safe : bool;
  confidential : bool;
  detail : string;
}

let verdict ?prefix_window cluster ~honest ~scanner ~workload ~min_completed =
  let agreement = check_agreement ?window:prefix_window cluster ~honest in
  let follower_ok = check_followers cluster ~honest in
  let storage = storage_leaks cluster ~honest_hosts:honest in
  let live = workload.Workload.completed_total >= min_completed in
  let safe =
    agreement = Agreement && follower_ok = Followers_ok
    && workload.Workload.wrong_results = 0
  in
  let confidential = network_leaks scanner = 0 && storage = 0 in
  let detail =
    let parts = ref [] in
    (match agreement with
    | Agreement -> ()
    | bad -> parts := describe_agreement bad :: !parts);
    (match follower_ok with
    | Followers_ok -> ()
    | bad -> parts := describe_followers bad :: !parts);
    if workload.Workload.wrong_results > 0 then
      parts := Printf.sprintf "%d wrong client results" workload.Workload.wrong_results :: !parts;
    if network_leaks scanner > 0 then
      parts := Printf.sprintf "%d leaking wire payloads" (network_leaks scanner) :: !parts;
    if storage > 0 then parts := Printf.sprintf "%d leaking storage blobs" storage :: !parts;
    if not live then
      parts :=
        Printf.sprintf "only %d ops completed (needed %d)" workload.Workload.completed_total
          min_completed
        :: !parts;
    String.concat "; " (List.rev !parts)
  in
  { live; safe; confidential; detail }
