(** Safety, liveness and confidentiality verdicts over a finished run.

    Safety here is the paper's notion: honest replicas never execute
    conflicting batches at the same sequence number (agreement), clients
    never accept a wrong result (integrity of replies, checked by the
    workload), and persisted ledgers are prefix-consistent.
    Confidentiality: operation plaintexts (identified by the workload
    canary) never appear in untrusted-world bytes — network payloads or
    untrusted storage. *)

type scanner

val install_scanner : Cluster.t -> scanner
(** Taps the network; call before the run starts. *)

val network_leaks : scanner -> int
(** Payloads observed on the wire containing the canary. *)

val storage_leaks : Cluster.t -> honest_hosts:int list -> int
(** Untrusted-storage blobs containing the canary.  Only hosts whose
    environment is honest are scanned for *surprising* leaks; a byzantine
    host exfiltrating what its own enclaves legitimately gave it is counted
    too, since enclave outputs should be sealed/encrypted regardless. *)

val contains_canary : string -> bool
(** Substring scan for {!Workload.canary}. *)

val blob_leaks : (string * string) list -> int
(** Canary-carrying blobs in a [(tag, data)] storage listing — the
    Cluster-independent form of {!storage_leaks}. *)

type agreement =
  | Agreement
  | Conflict of { seq : int64; a : int; b : int }
      (** replicas [a] and [b] executed different batches at [seq] *)
  | Prefix_lag of { a : int; b : int; high_a : int64; high_b : int64; window : int }
      (** replicas [a] and [b]'s executed prefixes diverge in length by
          more than the checkpoint window — one of them fell behind
          further than state transfer allows *)

val agreement_of_logs : ?window:int -> (int * (int64 * string) list) list -> agreement
(** Pure agreement predicate over [(replica, executed log)] pairs,
    reusable outside the Cluster harness (the model checker evaluates it
    at every explored state).  Vacuously [Agreement] for zero or one log.
    [window] enables the prefix-length check. *)

val prefix_gap : (int64 * string) list -> int64 option
(** First missing sequence number if the log is not contiguous — ledger
    prefix-consistency.  Honest Executions apply batches strictly in
    order (state transfer resumes just past the installed checkpoint), so
    an internal gap can only mean corruption.  [None] for the empty
    log. *)

val describe_agreement : agreement -> string

val check_agreement : ?window:int -> Cluster.t -> honest:int list -> agreement

(** {2 Follower consistency} *)

type follower_verdict =
  | Followers_ok
  | Follower_conflict of { fid : int; seq : int }
      (** follower [fid] applied a batch at [seq] that no honest replica
          committed (or with a different digest) *)

val follower_consistency_of_logs :
  committed:(int64 * string) list list ->
  (int * (int * string) list) list ->
  follower_verdict
(** Pure form: every (seq, digest) in each [(fid, applied log)] must
    appear identically in some honest committed log. *)

val check_followers : Cluster.t -> honest:int list -> follower_verdict
(** {!follower_consistency_of_logs} over the cluster's followers and the
    given honest replicas' executed logs.  Vacuously [Followers_ok] with
    no followers.  Also folded into {!verdict}'s [safe]. *)

val describe_followers : follower_verdict -> string

type verdict = {
  live : bool;
  safe : bool;
  confidential : bool;
  detail : string;
}

val verdict :
  ?prefix_window:int ->
  Cluster.t ->
  honest:int list ->
  scanner:scanner ->
  workload:Workload.result ->
  min_completed:int ->
  verdict
(** [prefix_window] (default: off) additionally fails [safe] when honest
    executed-prefix lengths diverge beyond that window — pass the
    cluster's checkpoint window for runs expected to converge. *)
