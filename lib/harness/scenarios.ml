module Engine = Splitbft_sim.Engine
module P = Splitbft_pbft.Replica
module M = Splitbft_minbft.Replica
module S = Splitbft_core.Replica
module Broker = Splitbft_core.Broker
module Preparation = Splitbft_core.Preparation
module Confirmation = Splitbft_core.Confirmation
module Execution = Splitbft_core.Execution
module Ids = Splitbft_types.Ids
module Proto = Splitbft_proto.Protocol_intf
module Proto_pbft = Splitbft_proto.Proto_pbft
module Proto_minbft = Splitbft_proto.Proto_minbft
module Proto_splitbft = Splitbft_proto.Proto_splitbft
module Catalog = Splitbft_proto.Catalog

type expectation = { exp_live : bool; exp_safe : bool; exp_confidential : bool }

type scenario = {
  id : string;
  description : string;
  protocol : Proto.t;
  expected : expectation;
  honest : int list;
  make :
    ?tracer:Splitbft_obs.Tracer.t -> ?flight:Splitbft_obs.Flight.t -> int64 -> Cluster.t;
  inject : Cluster.t -> unit;
  duration_us : float;
  min_completed : int;
  check : Cluster.t -> string option;
      (* scenario-specific post-condition evaluated on the final cluster
         state; [Some reason] fails the row even if the verdict matches *)
}

let tolerate = { exp_live = true; exp_safe = true; exp_confidential = true }
let plaintext e = { e with exp_confidential = false }
let unsafe e = { e with exp_safe = false }
let stalled e = { e with exp_live = false }

(* Protocol-specific injections downcast through the protocol's own
   witness; a mismatched scenario row is a programming error. *)
let pbft_node cluster i =
  match Proto_pbft.replica_of (Cluster.node cluster i) with
  | Some r -> r
  | None -> assert false

let minbft_node cluster i =
  match Proto_minbft.replica_of (Cluster.node cluster i) with
  | Some r -> r
  | None -> assert false

let splitbft_node cluster i =
  match Proto_splitbft.replica_of (Cluster.node cluster i) with
  | Some r -> r
  | None -> assert false

let crash_at cluster ~delay i =
  ignore
    (Engine.schedule (Cluster.engine cluster) ~delay ~label:"scenario:crash" (fun () ->
         Cluster.crash_host cluster i))

let restart_at cluster ~delay i =
  ignore
    (Engine.schedule (Cluster.engine cluster) ~delay ~label:"scenario:restart" (fun () ->
         Cluster.restart_host cluster i))

let make_simple protocol ?tracer ?flight seed =
  Cluster.create ?tracer ?flight
    { (Cluster.default_params protocol) with
      Cluster.seed;
      suspect_timeout_us = 250_000.0 }

(* Recovery rows checkpoint aggressively so a sealed image exists before the
   400 ms crash point. *)
let make_recovery protocol ?tracer ?flight seed =
  Cluster.create ?tracer ?flight
    { (Cluster.default_params protocol) with
      Cluster.seed;
      suspect_timeout_us = 250_000.0;
      checkpoint_interval = 8 }

let no_inject (_ : Cluster.t) = ()
let no_check (_ : Cluster.t) = None

(* Post-condition of the crash-recover rows: the restarted node finished
   recovery (re-attested, state-transferred, rejoined) without alerts, and
   actually holds executed state. *)
let check_recovered i cluster =
  let node = Cluster.node cluster i in
  if not (Cluster.recovered_of node) then
    Some (Printf.sprintf "replica %d did not complete recovery" i)
  else
    match Cluster.recovery_alerts_of node with
    | alert :: _ -> Some (Printf.sprintf "replica %d raised alert: %s" i alert)
    | [] ->
      if Int64.compare (Cluster.last_executed_of node) 0L <= 0 then
        Some (Printf.sprintf "replica %d recovered but executed nothing" i)
      else None

(* Post-condition of the rollback rows: recovery must be REFUSED, loudly. *)
let check_rollback_refused i cluster =
  let node = Cluster.node cluster i in
  if Cluster.recovered_of node then
    Some (Printf.sprintf "replica %d rejoined despite a rolled-back counter" i)
  else
    match Cluster.recovery_alerts_of node with
    | [] -> Some (Printf.sprintf "replica %d refused silently (no alert)" i)
    | _ -> None

let splitbft_with ?tracer ?flight seed byz_of =
  Cluster.create ?tracer ?flight
    { (Cluster.default_params (Proto_splitbft.make ~byz:byz_of ())) with
      Cluster.seed;
      suspect_timeout_us = 250_000.0 }

(* ---------- generic rows, inherited by every catalogued protocol ----------

   These exercise only the uniform interface (deploy, crash, restart,
   tamper), so any protocol that plugs into the catalog gets the whole
   block: fault-free, backup crash, primary crash (view change),
   crash-recovery, and the rollback attack. *)

let generic_for name protocol =
  let n = Proto.default_n protocol in
  let base = if Proto.confidential protocol then tolerate else plaintext tolerate in
  let all_honest = List.init n Fun.id in
  let but i = List.filter (fun j -> j <> i) all_honest in
  let last = n - 1 in
  let id suffix = name ^ "/" ^ suffix in
  let upper = String.uppercase_ascii name in
  [
    { id = id "fault-free";
      description = Printf.sprintf "%s, no faults" upper;
      protocol;
      expected = base;
      honest = all_honest;
      make = make_simple protocol;
      inject = no_inject;
      duration_us = 1_500_000.0;
      min_completed = 50;
      check = no_check };
    { id = id "crash-f";
      description = Printf.sprintf "%s, f = 1 host crash (backup)" upper;
      protocol;
      expected = base;
      honest = but last;
      make = make_simple protocol;
      inject = (fun c -> crash_at c ~delay:400_000.0 last);
      duration_us = 2_000_000.0;
      min_completed = 50;
      check = no_check };
    { id = id "crash-primary";
      description = Printf.sprintf "%s, primary host crash (view change)" upper;
      protocol;
      expected = base;
      honest = but 0;
      make = make_simple protocol;
      inject = (fun c -> crash_at c ~delay:400_000.0 0);
      duration_us = 2_500_000.0;
      min_completed = 50;
      check = no_check };
    { id = id "crash-recover";
      description =
        Printf.sprintf
          "%s, host crash then restart with sealed-checkpoint recovery" upper;
      protocol;
      expected = base;
      honest = all_honest;
      make = make_recovery protocol;
      inject =
        (fun c ->
          crash_at c ~delay:400_000.0 last;
          restart_at c ~delay:900_000.0 last);
      duration_us = 2_500_000.0;
      min_completed = 50;
      check = check_recovered last };
    { id = id "rollback-attack";
      description =
        Printf.sprintf
          "%s, host crash, checkpoint counter rolled back, restart: recovery \
           must refuse loudly; the rest of the cluster is unharmed" upper;
      protocol;
      expected = base;
      honest = but last;
      make = make_recovery protocol;
      inject =
        (fun c ->
          crash_at c ~delay:400_000.0 last;
          ignore
            (Engine.schedule (Cluster.engine c) ~delay:900_000.0
               ~label:"scenario:rollback" (fun () ->
                 Cluster.tamper_checkpoint_counter c last;
                 Cluster.restart_host c last)));
      duration_us = 2_500_000.0;
      min_completed = 50;
      check = check_rollback_refused last };
  ]

let generic = List.concat_map (fun (name, p) -> generic_for name p) Catalog.builtins

(* ---------- protocol-specific byzantine / environment rows ---------- *)

let specific =
  [
    (* ---------- PBFT ---------- *)
    { id = "pbft/byz-f";
      description = "PBFT, f = 1 byzantine replica (corrupt execution)";
      protocol = Proto_pbft.protocol;
      expected = plaintext tolerate;
      honest = [ 0; 2; 3 ];
      make = make_simple Proto_pbft.protocol;
      inject = (fun c -> P.set_byzantine (pbft_node c 1) P.Corrupt_execution);
      duration_us = 1_500_000.0;
      min_completed = 50;
      check = no_check };
    { id = "pbft/byz-f+1";
      description = "PBFT, f + 1 byzantine replicas (equivocation + collusion)";
      protocol = Proto_pbft.protocol;
      expected = unsafe (plaintext tolerate);
      honest = [ 2; 3 ];
      make = make_simple Proto_pbft.protocol;
      inject =
        (fun c ->
          P.set_byzantine (pbft_node c 0) (P.Equivocate { accomplices = [ 1 ] });
          P.set_byzantine (pbft_node c 1) P.Collude);
      duration_us = 1_500_000.0;
      min_completed = 10;
      check = no_check };
    (* ---------- MinBFT (hybrid) ---------- *)
    { id = "minbft/byz-f";
      description = "MinBFT, f = 1 byzantine host (corrupt execution, intact USIG)";
      protocol = Proto_minbft.protocol;
      expected = plaintext tolerate;
      honest = [ 0; 2 ];
      make = make_simple Proto_minbft.protocol;
      inject = (fun c -> M.set_byzantine (minbft_node c 1) M.Corrupt_execution);
      duration_us = 1_500_000.0;
      min_completed = 50;
      check = no_check };
    { id = "minbft/faulty-tee";
      description = "MinBFT, single compromised USIG (primary equivocates)";
      protocol = Proto_minbft.protocol;
      (* Divergent replicas each answer differently, so no client ever
         collects f+1 matching replies: integrity AND liveness are lost. *)
      expected = stalled (unsafe (plaintext tolerate));
      honest = [ 1; 2 ];
      make = make_simple Proto_minbft.protocol;
      inject = (fun c -> M.set_byzantine (minbft_node c 0) M.Faulty_tee_equivocate);
      duration_us = 1_500_000.0;
      min_completed = 10;
      check = no_check };
    (* ---------- SplitBFT ---------- *)
    { id = "splitbft/enclave-f-each-type";
      description =
        "SplitBFT, f byzantine enclaves of EVERY type (equivocating \
         Preparation, promiscuous Confirmation, corrupt Execution, on \
         three different hosts)";
      protocol = Proto_splitbft.protocol;
      expected = tolerate;
      honest = [ 0; 1; 3 ];
      make =
        (fun ?tracer ?flight seed ->
          splitbft_with ?tracer ?flight seed (fun i ->
              match i with
              | 0 ->
                { Proto_splitbft.honest_enclaves with
                  Proto_splitbft.prep = Preparation.Prep_equivocate }
              | 1 ->
                { Proto_splitbft.honest_enclaves with
                  Proto_splitbft.conf = Confirmation.Conf_promiscuous }
              | 2 ->
                { Proto_splitbft.honest_enclaves with
                  Proto_splitbft.exec = Execution.Exec_corrupt }
              | _ -> Proto_splitbft.honest_enclaves));
      inject = no_inject;
      duration_us = 3_000_000.0;
      min_completed = 20;
      check = no_check };
    { id = "splitbft/exec-f+1-corrupt";
      description = "SplitBFT, f + 1 corrupt Execution enclaves (beyond the bound)";
      protocol = Proto_splitbft.protocol;
      expected = unsafe tolerate;
      honest = [ 2; 3 ];
      make =
        (fun ?tracer ?flight seed ->
          splitbft_with ?tracer ?flight seed (fun i ->
              if i <= 1 then
                { Proto_splitbft.honest_enclaves with
                  Proto_splitbft.exec = Execution.Exec_corrupt }
              else Proto_splitbft.honest_enclaves));
      inject = no_inject;
      duration_us = 1_500_000.0;
      min_completed = 20;
      check = no_check };
    { id = "splitbft/exec-leak";
      description = "SplitBFT, f = 1 leaking Execution enclave (confidentiality lost)";
      protocol = Proto_splitbft.protocol;
      expected = { exp_live = true; exp_safe = true; exp_confidential = false };
      honest = [ 1; 2; 3 ];
      make =
        (fun ?tracer ?flight seed ->
          splitbft_with ?tracer ?flight seed (fun i ->
              if i = 0 then
                { Proto_splitbft.honest_enclaves with
                  Proto_splitbft.exec = Execution.Exec_leak }
              else Proto_splitbft.honest_enclaves));
      inject = no_inject;
      duration_us = 1_500_000.0;
      min_completed = 50;
      check = no_check };
    { id = "splitbft/host-attacker-all";
      description = "SplitBFT, attacker on ALL hosts (delaying environments)";
      protocol = Proto_splitbft.protocol;
      expected = tolerate;
      honest = [ 0; 1; 2; 3 ];
      make = make_simple Proto_splitbft.protocol;
      inject =
        (fun c ->
          List.iteri
            (fun i _ -> S.set_env_fault (splitbft_node c i) (Broker.Env_delay 2_000.0))
            (Cluster.nodes c));
      duration_us = 2_000_000.0;
      min_completed = 20;
      check = no_check };
    { id = "splitbft/env-starve-all";
      description =
        "SplitBFT, attacker on ALL hosts starving the Confirmation \
         compartments (liveness lost, safety kept)";
      protocol = Proto_splitbft.protocol;
      expected = stalled tolerate;
      honest = [ 0; 1; 2; 3 ];
      make = make_simple Proto_splitbft.protocol;
      inject =
        (fun c ->
          List.iteri
            (fun i _ ->
              S.set_env_fault (splitbft_node c i) (Broker.Env_starve Ids.Confirmation))
            (Cluster.nodes c));
      duration_us = 1_500_000.0;
      min_completed = 10;
      check = no_check };
  ]

let all = generic @ specific

let find id = List.find_opt (fun s -> String.equal s.id id) all

type outcome = {
  scenario : scenario;
  cluster : Cluster.t;
  verdict : Safety.verdict;
  workload : Workload.result;
  check_failure : string option;
  alerts : Detector.alert list;
}

let run ?(seed = 42L) ?tracer ?(detect = false) scenario =
  let flight =
    if detect then Some (Splitbft_obs.Flight.create ~capacity:4096 ()) else None
  in
  let cluster = scenario.make ?tracer ?flight seed in
  let detector = if detect then Some (Detector.attach cluster) else None in
  let scanner = Safety.install_scanner cluster in
  scenario.inject cluster;
  let spec =
    { Workload.default_spec with
      Workload.clients = 3;
      warmup_us = 0.0;
      duration_us = scenario.duration_us }
  in
  let workload = Workload.run cluster spec in
  let verdict =
    Safety.verdict cluster ~honest:scenario.honest ~scanner ~workload
      ~min_completed:scenario.min_completed
  in
  let check_failure = scenario.check cluster in
  let alerts = match detector with Some d -> Detector.alerts d | None -> [] in
  { scenario; cluster; verdict; workload; check_failure; alerts }

let anomalous o =
  let e = o.scenario.expected and v = o.verdict in
  o.alerts <> [] || o.check_failure <> None
  || e.exp_live <> v.Safety.live
  || e.exp_safe <> v.Safety.safe
  || e.exp_confidential <> v.Safety.confidential

(* Flight-recorder artifact, dumped next to the model checker's
   counterexample schedules whenever a detect-mode row misbehaves or the
   detector fired.  Returns the path written, [None] when the run had no
   recorder attached. *)
let dump_flight ~dir o =
  match Cluster.flight o.cluster with
  | None -> None
  | Some fl ->
    let slug =
      String.map (fun c -> if c = '/' then '-' else c) o.scenario.id
    in
    let path = Filename.concat dir (slug ^ "-flight.txt") in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    Splitbft_obs.Flight.save ~path fl;
    Some path

let matches_expectation o =
  let e = o.scenario.expected and v = o.verdict in
  e.exp_live = v.Safety.live && e.exp_safe = v.Safety.safe
  && e.exp_confidential = v.Safety.confidential
  && o.check_failure = None

let print_table1 outcomes =
  let rows =
    List.map
      (fun o ->
        let e = o.scenario.expected and v = o.verdict in
        let cell expected observed =
          Printf.sprintf "%s/%s" (Table.yes_no expected) (Table.yes_no observed)
        in
        [ o.scenario.id;
          cell e.exp_live v.Safety.live;
          cell e.exp_safe v.Safety.safe;
          cell e.exp_confidential v.Safety.confidential;
          string_of_int o.workload.Workload.completed_total;
          (if matches_expectation o then "ok" else "MISMATCH") ])
      outcomes
  in
  Table.print ~title:"Table 1 — fault-model comparison (expected/observed)"
    ~header:[ "scenario"; "live"; "safe"; "confidential"; "ops"; "check" ]
    ~rows

let json_of_outcomes outcomes =
  let module Json = Splitbft_obs.Json in
  Json.List
    (List.map
       (fun o ->
         let e = o.scenario.expected and v = o.verdict in
         Json.Obj
           [ ("scenario", Json.Str o.scenario.id);
             ("expected",
              Json.Obj
                [ ("live", Json.Bool e.exp_live);
                  ("safe", Json.Bool e.exp_safe);
                  ("confidential", Json.Bool e.exp_confidential) ]);
             ("observed",
              Json.Obj
                [ ("live", Json.Bool v.Safety.live);
                  ("safe", Json.Bool v.Safety.safe);
                  ("confidential", Json.Bool v.Safety.confidential) ]);
             ("ops", Json.Int o.workload.Workload.completed_total);
             ("check",
              match o.check_failure with
              | None -> Json.Str "ok"
              | Some reason -> Json.Str reason);
             ("matches", Json.Bool (matches_expectation o)) ])
       outcomes)
