module Engine = Splitbft_sim.Engine
module P = Splitbft_pbft.Replica
module M = Splitbft_minbft.Replica
module S = Splitbft_core.Replica
module Broker = Splitbft_core.Broker
module Preparation = Splitbft_core.Preparation
module Confirmation = Splitbft_core.Confirmation
module Execution = Splitbft_core.Execution
module Ids = Splitbft_types.Ids

type expectation = { exp_live : bool; exp_safe : bool; exp_confidential : bool }

type scenario = {
  id : string;
  description : string;
  protocol : Cluster.protocol;
  expected : expectation;
  honest : int list;
  make : ?tracer:Splitbft_obs.Tracer.t -> int64 -> Cluster.t;
  inject : Cluster.t -> unit;
  duration_us : float;
  min_completed : int;
  check : Cluster.t -> string option;
      (* scenario-specific post-condition evaluated on the final cluster
         state; [Some reason] fails the row even if the verdict matches *)
}

let tolerate = { exp_live = true; exp_safe = true; exp_confidential = true }
let plaintext e = { e with exp_confidential = false }
let unsafe e = { e with exp_safe = false }
let stalled e = { e with exp_live = false }

let pbft_node cluster i =
  match Cluster.node cluster i with
  | Cluster.Node_pbft r -> r
  | Cluster.Node_minbft _ | Cluster.Node_splitbft _ -> assert false

let minbft_node cluster i =
  match Cluster.node cluster i with
  | Cluster.Node_minbft r -> r
  | Cluster.Node_pbft _ | Cluster.Node_splitbft _ -> assert false

let splitbft_node cluster i =
  match Cluster.node cluster i with
  | Cluster.Node_splitbft r -> r
  | Cluster.Node_pbft _ | Cluster.Node_minbft _ -> assert false

let crash_at cluster ~delay i =
  ignore
    (Engine.schedule (Cluster.engine cluster) ~delay ~label:"scenario:crash" (fun () ->
         Cluster.crash_host cluster i))

let restart_at cluster ~delay i =
  ignore
    (Engine.schedule (Cluster.engine cluster) ~delay ~label:"scenario:restart" (fun () ->
         Cluster.restart_host cluster i))

let make_simple protocol ?tracer seed =
  Cluster.create ?tracer
    { (Cluster.default_params protocol) with
      Cluster.seed;
      suspect_timeout_us = 250_000.0 }

(* Recovery rows checkpoint aggressively so a sealed image exists before the
   400 ms crash point. *)
let make_recovery protocol ?tracer seed =
  Cluster.create ?tracer
    { (Cluster.default_params protocol) with
      Cluster.seed;
      suspect_timeout_us = 250_000.0;
      checkpoint_interval = 8 }

let no_inject (_ : Cluster.t) = ()
let no_check (_ : Cluster.t) = None

(* Post-condition of the crash-recover rows: the restarted node finished
   recovery (re-attested, state-transferred, rejoined) without alerts, and
   actually holds executed state. *)
let check_recovered i cluster =
  let node = Cluster.node cluster i in
  if not (Cluster.recovered_of node) then
    Some (Printf.sprintf "replica %d did not complete recovery" i)
  else
    match Cluster.recovery_alerts_of node with
    | alert :: _ -> Some (Printf.sprintf "replica %d raised alert: %s" i alert)
    | [] ->
      if Int64.compare (Cluster.last_executed_of node) 0L <= 0 then
        Some (Printf.sprintf "replica %d recovered but executed nothing" i)
      else None

(* Post-condition of the rollback rows: recovery must be REFUSED, loudly. *)
let check_rollback_refused i cluster =
  let node = Cluster.node cluster i in
  if Cluster.recovered_of node then
    Some (Printf.sprintf "replica %d rejoined despite a rolled-back counter" i)
  else
    match Cluster.recovery_alerts_of node with
    | [] -> Some (Printf.sprintf "replica %d refused silently (no alert)" i)
    | _ -> None

let splitbft_with ?tracer seed byz_of =
  Cluster.create ~splitbft_byz:byz_of ?tracer
    { (Cluster.default_params Cluster.Splitbft) with
      Cluster.seed;
      suspect_timeout_us = 250_000.0 }

let all =
  [
    (* ---------- PBFT ---------- *)
    { id = "pbft/fault-free";
      description = "PBFT, no faults";
      protocol = Cluster.Pbft;
      expected = plaintext tolerate;
      honest = [ 0; 1; 2; 3 ];
      make = make_simple Cluster.Pbft;
      inject = no_inject;
      duration_us = 1_500_000.0;
      min_completed = 50;
      check = no_check };
    { id = "pbft/crash-f";
      description = "PBFT, f = 1 host crash (backup)";
      protocol = Cluster.Pbft;
      expected = plaintext tolerate;
      honest = [ 0; 1; 2 ];
      make = make_simple Cluster.Pbft;
      inject = (fun c -> crash_at c ~delay:400_000.0 3);
      duration_us = 2_000_000.0;
      min_completed = 50;
      check = no_check };
    { id = "pbft/crash-primary";
      description = "PBFT, primary host crash (view change)";
      protocol = Cluster.Pbft;
      expected = plaintext tolerate;
      honest = [ 1; 2; 3 ];
      make = make_simple Cluster.Pbft;
      inject = (fun c -> crash_at c ~delay:400_000.0 0);
      duration_us = 2_500_000.0;
      min_completed = 50;
      check = no_check };
    { id = "pbft/byz-f";
      description = "PBFT, f = 1 byzantine replica (corrupt execution)";
      protocol = Cluster.Pbft;
      expected = plaintext tolerate;
      honest = [ 0; 2; 3 ];
      make = make_simple Cluster.Pbft;
      inject = (fun c -> P.set_byzantine (pbft_node c 1) P.Corrupt_execution);
      duration_us = 1_500_000.0;
      min_completed = 50;
      check = no_check };
    { id = "pbft/byz-f+1";
      description = "PBFT, f + 1 byzantine replicas (equivocation + collusion)";
      protocol = Cluster.Pbft;
      expected = unsafe (plaintext tolerate);
      honest = [ 2; 3 ];
      make = make_simple Cluster.Pbft;
      inject =
        (fun c ->
          P.set_byzantine (pbft_node c 0) (P.Equivocate { accomplices = [ 1 ] });
          P.set_byzantine (pbft_node c 1) P.Collude);
      duration_us = 1_500_000.0;
      min_completed = 10;
      check = no_check };
    (* ---------- MinBFT (hybrid) ---------- *)
    { id = "minbft/fault-free";
      description = "MinBFT, no faults";
      protocol = Cluster.Minbft;
      expected = plaintext tolerate;
      honest = [ 0; 1; 2 ];
      make = make_simple Cluster.Minbft;
      inject = no_inject;
      duration_us = 1_500_000.0;
      min_completed = 50;
      check = no_check };
    { id = "minbft/crash-f";
      description = "MinBFT, f = 1 host crash (backup)";
      protocol = Cluster.Minbft;
      expected = plaintext tolerate;
      honest = [ 0; 1 ];
      make = make_simple Cluster.Minbft;
      inject = (fun c -> crash_at c ~delay:400_000.0 2);
      duration_us = 2_000_000.0;
      min_completed = 50;
      check = no_check };
    { id = "minbft/byz-f";
      description = "MinBFT, f = 1 byzantine host (corrupt execution, intact USIG)";
      protocol = Cluster.Minbft;
      expected = plaintext tolerate;
      honest = [ 0; 2 ];
      make = make_simple Cluster.Minbft;
      inject = (fun c -> M.set_byzantine (minbft_node c 1) M.Corrupt_execution);
      duration_us = 1_500_000.0;
      min_completed = 50;
      check = no_check };
    { id = "minbft/faulty-tee";
      description = "MinBFT, single compromised USIG (primary equivocates)";
      protocol = Cluster.Minbft;
      (* Divergent replicas each answer differently, so no client ever
         collects f+1 matching replies: integrity AND liveness are lost. *)
      expected = stalled (unsafe (plaintext tolerate));
      honest = [ 1; 2 ];
      make = make_simple Cluster.Minbft;
      inject = (fun c -> M.set_byzantine (minbft_node c 0) M.Faulty_tee_equivocate);
      duration_us = 1_500_000.0;
      min_completed = 10;
      check = no_check };
    (* ---------- SplitBFT ---------- *)
    { id = "splitbft/fault-free";
      description = "SplitBFT, no faults";
      protocol = Cluster.Splitbft;
      expected = tolerate;
      honest = [ 0; 1; 2; 3 ];
      make = make_simple Cluster.Splitbft;
      inject = no_inject;
      duration_us = 1_500_000.0;
      min_completed = 50;
      check = no_check };
    { id = "splitbft/crash-f";
      description = "SplitBFT, f = 1 host crash";
      protocol = Cluster.Splitbft;
      expected = tolerate;
      honest = [ 0; 1; 2 ];
      make = make_simple Cluster.Splitbft;
      inject = (fun c -> crash_at c ~delay:400_000.0 3);
      duration_us = 2_000_000.0;
      min_completed = 50;
      check = no_check };
    { id = "splitbft/enclave-f-each-type";
      description =
        "SplitBFT, f byzantine enclaves of EVERY type (equivocating \
         Preparation, promiscuous Confirmation, corrupt Execution, on \
         three different hosts)";
      protocol = Cluster.Splitbft;
      expected = tolerate;
      honest = [ 0; 1; 3 ];
      make =
        (fun ?tracer seed ->
          splitbft_with ?tracer seed (fun i ->
              match i with
              | 0 -> { Cluster.honest_enclaves with Cluster.prep = Preparation.Prep_equivocate }
              | 1 -> { Cluster.honest_enclaves with Cluster.conf = Confirmation.Conf_promiscuous }
              | 2 -> { Cluster.honest_enclaves with Cluster.exec = Execution.Exec_corrupt }
              | _ -> Cluster.honest_enclaves));
      inject = no_inject;
      duration_us = 3_000_000.0;
      min_completed = 20;
      check = no_check };
    { id = "splitbft/exec-f+1-corrupt";
      description = "SplitBFT, f + 1 corrupt Execution enclaves (beyond the bound)";
      protocol = Cluster.Splitbft;
      expected = unsafe tolerate;
      honest = [ 2; 3 ];
      make =
        (fun ?tracer seed ->
          splitbft_with ?tracer seed (fun i ->
              if i <= 1 then
                { Cluster.honest_enclaves with Cluster.exec = Execution.Exec_corrupt }
              else Cluster.honest_enclaves));
      inject = no_inject;
      duration_us = 1_500_000.0;
      min_completed = 20;
      check = no_check };
    { id = "splitbft/exec-leak";
      description = "SplitBFT, f = 1 leaking Execution enclave (confidentiality lost)";
      protocol = Cluster.Splitbft;
      expected = { exp_live = true; exp_safe = true; exp_confidential = false };
      honest = [ 1; 2; 3 ];
      make =
        (fun ?tracer seed ->
          splitbft_with ?tracer seed (fun i ->
              if i = 0 then
                { Cluster.honest_enclaves with Cluster.exec = Execution.Exec_leak }
              else Cluster.honest_enclaves));
      inject = no_inject;
      duration_us = 1_500_000.0;
      min_completed = 50;
      check = no_check };
    { id = "splitbft/host-attacker-all";
      description = "SplitBFT, attacker on ALL hosts (delaying environments)";
      protocol = Cluster.Splitbft;
      expected = tolerate;
      honest = [ 0; 1; 2; 3 ];
      make = make_simple Cluster.Splitbft;
      inject =
        (fun c ->
          List.iteri
            (fun i _ -> S.set_env_fault (splitbft_node c i) (Broker.Env_delay 2_000.0))
            (Cluster.nodes c));
      duration_us = 2_000_000.0;
      min_completed = 20;
      check = no_check };
    { id = "splitbft/env-starve-all";
      description =
        "SplitBFT, attacker on ALL hosts starving the Confirmation \
         compartments (liveness lost, safety kept)";
      protocol = Cluster.Splitbft;
      expected = stalled tolerate;
      honest = [ 0; 1; 2; 3 ];
      make = make_simple Cluster.Splitbft;
      inject =
        (fun c ->
          List.iteri
            (fun i _ ->
              S.set_env_fault (splitbft_node c i) (Broker.Env_starve Ids.Confirmation))
            (Cluster.nodes c));
      duration_us = 1_500_000.0;
      min_completed = 10;
      check = no_check };
    (* ---------- crash-recovery / rollback (Table 1 extension) ---------- *)
    { id = "splitbft/crash-recover";
      description =
        "SplitBFT, host crash then restart: enclaves unseal, re-attest, \
         state-transfer and rejoin quorums";
      protocol = Cluster.Splitbft;
      expected = tolerate;
      honest = [ 0; 1; 2; 3 ];
      make = make_recovery Cluster.Splitbft;
      inject =
        (fun c ->
          crash_at c ~delay:400_000.0 3;
          restart_at c ~delay:900_000.0 3);
      duration_us = 2_500_000.0;
      min_completed = 50;
      check = check_recovered 3 };
    { id = "splitbft/rollback-attack";
      description =
        "SplitBFT, host crash, checkpoint counter rolled back, restart: \
         recovery must refuse loudly; the rest of the cluster is unharmed";
      protocol = Cluster.Splitbft;
      expected = tolerate;
      honest = [ 0; 1; 2 ];
      make = make_recovery Cluster.Splitbft;
      inject =
        (fun c ->
          crash_at c ~delay:400_000.0 3;
          ignore
            (Engine.schedule (Cluster.engine c) ~delay:900_000.0
               ~label:"scenario:rollback" (fun () ->
                 Cluster.tamper_checkpoint_counter c 3;
                 Cluster.restart_host c 3)));
      duration_us = 2_500_000.0;
      min_completed = 50;
      check = check_rollback_refused 3 };
    { id = "pbft/crash-recover";
      description = "PBFT, host crash then restart with sealed-checkpoint recovery";
      protocol = Cluster.Pbft;
      expected = plaintext tolerate;
      honest = [ 0; 1; 2; 3 ];
      make = make_recovery Cluster.Pbft;
      inject =
        (fun c ->
          crash_at c ~delay:400_000.0 3;
          restart_at c ~delay:900_000.0 3);
      duration_us = 2_500_000.0;
      min_completed = 50;
      check = check_recovered 3 };
    { id = "minbft/crash-recover";
      description = "MinBFT, host crash then restart with sealed-checkpoint recovery";
      protocol = Cluster.Minbft;
      expected = plaintext tolerate;
      honest = [ 0; 1; 2 ];
      make = make_recovery Cluster.Minbft;
      inject =
        (fun c ->
          crash_at c ~delay:400_000.0 2;
          restart_at c ~delay:900_000.0 2);
      duration_us = 2_500_000.0;
      min_completed = 50;
      check = check_recovered 2 };
  ]

let find id = List.find_opt (fun s -> String.equal s.id id) all

type outcome = {
  scenario : scenario;
  cluster : Cluster.t;
  verdict : Safety.verdict;
  workload : Workload.result;
  check_failure : string option;
}

let run ?(seed = 42L) ?tracer scenario =
  let cluster = scenario.make ?tracer seed in
  let scanner = Safety.install_scanner cluster in
  scenario.inject cluster;
  let spec =
    { Workload.default_spec with
      Workload.clients = 3;
      warmup_us = 0.0;
      duration_us = scenario.duration_us;
      ready_quorum =
        (match scenario.protocol with
        | Cluster.Splitbft -> Some (Cluster.params cluster).Cluster.n
        | Cluster.Pbft | Cluster.Minbft -> None) }
  in
  let workload = Workload.run cluster spec in
  let verdict =
    Safety.verdict cluster ~honest:scenario.honest ~scanner ~workload
      ~min_completed:scenario.min_completed
  in
  let check_failure = scenario.check cluster in
  { scenario; cluster; verdict; workload; check_failure }

let matches_expectation o =
  let e = o.scenario.expected and v = o.verdict in
  e.exp_live = v.Safety.live && e.exp_safe = v.Safety.safe
  && e.exp_confidential = v.Safety.confidential
  && o.check_failure = None

let print_table1 outcomes =
  let rows =
    List.map
      (fun o ->
        let e = o.scenario.expected and v = o.verdict in
        let cell expected observed =
          Printf.sprintf "%s/%s" (Table.yes_no expected) (Table.yes_no observed)
        in
        [ o.scenario.id;
          cell e.exp_live v.Safety.live;
          cell e.exp_safe v.Safety.safe;
          cell e.exp_confidential v.Safety.confidential;
          string_of_int o.workload.Workload.completed_total;
          (if matches_expectation o then "ok" else "MISMATCH") ])
      outcomes
  in
  Table.print ~title:"Table 1 — fault-model comparison (expected/observed)"
    ~header:[ "scenario"; "live"; "safe"; "confidential"; "ops"; "check" ]
    ~rows

let json_of_outcomes outcomes =
  let module Json = Splitbft_obs.Json in
  Json.List
    (List.map
       (fun o ->
         let e = o.scenario.expected and v = o.verdict in
         Json.Obj
           [ ("scenario", Json.Str o.scenario.id);
             ("expected",
              Json.Obj
                [ ("live", Json.Bool e.exp_live);
                  ("safe", Json.Bool e.exp_safe);
                  ("confidential", Json.Bool e.exp_confidential) ]);
             ("observed",
              Json.Obj
                [ ("live", Json.Bool v.Safety.live);
                  ("safe", Json.Bool v.Safety.safe);
                  ("confidential", Json.Bool v.Safety.confidential) ]);
             ("ops", Json.Int o.workload.Workload.completed_total);
             ("check",
              match o.check_failure with
              | None -> Json.Str "ok"
              | Some reason -> Json.Str reason);
             ("matches", Json.Bool (matches_expectation o)) ])
       outcomes)
