(** The fault-model scenario matrix behind Table 1.

    Each scenario deploys one protocol under a specific fault load, drives
    a workload, and checks liveness, safety (agreement + client-result
    integrity) and confidentiality (canary scanning) against the paper's
    claims.  Positive rows show what each protocol tolerates; negative rows
    demonstrate the violation that occurs one fault beyond the bound —
    e.g. PBFT with [f+1] byzantine replicas diverges, MinBFT with a single
    compromised USIG diverges, SplitBFT with [f+1] corrupt Execution
    enclaves returns wrong results to clients.

    The uniform rows (fault-free, backup crash, primary crash,
    crash-recovery, rollback attack) are generated for every protocol in
    {!Splitbft_proto.Catalog.builtins}; a protocol added to the catalog
    inherits them with no change here.  Protocol-specific byzantine and
    environment-fault rows inject through each protocol's own witness
    downcast. *)

type expectation = { exp_live : bool; exp_safe : bool; exp_confidential : bool }

type scenario = {
  id : string;
  description : string;
  protocol : Cluster.Proto.t;
  expected : expectation;
  honest : int list;  (** replicas whose execution state must agree *)
  make : ?tracer:Splitbft_obs.Tracer.t -> int64 -> Cluster.t;
  inject : Cluster.t -> unit;  (** post-creation fault injection *)
  duration_us : float;
  min_completed : int;  (** liveness threshold *)
  check : Cluster.t -> string option;
      (** scenario-specific post-condition on the final cluster state
          (e.g. "the restarted replica recovered", "the rollback was
          refused"); [Some reason] fails the row even when the
          live/safe/confidential verdict matches *)
}

val all : scenario list

val find : string -> scenario option

type outcome = {
  scenario : scenario;
  cluster : Cluster.t;  (** final cluster state (registry, nodes) *)
  verdict : Safety.verdict;
  workload : Workload.result;
  check_failure : string option;  (** [scenario.check] result *)
}

val run : ?seed:int64 -> ?tracer:Splitbft_obs.Tracer.t -> scenario -> outcome
(** [tracer], when given, is installed on the scenario's cluster engine so
    the run emits causal spans (see {!Trace_report}). *)

val matches_expectation : outcome -> bool

val print_table1 : outcome list -> unit
(** Renders the Table 1 reproduction: per protocol/fault row, expected vs
    observed liveness / integrity / confidentiality. *)

val json_of_outcomes : outcome list -> Splitbft_obs.Json.t
(** Machine-readable Table 1 rows (expected vs observed per scenario) for
    the [BENCH_*.json] trajectory. *)
