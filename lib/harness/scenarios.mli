(** The fault-model scenario matrix behind Table 1.

    Each scenario deploys one protocol under a specific fault load, drives
    a workload, and checks liveness, safety (agreement + client-result
    integrity) and confidentiality (canary scanning) against the paper's
    claims.  Positive rows show what each protocol tolerates; negative rows
    demonstrate the violation that occurs one fault beyond the bound —
    e.g. PBFT with [f+1] byzantine replicas diverges, MinBFT with a single
    compromised USIG diverges, SplitBFT with [f+1] corrupt Execution
    enclaves returns wrong results to clients.

    The uniform rows (fault-free, backup crash, primary crash,
    crash-recovery, rollback attack) are generated for every protocol in
    {!Splitbft_proto.Catalog.builtins}; a protocol added to the catalog
    inherits them with no change here.  Protocol-specific byzantine and
    environment-fault rows inject through each protocol's own witness
    downcast. *)

type expectation = { exp_live : bool; exp_safe : bool; exp_confidential : bool }

type scenario = {
  id : string;
  description : string;
  protocol : Cluster.Proto.t;
  expected : expectation;
  honest : int list;  (** replicas whose execution state must agree *)
  make :
    ?tracer:Splitbft_obs.Tracer.t -> ?flight:Splitbft_obs.Flight.t -> int64 -> Cluster.t;
  inject : Cluster.t -> unit;  (** post-creation fault injection *)
  duration_us : float;
  min_completed : int;  (** liveness threshold *)
  check : Cluster.t -> string option;
      (** scenario-specific post-condition on the final cluster state
          (e.g. "the restarted replica recovered", "the rollback was
          refused"); [Some reason] fails the row even when the
          live/safe/confidential verdict matches *)
}

val all : scenario list

val find : string -> scenario option

type outcome = {
  scenario : scenario;
  cluster : Cluster.t;  (** final cluster state (registry, nodes) *)
  verdict : Safety.verdict;
  workload : Workload.result;
  check_failure : string option;  (** [scenario.check] result *)
  alerts : Detector.alert list;
      (** the anomaly detector's alerts, in detection order; always empty
          when the run was made without [~detect] *)
}

val run :
  ?seed:int64 -> ?tracer:Splitbft_obs.Tracer.t -> ?detect:bool -> scenario -> outcome
(** [tracer], when given, is installed on the scenario's cluster engine so
    the run emits causal spans (see {!Trace_report}).  [detect] (default
    false) additionally attaches a flight recorder and a {!Detector}
    before injection, populating [alerts]; a run without it is
    byte-identical to one before the detector existed. *)

val anomalous : outcome -> bool
(** The row missed its expectation, failed its check, or raised alerts. *)

val dump_flight : dir:string -> outcome -> string option
(** Writes the run's flight recording as a [splitbft-flight v1] artifact
    ([<dir>/<scenario-id>-flight.txt], slashes flattened), creating [dir]
    if needed; [None] when the run carried no recorder.  CI calls this on
    {!anomalous} detect-mode rows, next to the chaos counterexample
    schedules. *)

val matches_expectation : outcome -> bool

val print_table1 : outcome list -> unit
(** Renders the Table 1 reproduction: per protocol/fault row, expected vs
    observed liveness / integrity / confidentiality. *)

val json_of_outcomes : outcome list -> Splitbft_obs.Json.t
(** Machine-readable Table 1 rows (expected vs observed per scenario) for
    the [BENCH_*.json] trajectory. *)
