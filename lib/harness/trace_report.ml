(* Trace analyzer: turns a run's raw span store into the per-phase cost
   breakdown behind Figure 4, checks the causal trees for structural
   integrity, and reconciles span-attributed cost against the registry's
   aggregate counters.

   The tracer records flat spans on the hot path; everything here — trace
   grouping, tree validation, aggregation — happens once, after the run. *)

module Tracer = Splitbft_obs.Tracer
module Registry = Splitbft_obs.Registry
module Json = Splitbft_obs.Json

type phase = {
  cat : string;
  name : string;
  count : int;
  total_dur_us : float;
  mean_dur_us : float;
  max_dur_us : float;
  args : (string * float) list;  (* span args summed across the phase *)
}

type t = {
  spans : int;
  dropped : int;
  unfinished : int;
  traces : int;
  client_traces : int;
  forced_traces : int;
  orphan_traces : int;
  complete_traces : int;
  broken_traces : int;
  first_defect : string option;
  ecall_spans : int;
  ecall_total_us : float;
  ecall_copied_bytes : float;
  ecall_cache_hits : float;
  phases : phase list;
}

(* Synthetic trace ids are tagged in the top bits (see Tracer). *)
let forced_bit = 0x4000_0000_0000_0000L
let orphan_bit = 0x2000_0000_0000_0000L

let classify trace =
  if Int64.logand trace forced_bit <> 0L then `Forced
  else if Int64.logand trace orphan_bit <> 0L then `Orphan
  else `Client

let arg s key =
  match List.assoc_opt key s.Tracer.args with Some v -> v | None -> 0.0

let analyze tracer =
  let spans = Tracer.spans tracer in
  let by_id = Hashtbl.create 1024 in
  List.iter (fun (s : Tracer.span) -> Hashtbl.replace by_id s.id s) spans;
  (* ----- causal-tree integrity, per trace ----- *)
  let defects = Hashtbl.create 64 in  (* trace -> first defect *)
  let traces = Hashtbl.create 64 in
  let unfinished = ref 0 in
  List.iter
    (fun (s : Tracer.span) ->
      if not (Hashtbl.mem traces s.trace) then Hashtbl.add traces s.trace ();
      if s.dur < 0.0 then incr unfinished;
      match s.parent with
      | None -> ()
      | Some p -> (
        if not (Hashtbl.mem defects s.trace) then
          match Hashtbl.find_opt by_id p with
          | None ->
            Hashtbl.add defects s.trace
              (Printf.sprintf "span %d (%s) references missing parent %d" s.id
                 s.name p)
          | Some parent ->
            if parent.trace <> s.trace then
              Hashtbl.add defects s.trace
                (Printf.sprintf
                   "span %d (%s) parented across traces %016Lx -> %016Lx" s.id
                   s.name s.trace parent.trace)
            else if parent.start > s.start +. 1e-6 then
              Hashtbl.add defects s.trace
                (Printf.sprintf
                   "span %d (%s) starts %.1f us before its parent %d (%s)" s.id
                   s.name (parent.start -. s.start) p parent.name)))
    spans;
  let client = ref 0 and forced = ref 0 and orphan = ref 0 in
  Hashtbl.iter
    (fun trace () ->
      match classify trace with
      | `Client -> incr client
      | `Forced -> incr forced
      | `Orphan -> incr orphan)
    traces;
  let total_traces = Hashtbl.length traces in
  let broken = Hashtbl.length defects in
  let first_defect =
    Hashtbl.fold (fun _ d acc -> match acc with Some _ -> acc | None -> Some d)
      defects None
  in
  (* ----- per-phase aggregation (cat:name) ----- *)
  let phases = Hashtbl.create 64 in
  let ecall_spans = ref 0 in
  let ecall_total = ref 0.0 in
  let ecall_copied = ref 0.0 in
  let ecall_cache_hits = ref 0.0 in
  List.iter
    (fun (s : Tracer.span) ->
      if String.equal s.cat "enclave" then begin
        incr ecall_spans;
        ecall_total := !ecall_total +. arg s "total_us";
        ecall_copied := !ecall_copied +. arg s "copied_bytes";
        ecall_cache_hits := !ecall_cache_hits +. arg s "cache_hits"
      end;
      let key = (s.cat, s.name) in
      let dur = Float.max 0.0 s.dur in
      match Hashtbl.find_opt phases key with
      | None ->
        Hashtbl.add phases key
          (ref
             { cat = s.cat; name = s.name; count = 1; total_dur_us = dur;
               mean_dur_us = dur; max_dur_us = dur; args = s.args })
      | Some cell ->
        let p = !cell in
        let args =
          List.fold_left
            (fun acc (k, v) ->
              match List.assoc_opt k acc with
              | Some prev -> (k, prev +. v) :: List.remove_assoc k acc
              | None -> (k, v) :: acc)
            p.args s.args
        in
        cell :=
          { p with
            count = p.count + 1;
            total_dur_us = p.total_dur_us +. dur;
            max_dur_us = Float.max p.max_dur_us dur;
            args })
    spans;
  let phases =
    Hashtbl.fold (fun _ cell acc -> !cell :: acc) phases []
    |> List.map (fun p ->
           { p with mean_dur_us = p.total_dur_us /. float_of_int p.count })
    |> List.sort (fun a b -> Float.compare b.total_dur_us a.total_dur_us)
  in
  { spans = Tracer.span_count tracer;
    dropped = Tracer.dropped tracer;
    unfinished = !unfinished;
    traces = total_traces;
    client_traces = !client;
    forced_traces = !forced;
    orphan_traces = !orphan;
    complete_traces = total_traces - broken;
    broken_traces = broken;
    first_defect;
    ecall_spans = !ecall_spans;
    ecall_total_us = !ecall_total;
    ecall_copied_bytes = !ecall_copied;
    ecall_cache_hits = !ecall_cache_hits;
    phases }

(* ----- reconciliation against the registry ----- *)

(* Only exact when every ecall is attributed to some span, i.e. the tracer
   runs with sample_every = 1 and record_orphans = true; the CLI enforces
   that before promising reconciliation. *)
let reconcile report registry =
  let counted =
    Registry.sum registry ~prefix:"tee.ecalls"
    -. Registry.sum registry ~prefix:"tee.ecalls_aborted"
  in
  let ecall_us = Registry.sum registry ~prefix:"tee.ecall_us" in
  let copy_bytes = Registry.sum registry ~prefix:"tee.copy_bytes" in
  let close a b =
    (* float accumulation orders differ between the two sides *)
    Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))
  in
  if float_of_int report.ecall_spans <> counted then
    Error
      (Printf.sprintf "ecall span count %d != registry tee.ecalls %.0f"
         report.ecall_spans counted)
  else if not (close report.ecall_total_us ecall_us) then
    Error
      (Printf.sprintf
         "span-attributed ecall cost %.3f us != registry tee.ecall_us %.3f us"
         report.ecall_total_us ecall_us)
  else if not (close report.ecall_copied_bytes copy_bytes) then
    Error
      (Printf.sprintf
         "span-attributed copied bytes %.0f != registry tee.copy_bytes %.0f"
         report.ecall_copied_bytes copy_bytes)
  else if
    not
      (close report.ecall_cache_hits
         (Registry.sum registry ~prefix:"tee.verify_cache_hits"))
  then
    Error
      (Printf.sprintf
         "span-attributed cache hits %.0f != registry tee.verify_cache_hits %.0f"
         report.ecall_cache_hits
         (Registry.sum registry ~prefix:"tee.verify_cache_hits"))
  else Ok ()

(* ----- rendering ----- *)

let print ?(max_phases = 24) report =
  let interesting = [ "crypto_us"; "exec_us"; "serialize_us"; "copy_us" ] in
  let rows =
    List.filteri (fun i _ -> i < max_phases) report.phases
    |> List.map (fun p ->
           [ p.cat ^ ":" ^ p.name;
             string_of_int p.count;
             Table.us p.total_dur_us;
             Table.us p.mean_dur_us;
             Table.us p.max_dur_us ]
           @ List.map
               (fun k ->
                 match List.assoc_opt k p.args with
                 | Some v when v > 0.0 -> Table.us v
                 | Some _ | None -> "-")
               interesting)
  in
  Table.print ~title:"Per-phase cost attribution (Figure 4 decomposition)"
    ~header:
      ([ "phase"; "spans"; "total"; "mean"; "max" ]
      @ List.map (fun k -> String.sub k 0 (String.length k - 3)) interesting)
    ~rows;
  Printf.printf
    "traces: %d (%d client, %d forced, %d orphan) — %d complete, %d broken\n"
    report.traces report.client_traces report.forced_traces
    report.orphan_traces report.complete_traces report.broken_traces;
  (match report.first_defect with
  | Some d -> Printf.printf "first defect: %s\n" d
  | None -> ());
  Printf.printf "spans: %d (%d unfinished, %d dropped)\n" report.spans
    report.unfinished report.dropped

let to_json report =
  let phase_json p =
    Json.Obj
      ([ ("cat", Json.Str p.cat);
         ("name", Json.Str p.name);
         ("count", Json.Int p.count);
         ("total_dur_us", Json.Float p.total_dur_us);
         ("mean_dur_us", Json.Float p.mean_dur_us);
         ("max_dur_us", Json.Float p.max_dur_us) ]
      @ List.rev_map (fun (k, v) -> (k, Json.Float v)) p.args)
  in
  Json.Obj
    [ ("schema", Json.Str "splitbft.trace_report/v1");
      ("spans", Json.Int report.spans);
      ("dropped", Json.Int report.dropped);
      ("unfinished", Json.Int report.unfinished);
      ("traces", Json.Int report.traces);
      ("client_traces", Json.Int report.client_traces);
      ("forced_traces", Json.Int report.forced_traces);
      ("orphan_traces", Json.Int report.orphan_traces);
      ("complete_traces", Json.Int report.complete_traces);
      ("broken_traces", Json.Int report.broken_traces);
      ("ecall_spans", Json.Int report.ecall_spans);
      ("ecall_total_us", Json.Float report.ecall_total_us);
      ("ecall_copied_bytes", Json.Float report.ecall_copied_bytes);
      ("ecall_cache_hits", Json.Float report.ecall_cache_hits);
      ("phases", Json.List (List.map phase_json report.phases)) ]

(* ----- Trace Event JSON validation (the CI gate) ----- *)

(* Structural checks on an exported Chrome Trace Event document: parseable,
   schema-tagged, ids unique, every parent reference resolves within the
   same trace and starts no later than its child, and the otherData span
   count matches the number of "X" events. *)
let validate json =
  let ( let* ) = Result.bind in
  let* events =
    match Json.member "traceEvents" json with
    | Some (Json.List l) -> Ok l
    | Some _ -> Error "traceEvents is not a list"
    | None -> Error "missing traceEvents"
  in
  let* () =
    match Json.member "otherData" json with
    | Some other -> (
      match Json.member "schema" other with
      | Some (Json.Str "splitbft.trace/v1") -> Ok ()
      | Some (Json.Str s) -> Error (Printf.sprintf "unexpected schema %S" s)
      | _ -> Error "otherData.schema missing")
    | None -> Error "missing otherData"
  in
  let num = function
    | Some (Json.Int i) -> Some (float_of_int i)
    | Some (Json.Float f) -> Some f
    | _ -> None
  in
  let declared =
    match Json.member "otherData" json with
    | Some other -> num (Json.member "spans" other)
    | None -> None
  in
  (* first pass: collect X events as (id, trace, parent option, ts) *)
  let table = Hashtbl.create 1024 in
  let xs = ref [] in
  let x_count = ref 0 in
  let* () =
    List.fold_left
      (fun acc ev ->
        let* () = acc in
        match Json.member "ph" ev with
        | Some (Json.Str "X") -> (
          incr x_count;
          let args = Option.value ~default:Json.Null (Json.member "args" ev) in
          match
            (Json.member "id" args, Json.member "trace" args,
             num (Json.member "ts" ev))
          with
          | Some (Json.Int id), Some (Json.Str trace), Some ts ->
            if Hashtbl.mem table id then
              Error (Printf.sprintf "duplicate span id %d" id)
            else begin
              Hashtbl.add table id (trace, ts);
              (match Json.member "parent" args with
              | Some (Json.Int p) -> xs := (id, trace, p, ts) :: !xs
              | _ -> ());
              Ok ()
            end
          | _ -> Error "X event missing args.id/args.trace/ts")
        | Some (Json.Str _) -> Ok ()
        | _ -> Error "event missing ph")
      (Ok ()) events
  in
  let* () =
    match declared with
    | Some d when d <> float_of_int !x_count ->
      Error
        (Printf.sprintf "otherData.spans %.0f != %d X events" d !x_count)
    | Some _ | None -> Ok ()
  in
  List.fold_left
    (fun acc (id, trace, parent, ts) ->
      let* () = acc in
      match Hashtbl.find_opt table parent with
      | None -> Error (Printf.sprintf "span %d references missing parent %d" id parent)
      | Some (ptrace, pts) ->
        if not (String.equal ptrace trace) then
          Error
            (Printf.sprintf "span %d parented across traces %s -> %s" id trace
               ptrace)
        else if pts > ts +. 1e-6 then
          Error
            (Printf.sprintf "span %d starts before its parent %d" id parent)
        else Ok ())
    (Ok ()) !xs
