(** Trace analyzer: per-phase cost breakdown, causal-tree validation and
    registry reconciliation over a {!Splitbft_obs.Tracer} span store.

    One trace is a client request's causal story (client root → broker
    dispatch → enclave transitions → reply), or a synthetic root for view
    changes / recovery / orphaned transitions.  The analyzer groups spans
    by [(cat, name)] into the stacked per-phase costs of the paper's
    Figure 4, checks every parent link (exists, same trace, starts no
    later than its child), and — when the tracer sampled everything —
    reconciles span-attributed enclave cost against the registry's
    [tee.*] counters, proving the attribution loses nothing. *)

type phase = {
  cat : string;
  name : string;
  count : int;
  total_dur_us : float;
  mean_dur_us : float;
  max_dur_us : float;
  args : (string * float) list;
      (** span cost arguments summed across the phase
          ([crypto_us], [exec_us], [copied_bytes], ...) *)
}

type t = {
  spans : int;
  dropped : int;
  unfinished : int;  (** spans never finished (e.g. requests in flight) *)
  traces : int;
  client_traces : int;
  forced_traces : int;  (** view change / recovery / promoted-slow roots *)
  orphan_traces : int;  (** enclave transitions outside any sampled trace *)
  complete_traces : int;
  broken_traces : int;
  first_defect : string option;  (** diagnostic for the first broken tree *)
  ecall_spans : int;
  ecall_total_us : float;
  ecall_copied_bytes : float;
  ecall_cache_hits : float;
      (** verified-digest cache hits summed over enclave spans *)
  phases : phase list;  (** sorted by [total_dur_us], descending *)
}

val analyze : Splitbft_obs.Tracer.t -> t

val reconcile : t -> Splitbft_obs.Registry.t -> (unit, string) result
(** Checks span-attributed enclave cost against the registry aggregates:
    ecall span count vs [tee.ecalls], summed [total_us] args vs
    [tee.ecall_us], summed [copied_bytes] vs [tee.copy_bytes], summed
    [cache_hits] vs [tee.verify_cache_hits].  Exact only when the tracer
    ran with [sample_every = 1] and [record_orphans = true]. *)

val print : ?max_phases:int -> t -> unit
(** Renders the per-phase table plus trace/span totals. *)

val to_json : t -> Splitbft_obs.Json.t

val validate : Splitbft_obs.Json.t -> (unit, string) result
(** Structural validation of an exported Chrome Trace Event document
    ({!Splitbft_obs.Tracer.to_json} output, possibly re-read from disk):
    schema tag present, span ids unique, every parent reference resolves
    within the same trace and starts no later than its child, and the
    declared span count matches the events.  This is the CI gate. *)
