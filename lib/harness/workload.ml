module Engine = Splitbft_sim.Engine
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs
module Stats = Splitbft_util.Stats
module Rng = Splitbft_util.Rng
module Zipf = Splitbft_util.Zipf
module Lru = Splitbft_util.Lru

type spec = {
  clients : int;
  window : int;
  warmup_us : float;
  duration_us : float;
  payload_size : int;
  ready_quorum : int option;
}

let default_spec =
  { clients = 10;
    window = 1;
    warmup_us = 500_000.0;
    duration_us = 2_000_000.0;
    payload_size = 10;
    ready_quorum = None }

type result = {
  throughput_ops : float;
  mean_latency_us : float;
  p50_latency_us : float;
  p99_latency_us : float;
  completed : int;
  completed_total : int;
  wrong_results : int;
  clients_ready : int;
}

let canary = "S3CRET"

(* A [payload_size]-byte value carrying the canary prefix. *)
let value ~payload_size ~client ~i =
  let base = Printf.sprintf "%s%d:%d" canary client i in
  if String.length base >= payload_size then String.sub base 0 payload_size
  else base ^ String.make (payload_size - String.length base) 'x'

let op_for (cluster : Cluster.t) ~client ~i ~payload_size =
  match (Cluster.params cluster).Cluster.app with
  | Cluster.App_kvs ->
    (* PUT updating a bounded key set, as in the paper's evaluation. *)
    ( Kvs.encode_op (Kvs.Put (Printf.sprintf "key-%d-%d" client (i mod 64),
                              value ~payload_size ~client ~i)),
      `Expect Kvs.ok )
  | Cluster.App_ledger -> (value ~payload_size ~client ~i, `Any)
  | Cluster.App_counter -> (Splitbft_app.Counter_app.increment_op, `Any)

let run ?(at_warmup = fun () -> ()) cluster spec =
  let engine = Cluster.engine cluster in
  let clients =
    Cluster.make_clients cluster ~count:spec.clients ~window:spec.window
      ?ready_quorum:spec.ready_quorum ()
  in
  let t_warm = Engine.now engine +. spec.warmup_us in
  let t_end = t_warm +. spec.duration_us in
  let lat = Stats.create () in
  let completed_in_window = ref 0 in
  let completed_total = ref 0 in
  let wrong = ref 0 in
  let ready = ref 0 in
  List.iteri
    (fun ci client ->
      let i = ref 0 in
      let rec next () =
        incr i;
        let op, expect = op_for cluster ~client:ci ~i:!i ~payload_size:spec.payload_size in
        Client.submit client ~op ~on_result:(fun ~latency_us ~result ->
            incr completed_total;
            let now = Engine.now engine in
            (match expect with
            | `Expect e ->
              if not (String.equal result e) then incr wrong
            | `Any -> if String.equal result "CORRUPT" then incr wrong);
            if now >= t_warm && now < t_end then begin
              incr completed_in_window;
              Stats.add lat latency_us
            end;
            next ())
      in
      Client.start client ~on_ready:(fun () ->
          incr ready;
          for _ = 1 to spec.window do
            next ()
          done))
    clients;
  ignore (Engine.schedule engine ~delay:(t_warm -. Engine.now engine) ~label:"warmup-end"
            at_warmup);
  Engine.run ~until:t_end engine;
  List.iter Client.stop clients;
  let reg = Engine.obs engine in
  let module Registry = Splitbft_obs.Registry in
  Registry.set_summary reg "workload.latency_us" lat;
  let set name v = Registry.set (Registry.gauge reg name) v in
  let throughput = float_of_int !completed_in_window /. (spec.duration_us /. 1_000_000.0) in
  set "workload.throughput_ops" throughput;
  set "workload.completed" (float_of_int !completed_in_window);
  set "workload.completed_total" (float_of_int !completed_total);
  set "workload.wrong_results" (float_of_int !wrong);
  set "workload.clients_ready" (float_of_int !ready);
  { throughput_ops = throughput;
    mean_latency_us = Stats.mean lat;
    p50_latency_us = Stats.median lat;
    p99_latency_us = Stats.percentile lat 99.0;
    completed = !completed_in_window;
    completed_total = !completed_total;
    wrong_results = !wrong;
    clients_ready = !ready }

(* ===== read-heavy mix against follower replicas =====

   The read-scaling experiment: closed-loop drivers issue a Zipfian
   95/5 read/write mix.  Writes always take the quorum path through a
   protocol-matched client.  Reads go to the follower replicas
   (round-robin, one outstanding read per driver, retried on loss) when
   the cluster has any — or through the same consensus client when it
   does not, which is the 0-follower baseline the scaling ratio is
   measured against.  Read throughput counts only reads actually served
   from follower state; STALE/REFUSED replies are tallied separately. *)

module Reads = struct
  module Message = Splitbft_types.Message
  module Addr = Splitbft_types.Addr
  module Network = Splitbft_sim.Network
  module Proto = Splitbft_proto.Protocol_intf
  module Follower = Splitbft_storage.Follower
  module Entry = Splitbft_storage.Entry

  type spec = {
    clients : int;
    warmup_us : float;
    duration_us : float;
    read_ratio : float;
    zipf_s : float;
    keyspace : int;
    payload_size : int;
    read_retry_us : float;
    ready_quorum : int option;
  }

  let default_spec =
    { clients = 8;
      warmup_us = 300_000.0;
      duration_us = 1_000_000.0;
      read_ratio = 0.95;
      zipf_s = 0.99;
      keyspace = 256;
      payload_size = 10;
      read_retry_us = 100_000.0;
      ready_quorum = None }

  type result = {
    read_ops : float;  (** served reads per second inside the window *)
    write_ops : float;
    reads_ok : int;
    writes_ok : int;
    stale_reads : int;
    refused_reads : int;
    wrong_reads : int;
    rd_mean_latency_us : float;
    rd_p99_latency_us : float;
  }

  (* Read drivers answer at their own client addresses, disjoint from the
     consensus clients' ids (0 .. clients-1). *)
  let read_client_base = 500

  let run ?(at_warmup = fun () -> ()) cluster spec =
    let engine = Cluster.engine cluster in
    let net = Cluster.network cluster in
    let followers = Array.of_list (Cluster.followers cluster) in
    let nf = Array.length followers in
    let sealed =
      match Proto.followers (Cluster.params cluster).Cluster.protocol with
      | Proto.Follower_feed { sealed } -> sealed
      | Proto.No_followers -> false
    in
    let writers =
      Cluster.make_clients cluster ~count:spec.clients ~window:1
        ?ready_quorum:spec.ready_quorum ()
    in
    let t_warm = Engine.now engine +. spec.warmup_us in
    let t_end = t_warm +. spec.duration_us in
    let rlat = Stats.create () in
    let reads_ok = ref 0 and writes_ok = ref 0 in
    let stale = ref 0 and refused = ref 0 and wrong = ref 0 in
    let in_window () =
      let now = Engine.now engine in
      now >= t_warm && now < t_end
    in
    let note_read ~latency_us outcome =
      (match outcome with
      | `Ok -> if in_window () then begin incr reads_ok; Stats.add rlat latency_us end
      | `Stale -> incr stale
      | `Refused -> incr refused
      | `Wrong -> incr wrong)
    in
    List.iteri
      (fun ci writer ->
        let rid = read_client_base + ci in
        let rng =
          Rng.of_key (Engine.seed engine) ~domain:"reads-driver"
            ~stream:(Int64.of_int ci)
        in
        let zipf = Zipf.create ~s:spec.zipf_s ~n:spec.keyspace () in
        let ts = ref 0L in
        let i = ref 0 in
        (* (outstanding ts, issue time, continuation) of the in-flight
           follower read; replies for any other ts are stale duplicates. *)
        let pending = ref None in
        let issue_read ~key k =
          ts := Int64.add !ts 1L;
          let my_ts = !ts in
          let plain = Kvs.encode_op (Kvs.Get key) in
          let op =
            if sealed then Entry.seal_read_op ~client:rid ~ts:my_ts plain else plain
          in
          let issued_at = Engine.now engine in
          pending := Some (my_ts, issued_at, k);
          let payload =
            Message.encode
              (Message.Read_request { rr_client = rid; rr_ts = my_ts; rr_op = op })
          in
          (* Round-robin over the followers; a retry moves to the next one,
             so one dead follower only costs latency, not liveness. *)
          let rec send attempt =
            let fo = followers.((ci + Int64.to_int my_ts + attempt) mod nf) in
            Network.send net ~src:(Addr.client rid)
              ~dst:(Addr.follower (Follower.fid fo))
              payload;
            ignore
              (Engine.schedule engine ~delay:spec.read_retry_us ~label:"reads:retry"
                 (fun () ->
                   match !pending with
                   | Some (ts', _, _)
                     when Int64.equal ts' my_ts && Engine.now engine < t_end ->
                     send (attempt + 1)
                   | _ -> ()))
          in
          send 0
        in
        Network.register net (Addr.client rid) (fun ~src:_ payload ->
            match Message.decode payload with
            | Ok (Message.Read_reply rd) -> (
              match !pending with
              | Some (ts', issued_at, k) when Int64.equal rd.rd_ts ts' ->
                pending := None;
                let latency_us = Engine.now engine -. issued_at in
                let outcome =
                  if String.equal rd.rd_result Follower.stale_result then `Stale
                  else if String.equal rd.rd_result Follower.bad_op_result then
                    `Refused
                  else if sealed then
                    match Entry.open_read_result ~client:rid ~ts:ts' rd.rd_result with
                    | Ok _ -> `Ok
                    | Error _ -> `Wrong
                  else `Ok
                in
                note_read ~latency_us outcome;
                if Engine.now engine < t_end then k ()
              | _ -> ())
            | Ok _ | Error _ -> ());
        let rec step () =
          if Engine.now engine < t_end then begin
            incr i;
            let is_read = Rng.float rng 1.0 < spec.read_ratio in
            let key = Printf.sprintf "key-%d" (Zipf.sample zipf rng) in
            if is_read && nf > 0 then issue_read ~key step
            else if is_read then
              (* 0-follower baseline: the read takes the full quorum path. *)
              Client.submit writer ~op:(Kvs.encode_op (Kvs.Get key))
                ~on_result:(fun ~latency_us ~result ->
                  note_read ~latency_us
                    (if String.equal result "CORRUPT" then `Wrong else `Ok);
                  step ())
            else
              Client.submit writer
                ~op:
                  (Kvs.encode_op
                     (Kvs.Put
                        (key, value ~payload_size:spec.payload_size ~client:ci ~i:!i)))
                ~on_result:(fun ~latency_us:_ ~result ->
                  if String.equal result Kvs.ok && in_window () then incr writes_ok;
                  step ())
          end
        in
        Client.start writer ~on_ready:step)
      writers;
    ignore
      (Engine.schedule engine ~delay:(t_warm -. Engine.now engine)
         ~label:"reads:warmup-end" at_warmup);
    Engine.run ~until:t_end engine;
    List.iter Client.stop writers;
    List.iteri
      (fun ci _ -> Network.unregister net (Addr.client (read_client_base + ci)))
      writers;
    let per_sec c = float_of_int c /. (spec.duration_us /. 1e6) in
    let reg = Engine.obs engine in
    let module Registry = Splitbft_obs.Registry in
    Registry.set_summary reg "reads.latency_us" rlat;
    let set name v = Registry.set (Registry.gauge reg name) v in
    set "reads.read_ops" (per_sec !reads_ok);
    set "reads.write_ops" (per_sec !writes_ok);
    set "reads.stale" (float_of_int !stale);
    set "reads.refused" (float_of_int !refused);
    set "reads.wrong" (float_of_int !wrong);
    { read_ops = per_sec !reads_ok;
      write_ops = per_sec !writes_ok;
      reads_ok = !reads_ok;
      writes_ok = !writes_ok;
      stale_reads = !stale;
      refused_reads = !refused;
      wrong_reads = !wrong;
      rd_mean_latency_us = Stats.mean rlat;
      rd_p99_latency_us = Stats.percentile rlat 99.0 }
end

(* ===== open-loop traffic generation =====

   Closed-loop clients resubmit on completion, so offered load tracks
   service capacity and latency never shows queueing.  The open-loop
   generator schedules arrivals from a time-varying arrival process
   regardless of completions: each arrival is stamped, multiplexed onto a
   bounded pool of real (attested) client connections, and its latency is
   measured from ARRIVAL to reply — client-side queueing included — which
   is what makes the saturation knee visible as a latency explosion.

   Simulated identities model millions of distinct end users behind the
   connection pool (the gateway deployment: many users, few attested
   sessions).  Per-identity state is keyed RNG + an op counter, held in a
   bounded LRU so memory never grows with the identity space; an evicted
   identity that returns is re-derived from [Rng.of_key] and continues a
   statistically identical stream. *)

module Open_loop = struct
  type arrival =
    | Poisson
    | Bursty of { peak_factor : float; period_us : float; duty : float }

  type spec = {
    arrival : arrival;
    rate_ops : float;
    warmup_us : float;
    duration_us : float;
    connections : int;
    window : int;
    identities : int;
    identity_cache : int;
    zipf_s : float;
    keyspace : int;
    read_ratio : float;
    payload_size : int;
    ready_quorum : int option;
  }

  let default_spec =
    { arrival = Poisson;
      rate_ops = 2_000.0;
      warmup_us = 500_000.0;
      duration_us = 2_000_000.0;
      connections = 16;
      window = 16;
      identities = 100_000;
      identity_cache = 4_096;
      zipf_s = 0.99;
      keyspace = 4_096;
      read_ratio = 0.5;
      payload_size = 10;
      ready_quorum = None }

  type result = {
    offered_ops : float;
    achieved_ops : float;
    ol_mean_latency_us : float;
    ol_p50_latency_us : float;
    ol_p95_latency_us : float;
    ol_p99_latency_us : float;
    arrivals : int;
    ol_completed : int;
    ol_completed_total : int;
    ol_wrong_results : int;
    backlog_peak : int;
    live_identities_peak : int;
    distinct_identities : int;
    identity_words_peak : int;
  }

  (* ----- pure generator (drivable without a cluster, for tests) ----- *)

  type identity_state = { id_rng : Rng.t; mutable id_ops : int }

  type gen = {
    g_spec : spec;
    g_seed : int64;
    g_app : Cluster.app_kind;
    arrivals_rng : Rng.t;  (* arrival process + identity selection *)
    zipf : Zipf.t;
    idents : identity_state Lru.t;
    mutable live_identities_peak : int;
  }

  let gen ?(app = Cluster.App_kvs) ~seed spec =
    if spec.identities <= 0 then invalid_arg "Open_loop.gen: identities";
    if spec.rate_ops <= 0.0 then invalid_arg "Open_loop.gen: rate_ops";
    (match spec.arrival with
    | Poisson -> ()
    | Bursty { peak_factor; period_us; duty } ->
      if duty <= 0.0 || duty >= 1.0 || period_us <= 0.0 || peak_factor *. duty >= 1.0
      then invalid_arg "Open_loop.gen: bursty shape");
    { g_spec = spec;
      g_seed = seed;
      g_app = app;
      arrivals_rng = Rng.of_key seed ~domain:"openloop-arrivals" ~stream:0L;
      zipf = Zipf.create ~s:spec.zipf_s ~n:spec.keyspace ();
      idents = Lru.create ~capacity:(max 1 spec.identity_cache);
      live_identities_peak = 0 }

  (* Offered rate at virtual time [t].  The bursty process is a square wave
     with the requested mean: [peak_factor * rate] for the [duty] fraction
     of each period, and the complementary low rate otherwise — a
     compressed diurnal cycle. *)
  let rate_at spec t =
    match spec.arrival with
    | Poisson -> spec.rate_ops
    | Bursty { peak_factor; period_us; duty } ->
      let phase = Float.rem t period_us /. period_us in
      if phase < duty then spec.rate_ops *. peak_factor
      else spec.rate_ops *. (1.0 -. (peak_factor *. duty)) /. (1.0 -. duty)

  let interarrival g ~now =
    Rng.exponential g.arrivals_rng ~mean:(1e6 /. rate_at g.g_spec now)

  let identity_state g identity =
    let key = string_of_int identity in
    match Lru.find g.idents key with
    | Some st -> st
    | None ->
      (* Keyed derivation: the identity's op stream depends only on
         (seed, identity) — independent of the connection count and of
         every other identity.  An evicted identity that returns restarts
         that same deterministic stream from the beginning (fresh-session
         semantics): bounded memory, no eviction-history dependence. *)
      let st =
        { id_rng = Rng.of_key g.g_seed ~domain:"identity" ~stream:(Int64.of_int identity);
          id_ops = 0 }
      in
      Lru.add g.idents key st;
      if Lru.length g.idents > g.live_identities_peak then
        g.live_identities_peak <- Lru.length g.idents;
      st

  (* One arrival: (identity, encoded op, expected result). *)
  let next g =
    let spec = g.g_spec in
    let identity = Rng.int g.arrivals_rng spec.identities in
    let st = identity_state g identity in
    st.id_ops <- st.id_ops + 1;
    let op, expect =
      match g.g_app with
      | Cluster.App_kvs ->
        let key = Printf.sprintf "key-%d" (Zipf.sample g.zipf st.id_rng) in
        if Rng.float st.id_rng 1.0 < spec.read_ratio then
          (Kvs.encode_op (Kvs.Get key), `Any)
        else
          ( Kvs.encode_op
              (Kvs.Put (key, value ~payload_size:spec.payload_size ~client:identity ~i:st.id_ops)),
            `Expect Kvs.ok )
      | Cluster.App_ledger ->
        (value ~payload_size:spec.payload_size ~client:identity ~i:st.id_ops, `Any)
      | Cluster.App_counter -> (Splitbft_app.Counter_app.increment_op, `Any)
    in
    (identity, op, expect)

  let live_identities g = Lru.length g.idents
  let live_identities_peak g = g.live_identities_peak
  let distinct_identities g = Lru.misses g.idents

  let identity_words g = Obj.reachable_words (Obj.repr g.idents)

  (* Digest over the first [n] arrivals of the generator's virtual trace
     (inter-arrival gap, identity, op bytes) — the regression pin for
     reproducible workload generation. *)
  let fingerprint ~seed ?app spec ~n =
    let g = gen ?app ~seed spec in
    let buf = Buffer.create (n * 32) in
    let clock = ref 0.0 in
    for _ = 1 to n do
      let dt = interarrival g ~now:!clock in
      clock := !clock +. dt;
      let identity, op, _ = next g in
      Buffer.add_string buf (Printf.sprintf "%.6f:%d:%s;" dt identity op)
    done;
    Digest.to_hex (Digest.string (Buffer.contents buf))

  (* ----- driving a cluster ----- *)

  let run ?(at_warmup = fun () -> ()) cluster spec =
    let engine = Cluster.engine cluster in
    let g =
      gen ~app:(Cluster.params cluster).Cluster.app
        ~seed:(Engine.seed engine) spec
    in
    let clients =
      Array.of_list
        (Cluster.make_clients cluster ~count:spec.connections ~window:spec.window
           ?ready_quorum:spec.ready_quorum ())
    in
    let t_warm = Engine.now engine +. spec.warmup_us in
    let t_end = t_warm +. spec.duration_us in
    let lat = Stats.create () in
    let arrivals_in_window = ref 0 in
    let completed_in_window = ref 0 in
    let completed_total = ref 0 in
    let submitted = ref 0 in
    let wrong = ref 0 in
    let backlog_peak = ref 0 in
    let words_peak = ref 0 in
    let sample_words () =
      let w = identity_words g in
      if w > !words_peak then words_peak := w
    in
    let arrive () =
      let arrived_at = Engine.now engine in
      let identity, op, expect = next g in
      if arrived_at >= t_warm && arrived_at < t_end then incr arrivals_in_window;
      incr submitted;
      if !submitted mod 4096 = 0 then sample_words ();
      let backlog = !submitted - !completed_total in
      if backlog > !backlog_peak then backlog_peak := backlog;
      let conn = clients.(identity mod spec.connections) in
      (* Latency from ARRIVAL, not from dispatch: when every connection
         window is full the op waits in the client queue, and that wait is
         the open-loop signal. *)
      Client.submit conn ~op ~on_result:(fun ~latency_us:_ ~result ->
          incr completed_total;
          let now = Engine.now engine in
          (match expect with
          | `Expect e -> if not (String.equal result e) then incr wrong
          | `Any -> if String.equal result "CORRUPT" then incr wrong);
          if now >= t_warm && now < t_end then begin
            incr completed_in_window;
            Stats.add lat (now -. arrived_at)
          end)
    in
    (* Arrivals start once the connection pool is ready (the attestation
       handshake completes well inside the warmup) and stop at the end of
       the measurement window. *)
    let ready = ref 0 in
    let rec schedule_next () =
      let now = Engine.now engine in
      let dt = interarrival g ~now in
      if now +. dt < t_end then
        ignore
          (Engine.schedule engine ~delay:dt ~label:"openloop:arrival" (fun () ->
               arrive ();
               schedule_next ()))
    in
    Array.iter
      (fun c ->
        Client.start c ~on_ready:(fun () ->
            incr ready;
            if !ready = spec.connections then schedule_next ()))
      clients;
    ignore
      (Engine.schedule engine ~delay:(t_warm -. Engine.now engine)
         ~label:"openloop:warmup-end" at_warmup);
    Engine.run ~until:t_end engine;
    Array.iter Client.stop clients;
    sample_words ();
    let offered = float_of_int !arrivals_in_window /. (spec.duration_us /. 1e6) in
    let achieved = float_of_int !completed_in_window /. (spec.duration_us /. 1e6) in
    let reg = Engine.obs engine in
    let module Registry = Splitbft_obs.Registry in
    Registry.set_summary reg "openloop.latency_us" lat;
    let set name v = Registry.set (Registry.gauge reg name) v in
    set "openloop.offered_ops" offered;
    set "openloop.achieved_ops" achieved;
    set "openloop.arrivals" (float_of_int !arrivals_in_window);
    set "openloop.completed" (float_of_int !completed_in_window);
    set "openloop.wrong_results" (float_of_int !wrong);
    set "openloop.backlog_peak" (float_of_int !backlog_peak);
    set "openloop.live_identities_peak" (float_of_int (live_identities_peak g));
    set "openloop.identity_words_peak" (float_of_int !words_peak);
    { offered_ops = offered;
      achieved_ops = achieved;
      ol_mean_latency_us = Stats.mean lat;
      ol_p50_latency_us = Stats.median lat;
      ol_p95_latency_us = Stats.percentile lat 95.0;
      ol_p99_latency_us = Stats.percentile lat 99.0;
      arrivals = !arrivals_in_window;
      ol_completed = !completed_in_window;
      ol_completed_total = !completed_total;
      ol_wrong_results = !wrong;
      backlog_peak = !backlog_peak;
      live_identities_peak = live_identities_peak g;
      distinct_identities = distinct_identities g;
      identity_words_peak = !words_peak }
end
