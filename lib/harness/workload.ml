module Engine = Splitbft_sim.Engine
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs
module Stats = Splitbft_util.Stats

type spec = {
  clients : int;
  window : int;
  warmup_us : float;
  duration_us : float;
  payload_size : int;
  ready_quorum : int option;
}

let default_spec =
  { clients = 10;
    window = 1;
    warmup_us = 500_000.0;
    duration_us = 2_000_000.0;
    payload_size = 10;
    ready_quorum = None }

type result = {
  throughput_ops : float;
  mean_latency_us : float;
  p50_latency_us : float;
  p99_latency_us : float;
  completed : int;
  completed_total : int;
  wrong_results : int;
  clients_ready : int;
}

let canary = "S3CRET"

(* A [payload_size]-byte value carrying the canary prefix. *)
let value ~payload_size ~client ~i =
  let base = Printf.sprintf "%s%d:%d" canary client i in
  if String.length base >= payload_size then String.sub base 0 payload_size
  else base ^ String.make (payload_size - String.length base) 'x'

let op_for (cluster : Cluster.t) ~client ~i ~payload_size =
  match (Cluster.params cluster).Cluster.app with
  | Cluster.App_kvs ->
    (* PUT updating a bounded key set, as in the paper's evaluation. *)
    ( Kvs.encode_op (Kvs.Put (Printf.sprintf "key-%d-%d" client (i mod 64),
                              value ~payload_size ~client ~i)),
      `Expect Kvs.ok )
  | Cluster.App_ledger -> (value ~payload_size ~client ~i, `Any)
  | Cluster.App_counter -> (Splitbft_app.Counter_app.increment_op, `Any)

let run ?(at_warmup = fun () -> ()) cluster spec =
  let engine = Cluster.engine cluster in
  let clients =
    Cluster.make_clients cluster ~count:spec.clients ~window:spec.window
      ?ready_quorum:spec.ready_quorum ()
  in
  let t_warm = Engine.now engine +. spec.warmup_us in
  let t_end = t_warm +. spec.duration_us in
  let lat = Stats.create () in
  let completed_in_window = ref 0 in
  let completed_total = ref 0 in
  let wrong = ref 0 in
  let ready = ref 0 in
  List.iteri
    (fun ci client ->
      let i = ref 0 in
      let rec next () =
        incr i;
        let op, expect = op_for cluster ~client:ci ~i:!i ~payload_size:spec.payload_size in
        Client.submit client ~op ~on_result:(fun ~latency_us ~result ->
            incr completed_total;
            let now = Engine.now engine in
            (match expect with
            | `Expect e ->
              if not (String.equal result e) then incr wrong
            | `Any -> if String.equal result "CORRUPT" then incr wrong);
            if now >= t_warm && now < t_end then begin
              incr completed_in_window;
              Stats.add lat latency_us
            end;
            next ())
      in
      Client.start client ~on_ready:(fun () ->
          incr ready;
          for _ = 1 to spec.window do
            next ()
          done))
    clients;
  ignore (Engine.schedule engine ~delay:(t_warm -. Engine.now engine) ~label:"warmup-end"
            at_warmup);
  Engine.run ~until:t_end engine;
  List.iter Client.stop clients;
  let reg = Engine.obs engine in
  let module Registry = Splitbft_obs.Registry in
  Registry.set_summary reg "workload.latency_us" lat;
  let set name v = Registry.set (Registry.gauge reg name) v in
  let throughput = float_of_int !completed_in_window /. (spec.duration_us /. 1_000_000.0) in
  set "workload.throughput_ops" throughput;
  set "workload.completed" (float_of_int !completed_in_window);
  set "workload.completed_total" (float_of_int !completed_total);
  set "workload.wrong_results" (float_of_int !wrong);
  set "workload.clients_ready" (float_of_int !ready);
  { throughput_ops = throughput;
    mean_latency_us = Stats.mean lat;
    p50_latency_us = Stats.median lat;
    p99_latency_us = Stats.percentile lat 99.0;
    completed = !completed_in_window;
    completed_total = !completed_total;
    wrong_results = !wrong;
    clients_ready = !ready }
