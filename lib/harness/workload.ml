module Engine = Splitbft_sim.Engine
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs
module Stats = Splitbft_util.Stats
module Rng = Splitbft_util.Rng
module Zipf = Splitbft_util.Zipf
module Lru = Splitbft_util.Lru

type spec = {
  clients : int;
  window : int;
  warmup_us : float;
  duration_us : float;
  payload_size : int;
  ready_quorum : int option;
}

let default_spec =
  { clients = 10;
    window = 1;
    warmup_us = 500_000.0;
    duration_us = 2_000_000.0;
    payload_size = 10;
    ready_quorum = None }

type result = {
  throughput_ops : float;
  mean_latency_us : float;
  p50_latency_us : float;
  p99_latency_us : float;
  completed : int;
  completed_total : int;
  wrong_results : int;
  clients_ready : int;
}

let canary = "S3CRET"

(* A [payload_size]-byte value carrying the canary prefix. *)
let value ~payload_size ~client ~i =
  let base = Printf.sprintf "%s%d:%d" canary client i in
  if String.length base >= payload_size then String.sub base 0 payload_size
  else base ^ String.make (payload_size - String.length base) 'x'

let op_for (cluster : Cluster.t) ~client ~i ~payload_size =
  match (Cluster.params cluster).Cluster.app with
  | Cluster.App_kvs ->
    (* PUT updating a bounded key set, as in the paper's evaluation. *)
    ( Kvs.encode_op (Kvs.Put (Printf.sprintf "key-%d-%d" client (i mod 64),
                              value ~payload_size ~client ~i)),
      `Expect Kvs.ok )
  | Cluster.App_ledger -> (value ~payload_size ~client ~i, `Any)
  | Cluster.App_counter -> (Splitbft_app.Counter_app.increment_op, `Any)

let run ?(at_warmup = fun () -> ()) cluster spec =
  let engine = Cluster.engine cluster in
  let clients =
    Cluster.make_clients cluster ~count:spec.clients ~window:spec.window
      ?ready_quorum:spec.ready_quorum ()
  in
  let t_warm = Engine.now engine +. spec.warmup_us in
  let t_end = t_warm +. spec.duration_us in
  let lat = Stats.create () in
  let completed_in_window = ref 0 in
  let completed_total = ref 0 in
  let wrong = ref 0 in
  let ready = ref 0 in
  List.iteri
    (fun ci client ->
      let i = ref 0 in
      let rec next () =
        incr i;
        let op, expect = op_for cluster ~client:ci ~i:!i ~payload_size:spec.payload_size in
        Client.submit client ~op ~on_result:(fun ~latency_us ~result ->
            incr completed_total;
            let now = Engine.now engine in
            (match expect with
            | `Expect e ->
              if not (String.equal result e) then incr wrong
            | `Any -> if String.equal result "CORRUPT" then incr wrong);
            if now >= t_warm && now < t_end then begin
              incr completed_in_window;
              Stats.add lat latency_us
            end;
            next ())
      in
      Client.start client ~on_ready:(fun () ->
          incr ready;
          for _ = 1 to spec.window do
            next ()
          done))
    clients;
  ignore (Engine.schedule engine ~delay:(t_warm -. Engine.now engine) ~label:"warmup-end"
            at_warmup);
  Engine.run ~until:t_end engine;
  List.iter Client.stop clients;
  let reg = Engine.obs engine in
  let module Registry = Splitbft_obs.Registry in
  Registry.set_summary reg "workload.latency_us" lat;
  let set name v = Registry.set (Registry.gauge reg name) v in
  let throughput = float_of_int !completed_in_window /. (spec.duration_us /. 1_000_000.0) in
  set "workload.throughput_ops" throughput;
  set "workload.completed" (float_of_int !completed_in_window);
  set "workload.completed_total" (float_of_int !completed_total);
  set "workload.wrong_results" (float_of_int !wrong);
  set "workload.clients_ready" (float_of_int !ready);
  { throughput_ops = throughput;
    mean_latency_us = Stats.mean lat;
    p50_latency_us = Stats.median lat;
    p99_latency_us = Stats.percentile lat 99.0;
    completed = !completed_in_window;
    completed_total = !completed_total;
    wrong_results = !wrong;
    clients_ready = !ready }

(* ===== open-loop traffic generation =====

   Closed-loop clients resubmit on completion, so offered load tracks
   service capacity and latency never shows queueing.  The open-loop
   generator schedules arrivals from a time-varying arrival process
   regardless of completions: each arrival is stamped, multiplexed onto a
   bounded pool of real (attested) client connections, and its latency is
   measured from ARRIVAL to reply — client-side queueing included — which
   is what makes the saturation knee visible as a latency explosion.

   Simulated identities model millions of distinct end users behind the
   connection pool (the gateway deployment: many users, few attested
   sessions).  Per-identity state is keyed RNG + an op counter, held in a
   bounded LRU so memory never grows with the identity space; an evicted
   identity that returns is re-derived from [Rng.of_key] and continues a
   statistically identical stream. *)

module Open_loop = struct
  type arrival =
    | Poisson
    | Bursty of { peak_factor : float; period_us : float; duty : float }

  type spec = {
    arrival : arrival;
    rate_ops : float;
    warmup_us : float;
    duration_us : float;
    connections : int;
    window : int;
    identities : int;
    identity_cache : int;
    zipf_s : float;
    keyspace : int;
    read_ratio : float;
    payload_size : int;
    ready_quorum : int option;
  }

  let default_spec =
    { arrival = Poisson;
      rate_ops = 2_000.0;
      warmup_us = 500_000.0;
      duration_us = 2_000_000.0;
      connections = 16;
      window = 16;
      identities = 100_000;
      identity_cache = 4_096;
      zipf_s = 0.99;
      keyspace = 4_096;
      read_ratio = 0.5;
      payload_size = 10;
      ready_quorum = None }

  type result = {
    offered_ops : float;
    achieved_ops : float;
    ol_mean_latency_us : float;
    ol_p50_latency_us : float;
    ol_p95_latency_us : float;
    ol_p99_latency_us : float;
    arrivals : int;
    ol_completed : int;
    ol_completed_total : int;
    ol_wrong_results : int;
    backlog_peak : int;
    live_identities_peak : int;
    distinct_identities : int;
    identity_words_peak : int;
  }

  (* ----- pure generator (drivable without a cluster, for tests) ----- *)

  type identity_state = { id_rng : Rng.t; mutable id_ops : int }

  type gen = {
    g_spec : spec;
    g_seed : int64;
    g_app : Cluster.app_kind;
    arrivals_rng : Rng.t;  (* arrival process + identity selection *)
    zipf : Zipf.t;
    idents : identity_state Lru.t;
    mutable live_identities_peak : int;
  }

  let gen ?(app = Cluster.App_kvs) ~seed spec =
    if spec.identities <= 0 then invalid_arg "Open_loop.gen: identities";
    if spec.rate_ops <= 0.0 then invalid_arg "Open_loop.gen: rate_ops";
    (match spec.arrival with
    | Poisson -> ()
    | Bursty { peak_factor; period_us; duty } ->
      if duty <= 0.0 || duty >= 1.0 || period_us <= 0.0 || peak_factor *. duty >= 1.0
      then invalid_arg "Open_loop.gen: bursty shape");
    { g_spec = spec;
      g_seed = seed;
      g_app = app;
      arrivals_rng = Rng.of_key seed ~domain:"openloop-arrivals" ~stream:0L;
      zipf = Zipf.create ~s:spec.zipf_s ~n:spec.keyspace ();
      idents = Lru.create ~capacity:(max 1 spec.identity_cache);
      live_identities_peak = 0 }

  (* Offered rate at virtual time [t].  The bursty process is a square wave
     with the requested mean: [peak_factor * rate] for the [duty] fraction
     of each period, and the complementary low rate otherwise — a
     compressed diurnal cycle. *)
  let rate_at spec t =
    match spec.arrival with
    | Poisson -> spec.rate_ops
    | Bursty { peak_factor; period_us; duty } ->
      let phase = Float.rem t period_us /. period_us in
      if phase < duty then spec.rate_ops *. peak_factor
      else spec.rate_ops *. (1.0 -. (peak_factor *. duty)) /. (1.0 -. duty)

  let interarrival g ~now =
    Rng.exponential g.arrivals_rng ~mean:(1e6 /. rate_at g.g_spec now)

  let identity_state g identity =
    let key = string_of_int identity in
    match Lru.find g.idents key with
    | Some st -> st
    | None ->
      (* Keyed derivation: the identity's op stream depends only on
         (seed, identity) — independent of the connection count and of
         every other identity.  An evicted identity that returns restarts
         that same deterministic stream from the beginning (fresh-session
         semantics): bounded memory, no eviction-history dependence. *)
      let st =
        { id_rng = Rng.of_key g.g_seed ~domain:"identity" ~stream:(Int64.of_int identity);
          id_ops = 0 }
      in
      Lru.add g.idents key st;
      if Lru.length g.idents > g.live_identities_peak then
        g.live_identities_peak <- Lru.length g.idents;
      st

  (* One arrival: (identity, encoded op, expected result). *)
  let next g =
    let spec = g.g_spec in
    let identity = Rng.int g.arrivals_rng spec.identities in
    let st = identity_state g identity in
    st.id_ops <- st.id_ops + 1;
    let op, expect =
      match g.g_app with
      | Cluster.App_kvs ->
        let key = Printf.sprintf "key-%d" (Zipf.sample g.zipf st.id_rng) in
        if Rng.float st.id_rng 1.0 < spec.read_ratio then
          (Kvs.encode_op (Kvs.Get key), `Any)
        else
          ( Kvs.encode_op
              (Kvs.Put (key, value ~payload_size:spec.payload_size ~client:identity ~i:st.id_ops)),
            `Expect Kvs.ok )
      | Cluster.App_ledger ->
        (value ~payload_size:spec.payload_size ~client:identity ~i:st.id_ops, `Any)
      | Cluster.App_counter -> (Splitbft_app.Counter_app.increment_op, `Any)
    in
    (identity, op, expect)

  let live_identities g = Lru.length g.idents
  let live_identities_peak g = g.live_identities_peak
  let distinct_identities g = Lru.misses g.idents

  let identity_words g = Obj.reachable_words (Obj.repr g.idents)

  (* Digest over the first [n] arrivals of the generator's virtual trace
     (inter-arrival gap, identity, op bytes) — the regression pin for
     reproducible workload generation. *)
  let fingerprint ~seed ?app spec ~n =
    let g = gen ?app ~seed spec in
    let buf = Buffer.create (n * 32) in
    let clock = ref 0.0 in
    for _ = 1 to n do
      let dt = interarrival g ~now:!clock in
      clock := !clock +. dt;
      let identity, op, _ = next g in
      Buffer.add_string buf (Printf.sprintf "%.6f:%d:%s;" dt identity op)
    done;
    Digest.to_hex (Digest.string (Buffer.contents buf))

  (* ----- driving a cluster ----- *)

  let run ?(at_warmup = fun () -> ()) cluster spec =
    let engine = Cluster.engine cluster in
    let g =
      gen ~app:(Cluster.params cluster).Cluster.app
        ~seed:(Engine.seed engine) spec
    in
    let clients =
      Array.of_list
        (Cluster.make_clients cluster ~count:spec.connections ~window:spec.window
           ?ready_quorum:spec.ready_quorum ())
    in
    let t_warm = Engine.now engine +. spec.warmup_us in
    let t_end = t_warm +. spec.duration_us in
    let lat = Stats.create () in
    let arrivals_in_window = ref 0 in
    let completed_in_window = ref 0 in
    let completed_total = ref 0 in
    let submitted = ref 0 in
    let wrong = ref 0 in
    let backlog_peak = ref 0 in
    let words_peak = ref 0 in
    let sample_words () =
      let w = identity_words g in
      if w > !words_peak then words_peak := w
    in
    let arrive () =
      let arrived_at = Engine.now engine in
      let identity, op, expect = next g in
      if arrived_at >= t_warm && arrived_at < t_end then incr arrivals_in_window;
      incr submitted;
      if !submitted mod 4096 = 0 then sample_words ();
      let backlog = !submitted - !completed_total in
      if backlog > !backlog_peak then backlog_peak := backlog;
      let conn = clients.(identity mod spec.connections) in
      (* Latency from ARRIVAL, not from dispatch: when every connection
         window is full the op waits in the client queue, and that wait is
         the open-loop signal. *)
      Client.submit conn ~op ~on_result:(fun ~latency_us:_ ~result ->
          incr completed_total;
          let now = Engine.now engine in
          (match expect with
          | `Expect e -> if not (String.equal result e) then incr wrong
          | `Any -> if String.equal result "CORRUPT" then incr wrong);
          if now >= t_warm && now < t_end then begin
            incr completed_in_window;
            Stats.add lat (now -. arrived_at)
          end)
    in
    (* Arrivals start once the connection pool is ready (the attestation
       handshake completes well inside the warmup) and stop at the end of
       the measurement window. *)
    let ready = ref 0 in
    let rec schedule_next () =
      let now = Engine.now engine in
      let dt = interarrival g ~now in
      if now +. dt < t_end then
        ignore
          (Engine.schedule engine ~delay:dt ~label:"openloop:arrival" (fun () ->
               arrive ();
               schedule_next ()))
    in
    Array.iter
      (fun c ->
        Client.start c ~on_ready:(fun () ->
            incr ready;
            if !ready = spec.connections then schedule_next ()))
      clients;
    ignore
      (Engine.schedule engine ~delay:(t_warm -. Engine.now engine)
         ~label:"openloop:warmup-end" at_warmup);
    Engine.run ~until:t_end engine;
    Array.iter Client.stop clients;
    sample_words ();
    let offered = float_of_int !arrivals_in_window /. (spec.duration_us /. 1e6) in
    let achieved = float_of_int !completed_in_window /. (spec.duration_us /. 1e6) in
    let reg = Engine.obs engine in
    let module Registry = Splitbft_obs.Registry in
    Registry.set_summary reg "openloop.latency_us" lat;
    let set name v = Registry.set (Registry.gauge reg name) v in
    set "openloop.offered_ops" offered;
    set "openloop.achieved_ops" achieved;
    set "openloop.arrivals" (float_of_int !arrivals_in_window);
    set "openloop.completed" (float_of_int !completed_in_window);
    set "openloop.wrong_results" (float_of_int !wrong);
    set "openloop.backlog_peak" (float_of_int !backlog_peak);
    set "openloop.live_identities_peak" (float_of_int (live_identities_peak g));
    set "openloop.identity_words_peak" (float_of_int !words_peak);
    { offered_ops = offered;
      achieved_ops = achieved;
      ol_mean_latency_us = Stats.mean lat;
      ol_p50_latency_us = Stats.median lat;
      ol_p95_latency_us = Stats.percentile lat 95.0;
      ol_p99_latency_us = Stats.percentile lat 99.0;
      arrivals = !arrivals_in_window;
      ol_completed = !completed_in_window;
      ol_completed_total = !completed_total;
      ol_wrong_results = !wrong;
      backlog_peak = !backlog_peak;
      live_identities_peak = live_identities_peak g;
      distinct_identities = distinct_identities g;
      identity_words_peak = !words_peak }
end
