(** Closed-loop workload driver implementing the paper's measurement
    methodology (§6): clients constantly issue synchronous requests
    ([window] = 1; or 40 outstanding in the batched experiments), latency
    is the time to collect the reply quorum, and throughput/latency are
    computed over a measurement window after warm-up.

    Operations embed a canary marker ({!canary}); the confidentiality
    checker scans untrusted-world bytes for it. *)

type spec = {
  clients : int;
  window : int;
  warmup_us : float;
  duration_us : float;
  payload_size : int;  (** operation value size; the paper uses 10 bytes *)
  ready_quorum : int option;  (** SplitBFT session acks required *)
}

val default_spec : spec
(** 10 clients, window 1, 0.5 s warm-up, 2 s measurement, 10-byte values. *)

type result = {
  throughput_ops : float;  (** operations per second of simulated time *)
  mean_latency_us : float;
  p50_latency_us : float;
  p99_latency_us : float;
  completed : int;  (** inside the measurement window *)
  completed_total : int;
  wrong_results : int;  (** replies that did not match the expected result *)
  clients_ready : int;
}

val canary : string
(** Marker embedded in every generated operation payload. *)

val run : ?at_warmup:(unit -> unit) -> Cluster.t -> spec -> result
(** Deploys clients on the cluster, runs the simulation for
    [warmup + duration], and reports measurement-window statistics.
    [at_warmup] fires at the start of the measurement window (used to
    reset enclave ecall statistics for Figure 4). *)

(** Read-heavy mix against follower replicas: closed-loop drivers issue a
    Zipfian read/write mix where writes take the quorum path and reads go
    to the cluster's follower replicas — or through consensus when there
    are none, the 0-follower baseline the read-scaling ratio is measured
    against. *)
module Reads : sig
  type spec = {
    clients : int;  (** concurrent drivers, each with one outstanding op *)
    warmup_us : float;
    duration_us : float;
    read_ratio : float;  (** fraction of reads in the mix (0.95 here) *)
    zipf_s : float;
    keyspace : int;
    payload_size : int;
    read_retry_us : float;  (** re-send a lost follower read after this *)
    ready_quorum : int option;
  }

  val default_spec : spec
  (** 8 drivers, 95/5 mix, Zipf 0.99 over 256 keys, 0.3 s warm-up,
      1 s measurement. *)

  type result = {
    read_ops : float;  (** served reads per second inside the window *)
    write_ops : float;
    reads_ok : int;
    writes_ok : int;
    stale_reads : int;  (** reads refused for exceeding the lag bound *)
    refused_reads : int;  (** reads refused as malformed/non-read-only *)
    wrong_reads : int;
    rd_mean_latency_us : float;
    rd_p99_latency_us : float;
  }

  val read_client_base : int
  (** Client-id offset of the read drivers (their reply addresses),
      disjoint from the consensus clients. *)

  val run : ?at_warmup:(unit -> unit) -> Cluster.t -> spec -> result
end

(** Open-loop traffic generation: arrivals are scheduled by a time-varying
    arrival process independent of completions, latency is measured from
    arrival (client-side queueing included), and millions of simulated
    end-user identities multiplex over a bounded pool of real attested
    connections with strictly bounded generator memory. *)
module Open_loop : sig
  type arrival =
    | Poisson  (** memoryless arrivals at [rate_ops] *)
    | Bursty of { peak_factor : float; period_us : float; duty : float }
        (** square-wave (compressed diurnal) modulation: [peak_factor *
            rate_ops] for the [duty] fraction of each period, the
            mean-preserving low rate otherwise; requires
            [peak_factor * duty < 1] *)

  type spec = {
    arrival : arrival;
    rate_ops : float;  (** mean offered load, ops per simulated second *)
    warmup_us : float;
    duration_us : float;
    connections : int;  (** real client sessions the identities multiplex over *)
    window : int;  (** per-connection outstanding-request window *)
    identities : int;  (** simulated end-user identity space *)
    identity_cache : int;  (** LRU bound on live per-identity state *)
    zipf_s : float;  (** key-popularity skew exponent (0 = uniform) *)
    keyspace : int;  (** distinct keys for the KVS app *)
    read_ratio : float;  (** fraction of GETs in the KVS mix *)
    payload_size : int;
    ready_quorum : int option;  (** SplitBFT session acks required *)
  }

  val default_spec : spec
  (** Poisson at 2k ops/s, 16 connections x window 16, 100k identities
      over a 4096-entry cache, Zipf 0.99 over 4096 keys, 50/50 mix. *)

  type result = {
    offered_ops : float;  (** arrivals per second inside the window *)
    achieved_ops : float;  (** completions per second inside the window *)
    ol_mean_latency_us : float;
    ol_p50_latency_us : float;
    ol_p95_latency_us : float;
    ol_p99_latency_us : float;
    arrivals : int;
    ol_completed : int;
    ol_completed_total : int;
    ol_wrong_results : int;
    backlog_peak : int;  (** peak of submitted-but-not-completed ops *)
    live_identities_peak : int;  (** peak live entries in the identity LRU *)
    distinct_identities : int;  (** identities instantiated at least once *)
    identity_words_peak : int;  (** peak reachable words of the identity table *)
  }

  (** {2 Pure generator} — drivable without a cluster, for reproducibility
      and memory-bound tests. *)

  type gen

  val gen : ?app:Cluster.app_kind -> seed:int64 -> spec -> gen
  (** The generator's trace is a pure function of [(seed, app, spec)];
      identity op streams are keyed on [(seed, identity)], so they are
      independent of the connection count and of each other. *)

  val interarrival : gen -> now:float -> float
  (** Next inter-arrival gap (µs) for an arrival process at time [now]. *)

  val next : gen -> int * string * [ `Any | `Expect of string ]
  (** Next arrival: (identity, encoded op, expected result). *)

  val live_identities : gen -> int
  val live_identities_peak : gen -> int
  val distinct_identities : gen -> int

  val identity_words : gen -> int
  (** Heap words reachable from the identity table ([Obj.reachable_words]) —
      the bound the memory test asserts. *)

  val fingerprint : seed:int64 -> ?app:Cluster.app_kind -> spec -> n:int -> string
  (** Hex digest of the first [n] arrivals (gap, identity, op bytes) of a
      fresh generator — pinned by the regression test. *)

  val run : ?at_warmup:(unit -> unit) -> Cluster.t -> spec -> result
  (** Deploys the connection pool, schedules arrivals from all-ready until
      the end of the measurement window, and reports offered vs achieved
      rate and arrival-to-reply latency percentiles over the window. *)
end
