module Ids = Splitbft_types.Ids
module Preparation = Splitbft_core.Preparation
module Confirmation = Splitbft_core.Confirmation
module Execution = Splitbft_core.Execution
module Broker = Splitbft_core.Broker

type site = Site_preparation | Site_confirmation | Site_execution | Site_broker

type policy =
  | Equivocate
  | Corrupt_digest
  | Promiscuous_commit
  | Stale_proof
  | Drop_outputs of int
  | Duplicate_outputs
  | Reorder_outputs
  | Corrupt_result
  | Leak_plaintext
  | Lie_checkpoint

type t = { replica : int; policy : policy }

let site_of_policy = function
  | Equivocate | Corrupt_digest -> Site_preparation
  | Promiscuous_commit | Stale_proof -> Site_confirmation
  | Corrupt_result | Leak_plaintext | Lie_checkpoint -> Site_execution
  | Drop_outputs _ | Duplicate_outputs | Reorder_outputs -> Site_broker

let site_name = function
  | Site_preparation -> "preparation"
  | Site_confirmation -> "confirmation"
  | Site_execution -> "execution"
  | Site_broker -> "broker"

let policy_name = function
  | Equivocate -> "equivocate"
  | Corrupt_digest -> "corrupt-digest"
  | Promiscuous_commit -> "promiscuous-commit"
  | Stale_proof -> "stale-proof"
  | Drop_outputs k -> Printf.sprintf "drop-outputs:%d" k
  | Duplicate_outputs -> "duplicate-outputs"
  | Reorder_outputs -> "reorder-outputs"
  | Corrupt_result -> "corrupt-result"
  | Leak_plaintext -> "leak-plaintext"
  | Lie_checkpoint -> "lie-checkpoint"

let to_string a = Printf.sprintf "%s@%d" (policy_name a.policy) a.replica

let policy_of_string s =
  match s with
  | "equivocate" -> Ok Equivocate
  | "corrupt-digest" -> Ok Corrupt_digest
  | "promiscuous-commit" -> Ok Promiscuous_commit
  | "stale-proof" -> Ok Stale_proof
  | "duplicate-outputs" -> Ok Duplicate_outputs
  | "reorder-outputs" -> Ok Reorder_outputs
  | "corrupt-result" -> Ok Corrupt_result
  | "leak-plaintext" -> Ok Leak_plaintext
  | "lie-checkpoint" -> Ok Lie_checkpoint
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "drop-outputs" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some k when k > 0 -> Ok (Drop_outputs k)
      | _ -> Error (Printf.sprintf "bad drop-outputs count in %S" s))
    | _ -> Error (Printf.sprintf "unknown adversary policy %S" s))

let of_string s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "adversary %S: expected <policy>@<replica>" s)
  | Some i -> (
    let p = String.sub s 0 i and r = String.sub s (i + 1) (String.length s - i - 1) in
    match (policy_of_string p, int_of_string_opt r) with
    | Ok policy, Some replica when replica >= 0 -> Ok { replica; policy }
    | Error e, _ -> Error e
    | _, _ -> Error (Printf.sprintf "adversary %S: bad replica id" s))

let validate ~n advs =
  let rec go = function
    | [] -> Ok ()
    | a :: rest ->
      if a.replica < 0 || a.replica >= n then
        Error (Printf.sprintf "adversary %s: replica out of range (n=%d)" (to_string a) n)
      else if
        List.exists
          (fun b -> b.replica = a.replica && site_of_policy b.policy = site_of_policy a.policy)
          rest
      then
        Error
          (Printf.sprintf "two adversary policies at the same site (%s@%d)"
             (site_name (site_of_policy a.policy))
             a.replica)
      else go rest
  in
  go advs

let sites advs =
  List.sort_uniq compare (List.map (fun a -> site_of_policy a.policy) advs)

let byz_for advs id =
  List.fold_left
    (fun (prep, conf, exec) a ->
      if a.replica <> id then (prep, conf, exec)
      else
        match a.policy with
        | Equivocate -> (Preparation.Prep_equivocate, conf, exec)
        | Corrupt_digest -> (Preparation.Prep_corrupt_digest, conf, exec)
        | Promiscuous_commit -> (prep, Confirmation.Conf_promiscuous, exec)
        | Stale_proof -> (prep, Confirmation.Conf_stale_proof, exec)
        | Corrupt_result -> (prep, conf, Execution.Exec_corrupt)
        | Leak_plaintext -> (prep, conf, Execution.Exec_leak)
        | Lie_checkpoint -> (prep, conf, Execution.Exec_lie_checkpoint)
        | Drop_outputs _ | Duplicate_outputs | Reorder_outputs -> (prep, conf, exec))
    (Preparation.Prep_honest, Confirmation.Conf_honest, Execution.Exec_honest)
    advs

let env_fault_for advs id =
  List.find_map
    (fun a ->
      if a.replica <> id then None
      else
        match a.policy with
        | Drop_outputs k -> Some (Broker.Env_drop_nth k)
        | Duplicate_outputs -> Some Broker.Env_duplicate
        | Reorder_outputs -> Some Broker.Env_reorder
        | _ -> None)
    advs

let describe advs =
  match advs with
  | [] -> "no adversary"
  | _ -> String.concat "," (List.map to_string advs)
