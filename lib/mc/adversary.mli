(** Byzantine fault-injection vocabulary at the compartment boundary.

    Each adversary compromises exactly one site — the Preparation,
    Confirmation or Execution enclave, or the untrusted broker — of one
    replica, with a concrete misbehaviour policy.  The enclave policies
    deploy the adversarial compartment programs of [Splitbft_core] (the
    adversary keeps that enclave's own keys but cannot forge others');
    the broker policies mangle the channel that carries ecall outputs.

    SplitBFT's containment claim is that any {e single} site below, on
    any single replica, cannot violate agreement, reply integrity or
    (except a compromised Execution, which holds plaintext)
    confidentiality — which is exactly what {!Driver} checks
    exhaustively on small configurations. *)

type site = Site_preparation | Site_confirmation | Site_execution | Site_broker

type policy =
  | Equivocate  (** Preparation: conflicting proposals at one seqno *)
  | Corrupt_digest  (** Preparation: sign a digest matching no real batch *)
  | Promiscuous_commit  (** Confirmation: commit without a prepare certificate *)
  | Stale_proof  (** Confirmation: ViewChanges replay the initial (stale) state *)
  | Drop_outputs of int  (** broker: drop every k-th enclave output *)
  | Duplicate_outputs  (** broker: dispatch every enclave output twice *)
  | Reorder_outputs  (** broker: reverse each ecall completion's output burst *)
  | Corrupt_result  (** Execution: return wrong, correctly-authenticated results *)
  | Leak_plaintext  (** Execution: exfiltrate decrypted operations to storage *)
  | Lie_checkpoint  (** Execution: checkpoints over a fabricated state digest *)

type t = { replica : int; policy : policy }

val site_of_policy : policy -> site
val site_name : site -> string
val policy_name : policy -> string

val to_string : t -> string
(** ["<policy>@<replica>"], e.g. ["equivocate@0"]; inverse of {!of_string}. *)

val of_string : string -> (t, string) result

val validate : n:int -> t list -> (unit, string) result
(** Replica ids in range and at most one policy per (replica, site). *)

val sites : t list -> site list
(** Distinct compromised sites, for single-compartment accounting. *)

val byz_for :
  t list ->
  int ->
  Splitbft_core.Preparation.byz * Splitbft_core.Confirmation.byz * Splitbft_core.Execution.byz
(** Compartment programs to deploy at replica [id]. *)

val env_fault_for : t list -> int -> Splitbft_core.Broker.fault option
(** Broker fault to install at replica [id] (after setup), if any. *)

val describe : t list -> string
