(* Randomized fault-schedule runners, shared between the QCheck chaos
   property (test/test_chaos.ml) and `splitbft_cli replay` so a failing
   chaos plan dumped as an artifact reproduces outside the test binary.

   The SplitBFT runner checks the same invariant set as the model
   checker's [World.check] — agreement over honest Executions' logs,
   ledger prefix-contiguity, reply integrity, confidentiality canary on
   the wire and in untrusted storage — which is the mc-vs-chaos
   cross-check: anything the DFS proves on the small scope, the
   randomized sweep re-tests under crashes, drops and real timers. *)

module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Ids = Splitbft_types.Ids
module S = Splitbft_core.Replica
module Sconfig = Splitbft_core.Config
module P = Splitbft_pbft.Replica
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs
module Safety = Splitbft_harness.Safety
module Workload = Splitbft_harness.Workload

type plan = {
  seed : int64;
  crash_host : int option;  (* at most f = 1 *)
  crash_delay_us : float;
  restart : bool;  (* bring the crashed host back up (crash-recovery path) *)
  byz_enclave : (int * Ids.compartment) option;
  drop_prob : float;
}

let describe_plan p =
  Printf.sprintf "seed=%Ld crash=%s%s@%.0fus byz=%s drop=%.3f" p.seed
    (match p.crash_host with Some i -> string_of_int i | None -> "-")
    (if p.restart then "+restart" else "")
    p.crash_delay_us
    (match p.byz_enclave with
    | Some (i, c) -> Printf.sprintf "%d:%s" i (Ids.compartment_name c)
    | None -> "-")
    p.drop_prob

let requests = 12
let n = 4

let violation_of ~wrong ~wire_leaks ~storage_leaks ~logs =
  match Safety.agreement_of_logs logs with
  | (Safety.Conflict _ | Safety.Prefix_lag _) as bad -> Some (Safety.describe_agreement bad)
  | Safety.Agreement -> (
    let gap =
      List.find_map
        (fun (i, log) ->
          Option.map
            (fun seq -> Printf.sprintf "replica %d executed log has a gap at seq %Ld" i seq)
            (Safety.prefix_gap log))
        logs
    in
    match gap with
    | Some _ as g -> g
    | None ->
      if wrong > 0 then Some (Printf.sprintf "%d wrong client results accepted" wrong)
      else if wire_leaks > 0 then
        Some (Printf.sprintf "%d canary-leaking wire payloads" wire_leaks)
      else if storage_leaks > 0 then
        Some (Printf.sprintf "%d canary-leaking storage blobs" storage_leaks)
      else None)

(* Returns the first violated invariant, or [None] if the run was safe.
   Liveness is NOT asserted (drops and crashes may legitimately stall). *)
let run_splitbft (p : plan) =
  let engine = Engine.create ~seed:p.seed () in
  let net =
    Network.create engine
      { Network.default_config with Network.drop_probability = p.drop_prob }
  in
  let byz_of i =
    match p.byz_enclave with
    | Some (j, Ids.Preparation) when i = j ->
      (Splitbft_core.Preparation.Prep_equivocate, Splitbft_core.Confirmation.Conf_honest,
       Splitbft_core.Execution.Exec_honest)
    | Some (j, Ids.Confirmation) when i = j ->
      (Splitbft_core.Preparation.Prep_honest, Splitbft_core.Confirmation.Conf_promiscuous,
       Splitbft_core.Execution.Exec_honest)
    | Some (j, Ids.Execution) when i = j ->
      (Splitbft_core.Preparation.Prep_honest, Splitbft_core.Confirmation.Conf_honest,
       Splitbft_core.Execution.Exec_corrupt)
    | _ ->
      (Splitbft_core.Preparation.Prep_honest, Splitbft_core.Confirmation.Conf_honest,
       Splitbft_core.Execution.Exec_honest)
  in
  let replicas =
    List.init n (fun id ->
        let prep_byz, conf_byz, exec_byz = byz_of id in
        S.create ~prep_byz ~conf_byz ~exec_byz engine net
          { (Sconfig.default ~n ~id) with
            Sconfig.suspect_timeout_us = 150_000.0;
            viewchange_timeout_us = 300_000.0 }
          ~app:(fun () -> Kvs.create ()))
  in
  let wire_leaks = ref 0 in
  Network.set_tap net
    (Some
       (fun ~src:_ ~dst:_ payload ->
         if Safety.contains_canary payload then incr wire_leaks));
  (match p.crash_host with
  | Some i when Some (i, Ids.Preparation) <> p.byz_enclave ->
    (* Keep the total fault load at one host + one enclave elsewhere. *)
    ignore
      (Engine.schedule engine ~delay:p.crash_delay_us ~label:"chaos-crash" (fun () ->
           S.crash_host (List.nth replicas i)));
    if p.restart then
      (* Crash-recovery: unseal, verify the counter binding, state-transfer
         back in.  Safety must hold whether or not recovery completes. *)
      ignore
        (Engine.schedule engine
           ~delay:(p.crash_delay_us +. 500_000.0)
           ~label:"chaos-restart"
           (fun () -> S.restart_host (List.nth replicas i)))
  | _ -> ());
  let wrong = ref 0 in
  let cl =
    Client.create engine net
      { (Client.default_config (Client.Splitbft { ready_quorum = 3 }) ~n ~id:0) with
        Client.retry_timeout_us = 200_000.0 }
  in
  Client.start cl ~on_ready:(fun () ->
      for i = 1 to requests do
        Client.submit cl
          ~op:(Kvs.encode_op (Kvs.Put (Printf.sprintf "k%d" i, Workload.canary ^ "v")))
          ~on_result:(fun ~latency_us:_ ~result ->
            if not (String.equal result Kvs.ok) then incr wrong)
      done);
  Engine.run ~until:1_600_000.0 engine;
  (* Honest = all replicas whose Execution enclave is honest. *)
  let honest =
    List.filteri
      (fun i _ ->
        match p.byz_enclave with
        | Some (j, Ids.Execution) -> i <> j
        | _ -> true)
      (List.mapi (fun i r -> (i, r)) replicas)
  in
  let logs =
    List.map
      (fun (i, r) -> (i, List.map (fun (seq, d) -> (Int64.of_int seq, d)) (S.executed_log r)))
      honest
  in
  let storage_leaks =
    List.fold_left (fun acc r -> acc + Safety.blob_leaks (S.persisted r)) 0 replicas
  in
  violation_of ~wrong:!wrong ~wire_leaks:!wire_leaks ~storage_leaks ~logs

let run_pbft (p : plan) =
  let engine = Engine.create ~seed:p.seed () in
  let net =
    Network.create engine
      { Network.default_config with Network.drop_probability = p.drop_prob }
  in
  let replicas =
    List.init n (fun id ->
        P.create engine net
          { (P.default_config ~n ~id) with
            P.suspect_timeout_us = 150_000.0;
            viewchange_timeout_us = 300_000.0 }
          ~app:(Kvs.create ()))
  in
  (match p.crash_host with
  | Some i ->
    ignore
      (Engine.schedule engine ~delay:p.crash_delay_us ~label:"chaos-crash" (fun () ->
           P.crash (List.nth replicas i)));
    if p.restart then
      ignore
        (Engine.schedule engine
           ~delay:(p.crash_delay_us +. 500_000.0)
           ~label:"chaos-restart"
           (fun () -> P.restart (List.nth replicas i)))
  | None -> ());
  (* One byzantine replica (<= f), never the crashed one. *)
  let byz_id =
    match (p.byz_enclave, p.crash_host) with
    | Some (j, _), Some c when j = c -> None
    | Some (j, _), _ -> Some j
    | None, _ -> None
  in
  (match byz_id with
  | Some j -> P.set_byzantine (List.nth replicas j) P.Corrupt_execution
  | None -> ());
  let wrong = ref 0 in
  let cl =
    Client.create engine net
      { (Client.default_config Client.Pbft ~n ~id:0) with
        Client.retry_timeout_us = 200_000.0 }
  in
  Client.start cl ~on_ready:(fun () ->
      for i = 1 to requests do
        (* Plaintext protocol: the canary WOULD legitimately appear on the
           wire, so the pbft leg checks agreement and reply integrity only. *)
        Client.submit cl
          ~op:(Kvs.encode_op (Kvs.Put (Printf.sprintf "k%d" i, "v")))
          ~on_result:(fun ~latency_us:_ ~result ->
            if not (String.equal result Kvs.ok) then incr wrong)
      done);
  Engine.run ~until:1_600_000.0 engine;
  let honest =
    List.filteri
      (fun i _ -> Some i <> byz_id && (p.restart || Some i <> p.crash_host))
      (List.mapi (fun i r -> (i, r)) replicas)
  in
  let logs =
    List.map
      (fun (i, r) -> (i, List.map (fun (seq, d) -> (Int64.of_int seq, d)) (P.executed_log r)))
      honest
  in
  violation_of ~wrong:!wrong ~wire_leaks:0 ~storage_leaks:0 ~logs

let run ~protocol p =
  match protocol with
  | "splitbft" -> Ok (run_splitbft p)
  | "pbft" -> Ok (run_pbft p)
  | other -> Error (Printf.sprintf "unknown chaos protocol %S" other)
