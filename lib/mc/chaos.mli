(** Randomized fault-schedule runners, shared between the QCheck chaos
    property and [splitbft_cli replay].

    The SplitBFT leg checks the same invariants as {!World.check} —
    agreement across honest Executions, ledger prefix-contiguity, reply
    integrity, the confidentiality canary on wire and in untrusted
    storage — so the model checker's exhaustive small-scope verdicts and
    the randomized large-scope sweep cross-check each other.  The PBFT
    baseline leg checks agreement and reply integrity only (a plaintext
    protocol legitimately shows the canary on the wire). *)

type plan = {
  seed : int64;
  crash_host : int option;  (** at most f = 1 *)
  crash_delay_us : float;
  restart : bool;  (** bring the crashed host back (crash-recovery path) *)
  byz_enclave : (int * Splitbft_types.Ids.compartment) option;
  drop_prob : float;
}

val describe_plan : plan -> string

val run_splitbft : plan -> string option
(** First violated invariant, or [None] if safe.  Liveness is NOT
    asserted — drops and crashes may legitimately stall progress. *)

val run_pbft : plan -> string option

val run : protocol:string -> plan -> (string option, string) result
(** Dispatch by artifact protocol name ("splitbft" / "pbft"). *)
