(* Bounded exhaustive DFS over [World] schedules, with visited-state
   pruning on canonical fingerprints and sleep-set partial-order
   reduction.

   The world is not snapshotable, so the search is stateless: one live
   world tracks the current schedule prefix, and backtracking to a node
   whose world was consumed by a deeper branch rebuilds it by replaying
   the prefix from scratch ([stats.replays] counts these).  For the small
   scopes this checker targets, re-execution is far cheaper than trying
   to checkpoint enclave heaps.

   Sleep sets (Godefroid): when sibling transitions t1..tk of a node are
   explored in order, ti's subtree need not re-explore any tj (j < i)
   that commutes with ti — every interleaving starting tj,ti was already
   covered under tj's subtree as ti,tj.  A sleep entry is identified by
   (label, payload fingerprint, host, lane); an identity that matches
   several pending choices of one node is ambiguous and is never slept
   (pending, not just enabled: a message queued behind a FIFO link head
   can carry the head's identity and must not inherit its sleep).
   Visited states store their sleep set: re-reaching a fingerprint with a
   superset sleep is a guaranteed subset of the prior exploration and is
   pruned; with anything else the stored set shrinks to the intersection
   and the state is expanded again. *)

type budget = { max_states : int; max_depth : int; max_wall_s : float }

let default_budget = { max_states = 20_000; max_depth = 200; max_wall_s = 120.0 }

type stats = {
  mutable visited : int;  (** distinct states expanded *)
  mutable transitions : int;  (** choices fired (excluding rebuilds) *)
  mutable hash_pruned : int;  (** re-reached a visited fingerprint *)
  mutable sleep_pruned : int;  (** skipped by the sleep set *)
  mutable deepest : int;
  mutable replays : int;  (** world rebuilds for backtracking *)
}

type outcome =
  | Exhausted
  | Violation of { schedule : int list; detail : string }
  | Budget of string  (** search truncated: which budget bound it *)

type result = { outcome : outcome; stats : stats }

type key = { k_label : string; k_fp : string; k_host : int; k_lane : int }

let key_of c =
  { k_label = World.label c;
    k_fp = World.choice_fp c;
    k_host = World.host c;
    k_lane = World.lane c }

let keys_independent a b =
  if a.k_host = -1 || b.k_host = -1 then false
  else if a.k_host <> b.k_host then true
  else a.k_lane >= 0 && b.k_lane >= 0 && a.k_lane <> b.k_lane

exception Stop of outcome

let run ?(budget = default_budget) cfg =
  let stats =
    { visited = 0; transitions = 0; hash_pruned = 0; sleep_pruned = 0; deepest = 0; replays = 0 }
  in
  let visited : (string, key list) Hashtbl.t = Hashtbl.create 4096 in
  let started = Sys.time () in
  let truncated = ref None in
  let note_truncation reason = if !truncated = None then truncated := Some reason in
  (* One live world; [current] is the schedule prefix it sits at. *)
  let world = ref (World.create cfg) in
  let current = ref [] in
  let world_at prefix =
    if !current <> prefix then begin
      stats.replays <- stats.replays + 1;
      let w = World.create cfg in
      List.iter
        (fun idx ->
          let en = World.enabled w in
          World.apply w (List.nth en idx))
        (List.rev prefix);
      world := w;
      current := prefix
    end;
    !world
  in
  let subset a b = List.for_all (fun k -> List.mem k b) a in
  let rec explore prefix sleep depth =
    if Sys.time () -. started > budget.max_wall_s then begin
      note_truncation "wall-clock budget";
      raise (Stop (Budget "wall-clock budget"))
    end;
    let w = world_at prefix in
    let enabled = World.enabled w in
    let terminal = enabled = [] in
    (match World.check ~terminal w with
    | Some detail -> raise (Stop (Violation { schedule = List.rev prefix; detail }))
    | None -> ());
    let fp = World.fingerprint w in
    let skip =
      match Hashtbl.find_opt visited fp with
      | Some stored when subset stored sleep ->
        stats.hash_pruned <- stats.hash_pruned + 1;
        true
      | Some stored ->
        Hashtbl.replace visited fp (List.filter (fun k -> List.mem k sleep) stored);
        false
      | None ->
        Hashtbl.replace visited fp sleep;
        false
    in
    if not skip then begin
      stats.visited <- stats.visited + 1;
      if depth > stats.deepest then stats.deepest <- depth;
      if stats.visited >= budget.max_states then begin
        note_truncation "state budget";
        raise (Stop (Budget "state budget"))
      end;
      if (not terminal) && depth >= budget.max_depth then note_truncation "depth budget"
      else begin
        let keys = List.map key_of enabled in
        let pending_keys = List.map key_of (World.choices w) in
        let ambiguous k = List.length (List.filter (( = ) k) pending_keys) > 1 in
        let explored = ref [] in
        List.iteri
          (fun i _c ->
            let k = List.nth keys i in
            if List.mem k sleep then stats.sleep_pruned <- stats.sleep_pruned + 1
            else begin
              let child_sleep =
                List.filter (fun s -> keys_independent s k) (sleep @ !explored)
              in
              let w = world_at prefix in
              let en = World.enabled w in
              World.apply w (List.nth en i);
              current := i :: prefix;
              stats.transitions <- stats.transitions + 1;
              explore (i :: prefix) child_sleep (depth + 1);
              if not (ambiguous k) then explored := k :: !explored
            end)
          enabled
      end
    end
  in
  let outcome =
    try
      explore [] [] 0;
      match !truncated with None -> Exhausted | Some reason -> Budget reason
    with Stop o -> o
  in
  { outcome; stats }

(* Deterministic schedule replay.  Returns the violation (with the
   schedule truncated at the step where it first shows) or [None] if the
   run stays clean; [`Diverged] when an index no longer resolves — the
   schedule does not belong to this config. *)
let replay cfg schedule =
  let w = World.create cfg in
  let rec step done_rev = function
    | [] -> (
      match World.check ~terminal:(World.enabled w = []) w with
      | Some detail -> `Violation (List.rev done_rev, detail)
      | None -> `Clean)
    | idx :: rest -> (
      let enabled = World.enabled w in
      if idx < 0 || idx >= List.length enabled then `Diverged (List.rev done_rev)
      else begin
        World.apply w (List.nth enabled idx);
        match World.check w with
        | Some detail -> `Violation (List.rev (idx :: done_rev), detail)
        | None -> step (idx :: done_rev) rest
      end)
  in
  step [] schedule

(* Greedy counterexample minimization: repeatedly try dropping one
   position; a candidate survives if replay still reaches a violation
   (replay truncates at the first one, so surviving candidates also
   shrink from the tail).  Fixpoint in O(len^2) replays. *)
let minimize cfg schedule =
  let try_schedule s = match replay cfg s with `Violation (sched, _) -> Some sched | _ -> None in
  let rec shrink s =
    let len = List.length s in
    let rec attempt pos =
      if pos >= len then None
      else
        let candidate = List.filteri (fun i _ -> i <> pos) s in
        match try_schedule candidate with
        | Some shorter when List.length shorter < len -> Some shorter
        | _ -> attempt (pos + 1)
    in
    match attempt 0 with Some shorter -> shrink shorter | None -> s
  in
  match try_schedule schedule with
  | None -> schedule  (* not reproducible as handed in; keep it verbatim *)
  | Some truncated -> shrink truncated
