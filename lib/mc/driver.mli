(** Bounded exhaustive DFS over {!World} schedules.

    Stateless-search model checking of the real implementation: the world
    cannot be snapshotted, so backtracking re-executes the schedule prefix
    from scratch.  Two reductions keep the small scopes tractable —
    visited-state pruning on {!World.fingerprint}, and sleep-set
    partial-order reduction built on {!World.independent} (events on
    different hosts, or provably different lanes of one host, commute;
    exploring both orders of a commuting pair is redundant).

    Soundness of the pruning for the invariants checked: fingerprints are
    over the full schedule-visible state, sleep sets only ever skip one of
    two orders whose interleavings reach identical states, and invariants
    are evaluated at {e every} explored state — so within the stated
    budgets, "no violation + Exhausted" means no reachable violation under
    any schedule of the configuration. *)

type budget = { max_states : int; max_depth : int; max_wall_s : float }

val default_budget : budget

type stats = {
  mutable visited : int;  (** distinct states expanded *)
  mutable transitions : int;  (** choices fired (excluding rebuilds) *)
  mutable hash_pruned : int;  (** re-reached a visited fingerprint *)
  mutable sleep_pruned : int;  (** skipped by the sleep set *)
  mutable deepest : int;
  mutable replays : int;  (** world rebuilds for backtracking *)
}

type outcome =
  | Exhausted  (** every reachable schedule explored; no violation *)
  | Violation of { schedule : int list; detail : string }
      (** [schedule] indexes into [World.enabled] step by step *)
  | Budget of string  (** search truncated (which budget), no violation *)

type result = { outcome : outcome; stats : stats }

val run : ?budget:budget -> World.config -> result
(** The search stops at the first violation — the returned schedule is the
    raw (unminimized) path to it. *)

val replay :
  World.config ->
  int list ->
  [ `Violation of int list * string  (** schedule truncated at first violation *)
  | `Clean
  | `Diverged of int list  (** an index stopped resolving; config mismatch *) ]
(** Deterministic replay with invariants checked after every step. *)

val minimize : World.config -> int list -> int list
(** Greedy delta-debugging: repeatedly drop one position while the replay
    still violates; replay truncation also shrinks the tail.  Returns the
    input unchanged if it does not reproduce. *)
