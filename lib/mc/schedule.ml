(* Replayable failure artifacts.

   Every counterexample the model checker finds, and every failing chaos
   plan, is dumped in one line-based format ("splitbft-schedule v1") that
   `splitbft_cli replay` consumes — CI uploads these files, and replaying
   one locally reproduces the violation deterministically.

   An [Mc] artifact is a [World.config] plus the choice schedule: the
   i-th number is an index into [World.enabled] after the first i-1
   choices were applied (creation order, so indices are stable).  The
   timer budgets are part of the identity — different budgets change
   which events the menu contains.  A [Chaos] artifact is the full
   randomized fault plan plus the protocol it ran against. *)

module Ids = Splitbft_types.Ids

let header = "splitbft-schedule v1"

type t =
  | Mc of { cfg : World.config; schedule : int list; detail : string }
  | Chaos of { protocol : string; plan : Chaos.plan; detail : string }

let string_of_crash = function
  | None -> "-"
  | Some (host, false) -> string_of_int host
  | Some (host, true) -> Printf.sprintf "%d+restart" host

let crash_of_string s =
  if String.equal s "-" then Ok None
  else
    let host, restart =
      match String.index_opt s '+' with
      | Some i when String.sub s i (String.length s - i) = "+restart" ->
        (String.sub s 0 i, true)
      | _ -> (s, false)
    in
    match int_of_string_opt host with
    | Some h -> Ok (Some (h, restart))
    | None -> Error (Printf.sprintf "bad crash spec %S" s)

let compartment_of_string = function
  | "preparation" -> Ok Ids.Preparation
  | "confirmation" -> Ok Ids.Confirmation
  | "execution" -> Ok Ids.Execution
  | s -> Error (Printf.sprintf "unknown compartment %S" s)

let to_string t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" header;
  (match t with
  | Mc { cfg; schedule; detail } ->
    line "kind mc";
    line "seed %Ld" cfg.World.seed;
    line "requests %d" cfg.World.requests;
    line "checkpoint-interval %d" cfg.World.checkpoint_interval;
    line "adversaries %s"
      (match cfg.World.adversaries with
      | [] -> "-"
      | advs -> String.concat "," (List.map Adversary.to_string advs));
    line "crash %s" (string_of_crash cfg.World.crash);
    line "lossy-viewchange %b" cfg.World.lossy_viewchange;
    line "mutate-viewchange %b" cfg.World.mutate_viewchange;
    line "budget-suspect %d" cfg.World.budgets.World.suspect;
    line "budget-retry %d" cfg.World.budgets.World.retry;
    line "budget-batch %d" cfg.World.budgets.World.batch;
    line "budget-recovery %d" cfg.World.budgets.World.recovery;
    line "granularity %s" (if cfg.World.per_host_fifo then "host" else "message");
    line "client-window %d" cfg.World.client_window;
    line "detail %s" (String.map (function '\n' -> ' ' | c -> c) detail);
    line "choices %s"
      (match schedule with
      | [] -> "-"
      | s -> String.concat " " (List.map string_of_int s))
  | Chaos { protocol; plan; detail } ->
    line "kind chaos";
    line "protocol %s" protocol;
    line "seed %Ld" plan.Chaos.seed;
    line "crash %s"
      (string_of_crash (Option.map (fun h -> (h, plan.Chaos.restart)) plan.Chaos.crash_host));
    line "crash-delay-us %.0f" plan.Chaos.crash_delay_us;
    line "byz %s"
      (match plan.Chaos.byz_enclave with
      | None -> "-"
      | Some (i, c) -> Printf.sprintf "%d:%s" i (Ids.compartment_name c));
    line "drop %.4f" plan.Chaos.drop_prob;
    line "detail %s" (String.map (function '\n' -> ' ' | c -> c) detail));
  Buffer.contents b

let ( let* ) = Result.bind

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> not (String.equal l ""))
  in
  match lines with
  | [] -> Error "empty artifact"
  | first :: rest when String.equal first header ->
    let fields =
      List.filter_map
        (fun l ->
          match String.index_opt l ' ' with
          | None -> Some (l, "")
          | Some i -> Some (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1)))
        rest
    in
    let get k =
      match List.assoc_opt k fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "artifact is missing field %S" k)
    in
    let int_field k =
      let* v = get k in
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %s: bad integer %S" k v)
    in
    let bool_field k =
      let* v = get k in
      match bool_of_string_opt v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "field %s: bad bool %S" k v)
    in
    let* kind = get "kind" in
    (match kind with
    | "mc" ->
      let* seed = get "seed" in
      let* seed =
        match Int64.of_string_opt seed with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "bad seed %S" seed)
      in
      let* requests = int_field "requests" in
      let* checkpoint_interval = int_field "checkpoint-interval" in
      let* advs = get "adversaries" in
      let* adversaries =
        if String.equal advs "-" then Ok []
        else
          List.fold_left
            (fun acc s ->
              let* acc = acc in
              let* a = Adversary.of_string s in
              Ok (a :: acc))
            (Ok []) (String.split_on_char ',' advs)
          |> Result.map List.rev
      in
      let* crash_s = get "crash" in
      let* crash = crash_of_string crash_s in
      let* lossy_viewchange = bool_field "lossy-viewchange" in
      let* mutate_viewchange = bool_field "mutate-viewchange" in
      let* suspect = int_field "budget-suspect" in
      let* retry = int_field "budget-retry" in
      let* batch = int_field "budget-batch" in
      let* recovery = int_field "budget-recovery" in
      (* Absent in artifacts predating the knob: per-message granularity. *)
      let* per_host_fifo =
        match List.assoc_opt "granularity" fields with
        | None | Some "message" -> Ok false
        | Some "host" -> Ok true
        | Some other -> Error (Printf.sprintf "unknown granularity %S" other)
      in
      (* Absent in artifacts predating the knob: window = requests. *)
      let* client_window =
        match List.assoc_opt "client-window" fields with
        | None -> Ok requests
        | Some v -> (
          match int_of_string_opt v with
          | Some i -> Ok i
          | None -> Error (Printf.sprintf "field client-window: bad integer %S" v))
      in
      let* detail = get "detail" in
      let* choices = get "choices" in
      let* schedule =
        if String.equal choices "-" then Ok []
        else
          List.fold_left
            (fun acc s ->
              let* acc = acc in
              match int_of_string_opt s with
              | Some i -> Ok (i :: acc)
              | None -> Error (Printf.sprintf "bad choice index %S" s))
            (Ok [])
            (String.split_on_char ' ' choices |> List.filter (fun s -> s <> ""))
          |> Result.map List.rev
      in
      Ok
        (Mc
           { cfg =
               { World.seed;
                 requests;
                 checkpoint_interval;
                 adversaries;
                 crash;
                 lossy_viewchange;
                 mutate_viewchange;
                 budgets = { World.suspect; retry; batch; recovery };
                 per_host_fifo;
                 client_window };
             schedule;
             detail })
    | "chaos" ->
      let* protocol = get "protocol" in
      let* seed = get "seed" in
      let* seed =
        match Int64.of_string_opt seed with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "bad seed %S" seed)
      in
      let* crash_s = get "crash" in
      let* crash = crash_of_string crash_s in
      let* delay = get "crash-delay-us" in
      let* crash_delay_us =
        match float_of_string_opt delay with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "bad crash-delay-us %S" delay)
      in
      let* byz = get "byz" in
      let* byz_enclave =
        if String.equal byz "-" then Ok None
        else
          match String.index_opt byz ':' with
          | Some i -> (
            let r = String.sub byz 0 i
            and c = String.sub byz (i + 1) (String.length byz - i - 1) in
            match int_of_string_opt r with
            | Some replica ->
              let* comp = compartment_of_string c in
              Ok (Some (replica, comp))
            | None -> Error (Printf.sprintf "bad byz replica in %S" byz))
          | None -> Error (Printf.sprintf "bad byz spec %S" byz)
      in
      let* drop = get "drop" in
      let* drop_prob =
        match float_of_string_opt drop with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "bad drop %S" drop)
      in
      let* detail = get "detail" in
      Ok
        (Chaos
           { protocol;
             plan =
               { Chaos.seed;
                 crash_host = Option.map fst crash;
                 crash_delay_us;
                 restart = (match crash with Some (_, r) -> r | None -> false);
                 byz_enclave;
                 drop_prob };
             detail })
    | other -> Error (Printf.sprintf "unknown artifact kind %S" other))
  | first :: _ -> Error (Printf.sprintf "not a schedule artifact (header %S)" first)

let save ~path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e
