(** Replayable failure artifacts ("splitbft-schedule v1").

    One line-based format for both failure sources — model-checker
    counterexamples and failing chaos plans — consumed by
    [splitbft_cli replay] and uploaded by CI on failure.

    An {!Mc} artifact carries the full {!World.config} (timer budgets
    included — they change what the choice menu contains, so they are
    part of the schedule's identity) plus the choice indices: the i-th
    number selects from [World.enabled] after the first i-1 choices.
    A {!Chaos} artifact carries the protocol name and the complete
    randomized fault plan. *)

type t =
  | Mc of { cfg : World.config; schedule : int list; detail : string }
  | Chaos of { protocol : string; plan : Chaos.plan; detail : string }

val to_string : t -> string
val of_string : string -> (t, string) result

val save : path:string -> t -> unit
val load : string -> (t, string) result

val crash_of_string : string -> ((int * bool) option, string) result
(** Parses "-", "HOST" or "HOST+restart" (shared with the CLI). *)
