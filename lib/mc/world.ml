module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Addr = Splitbft_types.Addr
module Message = Splitbft_types.Message
module Sconfig = Splitbft_core.Config
module Replica = Splitbft_core.Replica
module Confirmation = Splitbft_core.Confirmation
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs
module Safety = Splitbft_harness.Safety
module Workload = Splitbft_harness.Workload

let n = 4

type timer_budgets = { suspect : int; retry : int; batch : int; recovery : int }

let default_budgets = { suspect = 2; retry = 2; batch = 4; recovery = 2 }
(* Sized for the two view changes the lossy filter forces, and no more:
   one suspect fire per replica reaches exactly view 2 (two replicas'
   fires reach view 1; the other two, still holding their fire, push to
   view 2 — join-rule ViewChanges don't consume timer budget), and the
   two retry fires re-seed the view-2 primary with the outstanding
   requests.  Recovery timers are excluded: the scenario has no crash. *)
let viewchange_budgets = { suspect = 1; retry = 2; batch = 4; recovery = 0 }

type config = {
  seed : int64;
  requests : int;
  checkpoint_interval : int;
  adversaries : Adversary.t list;
  crash : (int * bool) option;
  lossy_viewchange : bool;
  mutate_viewchange : bool;
  budgets : timer_budgets;
  per_host_fifo : bool;
  client_window : int;
}

let default_config =
  { seed = 1L;
    requests = 2;
    checkpoint_interval = 2;
    adversaries = [];
    crash = None;
    lossy_viewchange = false;
    mutate_viewchange = false;
    budgets = default_budgets;
    per_host_fifo = false;
    client_window = 2 }

(* The timer labels the per-label fire budgets apply to.  Everything the
   replicas and client schedule with a delay long enough to matter is one
   of these self-rearming timers; bounding their firings per path is what
   makes the interleaving space finite. *)
type timer_kind = K_suspect | K_retry | K_batch | K_recovery

let timer_kind_of_label label =
  let has suffix =
    let nl = String.length label and ns = String.length suffix in
    nl >= ns && String.equal (String.sub label (nl - ns) ns) suffix
  in
  if has "-suspect" then Some K_suspect
  else if has "-retry" then Some K_retry
  else if has "-batch" then Some K_batch
  else if has "-recovery" then Some K_recovery
  else None

type t = {
  cfg : config;
  engine : Engine.t;
  net : Network.t;
  replicas : Replica.t array;
  client : Client.t;
  mutable completed : int;
  mutable wrong : int;
  mutable wire_leaks : int;
  crashed : bool array;
  fired : (string, int) Hashtbl.t;  (** budgeted-timer label -> fires so far *)
}

type choice = {
  ev : Engine.handle;
  label : string;
  host : int;
  lane : int;
  fp : string;
}

let budget_for t kind =
  match kind with
  | K_suspect -> t.cfg.budgets.suspect
  | K_retry -> t.cfg.budgets.retry
  | K_batch -> t.cfg.budgets.batch
  | K_recovery -> t.cfg.budgets.recovery

let suppressed t label =
  match timer_kind_of_label label with
  | None -> false
  | Some kind ->
    let fired = Option.value ~default:0 (Hashtbl.find_opt t.fired label) in
    fired >= budget_for t kind

(* Deterministic network adversary used by the mutation self-test: steer
   the run through two view changes by (1) hiding view-0 Commits from
   everyone but replica 0, so only it executes before the first view
   change, (2) killing view 1's Prepares, forcing a second view change
   whose ViewChanges are built from view 1's entry state, and (3) keeping
   request ts=1 away from replica 2, the eventual view-2 primary, so a
   cert-less new-view (the re-introduced PR-3 bug) makes it propose a
   conflicting batch at seq 1. *)
let lossy_viewchange_filter ~src:_ ~dst payload =
  match Message.decode_traced payload with
  | Ok (Message.Commit { view = 0; _ }, _) when dst <> Addr.replica 0 -> Network.Drop
  | Ok (Message.Prepare { view = 1; _ }, _) -> Network.Drop
  | Ok (Message.Request { timestamp = 1L; _ }, _) when dst = Addr.replica 2 -> Network.Drop
  | _ -> Network.Deliver

let replica_config cfg id =
  { (Sconfig.default ~n ~id) with
    Sconfig.batch_size = 1;
    batch_timeout_us = 100.0;
    checkpoint_interval = cfg.checkpoint_interval;
    suspect_timeout_us = 5_000.0;
    viewchange_timeout_us = 10_000.0;
    recovery_retry_us = 5_000.0;
    (* Hot-path caching off: verification short-cuts depend on arrival
       history, which would make replica behavior schedule-sensitive in
       ways the fingerprint does not capture. *)
    verify_cache_capacity = 0;
    lanes = 1;
    exec_workers = 1 }

let net_config =
  { Network.base_delay_us = 10.0;
    jitter_mean_us = 0.0;
    drop_probability = 0.0;
    bandwidth_bytes_per_us = 0.0 }

let drain_limit = 200_000

(* Fire every live [Internal] event — deterministic consequences of the
   last choice (ecall completions, cost-model delays) — until only
   genuine scheduling decisions remain. *)
let drain_internal t =
  let steps = ref 0 in
  let rec loop () =
    let next =
      List.find_opt
        (fun ev -> Engine.class_of ev = Engine.Internal)
        (Engine.live_events t.engine)
    in
    match next with
    | None -> ()
    | Some ev ->
      incr steps;
      if !steps > drain_limit then failwith "Mc.World: internal-event drain did not quiesce";
      Engine.fire_forced t.engine ev;
      loop ()
  in
  loop ()

let create cfg =
  (match Adversary.validate ~n cfg.adversaries with
  | Ok () -> ()
  | Error e -> invalid_arg ("Mc.World.create: " ^ e));
  Confirmation.mutate_drop_prepared_on_view_entry := cfg.mutate_viewchange;
  let engine = Engine.create ~seed:cfg.seed () in
  let net = Network.create engine net_config in
  let replicas =
    Array.init n (fun id ->
        let prep_byz, conf_byz, exec_byz = Adversary.byz_for cfg.adversaries id in
        Replica.create ~prep_byz ~conf_byz ~exec_byz engine net (replica_config cfg id)
          ~app:(fun () -> Kvs.create ()))
  in
  let client =
    Client.create engine net
      { Client.id = 0;
        n;
        reply_quorum = 2;
        window = min cfg.client_window cfg.requests;
        retry_timeout_us = 20_000.0;
        retry_backoff = 2.0;
        retry_cap_us = 80_000.0;
        retry_jitter = 0.0;
        protocol = Client.Splitbft { ready_quorum = 3 } }
  in
  let t =
    { cfg;
      engine;
      net;
      replicas;
      client;
      completed = 0;
      wrong = 0;
      wire_leaks = 0;
      crashed = Array.make n false;
      fired = Hashtbl.create 16 }
  in
  Network.set_tap net
    (Some
       (fun ~src:_ ~dst:_ payload ->
         if Safety.contains_canary payload then t.wire_leaks <- t.wire_leaks + 1));
  if cfg.lossy_viewchange then Network.set_filter net (Some lossy_viewchange_filter);
  (* Attestation/session setup runs free (canonical schedule): the
     boundary under test is the agreement path, and exploring handshake
     interleavings would swamp the budget with symmetric states. *)
  Client.start client ~on_ready:(fun () -> ());
  Engine.run ~max_events:100_000 engine;
  if not (Client.is_ready client) then failwith "Mc.World: client failed to become ready in setup";
  (* Broker output-boundary faults only from here on, so the handshake
     itself is not the casualty. *)
  Array.iteri
    (fun id r ->
      match Adversary.env_fault_for cfg.adversaries id with
      | Some fault -> Replica.set_env_fault r fault
      | None -> ())
    replicas;
  for i = 0 to cfg.requests - 1 do
    let op = Kvs.Put (Printf.sprintf "k%d" i, Printf.sprintf "%s-%d" Workload.canary i) in
    Client.submit client ~op:(Kvs.encode_op op) ~on_result:(fun ~latency_us:_ ~result ->
        t.completed <- t.completed + 1;
        if not (String.equal result Kvs.ok) then t.wrong <- t.wrong + 1)
  done;
  (match cfg.crash with
  | None -> ()
  | Some (host, restart) ->
    ignore
      (Engine.schedule engine
         ~cls:(Engine.Choice { host = -1; lane = -1 })
         ~delay:0.0 ~label:"mc:crash"
         (fun () ->
           t.crashed.(host) <- true;
           Replica.crash_host replicas.(host);
           if restart then
             ignore
               (Engine.schedule engine
                  ~cls:(Engine.Choice { host = -1; lane = -1 })
                  ~delay:0.0 ~label:"mc:restart"
                  (fun () ->
                    t.crashed.(host) <- false;
                    Replica.restart_host replicas.(host))))));
  drain_internal t;
  t

let choices t =
  Engine.live_events t.engine
  |> List.filter_map (fun ev ->
         match Engine.class_of ev with
         | Engine.Internal -> None
         | Engine.Choice { host; lane } ->
           Some { ev; label = Engine.label_of ev; host; lane; fp = Engine.fp_of ev })

(* The scheduler's menu: every live Choice event whose timer budget is not
   exhausted, in creation order (creation order is deterministic given the
   choice prefix, so an index into this list is replayable).

   Network deliveries are restricted to the head of their (src, dst) link:
   the simulated network under the model-checking configuration (zero
   jitter) delivers every link in FIFO order, so schedules that reorder
   one link's messages are outside the modeled network — the checker
   explores every interleaving ACROSS links, timers and crashes, but not
   within a link.  Delivery labels are "net:SRC->DST", so the link is the
   label; creation order (seq) is send order.

   [per_host_fifo] coarsens the model one step further for the exhaust
   preset: the scheduler picks which HOST consumes its oldest pending
   message (per-host global-FIFO arrival), i.e. it explores every
   host-pacing — including arbitrary stalls, timer and crash placements
   — of the FIFO network's send order, strictly generalizing the
   zero-jitter simulator's single free-run schedule.  What it gives up
   relative to per-message mode is straggler-quorum schedules (a host
   seeing sender 2's Prepare before sender 1's); the fault presets keep
   per-message granularity, bounded, to cover those.

   The menu is ordered deliveries first, then timers, then crash points
   (stable within each class).  Ordering is pure search heuristic — it
   changes which paths the DFS walks first, not which it covers — and
   makes the greedy path the protocol's happy path: timers fire when
   deliveries stall, instead of burning their budgets up front. *)
let is_delivery label =
  String.length label >= 4 && String.equal (String.sub label 0 4) "net:"

let enabled t =
  let seen = Hashtbl.create 32 in
  let fifo_key c = if t.cfg.per_host_fifo then string_of_int c.host else c.label in
  let live =
    List.filter
      (fun c ->
        if suppressed t c.label then false
        else if is_delivery c.label then begin
          let key = fifo_key c in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end
        end
        else true)
      (choices t)
  in
  let rank c =
    if is_delivery c.label then 0
    else if c.host = -1 then 3
    else
      match timer_kind_of_label c.label with
      (* Client retransmissions after the replicas' own timers: the
         retry is the protocol's end-to-end recovery of last resort, and
         on stalled paths it is what re-seeds a fresh view's primary —
         firing it before the failure detectors wastes it on the dead
         view. *)
      | Some K_retry -> 2
      | _ -> 1
  in
  List.stable_sort (fun a b -> compare (rank a) (rank b)) live

let apply t c =
  if not (Engine.is_live c.ev) then invalid_arg "Mc.World.apply: stale choice";
  (match timer_kind_of_label c.label with
  | None -> ()
  | Some _ ->
    Hashtbl.replace t.fired c.label
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.fired c.label)));
  Engine.fire_forced t.engine c.ev;
  drain_internal t

(* Two choices commute when they act on different hosts, or on the same
   host but provably distinct consensus lanes.  Lane -1 is "unknown lane"
   and host -1 is a global event (crash/restart) — both conflict with
   everything they share a side with. *)
let independent a b =
  if a.host = -1 || b.host = -1 then false
  else if a.host <> b.host then true
  else a.lane >= 0 && b.lane >= 0 && a.lane <> b.lane

(* A canonical digest of everything schedule-visible: compartment probe
   state, executed logs, persisted storage, client progress, in-flight
   choices (label + payload digest, times excluded) and the budget
   counters.  Virtual times and event seqnos are deliberately excluded so
   interleavings that converge to the same protocol state collide. *)
let fingerprint t =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  Array.iteri
    (fun i r ->
      add "R%d:%b:%b;" i t.crashed.(i) (Replica.host_crashed r);
      let p = Replica.prep_probe r in
      add "P%d,%d,%d,%d,%d;" (p.Splitbft_core.Preparation.view ()) (p.next_seq ())
        (p.last_stable ()) (p.sessions ()) (p.parked ());
      let c = Replica.conf_probe r in
      add "C%d,%d,%d;" (c.Splitbft_core.Confirmation.view ()) (c.last_stable ())
        (c.commits_sent ());
      let e = Replica.exec_probe r in
      add "E%d,%d,%d,%d,%s;" (e.Splitbft_core.Execution.view ()) (e.last_executed ())
        (e.last_stable ()) (e.sessions ())
        (Digest.to_hex (Digest.string (Replica.app_digest r)));
      List.iter (fun (seq, d) -> add "x%d=%s;" seq (Digest.to_hex (Digest.string d)))
        (Replica.executed_log r);
      let blobs = Replica.persisted r in
      let pb = Buffer.create 256 in
      List.iter
        (fun (tag, data) ->
          Buffer.add_string pb tag;
          Buffer.add_char pb '=';
          Buffer.add_string pb (Digest.to_hex (Digest.string data));
          Buffer.add_char pb ';')
        (List.sort compare blobs);
      add "S%d:%s;" (List.length blobs) (Digest.to_hex (Digest.string (Buffer.contents pb))))
    t.replicas;
  add "cl:%b,%d,%d,%d,%d;" (Client.is_ready t.client) t.completed t.wrong
    (Client.outstanding t.client) t.wire_leaks;
  let pending =
    choices t
    |> List.map (fun c -> (c.label, Digest.to_hex (Digest.string c.fp)))
    |> List.sort compare
  in
  List.iter (fun (l, d) -> add "q%s=%s;" l d) pending;
  Hashtbl.fold (fun l k acc -> (l, k) :: acc) t.fired []
  |> List.sort compare
  |> List.iter (fun (l, k) -> add "t%s=%d;" l k);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Replicas whose Execution compartment runs the honest program; their
   executed logs and replies are the ones SplitBFT's containment claim
   covers. *)
let honest_exec t =
  List.init n Fun.id
  |> List.filter (fun id ->
         not
           (List.exists
              (fun a ->
                a.Adversary.replica = id
                && Adversary.site_of_policy a.Adversary.policy = Adversary.Site_execution)
              t.cfg.adversaries))

(* The invariants, checked at every explored state.  The prefix-length
   window check only applies at quiescent (terminal) states: mid-run a
   replica legitimately trails by however many deliveries are still
   pending. *)
let log64 r = List.map (fun (seq, d) -> (Int64.of_int seq, d)) (Replica.executed_log r)

let check ?(terminal = false) t =
  let honest = honest_exec t in
  let logs = List.map (fun i -> (i, log64 t.replicas.(i))) honest in
  let live_logs = List.filter (fun (i, _) -> not t.crashed.(i)) logs in
  match Safety.agreement_of_logs logs with
  | Safety.Conflict _ as bad -> Some (Safety.describe_agreement bad)
  | Safety.Prefix_lag _ as bad -> Some (Safety.describe_agreement bad)
  | Safety.Agreement -> (
    let lag =
      if terminal then
        match Safety.agreement_of_logs ~window:t.cfg.checkpoint_interval live_logs with
        | Safety.Agreement -> None
        | bad -> Some (Safety.describe_agreement bad)
      else None
    in
    match lag with
    | Some _ -> lag
    | None -> (
      let gap =
        List.find_map
          (fun (i, log) ->
            match Safety.prefix_gap log with
            | Some seq -> Some (Printf.sprintf "replica %d executed log has a gap at seq %Ld" i seq)
            | None -> None)
          logs
      in
      match gap with
      | Some _ -> gap
      | None ->
        if t.wrong > 0 then
          Some (Printf.sprintf "%d wrong client results accepted" t.wrong)
        else if t.wire_leaks > 0 then
          Some (Printf.sprintf "%d canary-leaking wire payloads" t.wire_leaks)
        else
          let storage =
            Array.fold_left (fun acc r -> acc + Safety.blob_leaks (Replica.persisted r)) 0 t.replicas
          in
          if storage > 0 then Some (Printf.sprintf "%d canary-leaking storage blobs" storage)
          else None))

let completed t = t.completed
let now t = Engine.now t.engine
let executed_log t i = Replica.executed_log t.replicas.(i)
let view t i = Replica.view t.replicas.(i)
let label c = c.label
let choice_fp c = c.fp
let host c = c.host
let lane c = c.lane
let describe_choice c = Printf.sprintf "%s(h%d,l%d)" c.label c.host c.lane
