(** Small-scope SplitBFT world under model-checker control.

    Wraps one deterministic simulation — n=4 replicas, one client, a
    handful of requests — behind the controlled-scheduler interface of
    [Sim.Engine]: after a free-running setup phase (attestation,
    session provisioning), every network delivery, budgeted timer firing
    and crash/restart point becomes an explicit {!choice} for the DFS
    {!Driver} to fire, with [Internal] events (ecall completions, cost
    model) drained to quiescence after each.

    Soundness of treating replica behavior as schedule-determined: the
    configuration forces jitter/drops/bandwidth to zero, one lane, one
    Execution worker, batch size 1 and the verification cache off, so
    compartment transitions depend only on message arrival {e order} —
    exactly what the scheduler controls — never on virtual time. *)

type timer_budgets = { suspect : int; retry : int; batch : int; recovery : int }
(** Per-label fire budgets for the self-rearming timers; budgets make the
    interleaving space finite.  They are part of a schedule's identity —
    replay must use the same budgets. *)

val default_budgets : timer_budgets
val viewchange_budgets : timer_budgets
(** Budgets sized for configs that must drive exactly two view changes:
    one suspect fire per replica settles the cluster at view 2, and the
    retry fires are preserved (see the menu ordering in {!enabled}) to
    re-seed the view-2 primary. *)

type config = {
  seed : int64;
  requests : int;
  checkpoint_interval : int;
  adversaries : Adversary.t list;
  crash : (int * bool) option;  (** (host, restart afterwards) *)
  lossy_viewchange : bool;
      (** deterministic message filter steering the run through two view
          changes (the mutation self-test's scenario) *)
  mutate_viewchange : bool;
      (** re-introduce the PR-3 bug (prepared certificates dropped at view
          entry) via [Confirmation.mutate_drop_prepared_on_view_entry] *)
  budgets : timer_budgets;
  per_host_fifo : bool;
      (** coarsen delivery granularity from per-link-head to per-host
          global-FIFO (the scheduler picks which host consumes its oldest
          pending message) — the exhaust preset's model; part of a
          schedule's identity *)
  client_window : int;
      (** max outstanding client requests (capped at [requests]); 1 makes
          the client closed-loop, keeping consecutive requests' phases
          from multiplying in the exhaust search.  Part of a schedule's
          identity *)
}

val default_config : config
(** seed 1, 2 requests, checkpoint interval 2, no adversary, no crash. *)

type t
type choice

val create : config -> t
(** Builds the world and free-runs setup + request submission to the first
    quiescent point.  Raises if the client cannot complete attestation or
    the adversary list is invalid ({!Adversary.validate}). *)

val enabled : t -> choice list
(** The scheduler's menu, in deterministic creation order: every live
    [Choice] event whose timer budget is not exhausted, with network
    deliveries restricted to the head of their (src, dst) link — the
    zero-jitter simulated network is FIFO per link, so within-link
    reorderings are outside the modeled network.  Empty = terminal
    state.  An index into this list identifies the choice in replayable
    schedules. *)

val choices : t -> choice list
(** Every pending live [Choice] event, without the budget or FIFO-link
    filtering of {!enabled}.  The driver's sleep-set ambiguity guard
    scans this: a key matching anything queued behind a link head must
    not be slept. *)

val apply : t -> choice -> unit
(** Fire the choice, then drain [Internal] events to quiescence. *)

val independent : choice -> choice -> bool
(** Commutativity for partial-order reduction: different hosts, or same
    host with distinct non-negative lanes. *)

val fingerprint : t -> string
(** Canonical state digest — probes, executed logs, persisted storage,
    client progress, pending choices, budget counters; virtual times
    excluded — for visited-state pruning. *)

val check : ?terminal:bool -> t -> string option
(** The safety invariants, as a violation description or [None]:
    agreement across honest Executions' logs, ledger prefix-contiguity,
    reply integrity (no wrong results accepted), confidentiality canary on
    wire and in untrusted storage.  With [terminal], additionally flags
    honest live prefixes diverging beyond the checkpoint window. *)

val label : choice -> string
val choice_fp : choice -> string
val host : choice -> int
val lane : choice -> int
val describe_choice : choice -> string
val completed : t -> int
val now : t -> float
val executed_log : t -> int -> (int * string) list
val view : t -> int -> int
