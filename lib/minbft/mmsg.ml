module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader
module Message = Splitbft_types.Message

type prepare = {
  p_view : int;
  p_batch : Message.request list;
  p_ui : Usig.ui;
}

type commit = {
  c_view : int;
  c_primary_counter : int64;
  c_digest : string;
  c_sender : int;
  c_ui : Usig.ui;
}

type checkpoint = {
  k_counter : int64;
  k_state_digest : string;
  k_sender : int;
  k_ui : Usig.ui;
}

type viewchange = { v_new_view : int; v_sender : int; v_ui : Usig.ui }
type newview = { n_view : int; n_sender : int; n_ui : Usig.ui }

(* State transfer (crash-recovery).  These carry no UI of their own: the
   snapshot is certified by the f+1 UI-signed checkpoints in [s_proof], and
   log-suffix entries are only installed once f+1 distinct repliers vouch
   for the same digest, so they bypass the per-sender counter windows. *)
type state_entry = {
  t_counter : int64;
  t_digest : string;
  t_batch : Message.request list;
}

type state_request = { q_requester : int }

type state_reply = {
  s_replier : int;
  s_requester : int;
  s_view : int;
  s_proof : checkpoint list;
  s_stable_counter : int64;
  s_snapshot : string;
  s_exec_prefix : int;
  s_entries : state_entry list;
  s_windows : (int * int64) list;
}

type t =
  | Prepare of prepare
  | Commit of commit
  | Checkpoint of checkpoint
  | Viewchange of viewchange
  | Newview of newview
  | Statereq of state_request
  | Statereply of state_reply

let base_tag = 100

let sender = function
  | Prepare _ -> -1 (* resolved by view at the call site; primaries rotate *)
  | Commit c -> c.c_sender
  | Checkpoint k -> k.k_sender
  | Viewchange v -> v.v_sender
  | Newview n -> n.n_sender
  | Statereq q -> q.q_requester
  | Statereply s -> s.s_replier

(* State-transfer messages carry no UI; callers route them around the
   USIG admission path before asking for one. *)
let ui = function
  | Prepare p -> p.p_ui
  | Commit c -> c.c_ui
  | Checkpoint k -> k.k_ui
  | Viewchange v -> v.v_ui
  | Newview n -> n.n_ui
  | Statereq _ | Statereply _ -> { Usig.counter = 0L; cert = "" }

let signed_part msg =
  W.to_string
    (fun w msg ->
      match msg with
      | Prepare p ->
        W.raw w "mb-p";
        W.varint w p.p_view;
        W.list w (fun w r -> W.bytes w (Message.encode_request r)) p.p_batch
      | Commit c ->
        W.raw w "mb-c";
        W.varint w c.c_view;
        W.u64 w c.c_primary_counter;
        W.bytes w c.c_digest;
        W.varint w c.c_sender
      | Checkpoint k ->
        W.raw w "mb-k";
        W.u64 w k.k_counter;
        W.bytes w k.k_state_digest;
        W.varint w k.k_sender
      | Viewchange v ->
        W.raw w "mb-v";
        W.varint w v.v_new_view;
        W.varint w v.v_sender
      | Newview n ->
        W.raw w "mb-n";
        W.varint w n.n_view;
        W.varint w n.n_sender
      | Statereq q ->
        (* unsigned; present only so [signed_part] stays total *)
        W.raw w "mb-q";
        W.varint w q.q_requester
      | Statereply s ->
        W.raw w "mb-s";
        W.varint w s.s_replier)
    msg

let write_ui w (u : Usig.ui) = W.bytes w (Usig.encode_ui u)

let read_ui r =
  match Usig.decode_ui (R.bytes r) with
  | Ok u -> u
  | Error e -> raise (R.Error ("ui: " ^ e))

let read_request r =
  match Message.decode_request (R.bytes r) with
  | Ok req -> req
  | Error e -> raise (R.Error ("request: " ^ e))

let write_checkpoint w (k : checkpoint) =
  W.u64 w k.k_counter;
  W.bytes w k.k_state_digest;
  W.varint w k.k_sender;
  write_ui w k.k_ui

let read_checkpoint r =
  let k_counter = R.u64 r in
  let k_state_digest = R.bytes r in
  let k_sender = R.varint r in
  let k_ui = read_ui r in
  { k_counter; k_state_digest; k_sender; k_ui }

let write_entry w (e : state_entry) =
  W.u64 w e.t_counter;
  W.bytes w e.t_digest;
  W.list w (fun w req -> W.bytes w (Message.encode_request req)) e.t_batch

let read_entry r =
  let t_counter = R.u64 r in
  let t_digest = R.bytes r in
  let t_batch = R.list r read_request in
  { t_counter; t_digest; t_batch }

let encode msg =
  W.to_string
    (fun w msg ->
      match msg with
      | Prepare p ->
        W.u8 w (base_tag + 0);
        W.varint w p.p_view;
        W.list w (fun w r -> W.bytes w (Message.encode_request r)) p.p_batch;
        write_ui w p.p_ui
      | Commit c ->
        W.u8 w (base_tag + 1);
        W.varint w c.c_view;
        W.u64 w c.c_primary_counter;
        W.bytes w c.c_digest;
        W.varint w c.c_sender;
        write_ui w c.c_ui
      | Checkpoint k ->
        W.u8 w (base_tag + 2);
        W.u64 w k.k_counter;
        W.bytes w k.k_state_digest;
        W.varint w k.k_sender;
        write_ui w k.k_ui
      | Viewchange v ->
        W.u8 w (base_tag + 3);
        W.varint w v.v_new_view;
        W.varint w v.v_sender;
        write_ui w v.v_ui
      | Newview n ->
        W.u8 w (base_tag + 4);
        W.varint w n.n_view;
        W.varint w n.n_sender;
        write_ui w n.n_ui
      | Statereq q ->
        W.u8 w (base_tag + 5);
        W.varint w q.q_requester
      | Statereply s ->
        W.u8 w (base_tag + 6);
        W.varint w s.s_replier;
        W.varint w s.s_requester;
        W.varint w s.s_view;
        W.list w write_checkpoint s.s_proof;
        W.u64 w s.s_stable_counter;
        W.bytes w s.s_snapshot;
        W.varint w s.s_exec_prefix;
        W.list w write_entry s.s_entries;
        W.list w
          (fun w (i, c) ->
            W.varint w i;
            W.u64 w c)
          s.s_windows)
    msg

let decode s =
  R.parse
    (fun r ->
      match R.u8 r - base_tag with
      | 0 ->
        let p_view = R.varint r in
        let p_batch = R.list r read_request in
        let p_ui = read_ui r in
        Prepare { p_view; p_batch; p_ui }
      | 1 ->
        let c_view = R.varint r in
        let c_primary_counter = R.u64 r in
        let c_digest = R.bytes r in
        let c_sender = R.varint r in
        let c_ui = read_ui r in
        Commit { c_view; c_primary_counter; c_digest; c_sender; c_ui }
      | 2 ->
        let k_counter = R.u64 r in
        let k_state_digest = R.bytes r in
        let k_sender = R.varint r in
        let k_ui = read_ui r in
        Checkpoint { k_counter; k_state_digest; k_sender; k_ui }
      | 3 ->
        let v_new_view = R.varint r in
        let v_sender = R.varint r in
        let v_ui = read_ui r in
        Viewchange { v_new_view; v_sender; v_ui }
      | 4 ->
        let n_view = R.varint r in
        let n_sender = R.varint r in
        let n_ui = read_ui r in
        Newview { n_view; n_sender; n_ui }
      | 5 ->
        let q_requester = R.varint r in
        Statereq { q_requester }
      | 6 ->
        let s_replier = R.varint r in
        let s_requester = R.varint r in
        let s_view = R.varint r in
        let s_proof = R.list r read_checkpoint in
        let s_stable_counter = R.u64 r in
        let s_snapshot = R.bytes r in
        let s_exec_prefix = R.varint r in
        let s_entries = R.list r read_entry in
        let s_windows =
          R.list r (fun r ->
              let i = R.varint r in
              let c = R.u64 r in
              (i, c))
        in
        Statereply
          { s_replier;
            s_requester;
            s_view;
            s_proof;
            s_stable_counter;
            s_snapshot;
            s_exec_prefix;
            s_entries;
            s_windows }
      | t -> raise (R.Error (Printf.sprintf "unknown minbft tag %d" (t + base_tag))))
    s

let is_minbft_payload s =
  String.length s > 0 && Char.code s.[0] >= base_tag && Char.code s.[0] < base_tag + 7
