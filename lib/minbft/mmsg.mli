(** MinBFT wire messages.

    Every replica-to-replica message carries a USIG identifier; receivers
    process each sender's stream strictly in counter order, which is what
    rules out equivocation with only [2f + 1] replicas.  Client requests
    and replies reuse the shared {!Splitbft_types.Message} forms.  Tags are
    disjoint from the shared message tags so both can be told apart on the
    wire. *)

module Message = Splitbft_types.Message

type prepare = {
  p_view : int;
  p_batch : Message.request list;
  p_ui : Usig.ui;  (** the primary's counter defines the order *)
}

type commit = {
  c_view : int;
  c_primary_counter : int64;
  c_digest : string;
  c_sender : int;
  c_ui : Usig.ui;
}

type checkpoint = {
  k_counter : int64;  (** primary counter of the last executed prepare *)
  k_state_digest : string;
  k_sender : int;
  k_ui : Usig.ui;
}

type viewchange = { v_new_view : int; v_sender : int; v_ui : Usig.ui }
type newview = { n_view : int; n_sender : int; n_ui : Usig.ui }

(** State transfer (crash-recovery).  No UI of their own: the snapshot is
    certified by the f+1 UI-signed checkpoints in [s_proof]; suffix entries
    are installed only on f+1 matching replier votes.  Receivers route them
    around the per-sender counter windows. *)
type state_entry = {
  t_counter : int64;  (** primary counter that ordered this batch *)
  t_digest : string;
  t_batch : Message.request list;
}

type state_request = { q_requester : int }

type state_reply = {
  s_replier : int;
  s_requester : int;
  s_view : int;
  s_proof : checkpoint list;  (** f+1 matching UI-signed checkpoints *)
  s_stable_counter : int64;
  s_snapshot : string;  (** app snapshot whose digest the proof certifies *)
  s_exec_prefix : int;  (** replier's execution index at the stable point *)
  s_entries : state_entry list;  (** executed suffix, counter ascending *)
  s_windows : (int * int64) list;  (** replier's per-sender window positions *)
}

type t =
  | Prepare of prepare
  | Commit of commit
  | Checkpoint of checkpoint
  | Viewchange of viewchange
  | Newview of newview
  | Statereq of state_request
  | Statereply of state_reply

val sender : t -> int

val ui : t -> Usig.ui
(** The zero UI for [Statereq]/[Statereply]; never verify those through
    the USIG path. *)

val signed_part : t -> string
(** Bytes covered by the message's USIG certificate. *)

val encode : t -> string
val decode : string -> (t, string) result

val is_minbft_payload : string -> bool
(** Distinguishes MinBFT payloads from shared-format ones by tag. *)
