module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Resource = Splitbft_sim.Resource
module Timer = Splitbft_sim.Timer
module Cost_model = Splitbft_tee.Cost_model
module Platform = Splitbft_tee.Platform
module Measurement = Splitbft_tee.Measurement
module Sealing = Splitbft_tee.Sealing
module Sha256 = Splitbft_crypto.Sha256
module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader
module Ids = Splitbft_types.Ids
module Addr = Splitbft_types.Addr
module Keys = Splitbft_types.Keys
module Message = Splitbft_types.Message
module Hmac = Splitbft_crypto.Hmac
module State_machine = Splitbft_app.State_machine
module Quorum = Splitbft_consensus.Quorum
module Votes = Splitbft_consensus.Votes
module Client_table = Splitbft_consensus.Client_table
module Tracer = Splitbft_obs.Tracer
module Trace_ctx = Splitbft_obs.Trace_ctx

let protocol_name = "minbft"

type config = {
  n : int;
  id : Ids.replica_id;
  cost : Cost_model.t;
  workers : int;
  batch_size : int;
  batch_timeout_us : float;
  checkpoint_interval : int;
  suspect_timeout_us : float;
  recovery_retry_us : float;
}

let default_config ~n ~id =
  { n;
    id;
    cost = Cost_model.default;
    workers = 4;
    batch_size = 1;
    batch_timeout_us = 10_000.0;
    checkpoint_interval = 64;
    suspect_timeout_us = 500_000.0;
    recovery_retry_us = 150_000.0 }

type byzantine_mode =
  | Honest
  | Faulty_tee_equivocate
  | Mute_commits
  | Corrupt_execution

(* An ordered-log entry: one Prepare accepted from the primary, in counter
   order. *)
type entry = {
  e_counter : int64;
  e_digest : string;
  e_batch : Message.request list;
  e_attesters : unit Quorum.t;  (* primary + commit senders *)
  mutable e_executed : bool;
}

type t = {
  cfg : config;
  f : int;
  engine : Engine.t;
  net : Network.t;
  pool : Resource.Pool.pool;
  core : Resource.t;
  usig : Usig.t;
  app : State_machine.t;
  mutable view : Ids.view;
  windows : Usig.Window.w array;  (* per-sender counter windows *)
  holdback : (int * int64, Mmsg.t) Hashtbl.t;
  mutable order : entry list;  (* newest first; counter order when reversed *)
  by_counter : (int64, entry) Hashtbl.t;
  pending_commits : (int64, Mmsg.commit) Votes.t;
  mutable executed_upto : int;  (* executed prefix length of (rev order) *)
  mutable last_exec_counter : int64;
  mutable exec_index : int;  (* global execution position, across views *)
  executed_digests : (int64 * string) list ref;  (* (exec index, digest) *)
  checkpoints : (int64, Mmsg.checkpoint) Votes.t;
  mutable clients : Client_table.t;
  mutable pending : Message.request list;
  mutable pending_count : int;
  batch_timer : Timer.t;
  awaiting : (Ids.client_id * int64, unit) Hashtbl.t;
  suspect_timer : Timer.t;
  viewchanges : (Ids.view, unit) Votes.t;
  mutable crashed : bool;
  mutable epoch : int;
      (* incarnation counter: work queued before a crash must not run after
         a restart, so deferred closures check the epoch they captured *)
  mutable byz : byzantine_mode;
  mutable executed_total : int;
  (* crash-recovery (sealed checkpoints + state transfer).  The USIG [t.usig]
     itself survives crashes: it is trusted hardware with its own
     persistence, and its counter keeps growing monotonically. *)
  platform : Platform.t;
  seal_key : string;
  initial_snapshot : string;
  mutable persist_log : (string * string) list;  (* sealed blobs, newest first *)
  snapshots : (int64, string) Hashtbl.t;  (* own snapshot at own checkpoint counters *)
  exec_index_at : (int64, int) Hashtbl.t;  (* counter -> exec index after executing it *)
  mutable stable_proof : (int64 * string * Mmsg.checkpoint list) option;
  sync_votes : (int64, string * Message.request list) Votes.t;
  mutable sync_replies : (int * int64 * int) list;
      (* one live slot per replier: (replier, vouched head counter, view) *)
  mutable recovering : bool;
  mutable recovered_count : int;
  mutable alerts : string list;  (* newest first *)
  recovery_timer : Timer.t;
  mutable cur_ctx : Trace_ctx.t option;
      (* trace context of the message being handled; [broadcast]/[send_reply]
         default to it, so everything a handler emits joins its trace *)
}

let primary t = t.view mod t.cfg.n
let is_primary t = primary t = t.cfg.id

let payload_cost t payload =
  t.cfg.cost.serialize_per_byte_us *. float_of_int (String.length payload)

(* Creating a UI crosses into the trusted subsystem. *)
let ui_create_cost t = t.cfg.cost.ecall_transition_us +. t.cfg.cost.sign_us
let ui_verify_cost t = t.cfg.cost.verify_us

(* Synthetic always-sampled root for replica-initiated causality (primary
   suspicion, recovery), installed as the current context around the
   initiating call so the cascade it triggers is traceable. *)
let forced_ctx t ~name =
  match Engine.tracer t.engine with
  | None -> None
  | Some tr ->
    let trace = Tracer.fresh_forced_trace tr in
    let at = Engine.now t.engine in
    let id =
      Tracer.open_span tr ~trace ~name ~cat:"replica.forced" ~pid:t.cfg.id
        ~tid:"core" ~at ()
    in
    Tracer.finish tr id ~at;
    Some { Trace_ctx.trace; span = id; forced = true }

(* MinBFT wire messages carry the same backward-compatible trace trailer
   the shared [Message] codec uses, with the same exact-parse fallback
   against magic-tail collisions in legacy payloads. *)
let decode_mmsg_traced payload =
  match Trace_ctx.strip payload with
  | body, (Some _ as ctx) -> (
    match Mmsg.decode body with
    | Ok m -> Ok (m, ctx)
    | Error _ -> (
      match Mmsg.decode payload with Ok m -> Ok (m, None) | Error e -> Error e))
  | _, None -> (
    match Mmsg.decode payload with Ok m -> Ok (m, None) | Error e -> Error e)

let broadcast t ?ctx ~cost msg =
  let ctx = match ctx with Some _ as c -> c | None -> t.cur_ctx in
  let payload = Trace_ctx.append ctx (Mmsg.encode msg) in
  Resource.Pool.submit t.pool
    ~cost:(cost +. payload_cost t payload)
    (fun () ->
      for j = 0 to t.cfg.n - 1 do
        if j <> t.cfg.id then
          Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst:(Addr.replica j) payload
      done)

let send_reply t ?ctx (reply : Message.reply) =
  let ctx = match ctx with Some _ as c -> c | None -> t.cur_ctx in
  let payload = Message.encode_traced ?ctx (Message.Reply reply) in
  Resource.Pool.submit t.pool
    ~cost:(t.cfg.cost.reply_auth_us +. payload_cost t payload)
    (fun () -> Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst:(Addr.client reply.client) payload)

(* Re-armed on progress so a loaded-but-progressing replica never
   suspects its primary. *)
let refresh_suspect_timer t =
  if Hashtbl.length t.awaiting = 0 then Timer.stop t.suspect_timer
  else Timer.restart t.suspect_timer

let make_reply t ~(req : Message.request) ~result : Message.reply =
  let rp =
    { Message.view = t.view;
      timestamp = req.timestamp;
      client = req.client;
      sender = t.cfg.id;
      result;
      r_auth = "" }
  in
  let key =
    Keys.client_replica_key ~protocol:protocol_name ~client:req.client ~replica:t.cfg.id
  in
  { rp with r_auth = Hmac.mac ~key (Message.reply_auth_bytes rp) }

(* ----- execution ----- *)

let rec try_execute t =
  (* While recovering, the normal path must not execute: a freshly admitted
     entry could jump ahead of gap entries still being state-transferred,
     misaligning execution indices across replicas. *)
  if t.recovering then ()
  else
  let entries = List.rev t.order in
  let rec loop i = function
    | [] -> ()
    | (e : entry) :: rest ->
      if i < t.executed_upto then loop (i + 1) rest
      else if (not e.e_executed) && Quorum.count e.e_attesters >= t.f + 1
      then begin
        e.e_executed <- true;
        t.executed_upto <- i + 1;
        t.last_exec_counter <- e.e_counter;
        t.exec_index <- t.exec_index + 1;
        t.executed_digests := (Int64.of_int t.exec_index, e.e_digest) :: !(t.executed_digests);
        Hashtbl.replace t.exec_index_at e.e_counter t.exec_index;
        let exec_cost = t.cfg.cost.exec_op_us *. float_of_int (List.length e.e_batch) in
        let replies = ref [] in
        List.iter
          (fun (req : Message.request) ->
            Hashtbl.remove t.awaiting (req.client, req.timestamp);
            if not (Client_table.executed t.clients req.client req.timestamp) then begin
              let result =
                match t.byz with
                | Corrupt_execution -> "CORRUPT"
                | Honest | Faulty_tee_equivocate | Mute_commits ->
                  t.app.State_machine.apply req.payload
              in
              let reply = make_reply t ~req ~result in
              Client_table.record t.clients req.client req.timestamp (Some reply);
              replies := reply :: !replies;
              t.executed_total <- t.executed_total + 1
            end)
          e.e_batch;
        refresh_suspect_timer t;
        let outgoing = List.rev !replies in
        (* The closure runs after the handler returns; pin its trace context
           now so replies still join the committing message's trace. *)
        let ctx = t.cur_ctx in
        Resource.submit t.core ~cost:exec_cost (fun () ->
            List.iter (send_reply t ?ctx) outgoing);
        maybe_checkpoint t e.e_counter;
        loop (i + 1) rest
      end
  in
  loop 0 entries

and maybe_checkpoint t counter =
  if t.executed_upto mod t.cfg.checkpoint_interval = 0 then begin
    let snapshot = t.app.State_machine.snapshot () in
    let state_digest = Sha256.digest snapshot in
    (* Cache the snapshot so a Statereply can serve bytes matching the
       certified digest. *)
    Hashtbl.replace t.snapshots counter snapshot;
    let unsigned =
      { Mmsg.k_counter = counter;
        k_state_digest = state_digest;
        k_sender = t.cfg.id;
        k_ui = { Usig.counter = 0L; cert = "" } }
    in
    let k_ui = Usig.create_ui t.usig (Mmsg.signed_part (Mmsg.Checkpoint unsigned)) in
    let signed = { unsigned with Mmsg.k_ui } in
    (* Our own vote joins the certificate so a stable proof can be
       assembled from f+1 UI-signed checkpoints including ours. *)
    ignore (Votes.add t.checkpoints ~key:counter ~sender:t.cfg.id signed);
    broadcast t ~cost:(ui_create_cost t) (Mmsg.Checkpoint signed);
    seal_checkpoint_state t ~counter ~snapshot
  end

(* ----- rollback-protected sealed checkpoints ----- *)

and encode_recovery_image t ~counter ~snapshot =
  W.to_string
    (fun w () ->
      W.u64 w counter;
      W.varint w t.view;
      W.varint w t.exec_index;
      W.u64 w t.last_exec_counter;
      W.bytes w snapshot;
      W.list w
        (fun w (i, d) ->
          W.u64 w i;
          W.bytes w d)
        !(t.executed_digests))
    ()

(* Each seal bumps the platform's monotonic counter and binds the new value
   into the image — the same rollback defense as the SplitBFT compartments,
   for the comparison rows. *)
and seal_checkpoint_state t ~counter:_ ~snapshot =
  let seal_counter = Platform.counter_increment t.platform "ckpt" in
  let sealed =
    Sealing.seal ~key:t.seal_key ~rng:(Platform.rng t.platform)
      (encode_recovery_image t ~counter:seal_counter ~snapshot)
  in
  t.persist_log <- ("ckpt:minbft", sealed) :: t.persist_log

let decode_recovery_image s =
  R.parse
    (fun r ->
      let counter = R.u64 r in
      let view = R.varint r in
      let exec_index = R.varint r in
      let last_exec_counter = R.u64 r in
      let snapshot = R.bytes r in
      let executed =
        R.list r (fun r ->
            let i = R.u64 r in
            let d = R.bytes r in
            (i, d))
      in
      (counter, view, exec_index, last_exec_counter, snapshot, executed))
    s

(* ----- prepare / commit ----- *)

let accept_prepare t (p : Mmsg.prepare) =
  let counter = p.p_ui.Usig.counter in
  if not (Hashtbl.mem t.by_counter counter) then begin
    let digest = Message.digest_of_batch p.p_batch in
    let e =
      { e_counter = counter;
        e_digest = digest;
        e_batch = p.p_batch;
        e_attesters = Quorum.create ();
        e_executed = false }
    in
    ignore (Quorum.add e.e_attesters ~sender:(primary t) ());
    Hashtbl.replace t.by_counter counter e;
    t.order <- e :: t.order;
    List.iter
      (fun (req : Message.request) ->
        Hashtbl.replace t.awaiting (req.client, req.timestamp) ())
      p.p_batch;
    refresh_suspect_timer t;
    (* Fold in commits that raced ahead of the prepare. *)
    let raced = Votes.get t.pending_commits counter in
    Votes.remove t.pending_commits counter;
    List.iter
      (fun (c : Mmsg.commit) ->
        if String.equal c.c_digest digest then
          ignore (Quorum.add e.e_attesters ~sender:c.c_sender ()))
      raced;
    if not (is_primary t) then begin
      match t.byz with
      | Mute_commits -> ()
      | Honest | Faulty_tee_equivocate | Corrupt_execution ->
        let commit =
          { Mmsg.c_view = t.view;
            c_primary_counter = counter;
            c_digest = digest;
            c_sender = t.cfg.id;
            c_ui = { Usig.counter = 0L; cert = "" } }
        in
        let signed =
          { commit with c_ui = Usig.create_ui t.usig (Mmsg.signed_part (Mmsg.Commit commit)) }
        in
        ignore (Quorum.add e.e_attesters ~sender:t.cfg.id ());
        broadcast t ~cost:(ui_create_cost t) (Mmsg.Commit signed)
    end;
    try_execute t
  end

let on_commit t (c : Mmsg.commit) =
  if c.c_view = t.view then begin
    match Hashtbl.find_opt t.by_counter c.c_primary_counter with
    | Some e ->
      if String.equal c.c_digest e.e_digest then begin
        ignore (Quorum.add e.e_attesters ~sender:c.c_sender ());
        try_execute t
      end
    | None ->
      ignore (Votes.add t.pending_commits ~key:c.c_primary_counter ~sender:c.c_sender c)
  end

let on_checkpoint t (k : Mmsg.checkpoint) =
  if Votes.add t.checkpoints ~key:k.k_counter ~sender:k.k_sender k then begin
    let all = Votes.get t.checkpoints k.k_counter in
    let matching =
      List.filter (fun (e : Mmsg.checkpoint) -> String.equal e.k_state_digest k.k_state_digest) all
    in
    if List.length matching >= t.f + 1 then begin
      (* Keep the newest f+1 certificate around: it is the proof served to
         recovering replicas alongside the matching snapshot. *)
      (match t.stable_proof with
      | Some (c, _, _) when Int64.compare c k.k_counter >= 0 -> ()
      | Some _ | None ->
        t.stable_proof <- Some (k.k_counter, k.k_state_digest, matching);
        Hashtbl.iter
          (fun c _ ->
            if Int64.compare c k.k_counter < 0 then Hashtbl.remove t.snapshots c)
          (Hashtbl.copy t.snapshots);
        Hashtbl.iter
          (fun c _ ->
            if Int64.compare c k.k_counter < 0 then Hashtbl.remove t.exec_index_at c)
          (Hashtbl.copy t.exec_index_at));
      (* Stable: trim executed entries below the checkpoint. *)
      t.order <-
        List.filter
          (fun (e : entry) ->
            (not e.e_executed) || Int64.compare e.e_counter k.k_counter > 0)
          t.order;
      let removed = Hashtbl.length t.by_counter in
      Hashtbl.iter
        (fun counter (e : entry) ->
          if e.e_executed && Int64.compare counter k.k_counter <= 0 then
            Hashtbl.remove t.by_counter counter)
        (Hashtbl.copy t.by_counter);
      ignore removed;
      t.executed_upto <- List.length (List.filter (fun e -> e.e_executed) t.order)
    end
  end

(* ----- batching (primary) ----- *)

let rec flush_batch t =
  if is_primary t && t.pending_count > 0 then begin
    let take = min t.cfg.batch_size t.pending_count in
    let all = List.rev t.pending in
    let rec split i acc rest =
      if i = 0 then (List.rev acc, rest)
      else match rest with [] -> (List.rev acc, []) | x :: tl -> split (i - 1) (x :: acc) tl
    in
    let batch, remaining = split take [] all in
    t.pending <- List.rev remaining;
    t.pending_count <- t.pending_count - take;
    let make reqs =
      let unsigned = { Mmsg.p_view = t.view; p_batch = reqs; p_ui = { Usig.counter = 0L; cert = "" } } in
      { unsigned with
        Mmsg.p_ui = Usig.create_ui t.usig (Mmsg.signed_part (Mmsg.Prepare unsigned)) }
    in
    (match t.byz with
    | Faulty_tee_equivocate when List.length batch > 0 ->
      (* Compromised USIG: assign the same counter to two conflicting
         Prepares and show each to half the backups. *)
      let p_a = make batch in
      let tampered =
        match batch with
        | [] -> []
        | first :: rest -> { first with Message.payload = first.payload ^ "\x00evil" } :: rest
      in
      Usig.tamper_set t.usig (Int64.sub p_a.Mmsg.p_ui.Usig.counter 1L);
      let p_b = make tampered in
      let pay_a = Mmsg.encode (Mmsg.Prepare p_a) in
      let pay_b = Mmsg.encode (Mmsg.Prepare p_b) in
      Resource.Pool.submit t.pool ~cost:(2.0 *. ui_create_cost t) (fun () ->
          for j = 0 to t.cfg.n - 1 do
            if j <> t.cfg.id then
              Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst:(Addr.replica j)
                (if j mod 2 = 1 then pay_a else pay_b)
          done)
    | Honest | Faulty_tee_equivocate | Mute_commits | Corrupt_execution ->
      let p = make batch in
      accept_prepare t p;
      broadcast t ~cost:(ui_create_cost t) (Mmsg.Prepare p));
    if t.pending_count >= t.cfg.batch_size then flush_batch t
    else if t.pending_count > 0 then Timer.start t.batch_timer
    else Timer.stop t.batch_timer
  end

(* ----- view change (simplified; see DESIGN.md) ----- *)

let enter_view t v =
  if v > t.view then begin
    t.view <- v;
    t.order <- List.filter (fun (e : entry) -> e.e_executed) t.order;
    Votes.reset t.pending_commits;
    t.executed_upto <- List.length t.order;
    refresh_suspect_timer t;
    if is_primary t then begin
      let nv = { Mmsg.n_view = v; n_sender = t.cfg.id; n_ui = { Usig.counter = 0L; cert = "" } } in
      let nv = { nv with Mmsg.n_ui = Usig.create_ui t.usig (Mmsg.signed_part (Mmsg.Newview nv)) } in
      broadcast t ~cost:(ui_create_cost t) (Mmsg.Newview nv);
      flush_batch t
    end
  end

let on_viewchange t (v : Mmsg.viewchange) =
  if Votes.add t.viewchanges ~key:v.v_new_view ~sender:v.v_sender () then begin
    if v.v_new_view > t.view && Votes.count t.viewchanges v.v_new_view >= t.f + 1 then
      enter_view t v.v_new_view
  end

let start_view_change t =
  let target = t.view + 1 in
  let vc = { Mmsg.v_new_view = target; v_sender = t.cfg.id; v_ui = { Usig.counter = 0L; cert = "" } } in
  let vc = { vc with Mmsg.v_ui = Usig.create_ui t.usig (Mmsg.signed_part (Mmsg.Viewchange vc)) } in
  ignore (Votes.add t.viewchanges ~key:target ~sender:t.cfg.id ());
  broadcast t ~cost:(ui_create_cost t) (Mmsg.Viewchange vc)

(* ----- requests ----- *)

let resend_cached_reply t (r : Message.request) =
  match Client_table.cached_reply t.clients r.client r.timestamp with
  | Some reply -> send_reply t reply
  | None -> ()

let request_auth_ok (r : Message.request) ~replica =
  Keys.check_authenticator ~protocol:protocol_name ~client:r.client ~replica
    ~msg:(Message.request_auth_bytes r) ~auth:r.auth

let on_request t (r : Message.request) =
  if Client_table.executed t.clients r.client r.timestamp then resend_cached_reply t r
  else begin
    Hashtbl.replace t.awaiting (r.client, r.timestamp) ();
    refresh_suspect_timer t;
    if is_primary t then begin
      let queued =
        List.exists
          (fun (q : Message.request) -> q.client = r.client && q.timestamp = r.timestamp)
          t.pending
      in
      let ordered =
        Hashtbl.fold
          (fun _ (e : entry) acc ->
            acc
            || List.exists
                 (fun (q : Message.request) ->
                   q.client = r.client && q.timestamp = r.timestamp)
                 e.e_batch)
          t.by_counter false
      in
      if not (queued || ordered) then begin
        t.pending <- r :: t.pending;
        t.pending_count <- t.pending_count + 1;
        if t.pending_count >= t.cfg.batch_size then flush_batch t
        else Timer.start t.batch_timer
      end
    end
  end

(* ----- dispatch with per-sender counter windows ----- *)

let sender_of t (msg : Mmsg.t) =
  match msg with
  | Mmsg.Prepare p -> p.Mmsg.p_view mod t.cfg.n
  | _ -> Mmsg.sender msg

let handle t (msg : Mmsg.t) =
  match msg with
  | Mmsg.Prepare p ->
    if p.p_view = t.view && not (is_primary t) then accept_prepare t p
  | Mmsg.Commit c -> on_commit t c
  | Mmsg.Checkpoint k -> on_checkpoint t k
  | Mmsg.Viewchange v -> on_viewchange t v
  | Mmsg.Newview n -> if n.n_view > t.view then enter_view t n.n_view
  | Mmsg.Statereq _ | Mmsg.Statereply _ -> ()
  (* dispatched around the USIG path in [on_payload]; never reach here *)

(* Process each sender's stream strictly in counter order; this is what
   makes the USIG's non-equivocation guarantee effective. *)
let rec admit t sender (msg : Mmsg.t) =
  let counter = (Mmsg.ui msg).Usig.counter in
  match Usig.Window.admit t.windows.(sender) counter with
  | `Next ->
    handle t msg;
    drain_holdback t sender
  | `Future -> Hashtbl.replace t.holdback (sender, counter) msg
  | `Seen -> ()  (* replayed or rolled-back identifier *)

and drain_holdback t sender =
  let next = Int64.add (Usig.Window.last t.windows.(sender)) 1L in
  match Hashtbl.find_opt t.holdback (sender, next) with
  | Some msg ->
    Hashtbl.remove t.holdback (sender, next);
    admit t sender msg
  | None -> ()

(* ----- state transfer (crash-recovery) ----- *)

let request_state t =
  t.cur_ctx <- forced_ctx t ~name:"recovery";
  broadcast t ~cost:0.0 (Mmsg.Statereq { Mmsg.q_requester = t.cfg.id });
  t.cur_ctx <- None

(* Serve our checkpoint proof + snapshot + executed suffix to a recovering
   peer.  The snapshot is only offered when its digest matches the stable
   certificate and we know our execution index at that point — otherwise
   the requester recovers from suffix entries alone. *)
let on_state_request t (q : Mmsg.state_request) =
  if q.q_requester <> t.cfg.id && (not t.recovering)
     && q.q_requester >= 0 && q.q_requester < t.cfg.n
  then begin
    let proof, stable_counter, snapshot, exec_prefix =
      match t.stable_proof with
      | Some (counter, digest, proof) -> (
        match (Hashtbl.find_opt t.snapshots counter, Hashtbl.find_opt t.exec_index_at counter) with
        | Some snap, Some prefix when String.equal (Sha256.digest snap) digest ->
          (proof, counter, snap, prefix)
        | _ -> ([], 0L, "", 0))
      | None -> ([], 0L, "", 0)
    in
    let entries =
      List.rev t.order
      |> List.filter (fun (e : entry) ->
             e.e_executed && Int64.compare e.e_counter stable_counter > 0)
      |> List.map (fun (e : entry) ->
             { Mmsg.t_counter = e.e_counter; t_digest = e.e_digest; t_batch = e.e_batch })
    in
    let windows =
      Array.to_list (Array.mapi (fun i w -> (i, Usig.Window.last w)) t.windows)
    in
    let reply =
      { Mmsg.s_replier = t.cfg.id;
        s_requester = q.q_requester;
        s_view = t.view;
        s_proof = proof;
        s_stable_counter = stable_counter;
        s_snapshot = snapshot;
        s_exec_prefix = exec_prefix;
        s_entries = entries;
        s_windows = windows }
    in
    let payload = Mmsg.encode (Mmsg.Statereply reply) in
    Resource.Pool.submit t.pool ~cost:(payload_cost t payload) (fun () ->
        Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst:(Addr.replica q.q_requester) payload)
  end

(* Keep [order] sorted newest-counter-first when recovery inserts below the
   live head. *)
let rec insert_sorted (e : entry) = function
  | [] -> [ e ]
  | (x : entry) :: rest as l ->
    if Int64.compare e.e_counter x.e_counter >= 0 then e :: l
    else x :: insert_sorted e rest

(* Apply a state-transferred entry: advances the execution index exactly as
   the live path would, so indices stay aligned with the rest of the
   cluster.  No client replies — peers already answered these requests. *)
let install_entry t ~counter ~digest ~(batch : Message.request list) =
  t.last_exec_counter <- counter;
  t.exec_index <- t.exec_index + 1;
  t.executed_digests := (Int64.of_int t.exec_index, digest) :: !(t.executed_digests);
  Hashtbl.replace t.exec_index_at counter t.exec_index;
  List.iter
    (fun (req : Message.request) ->
      Hashtbl.remove t.awaiting (req.client, req.timestamp);
      if not (Client_table.executed t.clients req.client req.timestamp) then begin
        ignore (t.app.State_machine.apply req.payload);
        Client_table.record t.clients req.client req.timestamp None;
        t.executed_total <- t.executed_total + 1
      end)
    batch;
  match Hashtbl.find_opt t.by_counter counter with
  | Some e -> e.e_executed <- true
  | None ->
    let e =
      { e_counter = counter;
        e_digest = digest;
        e_batch = batch;
        e_attesters = Quorum.create ();
        e_executed = true }
    in
    Hashtbl.replace t.by_counter counter e;
    t.order <- insert_sorted e t.order

let finish_recovery_if_caught_up t =
  if t.recovering && List.length t.sync_replies >= t.f + 1 then begin
    let heads =
      List.sort (fun a b -> Int64.compare b a) (List.map (fun (_, h, _) -> h) t.sync_replies)
    in
    (* f+1 repliers vouch for at least this head, so one of them is honest:
       reaching it means we hold the full executed prefix. *)
    let target = List.nth heads t.f in
    if Int64.compare t.last_exec_counter target >= 0 then begin
      let views =
        List.sort (fun a b -> Int.compare b a) (List.map (fun (_, _, v) -> v) t.sync_replies)
      in
      let v = List.nth views t.f in
      if v > t.view then t.view <- v;
      t.recovering <- false;
      t.recovered_count <- t.recovered_count + 1;
      t.sync_replies <- [];
      Votes.reset t.sync_votes;
      Timer.stop t.recovery_timer;
      (* Re-derive the executed prefix length over the rebuilt order. *)
      let rec prefix n = function
        | (e : entry) :: rest when e.e_executed -> prefix (n + 1) rest
        | _ -> n
      in
      t.executed_upto <- prefix 0 (List.rev t.order);
      for s = 0 to t.cfg.n - 1 do
        if s <> t.cfg.id then drain_holdback t s
      done;
      refresh_suspect_timer t;
      try_execute t
    end
  end

let on_state_reply t (s : Mmsg.state_reply) =
  if t.recovering && s.s_requester = t.cfg.id && s.s_replier <> t.cfg.id
     && s.s_replier >= 0 && s.s_replier < t.cfg.n
  then begin
    (* 1. Snapshot install, when the f+1 UI-signed certificate checks out
       and it extends what the sealed checkpoint restored. *)
    if Int64.compare s.s_stable_counter t.last_exec_counter > 0 then begin
      let digest = Sha256.digest s.s_snapshot in
      let matching =
        List.filter
          (fun (k : Mmsg.checkpoint) ->
            Int64.equal k.k_counter s.s_stable_counter
            && String.equal k.k_state_digest digest)
          s.s_proof
      in
      let senders =
        List.sort_uniq compare (List.map (fun (k : Mmsg.checkpoint) -> k.k_sender) matching)
      in
      let certified =
        List.length senders >= t.f + 1
        && List.for_all
             (fun (k : Mmsg.checkpoint) ->
               Usig.verify_ui ~id:k.k_sender
                 ~msg:(Mmsg.signed_part (Mmsg.Checkpoint k))
                 k.k_ui)
             matching
      in
      if certified then
        match t.app.State_machine.restore s.s_snapshot with
        | Error _ -> ()
        | Ok () ->
          t.last_exec_counter <- s.s_stable_counter;
          t.exec_index <- s.s_exec_prefix;
          t.order <-
            List.filter
              (fun (e : entry) -> Int64.compare e.e_counter s.s_stable_counter > 0)
              t.order;
          Hashtbl.iter
            (fun c _ ->
              if Int64.compare c s.s_stable_counter <= 0 then Hashtbl.remove t.by_counter c)
            (Hashtbl.copy t.by_counter)
    end;
    (* 2. Vote in suffix entries — content-addressed, so a single reply's
       bytes are trusted only once f+1 distinct repliers vouch for the
       digest.  Each reply lists entries counter-ascending, so installs
       happen in order. *)
    List.iter
      (fun (e : Mmsg.state_entry) ->
        if String.equal e.t_digest (Message.digest_of_batch e.t_batch) then begin
          ignore
            (Votes.add t.sync_votes ~key:e.t_counter ~sender:s.s_replier
               (e.t_digest, e.t_batch));
          if Int64.compare e.t_counter t.last_exec_counter > 0 then begin
            let votes = Votes.get t.sync_votes e.t_counter in
            let agreeing = List.filter (fun (d, _) -> String.equal d e.t_digest) votes in
            if List.length agreeing >= t.f + 1 then
              install_entry t ~counter:e.t_counter ~digest:e.t_digest ~batch:e.t_batch
          end
        end)
      s.s_entries;
    (* 3. Fast-forward per-sender windows past counters the transfer covers
       (forward-only, so a lying replier can cost liveness, never safety). *)
    List.iter
      (fun (i, c) ->
        if i >= 0 && i < t.cfg.n && i <> t.cfg.id then
          Usig.Window.fast_forward t.windows.(i) c)
      s.s_windows;
    (* 4. One live slot per replier: a retry round's reply supersedes. *)
    let head =
      List.fold_left
        (fun acc (e : Mmsg.state_entry) ->
          if Int64.compare e.t_counter acc > 0 then e.t_counter else acc)
        s.s_stable_counter s.s_entries
    in
    t.sync_replies <-
      (s.s_replier, head, s.s_view)
      :: List.filter (fun (r, _, _) -> r <> s.s_replier) t.sync_replies;
    finish_recovery_if_caught_up t
  end

let mmsg_name = function
  | Mmsg.Prepare _ -> "prepare"
  | Mmsg.Commit _ -> "commit"
  | Mmsg.Checkpoint _ -> "checkpoint"
  | Mmsg.Viewchange _ -> "viewchange"
  | Mmsg.Newview _ -> "newview"
  | Mmsg.Statereq _ -> "statereq"
  | Mmsg.Statereply _ -> "statereply"

(* Handling span, opened when the core picks the message up (back-dated to
   its arrival so verification time is covered) and installed as the
   current context for whatever the handler emits. *)
let open_handle_span t ctx ~name ~crypto ~serialize ~at =
  match (Engine.tracer t.engine, ctx) with
  | Some tr, Some { Trace_ctx.trace; span; forced } ->
    let id =
      Tracer.open_span tr ~parent:span ~trace
        ~name:(protocol_name ^ ":" ^ name) ~cat:"replica" ~pid:t.cfg.id
        ~tid:"core" ~at ()
    in
    Tracer.add_arg tr id "crypto_us" crypto;
    Tracer.add_arg tr id "serialize_us" serialize;
    Tracer.add_arg tr id "core_us" t.cfg.cost.pbft_core_us;
    t.cur_ctx <- Some { Trace_ctx.trace; span = id; forced };
    Some (tr, id)
  | _ ->
    t.cur_ctx <- ctx;
    None

let close_handle_span t sp =
  t.cur_ctx <- None;
  match sp with
  | Some (tr, id) -> Tracer.finish tr id ~at:(Engine.now t.engine)
  | None -> ()

let on_payload t ~src:_ payload =
  if not t.crashed then begin
    (* Deferred closures only run if the replica is still in the same
       incarnation — work queued before a crash must not fire afterwards. *)
    let epoch = t.epoch in
    let live () = t.epoch = epoch && not t.crashed in
    let received = Engine.now t.engine in
    if Mmsg.is_minbft_payload payload then begin
      match decode_mmsg_traced payload with
      | Error _ -> ()
      | Ok (msg, tctx) ->
        let sender = sender_of t msg in
        (match msg with
        | Mmsg.Statereq _ | Mmsg.Statereply _ ->
          (* No UI of their own; certificates inside a Statereply are
             checked by [on_state_reply]. *)
          if sender >= 0 && sender < t.cfg.n && sender <> t.cfg.id then
            Resource.Pool.submit t.pool ~cost:(payload_cost t payload) (fun () ->
                if live () then
                  Resource.submit t.core ~cost:t.cfg.cost.pbft_core_us (fun () ->
                      if live () then begin
                        let sp =
                          open_handle_span t tctx ~name:(mmsg_name msg)
                            ~crypto:0.0 ~serialize:(payload_cost t payload)
                            ~at:received
                        in
                        (match msg with
                        | Mmsg.Statereq q -> on_state_request t q
                        | Mmsg.Statereply s -> on_state_reply t s
                        | _ -> ());
                        close_handle_span t sp
                      end))
        | _ ->
          if sender >= 0 && sender < t.cfg.n && sender <> t.cfg.id then
            Resource.Pool.submit t.pool
              ~cost:(ui_verify_cost t +. payload_cost t payload)
              (fun () ->
                if
                  live ()
                  && Usig.verify_ui ~id:sender ~msg:(Mmsg.signed_part msg) (Mmsg.ui msg)
                then
                  Resource.submit t.core ~cost:t.cfg.cost.pbft_core_us (fun () ->
                      if live () then begin
                        let sp =
                          open_handle_span t tctx ~name:(mmsg_name msg)
                            ~crypto:(ui_verify_cost t)
                            ~serialize:(payload_cost t payload) ~at:received
                        in
                        admit t sender msg;
                        close_handle_span t sp
                      end)))
    end
    else
      match Message.decode_traced payload with
      | Ok (Message.Request r, tctx) ->
        Resource.Pool.submit t.pool
          ~cost:(t.cfg.cost.client_auth_us +. payload_cost t payload)
          (fun () ->
            if live () && request_auth_ok r ~replica:t.cfg.id then
              Resource.submit t.core ~cost:t.cfg.cost.pbft_core_us (fun () ->
                  if live () then begin
                    let sp =
                      open_handle_span t tctx ~name:"request"
                        ~crypto:t.cfg.cost.client_auth_us
                        ~serialize:(payload_cost t payload) ~at:received
                    in
                    on_request t r;
                    close_handle_span t sp
                  end))
      | Ok _ | Error _ -> ()
  end

(* ----- construction ----- *)

let measurement =
  Measurement.of_source ~name:"minbft-replica" ~version:"1"
    ~code:"baseline minbft replica checkpoint state"

let create engine net cfg ~app =
  if cfg.n < 3 then invalid_arg "Minbft.Replica.create: need n >= 3";
  let platform = Platform.create engine ~id:cfg.id in
  let rec t =
    lazy
      { cfg;
        f = Ids.f_of_n_hybrid cfg.n;
        engine;
        net;
        pool =
          Resource.Pool.create engine
            ~name:(Printf.sprintf "minbft%d-pool" cfg.id)
            ~workers:cfg.workers;
        core = Resource.create engine ~name:(Printf.sprintf "minbft%d-core" cfg.id);
        usig = Usig.create ~id:cfg.id;
        app;
        view = 0;
        windows = Array.init cfg.n (fun _ -> Usig.Window.create ());
        holdback = Hashtbl.create 64;
        order = [];
        by_counter = Hashtbl.create 256;
        pending_commits = Votes.create ();
        executed_upto = 0;
        last_exec_counter = 0L;
        exec_index = 0;
        executed_digests = ref [];
        checkpoints = Votes.create ();
        clients = Client_table.create ();
        pending = [];
        pending_count = 0;
        batch_timer =
          Timer.create engine
            ~label:(Printf.sprintf "minbft%d-batch" cfg.id)
            ~delay:cfg.batch_timeout_us
            ~callback:(fun () -> flush_batch (Lazy.force t));
        awaiting = Hashtbl.create 64;
        suspect_timer =
          Timer.create engine
            ~label:(Printf.sprintf "minbft%d-suspect" cfg.id)
            ~delay:cfg.suspect_timeout_us
            ~callback:
              (fun () ->
              let t = Lazy.force t in
              if Hashtbl.length t.awaiting > 0 then begin
                t.cur_ctx <- forced_ctx t ~name:"suspect";
                start_view_change t;
                t.cur_ctx <- None;
                Timer.restart t.suspect_timer
              end);
        viewchanges = Votes.create ();
        crashed = false;
        epoch = 0;
        byz = Honest;
        executed_total = 0;
        platform;
        seal_key = Platform.sealing_key platform measurement;
        initial_snapshot = app.State_machine.snapshot ();
        persist_log = [];
        snapshots = Hashtbl.create 8;
        exec_index_at = Hashtbl.create 64;
        stable_proof = None;
        sync_votes = Votes.create ();
        sync_replies = [];
        recovering = false;
        recovered_count = 0;
        alerts = [];
        recovery_timer =
          Timer.create engine
            ~label:(Printf.sprintf "minbft%d-recovery" cfg.id)
            ~delay:cfg.recovery_retry_us
            ~callback:
              (fun () ->
              let t = Lazy.force t in
              (* Commits in flight during the crash are gone for good, so a
                 single request round can leave a gap; keep asking until the
                 vouched head is reached. *)
              if t.recovering && not t.crashed then begin
                request_state t;
                Timer.restart t.recovery_timer
              end);
        cur_ctx = None }
  in
  let t = Lazy.force t in
  Network.register net (Addr.replica cfg.id) (fun ~src payload -> on_payload t ~src payload);
  t

let id t = t.cfg.id
let view t = t.view
let executed_count t = t.executed_total
let last_executed_counter t = t.last_exec_counter
let executed_log t = List.rev !(t.executed_digests)
let app_digest t = State_machine.digest t.app

(* Crash quiesces: bump the incarnation so deferred pool/core work is
   dropped, silence every timer, and clear in-flight request state.  Only
   [persist_log] (disk), the platform (hardware counters, sealing secret)
   and the USIG (trusted, persistent) survive. *)
let crash t =
  t.crashed <- true;
  t.epoch <- t.epoch + 1;
  Timer.stop t.batch_timer;
  Timer.stop t.suspect_timer;
  Timer.stop t.recovery_timer;
  t.pending <- [];
  t.pending_count <- 0;
  Hashtbl.reset t.awaiting;
  t.recovering <- false;
  Network.unregister t.net (Addr.replica t.cfg.id)

let is_crashed t = t.crashed
let set_byzantine t mode = t.byz <- mode

(* ----- restart with rollback-protected recovery ----- *)

let refuse t reason = t.alerts <- reason :: t.alerts

let restart t =
  if t.crashed then begin
    (* The process image is gone: wipe all volatile state back to genesis
       before consulting the sealed checkpoint. *)
    t.epoch <- t.epoch + 1;
    t.view <- 0;
    Array.iteri (fun i _ -> t.windows.(i) <- Usig.Window.create ()) t.windows;
    Hashtbl.reset t.holdback;
    t.order <- [];
    Hashtbl.reset t.by_counter;
    Votes.reset t.pending_commits;
    t.executed_upto <- 0;
    t.last_exec_counter <- 0L;
    t.exec_index <- 0;
    t.executed_digests := [];
    Votes.reset t.checkpoints;
    (* A stale reply cache would make re-execution skip operations the
       snapshot does not cover, so the client table starts fresh too. *)
    t.clients <- Client_table.create ();
    t.pending <- [];
    t.pending_count <- 0;
    Hashtbl.reset t.awaiting;
    Votes.reset t.viewchanges;
    Hashtbl.reset t.snapshots;
    Hashtbl.reset t.exec_index_at;
    t.stable_proof <- None;
    Votes.reset t.sync_votes;
    t.sync_replies <- [];
    t.recovering <- false;
    ignore (t.app.State_machine.restore t.initial_snapshot);
    let counter = Platform.counter_read t.platform "ckpt" in
    let verdict =
      match List.assoc_opt "ckpt:minbft" t.persist_log with
      | None ->
        if Int64.compare counter 0L > 0 then
          Error
            (Printf.sprintf
               "minbft: rollback detected — counter at %Ld but no sealed checkpoint on disk"
               counter)
        else Ok None
      | Some sealed -> (
        match Sealing.unseal ~key:t.seal_key sealed with
        | Error e -> Error ("minbft: sealed checkpoint rejected: " ^ e)
        | Ok image -> (
          match decode_recovery_image image with
          | Error e -> Error ("minbft: sealed checkpoint undecodable: " ^ e)
          | Ok (sealed_counter, view, exec_index, last_exec_counter, snapshot, executed) ->
            if Int64.compare sealed_counter counter <> 0 then
              Error
                (Printf.sprintf
                   "minbft: rollback detected — sealed checkpoint bound to counter %Ld, \
                    platform counter is %Ld"
                   sealed_counter counter)
            else (
              match t.app.State_machine.restore snapshot with
              | Error e -> Error ("minbft: sealed snapshot rejected by application: " ^ e)
              | Ok () -> Ok (Some (view, exec_index, last_exec_counter, executed)))))
    in
    match verdict with
    | Error reason -> refuse t reason (* refuse loudly and stay down *)
    | Ok restored ->
      (match restored with
      | None -> ()
      | Some (view, exec_index, last_exec_counter, executed) ->
        t.view <- view;
        t.exec_index <- exec_index;
        t.last_exec_counter <- last_exec_counter;
        t.executed_digests := executed);
      t.crashed <- false;
      t.recovering <- true;
      Network.register t.net (Addr.replica t.cfg.id) (fun ~src payload ->
          on_payload t ~src payload);
      request_state t;
      Timer.restart t.recovery_timer
  end

let is_recovering t = t.recovering
let recovered t = t.recovered_count > 0 && not t.recovering
let recovery_alerts t = List.rev t.alerts
let persisted t = List.rev t.persist_log
let tamper_counter t name = Platform.counter_tamper_reset t.platform name
