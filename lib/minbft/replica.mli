(** MinBFT replica (Veronese et al.) — the hybrid-protocol comparison
    point of Table 1.

    [n = 2f + 1] replicas; the trusted {!Usig} rules out equivocation, so
    two phases (Prepare from the primary, Commit from backups) and [f + 1]
    matching attestations decide a batch.  Normal operation, request
    batching, reply caching, periodic checkpoints, and a simplified
    suspicion-triggered view change are implemented (the full MinBFT view
    change with state certificates is out of scope; see DESIGN.md).

    The fault-model experiments use {!set_byzantine}: in particular
    [Faulty_tee_equivocate] compromises the USIG (counter rollback) and
    shows that a {e single} faulty TEE breaks a hybrid protocol's safety —
    the row of Table 1 SplitBFT improves on. *)

module Ids = Splitbft_types.Ids

type config = {
  n : int;  (** [2f + 1] *)
  id : Ids.replica_id;
  cost : Splitbft_tee.Cost_model.t;
  workers : int;
  batch_size : int;
  batch_timeout_us : float;
  checkpoint_interval : int;
  suspect_timeout_us : float;
  recovery_retry_us : float;
      (** while recovering, re-broadcast the state request at this period —
          commits in flight during the crash are lost, so one round can
          leave a gap below the vouched head *)
}

val default_config : n:int -> id:Ids.replica_id -> config

type byzantine_mode =
  | Honest
  | Faulty_tee_equivocate
      (** primary with a compromised USIG: same counter on two conflicting
          Prepares sent to disjoint backup sets *)
  | Mute_commits
  | Corrupt_execution

type t

val create :
  Splitbft_sim.Engine.t ->
  Splitbft_sim.Network.t ->
  config ->
  app:Splitbft_app.State_machine.t ->
  t

val id : t -> Ids.replica_id
val view : t -> Ids.view
val executed_count : t -> int
val last_executed_counter : t -> int64
val executed_log : t -> (int64 * string) list
(** (primary counter, batch digest), oldest first. *)

val app_digest : t -> string

val crash : t -> unit
(** Quiesce: bump the incarnation (dropping deferred work), stop all
    timers, clear in-flight request state, leave the network.  The sealed
    checkpoint log, the platform counters, and the USIG survive. *)

val is_crashed : t -> bool
val set_byzantine : t -> byzantine_mode -> unit

val restart : t -> unit
(** Wipe volatile state, unseal the last checkpoint, and verify it is bound
    to the current monotonic counter — a mismatch (rollback) is refused
    loudly ({!recovery_alerts}) and the replica stays down.  Otherwise the
    replica rejoins and catches up from peers via state transfer. *)

val is_recovering : t -> bool

val recovered : t -> bool
(** At least one restart completed recovery and none is in progress. *)

val recovery_alerts : t -> string list
(** Rollback/unseal refusals, oldest first. *)

val persisted : t -> (string * string) list
(** Simulated disk (sealed checkpoint blobs), oldest first. *)

val tamper_counter : t -> string -> unit
(** Fault injection: reset the named platform monotonic counter (the
    rollback attack the sealed checkpoints must detect). *)
