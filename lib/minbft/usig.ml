module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader
module Signature = Splitbft_crypto.Signature
module Sha256 = Splitbft_crypto.Sha256

type t = {
  id : int;
  keypair : Signature.keypair;
  mutable next : int64;
}

type ui = { counter : int64; cert : string }

let key_seed id = Printf.sprintf "minbft-usig-%d" id
let create ~id = { id; keypair = Signature.derive ~seed:(key_seed id); next = 0L }

let cert_bytes ~id ~counter msg =
  W.to_string
    (fun w () ->
      W.raw w "usig";
      W.varint w id;
      W.u64 w counter;
      W.bytes w (Sha256.digest msg))
    ()

let create_ui t msg =
  t.next <- Int64.add t.next 1L;
  { counter = t.next;
    cert = Signature.sign t.keypair.Signature.secret (cert_bytes ~id:t.id ~counter:t.next msg) }

let verify_ui ~id ~msg ui =
  let kp = Signature.derive ~seed:(key_seed id) in
  Signature.verify ~public:kp.Signature.public
    ~msg:(cert_bytes ~id ~counter:ui.counter msg)
    ~signature:ui.cert

let tamper_reset t = t.next <- 0L

let encode_ui ui =
  W.to_string
    (fun w ui ->
      W.u64 w ui.counter;
      W.bytes w ui.cert)
    ui

let decode_ui s =
  R.parse
    (fun r ->
      let counter = R.u64 r in
      let cert = R.bytes r in
      { counter; cert })
    s

module Window = struct
  type w = { mutable last : int64 }

  let create () = { last = 0L }

  let admit w counter =
    let next = Int64.add w.last 1L in
    match Int64.compare counter next with
    | 0 ->
      w.last <- next;
      `Next
    | c when c > 0 -> `Future
    | _ -> `Seen

  let last w = w.last

  (* Recovery: skip the counters covered by a state transfer.  Only moves
     forward — rolling a window back would re-admit replayed identifiers. *)
  let fast_forward w counter = if Int64.compare counter w.last > 0 then w.last <- counter
end

let tamper_set t v = t.next <- v
