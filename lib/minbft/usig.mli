(** USIG — Unique Sequential Identifier Generator (MinBFT's trusted
    subsystem, Veronese et al., IEEE TC 2012).

    The minimal TEE component of hybrid BFT protocols: a monotonic counter
    plus a certificate binding (sender, counter, message hash), preventing
    equivocation and reducing the replication requirement to [2f + 1].
    Hybrid protocols assume this component {e cannot} be byzantine; the
    whole point of SplitBFT's comparison (Table 1) is what happens when
    that assumption fails, so {!tamper_reset} injects exactly that fault:
    a rolled-back counter lets its owner assign the same identifier to two
    different messages. *)

type t
(** The generator (lives inside a TEE on its replica). *)

type ui = { counter : int64; cert : string }

val create : id:int -> t
(** Deterministic identity; certificate key registered for verification. *)

val create_ui : t -> string -> ui
(** Assigns the next counter value to the message (hash). *)

val verify_ui : id:int -> msg:string -> ui -> bool
(** Certificate check only; sequentiality is enforced by the receiver's
    {!Window}. *)

val tamper_reset : t -> unit
(** Fault injection: roll the counter back to zero (impossible on correct
    hardware). *)

val encode_ui : ui -> string
val decode_ui : string -> (ui, string) result

(** Receiver-side sequentiality tracking: accept each sender counter
    exactly once and in order. *)
module Window : sig
  type w

  val create : unit -> w

  val admit : w -> int64 -> [ `Next | `Future | `Seen ]
  (** [`Next] consumes the counter (it must be exactly last+1); [`Future]
      means hold the message back; [`Seen] means replay/rollback. *)

  val last : w -> int64

  val fast_forward : w -> int64 -> unit
  (** Recovery: skip to the given counter (covered by a state transfer);
      never moves backward. *)
end

val tamper_set : t -> int64 -> unit
(** Fault injection: force the counter to an arbitrary value, enabling
    duplicate identifiers (equivocation). *)
