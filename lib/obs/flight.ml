type event = { at : float; host : int; kind : string; detail : string }

type t = {
  cap : int;
  ring : event option array;
  mutable next : int;  (* write cursor = recorded mod cap *)
  mutable total : int;
  mutable listeners : (event -> unit) list;  (* reverse registration order *)
}

let create ?(capacity = 1024) () =
  let cap = max 1 capacity in
  { cap; ring = Array.make cap None; next = 0; total = 0; listeners = [] }

let capacity t = t.cap
let recorded t = t.total
let dropped t = t.total - min t.total t.cap

let record t ~at ~host ~kind ~detail =
  let ev = { at; host; kind; detail } in
  t.ring.(t.next) <- Some ev;
  t.next <- (t.next + 1) mod t.cap;
  t.total <- t.total + 1;
  List.iter (fun f -> f ev) (List.rev t.listeners)

let on_event t f = t.listeners <- f :: t.listeners

let events t =
  let n = min t.total t.cap in
  let start = if t.total <= t.cap then 0 else t.next in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.cap) with
      | Some ev -> ev
      | None -> assert false)

let clear t =
  Array.fill t.ring 0 t.cap None;
  t.next <- 0;
  t.total <- 0

(* ----- artifact ----------------------------------------------------- *)

let header = "splitbft-flight v1"

let flatten s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let to_string t =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" header;
  line "capacity %d" t.cap;
  line "recorded %d" t.total;
  line "dropped %d" (dropped t);
  List.iter
    (fun ev -> line "event %.3f %d %s %s" ev.at ev.host (flatten ev.kind) (flatten ev.detail))
    (events t);
  Buffer.contents b

let ( let* ) = Result.bind

let parse_event_line n rest =
  (* <at> <host> <kind> <detail...>; detail may be empty and may contain
     spaces. *)
  let err () = Error (Printf.sprintf "line %d: bad event %S" n rest) in
  match String.split_on_char ' ' rest with
  | at :: host :: kind :: detail -> (
    match (float_of_string_opt at, int_of_string_opt host) with
    | Some at, Some host when kind <> "" ->
      Ok { at; host; kind; detail = String.concat " " detail }
    | _ -> err ())
  | _ -> err ()

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> not (String.equal l ""))
  in
  match lines with
  | [] -> Error "empty flight artifact"
  | first :: rest when String.equal first header ->
    let rec go n acc = function
      | [] -> Ok (List.rev acc)
      | l :: tl -> (
        match String.index_opt l ' ' with
        | None -> Error (Printf.sprintf "line %d: bad field %S" n l)
        | Some i -> (
          let k = String.sub l 0 i
          and v = String.sub l (i + 1) (String.length l - i - 1) in
          match k with
          | "capacity" | "recorded" | "dropped" -> go (n + 1) acc tl
          | "event" ->
            let* ev = parse_event_line n v in
            go (n + 1) (ev :: acc) tl
          | other -> Error (Printf.sprintf "line %d: unknown field %S" n other)))
    in
    go 2 [] rest
  | first :: _ -> Error (Printf.sprintf "not a flight artifact (header %S)" first)

let save ~path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e
