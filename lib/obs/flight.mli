(** Bounded flight recorder: a ring of recent structured events.

    One recorder rides along a simulation (carried by the engine, like the
    tracer) and components append cheap structured events to it — ecall
    issues, view entries, suspicion transitions, crash/restart/recovery,
    detector alerts, protocol evidence.  The ring is bounded, so a
    week-long run keeps only the most recent [capacity] events; on a
    safety violation, crash or alert the ring is dumped as a replayable
    line-based artifact ("splitbft-flight v1") next to the
    [splitbft-schedule v1] counterexample artifacts.

    Recording is a pure in-memory side effect: no engine events are
    scheduled and no metrics are registered, so a run with a recorder
    attached is byte-identical (metrics, schedules, RNG) to one without. *)

type event = {
  at : float;  (** virtual time, µs *)
  host : int;  (** simulated host address; [-1] = cluster-wide / harness *)
  kind : string;  (** short machine token, no spaces ("ecall", "alert", ...) *)
  detail : string;  (** free-form; newlines are flattened on dump *)
}

type t

val create : ?capacity:int -> unit -> t
(** Fresh recorder keeping the most recent [capacity] (default 1024,
    minimum 1) events. *)

val capacity : t -> int

val record : t -> at:float -> host:int -> kind:string -> detail:string -> unit
(** Appends an event, evicting the oldest when full, and invokes every
    {!on_event} listener with it. *)

val on_event : t -> (event -> unit) -> unit
(** Registers a listener called synchronously on every {!record} (after
    the event is stored).  Listeners fire in registration order. *)

val events : t -> event list
(** Retained events, oldest first. *)

val recorded : t -> int
(** Total events ever recorded (retained + evicted). *)

val dropped : t -> int
(** Events evicted by the ring bound: [recorded - min recorded capacity]. *)

val clear : t -> unit
(** Empties the ring and resets the counters; listeners stay installed. *)

(** {2 Artifact}

    Line-based dump, replay-loadable, mirroring [splitbft-schedule v1]:
    a header line, [capacity]/[recorded]/[dropped] fields, then one
    [event <at> <host> <kind> <detail>] line per retained event, oldest
    first. *)

val header : string
(** ["splitbft-flight v1"]. *)

val to_string : t -> string

val of_string : string -> (event list, string) result
(** Parses a dump back into its retained events (oldest first). *)

val save : path:string -> t -> unit

val load : string -> (event list, string) result
(** Reads and parses the artifact at [path]. *)
