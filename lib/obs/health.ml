type snapshot = { at : float; values : (string, float) Hashtbl.t }

type t = {
  registry : Registry.t;
  window : int;
  mutable snaps : snapshot list;  (* newest first, length <= window *)
}

let create ?(window = 16) registry = { registry; window = max 2 window; snaps = [] }

(* Same key scheme as the registry itself: name + normalized labels,
   rebuilt here because the registry's key function is private. *)
let key name labels =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let buf = Buffer.create 32 in
  Buffer.add_string buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf k;
      Buffer.add_char buf '\x01';
      Buffer.add_string buf v)
    labels;
  Buffer.contents buf

let take n l =
  let rec go acc n = function
    | x :: tl when n > 0 -> go (x :: acc) (n - 1) tl
    | _ -> List.rev acc
  in
  go [] n l

let sample t ~at =
  let values = Hashtbl.create 128 in
  Registry.fold t.registry ~init:() ~f:(fun () ~name ~labels ~kind:_ ~value ->
      Hashtbl.replace values (key name labels) value);
  t.snaps <- take t.window ({ at; values } :: t.snaps)

let samples t = List.length t.snaps

let newest t = match t.snaps with [] -> None | s :: _ -> Some s

let oldest t =
  match t.snaps with
  | [] | [ _ ] -> None
  | _ :: _ -> Some (List.nth t.snaps (List.length t.snaps - 1))

let span_us t =
  match (newest t, oldest t) with
  | Some n, Some o -> Some (n.at -. o.at)
  | _ -> None

let latest t ?(labels = []) name =
  match newest t with
  | None -> None
  | Some s -> Hashtbl.find_opt s.values (key name labels)

let delta t ?(labels = []) name =
  match (newest t, oldest t) with
  | Some n, Some o -> (
    let k = key name labels in
    match (Hashtbl.find_opt n.values k, Hashtbl.find_opt o.values k) with
    | Some nv, Some ov -> Some (nv -. ov)
    (* Registered after the oldest snapshot: it started from zero. *)
    | Some nv, None -> Some nv
    | _ -> None)
  | _ -> None

let per_second t d =
  match span_us t with
  | Some span when span > 0.0 -> Some (d /. span *. 1e6)
  | _ -> None

let rate t ?(labels = []) name =
  match delta t ~labels name with
  | None -> None
  | Some d -> per_second t d

let sum_prefix s ~prefix =
  let plen = String.length prefix in
  Hashtbl.fold
    (fun k v acc ->
      if String.length k >= plen && String.sub k 0 plen = prefix then acc +. v else acc)
    s.values 0.0

let delta_sum t ~prefix =
  match (newest t, oldest t) with
  | Some n, Some o -> Some (sum_prefix n ~prefix -. sum_prefix o ~prefix)
  | _ -> None

let rate_sum t ~prefix =
  match delta_sum t ~prefix with
  | None -> None
  | Some d -> per_second t d
