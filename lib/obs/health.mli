(** Windowed sliding aggregates over a {!Registry}.

    A sampler snapshots every registered metric's [fold]-style value (the
    counter/gauge value, or the observation count for histograms and
    summaries) at caller-chosen instants and keeps the most recent
    [window] snapshots.  Queries compare the newest and oldest retained
    snapshots, giving online windowed rates and deltas without touching
    the metrics themselves — the sampler is a passive reader, it registers
    nothing and perturbs nothing.

    All queries return [None] (never nan) when the window holds too few
    samples or the metric is absent, per the empty-window guard rule. *)

type t

val create : ?window:int -> Registry.t -> t
(** Sampler over [registry] retaining the newest [window] (default 16,
    minimum 2) snapshots. *)

val sample : t -> at:float -> unit
(** Takes a snapshot of every metric at virtual time [at] µs.  Samples
    must be taken with non-decreasing [at]. *)

val samples : t -> int
(** Snapshots currently retained ([<= window]). *)

val span_us : t -> float option
(** Virtual time covered by the retained window (newest [at] - oldest
    [at]); [None] with fewer than two samples. *)

val latest : t -> ?labels:Registry.labels -> string -> float option
(** The metric's value in the newest snapshot. *)

val delta : t -> ?labels:Registry.labels -> string -> float option
(** Newest minus oldest retained value; [None] with fewer than two
    samples or if the metric is missing from either snapshot. *)

val rate : t -> ?labels:Registry.labels -> string -> float option
(** {!delta} per second of virtual time; [None] when {!delta} is [None]
    or the window spans zero time. *)

val delta_sum : t -> prefix:string -> float option
(** Windowed delta of the sum of all metrics whose name starts with
    [prefix] (e.g. every replica's [tee.ecalls]). *)

val rate_sum : t -> prefix:string -> float option
(** {!delta_sum} per second of virtual time. *)
