type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ----- encoding ----- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        encode buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        encode buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  encode buf t;
  Buffer.contents buf

let to_channel oc t = output_string oc (to_string t)

(* ----- parsing ----- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex) with Failure _ -> fail c "bad \\u escape"
        in
        c.pos <- c.pos + 4;
        (* Encode the code point as UTF-8 (snapshots only emit ASCII
           escapes, but accept the full range on re-read). *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end
      | _ -> fail c "bad escape");
      loop ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [ parse_value c ] in
      skip_ws c;
      while peek c = Some ',' do
        advance c;
        items := parse_value c :: !items;
        skip_ws c
      done;
      expect c ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws c;
      while peek c = Some ',' do
        advance c;
        fields := field () :: !fields;
        skip_ws c
      done;
      expect c '}';
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage after document"
    else Ok v
  | exception Parse_error msg -> Error msg

(* ----- comparison / access ----- *)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | Str a, Str b -> String.equal a b
  | List a, List b -> ( try List.for_all2 equal a b with Invalid_argument _ -> false)
  | Obj a, Obj b -> (
    try List.for_all2 (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
    with Invalid_argument _ -> false)
  | _ -> false

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
