(** Minimal hand-rolled JSON tree, encoder and parser (no external
    dependencies, matching the codec-library policy of this repository).

    Only what the metrics snapshots need: the encoder emits compact
    deterministic output (object fields in construction order), and the
    parser accepts any RFC 8259 document — it exists so snapshots can be
    round-tripped in tests and re-read by tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact encoding.  Non-finite floats (nan/inf), which JSON cannot
    represent, encode as [null]. *)

val to_channel : out_channel -> t -> unit

val parse : string -> (t, string) result
(** Parses one JSON document (surrounding whitespace allowed).  Numbers
    with a fraction or exponent decode as [Float], others as [Int]. *)

val equal : t -> t -> bool
(** Structural equality; object field order is significant (snapshots are
    deterministic), [Int n] and [Float f] are equal when [f = float n]. *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks up a field; [None] on missing key or
    non-object. *)
