(* Prometheus exposition built from the documented snapshot schema
   (Registry.to_json: {"schema"; "metrics": [{name; type; labels; ...}]})
   rather than from registry internals, so the exporter exercises the same
   surface external tooling consumes. *)

let sanitize_name name =
  let ok = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false in
  let s = String.map (fun c -> if ok c then c else '_') name in
  if s = "" then "_" else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
    let pairs =
      List.map
        (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value v))
        labels
    in
    "{" ^ String.concat "," pairs ^ "}"

let render_value v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let labels_of_json = function
  | Some (Json.Obj fields) ->
    List.map (fun (k, v) -> (k, match v with Json.Str s -> s | other -> Json.to_string other)) fields
  | _ -> []

let float_of_json = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int n) -> Some (float_of_int n)
  | _ -> None

let of_registry registry =
  let buf = Buffer.create 4096 in
  let typed = Hashtbl.create 32 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  let sample ?(labels = []) name v =
    (* Non-finite values cannot be scraped meaningfully; drop the sample. *)
    if Float.is_finite v then
      Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name (render_labels labels) (render_value v))
  in
  let metrics =
    match Json.member "metrics" (Registry.to_json registry) with
    | Some (Json.List l) -> l
    | _ -> []
  in
  List.iter
    (fun m ->
      let str k = match Json.member k m with Some (Json.Str s) -> Some s | _ -> None in
      match (str "name", str "type") with
      | Some raw_name, Some kind -> (
        let name = sanitize_name raw_name in
        let labels = labels_of_json (Json.member "labels" m) in
        let value () = float_of_json (Json.member "value" m) in
        let count () =
          match Json.member "count" m with Some (Json.Int n) -> Some (float_of_int n) | _ -> None
        in
        let sum () = float_of_json (Json.member "sum" m) in
        match kind with
        | "counter" | "gauge" -> (
          type_line name kind;
          match value () with Some v -> sample ~labels name v | None -> ())
        | "histogram" ->
          type_line name "histogram";
          let cumulative = ref 0 in
          (match Json.member "buckets" m with
          | Some (Json.List buckets) ->
            List.iter
              (fun b ->
                let le =
                  match Json.member "le" b with
                  | Some (Json.Str "inf") -> "+Inf"
                  | Some (Json.Float f) -> render_value f
                  | Some (Json.Int n) -> string_of_int n
                  | _ -> "+Inf"
                in
                (match Json.member "count" b with
                | Some (Json.Int n) -> cumulative := !cumulative + n
                | _ -> ());
                sample
                  ~labels:(labels @ [ ("le", le) ])
                  (name ^ "_bucket") (float_of_int !cumulative))
              buckets
          | _ -> ());
          (match sum () with Some s -> sample ~labels (name ^ "_sum") s | None -> ());
          (match count () with Some c -> sample ~labels (name ^ "_count") c | None -> ())
        | "summary" ->
          type_line name "summary";
          List.iter
            (fun (field, q) ->
              match float_of_json (Json.member field m) with
              | Some v -> sample ~labels:(labels @ [ ("quantile", q) ]) name v
              | None -> ())
            [ ("p50", "0.5"); ("p90", "0.9"); ("p99", "0.99") ];
          (match sum () with Some s -> sample ~labels (name ^ "_sum") s | None -> ());
          (match count () with Some c -> sample ~labels (name ^ "_count") c | None -> ())
        | _ -> ())
      | _ -> ())
    metrics;
  Buffer.contents buf
