(** Prometheus text-exposition export of a {!Registry} snapshot.

    Maps the registry's metric kinds onto the exposition format 0.0.4:
    counters and gauges become single samples, histograms become
    cumulative [_bucket{le=...}] series plus [_sum]/[_count], summaries
    become [{quantile=...}] series plus [_sum]/[_count].  Metric names are
    sanitized (every character outside [[a-zA-Z0-9_:]] becomes [_], so
    [tee.ecalls] exports as [tee_ecalls]); label values are escaped per
    the spec.  Non-finite values (possible in gauges before any write
    lands) are dropped rather than emitted as [NaN]. *)

val sanitize_name : string -> string
(** [tee.ecalls] -> [tee_ecalls]; a leading digit gains a [_] prefix. *)

val of_registry : Registry.t -> string
(** The full exposition page: [# TYPE] comments plus samples, one metric
    family per registered name, in registration order. *)
