module Stats = Splitbft_util.Stats

type labels = (string * string) list

type counter = { mutable cv : float }
type gauge = { mutable gv : float }

type histogram = {
  bounds : float array;  (* ascending upper bounds; +inf bucket is implicit *)
  counts : int array;    (* length = Array.length bounds + 1 *)
  mutable hsum : float;
  mutable hcount : int;
}

type value =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Summary of Stats.t ref

type metric = { name : string; labels : labels; value : value }

type t = {
  table : (string, metric) Hashtbl.t;
  mutable rev_metrics : metric list;  (* registration order, newest first *)
}

let create () = { table = Hashtbl.create 64; rev_metrics = [] }

let normalize labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let key name labels =
  let buf = Buffer.create 32 in
  Buffer.add_string buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\x00';
      Buffer.add_string buf k;
      Buffer.add_char buf '\x01';
      Buffer.add_string buf v)
    labels;
  Buffer.contents buf

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Summary _ -> "summary"

let register t ~name ~labels ~make ~cast =
  let labels = normalize labels in
  let k = key name labels in
  match Hashtbl.find_opt t.table k with
  | Some m -> (
    match cast m.value with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Registry: %s already registered as a %s" name
           (kind_name m.value)))
  | None ->
    let value = make () in
    let m = { name; labels; value } in
    Hashtbl.replace t.table k m;
    t.rev_metrics <- m :: t.rev_metrics;
    (match cast value with Some v -> v | None -> assert false)

(* ----- counters ----- *)

let counter t ?(labels = []) name =
  register t ~name ~labels
    ~make:(fun () -> Counter { cv = 0.0 })
    ~cast:(function Counter c -> Some c | _ -> None)

let incr c = c.cv <- c.cv +. 1.0
let add c n = c.cv <- c.cv +. float_of_int n
let add_f c x = c.cv <- c.cv +. x
let counter_value c = c.cv

(* ----- gauges ----- *)

let gauge t ?(labels = []) name =
  register t ~name ~labels
    ~make:(fun () -> Gauge { gv = 0.0 })
    ~cast:(function Gauge g -> Some g | _ -> None)

let set g x = g.gv <- x
let gauge_value g = g.gv

(* ----- histograms ----- *)

let default_buckets =
  [ 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0;
    1_000.0; 2_000.0; 5_000.0; 10_000.0; 20_000.0; 50_000.0;
    100_000.0; 200_000.0; 500_000.0; 1_000_000.0; 5_000_000.0 ]

let histogram t ?(buckets = default_buckets) ?(labels = []) name =
  let make () =
    let sorted = List.sort_uniq compare buckets in
    if sorted = [] then invalid_arg "Registry.histogram: empty bucket list";
    let bounds = Array.of_list sorted in
    Histogram
      { bounds; counts = Array.make (Array.length bounds + 1) 0; hsum = 0.0; hcount = 0 }
  in
  register t ~name ~labels ~make
    ~cast:(function Histogram h -> Some h | _ -> None)

let observe h x =
  (* First bucket whose upper bound covers [x]; the trailing slot is +inf. *)
  let n = Array.length h.bounds in
  let rec find lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if x <= h.bounds.(mid) then find lo mid else find (mid + 1) hi
  in
  let i = find 0 n in
  h.counts.(i) <- h.counts.(i) + 1;
  h.hsum <- h.hsum +. x;
  h.hcount <- h.hcount + 1

let histogram_count h = h.hcount
let histogram_sum h = h.hsum

(* ----- summaries ----- *)

let summary t ?cap ?(labels = []) name =
  let r =
    register t ~name ~labels
      ~make:(fun () -> Summary (ref (Stats.create ?cap ())))
      ~cast:(function Summary r -> Some r | _ -> None)
  in
  !r

let set_summary t ?(labels = []) name stats =
  let r =
    register t ~name ~labels
      ~make:(fun () -> Summary (ref stats))
      ~cast:(function Summary r -> Some r | _ -> None)
  in
  r := stats

(* ----- introspection ----- *)

let metrics t = List.rev t.rev_metrics

let fold_value = function
  | Counter c -> c.cv
  | Gauge g -> g.gv
  | Histogram h -> float_of_int h.hcount
  | Summary r -> float_of_int (Stats.count !r)

let fold t ~init ~f =
  List.fold_left
    (fun acc m ->
      f acc ~name:m.name ~labels:m.labels ~kind:(kind_name m.value)
        ~value:(fold_value m.value))
    init (metrics t)

let read t ?(labels = []) name =
  match Hashtbl.find_opt t.table (key name (normalize labels)) with
  | Some m -> Some (fold_value m.value)
  | None -> None

let sum t ~prefix =
  let is_prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  fold t ~init:0.0 ~f:(fun acc ~name ~labels:_ ~kind:_ ~value ->
      if is_prefix name then acc +. value else acc)

(* ----- snapshot ----- *)

let num x = if Float.is_finite x then Json.Float x else Json.Null

let json_of_metric m =
  let base =
    [ ("name", Json.Str m.name);
      ("type", Json.Str (kind_name m.value));
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) m.labels)) ]
  in
  let body =
    match m.value with
    | Counter c -> [ ("value", num c.cv) ]
    | Gauge g -> [ ("value", num g.gv) ]
    | Histogram h ->
      let buckets =
        Array.to_list
          (Array.mapi
             (fun i n ->
               let le =
                 if i < Array.length h.bounds then num h.bounds.(i)
                 else Json.Str "inf"
               in
               Json.Obj [ ("le", le); ("count", Json.Int n) ])
             h.counts)
      in
      [ ("count", Json.Int h.hcount); ("sum", num h.hsum);
        ("buckets", Json.List buckets) ]
    | Summary r ->
      let s = !r in
      [ ("count", Json.Int (Stats.count s));
        ("sum", num (Stats.total s));
        ("mean", num (Stats.mean s));
        ("min", num (Stats.min s));
        ("max", num (Stats.max s));
        ("p50", num (Stats.percentile s 50.0));
        ("p90", num (Stats.percentile s 90.0));
        ("p99", num (Stats.percentile s 99.0)) ]
  in
  Json.Obj (base @ body)

let to_json t =
  Json.Obj
    [ ("schema", Json.Str "splitbft.metrics/v1");
      ("metrics", Json.List (List.map json_of_metric (metrics t))) ]

let to_json_string t = Json.to_string (to_json t)

let write_file t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json_string t);
      output_char oc '\n')
