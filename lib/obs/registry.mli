(** Metrics registry: named counters, gauges, fixed-bucket histograms and
    summaries, scoped by labels (replica, compartment, link, ...).

    One registry belongs to one simulation (the engine owns it), so every
    component of a deployment reports into the same place and a single
    {!to_json} call captures the whole run — enclave transitions, copied
    bytes, network traffic, queueing — for the paper's cost accounting
    (§6, Figures 3–4).

    Handles are cheap mutable cells: components look their metrics up once
    at construction time and update them on the hot path with a single
    field write, so instrumentation does not perturb what it measures. *)

type t

type labels = (string * string) list
(** Key/value qualifiers; order-insensitive (normalized by sorting). *)

val create : unit -> t

(** {2 Counters} — monotonically increasing totals *)

type counter

val counter : t -> ?labels:labels -> string -> counter
(** Registers (or looks up) the counter [name] with [labels].  Raises
    [Invalid_argument] if the name/labels pair exists with another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val add_f : counter -> float -> unit
val counter_value : counter -> float

(** {2 Gauges} — last-written instantaneous values *)

type gauge

val gauge : t -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} — fixed cumulative-style buckets plus sum/count *)

type histogram

val default_buckets : float list
(** Geometric µs buckets, 1 µs … 5 s (an implicit +inf bucket is always
    appended). *)

val histogram : t -> ?buckets:float list -> ?labels:labels -> string -> histogram
(** [buckets] are ascending upper bounds; on lookup of an existing
    histogram the argument is ignored. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {2 Summaries} — bounded sample sets with interpolated percentiles *)

val summary : t -> ?cap:int -> ?labels:labels -> string -> Splitbft_util.Stats.t
(** Registers (or looks up) a summary and returns its backing collector;
    percentiles (p50/p90/p99) are computed at snapshot time.

    Memory cutoff: the collector stores at most [cap] samples
    ([Stats.default_cap] = 65536 when omitted).  Until the cutoff the
    sample set is exact; past it, uniform reservoir sampling keeps
    percentiles as estimates while count/sum/mean/min/max stay exact —
    so week-long chaos runs cannot grow a summary without bound.  On
    lookup of an existing summary the argument is ignored. *)

val set_summary : t -> ?labels:labels -> string -> Splitbft_util.Stats.t -> unit
(** Points the summary [name] at an existing collector (replacing any
    previous backing), so already-collected samples appear in snapshots. *)

(** {2 Introspection} *)

val fold :
  t ->
  init:'a ->
  f:('a -> name:string -> labels:labels -> kind:string -> value:float -> 'a) ->
  'a
(** Iterates metrics in registration order.  [kind] is ["counter"],
    ["gauge"], ["histogram"] or ["summary"]; [value] is the counter/gauge
    value, or the observation count for histograms and summaries. *)

val read : t -> ?labels:labels -> string -> float option
(** The [fold]-style value of one fully-qualified metric. *)

val sum : t -> prefix:string -> float
(** Sum of [fold]-style values over all metrics whose name starts with
    [prefix] (e.g. every replica's [tee.ecalls]). *)

(** {2 Snapshot} *)

val to_json : t -> Json.t
(** [{"schema": "splitbft.metrics/v1", "metrics": [...]}] with one object
    per metric in registration order; see README "Metrics" for the
    per-kind fields. *)

val to_json_string : t -> string

val write_file : t -> path:string -> unit
(** Writes {!to_json_string} (plus a trailing newline) to [path]. *)
