type t = {
  hist : Registry.histogram;
  started_at : float;
  mutable finished : float option;
}

let start hist ~at = { hist; started_at = at; finished = None }
let elapsed t ~at = at -. t.started_at

let finish t ~at =
  match t.finished with
  | Some d -> d
  | None ->
    let d = at -. t.started_at in
    t.finished <- Some d;
    Registry.observe t.hist d;
    d
