type t = { hist : Registry.histogram; started_at : float }

let start hist ~at = { hist; started_at = at }
let elapsed t ~at = at -. t.started_at

let finish t ~at =
  let d = at -. t.started_at in
  Registry.observe t.hist d;
  d
