(** Timed sections recorded into a histogram.

    The span does not read a clock itself: callers pass the current
    simulated time (normally [Engine.now]) at both ends, so the module
    stays clock-agnostic and usable from any layer without depending on
    the simulator. *)

type t

val start : Registry.histogram -> at:float -> t
(** Opens a span at virtual time [at]. *)

val elapsed : t -> at:float -> float
(** Duration so far, without recording anything. *)

val finish : t -> at:float -> float
(** Records [at - start] into the histogram and returns it.  Idempotent:
    a second finish records nothing and returns the duration cached by
    the first (double-finish used to double-count the histogram). *)
