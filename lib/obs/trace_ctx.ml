(* Wire representation of a trace context: a fixed 15-byte trailer
   appended AFTER an already-encoded payload, so that every existing
   codec keeps producing byte-identical output when tracing is off and
   pre-tracing peers (or sealed blobs) decode unchanged.

   Layout (appended, little-endian):

     [trace id : 8] [span id : 4] [flags : 1] [magic : 2]

   The magic suffix makes stripping cheap (two byte compares on the
   tail).  A legacy payload whose last two bytes coincidentally equal
   the magic is mis-detected here; callers therefore fall back to
   decoding the whole string when the stripped prefix does not parse
   (see Message.decode_traced). *)

type t = { trace : int64; span : int; forced : bool }

let magic0 = '\xc7'
let magic1 = '\x54'
let trailer_len = 15

let flag_forced = 0x01

let to_trailer { trace; span; forced } =
  let b = Bytes.create trailer_len in
  Bytes.set_int64_le b 0 trace;
  Bytes.set_int32_le b 8 (Int32.of_int span);
  Bytes.set_uint8 b 12 (if forced then flag_forced else 0);
  Bytes.set b 13 magic0;
  Bytes.set b 14 magic1;
  Bytes.unsafe_to_string b

let append ctx payload =
  match ctx with
  | None -> payload
  | Some c ->
    let n = String.length payload in
    let b = Bytes.create (n + trailer_len) in
    Bytes.blit_string payload 0 b 0 n;
    Bytes.blit_string (to_trailer c) 0 b n trailer_len;
    Bytes.unsafe_to_string b

let strip payload =
  let n = String.length payload in
  if n >= trailer_len
     && payload.[n - 2] = magic0
     && payload.[n - 1] = magic1
  then begin
    let b = Bytes.unsafe_of_string payload in
    let base = n - trailer_len in
    let trace = Bytes.get_int64_le b base in
    let span = Int32.to_int (Bytes.get_int32_le b (base + 8)) in
    let flags = Bytes.get_uint8 b (base + 12) in
    ( String.sub payload 0 base,
      Some { trace; span; forced = flags land flag_forced <> 0 } )
  end
  else (payload, None)

let pp fmt { trace; span; forced } =
  Format.fprintf fmt "%016Lx/%d%s" trace span (if forced then "!" else "")
