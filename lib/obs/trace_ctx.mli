(** Trace context carried on the wire.

    A context names the trace a payload belongs to and the span that
    caused it; it rides as a fixed 15-byte trailer {e after} the
    payload's normal encoding, so codecs are untouched and payloads
    written before tracing existed (or with tracing off) decode exactly
    as before.  [append None] is the identity — the hot path with
    tracing disabled never copies. *)

type t = {
  trace : int64;  (** trace id; client roots use [(client << 32) lor ts] *)
  span : int;  (** causing span, to parent the next hop *)
  forced : bool;  (** sampled by force (slow / view change / recovery) *)
}

val trailer_len : int
(** Bytes [append] adds: 15. *)

val append : t option -> string -> string
(** [append (Some ctx) payload] returns [payload] with the trailer;
    [append None payload] returns [payload] itself. *)

val to_trailer : t -> string
(** The 15-byte trailer alone — lets an encoder writing into a reusable
    arena append the context without re-copying the payload
    ([append (Some ctx) p] = [p ^ to_trailer ctx]). *)

val strip : string -> string * t option
(** Splits a payload from its trailer, if the magic suffix is present.
    May false-positive on binary payloads whose tail happens to match
    the magic (probability 2^-16 per payload); callers that own a codec
    must fall back to parsing the unstripped string when the stripped
    prefix fails to decode. *)

val pp : Format.formatter -> t -> unit
