(* Causal trace recorder.

   Spans are parent-linked, virtual-time-stamped sections owned by a
   trace (one trace per sampled client request, plus synthetic roots
   for view changes / recovery and orphaned enclave transitions).  The
   store is a flat growable array — recording is two or three field
   writes — and everything expensive (tree building, Chrome Trace Event
   JSON) happens at export time.

   When no tracer is attached to the engine, every instrumentation site
   short-circuits on [None] before touching this module at all; the
   sampling knobs here only matter for runs that do attach one. *)

type span = {
  id : int;
  trace : int64;
  parent : int option;
  name : string;
  cat : string;
  pid : int;
  tid : string;
  mutable start : float;
  mutable dur : float;  (* negative while open *)
  mutable args : (string * float) list;
}

type instant = {
  i_name : string;
  i_cat : string;
  i_pid : int;
  i_tid : string;
  i_at : float;
  i_detail : string;
}

type t = {
  sample_every : int;
  record_orphans : bool;
  capacity : int;
  mutable spans : span array;
  mutable len : int;
  mutable dropped : int;
  mutable synth : int64;  (* allocator for synthetic (non-client) trace ids *)
  mutable instants : instant list;  (* newest first *)
  mutable instant_count : int;
}

let dummy =
  { id = -1; trace = 0L; parent = None; name = ""; cat = ""; pid = 0; tid = "";
    start = 0.0; dur = 0.0; args = [] }

let create ?(sample_every = 1) ?(record_orphans = true) ?(capacity = 1 lsl 20) () =
  if sample_every < 1 then invalid_arg "Tracer.create: sample_every < 1";
  { sample_every;
    record_orphans;
    capacity;
    spans = Array.make (min capacity 1024) dummy;
    len = 0;
    dropped = 0;
    synth = 0L;
    instants = [];
    instant_count = 0 }

let sample_every t = t.sample_every
let record_orphans t = t.record_orphans

(* ----- trace ids ----- *)

(* Client roots: deterministic in (client, timestamp) so a retransmitted
   request maps to the SAME trace, and head sampling is a remainder
   check on the timestamp — stable across retries by construction. *)
let client_trace ~client ~ts =
  Int64.logor (Int64.shift_left (Int64.of_int client) 32) (Int64.logand ts 0xffffffffL)

let sampled_ts t ts = Int64.rem ts (Int64.of_int t.sample_every) = 0L

(* Synthetic roots (view changes, recovery, orphaned ecalls) live in a
   tagged range no client trace can reach. *)
let fresh_forced_trace t =
  t.synth <- Int64.add t.synth 1L;
  Int64.logor 0x4000_0000_0000_0000L t.synth

let fresh_orphan_trace t =
  t.synth <- Int64.add t.synth 1L;
  Int64.logor 0x2000_0000_0000_0000L t.synth

(* ----- recording ----- *)

let open_span t ?parent ~trace ~name ~cat ~pid ~tid ~at () =
  if t.len >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    -1
  end
  else begin
    if t.len = Array.length t.spans then begin
      let bigger =
        Array.make (min t.capacity (2 * Array.length t.spans)) dummy
      in
      Array.blit t.spans 0 bigger 0 t.len;
      t.spans <- bigger
    end;
    let id = t.len in
    t.spans.(id) <-
      { id; trace; parent; name; cat; pid; tid; start = at; dur = -1.0; args = [] };
    t.len <- t.len + 1;
    id
  end

let get t id = if id >= 0 && id < t.len then Some t.spans.(id) else None

let finish t id ~at =
  match get t id with
  | Some s when s.dur < 0.0 -> s.dur <- Float.max 0.0 (at -. s.start)
  | Some _ | None -> ()

let set_start t id ~at =
  match get t id with Some s -> s.start <- at | None -> ()

let add_arg t id key v =
  match get t id with
  | Some s -> (
    match List.assoc_opt key s.args with
    | Some prev -> s.args <- (key, prev +. v) :: List.remove_assoc key s.args
    | None -> s.args <- (key, v) :: s.args)
  | None -> ()

let instant t ~name ~cat ~pid ~tid ?(detail = "") ~at () =
  if t.instant_count < t.capacity then begin
    t.instants <-
      { i_name = name; i_cat = cat; i_pid = pid; i_tid = tid; i_at = at;
        i_detail = detail }
      :: t.instants;
    t.instant_count <- t.instant_count + 1
  end
  else t.dropped <- t.dropped + 1

(* ----- inspection (analyzer) ----- *)

let span_count t = t.len
let dropped t = t.dropped

let iter_spans t f =
  for i = 0 to t.len - 1 do
    f t.spans.(i)
  done

let spans t = List.init t.len (fun i -> t.spans.(i))

(* ----- Chrome Trace Event export ----- *)

(* Chrome wants integer thread ids; intern the (pid, tid-name) pairs and
   emit "thread_name" metadata so the UI shows the symbolic names. *)
let to_json ?(process_name = Printf.sprintf "pid %d") t =
  let tids = Hashtbl.create 32 in
  let pids = Hashtbl.create 32 in
  let meta = ref [] in
  let tid_of pid name =
    if not (Hashtbl.mem pids pid) then begin
      Hashtbl.add pids pid ();
      meta :=
        Json.Obj
          [ ("ph", Json.Str "M"); ("name", Json.Str "process_name");
            ("pid", Json.Int pid); ("tid", Json.Int 0);
            ("args", Json.Obj [ ("name", Json.Str (process_name pid)) ]) ]
        :: !meta
    end;
    match Hashtbl.find_opt tids (pid, name) with
    | Some n -> n
    | None ->
      let n = Hashtbl.length tids + 1 in
      Hashtbl.add tids (pid, name) n;
      meta :=
        Json.Obj
          [ ("ph", Json.Str "M"); ("name", Json.Str "thread_name");
            ("pid", Json.Int pid); ("tid", Json.Int n);
            ("args", Json.Obj [ ("name", Json.Str name) ]) ]
        :: !meta;
      n
  in
  let span_event (s : span) =
    let args =
      [ ("trace", Json.Str (Printf.sprintf "%016Lx" s.trace));
        ("id", Json.Int s.id) ]
      @ (match s.parent with Some p -> [ ("parent", Json.Int p) ] | None -> [])
      @ (if s.dur < 0.0 then [ ("unfinished", Json.Int 1) ] else [])
      @ List.rev_map (fun (k, v) -> (k, Json.Float v)) s.args
    in
    Json.Obj
      [ ("ph", Json.Str "X"); ("name", Json.Str s.name); ("cat", Json.Str s.cat);
        ("pid", Json.Int s.pid); ("tid", Json.Int (tid_of s.pid s.tid));
        ("ts", Json.Float s.start); ("dur", Json.Float (Float.max 0.0 s.dur));
        ("args", Json.Obj args) ]
  in
  let instant_event i =
    Json.Obj
      [ ("ph", Json.Str "i"); ("name", Json.Str i.i_name); ("cat", Json.Str i.i_cat);
        ("pid", Json.Int i.i_pid); ("tid", Json.Int (tid_of i.i_pid i.i_tid));
        ("ts", Json.Float i.i_at); ("s", Json.Str "t");
        ("args", Json.Obj [ ("detail", Json.Str i.i_detail) ]) ]
  in
  let events =
    List.init t.len (fun i -> span_event t.spans.(i))
    @ List.rev_map instant_event t.instants
  in
  Json.Obj
    [ ("traceEvents", Json.List (List.rev !meta @ events));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData",
       Json.Obj
         [ ("schema", Json.Str "splitbft.trace/v1");
           ("spans", Json.Int t.len);
           ("dropped", Json.Int t.dropped) ]) ]

let write_file ?process_name t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (to_json ?process_name t);
      output_char oc '\n')
