(** Causal trace recorder: per-request traces of parent-linked spans with
    per-span cost attribution, exported as Chrome Trace Event JSON.

    A {e trace} is one causal story — normally a client request's journey
    client → broker → compartments → reply; view changes, recovery and
    orphaned enclave transitions get synthetic root traces of their own.
    A {e span} is one timed hop inside a trace, stamped with virtual time
    ([Engine.now]) at both ends and carrying accumulated cost arguments
    (enclave transitions, copied bytes, per-category compute time).

    The recorder is deliberately dumb and cheap: opening a span is an
    array write, finishing is a field write, and all structure (trees,
    JSON) is built at export.  Instrumentation sites receive the tracer
    as an [option] from the engine and skip everything when it is absent,
    so a run without tracing pays nothing. *)

type t

type span = private {
  id : int;
  trace : int64;
  parent : int option;
  name : string;
  cat : string;
  pid : int;  (** process lane: replica id or client address *)
  tid : string;  (** thread lane within the process, symbolic *)
  mutable start : float;
  mutable dur : float;  (** negative while the span is open *)
  mutable args : (string * float) list;
}

val create :
  ?sample_every:int -> ?record_orphans:bool -> ?capacity:int -> unit -> t
(** [sample_every] (default 1): head-sample one client trace in N
    (decided on the request timestamp, so retransmits stay stable);
    slow, view-change and recovery traces are always sampled regardless.
    [record_orphans] (default true): give enclave transitions that occur
    outside any sampled trace (checkpoints, session plumbing) synthetic
    root spans, so span cost totals reconcile exactly with the registry's
    aggregate counters.  [capacity] (default 2^20) bounds stored spans;
    excess records are counted in {!dropped}, never resized past it. *)

val sample_every : t -> int
val record_orphans : t -> bool

(** {2 Trace ids} *)

val client_trace : client:int -> ts:int64 -> int64
(** Deterministic client-root trace id ([(client << 32) lor ts]):
    retransmissions of the same request join the original trace. *)

val sampled_ts : t -> int64 -> bool
(** Head-sampling decision for a client request timestamp. *)

val fresh_forced_trace : t -> int64
(** Synthetic root for always-sampled events (view change, recovery,
    slow request promoted at first retransmit). *)

val fresh_orphan_trace : t -> int64
(** Synthetic root for an enclave transition outside any sampled trace. *)

(** {2 Recording} *)

val open_span :
  t ->
  ?parent:int ->
  trace:int64 ->
  name:string ->
  cat:string ->
  pid:int ->
  tid:string ->
  at:float ->
  unit ->
  int
(** Returns the span id (to parent children and build wire contexts), or
    [-1] if capacity is exhausted ([finish]/[add_arg] on [-1] are
    no-ops). *)

val finish : t -> int -> at:float -> unit
(** Idempotent: only the first finish sets the duration. *)

val set_start : t -> int -> at:float -> unit
(** Retroactive start adjustment (promoting a slow request's root at its
    first retransmission to cover the original send). *)

val add_arg : t -> int -> string -> float -> unit
(** Accumulates [v] into the span's [key] argument (adds if present). *)

val instant :
  t ->
  name:string ->
  cat:string ->
  pid:int ->
  tid:string ->
  ?detail:string ->
  at:float ->
  unit ->
  unit
(** Structured point event (the [Sim.Trace] debug log feeds these). *)

(** {2 Inspection (trace analyzer)} *)

val span_count : t -> int
val dropped : t -> int
val iter_spans : t -> (span -> unit) -> unit
val spans : t -> span list

(** {2 Export} *)

val to_json : ?process_name:(int -> string) -> t -> Json.t
(** Chrome Trace Event Format: ["X"] complete events (ts/dur in µs of
    virtual time), ["i"] instants, ["M"] process/thread-name metadata;
    span args carry the trace id, span id, parent id and cost
    attribution, which is what the analyzer and the CI validator read
    back. *)

val write_file : ?process_name:(int -> string) -> t -> path:string -> unit
