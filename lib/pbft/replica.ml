module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Resource = Splitbft_sim.Resource
module Timer = Splitbft_sim.Timer
module Cost_model = Splitbft_tee.Cost_model
module Platform = Splitbft_tee.Platform
module Measurement = Splitbft_tee.Measurement
module Sealing = Splitbft_tee.Sealing
module Sha256 = Splitbft_crypto.Sha256
module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader
module Message = Splitbft_types.Message
module Validation = Splitbft_types.Validation
module Ids = Splitbft_types.Ids
module Addr = Splitbft_types.Addr
module Keys = Splitbft_types.Keys
module Signature = Splitbft_crypto.Signature
module Hmac = Splitbft_crypto.Hmac
module State_machine = Splitbft_app.State_machine
module Log = Splitbft_consensus.Log
module Quorum = Splitbft_consensus.Quorum
module Votes = Splitbft_consensus.Votes
module Ckpt = Splitbft_consensus.Ckpt
module Client_table = Splitbft_consensus.Client_table
module Proofs = Splitbft_consensus.Proofs
module Newview = Splitbft_consensus.Newview
module Tracer = Splitbft_obs.Tracer
module Trace_ctx = Splitbft_obs.Trace_ctx
module Ledger_entry = Splitbft_storage.Entry
module Feed = Splitbft_storage.Feed

let protocol_name = "pbft"

type config = {
  n : int;
  id : Ids.replica_id;
  cost : Cost_model.t;
  workers : int;
  batch_size : int;
  batch_timeout_us : float;
  checkpoint_interval : int;
  watermark_window : int;
  suspect_timeout_us : float;
  viewchange_timeout_us : float;
  recovery_retry_us : float;
}

let default_config ~n ~id =
  { n;
    id;
    cost = Cost_model.default;
    workers = 4;
    batch_size = 1;
    batch_timeout_us = 10_000.0;
    checkpoint_interval = 64;
    watermark_window = 256;
    suspect_timeout_us = 500_000.0;
    viewchange_timeout_us = 1_000_000.0;
    recovery_retry_us = 150_000.0 }

type byzantine_mode =
  | Honest
  | Equivocate of { accomplices : Ids.replica_id list }
  | Collude
  | Mute_commits
  | Corrupt_execution

type slot = {
  mutable proposal : Message.preprepare_digest option;
      (* accepted proposal in signed digest form *)
  mutable batch : Message.request list option;  (* full requests, for execution *)
  prepares : Message.prepare Quorum.t;
  commits : Message.commit Quorum.t;
  mutable own_prepare_sent : bool;
  mutable own_commit_sent : bool;
  mutable committed : bool;
  mutable executed : bool;
}

let fresh_slot () =
  { proposal = None;
    batch = None;
    prepares = Quorum.create ();
    commits = Quorum.create ();
    own_prepare_sent = false;
    own_commit_sent = false;
    committed = false;
    executed = false }

type t = {
  cfg : config;
  f : int;
  quorum : int;
  engine : Engine.t;
  net : Network.t;
  pool : Resource.Pool.pool;
  core : Resource.t;
  keypair : Signature.keypair;
  lookup : Validation.key_lookup;
  app : State_machine.t;
  mutable view : Ids.view;
  mutable next_seq : Ids.seqno;
  mutable last_executed : Ids.seqno;
  slots : slot Log.t;  (* owns the low watermark *)
  prepared_certs : (Ids.seqno, Message.prepared_proof) Hashtbl.t;
      (* Prepare certificates retained until their seq is checkpoint-stable.
         The live slots are reset on every view entry, but ViewChanges must
         still carry the evidence for unstable decided seqs across cascaded
         view changes — otherwise a later NewView is free to re-propose
         different content at a seq some replica already executed. *)
  batches_by_digest : (string, Message.request list) Hashtbl.t;
  fetching : (string, unit) Hashtbl.t;  (* batch digests requested from peers *)
  executed_digests : (Ids.seqno, string) Hashtbl.t;
  ckpt : Ckpt.t;
  mutable clients : Client_table.t;
  mutable pending : Message.request list;  (* batch queue, newest first *)
  mutable pending_count : int;
  batch_timer : Timer.t;
  awaiting : (Ids.client_id * int64, unit) Hashtbl.t;
  suspect_timer : Timer.t;
  mutable in_view_change : bool;
  mutable vc_target : Ids.view;
  viewchanges : (Ids.view, Message.viewchange) Votes.t;
  vc_timer : Timer.t;
  mutable persist_log : (string * string) list;  (* newest first *)
  mutable crashed : bool;
  mutable epoch : int;
      (* incarnation counter: work queued before a crash must not run after
         a restart, so deferred closures check the epoch they captured *)
  mutable byz : byzantine_mode;
  mutable executed_total : int;
  (* crash-recovery (sealed checkpoints + state transfer) *)
  platform : Platform.t;
  seal_key : string;
  initial_snapshot : string;
  snapshots : (Ids.seqno, string) Hashtbl.t;  (* app snapshot at checkpoint seqs *)
  sync_votes : (Ids.seqno, string * Message.request list) Votes.t;
  mutable sync_replies : (Ids.replica_id * Ids.seqno * Ids.view) list;
  mutable recovering : bool;
  mutable recovered_count : int;
  mutable alerts : string list;  (* newest first *)
  recovery_timer : Timer.t;
  (* read-only follower feed (plaintext: the baseline is not confidential) *)
  mutable feed : Feed.t option;
  mutable feed_chain : string;
  mutable cur_ctx : Trace_ctx.t option;
      (* trace context of the message being handled; [send_to]/[broadcast]
         default to it, so everything a handler emits joins its trace *)
}

(* ----- key management ----- *)

let replica_public i =
  let kp =
    Signature.derive ~seed:(Keys.replica_signing_seed ~protocol:protocol_name i)
  in
  kp.Signature.public

let make_lookup n =
  let publics = Array.init n replica_public in
  fun i -> if i >= 0 && i < n then Some publics.(i) else None

(* ----- cost helpers ----- *)

let payload_cost t payload =
  t.cfg.cost.serialize_per_byte_us *. float_of_int (String.length payload)

let verify_cost t (msg : Message.t) =
  let c = t.cfg.cost in
  match msg with
  | Message.Request _ -> c.client_auth_us
  | Message.Preprepare pp ->
    c.verify_us +. (c.client_auth_us *. float_of_int (List.length pp.batch))
  | Message.Preprepare_digest _ | Message.Prepare _ | Message.Commit _
  | Message.Checkpoint _ ->
    c.verify_us
  | Message.Viewchange vc -> c.verify_us *. float_of_int (Proofs.viewchange_sig_count vc)
  | Message.Newview nv -> c.verify_us *. float_of_int (Proofs.newview_sig_count nv)
  | Message.Batch_fetch _ | Message.Batch_data _ | Message.State_request _ -> 1.0
  | Message.State_reply sr -> c.verify_us *. float_of_int (List.length sr.st_proof)
  | Message.Ledger_subscribe _ -> 1.0
  | Message.Reply _ | Message.Session_init _ | Message.Session_quote _
  | Message.Session_key _ | Message.Session_ack _ | Message.Ledger_feed _
  | Message.Read_request _ | Message.Read_reply _ ->
    0.0

let core_cost t (msg : Message.t) =
  let c = t.cfg.cost in
  match msg with
  | Message.Preprepare pp ->
    c.pbft_core_us +. (c.pbft_core_per_req_us *. float_of_int (List.length pp.batch))
  | Message.Request _ -> c.pbft_request_us
  | _ -> c.pbft_core_us

(* ----- verification (crypto checks, run on the pool) ----- *)

let request_auth_ok (r : Message.request) ~replica =
  Keys.check_authenticator ~protocol:protocol_name ~client:r.client ~replica
    ~msg:(Message.request_auth_bytes r) ~auth:r.auth

let verify_ok t (msg : Message.t) =
  match msg with
  | Message.Request r -> request_auth_ok r ~replica:t.cfg.id
  | Message.Preprepare pp ->
    Validation.verify_preprepare t.lookup pp
    && List.for_all (fun r -> request_auth_ok r ~replica:t.cfg.id) pp.batch
  | Message.Prepare p -> Validation.verify_prepare t.lookup p
  | Message.Commit c -> Validation.verify_commit t.lookup c
  | Message.Checkpoint ck -> Validation.verify_checkpoint t.lookup ck
  | Message.Preprepare_digest pd -> Validation.verify_preprepare_digest t.lookup pd
  | Message.Viewchange vc ->
    Validation.verify_viewchange_deep ~f:t.f ~vc_lookup:t.lookup ~ckpt_lookup:t.lookup
      ~proof_lookup:t.lookup vc
  | Message.Newview nv ->
    Validation.verify_newview t.lookup nv
    && List.for_all
         (Validation.verify_viewchange_deep ~f:t.f ~vc_lookup:t.lookup
            ~ckpt_lookup:t.lookup ~proof_lookup:t.lookup)
         nv.nv_viewchanges
  | Message.Batch_fetch _ | Message.Batch_data _ ->
    (* content-addressed: the handler checks the digest *)
    true
  | Message.State_request _ | Message.State_reply _ ->
    (* snapshot certified by its checkpoint proof, entries by f+1 matching
       repliers — both checked in the handler *)
    true
  | Message.Ledger_subscribe _ ->
    (* served from already-committed host state; the feed is content-addressed *)
    true
  | Message.Reply _ | Message.Session_init _ | Message.Session_quote _
  | Message.Session_key _ | Message.Session_ack _ | Message.Ledger_feed _
  | Message.Read_request _ | Message.Read_reply _ ->
    false

(* ----- tracing ----- *)

(* Synthetic always-sampled root for replica-initiated causality (primary
   suspicion, recovery), installed as the current context around the
   initiating call so the cascade it triggers is traceable. *)
let forced_ctx t ~name =
  match Engine.tracer t.engine with
  | None -> None
  | Some tr ->
    let trace = Tracer.fresh_forced_trace tr in
    let at = Engine.now t.engine in
    let id =
      Tracer.open_span tr ~trace ~name ~cat:"replica.forced" ~pid:t.cfg.id
        ~tid:"core" ~at ()
    in
    Tracer.finish tr id ~at;
    Some { Trace_ctx.trace; span = id; forced = true }

(* ----- sending ----- *)

let send_to t ?ctx ~sign_cost dst payload =
  let ctx = match ctx with Some _ as c -> c | None -> t.cur_ctx in
  let payload = Trace_ctx.append ctx payload in
  Resource.Pool.submit t.pool
    ~cost:(sign_cost +. payload_cost t payload)
    (fun () -> Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst payload)

let broadcast t ?ctx ~sign_cost msg =
  let ctx = match ctx with Some _ as c -> c | None -> t.cur_ctx in
  let payload = Message.encode_traced ?ctx msg in
  Resource.Pool.submit t.pool
    ~cost:(sign_cost +. payload_cost t payload)
    (fun () ->
      for j = 0 to t.cfg.n - 1 do
        if j <> t.cfg.id then
          Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst:(Addr.replica j) payload
      done)

(* ----- slots and watermarks ----- *)

let slot t seq = Log.find_or_add t.slots seq ~default:fresh_slot
let in_window t seq = Log.in_window t.slots seq
let primary t = Ids.primary_of_view ~n:t.cfg.n t.view
let is_primary t = primary t = t.cfg.id

(* ----- signed message constructors ----- *)

let make_preprepare t ~seq batch : Message.preprepare =
  let pp =
    { Message.view = t.view; seq; batch; sender = t.cfg.id; pp_sig = "" }
  in
  { pp with pp_sig = Signature.sign t.keypair.Signature.secret (Message.preprepare_signing_bytes pp) }

let make_prepare t ~view ~seq ~digest : Message.prepare =
  let p = { Message.view; seq; digest; sender = t.cfg.id; p_sig = "" } in
  { p with p_sig = Signature.sign t.keypair.Signature.secret (Message.prepare_signing_bytes p) }

let make_commit t ~view ~seq ~digest : Message.commit =
  let c = { Message.view; seq; digest; sender = t.cfg.id; c_sig = "" } in
  { c with c_sig = Signature.sign t.keypair.Signature.secret (Message.commit_signing_bytes c) }

let make_checkpoint t ~seq ~state_digest : Message.checkpoint =
  let ck = { Message.seq; state_digest; sender = t.cfg.id; ck_sig = "" } in
  { ck with
    ck_sig = Signature.sign t.keypair.Signature.secret (Message.checkpoint_signing_bytes ck) }

let make_reply t ~(req : Message.request) ~result : Message.reply =
  let rp =
    { Message.view = t.view;
      timestamp = req.timestamp;
      client = req.client;
      sender = t.cfg.id;
      result;
      r_auth = "" }
  in
  let key =
    Keys.client_replica_key ~protocol:protocol_name ~client:req.client ~replica:t.cfg.id
  in
  { rp with r_auth = Hmac.mac ~key (Message.reply_auth_bytes rp) }

(* A coordinated byzantine pair splits the honest replicas over two
   proposals per sequence number: the real batch goes to odd-numbered
   replicas, the empty batch to even-numbered ones, and the attackers send
   their (conflicting) Prepares and Commits only to the matching side so
   per-sender deduplication at honest receivers cannot merge the votes. *)
let attack_side (pp : Message.preprepare) = pp.batch <> []

let send_targeted_votes t (pp : Message.preprepare) =
  let digest = Message.digest_of_batch pp.batch in
  let p = make_prepare t ~view:pp.view ~seq:pp.seq ~digest in
  let c = make_commit t ~view:pp.view ~seq:pp.seq ~digest in
  let odd_side = attack_side pp in
  let payload_p = Message.encode (Message.Prepare p) in
  let payload_c = Message.encode (Message.Commit c) in
  Resource.Pool.submit t.pool ~cost:(2.0 *. t.cfg.cost.sign_us) (fun () ->
      for j = 0 to t.cfg.n - 1 do
        if j <> t.cfg.id && (j mod 2 = 1) = odd_side then begin
          Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst:(Addr.replica j) payload_p;
          Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst:(Addr.replica j) payload_c
        end
      done)

(* ----- execution ----- *)

(* The request timer tracks the oldest pending request: it is (re)armed on
   progress, so a loaded-but-progressing replica never suspects its
   primary. *)
let refresh_suspect_timer t =
  if Hashtbl.length t.awaiting = 0 then Timer.stop t.suspect_timer
  else Timer.restart t.suspect_timer

(* ----- rollback-protected sealed checkpoints ----- *)

let encode_recovery_image t ~counter ~snapshot =
  W.to_string
    (fun w () ->
      W.u64 w counter;
      W.varint w t.view;
      W.varint w t.last_executed;
      W.bytes w snapshot;
      W.list w
        (fun w (seq, d) ->
          W.varint w seq;
          W.bytes w d)
        (Hashtbl.fold (fun seq d acc -> (seq, d) :: acc) t.executed_digests []))
    ()

let decode_recovery_image s =
  R.parse
    (fun r ->
      let counter = R.u64 r in
      let view = R.varint r in
      let last_executed = R.varint r in
      let snapshot = R.bytes r in
      let executed =
        R.list r (fun r ->
            let seq = R.varint r in
            let d = R.bytes r in
            (seq, d))
      in
      (counter, view, last_executed, snapshot, executed))
    s

(* Each seal bumps the platform's monotonic counter and binds the new value
   into the image, so recovery can tell the newest blob from a replayed
   older one (the baseline gets the same rollback defense as the SplitBFT
   compartments, for comparison rows). *)
let seal_checkpoint_state t ~snapshot =
  let counter = Platform.counter_increment t.platform "ckpt" in
  let sealed =
    Sealing.seal ~key:t.seal_key ~rng:(Platform.rng t.platform)
      (encode_recovery_image t ~counter ~snapshot)
  in
  t.persist_log <- ("ckpt:pbft", sealed) :: t.persist_log

let finish_recovery t =
  let f1 = t.f + 1 in
  if t.recovering && List.length t.sync_replies >= f1 then begin
    let heights =
      List.map (fun (_, h, _) -> h) t.sync_replies |> List.sort (fun a b -> Int.compare b a)
    in
    (* Caught up once we reach the (f+1)-th highest vouched height: at
       least one honest replica was at or below it. *)
    if t.last_executed >= List.nth heights (f1 - 1) then begin
      t.recovering <- false;
      t.recovered_count <- t.recovered_count + 1;
      t.sync_replies <- [];
      Votes.reset t.sync_votes;
      Timer.stop t.recovery_timer
    end
  end

let send_checkpoint_if_due t seq =
  if seq mod t.cfg.checkpoint_interval = 0 then begin
    let snapshot = t.app.State_machine.snapshot () in
    let state_digest = Sha256.digest snapshot in
    (* Cache the snapshot so a State_reply can serve bytes matching the
       certified digest. *)
    Hashtbl.replace t.snapshots seq snapshot;
    let ck = make_checkpoint t ~seq ~state_digest in
    broadcast t ~sign_cost:t.cfg.cost.sign_us (Message.Checkpoint ck);
    Ckpt.store t.ckpt ck;
    seal_checkpoint_state t ~snapshot
  end

let resolve_batch t (s : slot) =
  match s.batch with
  | Some _ -> ()
  | None -> (
    match s.proposal with
    | Some pd when String.equal pd.pd_digest Message.empty_batch_digest ->
      s.batch <- Some []
    | Some pd -> (
      match Hashtbl.find_opt t.batches_by_digest pd.pd_digest with
      | Some batch -> s.batch <- Some batch
      | None ->
        (* Committed a digest without the request bodies (possible after a
           view change): fetch them, content-addressed, from peers. *)
        if not (Hashtbl.mem t.fetching pd.pd_digest) then begin
          Hashtbl.replace t.fetching pd.pd_digest ();
          broadcast t ~sign_cost:0.0
            (Message.Batch_fetch { bf_digest = pd.pd_digest; bf_requester = t.cfg.id })
        end)
    | None -> ())

let rec try_execute t =
  let seq = t.last_executed + 1 in
  match Log.find t.slots seq with
  | Some s when s.committed && not s.executed -> (
    resolve_batch t s;
    match s.proposal, s.batch with
    | None, _ | _, None -> ()
    | Some pd, Some batch ->
      s.executed <- true;
      t.last_executed <- seq;
      Hashtbl.replace t.executed_digests seq pd.pd_digest;
      let c = t.cfg.cost in
      let replies = ref [] in
      let applied_ops = ref [] in
      List.iter
        (fun (req : Message.request) ->
          Hashtbl.remove t.awaiting (req.client, req.timestamp);
          if not (Client_table.executed t.clients req.client req.timestamp) then begin
            let result =
              match t.byz with
              | Corrupt_execution -> "CORRUPT"
              | Honest | Equivocate _ | Collude | Mute_commits ->
                applied_ops := req.payload :: !applied_ops;
                t.app.apply req.payload
            in
            let reply = make_reply t ~req ~result in
            Client_table.record t.clients req.client req.timestamp (Some reply);
            replies := reply :: !replies;
            t.executed_total <- t.executed_total + 1
          end)
        batch;
      (match t.feed with
      | None -> ()
      | Some fd ->
        let e =
          { Ledger_entry.seq;
            digest = pd.pd_digest;
            ops = Ledger_entry.encode_ops (List.rev !applied_ops) }
        in
        t.feed_chain <- Ledger_entry.next_chain ~prev:t.feed_chain e;
        Feed.publish fd (Ledger_entry.encode_record ~chain:t.feed_chain e));
      List.iter
        (fun (State_machine.Persist { tag; data }) ->
          t.persist_log <- (tag, data) :: t.persist_log)
        (t.app.drain_effects ());
      refresh_suspect_timer t;
      (* Execution occupies the serial core; replies go out through the
         pool afterwards (authentication is parallelized). *)
      let exec_cost =
        c.exec_op_us *. float_of_int (List.length batch)
        +.
        match t.app.app_name with
        | "ledger" -> c.ledger_block_us *. float_of_int (List.length batch) /. 5.0
        | _ -> 0.0
      in
      let outgoing = List.rev !replies in
      (* The closure runs after the handler returns; pin its trace context
         now so replies still join the committing message's trace. *)
      let ctx = t.cur_ctx in
      Resource.submit t.core ~cost:exec_cost (fun () ->
          List.iter
            (fun (reply : Message.reply) ->
              send_to t ?ctx ~sign_cost:c.reply_auth_us
                (Addr.client reply.client)
                (Message.encode (Message.Reply reply)))
            outgoing);
      send_checkpoint_if_due t seq;
      check_checkpoint_stability t seq;
      try_execute t)
  | Some _ | None -> ()

(* ----- checkpoints / garbage collection ----- *)

and check_checkpoint_stability t seq =
  Ckpt.try_advance t.ckpt seq ~on_stable:(fun stable ->
      (* Keep the proving quorum, advance the low watermark, drop old state. *)
      Log.advance_low_mark t.slots stable;
      Log.prune t.slots ~upto:stable;
      Hashtbl.iter
        (fun s _ -> if s <= stable then Hashtbl.remove t.prepared_certs s)
        (Hashtbl.copy t.prepared_certs);
      Hashtbl.iter
        (fun s _ -> if s < stable then Hashtbl.remove t.snapshots s)
        (Hashtbl.copy t.snapshots);
      flush_batch_if_ready t)

(* ----- batching (primary) ----- *)

and flush_batch_if_ready t =
  if is_primary t && (not t.in_view_change) && t.pending_count > 0 then begin
    let seq = t.next_seq in
    if in_window t seq then begin
      let take = min t.cfg.batch_size t.pending_count in
      let all = List.rev t.pending in
      let rec split i acc rest =
        if i = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | x :: tl -> split (i - 1) (x :: acc) tl
      in
      let batch, remaining = split take [] all in
      t.pending <- List.rev remaining;
      t.pending_count <- t.pending_count - take;
      t.next_seq <- seq + 1;
      let pp = make_preprepare t ~seq batch in
      let s = slot t seq in
      s.proposal <- Some (Message.summarize pp);
      s.batch <- Some batch;
      Hashtbl.replace t.batches_by_digest (Message.digest_of_batch batch) batch;
      (match t.byz with
      | Equivocate { accomplices } ->
        (* Conflicting proposals: half the backups see a different (valid!)
           batch — the empty no-op batch, whose vacuous client authenticators
           honest replicas accept — accomplices see both, and the
           equivocator votes for both. *)
        let pp_b = make_preprepare t ~seq [] in
        let payload_a = Message.encode (Message.Preprepare pp) in
        let payload_b = Message.encode (Message.Preprepare pp_b) in
        Resource.Pool.submit t.pool
          ~cost:(2.0 *. t.cfg.cost.sign_us)
          (fun () ->
            for j = 0 to t.cfg.n - 1 do
              if j <> t.cfg.id then begin
                if List.mem j accomplices then begin
                  Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst:(Addr.replica j)
                    payload_a;
                  Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst:(Addr.replica j)
                    payload_b
                end
                else
                  Network.send t.net ~src:(Addr.replica t.cfg.id) ~dst:(Addr.replica j)
                    (if j mod 2 = 1 then payload_a else payload_b)
              end
            done);
        List.iter (send_targeted_votes t) [ pp; pp_b ]
      | Honest | Collude | Mute_commits | Corrupt_execution ->
        broadcast t ~sign_cost:t.cfg.cost.sign_us (Message.Preprepare pp));
      if t.pending_count >= t.cfg.batch_size then flush_batch_if_ready t
      else if t.pending_count > 0 then Timer.start t.batch_timer
      else Timer.stop t.batch_timer
    end
  end

(* ----- prepare / commit progress ----- *)

let rec try_send_commit t seq =
  let s = slot t seq in
  match s.proposal with
  | None -> ()
  | Some pd ->
    if
      (not s.own_commit_sent)
      && Validation.prepare_cert_complete ~f:t.f pd (Quorum.votes s.prepares)
    then begin
      s.own_commit_sent <- true;
      (* Retain the completed certificate (per seq, highest view wins) so
         view changes can still prove it after the slots are reset. *)
      (match Proofs.assemble ~f:t.f [ (pd, Quorum.votes s.prepares) ] with
      | [ proof ] -> (
        match Hashtbl.find_opt t.prepared_certs seq with
        | Some old when old.Message.proof_preprepare.Message.pd_view >= pd.Message.pd_view
          ->
          ()
        | Some _ | None -> Hashtbl.replace t.prepared_certs seq proof)
      | _ -> ());
      match t.byz with
      | Mute_commits -> ()
      | Honest | Equivocate _ | Collude | Corrupt_execution ->
        let digest = pd.pd_digest in
        let c = make_commit t ~view:t.view ~seq ~digest in
        ignore (Quorum.add s.commits ~sender:t.cfg.id c);
        broadcast t ~sign_cost:t.cfg.cost.sign_us (Message.Commit c);
        try_mark_committed t seq
    end

and try_mark_committed t seq =
  let s = slot t seq in
  match s.proposal with
  | None -> ()
  | Some pd ->
    let digest = pd.pd_digest in
    if
      (not s.committed)
      && Validation.commit_quorum_complete ~quorum:t.quorum ~view:t.view ~seq ~digest
           (Quorum.votes s.commits)
    then begin
      s.committed <- true;
      try_execute t;
      finish_recovery t
    end

(* ----- normal-operation handlers ----- *)

let resend_cached_reply t (r : Message.request) =
  match Client_table.cached_reply t.clients r.client r.timestamp with
  | Some reply ->
    send_to t ~sign_cost:t.cfg.cost.reply_auth_us (Addr.client r.client)
      (Message.encode (Message.Reply reply))
  | None -> ()

let on_request t (r : Message.request) =
  if Client_table.executed t.clients r.client r.timestamp then resend_cached_reply t r
  else begin
    Hashtbl.replace t.awaiting (r.client, r.timestamp) ();
    refresh_suspect_timer t;
    if is_primary t && not t.in_view_change then begin
      (* Drop duplicates already queued or assigned a sequence number. *)
      if not (Client_table.already_assigned t.clients r.client r.timestamp) then begin
        Client_table.note_assigned t.clients r.client r.timestamp;
        t.pending <- r :: t.pending;
        t.pending_count <- t.pending_count + 1;
        if t.pending_count >= t.cfg.batch_size then flush_batch_if_ready t
        else Timer.start t.batch_timer
      end
    end
  end

let on_preprepare t (pp : Message.preprepare) =
  if t.byz = Collude then
    (* The accomplice votes for everything it sees, each version only to
       the side of the split that received it. *)
    send_targeted_votes t pp
  else if
    pp.view = t.view
    && (not t.in_view_change)
    && pp.sender = primary t
    && pp.sender <> t.cfg.id
    && in_window t pp.seq
  then begin
    let s = slot t pp.seq in
    let digest = Message.digest_of_batch pp.batch in
    match s.proposal with
    | Some existing when not (String.equal existing.pd_digest digest) ->
      (* Conflicting PrePrepare from the primary: evidence of a fault. *)
      ()
    | Some _ -> ()
    | None ->
      s.proposal <- Some (Message.summarize pp);
      s.batch <- Some pp.batch;
      Hashtbl.replace t.batches_by_digest digest pp.batch;
      List.iter
        (fun (r : Message.request) ->
          if not (Client_table.executed t.clients r.client r.timestamp) then
            Hashtbl.replace t.awaiting (r.client, r.timestamp) ())
        pp.batch;
      refresh_suspect_timer t;
      if not s.own_prepare_sent then begin
        s.own_prepare_sent <- true;
        let p = make_prepare t ~view:t.view ~seq:pp.seq ~digest in
        ignore (Quorum.add s.prepares ~sender:t.cfg.id p);
        broadcast t ~sign_cost:t.cfg.cost.sign_us (Message.Prepare p)
      end;
      try_send_commit t pp.seq
  end

let on_prepare t (p : Message.prepare) =
  if p.view = t.view && (not t.in_view_change) && in_window t p.seq && p.sender <> t.cfg.id
  then begin
    let s = slot t p.seq in
    if Quorum.add s.prepares ~sender:p.sender p then try_send_commit t p.seq
  end

let on_commit t (c : Message.commit) =
  if c.view = t.view && (not t.in_view_change) && in_window t c.seq && c.sender <> t.cfg.id
  then begin
    let s = slot t c.seq in
    if Quorum.add s.commits ~sender:c.sender c then try_mark_committed t c.seq
  end

let on_checkpoint t (ck : Message.checkpoint) =
  if ck.seq > Log.low_mark t.slots && ck.sender <> t.cfg.id then begin
    Ckpt.store t.ckpt ck;
    check_checkpoint_stability t ck.seq
  end

(* ----- view change ----- *)

let prepared_proofs t =
  let low = Log.low_mark t.slots in
  Hashtbl.fold
    (fun seq proof acc -> if seq > low then proof :: acc else acc)
    t.prepared_certs []

let make_viewchange t ~new_view : Message.viewchange =
  let vc =
    { Message.vc_new_view = new_view;
      vc_last_stable = Log.low_mark t.slots;
      vc_checkpoint_proof = Ckpt.proof t.ckpt;
      vc_prepared = prepared_proofs t;
      vc_sender = t.cfg.id;
      vc_sig = "" }
  in
  { vc with
    vc_sig = Signature.sign t.keypair.Signature.secret (Message.viewchange_signing_bytes vc) }

let enter_view t ~view ~min_s ~max_s (pps : Message.preprepare_digest list) ~as_primary =
  t.view <- view;
  t.in_view_change <- false;
  Timer.stop t.vc_timer;
  Log.advance_low_mark t.slots min_s;
  (* Keep the checkpoint tracker's stable point in lock-step with the low
     watermark even though the NewView carried no quorum for it. *)
  Ckpt.force_stable t.ckpt (Log.low_mark t.slots);
  (* Resetting the slots is safe only because prepared certificates live in
     [prepared_certs]; prune the ones the NewView's stable point covers. *)
  Log.reset t.slots;
  Hashtbl.iter
    (fun s _ -> if s <= Log.low_mark t.slots then Hashtbl.remove t.prepared_certs s)
    (Hashtbl.copy t.prepared_certs);
  t.next_seq <- max_s + 1;
  (* Requests assigned in the dead view may have been lost with it; allow
     client retransmissions to be ordered again (execution deduplicates by
     timestamp, so re-ordering cannot double-execute).  Requests still
     queued or re-issued by the NewView stay deduplicated. *)
  Client_table.reset_assignments t.clients;
  List.iter
    (fun (r : Message.request) -> Client_table.note_assigned t.clients r.client r.timestamp)
    t.pending;
  List.iter
    (fun (pd : Message.preprepare_digest) ->
      let s = slot t pd.pd_seq in
      s.proposal <- Some pd;
      resolve_batch t s;
      (match s.batch with
      | Some batch ->
        List.iter
          (fun (r : Message.request) ->
            Client_table.note_assigned t.clients r.client r.timestamp)
          batch
      | None -> ());
      if pd.pd_seq <= t.last_executed then begin
        s.executed <- true;
        s.committed <- true
      end
      else if not as_primary then begin
        s.own_prepare_sent <- true;
        let p = make_prepare t ~view:t.view ~seq:pd.pd_seq ~digest:pd.pd_digest in
        ignore (Quorum.add s.prepares ~sender:t.cfg.id p);
        broadcast t ~sign_cost:t.cfg.cost.sign_us (Message.Prepare p)
      end)
    pps;
  refresh_suspect_timer t;
  flush_batch_if_ready t

let rec start_view_change t ~target =
  if target > t.view || (t.in_view_change && target > t.vc_target) then begin
    t.in_view_change <- true;
    t.vc_target <- target;
    t.view <- target;
    Timer.stop t.batch_timer;
    Timer.stop t.suspect_timer;
    Timer.restart t.vc_timer;
    let vc = make_viewchange t ~new_view:target in
    ignore (Votes.add t.viewchanges ~key:target ~sender:t.cfg.id vc);
    broadcast t ~sign_cost:t.cfg.cost.sign_us (Message.Viewchange vc);
    maybe_send_newview t ~target
  end

and maybe_send_newview t ~target =
  if Ids.primary_of_view ~n:t.cfg.n target = t.cfg.id then begin
    let vcs = Votes.get t.viewchanges target in
    if List.length vcs >= t.quorum && t.view = target && t.in_view_change then begin
      let min_s, max_s, pps = Newview.compute ~view:target ~sender:t.cfg.id vcs in
      let signed_pps =
        List.map
          (fun (pd : Message.preprepare_digest) ->
            { pd with
              Message.pd_sig =
                Signature.sign t.keypair.Signature.secret
                  (Message.preprepare_digest_signing_bytes pd) })
          pps
      in
      let nv =
        { Message.nv_view = target;
          nv_viewchanges = vcs;
          nv_preprepares = signed_pps;
          nv_sender = t.cfg.id;
          nv_sig = "" }
      in
      let nv =
        { nv with
          nv_sig =
            Signature.sign t.keypair.Signature.secret (Message.newview_signing_bytes nv) }
      in
      broadcast t
        ~sign_cost:(t.cfg.cost.sign_us *. float_of_int (1 + List.length signed_pps))
        (Message.Newview nv);
      enter_view t ~view:target ~min_s ~max_s signed_pps ~as_primary:true
    end
  end

let on_viewchange t (vc : Message.viewchange) =
  if vc.vc_new_view > t.view || (t.in_view_change && vc.vc_new_view = t.vc_target) then begin
    if Votes.add t.viewchanges ~key:vc.vc_new_view ~sender:vc.vc_sender vc then begin
      let count = Votes.count t.viewchanges vc.vc_new_view in
      (* Join a view change supported by f+1 peers (liveness rule). *)
      if vc.vc_new_view > t.view && count >= t.f + 1 && not (t.in_view_change && t.vc_target >= vc.vc_new_view)
      then start_view_change t ~target:vc.vc_new_view;
      maybe_send_newview t ~target:vc.vc_new_view
    end
  end

let on_newview t (nv : Message.newview) =
  if
    nv.nv_view >= t.view
    && nv.nv_sender = Ids.primary_of_view ~n:t.cfg.n nv.nv_view
    && nv.nv_sender <> t.cfg.id
    && List.length nv.nv_viewchanges >= t.quorum
  then begin
    let min_s, max_s, expected =
      Newview.compute ~view:nv.nv_view ~sender:nv.nv_sender nv.nv_viewchanges
    in
    if Newview.matches ~expected ~actual:nv.nv_preprepares then
      enter_view t ~view:nv.nv_view ~min_s ~max_s nv.nv_preprepares ~as_primary:false
  end

(* ----- dispatch ----- *)

let on_batch_fetch t (bf : Message.batch_fetch) =
  match Hashtbl.find_opt t.batches_by_digest bf.bf_digest with
  | Some batch when bf.bf_requester <> t.cfg.id ->
    send_to t ~sign_cost:0.0 (Addr.replica bf.bf_requester)
      (Message.encode (Message.Batch_data { bd_batch = batch }))
  | Some _ | None -> ()

let on_batch_data t (bd : Message.batch_data) =
  let digest = Message.digest_of_batch bd.bd_batch in
  if Hashtbl.mem t.fetching digest then begin
    Hashtbl.remove t.fetching digest;
    Hashtbl.replace t.batches_by_digest digest bd.bd_batch;
    try_execute t
  end

(* ----- state transfer ----- *)

let on_state_request t (sr : Message.state_request) =
  if sr.sr_requester <> t.cfg.id && not t.recovering then begin
    let stable = Ckpt.last_stable t.ckpt in
    let snapshot =
      if stable > 0 && sr.sr_from <= stable then
        Option.value ~default:"" (Hashtbl.find_opt t.snapshots stable)
      else ""
    in
    let entries = ref [] in
    for seq = t.last_executed downto max 1 sr.sr_from do
      match Hashtbl.find_opt t.executed_digests seq with
      | None -> ()
      | Some d ->
        let batch =
          if String.equal d Message.empty_batch_digest then Some []
          else Hashtbl.find_opt t.batches_by_digest d
        in
        (match batch with
        | Some b ->
          entries := { Message.se_seq = seq; se_digest = d; se_batch = b } :: !entries
        | None -> ())
    done;
    send_to t ~sign_cost:0.0
      (Addr.replica sr.sr_requester)
      (Message.encode
         (Message.State_reply
            { st_replier = t.cfg.id;
              st_requester = sr.sr_requester;
              st_stable = stable;
              st_proof = Ckpt.proof t.ckpt;
              st_snapshot = snapshot;
              st_view = t.view;
              st_entries = !entries }))
  end

let on_state_reply t (sr : Message.state_reply) =
  if t.recovering && sr.st_requester = t.cfg.id && sr.st_replier <> t.cfg.id then begin
    (* Certified snapshot: install only if it moves us forward and matches
       its checkpoint-quorum certificate. *)
    (if String.length sr.st_snapshot > 0 && sr.st_stable > t.last_executed then begin
       let proof_ok =
         Validation.checkpoint_quorum_seq ~quorum:t.quorum sr.st_proof = Some sr.st_stable
         && List.for_all (Validation.verify_checkpoint t.lookup) sr.st_proof
       in
       let digest_ok =
         match sr.st_proof with
         | ck :: _ -> String.equal (Sha256.digest sr.st_snapshot) ck.Message.state_digest
         | [] -> false
       in
       if proof_ok && digest_ok then
         match t.app.State_machine.restore sr.st_snapshot with
         | Error _ -> ()
         | Ok () ->
           ignore (t.app.State_machine.drain_effects ());
           t.last_executed <- sr.st_stable;
           Hashtbl.replace t.snapshots sr.st_stable sr.st_snapshot;
           Ckpt.force_stable t.ckpt sr.st_stable;
           Log.advance_low_mark t.slots sr.st_stable;
           Log.prune t.slots ~upto:sr.st_stable
     end);
    (* Log suffix: entries are content-addressed but unsigned, so install a
       slot only once f+1 distinct repliers vouch for the same digest. *)
    List.iter
      (fun (e : Message.state_entry) ->
        if
          e.se_seq > t.last_executed
          && String.equal (Message.digest_of_batch e.se_batch) e.se_digest
          && Votes.add t.sync_votes ~key:e.se_seq ~sender:sr.st_replier
               (e.se_digest, e.se_batch)
        then begin
          let matching =
            List.filter
              (fun (d, _) -> String.equal d e.se_digest)
              (Votes.get t.sync_votes e.se_seq)
          in
          if List.length matching >= t.f + 1 then begin
            let s = slot t e.se_seq in
            s.proposal <-
              Some
                { Message.pd_view = sr.st_view;
                  pd_seq = e.se_seq;
                  pd_digest = e.se_digest;
                  pd_sender = Ids.primary_of_view ~n:t.cfg.n sr.st_view;
                  pd_sig = "" };
            s.batch <- Some e.se_batch;
            Hashtbl.replace t.batches_by_digest e.se_digest e.se_batch;
            s.committed <- true
          end
        end)
      sr.st_entries;
    let vouched =
      List.fold_left
        (fun acc (e : Message.state_entry) -> max acc e.se_seq)
        sr.st_stable sr.st_entries
    in
    (* One live slot per replier: the recovery timer re-requests, and a
       newer reply supersedes the older one. *)
    t.sync_replies <-
      (sr.st_replier, vouched, sr.st_view)
      :: List.filter (fun (r, _, _) -> r <> sr.st_replier) t.sync_replies;
    (* Adopt the view vouched by f+1 repliers so current-view traffic is
       not discarded after the catch-up. *)
    let f1 = t.f + 1 in
    if List.length t.sync_replies >= f1 then begin
      let views =
        List.map (fun (_, _, v) -> v) t.sync_replies |> List.sort (fun a b -> Int.compare b a)
      in
      let v = List.nth views (f1 - 1) in
      if v > t.view && not t.in_view_change then begin
        t.view <- v;
        t.next_seq <- max t.next_seq (t.last_executed + 1)
      end
    end;
    try_execute t;
    finish_recovery t
  end

(* Host-level, off the consensus path: the feed serves already-committed
   entries, so a subscription touches no protocol state. *)
let on_ledger_subscribe t (ls : Message.ledger_subscribe) =
  match t.feed with
  | Some fd -> Feed.subscribe fd ~follower:ls.lsu_follower ~from:ls.lsu_from
  | None -> ()

let handle t ~src:_ (msg : Message.t) =
  match msg with
  | Message.Request r -> on_request t r
  | Message.Preprepare pp -> on_preprepare t pp
  | Message.Preprepare_digest _ -> ()
  | Message.Prepare p -> on_prepare t p
  | Message.Commit c -> on_commit t c
  | Message.Checkpoint ck -> on_checkpoint t ck
  | Message.Viewchange vc -> on_viewchange t vc
  | Message.Newview nv -> on_newview t nv
  | Message.Batch_fetch bf -> on_batch_fetch t bf
  | Message.Batch_data bd -> on_batch_data t bd
  | Message.State_request sr -> on_state_request t sr
  | Message.State_reply sr -> on_state_reply t sr
  | Message.Ledger_subscribe ls -> on_ledger_subscribe t ls
  | Message.Reply _ | Message.Session_init _ | Message.Session_quote _
  | Message.Session_key _ | Message.Session_ack _ | Message.Ledger_feed _
  | Message.Read_request _ | Message.Read_reply _ ->
    ()

let on_payload t ~src payload =
  if not t.crashed then begin
    match Message.decode_traced payload with
    | Error _ -> ()
    | Ok (msg, ctx) ->
      let epoch = t.epoch in
      let vcost = verify_cost t msg +. payload_cost t payload in
      let received = Engine.now t.engine in
      Resource.Pool.submit t.pool ~cost:vcost (fun () ->
          if t.epoch = epoch && verify_ok t msg then
            Resource.submit t.core ~cost:(core_cost t msg) (fun () ->
                if t.epoch = epoch && not t.crashed then begin
                  (* The handling span covers verification (started when
                     the payload arrived) through the handler, with the
                     monolithic replica's cost split the same way the
                     enclave spans split theirs. *)
                  let sp =
                    match (Engine.tracer t.engine, ctx) with
                    | Some tr, Some { Trace_ctx.trace; span; forced } ->
                      let id =
                        Tracer.open_span tr ~parent:span ~trace
                          ~name:(protocol_name ^ ":" ^ Message.type_name msg)
                          ~cat:"replica" ~pid:t.cfg.id ~tid:"core" ~at:received ()
                      in
                      Tracer.add_arg tr id "crypto_us" (verify_cost t msg);
                      Tracer.add_arg tr id "serialize_us" (payload_cost t payload);
                      Tracer.add_arg tr id "core_us" (core_cost t msg);
                      t.cur_ctx <- Some { Trace_ctx.trace; span = id; forced };
                      Some (tr, id)
                    | _ ->
                      t.cur_ctx <- ctx;
                      None
                  in
                  handle t ~src msg;
                  t.cur_ctx <- None;
                  match sp with
                  | Some (tr, id) -> Tracer.finish tr id ~at:(Engine.now t.engine)
                  | None -> ()
                end))
  end

(* ----- construction ----- *)

let measurement =
  Measurement.of_source ~name:"pbft-replica" ~version:"1"
    ~code:"baseline pbft replica checkpoint state"

let create engine net cfg ~app =
  if cfg.n < 4 then invalid_arg "Pbft.Replica.create: need n >= 4";
  let keypair =
    Signature.derive ~seed:(Keys.replica_signing_seed ~protocol:protocol_name cfg.id)
  in
  let platform = Platform.create engine ~id:cfg.id in
  let rec t =
    lazy
      { cfg;
        f = Ids.f_of_n cfg.n;
        quorum = Ids.quorum ~n:cfg.n;
        engine;
        net;
        pool =
          Resource.Pool.create engine
            ~name:(Printf.sprintf "pbft%d-pool" cfg.id)
            ~workers:cfg.workers;
        core = Resource.create engine ~name:(Printf.sprintf "pbft%d-core" cfg.id);
        keypair;
        lookup = make_lookup cfg.n;
        app;
        view = 0;
        next_seq = 1;
        last_executed = 0;
        slots = Log.create ~window:cfg.watermark_window ();
        prepared_certs = Hashtbl.create 64;
        batches_by_digest = Hashtbl.create 256;
        fetching = Hashtbl.create 8;
        executed_digests = Hashtbl.create 1024;
        ckpt = Ckpt.create ~quorum:(Ids.quorum ~n:cfg.n);
        clients = Client_table.create ();
        pending = [];
        pending_count = 0;
        batch_timer =
          Timer.create engine
            ~label:(Printf.sprintf "pbft%d-batch" cfg.id)
            ~delay:cfg.batch_timeout_us
            ~callback:(fun () -> flush_batch_if_ready (Lazy.force t));
        awaiting = Hashtbl.create 64;
        suspect_timer =
          Timer.create engine
            ~label:(Printf.sprintf "pbft%d-suspect" cfg.id)
            ~delay:cfg.suspect_timeout_us
            ~callback:
              (fun () ->
              let t = Lazy.force t in
              t.cur_ctx <- forced_ctx t ~name:"suspect";
              start_view_change t ~target:(t.view + 1);
              t.cur_ctx <- None);
        in_view_change = false;
        vc_target = 0;
        viewchanges = Votes.create ();
        vc_timer =
          Timer.create engine
            ~label:(Printf.sprintf "pbft%d-vc" cfg.id)
            ~delay:cfg.viewchange_timeout_us
            ~callback:
              (fun () ->
              let t = Lazy.force t in
              t.cur_ctx <- forced_ctx t ~name:"viewchange-timeout";
              start_view_change t ~target:(t.vc_target + 1);
              t.cur_ctx <- None);
        persist_log = [];
        crashed = false;
        epoch = 0;
        byz = Honest;
        executed_total = 0;
        platform;
        seal_key = Platform.sealing_key platform measurement;
        initial_snapshot = app.State_machine.snapshot ();
        snapshots = Hashtbl.create 4;
        sync_votes = Votes.create ~size:32 ();
        sync_replies = [];
        recovering = false;
        recovered_count = 0;
        alerts = [];
        feed = None;
        feed_chain = "";
        recovery_timer =
          Timer.create engine
            ~label:(Printf.sprintf "pbft%d-recovery" cfg.id)
            ~delay:cfg.recovery_retry_us
            ~callback:
              (fun () ->
              let t = Lazy.force t in
              (* Re-request: commits in flight during the crash are gone,
                 so a single round can leave a gap below the cluster head. *)
              if t.recovering && not t.crashed then begin
                t.cur_ctx <- forced_ctx t ~name:"recovery";
                broadcast t ~sign_cost:0.0
                  (Message.State_request
                     { sr_requester = t.cfg.id; sr_from = t.last_executed + 1 });
                t.cur_ctx <- None;
                Timer.restart t.recovery_timer
              end);
        cur_ctx = None }
  in
  let t = Lazy.force t in
  t.feed <- Some (Feed.create ~net ~src:(Addr.replica cfg.id) ~replica:cfg.id);
  Network.register net (Addr.replica cfg.id) (fun ~src payload -> on_payload t ~src payload);
  t

(* ----- introspection ----- *)

let id t = t.cfg.id
let view t = t.view
let last_executed t = t.last_executed
let low_watermark t = Log.low_mark t.slots
let executed_count t = t.executed_total

let committed_digest t seq = Hashtbl.find_opt t.executed_digests seq

let executed_log t =
  Hashtbl.fold (fun seq digest acc -> (seq, digest) :: acc) t.executed_digests []
  |> List.sort Log.by_seqno

let app_digest t = State_machine.digest t.app
let persisted t = List.rev t.persist_log

let crash t =
  t.crashed <- true;
  (* Quiesce: invalidate in-flight pool/core work and drop queued
     host-side state so a later restart observes no ghost callbacks.
     [persist_log] survives — it is the disk recovery reads from. *)
  t.epoch <- t.epoch + 1;
  Timer.stop t.batch_timer;
  Timer.stop t.suspect_timer;
  Timer.stop t.vc_timer;
  Timer.stop t.recovery_timer;
  t.pending <- [];
  t.pending_count <- 0;
  Hashtbl.reset t.awaiting;
  t.recovering <- false;
  Network.unregister t.net (Addr.replica t.cfg.id)

let restart t =
  if t.crashed then begin
    (* Volatile state did not survive the crash. *)
    t.view <- 0;
    t.next_seq <- 1;
    t.last_executed <- 0;
    Log.reset t.slots;
    (* Certificate amnesia after a crash is within the f allowance. *)
    Hashtbl.reset t.prepared_certs;
    Hashtbl.reset t.batches_by_digest;
    Hashtbl.reset t.fetching;
    Hashtbl.reset t.executed_digests;
    Hashtbl.reset t.snapshots;
    t.in_view_change <- false;
    t.vc_target <- 0;
    Votes.reset t.viewchanges;
    Votes.reset t.sync_votes;
    t.sync_replies <- [];
    (* The reply cache must not survive either: stale "already executed"
       entries would make re-execution skip operations and diverge. *)
    t.clients <- Client_table.create ();
    (match t.app.State_machine.restore t.initial_snapshot with
    | Ok () -> ignore (t.app.State_machine.drain_effects ())
    | Error _ -> ());
    (* Rollback check: the newest sealed checkpoint must carry the exact
       platform counter value, and a moved counter proves a seal exists. *)
    let counter = Platform.counter_read t.platform "ckpt" in
    let refused = ref None in
    (match List.assoc_opt "ckpt:pbft" t.persist_log with
    | None ->
      if Int64.compare counter 0L > 0 then
        refused :=
          Some
            (Printf.sprintf
               "pbft: rollback detected — counter at %Ld but no sealed checkpoint on disk"
               counter)
    | Some sealed -> (
      match Sealing.unseal ~key:t.seal_key sealed with
      | Error e -> refused := Some ("pbft: sealed checkpoint rejected: " ^ e)
      | Ok blob -> (
        match decode_recovery_image blob with
        | Error e -> refused := Some ("pbft: sealed checkpoint malformed: " ^ e)
        | Ok (sealed_counter, view, last_executed, snapshot, executed) ->
          if Int64.compare sealed_counter counter <> 0 then
            refused :=
              Some
                (Printf.sprintf
                   "pbft: rollback detected — sealed checkpoint bound to counter %Ld, \
                    platform counter is %Ld"
                   sealed_counter counter)
          else (
            match t.app.State_machine.restore snapshot with
            | Error e -> refused := Some ("pbft: sealed snapshot rejected: " ^ e)
            | Ok () ->
              ignore (t.app.State_machine.drain_effects ());
              t.view <- view;
              t.next_seq <- last_executed + 1;
              t.last_executed <- last_executed;
              List.iter
                (fun (seq, d) -> Hashtbl.replace t.executed_digests seq d)
                executed;
              Hashtbl.replace t.snapshots last_executed snapshot;
              Ckpt.force_stable t.ckpt last_executed;
              Log.advance_low_mark t.slots last_executed))));
    match !refused with
    | Some reason -> t.alerts <- reason :: t.alerts  (* stay down, loudly *)
    | None ->
      (* Feed cache and subscriptions were host memory: gone with the
         crash.  Followers re-subscribe on their timer; re-executed
         entries re-populate the cache (content-identical, since
         execution is deterministic). *)
      (match t.feed with Some fd -> Feed.reset fd ~records:[] | None -> ());
      t.feed_chain <- "";
      t.crashed <- false;
      t.epoch <- t.epoch + 1;
      t.recovering <- true;
      Network.register t.net (Addr.replica t.cfg.id) (fun ~src payload ->
          on_payload t ~src payload);
      t.cur_ctx <- forced_ctx t ~name:"recovery";
      broadcast t ~sign_cost:0.0
        (Message.State_request { sr_requester = t.cfg.id; sr_from = t.last_executed + 1 });
      t.cur_ctx <- None;
      Timer.restart t.recovery_timer
  end

let is_crashed t = t.crashed
let is_recovering t = t.recovering
let recovered t = t.recovered_count > 0 && not t.recovering
let recovery_alerts t = List.rev t.alerts
let tamper_counter t name = Platform.counter_tamper_reset t.platform name
let set_byzantine t mode = t.byz <- mode
let byzantine_mode t = t.byz
