(** Baseline PBFT replica (Castro & Liskov, OSDI'99) — the paper's
    comparison system.

    Implements the full protocol: three-phase normal operation
    (PrePrepare / Prepare / Commit) with request batching, reply caching
    and client retransmission handling, periodic checkpointing with
    log garbage collection, and the view-change / new-view sub-protocol.
    Replicas sign protocol messages and authenticate clients with HMAC
    authenticators, as configured in the paper's evaluation (§6).

    Performance model: message authentication and networking are handled
    by a work-stealing pool of [workers] threads (the tokio pool of the
    Rust baseline), while the protocol core is a single serial resource —
    "networking and message authentication are parallelized, but the core
    protocol is not". *)

module Ids = Splitbft_types.Ids

type config = {
  n : int;  (** number of replicas, [3f + 1] *)
  id : Ids.replica_id;
  cost : Splitbft_tee.Cost_model.t;
  workers : int;  (** worker-pool size; the paper uses 4 *)
  batch_size : int;  (** 1 = unbatched *)
  batch_timeout_us : float;
  checkpoint_interval : int;  (** in sequence numbers (batches) *)
  watermark_window : int;
  suspect_timeout_us : float;  (** request timer driving view changes *)
  viewchange_timeout_us : float;  (** retry timer for a stalled view change *)
  recovery_retry_us : float;
      (** while recovering, period between repeated StateRequest rounds *)
}

val default_config : n:int -> id:Ids.replica_id -> config

type t

val create :
  Splitbft_sim.Engine.t ->
  Splitbft_sim.Network.t ->
  config ->
  app:Splitbft_app.State_machine.t ->
  t
(** Builds the replica, derives its signing identity, and registers its
    network handler at [Addr.replica config.id]. *)

(** {2 Introspection (used by the harness and tests)} *)

val id : t -> Ids.replica_id
val view : t -> Ids.view
val last_executed : t -> Ids.seqno
val low_watermark : t -> Ids.seqno
val executed_count : t -> int

val committed_digest : t -> Ids.seqno -> string option
(** Digest of the batch this replica committed at the given sequence
    number, if any — the safety checker compares these across replicas. *)

val executed_log : t -> (Ids.seqno * string) list
(** (seq, batch digest) for every executed slot, oldest first (bounded by
    GC). *)

val app_digest : t -> string
val persisted : t -> (string * string) list
(** Persist side effects emitted by the application (ledger blocks),
    oldest first. *)

val crash : t -> unit
(** Host crash: unregisters from the network, stops all timers, and drops
    all queued host-side work so a later {!restart} cannot observe ghost
    callbacks from the previous incarnation.  Sealed checkpoints (the
    "disk") survive. *)

val restart : t -> unit
(** Crash-recovery: wipe volatile state, unseal the newest checkpoint and
    verify it against the platform's monotonic counter (a detected
    rollback is refused loudly — see {!recovery_alerts} — and the replica
    stays down), then rejoin the network and catch up from peers via
    StateRequest/StateReply before participating again. *)

val is_crashed : t -> bool
val is_recovering : t -> bool

val recovered : t -> bool
(** True once a restart finished state transfer and caught up. *)

val recovery_alerts : t -> string list
(** Rollback-refusal (and other recovery-safety) alerts, oldest first. *)

val tamper_counter : t -> string -> unit
(** Rollback attack: reset a named platform counter (e.g. ["ckpt"]) behind
    the replica's back; the next {!restart} must refuse the stale seal. *)

(** {2 Byzantine behaviour injection (harness)} *)

type byzantine_mode =
  | Honest
  | Equivocate of { accomplices : Ids.replica_id list }
      (** primary sends conflicting PrePrepares to disjoint backup halves,
          shows both versions to its accomplices, and double-votes
          (prepares + commits) for both — with [f] accomplices in [Collude]
          mode this deterministically violates safety, which is impossible
          with at most [f] faulty replicas *)
  | Collude
      (** echoes Prepare/Commit for any PrePrepare it sees, without conflict
          checks — the accomplice that makes equivocation succeed once more
          than [f] replicas are faulty *)
  | Mute_commits  (** participates until the commit phase, then withholds *)
  | Corrupt_execution  (** executes operations incorrectly and lies in replies *)

val set_byzantine : t -> byzantine_mode -> unit
val byzantine_mode : t -> byzantine_mode
