(* Name → protocol-instance registry.  The CLI's protocol enum, the
   scenario generator and the docs' protocol matrix are all driven from
   [builtins]; adding a protocol here makes it inherit every scenario,
   trace, bench and safety check. *)

let builtins : (string * Protocol_intf.t) list =
  [ ("pbft", Proto_pbft.protocol);
    ("minbft", Proto_minbft.protocol);
    ("splitbft", Proto_splitbft.protocol) ]

let find name = List.assoc_opt name builtins
let names = List.map fst builtins
