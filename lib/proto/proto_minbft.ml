(* MinBFT (hybrid fault model, 2f+1 replicas with USIGs) as a
   [Protocol_intf.PROTOCOL] instance. *)

module R = Splitbft_minbft.Replica
module Ids = Splitbft_types.Ids
module Client = Splitbft_client.Client

type Protocol_intf.witness += Minbft of R.t

let make ?(byzantine = fun (_ : Ids.replica_id) -> R.Honest) () : Protocol_intf.t
    =
  (module struct
    let name = "minbft"
    let confidential = false
    let default_n = 3
    let f_of_n = Ids.f_of_n_hybrid

    type config = R.config
    type node = R.t

    let config_of_shared (s : Protocol_intf.shared) ~id =
      { (R.default_config ~n:s.n ~id) with
        R.cost = s.cost;
        batch_size = s.batch_size;
        batch_timeout_us = s.batch_timeout_us;
        checkpoint_interval = s.checkpoint_interval;
        suspect_timeout_us = s.suspect_timeout_us }

    let spawn ctx (cfg : config) ~app =
      let module C = (val ctx : Protocol_intf.CONTEXT) in
      let r = R.create C.engine C.network cfg ~app:(app ()) in
      (match byzantine cfg.R.id with
      | R.Honest -> ()
      | mode -> R.set_byzantine r mode);
      r

    let client_protocol ~n:_ ~ready_quorum:_ = Client.Minbft
    let executed_log = R.executed_log
    let last_executed = R.last_executed_counter
    let executed_count = R.executed_count
    let app_digest = R.app_digest
    let view = R.view
    let persisted = R.persisted
    let crash_host = R.crash
    let restart_host = R.restart
    let tamper_checkpoint_counter r = R.tamper_counter r "ckpt"
    let tamper_ledger_counter _ = ()
    let followers = Protocol_intf.No_followers
    let recovered = R.recovered
    let recovery_alerts = R.recovery_alerts
    let reveal r = Minbft r
  end)

let protocol = make ()

let replica_of (packed : Protocol_intf.packed) =
  match Protocol_intf.reveal packed with Minbft r -> Some r | _ -> None
