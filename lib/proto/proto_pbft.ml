(* Monolithic PBFT as a [Protocol_intf.PROTOCOL] instance. *)

module R = Splitbft_pbft.Replica
module Ids = Splitbft_types.Ids
module Client = Splitbft_client.Client

type Protocol_intf.witness += Pbft of R.t

let make ?(byzantine = fun (_ : Ids.replica_id) -> R.Honest) () : Protocol_intf.t
    =
  (module struct
    let name = "pbft"
    let confidential = false
    let default_n = 4
    let f_of_n = Ids.f_of_n

    type config = R.config
    type node = R.t

    let config_of_shared (s : Protocol_intf.shared) ~id =
      { (R.default_config ~n:s.n ~id) with
        R.cost = s.cost;
        batch_size = s.batch_size;
        batch_timeout_us = s.batch_timeout_us;
        checkpoint_interval = s.checkpoint_interval;
        suspect_timeout_us = s.suspect_timeout_us }

    let spawn ctx (cfg : config) ~app =
      let module C = (val ctx : Protocol_intf.CONTEXT) in
      let r = R.create C.engine C.network cfg ~app:(app ()) in
      (match byzantine cfg.R.id with
      | R.Honest -> ()
      | mode -> R.set_byzantine r mode);
      r

    let client_protocol ~n:_ ~ready_quorum:_ = Client.Pbft
    let executed_log r =
      List.map (fun (seq, d) -> (Int64.of_int seq, d)) (R.executed_log r)
    let last_executed r = Int64.of_int (R.last_executed r)
    let executed_count = R.executed_count
    let app_digest = R.app_digest
    let view = R.view
    let persisted = R.persisted
    let crash_host = R.crash
    let restart_host = R.restart
    let tamper_checkpoint_counter r = R.tamper_counter r "ckpt"

    (* The PBFT feed is a host-level convenience over the committed log —
       plaintext, no rollback-protected ledger, so no counter to tamper. *)
    let tamper_ledger_counter _ = ()
    let followers = Protocol_intf.Follower_feed { sealed = false }
    let recovered = R.recovered
    let recovery_alerts = R.recovery_alerts
    let reveal r = Pbft r
  end)

let protocol = make ()

let replica_of (packed : Protocol_intf.packed) =
  match Protocol_intf.reveal packed with Pbft r -> Some r | _ -> None
