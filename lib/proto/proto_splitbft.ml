(* SplitBFT (the paper's compartmentalized protocol) as a
   [Protocol_intf.PROTOCOL] instance.  All SplitBFT-only deployment knobs
   live here: broker threading, the verified-digest cache (and with it the
   whole hot-path layer), consensus lanes, the Execution worker pool, and
   per-replica byzantine-enclave placement. *)

module R = Splitbft_core.Replica
module Config = Splitbft_core.Config
module Ids = Splitbft_types.Ids
module Client = Splitbft_client.Client

type byz = {
  prep : Splitbft_core.Preparation.byz;
  conf : Splitbft_core.Confirmation.byz;
  exec : Splitbft_core.Execution.byz;
}

let honest_enclaves =
  { prep = Splitbft_core.Preparation.Prep_honest;
    conf = Splitbft_core.Confirmation.Conf_honest;
    exec = Splitbft_core.Execution.Exec_honest }

type Protocol_intf.witness += Splitbft of R.t

let make ?(threading = Config.Per_enclave) ?(verify_cache = true) ?(lanes = 1)
    ?(exec_workers = 1) ?(segment_entries = 0)
    ?(byz = fun (_ : Ids.replica_id) -> honest_enclaves) () : Protocol_intf.t =
  (module struct
    let name = "splitbft"
    let confidential = true
    let default_n = 4
    let f_of_n = Ids.f_of_n

    type config = Config.t
    type node = R.t

    let config_of_shared (s : Protocol_intf.shared) ~id =
      { (Config.default ~n:s.n ~id) with
        Config.cost = s.cost;
        threading;
        batch_size = s.batch_size;
        batch_timeout_us = s.batch_timeout_us;
        checkpoint_interval = s.checkpoint_interval;
        suspect_timeout_us = s.suspect_timeout_us;
        verify_cache_capacity = (if verify_cache then 1024 else 0);
        lanes;
        exec_workers;
        segment_entries }

    let spawn ctx (cfg : config) ~app =
      let module C = (val ctx : Protocol_intf.CONTEXT) in
      let b = byz cfg.Config.id in
      R.create ~prep_byz:b.prep ~conf_byz:b.conf ~exec_byz:b.exec C.engine
        C.network cfg ~app

    let client_protocol ~n ~ready_quorum =
      Client.Splitbft { ready_quorum = Option.value ~default:n ready_quorum }

    let executed_log r =
      List.map (fun (seq, d) -> (Int64.of_int seq, d)) (R.executed_log r)
    let last_executed r = Int64.of_int (R.last_executed r)
    let executed_count = R.executed_count
    let app_digest = R.app_digest
    let view = R.view
    let persisted = R.persisted
    let crash_host = R.crash_host
    let restart_host = R.restart_host

    (* The Execution compartment holds the replicated state; rolling its
       counter back is the canonical attack. *)
    let tamper_checkpoint_counter r = R.tamper_counter r Ids.Execution "ckpt"

    (* The ledger counter also lives in Execution: segment seals bind to
       it the same way checkpoint seals bind to "ckpt". *)
    let tamper_ledger_counter r = R.tamper_counter r Ids.Execution "ledger"

    let followers : Protocol_intf.follower_support =
      if segment_entries > 0 then Protocol_intf.Follower_feed { sealed = true }
      else Protocol_intf.No_followers

    let recovered = R.recovered
    let recovery_alerts = R.recovery_alerts
    let reveal r = Splitbft r
  end)

let protocol = make ()

let replica_of (packed : Protocol_intf.packed) =
  match Protocol_intf.reveal packed with Splitbft r -> Some r | _ -> None
