(* The protocol abstraction the harness is polymorphic over.

   A protocol is a first-class module implementing [PROTOCOL]: it builds
   its replicas from a [CONTEXT] (the simulation substrate) and a [shared]
   knob record, names the client dialect that can talk to it, and exposes
   the uniform observation and recovery hooks every scenario, trace, bench
   and safety check is written against.  Protocol-specific configuration
   (byzantine enclave placement, consensus lanes, worker pools, threading)
   lives inside each implementation's [make] constructor — the harness
   never sees it.

   [witness] is the escape hatch for protocol-specific fault injection: an
   implementation extends it with its own replica constructor, and its
   [replica_of] helper downcasts a packed node back.  The match stays next
   to the protocol; the harness stays dispatch-free. *)

module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Ids = Splitbft_types.Ids
module State_machine = Splitbft_app.State_machine
module Client = Splitbft_client.Client

(** Protocol-independent deployment knobs; each implementation folds them
    into its own config type, on top of its protocol-specific defaults. *)
type shared = {
  n : int;
  batch_size : int;
  batch_timeout_us : float;
  checkpoint_interval : int;
  suspect_timeout_us : float;
  cost : Splitbft_tee.Cost_model.t;
}

(** The simulation substrate a protocol instance plugs into: the
    deterministic engine (time, timers, seeded randomness), the message
    fabric, and the observability plane. *)
module type CONTEXT = sig
  val engine : Engine.t
  val network : Network.t

  val obs : Splitbft_obs.Registry.t
  (** Metrics registry shared by every component of the deployment. *)

  val tracer : Splitbft_obs.Tracer.t option
  (** Causal trace recorder, when the run is traced. *)

  val schedule : delay:float -> label:string -> (unit -> unit) -> Engine.handle
  (** Timer facility ([delay] µs from now). *)
end

type context = (module CONTEXT)

let context engine network : context =
  (module struct
    let engine = engine
    let network = network
    let obs = Engine.obs engine
    let tracer = Engine.tracer engine
    let schedule ~delay ~label f = Engine.schedule engine ~delay ~label f
  end)

type witness = ..

(** Follower-replica support.  A protocol with [Follower_feed] publishes
    its committed log through the untrusted host, so read-only follower
    replicas can subscribe and serve stale-bounded reads off the critical
    path; [sealed] says whether feed entries carry AEAD-sealed operations
    (the confidential dialect — followers must hold the attested feed
    key) or plaintext.  [No_followers] protocols simply have no feed. *)
type follower_support = Follower_feed of { sealed : bool } | No_followers

module type PROTOCOL = sig
  val name : string

  val confidential : bool
  (** Whether the client dialect end-to-end encrypts operations (the
      confidentiality column of Table 1 is only expected of protocols
      that claim it). *)

  val default_n : int
  val f_of_n : int -> int

  (** {2 Construction} *)

  type config
  (** Full per-replica configuration, including protocol-specific knobs. *)

  type node

  val config_of_shared : shared -> id:Ids.replica_id -> config
  (** Protocol defaults overridden with the shared deployment knobs. *)

  val spawn : context -> config -> app:(unit -> State_machine.t) -> node
  (** Creates the replica (host, enclaves, timers) and registers it on the
      context's network.  Byzantine behaviour configured through the
      implementation's [make] constructor is installed here —
      compromised-at-deployment, as the fault model prescribes. *)

  val client_protocol : n:int -> ready_quorum:int option -> Client.protocol
  (** The client dialect that speaks this protocol's request/reply (and,
      where applicable, session-handshake) format. *)

  (** {2 Committed-batch observation} *)

  val executed_log : node -> (int64 * string) list
  (** (sequence, batch digest), oldest first, normalized across protocols. *)

  val last_executed : node -> int64
  val executed_count : node -> int
  val app_digest : node -> string
  val view : node -> int

  val persisted : node -> (string * string) list
  (** Sealed blobs on the host's stable storage, for the canary scanner. *)

  (** {2 Checkpoint / recovery hooks} *)

  val crash_host : node -> unit
  val restart_host : node -> unit

  val tamper_checkpoint_counter : node -> unit
  (** Roll back the monotonic counter guarding checkpoint seals — the
      attack a subsequent {!restart_host} must refuse. *)

  val tamper_ledger_counter : node -> unit
  (** Roll back the monotonic counter guarding ledger segment seals; a
      no-op for protocols without a rollback-protected ledger. *)

  (** {2 Follower replicas} *)

  val followers : follower_support

  val recovered : node -> bool
  val recovery_alerts : node -> string list

  (** {2 Downcast} *)

  val reveal : node -> witness
  (** The implementation's own constructor around the concrete replica,
      for protocol-specific injection sites (see {!witness}). *)
end

type t = (module PROTOCOL)

(** A replica paired with its protocol module — what a deployed cluster
    holds, with the concrete node type hidden. *)
type packed = Node : (module PROTOCOL with type node = 'n) * 'n -> packed

let spawn (p : t) ctx (shared : shared) ~id ~app : packed =
  let module P = (val p) in
  Node ((module P), P.spawn ctx (P.config_of_shared shared ~id) ~app)

let name (p : t) =
  let module P = (val p) in
  P.name

let confidential (p : t) =
  let module P = (val p) in
  P.confidential

let default_n (p : t) =
  let module P = (val p) in
  P.default_n

let f_of_n (p : t) n =
  let module P = (val p) in
  P.f_of_n n

let client_protocol (p : t) ~n ~ready_quorum =
  let module P = (val p) in
  P.client_protocol ~n ~ready_quorum

let followers (p : t) =
  let module P = (val p) in
  P.followers

(** {2 Uniform accessors over packed nodes} *)

let node_name (Node ((module P), _)) = P.name
let executed_log (Node ((module P), n)) = P.executed_log n
let last_executed (Node ((module P), n)) = P.last_executed n
let executed_count (Node ((module P), n)) = P.executed_count n
let app_digest (Node ((module P), n)) = P.app_digest n
let view (Node ((module P), n)) = P.view n
let persisted (Node ((module P), n)) = P.persisted n
let crash_host (Node ((module P), n)) = P.crash_host n
let restart_host (Node ((module P), n)) = P.restart_host n
let tamper_checkpoint_counter (Node ((module P), n)) = P.tamper_checkpoint_counter n
let tamper_ledger_counter (Node ((module P), n)) = P.tamper_ledger_counter n
let node_followers (Node ((module P), _)) = P.followers
let recovered (Node ((module P), n)) = P.recovered n
let recovery_alerts (Node ((module P), n)) = P.recovery_alerts n
let reveal (Node ((module P), n)) = P.reveal n
