module Registry = Splitbft_obs.Registry

exception Stop

(* Scheduling class, consulted only by the model checker (free-running
   [run]/[step] ignore it).  [Choice] marks an event whose firing order is
   a genuine scheduling decision — a network delivery, a timer, a fault
   injection point — tagged with the host it affects and, when known, the
   consensus lane ([-1] = unknown/wildcard).  Everything else ([Internal])
   is deterministic computation that a controlled scheduler drains to
   quiescence between choices. *)
type event_class = Internal | Choice of { host : int; lane : int }

(* [dead] covers both cancellation and firing, so a late [cancel] on an
   event that already ran cannot corrupt the live count. *)
type event = {
  time : float;
  seq : int;
  label : string;
  cls : event_class;
  fp : string;
  action : unit -> unit;
  mutable dead : bool;
  owner : t;
}

and t = {
  queue : event Splitbft_util.Heap.t;
  seed : int64;
  root_rng : Splitbft_util.Rng.t;
  obs : Registry.t;
  tracer : Splitbft_obs.Tracer.t option;
  flight : Splitbft_obs.Flight.t option;
  g_live : Registry.gauge;
  c_fired : Registry.counter;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable live : int;  (* scheduled, not fired, not cancelled *)
}

type handle = event

let compare_events a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 1L) ?obs ?tracer ?flight () =
  let obs = match obs with Some r -> r | None -> Registry.create () in
  { queue = Splitbft_util.Heap.create ~cmp:compare_events;
    seed;
    root_rng = Splitbft_util.Rng.create seed;
    obs;
    tracer;
    flight;
    g_live = Registry.gauge obs "sim.events_live";
    c_fired = Registry.counter obs "sim.events_fired";
    clock = 0.0;
    next_seq = 0;
    fired = 0;
    live = 0 }

let now t = t.clock
let seed t = t.seed
let rng t = t.root_rng
let obs t = t.obs
let tracer t = t.tracer
let flight t = t.flight

let flight_record t ~host ~kind ~detail =
  match t.flight with
  | None -> ()
  | Some f -> Splitbft_obs.Flight.record f ~at:t.clock ~host ~kind ~detail

let schedule ?(cls = Internal) ?(fp = "") t ~delay ~label action =
  if delay < 0.0 then invalid_arg (Printf.sprintf "Engine.schedule %s: negative delay" label);
  let ev =
    { time = t.clock +. delay; seq = t.next_seq; label; cls; fp; action; dead = false; owner = t }
  in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Registry.set t.g_live (float_of_int t.live);
  Splitbft_util.Heap.push t.queue ev;
  ev

let cancel ev =
  if not ev.dead then begin
    ev.dead <- true;
    (* The event stays in the heap and is skipped when popped; the live
       count is settled here, eagerly. *)
    let t = ev.owner in
    t.live <- t.live - 1;
    Registry.set t.g_live (float_of_int t.live)
  end

let live t = t.live
let pending t = t.live

let fire t ev =
  ev.dead <- true;
  t.clock <- ev.time;
  t.fired <- t.fired + 1;
  t.live <- t.live - 1;
  Registry.set t.g_live (float_of_int t.live);
  Registry.incr t.c_fired;
  ev.action ()

let step t =
  let rec next () =
    match Splitbft_util.Heap.pop t.queue with
    | None -> false
    | Some ev when ev.dead -> next ()
    | Some ev ->
      fire t ev;
      true
  in
  next ()

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue do
    if !budget <= 0 then continue := false
    else
      match Splitbft_util.Heap.peek t.queue with
      | None -> continue := false
      | Some ev when ev.dead ->
        ignore (Splitbft_util.Heap.pop t.queue)
      | Some ev ->
        (match until with
        | Some horizon when ev.time > horizon ->
          t.clock <- horizon;
          continue := false
        | _ ->
          ignore (Splitbft_util.Heap.pop t.queue);
          decr budget;
          (try fire t ev with Stop -> continue := false))
  done;
  match until with
  | Some horizon when t.clock < horizon && Splitbft_util.Heap.is_empty t.queue ->
    t.clock <- horizon
  | _ -> ()

let events_processed t = t.fired

(* --- Controlled (model-checking) mode ------------------------------- *)

let live_events t =
  Splitbft_util.Heap.to_list t.queue
  |> List.filter (fun ev -> not ev.dead)
  |> List.sort (fun a b -> compare a.seq b.seq)

let class_of ev = ev.cls
let label_of ev = ev.label
let seq_of ev = ev.seq
let time_of ev = ev.time
let fp_of ev = ev.fp
let is_live ev = not ev.dead

(* Fire [ev] regardless of its position in the time order.  The clock
   only moves forward ([max]): a controlled scheduler may legitimately
   fire a later-timestamped delivery before an earlier one, and actions
   scheduled from inside the fired action must not land in the past. *)
let fire_forced t ev =
  if ev.dead then invalid_arg (Printf.sprintf "Engine.fire_forced %s: dead event" ev.label);
  ev.dead <- true;
  t.clock <- Float.max t.clock ev.time;
  t.fired <- t.fired + 1;
  t.live <- t.live - 1;
  Registry.set t.g_live (float_of_int t.live);
  Registry.incr t.c_fired;
  ev.action ()
