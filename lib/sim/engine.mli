(** Deterministic discrete-event simulation engine.

    Time is a [float] count of simulated microseconds.  Events scheduled at
    equal times fire in scheduling order (a monotonically increasing
    sequence number breaks ties), so a run is a pure function of the seed
    and the scheduled actions — the property every experiment and
    regression test in this repository relies on. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create :
  ?seed:int64 ->
  ?obs:Splitbft_obs.Registry.t ->
  ?tracer:Splitbft_obs.Tracer.t ->
  unit ->
  t
(** Fresh engine with virtual time 0.  [seed] (default 1) drives {!rng}.
    [obs] (default: a fresh registry) is the metrics registry this
    simulation reports into; every component reachable from the engine
    (network, resources, enclaves, brokers) records there.  [tracer]
    (default: none — tracing off, zero overhead) attaches a causal trace
    recorder that the same components consult for per-request spans. *)

val now : t -> float
(** Current virtual time in microseconds. *)

val obs : t -> Splitbft_obs.Registry.t
(** The simulation's metrics registry. *)

val tracer : t -> Splitbft_obs.Tracer.t option
(** The simulation's causal trace recorder, when one was attached.
    Instrumentation sites match on [None] first, so a run without a
    tracer pays nothing. *)

val rng : t -> Splitbft_util.Rng.t
(** The engine's root generator.  Components that need independent streams
    should [Rng.split] it at setup time. *)

val seed : t -> int64
(** The seed {!create} was given.  Components whose randomness must not
    depend on setup order (e.g. clients, simulated identities) derive
    their stream with [Rng.of_key (Engine.seed e) ~domain ~stream]
    instead of splitting {!rng}. *)

val schedule : t -> delay:float -> label:string -> (unit -> unit) -> handle
(** Schedules [action] to run [delay] µs from now ([delay >= 0]).  [label]
    appears in traces and error reports. *)

val cancel : handle -> unit
(** Cancelling a fired or already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of scheduled, non-cancelled events — an O(1) read of the
    engine's live-event counter (decremented on fire and on cancel, never
    by walking the heap). *)

val live : t -> int
(** Synonym of {!pending}: the exact live-event counter, exposed for the
    metrics layer ([sim.events_live]). *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Processes events in time order until the queue is empty, virtual time
    would pass [until], or [max_events] have fired.  When stopped by
    [until], virtual time is advanced to [until] exactly. *)

val step : t -> bool
(** Processes a single event; [false] when the queue is empty. *)

val events_processed : t -> int

exception Stop
(** An event's action may raise [Stop] to end {!run} early (remaining
    events stay queued). *)
