(** Deterministic discrete-event simulation engine.

    Time is a [float] count of simulated microseconds.  Events scheduled at
    equal times fire in scheduling order (a monotonically increasing
    sequence number breaks ties), so a run is a pure function of the seed
    and the scheduled actions — the property every experiment and
    regression test in this repository relies on. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

type event_class =
  | Internal
      (** Deterministic follow-on computation (resource completions, ecall
          hand-offs).  A controlled scheduler drains these to quiescence
          between scheduling decisions; free-running [run] treats them like
          any other event. *)
  | Choice of { host : int; lane : int }
      (** A genuine scheduling decision: a network delivery, a timer
          firing, a crash/restart point.  [host] is the simulated host the
          event acts on (its [Sim.Network] address), [lane] the consensus
          lane when statically known, [-1] for "any lane on that host".
          Two [Choice] events on different hosts — or on the same host but
          distinct non-negative lanes — commute; the model checker's
          partial-order reduction relies on exactly this. *)

val create :
  ?seed:int64 ->
  ?obs:Splitbft_obs.Registry.t ->
  ?tracer:Splitbft_obs.Tracer.t ->
  ?flight:Splitbft_obs.Flight.t ->
  unit ->
  t
(** Fresh engine with virtual time 0.  [seed] (default 1) drives {!rng}.
    [obs] (default: a fresh registry) is the metrics registry this
    simulation reports into; every component reachable from the engine
    (network, resources, enclaves, brokers) records there.  [tracer]
    (default: none — tracing off, zero overhead) attaches a causal trace
    recorder that the same components consult for per-request spans.
    [flight] (default: none) attaches a bounded flight recorder the same
    components append structured events to; like the tracer it is a pure
    in-memory side effect, so an attached recorder leaves metrics, RNG
    and schedules byte-identical. *)

val now : t -> float
(** Current virtual time in microseconds. *)

val obs : t -> Splitbft_obs.Registry.t
(** The simulation's metrics registry. *)

val tracer : t -> Splitbft_obs.Tracer.t option
(** The simulation's causal trace recorder, when one was attached.
    Instrumentation sites match on [None] first, so a run without a
    tracer pays nothing. *)

val flight : t -> Splitbft_obs.Flight.t option
(** The simulation's flight recorder, when one was attached. *)

val flight_record : t -> host:int -> kind:string -> detail:string -> unit
(** Appends an event stamped with the current virtual time to the flight
    recorder; no-op (and no allocation beyond the arguments) when none is
    attached. *)

val rng : t -> Splitbft_util.Rng.t
(** The engine's root generator.  Components that need independent streams
    should [Rng.split] it at setup time. *)

val seed : t -> int64
(** The seed {!create} was given.  Components whose randomness must not
    depend on setup order (e.g. clients, simulated identities) derive
    their stream with [Rng.of_key (Engine.seed e) ~domain ~stream]
    instead of splitting {!rng}. *)

val schedule :
  ?cls:event_class -> ?fp:string -> t -> delay:float -> label:string -> (unit -> unit) -> handle
(** Schedules [action] to run [delay] µs from now ([delay >= 0]).  [label]
    appears in traces and error reports.  [cls] (default {!Internal})
    classifies the event for controlled scheduling; [fp] (default [""]) is
    an opaque payload fingerprint folded into the model checker's state
    hash so that "same message still in flight" states collide. *)

val cancel : handle -> unit
(** Cancelling a fired or already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of scheduled, non-cancelled events — an O(1) read of the
    engine's live-event counter (decremented on fire and on cancel, never
    by walking the heap). *)

val live : t -> int
(** Synonym of {!pending}: the exact live-event counter, exposed for the
    metrics layer ([sim.events_live]). *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Processes events in time order until the queue is empty, virtual time
    would pass [until], or [max_events] have fired.  When stopped by
    [until], virtual time is advanced to [until] exactly. *)

val step : t -> bool
(** Processes a single event; [false] when the queue is empty. *)

val events_processed : t -> int

(** {2 Controlled (model-checking) mode}

    A model checker drives the engine one event at a time instead of
    calling {!run}: it reads {!live_events}, partitions them by
    {!class_of}, picks one [Choice] to fire with {!fire_forced}, then
    drains [Internal] events (again via {!fire_forced}, in time order) to
    quiescence.  Free-running {!run}/{!step} ignore the classification
    entirely, so existing callers are unaffected. *)

val live_events : t -> handle list
(** All scheduled, non-cancelled events, sorted by scheduling sequence
    number (a stable, seed-independent canonical order).  O(n) snapshot. *)

val class_of : handle -> event_class
val label_of : handle -> string

val seq_of : handle -> int
(** Scheduling sequence number — the canonical order key for {!live_events}. *)

val time_of : handle -> float
val fp_of : handle -> string

val is_live : handle -> bool
(** [false] once fired or cancelled. *)

val fire_forced : t -> handle -> unit
(** Fires [ev] now, regardless of its position in the time order.  The
    clock advances to [max now (time_of ev)] — never backwards.  Raises
    [Invalid_argument] if the event is dead. *)

exception Stop
(** An event's action may raise [Stop] to end {!run} early (remaining
    events stay queued). *)
