type addr = int

type config = {
  base_delay_us : float;
  jitter_mean_us : float;
  drop_probability : float;
  bandwidth_bytes_per_us : float;
}

let default_config =
  { base_delay_us = 50.0;
    jitter_mean_us = 10.0;
    drop_probability = 0.0;
    bandwidth_bytes_per_us = 5000.0 }

type action = Deliver | Drop | Delay of float

module Registry = Splitbft_obs.Registry

type t = {
  engine : Engine.t;
  config : config;
  rng : Splitbft_util.Rng.t;
  handlers : (addr, src:addr -> string -> unit) Hashtbl.t;
  mutable groups : (addr, int) Hashtbl.t option; (* partition group per addr *)
  mutable filter : (src:addr -> dst:addr -> string -> action) option;
  mutable tap : (src:addr -> dst:addr -> string -> unit) option;
  mutable taps : (src:addr -> dst:addr -> string -> unit) list;  (* reverse order *)
  mutable lane_hint : (dst:addr -> string -> int) option;
  mutable sent : int;
  mutable delivered : int;
  mutable bytes : int;
  c_sent : Registry.counter;
  c_delivered : Registry.counter;
  c_bytes : Registry.counter;
  c_dropped : Registry.counter;
  (* Per-link counters, cached so the hot path never rebuilds labels. *)
  links : (addr * addr, Registry.counter * Registry.counter) Hashtbl.t;
}

let create engine config =
  let obs = Engine.obs engine in
  { engine;
    config;
    rng = Splitbft_util.Rng.split (Engine.rng engine);
    handlers = Hashtbl.create 32;
    groups = None;
    filter = None;
    tap = None;
    taps = [];
    lane_hint = None;
    sent = 0;
    delivered = 0;
    bytes = 0;
    c_sent = Registry.counter obs "net.messages_sent";
    c_delivered = Registry.counter obs "net.messages_delivered";
    c_bytes = Registry.counter obs "net.bytes_sent";
    c_dropped = Registry.counter obs "net.messages_dropped";
    links = Hashtbl.create 64 }

let link_counters t src dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some pair -> pair
  | None ->
    let labels =
      [ ("src", string_of_int src); ("dst", string_of_int dst) ]
    in
    let obs = Engine.obs t.engine in
    let pair =
      ( Registry.counter obs ~labels "net.link.messages",
        Registry.counter obs ~labels "net.link.bytes" )
    in
    Hashtbl.replace t.links (src, dst) pair;
    pair

let register t addr handler = Hashtbl.replace t.handlers addr handler
let unregister t addr = Hashtbl.remove t.handlers addr

let partition t groups =
  let table = Hashtbl.create 16 in
  List.iteri (fun i group -> List.iter (fun a -> Hashtbl.replace table a i) group) groups;
  t.groups <- Some table

let heal t = t.groups <- None
let set_filter t filter = t.filter <- filter
let set_tap t tap = t.tap <- tap
let add_tap t tap = t.taps <- tap :: t.taps
let set_lane_hint t hint = t.lane_hint <- hint

let same_side t src dst =
  match t.groups with
  | None -> true
  | Some table ->
    (* Unlisted addresses share the implicit group -1. *)
    let side a = match Hashtbl.find_opt table a with Some g -> g | None -> -1 in
    side src = side dst

let model_delay t size =
  let c = t.config in
  let serialization =
    if c.bandwidth_bytes_per_us > 0.0 then float_of_int size /. c.bandwidth_bytes_per_us
    else 0.0
  in
  c.base_delay_us +. Splitbft_util.Rng.exponential t.rng ~mean:c.jitter_mean_us +. serialization

let send t ~src ~dst payload =
  (match t.tap with None -> () | Some tap -> tap ~src ~dst payload);
  (match t.taps with
  | [] -> ()
  | taps -> List.iter (fun tap -> tap ~src ~dst payload) (List.rev taps));
  let size = String.length payload in
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + size;
  Registry.incr t.c_sent;
  Registry.add t.c_bytes size;
  let link_msgs, link_bytes = link_counters t src dst in
  Registry.incr link_msgs;
  Registry.add link_bytes size;
  let dropped_randomly =
    t.config.drop_probability > 0.0
    && Splitbft_util.Rng.float t.rng 1.0 < t.config.drop_probability
  in
  if (not (same_side t src dst)) || dropped_randomly then Registry.incr t.c_dropped
  else begin
    let verdict =
      match t.filter with
      | None -> Deliver
      | Some f -> f ~src ~dst payload
    in
    match verdict with
    | Drop -> Registry.incr t.c_dropped
    | Deliver | Delay _ ->
      let extra = match verdict with Delay d -> d | Deliver | Drop -> 0.0 in
      let delay = model_delay t size +. extra in
      let label = Printf.sprintf "net:%d->%d" src dst in
      let lane = match t.lane_hint with None -> -1 | Some hint -> hint ~dst payload in
      ignore
        (Engine.schedule t.engine
           ~cls:(Engine.Choice { host = dst; lane })
           ~fp:payload ~delay ~label
           (fun () ->
             match Hashtbl.find_opt t.handlers dst with
             | None -> ()
             | Some handler ->
               t.delivered <- t.delivered + 1;
               Registry.incr t.c_delivered;
               handler ~src payload))
  end

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let bytes_sent t = t.bytes
