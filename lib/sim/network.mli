(** Simulated message-passing network.

    Matches the paper's model (§2.1): unreliable — may discard, reorder and
    delay messages, but not indefinitely.  Delays are base latency plus
    exponential jitter plus a bandwidth term; independent per-message jitter
    yields reordering.  Partitions and an adversary filter support the
    fault-injection experiments. *)

type addr = int

type config = {
  base_delay_us : float;  (** propagation delay *)
  jitter_mean_us : float; (** mean of the exponential jitter term *)
  drop_probability : float;
  bandwidth_bytes_per_us : float; (** serialization term; [0.] disables *)
}

val default_config : config
(** 40 GbE datacenter-flavoured defaults: 50 µs base delay, 10 µs jitter,
    no drops, 5000 bytes/µs (= 40 Gb/s). *)

type action =
  | Deliver
  | Drop
  | Delay of float (** extra µs on top of the modelled delay *)

type t

val create : Engine.t -> config -> t

val register : t -> addr -> (src:addr -> string -> unit) -> unit
(** Installs the receive handler for [addr]; replaces any previous one. *)

val unregister : t -> addr -> unit
(** Messages to an unregistered address are silently dropped (a crashed
    host). *)

val send : t -> src:addr -> dst:addr -> string -> unit

val partition : t -> addr list list -> unit
(** Installs a partition: messages flow only within a group.  Addresses not
    listed form an implicit final group. *)

val heal : t -> unit
(** Removes any partition. *)

val set_filter : t -> (src:addr -> dst:addr -> string -> action) option -> unit
(** Adversary hook consulted for every message after partition and random
    drops; [None] removes it. *)

val set_tap : t -> (src:addr -> dst:addr -> string -> unit) option -> unit
(** Passive observer invoked on every send attempt (before drops and
    filters) — the confidentiality checker scans payloads here.  One
    slot: installing replaces any previous [set_tap] observer (the
    {!add_tap} list is untouched). *)

val add_tap : t -> (src:addr -> dst:addr -> string -> unit) -> unit
(** Appends an additional passive observer; all added taps fire (in
    registration order) after the {!set_tap} slot on every send attempt,
    before drops and filters.  Taps cannot be removed — attach them for
    the life of the simulation (the anomaly detector's wire observer
    lives here, coexisting with the safety scanner's slot). *)

val set_lane_hint : t -> (dst:addr -> string -> int) option -> unit
(** Classifier consulted at send time to tag the delivery event with a
    consensus lane for the model checker's partial-order reduction
    ([Engine.Choice]).  Returning [-1] (also the default when no hint is
    installed) means "unknown lane" — the delivery then conflicts with
    every other event on the same host. *)

val messages_sent : t -> int
val messages_delivered : t -> int
val bytes_sent : t -> int
