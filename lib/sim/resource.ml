module Registry = Splitbft_obs.Registry

type t = {
  engine : Engine.t;
  name : string;
  mutable free_at : float;
  mutable busy : float;
  mutable jobs : int;
  c_busy_us : Registry.counter;
  c_jobs : Registry.counter;
  g_queue_us : Registry.gauge;
}

let create engine ~name =
  let obs = Engine.obs engine in
  let labels = [ ("resource", name) ] in
  { engine;
    name;
    free_at = 0.0;
    busy = 0.0;
    jobs = 0;
    c_busy_us = Registry.counter obs ~labels "resource.busy_us";
    c_jobs = Registry.counter obs ~labels "resource.jobs";
    g_queue_us = Registry.gauge obs ~labels "resource.queue_us" }

let name t = t.name

(* [earliest] lifts the job's start time past data dependencies the server
   itself does not know about (e.g. a conflicting write still in flight on
   a sibling worker); the server still serializes its own jobs. *)
let submit_after t ~earliest ~cost callback =
  if cost < 0.0 then invalid_arg (t.name ^ ": negative job cost");
  let now = Engine.now t.engine in
  let start = Float.max earliest (Float.max now t.free_at) in
  let finish = start +. cost in
  t.free_at <- finish;
  t.busy <- t.busy +. cost;
  t.jobs <- t.jobs + 1;
  Registry.add_f t.c_busy_us cost;
  Registry.incr t.c_jobs;
  Registry.set t.g_queue_us (finish -. now);
  ignore (Engine.schedule t.engine ~delay:(finish -. now) ~label:("cpu:" ^ t.name) callback)

let submit t ~cost callback = submit_after t ~earliest:0.0 ~cost callback

let free_at t = t.free_at
let busy_time t = t.busy
let jobs t = t.jobs

(* Crash-path gauge reset: a crashed host's resources are abandoned (their
   queued callbacks are cancelled by the owner), but the queue-depth gauge
   would otherwise keep the dead incarnation's last value — the restarted
   host re-registers the same (name, labels) gauge and only overwrites it
   on its first submit, so a dashboard sampled in between reads stale
   backlog.  Cumulative counters (busy/jobs) are left alone: they are
   totals across incarnations by design. *)
let quiesce t =
  t.free_at <- Engine.now t.engine;
  Registry.set t.g_queue_us 0.0

module Pool = struct
  type pool = { servers : t array }

  let create engine ~name ~workers =
    if workers <= 0 then invalid_arg "Resource.Pool.create: workers must be positive";
    let servers =
      Array.init workers (fun i -> create engine ~name:(Printf.sprintf "%s[%d]" name i))
    in
    { servers }

  (* Earliest-available dispatch approximates a work-stealing pool: a new
     job starts as soon as any worker is free. *)
  let submit p ~cost callback =
    let best = ref p.servers.(0) in
    Array.iter (fun s -> if s.free_at < !best.free_at then best := s) p.servers;
    submit !best ~cost callback

  let busy_time p = Array.fold_left (fun acc s -> acc +. s.busy) 0.0 p.servers
  let workers p = Array.to_list p.servers
  let quiesce p = Array.iter quiesce p.servers
end
