(** FIFO service resources modelling serial CPU contexts.

    A {!t} serves submitted jobs one at a time in submission order; a job's
    completion callback fires when its service time has elapsed.  One
    resource models a single-threaded execution context: an enclave's ecall
    thread in SplitBFT, or the serial protocol core of the PBFT baseline.
    {!Pool} models a work-stealing worker pool (the baseline's 4 tokio
    workers) as [k] identical servers with earliest-available dispatch. *)

type t

val create : Engine.t -> name:string -> t
val name : t -> string

val submit : t -> cost:float -> (unit -> unit) -> unit
(** Enqueues a job with service time [cost] µs; the callback runs at its
    completion time. *)

val submit_after : t -> earliest:float -> cost:float -> (unit -> unit) -> unit
(** Like {!submit}, but the job cannot start before virtual time
    [earliest] — used to model data dependencies on work running on a
    sibling resource (e.g. a conflicting write in the execution pool). *)

val free_at : t -> float
(** Virtual time at which all currently queued work completes. *)

val busy_time : t -> float
(** Cumulative service time performed. *)

val jobs : t -> int

val quiesce : t -> unit
(** Crash-path reset: marks the resource idle as of now and zeroes its
    [resource.queue_us] gauge so a dashboard never reads a dead
    incarnation's backlog.  Cumulative counters ([busy_time], [jobs]) are
    preserved — they are totals across incarnations.  Call when the
    owning host crashes or restarts. *)

module Pool : sig
  type pool

  val create : Engine.t -> name:string -> workers:int -> pool
  val submit : pool -> cost:float -> (unit -> unit) -> unit
  val busy_time : pool -> float
  val workers : pool -> t list

  val quiesce : pool -> unit
  (** {!quiesce} every worker. *)
end
