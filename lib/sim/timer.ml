type t = {
  engine : Engine.t;
  label : string;
  cls : Engine.event_class;
  mutable delay : float;
  callback : unit -> unit;
  mutable armed : Engine.handle option;
}

let create ?(cls = Engine.Internal) engine ~label ~delay ~callback =
  { engine; label; cls; delay; callback; armed = None }

let is_running t = Option.is_some t.armed

let stop t =
  match t.armed with
  | None -> ()
  | Some h ->
    Engine.cancel h;
    t.armed <- None

let restart t =
  stop t;
  let handle =
    Engine.schedule ~cls:t.cls t.engine ~delay:t.delay ~label:t.label (fun () ->
        t.armed <- None;
        t.callback ())
  in
  t.armed <- Some handle

let start t = if not (is_running t) then restart t
let set_delay t delay = t.delay <- delay
