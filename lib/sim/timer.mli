(** Restartable one-shot timers on top of {!Engine}.

    PBFT and SplitBFT use request timers (primary suspicion) and batch
    timers; both live in the untrusted environment, matching principle P1 of
    the paper. *)

type t

val create :
  ?cls:Engine.event_class ->
  Engine.t ->
  label:string ->
  delay:float ->
  callback:(unit -> unit) ->
  t
(** The timer is created stopped.  [cls] (default [Engine.Internal])
    classifies every (re)armed firing for the model checker; timers whose
    expiry is a real scheduling decision (suspicion, client retry) should
    pass [Engine.Choice]. *)

val start : t -> unit
(** Arms the timer if it is not running; a running timer is unaffected. *)

val restart : t -> unit
(** (Re)arms the timer for a full [delay] from now. *)

val stop : t -> unit
val is_running : t -> bool

val set_delay : t -> float -> unit
(** Takes effect at the next (re)start. *)
