module Tracer = Splitbft_obs.Tracer

type entry = { time : float; label : string; detail : string }

(* Fixed-size ring: [head] is the slot the next record lands in, [length]
   the number of live entries (≤ capacity).  Recording is O(1); the
   fingerprint folds every entry ever recorded, so eviction never changes
   it — same semantics the determinism tests relied on with the old
   drop-oldest-half list. *)
type t = {
  capacity : int;
  ring : entry array;
  mutable head : int;
  mutable length : int;
  mutable hash : int64;
  tracer : Tracer.t option;
  pid : int;
}

let nil = { time = 0.0; label = ""; detail = "" }

let create ?(capacity = 100_000) ?tracer ?(pid = 0) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  { capacity;
    ring = Array.make capacity nil;
    head = 0;
    length = 0;
    hash = 0xcbf29ce484222325L;
    tracer;
    pid }

let fnv_prime = 0x100000001b3L

let fold_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let record t ~time ~label detail =
  t.hash <-
    fold_string (fold_string (fold_string t.hash (string_of_float time)) label) detail;
  t.ring.(t.head) <- { time; label; detail };
  t.head <- (t.head + 1) mod t.capacity;
  if t.length < t.capacity then t.length <- t.length + 1;
  match t.tracer with
  | None -> ()
  | Some tracer ->
    (* Mirror the debug log as structured instants so it lands in the
       same Trace Event export as the causal spans. *)
    Tracer.instant tracer ~name:label ~cat:"sim.trace" ~pid:t.pid ~tid:"debug"
      ~detail ~at:time ()

let entries t =
  (* Oldest first: the oldest live entry sits at [head] once the ring has
     wrapped, at 0 before. *)
  let start = if t.length < t.capacity then 0 else t.head in
  List.init t.length (fun i -> t.ring.((start + i) mod t.capacity))

let length t = t.length
let fingerprint t = Printf.sprintf "%016Lx" t.hash

let pp_entry ppf e = Format.fprintf ppf "[%12.1f] %-24s %s" e.time e.label e.detail
