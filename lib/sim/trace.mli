(** Bounded in-memory trace of simulation events (ring buffer).

    Used by the determinism tests (same seed ⇒ identical trace) and for
    debugging protocol runs.  Recording is O(1): the ring overwrites the
    oldest entry once full, while the fingerprint keeps folding every
    entry ever recorded, so eviction never perturbs determinism checks. *)

type entry = { time : float; label : string; detail : string }
type t

val create :
  ?capacity:int -> ?tracer:Splitbft_obs.Tracer.t -> ?pid:int -> unit -> t
(** [capacity] (default 100_000) bounds memory; once full, each record
    overwrites the oldest entry.  With [tracer], every record is also
    mirrored as a structured instant event (category ["sim.trace"],
    process [pid]) into the causal-trace export. *)

val record : t -> time:float -> label:string -> string -> unit
val entries : t -> entry list
(** Oldest first (the retained window only). *)

val length : t -> int
(** Retained entries, at most [capacity]. *)

val fingerprint : t -> string
(** Order-sensitive SHA-free fingerprint (a 64-bit FNV-style fold rendered
    in hex) of {e every} entry ever recorded — unaffected by eviction,
    cheap to compare across runs. *)

val pp_entry : Format.formatter -> entry -> unit
