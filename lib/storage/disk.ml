type t = {
  mutable recs : (string * string) list;  (* newest first *)
  mutable writes : int;
  mutable crash_at : int;  (* -1 = disarmed *)
  mutable torn : int option;
  mutable dead : bool;
}

let create () = { recs = []; writes = 0; crash_at = -1; torn = None; dead = false }

let arm_crash t ~at ~torn =
  t.crash_at <- at;
  t.torn <- torn

let write t ~tag data =
  if t.dead then false
  else begin
    let i = t.writes in
    t.writes <- i + 1;
    if i = t.crash_at then begin
      t.dead <- true;
      (match t.torn with
      | Some k when k < String.length data ->
        (* Torn write: a prefix of the record reached the medium before
           the crash.  Recovery must detect and truncate it. *)
        t.recs <- (tag, String.sub data 0 k) :: t.recs
      | Some _ -> t.recs <- (tag, data) :: t.recs
      | None -> ());
      false
    end
    else begin
      t.recs <- (tag, data) :: t.recs;
      true
    end
  end

let records t = List.rev t.recs
let write_count t = t.writes
let dead t = t.dead
