(** Simulated append-only persistent medium with crash injection.

    The torture tests drive {!Ledger} output through this store, arm a
    crash at every write index (clean and torn variants), then feed the
    surviving records back into {!Ledger.recover} and assert that no
    sealed-segment entry is lost and that rollbacks are refused.  The
    production path does not go through this module — the broker's
    storage assoc plays the disk there — but the record stream is the
    same, so what the torture test certifies is the real recovery code. *)

type t

val create : unit -> t

val arm_crash : t -> at:int -> torn:int option -> unit
(** Crash on the [at]-th write (0-based).  With [torn = Some k] the first
    [k] bytes of that record reach the medium; with [None] the record is
    lost whole.  Writes after the crash are dropped. *)

val write : t -> tag:string -> string -> bool
(** [false] once the medium is dead (including the crashing write). *)

val records : t -> (string * string) list
(** Surviving records, oldest first — the recovery input. *)

val write_count : t -> int
val dead : t -> bool
