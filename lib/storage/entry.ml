module Enclave_identity = Splitbft_types.Enclave_identity
module Measurement = Splitbft_tee.Measurement
module Kdf = Splitbft_crypto.Kdf
module Aead = Splitbft_crypto.Aead
module Sha256 = Splitbft_crypto.Sha256
module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader

type t = { seq : int; digest : string; ops : string }

(* ----- op-list payload ----- *)

let encode_ops ops = W.to_string (fun w () -> W.list w W.bytes ops) ()
let decode_ops blob = R.parse (fun r -> R.list r R.bytes) blob

(* ----- ledger feed channel -----

   Entries leave the Execution enclave with their operation payload
   AEAD-protected under a key derived from the Execution measurement —
   the same modelling license as the state-transfer channel
   ([Execution.transfer_key]): in a real deployment the key would be
   provisioned to attested followers; deriving it from public identity
   keeps the simulation honest about *who can read* without simulating
   the provisioning handshake.  Determinism matters here: the nonce is a
   pure function of the sequence number, so every honest replica seals
   byte-identical entries and followers can vouch on content. *)

let ledger_aad = "splitbft-ledger-entry"

let ledger_key =
  lazy
    (Kdf.derive ~ikm:"splitbft-ledger-feed"
       ~info:(Measurement.to_raw Enclave_identity.execution) ~length:32 ())

let nonce_of ~tag seq =
  String.sub (Sha256.digest (Printf.sprintf "%s:%d" tag seq)) 0 Aead.nonce_size

let seal_ops ~seq blob =
  Aead.encrypt ~key:(Lazy.force ledger_key) ~nonce:(nonce_of ~tag:"ledger-nonce" seq)
    ~aad:ledger_aad blob

let open_ops ~seq blob =
  Aead.decrypt ~key:(Lazy.force ledger_key) ~nonce:(nonce_of ~tag:"ledger-nonce" seq)
    ~aad:ledger_aad blob

(* ----- content digest and hash chain ----- *)

let content_digest t =
  Sha256.digest
    (W.to_string
       (fun w () ->
         W.varint w t.seq;
         W.bytes w t.digest;
         W.bytes w t.ops)
       ())

let next_chain ~prev t = Sha256.digest (prev ^ content_digest t)

(* ----- on-disk / on-wire record ----- *)

let encode_record ~chain t =
  W.to_string
    (fun w () ->
      W.varint w t.seq;
      W.bytes w t.digest;
      W.bytes w t.ops;
      W.bytes w chain)
    ()

let decode_record s =
  R.parse
    (fun r ->
      let seq = R.varint r in
      let digest = R.bytes r in
      let ops = R.bytes r in
      let chain = R.bytes r in
      ({ seq; digest; ops }, chain))
    s

let seq_of_record s =
  match R.parse ~exact:false (fun r -> R.varint r) s with
  | Ok seq -> Some seq
  | Error _ -> None

(* ----- follower read channel -----

   Stale-bounded reads and their results travel client <-> follower under
   a second derived key, so a confidential protocol's read traffic leaks
   nothing to the untrusted network (the safety scanner's canary check
   covers follower replies like any other message). *)

let read_aad = "splitbft-follower-read"

let read_key =
  lazy
    (Kdf.derive ~ikm:"splitbft-follower-read"
       ~info:(Measurement.to_raw Enclave_identity.execution) ~length:32 ())

let read_nonce ~dir ~client ~ts =
  String.sub
    (Sha256.digest (Printf.sprintf "fr-%s:%d:%Ld" dir client ts))
    0 Aead.nonce_size

let seal_read_op ~client ~ts op =
  Aead.encrypt ~key:(Lazy.force read_key) ~nonce:(read_nonce ~dir:"op" ~client ~ts)
    ~aad:read_aad op

let open_read_op ~client ~ts blob =
  Aead.decrypt ~key:(Lazy.force read_key) ~nonce:(read_nonce ~dir:"op" ~client ~ts)
    ~aad:read_aad blob

let seal_read_result ~client ~ts result =
  Aead.encrypt ~key:(Lazy.force read_key) ~nonce:(read_nonce ~dir:"res" ~client ~ts)
    ~aad:read_aad result

let open_read_result ~client ~ts blob =
  Aead.decrypt ~key:(Lazy.force read_key) ~nonce:(read_nonce ~dir:"res" ~client ~ts)
    ~aad:read_aad blob
