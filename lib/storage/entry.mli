(** One committed ledger entry and its record format.

    An entry is the unit the Execution compartment appends per executed
    batch: the consensus sequence number, the committed batch digest, and
    the operation payload actually applied (AEAD-sealed under the ledger
    feed key in SplitBFT, plaintext in the PBFT baseline).  Records add a
    running hash chain so recovery and followers can verify integrity;
    the chain is {e excluded} from {!content_digest} because replicas that
    state-transferred across a crash window have gaps and therefore
    divergent chains, while the entry content itself is byte-identical on
    every honest replica — which is what followers vouch on. *)

type t = {
  seq : int;  (** consensus sequence number *)
  digest : string;  (** committed batch digest *)
  ops : string;  (** applied-operation payload (possibly sealed) *)
}

(** {2 Operation payload} *)

val encode_ops : string list -> string
(** Encodes the plaintext operations applied at this entry, in order —
    duplicates and no-ops are already filtered, so replaying exactly this
    list reproduces the replica's state transition. *)

val decode_ops : string -> (string list, string) result

(** {2 Ledger feed channel}

    Deterministic AEAD under a key derived from the Execution measurement
    (same modelling license as state transfer): the nonce is a pure
    function of [seq], so honest replicas seal byte-identical entries. *)

val seal_ops : seq:int -> string -> string
val open_ops : seq:int -> string -> (string, string) result

(** {2 Content digest and hash chain} *)

val content_digest : t -> string
(** Digest of (seq, digest, ops) — the value [f + 1] replicas must agree
    on before a follower installs the entry.  Excludes the chain. *)

val next_chain : prev:string -> t -> string
(** Running chain hash: [H(prev || content_digest t)]. *)

(** {2 Record codec} *)

val encode_record : chain:string -> t -> string
val decode_record : string -> (t * string, string) result

val seq_of_record : string -> int option
(** Sequence number without a full decode (host-side routing/GC). *)

(** {2 Follower read channel}

    Client/follower read traffic for confidential protocols. *)

val seal_read_op : client:int -> ts:int64 -> string -> string
val open_read_op : client:int -> ts:int64 -> string -> (string, string) result
val seal_read_result : client:int -> ts:int64 -> string -> string
val open_read_result : client:int -> ts:int64 -> string -> (string, string) result
