module Network = Splitbft_sim.Network
module Message = Splitbft_types.Message
module Addr = Splitbft_types.Addr

let chunk = 64

type t = {
  net : Network.t;
  src : int;  (* our host's network address *)
  replica : int;
  mutable base : int;
  mutable tip : int;
  mutable cache : (int * string) list;  (* newest first *)
  subs : (int, unit) Hashtbl.t;  (* follower ids *)
}

let create ~net ~src ~replica =
  { net; src; replica; base = 0; tip = 0; cache = []; subs = Hashtbl.create 4 }

let tip t = t.tip
let base t = t.base
let subscribers t = Hashtbl.length t.subs

let send t ~follower records =
  Network.send t.net ~src:t.src ~dst:(Addr.follower follower)
    (Message.encode
       (Message.Ledger_feed
          { lf_replica = t.replica; lf_tip = t.tip; lf_base = t.base; lf_records = records }))

let publish t record =
  match Entry.seq_of_record record with
  | None -> ()
  | Some seq ->
    if seq > t.tip then begin
      t.tip <- seq;
      t.cache <- (seq, record) :: t.cache;
      Hashtbl.iter (fun fid () -> send t ~follower:fid [ record ]) t.subs
    end

let rec send_chunks t ~follower records =
  match records with
  | [] -> ()
  | _ ->
    let rec take n acc rest =
      match (n, rest) with
      | 0, _ | _, [] -> (List.rev acc, rest)
      | n, x :: tl -> take (n - 1) (x :: acc) tl
    in
    let head, rest = take chunk [] records in
    send t ~follower head;
    send_chunks t ~follower rest

let subscribe t ~follower ~from =
  Hashtbl.replace t.subs follower ();
  let pending =
    List.filter (fun (s, _) -> s >= from) t.cache
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
  in
  (* An empty feed still carries tip/base, which is what lag tracking
     needs from an up-to-date replica. *)
  if pending = [] then send t ~follower [] else send_chunks t ~follower pending

let set_base t b = if b > t.base then t.base <- b

let reset t ~records =
  (* Host restart: the in-memory cache died with the process; rebuild it
     from what survived on disk (post-GC, so followers needing older
     entries must lean on the other replicas' feeds — f + 1 of n suffice). *)
  Hashtbl.reset t.subs;
  t.cache <- [];
  t.tip <- 0;
  t.base <- 0;
  List.iter
    (fun (tag, data) ->
      if String.equal tag Ledger.entry_tag then (
        match Entry.seq_of_record data with
        | Some seq when seq > t.tip ->
          t.tip <- seq;
          t.cache <- (seq, data) :: t.cache
        | Some _ | None -> ())
      else if String.equal tag Ledger.cut_tag then
        match int_of_string_opt data with
        | Some b -> set_base t b
        | None -> ())
    records
