(** Broker-side ledger feed: streams persisted entry records to
    subscribed read-only followers.

    Lives on the untrusted host (the broker in SplitBFT, the replica
    process in the PBFT baseline) — it only ever handles records the
    enclave already sealed and chained, so serving them needs no enclave
    transition and stays entirely off the consensus critical path.
    Subscription state is host memory: it dies with a crash, and
    followers re-subscribe on their periodic timer. *)

type t

val create : net:Splitbft_sim.Network.t -> src:int -> replica:int -> t
(** [src] is the address feed messages are sent from (the host's own
    network address); [replica] is the id stamped into [lf_replica]. *)

val publish : t -> string -> unit
(** Called as each entry record is persisted: caches it and pushes it to
    every current subscriber.  Out-of-order or duplicate records (by the
    record's sequence prefix) are ignored. *)

val subscribe : t -> follower:int -> from:int -> unit
(** Registers the follower and replays cached records from [from] on, in
    chunks; always sends at least one (possibly empty) feed so the
    follower learns this replica's tip. *)

val set_base : t -> int -> unit
(** Records the compaction floor advertised in [lf_base]. *)

val reset : t -> records:(string * string) list -> unit
(** Host-restart path: clears subscriptions and rebuilds the cache from
    the persisted (post-GC) records, oldest first. *)

val tip : t -> int
val base : t -> int
val subscribers : t -> int
