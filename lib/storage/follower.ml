module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Resource = Splitbft_sim.Resource
module Registry = Splitbft_obs.Registry
module Message = Splitbft_types.Message
module Addr = Splitbft_types.Addr
module Votes = Splitbft_consensus.Votes
module State_machine = Splitbft_app.State_machine

type t = {
  engine : Engine.t;
  net : Network.t;
  fid : int;
  f : int;
  n : int;
  sealed : bool;
  lag_bound : int;
  resubscribe_every : float;
  read_service_us : float;
  res : Resource.t;  (* the follower's single serial service context *)
  app : State_machine.t;
  votes : (int, string * Entry.t) Votes.t;  (* seq -> (content digest, entry) *)
  pending : (int, Entry.t) Hashtbl.t;  (* vouched, waiting for the prefix *)
  applied_log : (int, string) Hashtbl.t;
  tips : (int, int) Hashtbl.t;  (* replica -> advertised tip *)
  mutable applied : int;
  mutable reads : int;
  mutable stale_refused : int;
  mutable entries_applied : int;
  mutable stopped : bool;
  g_applied : Registry.gauge;
  g_lag : Registry.gauge;
  c_reads : Registry.counter;
  c_stale : Registry.counter;
  c_applied : Registry.counter;
}

let stale_result = "STALE"
let bad_op_result = "REFUSED"

(* The (f+1)-th largest advertised tip: at least one of f+1 distinct
   replicas is honest, so this is a height the cluster genuinely
   committed — the reference point for staleness. *)
let vouched_tip t =
  let tips = Hashtbl.fold (fun _ v acc -> v :: acc) t.tips [] in
  if List.length tips < t.f + 1 then 0
  else List.nth (List.sort (fun a b -> Int.compare b a) tips) t.f

let lag t = max 0 (vouched_tip t - t.applied)

let update_gauges t =
  Registry.set t.g_applied (float_of_int t.applied);
  Registry.set t.g_lag (float_of_int (lag t))

let apply_entry t (e : Entry.t) =
  let blob = if t.sealed then Entry.open_ops ~seq:e.seq e.ops else Ok e.ops in
  (match blob with
  | Error _ -> ()  (* unreachable past an honest vouch; drop defensively *)
  | Ok blob -> (
    match Entry.decode_ops blob with
    | Error _ -> ()
    | Ok ops -> List.iter (fun op -> ignore (t.app.State_machine.apply op)) ops));
  t.applied <- e.seq;
  Hashtbl.replace t.applied_log e.seq e.digest;
  t.entries_applied <- t.entries_applied + 1;
  Registry.incr t.c_applied

let rec apply_ready t =
  match Hashtbl.find_opt t.pending (t.applied + 1) with
  | None -> ()
  | Some e ->
    Hashtbl.remove t.pending e.seq;
    apply_entry t e;
    apply_ready t

let on_feed t (lf : Message.ledger_feed) =
  let r = lf.lf_replica in
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.tips r) in
  Hashtbl.replace t.tips r (max prev lf.lf_tip);
  List.iter
    (fun record ->
      match Entry.decode_record record with
      | Error _ -> ()
      | Ok (e, _chain) ->
        if e.seq > t.applied && not (Hashtbl.mem t.pending e.seq) then begin
          let cd = Entry.content_digest e in
          ignore (Votes.add t.votes ~key:e.seq ~sender:r (cd, e));
          let matching =
            List.filter (fun (d, _) -> String.equal d cd) (Votes.get t.votes e.seq)
          in
          (* Install only once f+1 distinct replicas fed byte-identical
             entry content — the records are unsigned, so agreement is
             what makes them trustworthy (same rule as state transfer). *)
          if List.length matching >= t.f + 1 then begin
            Hashtbl.replace t.pending e.seq e;
            Votes.remove t.votes e.seq
          end
        end)
    lf.lf_records;
  apply_ready t;
  update_gauges t

let reply t ~client ~ts ~result =
  let m =
    Message.Read_reply
      { rd_follower = t.fid;
        rd_client = client;
        rd_ts = ts;
        rd_seq = t.applied;
        rd_lag = lag t;
        rd_result = result }
  in
  Network.send t.net ~src:(Addr.follower t.fid) ~dst:(Addr.client client) (Message.encode m)

let serve_read t (rr : Message.read_request) =
  t.reads <- t.reads + 1;
  Registry.incr t.c_reads;
  let op =
    if t.sealed then
      match Entry.open_read_op ~client:rr.rr_client ~ts:rr.rr_ts rr.rr_op with
      | Ok op -> Some op
      | Error _ -> None
    else Some rr.rr_op
  in
  match op with
  | None -> reply t ~client:rr.rr_client ~ts:rr.rr_ts ~result:bad_op_result
  | Some op ->
    let rw = t.app.State_machine.classify op in
    if rw.State_machine.writes <> [] then
      (* Followers never mutate state: writes belong on the quorum path. *)
      reply t ~client:rr.rr_client ~ts:rr.rr_ts ~result:bad_op_result
    else if lag t > t.lag_bound then begin
      t.stale_refused <- t.stale_refused + 1;
      Registry.incr t.c_stale;
      reply t ~client:rr.rr_client ~ts:rr.rr_ts ~result:stale_result
    end
    else begin
      let result = t.app.State_machine.apply op in
      let result =
        if t.sealed then Entry.seal_read_result ~client:rr.rr_client ~ts:rr.rr_ts result
        else result
      in
      reply t ~client:rr.rr_client ~ts:rr.rr_ts ~result
    end

(* A follower is one serial service context: reads queue FIFO and each
   pays [read_service_us] of service (decode, staleness check, apply,
   result sealing).  This finite per-follower capacity is what makes
   read throughput scale with follower count instead of one follower
   absorbing any offered load for free. *)
let on_read t (rr : Message.read_request) =
  Resource.submit t.res ~cost:t.read_service_us (fun () ->
      if not t.stopped then serve_read t rr)

let subscribe_all t =
  for r = 0 to t.n - 1 do
    Network.send t.net ~src:(Addr.follower t.fid) ~dst:(Addr.replica r)
      (Message.encode
         (Message.Ledger_subscribe { lsu_follower = t.fid; lsu_from = t.applied + 1 }))
  done

let on_payload t ~src:_ payload =
  if not t.stopped then
    match Message.decode payload with
    | Ok (Message.Ledger_feed lf) -> on_feed t lf
    | Ok (Message.Read_request rr) -> on_read t rr
    | Ok _ | Error _ -> ()

let rec tick t =
  if not t.stopped then begin
    subscribe_all t;
    update_gauges t;
    ignore
      (Engine.schedule t.engine ~delay:t.resubscribe_every ~label:"follower-resubscribe"
         (fun () -> tick t))
  end

let create ?(lag_bound = 64) ?(resubscribe_every = 200_000.0) ?(read_service_us = 100.0)
    engine net ~fid ~f ~n ~sealed ~app =
  let reg = Engine.obs engine in
  let labels = [ ("follower", string_of_int fid) ] in
  let t =
    { engine;
      net;
      fid;
      f;
      n;
      sealed;
      lag_bound;
      resubscribe_every;
      read_service_us;
      res = Resource.create engine ~name:(Printf.sprintf "follower%d" fid);
      app;
      votes = Votes.create ~size:128 ();
      pending = Hashtbl.create 128;
      applied_log = Hashtbl.create 1024;
      tips = Hashtbl.create 8;
      applied = 0;
      reads = 0;
      stale_refused = 0;
      entries_applied = 0;
      stopped = false;
      g_applied = Registry.gauge reg ~labels "follower.applied_seq";
      g_lag = Registry.gauge reg ~labels "follower.lag";
      c_reads = Registry.counter reg ~labels "follower.reads";
      c_stale = Registry.counter reg ~labels "follower.reads_stale_refused";
      c_applied = Registry.counter reg ~labels "follower.entries_applied" }
  in
  Network.register net (Addr.follower fid) (on_payload t);
  tick t;
  t

let stop t =
  t.stopped <- true;
  Resource.quiesce t.res;
  Network.unregister t.net (Addr.follower t.fid)

let fid t = t.fid
let applied t = t.applied
let reads_served t = t.reads
let stale_refused t = t.stale_refused
let entries_applied t = t.entries_applied

let applied_log t =
  Hashtbl.fold (fun s d acc -> (s, d) :: acc) t.applied_log []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let app_digest t = State_machine.digest t.app
