(** Read-only follower replica: subscribes to the committed ledger feed
    and serves stale-bounded reads off the consensus critical path.

    A follower is an untrusted-host process holding the ledger channel
    key (modelling an attested provisioned reader — see {!Entry}).  It
    periodically re-subscribes to every replica's broker, installs an
    entry only once [f + 1] distinct replicas have fed byte-identical
    content (the PR-3 vouching rule: entry records are unsigned but
    content-addressed), applies entries strictly in sequence order, and
    answers {!Splitbft_types.Message.read_request}s from its applied
    prefix — refusing when its lag behind the vouched cluster tip
    exceeds the staleness bound, so a partitioned follower degrades to
    refusal rather than serving arbitrarily old state.

    Reports [follower.applied_seq] / [follower.lag] gauges and
    [follower.reads] / [follower.reads_stale_refused] /
    [follower.entries_applied] counters (labelled by follower id) into
    the engine's registry, which is how the anomaly detector and the
    health dashboard see stragglers. *)

type t

val create :
  ?lag_bound:int ->
  ?resubscribe_every:float ->
  ?read_service_us:float ->
  Splitbft_sim.Engine.t ->
  Splitbft_sim.Network.t ->
  fid:int ->
  f:int ->
  n:int ->
  sealed:bool ->
  app:Splitbft_app.State_machine.t ->
  t
(** Registers at [Addr.follower fid] and starts the subscription timer.
    [lag_bound] (default 64) is the maximum vouched-tip lag at which
    reads are still served; [resubscribe_every] (default 200 ms) paces
    re-subscription and gauge refresh.  [read_service_us] (default
    100 µs) is the per-read service time on the follower's single serial
    service context — the finite capacity that makes read throughput
    scale with follower count.  [sealed] selects the confidential
    entry/read channels (SplitBFT) versus plaintext (PBFT baseline). *)

val stop : t -> unit

val stale_result : string
(** [rd_result] of a read refused for exceeding the staleness bound
    (sent in the clear — it carries no application data). *)

val bad_op_result : string
(** [rd_result] of a read refused as malformed or non-read-only. *)

(** {2 Introspection} *)

val fid : t -> int
val applied : t -> int
val lag : t -> int
val reads_served : t -> int
val stale_refused : t -> int
val entries_applied : t -> int

val applied_log : t -> (int * string) list
(** (seq, committed batch digest) pairs applied so far, ascending — what
    the safety checker compares against the replicas' executed logs. *)

val app_digest : t -> string
(** Digest of the follower's application state. *)
